package rasql_test

import (
	"testing"

	rasql "github.com/rasql/rasql-go"
)

// The fault-invariance differential harness — the headline chaos deliverable.
//
// RaSQL's recovery story (paper Section 6.1) rests on the fixpoint being
// confluent: the accumulated state is its own checkpoint, so a failed task
// can roll its partitions back and replay the iteration without changing the
// final answer. That makes the fault-free run a perfect oracle: every example
// query, under every evaluation mode, under any seeded fault schedule, must
// produce the exact same result set.

// chaosMode is one evaluation strategy under test.
type chaosMode struct {
	name string
	cfg  func() rasql.Config
	// distributed modes run cluster tasks, so injected faults must actually
	// fire (asserted via the recovery counters); the local baselines run no
	// cluster tasks and chaos must be a silent no-op.
	distributed bool
}

func chaosModes() []chaosMode {
	return []chaosMode{
		{"default", func() rasql.Config { return rasql.Config{} }, true},
		{"two-stage", func() rasql.Config {
			return rasql.Config{RawOptimizations: true,
				Cluster: rasql.ClusterConfig{CompressBroadcast: true}}
		}, true},
		{"no-decompose", func() rasql.Config {
			c := rasql.Config{}
			c.Fixpoint.DisableDecomposition = true
			return c
		}, true},
		{"local", func() rasql.Config { return rasql.Config{ForceLocal: true} }, false},
		{"naive", func() rasql.Config { return rasql.Config{Naive: true} }, false},
	}
}

func runWithChaos(t *testing.T, tc exampleCase, cfg rasql.Config) (*rasql.Relation, rasql.MetricsSnapshot) {
	t.Helper()
	cfg.Cluster.Workers = 4
	cfg.Cluster.Partitions = 4
	eng := rasql.New(cfg)
	for _, tab := range tc.tables() {
		eng.MustRegister(tab.Clone())
	}
	got, err := eng.Query(tc.query)
	if err != nil {
		t.Fatalf("%s: %v", tc.name, err)
	}
	return got, eng.Metrics()
}

// Every example query, every mode, three fault seeds: results must be
// bit-identical (as a set) to the fault-free run, and across each
// distributed mode the schedules must demonstrably have fired — a harness
// whose faults never trigger proves nothing.
func TestChaosFaultInvarianceAllQueriesAllModes(t *testing.T) {
	for _, m := range chaosModes() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			var total rasql.MetricsSnapshot
			for _, tc := range exampleCases() {
				want, _ := runWithChaos(t, tc, m.cfg())
				for _, seed := range []int64{1, 2, 3} {
					cfg := m.cfg()
					cfg.Cluster.Chaos = rasql.ChaosConfig{Seed: seed, Rate: 0.05}
					got, metrics := runWithChaos(t, tc, cfg)
					if !got.EqualAsSet(want) {
						t.Errorf("%s seed %d: result diverged from fault-free run\n got: %v\nwant: %v",
							tc.name, seed, got.Sort(), want.Sort())
					}
					total = total.Add(metrics)
				}
			}
			if m.distributed {
				if total.TaskRetries == 0 {
					t.Errorf("no injected fault fired across any query/seed: %s", total)
				}
				if total.RecoveredIterations == 0 {
					t.Errorf("no iteration rollback happened across any query/seed: %s", total)
				}
			} else if total.TaskRetries != 0 || total.RecoveredIterations != 0 {
				t.Errorf("local mode ran cluster tasks under chaos: %s", total)
			}
		})
	}
}

// A scripted worst case: kill the first attempt of every partition of every
// occurrence of every stage. Recovery must still converge to the oracle.
func TestChaosEveryTaskFirstAttemptDies(t *testing.T) {
	var schedule []rasql.ChaosEvent
	for p := 0; p < 4; p++ {
		schedule = append(schedule, rasql.ChaosEvent{
			Stage: "", Occurrence: -1, Part: p, Attempt: 0, Kind: rasql.FaultTaskStart,
		})
	}
	for _, tc := range exampleCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, _ := runWithChaos(t, tc, rasql.Config{})
			cfg := rasql.Config{}
			cfg.Cluster.Chaos = rasql.ChaosConfig{Schedule: schedule}
			got, metrics := runWithChaos(t, tc, cfg)
			if !got.EqualAsSet(want) {
				t.Errorf("result diverged when every task's first attempt died\n got: %v\nwant: %v",
					got.Sort(), want.Sort())
			}
			// Non-linear cliques (party, company-control) fall back to the
			// local engine and run no cluster tasks — nothing to kill there.
			if metrics.TasksRun > 0 && metrics.TaskRetries == 0 {
				t.Errorf("schedule never fired: %s", metrics)
			}
		})
	}
}
