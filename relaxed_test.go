package rasql_test

import (
	"strings"
	"testing"

	rasql "github.com/rasql/rasql-go"
)

// The barrier-relaxation differential harness.
//
// SSP(k) and async execution reorder delta delivery arbitrarily (within the
// staleness bound), so they are only sound for confluent fixpoints — set
// semantics, or aggregates vet certifies PreM. For those, every schedule
// must reach the same fixpoint: the BSP run is a perfect oracle for every
// example query, under every staleness bound, under any fault schedule.

// relaxedModes are the barrier-relaxed configurations under differential
// test, as -mode flag strings (exercising the public ParseEvalMode path).
var relaxedModes = []string{"ssp:1", "ssp:4", "async"}

func relaxedConfig(t *testing.T, mode string) rasql.Config {
	t.Helper()
	m, k, err := rasql.ParseEvalMode(mode)
	if err != nil {
		t.Fatalf("ParseEvalMode(%q): %v", mode, err)
	}
	cfg := rasql.Config{}
	cfg.Fixpoint.Mode = m
	cfg.Fixpoint.Staleness = k
	return cfg
}

// stragglerSchedule rotates a straggler fault across partitions round by
// round — the skewed-executor scenario SSP exists to absorb.
func stragglerSchedule(parts, rounds int) []rasql.ChaosEvent {
	var sched []rasql.ChaosEvent
	for o := 0; o < rounds; o++ {
		sched = append(sched, rasql.ChaosEvent{
			Stage: "", Occurrence: o, Part: o % parts, Attempt: 0, Kind: rasql.FaultStraggler,
		})
	}
	return sched
}

// TestRelaxedDifferentialAllQueries: all 17 example queries, each relaxed
// mode, fault-free — results must be set-identical to the BSP oracle.
func TestRelaxedDifferentialAllQueries(t *testing.T) {
	for _, mode := range relaxedModes {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			for _, tc := range exampleCases() {
				want, _ := runWithChaos(t, tc, rasql.Config{})
				got, _ := runWithChaos(t, tc, relaxedConfig(t, mode))
				if !got.EqualAsSet(want) {
					t.Errorf("%s: relaxed result diverged from BSP\n got: %v\nwant: %v",
						tc.name, got.Sort(), want.Sort())
				}
			}
		})
	}
}

// TestRelaxedDifferentialUnderChaos re-runs the differential under three
// seeded fault schedules and a rotating straggler schedule: recovery and
// barrier relaxation must compose.
func TestRelaxedDifferentialUnderChaos(t *testing.T) {
	for _, mode := range relaxedModes {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			var total rasql.MetricsSnapshot
			for _, tc := range exampleCases() {
				want, _ := runWithChaos(t, tc, rasql.Config{})
				for _, seed := range []int64{1, 2, 3} {
					cfg := relaxedConfig(t, mode)
					cfg.Cluster.Chaos = rasql.ChaosConfig{Seed: seed, Rate: 0.05}
					got, metrics := runWithChaos(t, tc, cfg)
					if !got.EqualAsSet(want) {
						t.Errorf("%s seed %d: diverged from BSP oracle\n got: %v\nwant: %v",
							tc.name, seed, got.Sort(), want.Sort())
					}
					total = total.Add(metrics)
				}
				cfg := relaxedConfig(t, mode)
				cfg.Cluster.Chaos = rasql.ChaosConfig{Schedule: stragglerSchedule(4, 16)}
				got, metrics := runWithChaos(t, tc, cfg)
				if !got.EqualAsSet(want) {
					t.Errorf("%s straggler schedule: diverged from BSP oracle\n got: %v\nwant: %v",
						tc.name, got.Sort(), want.Sort())
				}
				total = total.Add(metrics)
			}
			if total.TaskRetries == 0 {
				t.Errorf("no injected fault fired across any query/seed: %s", total)
			}
		})
	}
}

// TestRelaxedStalenessTelemetry: certified queries requested relaxed must
// actually run relaxed — per-iteration events flagged Relaxed with the mode
// label — and the staleness counters must round-trip through the snapshot
// string so tooling (rasql -metrics, the bench harness) can read them.
func TestRelaxedStalenessTelemetry(t *testing.T) {
	var total rasql.MetricsSnapshot
	relaxedRan := 0
	for _, tc := range exampleCases() {
		cfg := relaxedConfig(t, "ssp:2")
		cfg.Cluster.Workers = 4
		cfg.Cluster.Partitions = 4
		eng := rasql.New(cfg)
		for _, tab := range tc.tables() {
			eng.MustRegister(tab.Clone())
		}
		tr := rasql.NewIterationsTracer()
		eng.SetTracer(tr)
		if _, err := eng.Query(tc.query); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, ev := range tr.Iterations() {
			if ev.Relaxed {
				if ev.Mode != "dsn-ssp(2)" {
					t.Errorf("%s: relaxed event mode = %q, want dsn-ssp(2)", tc.name, ev.Mode)
				}
				relaxedRan++
			}
		}
		total = total.Add(eng.Metrics())
	}
	// Most example queries are certified (or set-semantics) and must have
	// gone down the relaxed path; fallback may only claim the uncertified
	// minority.
	if relaxedRan == 0 {
		t.Fatalf("no query produced relaxed iteration events: %s", total)
	}
	for _, name := range []string{"staleReads", "supersededRows", "barrierWaitNanos"} {
		if !strings.Contains(total.String(), name+"=") {
			t.Errorf("snapshot string misses %s: %s", name, total)
		}
	}
}

// TestRelaxedFallbackUncertified: a query vet cannot certify must
// transparently downgrade to BSP, record why on the trace, and still return
// the BSP answer — with vet's own verdict unchanged by the mode request.
func TestRelaxedFallbackUncertified(t *testing.T) {
	// The anti-monotone filter (path.Cost >= 5) refutes PreM certification
	// (RV002) but the min fixpoint itself still terminates, so the query
	// runs fine under BSP.
	const q = `
		WITH recursive path (Dst, min() AS Cost) AS
		    (SELECT 1, 0) UNION
		    (SELECT edge.Dst, path.Cost + edge.Cost
		     FROM path, edge
		     WHERE path.Dst = edge.Src AND path.Cost >= 5)
		SELECT Dst, Cost FROM path`

	mkEngine := func(cfg rasql.Config) *rasql.Engine {
		cfg.Cluster.Workers = 4
		cfg.Cluster.Partitions = 4
		eng := rasql.New(cfg)
		eng.MustRegister(weightedEdges())
		return eng
	}

	// Precondition: vet really does reject this clique.
	rep, err := mkEngine(rasql.Config{}).Vet(q)
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	if rep.Verdict() != rasql.VetRefuted {
		t.Fatalf("precondition: vet verdict = %v, want refuted", rep.Verdict())
	}

	want, err := mkEngine(rasql.Config{}).Query(q)
	if err != nil {
		t.Fatalf("bsp: %v", err)
	}
	eng := mkEngine(relaxedConfig(t, "async"))
	tr := rasql.NewTracer()
	eng.SetTracer(tr)
	got, err := eng.Query(q)
	if err != nil {
		t.Fatalf("async: %v", err)
	}
	if !got.EqualAsSet(want) {
		t.Errorf("fallback result diverged\n got: %v\nwant: %v", got.Sort(), want.Sort())
	}
	found := false
	for _, ev := range tr.Events() {
		if strings.HasPrefix(ev.Name, "bsp fallback:") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no traced fallback reason for an uncertified clique")
	}
}
