// Social-network analytics: connected components by label propagation and
// the mutually recursive Party Attendance query (paper Examples 2 and 7).
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/queries"
)

func main() {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(makeFriendGraph(400, 3, 77))

	// Connected components: min() label propagation in recursion.
	res, err := eng.Query(queries.CC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("The friendship graph has %s connected components.\n", res.Rows[0][0])

	sizes, err := eng.Query(`
		WITH recursive cc (Src, min() AS CmpId) AS
		    (SELECT Src, Src FROM edge) UNION
		    (SELECT edge.Dst, cc.CmpId FROM cc, edge WHERE cc.Src = edge.Src)
		SELECT CmpId, count(*) FROM cc GROUP BY CmpId ORDER BY 2 DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLargest components (label, members):")
	fmt.Print(sizes.Format(-1))

	// Party attendance: mutual recursion between a set view (attend) and
	// a count view (cntfriends) — who shows up if people need 3 attending
	// friends?
	party := rasql.New(rasql.Config{})
	organizer, friend := makeParty(120, 5, 99)
	party.MustRegister(organizer)
	party.MustRegister(friend)
	attendees, err := party.Query(queries.Party)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nParty: %d organizers convinced %d people to attend in total.\n",
		organizer.Len(), attendees.Len())
}

// makeFriendGraph builds a symmetric random graph of k islands.
func makeFriendGraph(n, islands int, seed int64) *rasql.Relation {
	rng := rand.New(rand.NewSource(seed))
	edge := rasql.NewRelation("edge", rasql.NewSchema(
		rasql.Col("Src", rasql.KindInt), rasql.Col("Dst", rasql.KindInt)))
	per := n / islands
	for i := 0; i < islands; i++ {
		base := int64(i * per)
		for e := 0; e < per*3; e++ {
			a := base + rng.Int63n(int64(per))
			b := base + rng.Int63n(int64(per))
			if a == b {
				continue
			}
			edge.Append(rasql.Row{rasql.Int(a), rasql.Int(b)})
			edge.Append(rasql.Row{rasql.Int(b), rasql.Int(a)})
		}
	}
	return edge
}

// makeParty builds organizers plus a random friendship relation; friend
// rows are (Pname, Fname) pairs as in the paper.
func makeParty(people, organizers int, seed int64) (organizer, friend *rasql.Relation) {
	rng := rand.New(rand.NewSource(seed))
	organizer = rasql.NewRelation("organizer", rasql.NewSchema(
		rasql.Col("OrgName", rasql.KindString)))
	friend = rasql.NewRelation("friend", rasql.NewSchema(
		rasql.Col("Pname", rasql.KindString), rasql.Col("Fname", rasql.KindString)))
	name := func(i int64) string { return fmt.Sprintf("p%03d", i) }
	for i := 0; i < organizers; i++ {
		organizer.Append(rasql.Row{rasql.Str(name(int64(i)))})
	}
	for i := 0; i < people*8; i++ {
		a, b := rng.Int63n(int64(people)), rng.Int63n(int64(people))
		if a == b {
			continue
		}
		friend.Append(rasql.Row{rasql.Str(name(a)), rasql.Str(name(b))})
	}
	return organizer, friend
}
