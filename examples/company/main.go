// Corporate analytics: transitive company control through share majorities
// (mutual recursion over a sum aggregate) and multi-level-marketing bonus
// computation (paper Examples 5 and 8).
//
//	go run ./examples/company
package main

import (
	"fmt"
	"log"
	"math/rand"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/queries"
)

func main() {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(makeShares(60, 4242))

	control, err := eng.Query(`
		WITH recursive cshares(ByCom, OfCom, sum() AS Tot) AS
		    (SELECT By, Of, Percent FROM shares) UNION
		    (SELECT control.Com1, cshares.OfCom, cshares.Tot
		     FROM control, cshares WHERE control.Com2 = cshares.ByCom),
		recursive control(Com1, Com2) AS
		    (SELECT ByCom, OfCom FROM cshares WHERE Tot > 50)
		SELECT Com1, Com2 FROM control`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Control relationships (direct + indirect majorities): %d\n", control.Len())
	fmt.Print(control.Sort().Format(10))

	holdings, err := eng.Query(queries.CompanyControl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEffective share holdings (cshares): %d rows\n", holdings.Len())

	// MLM bonuses on a sponsorship pyramid.
	mlm := rasql.New(rasql.Config{})
	sales, sponsor := makePyramid(5, 3, 7)
	mlm.MustRegister(sales)
	mlm.MustRegister(sponsor)
	bonus, err := mlm.Query(queries.MLM)
	if err != nil {
		log.Fatal(err)
	}
	top, err := mlm.Query(`
		WITH recursive bonus(M, sum() as B) AS
		    (SELECT M, P*0.1 FROM sales) UNION
		    (SELECT sponsor.M1, bonus.B*0.5 FROM bonus, sponsor
		     WHERE bonus.M = sponsor.M2)
		SELECT M, B FROM bonus ORDER BY B DESC LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMLM: computed bonuses for %d members; top earners:\n", bonus.Len())
	fmt.Print(top.Format(-1))
}

// makeShares generates a random share-holding relation among n companies
// named c00..; percentages are small so control chains emerge from sums.
func makeShares(n int, seed int64) *rasql.Relation {
	rng := rand.New(rand.NewSource(seed))
	shares := rasql.NewRelation("shares", rasql.NewSchema(
		rasql.Col("By", rasql.KindString), rasql.Col("Of", rasql.KindString),
		rasql.Col("Percent", rasql.KindInt)))
	name := func(i int) string { return fmt.Sprintf("c%02d", i) }
	for of := 1; of < n; of++ {
		remaining := int64(100)
		holders := 1 + rng.Intn(3)
		for h := 0; h < holders && remaining > 0; h++ {
			by := rng.Intn(of) // earlier companies hold later ones
			pct := rng.Int63n(remaining) + 1
			remaining -= pct
			shares.Append(rasql.Row{rasql.Str(name(by)), rasql.Str(name(of)), rasql.Int(pct)})
		}
	}
	return shares
}

// makePyramid builds a sponsorship tree with per-member sales.
func makePyramid(depth, fanout int, seed int64) (sales, sponsor *rasql.Relation) {
	rng := rand.New(rand.NewSource(seed))
	sales = rasql.NewRelation("sales", rasql.NewSchema(
		rasql.Col("M", rasql.KindInt), rasql.Col("P", rasql.KindFloat)))
	sponsor = rasql.NewRelation("sponsor", rasql.NewSchema(
		rasql.Col("M1", rasql.KindInt), rasql.Col("M2", rasql.KindInt)))
	next := int64(1)
	frontier := []int64{0}
	sales.Append(rasql.Row{rasql.Int(0), rasql.Float(float64(100 + rng.Intn(900)))})
	for level := 0; level < depth; level++ {
		var nf []int64
		for _, p := range frontier {
			for c := 0; c < fanout; c++ {
				sponsor.Append(rasql.Row{rasql.Int(p), rasql.Int(next)})
				sales.Append(rasql.Row{rasql.Int(next), rasql.Float(float64(100 + rng.Intn(900)))})
				nf = append(nf, next)
				next++
			}
		}
		frontier = nf
	}
	return sales, sponsor
}
