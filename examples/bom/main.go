// Bill of Materials (the paper's running example, Section 2): compute how
// many days each assembled part waits for its sub-parts, with max() inside
// the recursion — and verify the PreM guarantee by checking the stratified
// SQL:99 version (Q1) returns the same answer as the endo-max RaSQL version
// (Q2).
//
//	go run ./examples/bom
package main

import (
	"fmt"
	"log"
	"math/rand"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/queries"
)

func main() {
	assbl, basic := makeAssembly(4, 3, 2222)
	fmt.Printf("Assembly: %d sub-part relationships, %d purchased parts\n\n",
		assbl.Len(), basic.Len())

	eng := rasql.New(rasql.Config{})
	eng.MustRegister(assbl)
	eng.MustRegister(basic)

	// The endo-max version (Q2): the max is applied during the fixpoint.
	q2, err := eng.Query(queries.Delivery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Days till delivery (endo-max Q2), first parts:")
	fmt.Print(q2.Sort().Format(8))

	// The stratified version (Q1): the recursion enumerates every
	// propagated Days value and the max applies afterwards. Same answer —
	// PreM holds — but far more work.
	q1, err := eng.Query(queries.DeliveryStratified)
	if err != nil {
		log.Fatal(err)
	}
	if !q1.EqualAsSet(q2) {
		log.Fatal("Q1 and Q2 disagree — PreM violated?!")
	}
	fmt.Println("\nStratified Q1 returned the identical relation (PreM holds).")

	root, err := eng.Query(`
		WITH recursive waitfor(Part, max() as Days) AS
		    (SELECT Part, Days FROM basic) UNION
		    (SELECT assbl.Part, waitfor.Days
		     FROM assbl, waitfor WHERE assbl.Spart = waitfor.Part)
		SELECT Part, Days FROM waitfor WHERE Part = 0`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFinal product (part 0) is ready after: %s days\n", root.Rows[0][1])
}

// makeAssembly builds a random assembly tree: part 0 is the product; each
// internal part has 2..fanout sub-parts; leaves are purchased parts with a
// random delivery time.
func makeAssembly(depth, fanout int, seed int64) (assbl, basic *rasql.Relation) {
	rng := rand.New(rand.NewSource(seed))
	assbl = rasql.NewRelation("assbl", rasql.NewSchema(
		rasql.Col("Part", rasql.KindInt), rasql.Col("Spart", rasql.KindInt)))
	basic = rasql.NewRelation("basic", rasql.NewSchema(
		rasql.Col("Part", rasql.KindInt), rasql.Col("Days", rasql.KindInt)))

	next := int64(1)
	type item struct {
		id    int64
		level int
	}
	stack := []item{{0, 0}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if it.level == depth {
			basic.Append(rasql.Row{rasql.Int(it.id), rasql.Int(int64(1 + rng.Intn(30)))})
			continue
		}
		kids := 2 + rng.Intn(fanout-1)
		for c := 0; c < kids; c++ {
			assbl.Append(rasql.Row{rasql.Int(it.id), rasql.Int(next)})
			stack = append(stack, item{next, it.level + 1})
			next++
		}
	}
	return assbl, basic
}
