// Quickstart: single-source shortest paths with an aggregate-in-recursion
// query on a small weighted graph.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/queries"
)

func main() {
	// 1. Build a base table. Relations are plain schemas plus rows; most
	// real programs load them with rasql.ReadCSVFile.
	edge := rasql.NewRelation("edge", rasql.NewSchema(
		rasql.Col("Src", rasql.KindInt),
		rasql.Col("Dst", rasql.KindInt),
		rasql.Col("Cost", rasql.KindFloat),
	))
	for _, e := range [][3]float64{
		{1, 2, 1}, {1, 3, 4}, {2, 3, 2}, {3, 4, 1},
		{4, 2, 5}, {2, 5, 10}, {5, 1, 1}, // note the cycles
	} {
		edge.Append(rasql.Row{rasql.Int(int64(e[0])), rasql.Int(int64(e[1])), rasql.Float(e[2])})
	}

	// 2. Create an engine (default: distributed semi-naive evaluation on a
	// simulated cluster with all paper optimizations on) and register the
	// table.
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(edge)

	// 3. Run the paper's SSSP query: min() in the recursive CTE head makes
	// the recursion terminate even though the graph has cycles.
	fmt.Println("Query:")
	fmt.Println(queries.SSSP)

	plan, err := eng.Explain(queries.SSSP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPlan:")
	fmt.Print(plan)

	res, err := eng.Query(queries.SSSP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nShortest paths from node 1:")
	fmt.Print(res.Sort().Format(-1))

	m := eng.Metrics()
	fmt.Printf("\nExecution: %d fixpoint iterations, %d stages, %d shuffled bytes\n",
		m.Iterations, m.StagesRun, m.ShuffleBytes)
}
