package rasql_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	rasql "github.com/rasql/rasql-go"
)

const ssspQuery = `
	WITH recursive path (Dst, min() AS Cost) AS
	    (SELECT 1, 0.0) UNION
	    (SELECT edge.Dst, path.Cost + edge.Cost
	     FROM path, edge WHERE path.Dst = edge.Src)
	SELECT Dst, Cost FROM path`

// TestQueryStatsFold checks the full per-query stats pipeline: every Exec
// folds one QueryStats into the engine recorder, carrying the query ID,
// latency, iteration count, shuffle attribution and the fixpoint mode.
func TestQueryStatsFold(t *testing.T) {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(weightedEdges())
	if _, ok := eng.Observability().Last(); ok {
		t.Fatal("fresh engine already has a QueryStats record")
	}
	if _, err := eng.Query(ssspQuery); err != nil {
		t.Fatal(err)
	}
	s, ok := eng.Observability().Last()
	if !ok {
		t.Fatal("no QueryStats after a successful query")
	}
	if s.ID != 1 {
		t.Errorf("first query ID = %d, want 1", s.ID)
	}
	if s.WallNanos <= 0 || s.Iterations <= 0 || s.ShuffleBytes <= 0 {
		t.Errorf("stats not attributed: wall=%d iters=%d shuffle=%d", s.WallNanos, s.Iterations, s.ShuffleBytes)
	}
	if s.Mode != "bsp" {
		t.Errorf("mode = %q, want bsp", s.Mode)
	}
	if s.Err != "" {
		t.Errorf("Err = %q on a successful query", s.Err)
	}

	// A second query gets the next ID; a failing script records its error.
	if _, err := eng.Query(`SELECT Nope FROM edge`); err == nil {
		t.Fatal("bad query did not error")
	}
	s, _ = eng.Observability().Last()
	if s.ID != 2 || s.Err == "" {
		t.Errorf("failed query stats = ID %d, Err %q; want ID 2 with error text", s.ID, s.Err)
	}
	if got := len(eng.Observability().Recent()); got != 2 {
		t.Errorf("Recent() holds %d records, want 2", got)
	}
}

// TestQueryStatsLocalMode checks mode attribution on the local-engine paths:
// a forced-local engine and a clique the distributed engine rejects.
func TestQueryStatsLocalMode(t *testing.T) {
	eng := rasql.New(rasql.Config{ForceLocal: true})
	eng.MustRegister(weightedEdges())
	if _, err := eng.Query(ssspQuery); err != nil {
		t.Fatal(err)
	}
	if s, _ := eng.Observability().Last(); s.Mode != "local" {
		t.Errorf("forced-local mode = %q, want local", s.Mode)
	}

	// Non-linear recursion falls back to the local engine with a reason.
	eng2 := rasql.New(rasql.Config{})
	eng2.MustRegister(plainEdges([2]int64{1, 2}, [2]int64{2, 3}))
	nonlinear := `
		WITH recursive tc (Src, Dst) AS
		    (SELECT Src, Dst FROM edge) UNION
		    (SELECT a.Src, b.Dst FROM tc a, tc b WHERE a.Dst = b.Src)
		SELECT count(*) FROM tc`
	if _, err := eng2.Query(nonlinear); err != nil {
		t.Fatal(err)
	}
	s, _ := eng2.Observability().Last()
	if s.Mode != "local" || s.FallbackReason == "" {
		t.Errorf("non-linear clique stats = mode %q, fallback %q; want local with a reason", s.Mode, s.FallbackReason)
	}
}

// TestConcurrentQueryStats runs queries from many goroutines on one engine:
// every query must fold exactly once with a unique ID, and the registry
// exposition must stay strict-parser clean under concurrent scrapes.
func TestConcurrentQueryStats(t *testing.T) {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(weightedEdges())
	const goroutines, perG = 4, 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := eng.Query(ssspQuery); err != nil {
					t.Error(err)
					return
				}
				var buf bytes.Buffer
				if err := eng.Observability().Registry().WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				if err := rasql.ValidatePrometheus(buf.Bytes()); err != nil {
					t.Errorf("mid-run exposition invalid: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	recent := eng.Observability().Recent()
	if len(recent) != goroutines*perG {
		t.Fatalf("recorded %d QueryStats, want %d", len(recent), goroutines*perG)
	}
	ids := map[uint64]bool{}
	for _, s := range recent {
		if ids[s.ID] {
			t.Errorf("duplicate query ID %d", s.ID)
		}
		ids[s.ID] = true
		if s.Err != "" {
			t.Errorf("query %d recorded error %q", s.ID, s.Err)
		}
	}
	if h := eng.Observability().QueryLatency(); h.Count() != goroutines*perG {
		t.Errorf("latency histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
}

// TestConcurrentQueriesTraceExport attaches one tracer while concurrent
// queries run: the shared log must export per-query processes that pass
// Chrome validation.
func TestConcurrentQueriesTraceExport(t *testing.T) {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(weightedEdges())
	eng.SetTracer(rasql.NewTracer())
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Query(ssspQuery); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := eng.Tracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rasql.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("concurrent-query trace does not validate: %v", err)
	}
	out := buf.String()
	// Three queries: qid 1 shares pid 1 with the root handle, 2 and 3 get
	// their own named processes.
	for _, want := range []string{`"rasql query 2"`, `"rasql query 3"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing process name %s", want)
		}
	}
}
