GO ?= go

.PHONY: build test vet race race-concurrent ssp-differential fuzz lint rasql-lint allocs golangci ci

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/fixpoint/... ./internal/cluster/... .

# Differential proof of the concurrency model (DESIGN.md §10): one shared
# engine, many goroutines, results must match a sequential oracle.
race-concurrent:
	$(GO) test -race -shuffle=on -run TestConcurrent .

# Differential proof of the barrier-relaxed modes (DESIGN.md §11): every
# example query under ssp:1/ssp:4/async must match the BSP oracle, with
# and without chaos, under the race detector.
ssp-differential:
	$(GO) test -race -shuffle=on -run TestRelaxed . ./internal/fixpoint/ ./internal/cluster/

# Short smoke of every fuzz target (wire format, row keys, SQL parser);
# crashers land in testdata/fuzz/ — check them in as regression seeds.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeRowsAppend$$' -fuzztime 30s ./internal/types/
	$(GO) test -run '^$$' -fuzz '^FuzzRowKey$$' -fuzztime 30s ./internal/types/
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 30s ./internal/sql/parser/

# Engine-invariant checkers (internal/analysis): standalone whole-program
# pass, then the go vet driver so _test.go files are covered too.
rasql-lint:
	$(GO) build -o bin/rasql-lint ./cmd/rasql-lint
	./bin/rasql-lint ./...
	$(GO) vet -vettool=$$PWD/bin/rasql-lint ./...

# Allocation-contract drift check (DESIGN.md §12): every //rasql:noalloc
# annotation must be dynamically pinned by an //rasql:allocpin comment on
# the AllocsPerRun test or -benchmem benchmark that exercises it (and no
# pin may outlive its annotation), then the zero-alloc pins themselves run.
allocs:
	$(GO) build -o bin/rasql-lint ./cmd/rasql-lint
	./bin/rasql-lint -allocdrift ./...
	$(GO) test -run ZeroAllocs ./internal/types/ ./internal/cluster/ ./internal/trace/

# Requires golangci-lint (https://golangci-lint.run); CI installs it via
# the golangci-lint-action.
golangci:
	golangci-lint run

lint: rasql-lint

ci: build vet test race race-concurrent ssp-differential rasql-lint allocs
