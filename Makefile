GO ?= go

.PHONY: build test vet race lint rasql-lint golangci ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/fixpoint/... ./internal/cluster/...

# Engine-invariant checkers (internal/analysis): standalone whole-program
# pass, then the go vet driver so _test.go files are covered too.
rasql-lint:
	$(GO) build -o bin/rasql-lint ./cmd/rasql-lint
	./bin/rasql-lint ./...
	$(GO) vet -vettool=$$PWD/bin/rasql-lint ./...

# Requires golangci-lint (https://golangci-lint.run); CI installs it via
# the golangci-lint-action.
golangci:
	golangci-lint run

lint: rasql-lint

ci: build vet test race rasql-lint
