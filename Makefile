GO ?= go

.PHONY: build test vet race race-concurrent race-server ssp-differential fuzz lint rasql-lint allocs metrics-smoke serve-smoke golangci ci

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/fixpoint/... ./internal/cluster/... .

# Differential proof of the concurrency model (DESIGN.md §10): one shared
# engine, many goroutines, results must match a sequential oracle.
race-concurrent:
	$(GO) test -race -shuffle=on -run TestConcurrent .

# Differential proof of the serving layer (DESIGN.md §14): all example
# queries through a real HTTP server — fresh and shared sessions, 8
# concurrent HTTP clients — must match the in-process oracle, and the
# plan cache must hold its counter invariant under DDL churn, all under
# the race detector.
race-server:
	$(GO) test -race -shuffle=on -run 'TestServerDifferential|TestServerConcurrentClients' .
	$(GO) test -race -shuffle=on -run TestPlanCacheConcurrentStress ./internal/server/

# Differential proof of the barrier-relaxed modes (DESIGN.md §11): every
# example query under ssp:1/ssp:4/async must match the BSP oracle, with
# and without chaos, under the race detector.
ssp-differential:
	$(GO) test -race -shuffle=on -run TestRelaxed . ./internal/fixpoint/ ./internal/cluster/

# Short smoke of every fuzz target (wire format, row keys, SQL parser);
# crashers land in testdata/fuzz/ — check them in as regression seeds.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeRowsAppend$$' -fuzztime 30s ./internal/types/
	$(GO) test -run '^$$' -fuzz '^FuzzRowKey$$' -fuzztime 30s ./internal/types/
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 30s ./internal/sql/parser/

# Engine-invariant checkers (internal/analysis): standalone whole-program
# pass, then the go vet driver so _test.go files are covered too.
rasql-lint:
	$(GO) build -o bin/rasql-lint ./cmd/rasql-lint
	./bin/rasql-lint ./...
	$(GO) vet -vettool=$$PWD/bin/rasql-lint ./...

# Allocation-contract drift check (DESIGN.md §12): every //rasql:noalloc
# annotation must be dynamically pinned by an //rasql:allocpin comment on
# the AllocsPerRun test or -benchmem benchmark that exercises it (and no
# pin may outlive its annotation), then the zero-alloc pins themselves run.
allocs:
	$(GO) build -o bin/rasql-lint ./cmd/rasql-lint
	./bin/rasql-lint -allocdrift ./...
	$(GO) test -run ZeroAllocs ./internal/types/ ./internal/cluster/ ./internal/trace/ ./internal/obs/

# Serving-metrics smoke (DESIGN.md §13): closed-loop concurrent clients on
# one shared engine, the Prometheus exposition round-tripped through the
# strict in-repo parser, and throughput/percentile columns asserted in the
# machine-readable bench output. Requires jq.
metrics-smoke:
	$(GO) build -o bin/rasql ./cmd/rasql
	$(GO) build -o bin/rasql-bench ./cmd/rasql-bench
	./bin/rasql-bench -quick -run fig5,fig8 -clients 4 -duration 2s \
		-json bench-metrics.json -metrics-out metrics.prom -quiet
	./bin/rasql prom-verify metrics.prom
	jq -e 'length == 2 and all(.[]; .qps > 0 and .p50_nanos > 0 and .p99_nanos >= .p50_nanos and .queries > 0)' bench-metrics.json

# Serving lifecycle smoke (DESIGN.md §14): start rasqld on the demo
# graph, run two HTTP queries (the second must hit the plan cache),
# scrape /metrics, SIGTERM, and require a clean drain (exit 0); the
# final exposition written by -metrics-out must survive prom-verify.
serve-smoke:
	$(GO) build -o bin/rasql ./cmd/rasql
	$(GO) build -o bin/rasqld ./cmd/rasqld
	./bin/rasqld -demo -listen 127.0.0.1:18123 -metrics-out rasqld-metrics.prom & \
	pid=$$!; \
	ok=0; for i in $$(seq 1 50); do \
		if curl -sf 127.0.0.1:18123/healthz >/dev/null 2>&1; then ok=1; break; fi; sleep 0.1; \
	done; test $$ok -eq 1; \
	curl -sf 127.0.0.1:18123/v1/query -d '{"sql":"SELECT count(*) FROM edge"}' | grep -q '"row_count":1'; \
	curl -sf 127.0.0.1:18123/v1/query -d '{"sql":"select COUNT(*) from EDGE"}' | grep -q '"cached":true'; \
	curl -sf 127.0.0.1:18123/metrics | grep -q '^rasql_plan_cache_hits_total 1$$'; \
	curl -sf 127.0.0.1:18123/readyz >/dev/null; \
	kill -TERM $$pid; \
	wait $$pid
	./bin/rasql prom-verify rasqld-metrics.prom

# Requires golangci-lint (https://golangci-lint.run); CI installs it via
# the golangci-lint-action.
golangci:
	golangci-lint run

lint: rasql-lint

ci: build vet test race race-concurrent race-server ssp-differential rasql-lint allocs metrics-smoke serve-smoke
