GO ?= go

.PHONY: build test vet race race-concurrent ssp-differential fuzz lint rasql-lint allocs metrics-smoke golangci ci

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/fixpoint/... ./internal/cluster/... .

# Differential proof of the concurrency model (DESIGN.md §10): one shared
# engine, many goroutines, results must match a sequential oracle.
race-concurrent:
	$(GO) test -race -shuffle=on -run TestConcurrent .

# Differential proof of the barrier-relaxed modes (DESIGN.md §11): every
# example query under ssp:1/ssp:4/async must match the BSP oracle, with
# and without chaos, under the race detector.
ssp-differential:
	$(GO) test -race -shuffle=on -run TestRelaxed . ./internal/fixpoint/ ./internal/cluster/

# Short smoke of every fuzz target (wire format, row keys, SQL parser);
# crashers land in testdata/fuzz/ — check them in as regression seeds.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeRowsAppend$$' -fuzztime 30s ./internal/types/
	$(GO) test -run '^$$' -fuzz '^FuzzRowKey$$' -fuzztime 30s ./internal/types/
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 30s ./internal/sql/parser/

# Engine-invariant checkers (internal/analysis): standalone whole-program
# pass, then the go vet driver so _test.go files are covered too.
rasql-lint:
	$(GO) build -o bin/rasql-lint ./cmd/rasql-lint
	./bin/rasql-lint ./...
	$(GO) vet -vettool=$$PWD/bin/rasql-lint ./...

# Allocation-contract drift check (DESIGN.md §12): every //rasql:noalloc
# annotation must be dynamically pinned by an //rasql:allocpin comment on
# the AllocsPerRun test or -benchmem benchmark that exercises it (and no
# pin may outlive its annotation), then the zero-alloc pins themselves run.
allocs:
	$(GO) build -o bin/rasql-lint ./cmd/rasql-lint
	./bin/rasql-lint -allocdrift ./...
	$(GO) test -run ZeroAllocs ./internal/types/ ./internal/cluster/ ./internal/trace/ ./internal/obs/

# Serving-metrics smoke (DESIGN.md §13): closed-loop concurrent clients on
# one shared engine, the Prometheus exposition round-tripped through the
# strict in-repo parser, and throughput/percentile columns asserted in the
# machine-readable bench output. Requires jq.
metrics-smoke:
	$(GO) build -o bin/rasql ./cmd/rasql
	$(GO) build -o bin/rasql-bench ./cmd/rasql-bench
	./bin/rasql-bench -quick -run fig5,fig8 -clients 4 -duration 2s \
		-json bench-metrics.json -metrics-out metrics.prom -quiet
	./bin/rasql prom-verify metrics.prom
	jq -e 'length == 2 and all(.[]; .qps > 0 and .p50_nanos > 0 and .p99_nanos >= .p50_nanos and .queries > 0)' bench-metrics.json

# Requires golangci-lint (https://golangci-lint.run); CI installs it via
# the golangci-lint-action.
golangci:
	golangci-lint run

lint: rasql-lint

ci: build vet test race race-concurrent ssp-differential rasql-lint allocs metrics-smoke
