GO ?= go

.PHONY: build test vet race lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/fixpoint/... ./internal/cluster/...

# Requires golangci-lint (https://golangci-lint.run); CI installs it via
# the golangci-lint-action.
lint:
	golangci-lint run

ci: build vet test race
