package rasql_test

import (
	"fmt"
	"math/rand"
	"testing"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/gap"
	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/queries"
)

// Property tests: on random graphs, the SQL engine must agree with
// independently implemented algorithms (BFS, Bellman-Ford, label
// propagation, brute-force reachability).

func toPublic(rel *relation.Relation) *rasql.Relation { return rel }

func TestPropertySSSPAgainstBellmanFord(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		g := gen.RMATDefault(200, gen.Rng(int64(trial)*7+1))
		eng := rasql.New(rasql.Config{})
		eng.MustRegister(toPublic(g))
		got, err := eng.Query(queries.SSSP)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := gap.NewCSR(g).SSSP(1)
		if got.Len() != len(want) {
			t.Fatalf("trial %d: %d rows vs %d reachable", trial, got.Len(), len(want))
		}
		for _, r := range got.Rows {
			if d, ok := want[r[0].AsInt()]; !ok || d != r[1].AsFloat() {
				t.Fatalf("trial %d: dist[%d] = %v, want %v", trial, r[0].AsInt(), r[1], d)
			}
		}
	}
}

func TestPropertyReachAgainstBFS(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		g := gen.Unweighted(gen.RMATDefault(300, gen.Rng(int64(trial)*13+5)))
		eng := rasql.New(rasql.Config{})
		eng.MustRegister(toPublic(g))
		got, err := eng.Query(queries.Reach)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := gap.ReachRelation(gap.NewCSR(g).BFS(1))
		if !got.EqualAsSet(want) {
			t.Fatalf("trial %d: REACH disagrees with BFS (%d vs %d rows)", trial, got.Len(), want.Len())
		}
	}
}

func TestPropertyCCAgainstLabelPropagation(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		g := gen.Symmetrized(gen.Unweighted(gen.RMATDefault(150, gen.Rng(int64(trial)*3+11))))
		eng := rasql.New(rasql.Config{})
		eng.MustRegister(toPublic(g))
		got, err := eng.Query(queries.CCLabels)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := gap.CCRelation(gap.NewCSR(g).CC())
		if !got.EqualAsSet(want) {
			t.Fatalf("trial %d: CC disagrees with label propagation", trial)
		}
	}
}

func TestPropertyTCAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		n := 20
		var pairs [][2]int64
		for i := 0; i < 50; i++ {
			a, b := rng.Int63n(int64(n)), rng.Int63n(int64(n))
			pairs = append(pairs, [2]int64{a, b})
		}
		edges := plainEdges(pairs...)
		eng := rasql.New(rasql.Config{})
		eng.MustRegister(edges)
		got, err := eng.Query(queries.TC)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute-force transitive closure via repeated squaring of the
		// reachability matrix.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = make([]bool, n)
		}
		for _, p := range pairs {
			reach[p[0]][p[1]] = true
		}
		for changed := true; changed; {
			changed = false
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if !reach[i][j] {
						continue
					}
					for k := 0; k < n; k++ {
						if reach[j][k] && !reach[i][k] {
							reach[i][k] = true
							changed = true
						}
					}
				}
			}
		}
		want := rasql.NewRelation("want", edges.Schema)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if reach[i][j] {
					want.Append(iRow(int64(i), int64(j)))
				}
			}
		}
		if !got.EqualAsSet(want) {
			t.Fatalf("trial %d: TC disagrees with brute force (%d vs %d rows)",
				trial, got.Clone().Dedup().Len(), want.Len())
		}
	}
}

func TestPropertyCountPathsAgainstDP(t *testing.T) {
	// Random DAGs (edges only from lower to higher ids): path counts from
	// node 1 must match dynamic programming in topological order.
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 5; trial++ {
		n := int64(15)
		var pairs [][2]int64
		for i := 0; i < 40; i++ {
			a := rng.Int63n(n - 1)
			b := a + 1 + rng.Int63n(n-a-1)
			pairs = append(pairs, [2]int64{a + 1, b + 1}) // ids 1..n
		}
		edges := plainEdges(pairs...)
		eng := rasql.New(rasql.Config{})
		eng.MustRegister(edges)
		got, err := eng.Query(queries.CountPaths)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		counts := map[int64]int64{1: 1}
		for v := int64(2); v <= n; v++ {
			for _, p := range pairs {
				if p[1] == v {
					counts[v] += counts[p[0]]
				}
			}
		}
		for _, r := range got.Rows {
			if counts[r[0].AsInt()] != r[1].AsInt() {
				t.Fatalf("trial %d: paths to %d = %v, want %d (graph %v)",
					trial, r[0].AsInt(), r[1], counts[r[0].AsInt()], pairs)
			}
		}
		for v, c := range counts {
			if c == 0 {
				continue
			}
			found := false
			for _, r := range got.Rows {
				if r[0].AsInt() == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("trial %d: node %d missing from result", trial, v)
			}
		}
	}
}

func TestPropertyDeliveryAgainstRecursiveMax(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		tr := gen.NewTree(5, 2, 4, 0.3, 0, gen.Rng(int64(trial)+50))
		assbl, basic := tr.AssblBasic(50, gen.Rng(int64(trial)+51))
		eng := rasql.New(rasql.Config{})
		eng.MustRegister(toPublic(assbl))
		eng.MustRegister(toPublic(basic))
		got, err := eng.Query(queries.Delivery)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Independent recursion over the tree.
		days := map[int64]int64{}
		for _, r := range basic.Rows {
			days[r[0].AsInt()] = r[1].AsInt()
		}
		var solve func(node int64) int64
		children := map[int64][]int64{}
		for i := 1; i < tr.Len(); i++ {
			children[int64(tr.Parent[i])] = append(children[int64(tr.Parent[i])], int64(i))
		}
		solve = func(node int64) int64 {
			if d, ok := days[node]; ok && tr.IsLeaf[node] {
				return d
			}
			best := int64(0)
			for _, c := range children[node] {
				if d := solve(c); d > best {
					best = d
				}
			}
			return best
		}
		for _, r := range got.Rows {
			if want := solve(r[0].AsInt()); want != r[1].AsInt() {
				t.Fatalf("trial %d: waitfor[%d] = %v, want %d", trial, r[0].AsInt(), r[1], want)
			}
		}
	}
}

// The engines must agree regardless of partition counts (DSN invariance).
func TestPropertyPartitionCountInvariance(t *testing.T) {
	g := gen.RMATDefault(300, gen.Rng(9))
	var results []*rasql.Relation
	for _, parts := range []int{1, 2, 5, 9, 16} {
		eng := rasql.New(rasql.Config{Cluster: rasql.ClusterConfig{Workers: 4, Partitions: parts}})
		eng.MustRegister(toPublic(g))
		got, err := eng.Query(queries.SSSP)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		results = append(results, got)
	}
	for i := 1; i < len(results); i++ {
		if !results[0].EqualAsSet(results[i]) {
			t.Fatalf("result differs between partition configurations %d and %d", 0, i)
		}
	}
}

// DSN results must be invariant under the stage execution mode: the
// parallel default (one goroutine per simulated worker) and the sequential
// debugging mode must produce identical result sets for every example query.
func TestPropertyParallelStagesInvariance(t *testing.T) {
	for _, tc := range exampleCases() {
		t.Run(tc.name, func(t *testing.T) {
			run := func(cl rasql.ClusterConfig) *rasql.Relation {
				eng := rasql.New(rasql.Config{Cluster: cl})
				for _, tab := range tc.tables() {
					eng.MustRegister(tab)
				}
				got, err := eng.Query(tc.query)
				if err != nil {
					t.Fatalf("%s: %v", tc.name, err)
				}
				return got
			}
			seq := run(rasql.ClusterConfig{Workers: 4, Partitions: 8, SequentialStages: true})
			par := run(rasql.ClusterConfig{Workers: 4, Partitions: 8})
			if !par.EqualAsSet(seq) {
				t.Errorf("%s: parallel stages changed results:\nseq %v\npar %v",
					tc.name, seq.Sort(), par.Sort())
			}
		})
	}
}

var _ = fmt.Sprintf // keep fmt for debugging helpers
