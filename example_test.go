package rasql_test

import (
	"fmt"

	rasql "github.com/rasql/rasql-go"
)

// ExampleEngine_Query runs the paper's introductory endo-max query: days
// until delivery for an assembled product (Q2, Section 2).
func ExampleEngine_Query() {
	basic := rasql.NewRelation("basic", rasql.NewSchema(
		rasql.Col("Part", rasql.KindInt), rasql.Col("Days", rasql.KindInt)))
	basic.Append(rasql.Row{rasql.Int(3), rasql.Int(5)})
	basic.Append(rasql.Row{rasql.Int(4), rasql.Int(2)})
	assbl := rasql.NewRelation("assbl", rasql.NewSchema(
		rasql.Col("Part", rasql.KindInt), rasql.Col("Spart", rasql.KindInt)))
	for _, p := range [][2]int64{{1, 2}, {1, 3}, {2, 4}, {2, 3}} {
		assbl.Append(rasql.Row{rasql.Int(p[0]), rasql.Int(p[1])})
	}

	eng := rasql.New(rasql.Config{})
	eng.MustRegister(basic)
	eng.MustRegister(assbl)

	res, err := eng.Query(`
		WITH recursive waitfor(Part, max() as Days) AS
		    (SELECT Part, Days FROM basic) UNION
		    (SELECT assbl.Part, waitfor.Days
		     FROM assbl, waitfor WHERE assbl.Spart = waitfor.Part)
		SELECT Part, Days FROM waitfor WHERE Part = 1`)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rows[0])
	// Output: (1, 5)
}

// ExampleEngine_Exec shows scripts: CREATE VIEW plus a recursive query over
// the view.
func ExampleEngine_Exec() {
	edge := rasql.NewRelation("edge", rasql.NewSchema(
		rasql.Col("Src", rasql.KindInt), rasql.Col("Dst", rasql.KindInt)))
	for _, p := range [][2]int64{{1, 2}, {2, 3}, {3, 4}, {7, 8}} {
		edge.Append(rasql.Row{rasql.Int(p[0]), rasql.Int(p[1])})
	}
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(edge)

	res, err := eng.Exec(`
		CREATE VIEW small(Src, Dst) AS (SELECT Src, Dst FROM edge WHERE Src < 5);
		WITH recursive reach (Dst) AS
		    (SELECT 1) UNION
		    (SELECT small.Dst FROM reach, small WHERE reach.Dst = small.Src)
		SELECT count(*) FROM reach`)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Rows[0][0])
	// Output: 4
}

// ExampleEngine_Explain shows the physical plan of a recursive query: SSSP
// plans as a co-partitioned fixpoint; TC plans decomposed.
func ExampleEngine_Explain() {
	edge := rasql.NewRelation("edge", rasql.NewSchema(
		rasql.Col("Src", rasql.KindInt), rasql.Col("Dst", rasql.KindInt)))
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(edge)

	plan, err := eng.Explain(`
		WITH recursive tc (Src, Dst) AS
		    (SELECT Src, Dst FROM edge) UNION
		    (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
		SELECT count(*) FROM tc`)
	if err != nil {
		panic(err)
	}
	fmt.Println(plan[:45])
	// Output: Fixpoint[tc] partitionKey=[0] decomposed=true
}
