package rasql_test

import (
	"context"
	"errors"
	"testing"
	"time"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/queries"
)

// TestCancelAllEvaluatorModes proves the context threads from the public
// API into every evaluator's iteration loop: a pre-cancelled context makes
// each mode — local semi-naive, local naive, BSP two-stage, BSP combined,
// decomposed, SSP(k) and async — stop at an iteration boundary with an
// ErrFixpointCancelled that unwraps to context.Canceled.
func TestCancelAllEvaluatorModes(t *testing.T) {
	ssp1 := rasql.Config{}
	ssp1.Fixpoint.Mode, ssp1.Fixpoint.Staleness = mustMode(t, "ssp:1")
	async := rasql.Config{}
	async.Fixpoint.Mode, async.Fixpoint.Staleness = mustMode(t, "async")

	modes := []struct {
		name  string
		cfg   rasql.Config
		query string
	}{
		{"local", rasql.Config{ForceLocal: true}, queries.SSSP},
		{"local-naive", rasql.Config{Naive: true}, queries.SSSP},
		// SSSP co-partitions: default config runs the combined (Algorithm 6)
		// loop, RawOptimizations leaves stage combination off (Algorithm 4/5).
		{"bsp-combined", rasql.Config{}, queries.SSSP},
		{"bsp-two-stage", rasql.Config{RawOptimizations: true}, queries.SSSP},
		// TC carries its Src column, so the default config decomposes it.
		{"decomposed", rasql.Config{}, queries.TC},
		{"ssp1", ssp1, queries.SSSP},
		{"async", async, queries.SSSP},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			eng := rasql.New(m.cfg)
			eng.MustRegister(weightedEdges())

			// Sanity: the query runs in this mode without a context.
			if _, err := eng.Exec(m.query); err != nil {
				t.Fatalf("uncancelled run: %v", err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := eng.ExecContext(ctx, m.query)
			if err == nil {
				t.Fatal("pre-cancelled context: query succeeded, want cancellation error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("error does not unwrap to context.Canceled: %v", err)
			}
			var fc *rasql.ErrFixpointCancelled
			if !errors.As(err, &fc) {
				t.Errorf("error is not an ErrFixpointCancelled: %v", err)
			}
		})
	}
}

// TestCancelDeadline checks the deadline flavour: an already-expired
// deadline surfaces as context.DeadlineExceeded through the same
// iteration-boundary mechanism.
func TestCancelDeadline(t *testing.T) {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(weightedEdges())
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 0))
	defer cancel()
	_, err := eng.ExecContext(ctx, queries.SSSP)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}
	var fc *rasql.ErrFixpointCancelled
	if !errors.As(err, &fc) {
		t.Errorf("error is not an ErrFixpointCancelled: %v", err)
	}
	if fc != nil && fc.Iterations < 0 {
		t.Errorf("negative iteration count: %d", fc.Iterations)
	}
}

// TestQueryContextCancel covers the Query (set-semantics epilogue) variant.
func TestQueryContextCancel(t *testing.T) {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(weightedEdges())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.QueryContext(ctx, queries.SSSP); !errors.Is(err, context.Canceled) {
		t.Errorf("QueryContext: err = %v, want context.Canceled", err)
	}
}

func mustMode(t *testing.T, s string) (rasql.EvalMode, int) {
	t.Helper()
	m, k, err := rasql.ParseEvalMode(s)
	if err != nil {
		t.Fatalf("ParseEvalMode(%q): %v", s, err)
	}
	return m, k
}
