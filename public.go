package rasql

import (
	"io"

	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/fixpoint"
	"github.com/rasql/rasql-go/internal/obs"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/vet"
	"github.com/rasql/rasql-go/internal/trace"
	"github.com/rasql/rasql-go/internal/types"
)

// The library's user-facing data model is defined in internal packages and
// re-exported here, so downstream code only ever imports
// github.com/rasql/rasql-go.

// Relation is an in-memory table: a named schema plus rows.
type Relation = relation.Relation

// Schema describes a relation's columns.
type Schema = types.Schema

// Column is one schema column.
type Column = types.Column

// Row is one tuple.
type Row = types.Row

// Value is one SQL value (int, double, string, boolean or NULL).
type Value = types.Value

// Kind is a value/column type tag.
type Kind = types.Kind

// The column kinds.
const (
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindString = types.KindString
	KindBool   = types.KindBool
)

// ClusterConfig configures the simulated cluster (see Config.Cluster).
type ClusterConfig = cluster.Config

// FixpointOptions configures the fixpoint operator (see Config.Fixpoint).
type FixpointOptions = fixpoint.DistOptions

// FixpointResult is the evaluated fixpoint of a recursive clique, as
// returned by Engine.RunClique: per-view relations, the iteration count,
// and the evaluation mode that actually ran (with the fallback reason when
// a relaxed request was downgraded to BSP).
type FixpointResult = fixpoint.Result

// EvalMode selects the fixpoint synchronization discipline
// (Config.Fixpoint.Mode): bulk-synchronous barriers, SSP(k) bounded
// staleness, or fully asynchronous delta routing.
type EvalMode = fixpoint.EvalMode

// The evaluation modes.
const (
	ModeBSP   = fixpoint.ModeBSP
	ModeSSP   = fixpoint.ModeSSP
	ModeAsync = fixpoint.ModeAsync
)

// ParseEvalMode parses the -mode flag syntax: "bsp", "ssp", "ssp:k" or
// "async". It returns the mode and the SSP staleness bound.
func ParseEvalMode(s string) (EvalMode, int, error) { return fixpoint.ParseEvalMode(s) }

// ErrFixpointCancelled reports a fixpoint stopped at an iteration boundary
// because the query's context was cancelled or its deadline expired
// (ExecContext and friends). It unwraps to the context error, so
// errors.Is(err, context.DeadlineExceeded) works through it.
type ErrFixpointCancelled = fixpoint.ErrCancelled

// MetricsSnapshot is a copy of the cluster's execution counters.
type MetricsSnapshot = cluster.Snapshot

// QueryStats is one finished query's execution record: wall/simulated
// latency, iteration count, shuffle volume, fault-recovery and staleness
// counters, plus the fixpoint mode that actually ran. Every query folds one
// into the engine's recorder at Finish (see Engine.Observability).
type QueryStats = obs.QueryStats

// MetricsRecorder is the engine's observability hub: per-query stats fold
// into registry histograms, a bounded ring keeps recent QueryStats, and an
// optional slog logger gets one structured line per finished query.
type MetricsRecorder = obs.Recorder

// MetricsRegistry is a registry of named counters, gauges and histograms
// with Prometheus text-format exposition (WritePrometheus).
type MetricsRegistry = obs.Registry

// Histogram is a fixed-bucket, allocation-free atomic latency histogram
// (log-spaced buckets, ≤12.5% relative error, wait-free Observe).
type Histogram = obs.Histogram

// ValidatePrometheus strictly parses data as Prometheus text exposition
// format 0.0.4 and checks histogram invariants (increasing bounds,
// cumulative counts, +Inf bucket matching _count) — the validation the CI
// metrics smoke test runs on exported metrics.
func ValidatePrometheus(data []byte) error { _, err := obs.ParsePrometheus(data); return err }

// ServeMetrics starts an HTTP listener exposing the registry in Prometheus
// text format at every path. It returns the bound address (useful with
// ":0") and never blocks; the listener lives for the rest of the process.
func ServeMetrics(addr string, reg *MetricsRegistry) (string, error) {
	return obs.ListenAndServe(addr, reg)
}

// Tracer records structured execution traces: driver-phase, stage and task
// spans plus per-iteration fixpoint telemetry. Attach one with
// Engine.SetTracer; a nil tracer disables tracing at near-zero cost.
type Tracer = trace.Tracer

// TraceEvent is one recorded span/counter/instant event.
type TraceEvent = trace.Event

// TraceIteration is one iteration's fixpoint telemetry.
type TraceIteration = trace.IterationEvent

// NewTracer creates a full tracer (spans and iteration telemetry).
func NewTracer() *Tracer { return trace.New() }

// NewIterationsTracer creates a tracer that records only per-iteration
// fixpoint telemetry — cheap enough to leave attached while benchmarking.
func NewIterationsTracer() *Tracer { return trace.NewIterationsOnly() }

// ValidateChromeTrace checks data against the Chrome trace-event schema
// (well-formed JSON, known phases, per-track monotone timestamps, balanced
// B/E pairs) — the validation the CI smoke test runs on exported traces.
func ValidateChromeTrace(data []byte) error { return trace.ValidateChrome(data) }

// Scheduling policies for ClusterConfig.Policy.
const (
	PolicyPartitionAware = cluster.PolicyPartitionAware
	PolicyHybrid         = cluster.PolicyHybrid
)

// ChaosConfig configures the cluster's deterministic fault injector (see
// ClusterConfig.Chaos): seeded random faults at a per-task-attempt Rate
// plus exactly scripted ChaosEvents, recovered transparently by bounded
// task retry with per-partition checkpoint rollback. The zero value
// disables injection at zero cost.
type ChaosConfig = cluster.ChaosConfig

// ChaosEvent scripts one fault at an exact (stage, occurrence, partition,
// attempt) coordinate.
type ChaosEvent = cluster.ChaosEvent

// FaultKind selects what a chaos fault breaks.
type FaultKind = cluster.FaultKind

// The injectable fault kinds.
const (
	FaultTaskStart  = cluster.FaultTaskStart
	FaultWorkerLoss = cluster.FaultWorkerLoss
	FaultFetch      = cluster.FaultFetch
	FaultPostMerge  = cluster.FaultPostMerge
	FaultStraggler  = cluster.FaultStraggler
)

// VetReport is the result of Engine.Vet: structured diagnostics (stable
// RVxxx codes, severities, remediation hints) plus per-view PreM verdicts.
type VetReport = vet.Report

// VetDiagnostic is one static-analysis finding.
type VetDiagnostic = vet.Diagnostic

// VetVerdict is the outcome of static PreM certification.
type VetVerdict = vet.Verdict

// VetSeverity ranks a diagnostic.
type VetSeverity = vet.Severity

// The static PreM verdicts.
const (
	VetNotApplicable = vet.VerdictNotApplicable
	VetCertified     = vet.VerdictCertified
	VetRefuted       = vet.VerdictRefuted
	VetInconclusive  = vet.VerdictInconclusive
)

// The diagnostic severities.
const (
	VetError   = vet.SeverityError
	VetWarning = vet.SeverityWarning
	VetInfo    = vet.SeverityInfo
)

// Int builds an integer value.
func Int(i int64) Value { return types.Int(i) }

// Float builds a double value.
func Float(f float64) Value { return types.Float(f) }

// Str builds a string value.
func Str(s string) Value { return types.Str(s) }

// Bool builds a boolean value.
func Bool(b bool) Value { return types.Bool(b) }

// Null builds the NULL value.
func Null() Value { return types.Null() }

// Col builds a schema column.
func Col(name string, kind Kind) Column { return types.Col(name, kind) }

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return types.NewSchema(cols...) }

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema Schema) *Relation { return relation.New(name, schema) }

// ReadCSV loads a relation from CSV data with the given schema; a header
// row matching the column names is skipped automatically.
func ReadCSV(r io.Reader, name string, schema Schema, sep rune) (*Relation, error) {
	return relation.ReadCSV(r, name, schema, sep)
}

// ReadCSVFile loads a relation from a CSV file.
func ReadCSVFile(path, name string, schema Schema, sep rune) (*Relation, error) {
	return relation.ReadCSVFile(path, name, schema, sep)
}

// WriteCSV writes a relation as CSV with a header row.
func WriteCSV(w io.Writer, rel *Relation, sep rune) error {
	return relation.WriteCSV(w, rel, sep)
}
