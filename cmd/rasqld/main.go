// Command rasqld serves a shared RaSQL engine over HTTP/JSON: sessions
// with per-session execution settings, ad-hoc queries, prepared statements
// backed by a plan cache, Prometheus metrics, and graceful drain.
//
// Usage:
//
//	rasqld -demo                      # serve the built-in example graph
//	rasqld -table 'edge=edges.csv:Src int,Dst int,Cost double'
//	rasqld -listen :8080 -max-concurrent 8 -timeout 30s
//
// Endpoints:
//
//	POST /v1/sessions         create a session ({"settings":{...}} optional)
//	DELETE /v1/sessions/{id}  close a session
//	POST /v1/query            {"sql":..., "session_id":..., "settings":{...}}
//	POST /v1/prepare          {"session_id":..., "sql":...}
//	POST /v1/execute          {"session_id":..., "statement_id":...}
//	GET  /metrics             Prometheus text exposition (engine + server)
//	GET  /healthz             process liveness
//	GET  /readyz              503 once draining
//
// Settings fields (per session, overridable per request): "mode" (bsp,
// ssp:k, async), "max_iterations", "timeout_ms" (negative disables the
// deadline), "trace" (off, iterations, full).
//
// On SIGTERM/SIGINT the server stops admitting work (429/503 with
// Retry-After), finishes in-flight queries, writes the final metrics
// exposition (-metrics-out), and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/cli"
	"github.com/rasql/rasql-go/internal/server"
)

func main() {
	var (
		tables     cli.MultiFlag
		listen     = flag.String("listen", ":8080", "HTTP listen address (\":0\" picks a free port)")
		demo       = flag.Bool("demo", false, "register the built-in example graph edge(Src,Dst,Cost)")
		workers    = flag.Int("workers", 0, "simulated workers (default GOMAXPROCS)")
		partitions = flag.Int("partitions", 0, "partitions (default = workers)")
		mode       = flag.String("mode", "", "default fixpoint mode for new sessions: bsp, ssp:k or async")
		maxConc    = flag.Int("max-concurrent", 0, "queries executing at once (default GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 0, "admission queue beyond -max-concurrent (default 2x)")
		timeout    = flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
		cacheSize  = flag.Int("plan-cache", 256, "compiled-plan cache capacity")
		chaosSpec  = flag.String("chaos", "", "fault injection: seed=N,rate=P[,attempts=K]")
		queryLog   = flag.Bool("query-log", false, "emit one structured JSON log line per finished query on stderr")
		promOut    = flag.String("metrics-out", "", "write the final metrics exposition to this file on drain")
		drainMax   = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight queries on shutdown")
	)
	flag.Var(&tables, "table", "name=path:schema (repeatable)")
	flag.Parse()

	chaos, err := cli.ParseChaos(*chaosSpec)
	if err != nil {
		fatal(err)
	}
	if *mode != "" {
		if _, _, err := rasql.ParseEvalMode(*mode); err != nil {
			fatal(err)
		}
	}
	eng := rasql.New(rasql.Config{
		Cluster: rasql.ClusterConfig{Workers: *workers, Partitions: *partitions, Chaos: chaos},
	})
	if err := cli.LoadTables(eng, tables); err != nil {
		fatal(err)
	}
	if *demo {
		eng.MustRegister(demoEdges())
	}
	if *queryLog {
		eng.Observability().SetLogger(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	}

	srv := server.New(eng, server.Config{
		MaxConcurrent:   *maxConc,
		QueueDepth:      *queueDepth,
		DefaultTimeout:  *timeout,
		PlanCacheSize:   *cacheSize,
		DefaultSettings: server.Settings{Mode: *mode},
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	//rasql:detach -- Serve returns into errCh when Shutdown closes the listener; main consumes it before exiting
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "rasqld: serving %d tables on http://%s (catalog v%d)\n",
		len(eng.Catalog().Names()), ln.Addr(), eng.CatalogVersion())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "rasqld: %v: draining (max %v)\n", s, *drainMax)
	case err := <-errCh:
		fatal(err)
	}

	// Stop admitting first so /readyz flips and queued clients get
	// Retry-After, then wait for in-flight queries, then close the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainMax)
	defer cancel()
	clean := true
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "rasqld:", err)
		clean = false
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "rasqld: shutdown:", err)
		clean = false
	}
	<-errCh // Serve has returned http.ErrServerClosed

	if *promOut != "" {
		if err := writeMetrics(*promOut, eng); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rasqld: wrote %s\n", *promOut)
	}
	if !clean {
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "rasqld: drained cleanly")
}

// writeMetrics flushes the final Prometheus exposition, query log included.
func writeMetrics(path string, eng *rasql.Engine) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = eng.Observability().Registry().WritePrometheus(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// demoEdges is the weighted example graph from the paper's Example 1, small
// enough that every bundled example query (SSSP, REACH, CC, ...) returns
// instantly; the README quickstart curls against it.
func demoEdges() *rasql.Relation {
	schema := rasql.NewSchema(
		rasql.Col("Src", rasql.KindInt),
		rasql.Col("Dst", rasql.KindInt),
		rasql.Col("Cost", rasql.KindFloat))
	e := rasql.NewRelation("edge", schema)
	for _, t := range [][3]float64{
		{1, 2, 1}, {1, 3, 4}, {2, 3, 2}, {3, 4, 1}, {4, 2, 5}, {2, 5, 10}, {5, 1, 1},
	} {
		e.Append(rasql.Row{rasql.Int(int64(t[0])), rasql.Int(int64(t[1])), rasql.Float(t[2])})
	}
	return e
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rasqld:", err)
	os.Exit(1)
}
