// Command rasql is the RaSQL command-line shell: load CSV tables, run
// RaSQL queries (recursive CTEs with aggregates in recursion), inspect
// plans and execution metrics.
//
// Usage:
//
//	rasql -table 'edge=edges.csv:Src int,Dst int,Cost double' \
//	      -q 'WITH recursive path (Dst, min() AS Cost) AS ...'
//
//	rasql -table ... -f query.sql
//	rasql -table ...            # interactive: statements end with ';'
//	rasql vet -table ... -f query.sql   # static analysis only
//	rasql trace-verify out.json          # validate exported traces
//	rasql prom-verify metrics.prom       # validate Prometheus exposition
//
// Every script is vetted before execution: the static analyzer's
// diagnostics print to stderr, and error-severity findings (a statically
// refuted PreM assumption computes wrong answers) abort the query unless
// -no-vet downgrades them to warnings.
//
// A script may open with EXPLAIN (plan only, nothing executes) or EXPLAIN
// ANALYZE (execute with tracing, render the plan annotated with actual row
// counts, timings and the per-iteration fixpoint table).
//
// Flags:
//
//	-table name=path:schema   register a CSV table (repeatable)
//	-q sql                    run one script and exit
//	-f file                   run a script file and exit
//	-explain                  print the plan instead of executing
//	-explain-analyze          execute and print the plan with actuals
//	-no-vet                   execute even when vet reports errors
//	-local                    force the single-threaded reference engine
//	-naive                    naive (non-semi-naive) evaluation
//	-workers / -partitions    simulated cluster size
//	-mode m                   fixpoint evaluation mode: bsp (default),
//	                          ssp:k (bounded staleness k) or async; relaxed
//	                          modes apply only to cliques vet certifies
//	                          PreM (or set semantics) and silently fall
//	                          back to bsp otherwise
//	-metrics                  print the execution-counter delta plus the
//	                          per-query stats record (latency, iterations,
//	                          shuffle volume, retries, staleness) per query
//	-metrics-listen addr      serve Prometheus text-format metrics over HTTP
//	                          (e.g. :9090; ":0" picks a free port)
//	-query-log                emit one structured JSON log line per finished
//	                          query on stderr (query ID, latency, counters)
//	-chaos seed=N,rate=P      deterministic fault injection (recovery is
//	                          transparent; results are unchanged — see
//	                          DESIGN.md §9)
//	-trace file.json          export a Chrome trace (Perfetto-loadable)
//	-max-rows n               print at most n result rows (default 50)
//
// The vet subcommand exits 0 when the script is clean (or carries only
// warnings/info) and 1 when any error-severity diagnostic fires. The
// trace-verify subcommand validates trace files against the Chrome
// trace-event schema (well-formed JSON, monotone per-track timestamps,
// balanced B/E spans) and exits 1 on the first invalid file. The
// prom-verify subcommand validates metrics files against the Prometheus
// text exposition format (strict parse, histogram invariants) and exits 1
// on the first invalid file.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/cli"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		vetMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace-verify" {
		traceVerifyMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "prom-verify" {
		promVerifyMain(os.Args[2:])
		return
	}
	var (
		tables     cli.MultiFlag
		query      = flag.String("q", "", "query to run")
		file       = flag.String("f", "", "script file to run")
		explain    = flag.Bool("explain", false, "print the plan instead of executing")
		analyze    = flag.Bool("explain-analyze", false, "execute and print the plan with actuals")
		noVet      = flag.Bool("no-vet", false, "execute even when vet reports errors")
		local      = flag.Bool("local", false, "force the local reference engine")
		naive      = flag.Bool("naive", false, "naive evaluation (implies -local)")
		workers    = flag.Int("workers", 0, "simulated workers (default GOMAXPROCS)")
		partitions = flag.Int("partitions", 0, "partitions (default = workers)")
		metrics    = flag.Bool("metrics", false, "print the execution-counter delta and per-query stats per query")
		metricsLn  = flag.String("metrics-listen", "", "serve Prometheus metrics over HTTP on this address")
		queryLog   = flag.Bool("query-log", false, "emit one structured JSON log line per finished query on stderr")
		mode       = flag.String("mode", "bsp", "fixpoint evaluation mode: bsp, ssp:k or async")
		chaosSpec  = flag.String("chaos", "", "fault injection: seed=N,rate=P[,attempts=K]")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON file (load in Perfetto)")
		maxRows    = flag.Int("max-rows", 50, "max rows to print")
	)
	flag.Var(&tables, "table", "name=path:schema (repeatable)")
	flag.Parse()

	chaos, err := cli.ParseChaos(*chaosSpec)
	if err != nil {
		fatal(err)
	}
	evalMode, staleness, err := rasql.ParseEvalMode(*mode)
	if err != nil {
		fatal(err)
	}
	cfg := rasql.Config{
		Cluster:    rasql.ClusterConfig{Workers: *workers, Partitions: *partitions, Chaos: chaos},
		ForceLocal: *local,
		Naive:      *naive,
	}
	cfg.Fixpoint.Mode = evalMode
	cfg.Fixpoint.Staleness = staleness
	eng := rasql.New(cfg)
	if err := cli.LoadTables(eng, tables); err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		eng.SetTracer(rasql.NewTracer())
	}
	if *queryLog {
		eng.Observability().SetLogger(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	}
	if *metricsLn != "" {
		addr, err := rasql.ServeMetrics(*metricsLn, eng.Observability().Registry())
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "metrics: listening on http://%s/metrics\n", addr)
	}

	run := func(src string) {
		if strings.TrimSpace(src) == "" {
			return
		}
		doExplain, doAnalyze := *explain, *analyze
		// A script may also opt in per statement: EXPLAIN [ANALYZE] <query>.
		if rest, ok := stripPrefixFold(src, "EXPLAIN ANALYZE"); ok {
			src, doAnalyze = rest, true
		} else if rest, ok := stripPrefixFold(src, "EXPLAIN"); ok {
			src, doExplain = rest, true
		}
		switch {
		case doAnalyze:
			out, err := eng.ExplainAnalyze(src)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			fmt.Print(out)
			return
		case doExplain:
			plan, err := eng.Explain(src)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return
			}
			fmt.Print(plan)
			return
		}
		if rep, err := eng.Vet(src); err == nil && len(rep.Diagnostics) > 0 {
			fmt.Fprint(os.Stderr, rep)
			if rep.HasErrors() && !*noVet {
				fmt.Fprintln(os.Stderr, "error: vet reported errors; rerun with -no-vet to execute anyway")
				return
			}
		}
		before := eng.Metrics()
		res, err := eng.Exec(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		if res != nil {
			fmt.Print(res.Sort().Format(*maxRows))
		}
		if *metrics {
			fmt.Println("--", eng.Metrics().Sub(before))
			if s, ok := eng.Observability().Last(); ok {
				fmt.Println("--", fmtQueryStats(s))
			}
		}
	}

	switch {
	case *query != "":
		run(*query)
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		run(string(b))
	default:
		repl(eng, run)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		werr := eng.Tracer().WriteChrome(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(werr)
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s\n", *traceOut)
	}
}

// stripPrefixFold strips a case-insensitive keyword prefix (followed by
// whitespace) from the start of a script.
func stripPrefixFold(src, prefix string) (string, bool) {
	s := strings.TrimSpace(src)
	if len(s) <= len(prefix) || !strings.EqualFold(s[:len(prefix)], prefix) {
		return src, false
	}
	rest := s[len(prefix):]
	if rest[0] != ' ' && rest[0] != '\t' && rest[0] != '\n' && rest[0] != '\r' {
		return src, false
	}
	return strings.TrimSpace(rest), true
}

// fmtQueryStats renders the per-query stats record printed under -metrics:
// the distributional per-query view alongside the engine-counter delta.
func fmtQueryStats(s rasql.QueryStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "query %d: wall=%v sim=%v iters=%d shuffle=%dB/%d rows",
		s.ID, time.Duration(s.WallNanos).Round(time.Microsecond),
		time.Duration(s.SimNanos).Round(time.Microsecond),
		s.Iterations, s.ShuffleBytes, s.ShuffleRecords)
	if s.TaskRetries > 0 || s.RowsReplayed > 0 {
		fmt.Fprintf(&b, " retries=%d replayed=%d recovered=%d",
			s.TaskRetries, s.RowsReplayed, s.RecoveredIterations)
	}
	if s.StaleReads > 0 || s.SupersededRows > 0 {
		fmt.Fprintf(&b, " stale=%d superseded=%d", s.StaleReads, s.SupersededRows)
	}
	if s.Mode != "" {
		fmt.Fprintf(&b, " mode=%s", s.Mode)
	}
	if s.FallbackReason != "" {
		fmt.Fprintf(&b, " fallback=%q", s.FallbackReason)
	}
	if s.Err != "" {
		fmt.Fprintf(&b, " err=%q", s.Err)
	}
	return b.String()
}

// promVerifyMain implements `rasql prom-verify`: validate Prometheus
// text-exposition files with the strict in-repo parser, exit 1 if any fails.
func promVerifyMain(args []string) {
	if len(args) == 0 {
		fatal(fmt.Errorf("prom-verify: no metrics files given"))
	}
	bad := false
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rasql:", err)
			bad = true
			continue
		}
		if err := rasql.ValidatePrometheus(data); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}

// traceVerifyMain implements `rasql trace-verify`: validate Chrome
// trace-event files, exit 1 if any fails.
func traceVerifyMain(args []string) {
	if len(args) == 0 {
		fatal(fmt.Errorf("trace-verify: no trace files given"))
	}
	bad := false
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rasql:", err)
			bad = true
			continue
		}
		if err := rasql.ValidateChromeTrace(data); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}

// vetMain implements `rasql vet`: static analysis only, nothing executes.
func vetMain(args []string) {
	fs := flag.NewFlagSet("rasql vet", flag.ExitOnError)
	var tables cli.MultiFlag
	query := fs.String("q", "", "query to vet")
	file := fs.String("f", "", "script file to vet")
	fs.Var(&tables, "table", "name=path:schema (repeatable)")
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	src := *query
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	}
	if strings.TrimSpace(src) == "" {
		fatal(fmt.Errorf("vet: no query given (-q or -f)"))
	}
	eng := rasql.New(rasql.Config{})
	if err := cli.LoadTables(eng, tables); err != nil {
		fatal(err)
	}
	rep, err := eng.Vet(src)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep)
	if len(rep.Diagnostics) == 0 {
		fmt.Println("vet: no findings")
	}
	if rep.HasErrors() {
		os.Exit(1)
	}
}

func repl(eng *rasql.Engine, run func(string)) {
	fmt.Println("RaSQL shell — terminate statements with ';', \\d lists tables, \\q quits.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	fmt.Print("rasql> ")
	for sc.Scan() {
		line := sc.Text()
		switch strings.TrimSpace(line) {
		case `\q`, "exit", "quit":
			return
		case `\d`:
			for _, n := range eng.Catalog().Names() {
				fmt.Println(" ", n)
			}
			fmt.Print("rasql> ")
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.Contains(line, ";") {
			run(buf.String())
			buf.Reset()
			fmt.Print("rasql> ")
		} else {
			fmt.Print("   ... ")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rasql:", err)
	os.Exit(1)
}
