// Command rasql-gen generates the paper's synthetic datasets as CSV files:
// RMAT graphs, Erdős–Rényi graphs, grids, random trees (as BOM /
// Management / MLM base tables) and scaled real-world analogs.
//
// Examples:
//
//	rasql-gen -kind rmat -n 1000000 -out edges.csv
//	rasql-gen -kind grid -n 150 -out grid150.csv
//	rasql-gen -kind erdos -n 10000 -p 0.001 -out g10k3.csv
//	rasql-gen -kind tree -height 10 -out-dir bom/   # assbl.csv + basic.csv + report.csv + sales.csv + sponsor.csv
//	rasql-gen -kind realworld -name twitter -scale-div 64 -out tw.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
)

func main() {
	var (
		kind     = flag.String("kind", "rmat", "rmat|erdos|grid|tree|realworld")
		n        = flag.Int("n", 1<<20, "vertices (rmat/erdos) or grid side")
		p        = flag.Float64("p", 1e-3, "edge probability (erdos)")
		height   = flag.Int("height", 10, "tree height")
		minCh    = flag.Int("min-children", 5, "tree minimum children")
		maxCh    = flag.Int("max-children", 10, "tree maximum children")
		leafProb = flag.Float64("leaf-prob", 0.4, "tree leaf probability")
		maxNodes = flag.Int("max-nodes", 0, "tree node cap (0 = none)")
		name     = flag.String("name", "twitter", "realworld analog name")
		scaleDiv = flag.Int("scale-div", 64, "realworld scale divisor")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "", "output CSV path (graph kinds)")
		outDir   = flag.String("out-dir", "", "output directory (tree kind)")
		sym      = flag.Bool("symmetrize", false, "emit both edge directions")
		weighted = flag.Bool("weighted", true, "keep the Cost column")
	)
	flag.Parse()

	write := func(rel *relation.Relation, path string) {
		if !*weighted && rel.Schema.Len() == 3 {
			rel = gen.Unweighted(rel)
		}
		if *sym {
			rel = gen.Symmetrized(rel)
		}
		if err := relation.WriteCSVFile(path, rel, ','); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d rows %s\n", path, rel.Len(), rel.Schema)
	}

	switch *kind {
	case "rmat":
		need(*out, "-out")
		write(gen.RMATDefault(*n, gen.Rng(*seed)), *out)
	case "erdos":
		need(*out, "-out")
		write(gen.Erdos(*n, *p, gen.Rng(*seed)), *out)
	case "grid":
		need(*out, "-out")
		write(gen.Grid(*n, gen.Rng(*seed)), *out)
	case "realworld":
		need(*out, "-out")
		for _, a := range gen.RealWorldAnalogs(*scaleDiv) {
			if a.Name == *name {
				write(a.Generate(gen.Rng(*seed)), *out)
				return
			}
		}
		fatal(fmt.Errorf("unknown realworld analog %q", *name))
	case "tree":
		need(*outDir, "-out-dir")
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		t := gen.NewTree(*height, *minCh, *maxCh, *leafProb, *maxNodes, gen.Rng(*seed))
		fmt.Printf("tree: %d nodes, height %d\n", t.Len(), t.Height)
		assbl, basic := t.AssblBasic(100, gen.Rng(*seed+1))
		sales, sponsor := t.SalesSponsor(1000, gen.Rng(*seed+2))
		for _, pair := range []struct {
			rel  *relation.Relation
			file string
		}{
			{assbl, "assbl.csv"}, {basic, "basic.csv"}, {t.Report(), "report.csv"},
			{sales, "sales.csv"}, {sponsor, "sponsor.csv"},
		} {
			path := filepath.Join(*outDir, pair.file)
			if err := relation.WriteCSVFile(path, pair.rel, ','); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s: %d rows\n", path, pair.rel.Len())
		}
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}
}

func need(v, flagName string) {
	if v == "" {
		fatal(fmt.Errorf("%s is required for this kind", flagName))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rasql-gen:", err)
	os.Exit(1)
}
