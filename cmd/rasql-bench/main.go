// Command rasql-bench regenerates the tables and figures of the paper's
// evaluation (Section 8 and appendices) on the simulated cluster.
//
// Usage:
//
//	rasql-bench -all                 # every experiment, paper order
//	rasql-bench -run fig8,table3     # selected experiments
//	rasql-bench -all -md > out.md    # markdown output
//	rasql-bench -quick               # small sizes for smoke runs
//
//	rasql-bench -run fig5,fig8 -clients 4 -duration 5s
//	                                 # closed-loop serving mode: N client
//	                                 # goroutines share one engine; emits
//	                                 # QPS and p50/p95/p99 latency
//
// Dataset sizes scale down from the paper's 16-node cluster by -scale
// (RMAT vertex counts) and -tree-scale (tree node counts); the defaults
// (1000 / 256) fit a laptop. Absolute times therefore differ from the
// paper; the comparisons within each table are the reproduction target.
//
// Serving mode (-clients N) replaces the one-query-at-a-time figure
// measurements with a throughput benchmark: records in the -json output
// gain clients/qps/p50_nanos/p95_nanos/p99_nanos columns, -metrics-out
// writes the final serving engine's Prometheus text exposition (validated
// by `rasql prom-verify`), and -metrics-listen serves it over HTTP while
// the benchmark runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/bench"
	"github.com/rasql/rasql-go/internal/cli"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		run       = flag.String("run", "", "comma-separated experiment ids: "+strings.Join(bench.Order, ","))
		scale     = flag.Int("scale", 1000, "divisor for the paper's RMAT vertex counts")
		treeScale = flag.Int("tree-scale", 256, "divisor for the paper's tree node counts")
		workers   = flag.Int("workers", 0, "simulated workers (default GOMAXPROCS)")
		repeat    = flag.Int("repeat", 1, "runs to average per measurement (paper: 5)")
		seed      = flag.Int64("seed", 1, "dataset seed")
		quick     = flag.Bool("quick", false, "tiny sizes for smoke runs")
		md        = flag.Bool("md", false, "markdown output")
		quiet     = flag.Bool("quiet", false, "suppress progress lines")
		jsonOut   = flag.String("json", "BENCH_fixpoint.json", "write per-experiment machine-readable results to this file (empty to disable)")
		chaosSpec = flag.String("chaos", "", "fault injection for every measurement: seed=N,rate=P[,attempts=K]")
		clients   = flag.Int("clients", 0, "serving mode: closed-loop client goroutines sharing one engine (0 = figure mode)")
		httpMode  = flag.Bool("server", false, "serving mode: drive a rasqld HTTP server over loopback instead of calling the engine in-process (records get server-* experiment ids plus plan-cache and cold-path columns)")
		duration  = flag.Duration("duration", 5*time.Second, "serving mode: how long each experiment's clients run")
		promOut   = flag.String("metrics-out", "", "serving mode: write the final engine's Prometheus exposition to this file")
		promLn    = flag.String("metrics-listen", "", "serving mode: serve Prometheus metrics over HTTP on this address")
	)
	flag.Parse()

	chaos, err := cli.ParseChaos(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rasql-bench:", err)
		os.Exit(2)
	}
	cfg := bench.Config{
		Scale: *scale, TreeScale: *treeScale, Workers: *workers,
		Partitions: *workers, Repeat: *repeat, Seed: *seed, Quick: *quick,
		Chaos: chaos,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	r := bench.NewRunner(cfg)

	var ids []string
	switch {
	case *all:
		ids = bench.Order
	case *run != "":
		ids = strings.Split(*run, ",")
	default:
		fmt.Fprintln(os.Stderr, "rasql-bench: pass -all or -run <ids>; available:", strings.Join(bench.Order, ", "))
		os.Exit(2)
	}

	if *clients > 0 {
		serveMain(r, ids, *clients, *duration, *httpMode, *promOut, *promLn, *jsonOut, *md, *quiet)
		return
	}
	if *httpMode {
		fmt.Fprintln(os.Stderr, "rasql-bench: -server needs -clients N")
		os.Exit(2)
	}

	exps := r.Experiments()
	var records []bench.Record
	for _, id := range ids {
		id = strings.TrimSpace(id)
		f, ok := exps[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rasql-bench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		r.TakeTotals() // drop counters attributed to prior experiments
		r.TakeCurves() // likewise for convergence curves
		start := time.Now()
		tbl, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rasql-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		m := r.TakeTotals()
		records = append(records, bench.Record{
			Experiment:          id,
			WallNanos:           int64(wall),
			SimNanos:            m.SimNanos,
			ShuffleBytes:        m.ShuffleBytes,
			ShuffleRecords:      m.ShuffleRecords,
			Allocs:              after.Mallocs - before.Mallocs,
			TaskRetries:         m.TaskRetries,
			RowsReplayed:        m.RowsReplayed,
			RecoveredIterations: m.RecoveredIterations,
			StaleReads:          m.StaleReads,
			SupersededRows:      m.SupersededRows,
			BarrierWaitNanos:    m.BarrierWaitNanos,
			Curves:              r.TakeCurves(),
		})
		if *md {
			fmt.Println(tbl.Markdown())
			if c, ok := bench.Commentary[id]; ok {
				fmt.Println(c)
				fmt.Println()
			}
		} else {
			fmt.Println(tbl.String())
		}
		r.FreeDatasets()
	}

	writeRecords(*jsonOut, records, *quiet)
}

// serveMain runs the closed-loop concurrent-clients mode: for each selected
// experiment, N client goroutines share one engine and the emitted record
// carries throughput (qps) and latency percentiles alongside the usual
// cluster counters. With httpMode the clients are real HTTP clients against
// the rasqld serving layer; records then carry server-* experiment ids plus
// the plan-cache and cold-path columns.
func serveMain(r *bench.Runner, ids []string, clients int, duration time.Duration, httpMode bool, promOut, promLn, jsonOut string, md, quiet bool) {
	var cur atomic.Pointer[rasql.MetricsRegistry]
	if promLn != "" {
		addr, err := listenMetrics(promLn, &cur)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rasql-bench:", err)
			os.Exit(1)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "metrics: listening on http://%s/metrics\n", addr)
		}
	}
	var records []bench.Record
	for _, id := range ids {
		id = strings.TrimSpace(id)
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		r.TakeTotals() // drop counters attributed to prior experiments
		serve := r.Serve
		record := id
		if httpMode {
			serve = r.ServeHTTP
			record = "server-" + id
		}
		tbl, res, err := serve(id, clients, duration, func(reg *rasql.MetricsRegistry) { cur.Store(reg) })
		if err != nil {
			fmt.Fprintf(os.Stderr, "rasql-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		m := r.TakeTotals()
		records = append(records, bench.Record{
			Experiment:          record,
			WallNanos:           int64(res.Duration),
			SimNanos:            m.SimNanos,
			ShuffleBytes:        m.ShuffleBytes,
			ShuffleRecords:      m.ShuffleRecords,
			Allocs:              after.Mallocs - before.Mallocs,
			TaskRetries:         m.TaskRetries,
			RowsReplayed:        m.RowsReplayed,
			RecoveredIterations: m.RecoveredIterations,
			StaleReads:          m.StaleReads,
			SupersededRows:      m.SupersededRows,
			BarrierWaitNanos:    m.BarrierWaitNanos,
			Clients:             res.Clients,
			DurationNanos:       int64(res.Duration),
			Queries:             res.Queries,
			QPS:                 res.QPS,
			P50Nanos:            int64(res.P50),
			P95Nanos:            int64(res.P95),
			P99Nanos:            int64(res.P99),
			ColdP50Nanos:        int64(res.ColdP50),
			WarmP50Nanos:        int64(res.WarmP50),
			PlanCacheHits:       res.PlanCacheHits,
			PlanCacheMisses:     res.PlanCacheMisses,
		})
		if md {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.String())
		}
		r.FreeDatasets()
	}
	if promOut != "" {
		reg := cur.Load()
		f, err := os.Create(promOut)
		if err == nil {
			err = reg.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rasql-bench: write %s: %v\n", promOut, err)
			os.Exit(1)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote %s\n", promOut)
		}
	}
	writeRecords(jsonOut, records, quiet)
}

// listenMetrics serves the Prometheus exposition of whichever registry cur
// currently points at (serve mode swaps it as experiments hand over).
func listenMetrics(addr string, cur *atomic.Pointer[rasql.MetricsRegistry]) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg := cur.Load(); reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})}
	//rasql:detach -- process-lifetime metrics endpoint; dies with the benchmark process
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// writeRecords emits the machine-readable per-experiment results.
func writeRecords(jsonOut string, records []bench.Record, quiet bool) {
	if jsonOut == "" {
		return
	}
	buf, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rasql-bench: marshal results: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(jsonOut, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rasql-bench: write %s: %v\n", jsonOut, err)
		os.Exit(1)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments)\n", jsonOut, len(records))
	}
}
