// Command rasql-bench regenerates the tables and figures of the paper's
// evaluation (Section 8 and appendices) on the simulated cluster.
//
// Usage:
//
//	rasql-bench -all                 # every experiment, paper order
//	rasql-bench -run fig8,table3     # selected experiments
//	rasql-bench -all -md > out.md    # markdown output
//	rasql-bench -quick               # small sizes for smoke runs
//
// Dataset sizes scale down from the paper's 16-node cluster by -scale
// (RMAT vertex counts) and -tree-scale (tree node counts); the defaults
// (1000 / 256) fit a laptop. Absolute times therefore differ from the
// paper; the comparisons within each table are the reproduction target.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/rasql/rasql-go/internal/bench"
	"github.com/rasql/rasql-go/internal/cli"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		run       = flag.String("run", "", "comma-separated experiment ids: "+strings.Join(bench.Order, ","))
		scale     = flag.Int("scale", 1000, "divisor for the paper's RMAT vertex counts")
		treeScale = flag.Int("tree-scale", 256, "divisor for the paper's tree node counts")
		workers   = flag.Int("workers", 0, "simulated workers (default GOMAXPROCS)")
		repeat    = flag.Int("repeat", 1, "runs to average per measurement (paper: 5)")
		seed      = flag.Int64("seed", 1, "dataset seed")
		quick     = flag.Bool("quick", false, "tiny sizes for smoke runs")
		md        = flag.Bool("md", false, "markdown output")
		quiet     = flag.Bool("quiet", false, "suppress progress lines")
		jsonOut   = flag.String("json", "BENCH_fixpoint.json", "write per-experiment machine-readable results to this file (empty to disable)")
		chaosSpec = flag.String("chaos", "", "fault injection for every measurement: seed=N,rate=P[,attempts=K]")
	)
	flag.Parse()

	chaos, err := cli.ParseChaos(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rasql-bench:", err)
		os.Exit(2)
	}
	cfg := bench.Config{
		Scale: *scale, TreeScale: *treeScale, Workers: *workers,
		Partitions: *workers, Repeat: *repeat, Seed: *seed, Quick: *quick,
		Chaos: chaos,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	r := bench.NewRunner(cfg)

	var ids []string
	switch {
	case *all:
		ids = bench.Order
	case *run != "":
		ids = strings.Split(*run, ",")
	default:
		fmt.Fprintln(os.Stderr, "rasql-bench: pass -all or -run <ids>; available:", strings.Join(bench.Order, ", "))
		os.Exit(2)
	}

	exps := r.Experiments()
	var records []bench.Record
	for _, id := range ids {
		id = strings.TrimSpace(id)
		f, ok := exps[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "rasql-bench: unknown experiment %q\n", id)
			os.Exit(2)
		}
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		r.TakeTotals() // drop counters attributed to prior experiments
		r.TakeCurves() // likewise for convergence curves
		start := time.Now()
		tbl, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rasql-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		m := r.TakeTotals()
		records = append(records, bench.Record{
			Experiment:          id,
			WallNanos:           int64(wall),
			SimNanos:            m.SimNanos,
			ShuffleBytes:        m.ShuffleBytes,
			ShuffleRecords:      m.ShuffleRecords,
			Allocs:              after.Mallocs - before.Mallocs,
			TaskRetries:         m.TaskRetries,
			RowsReplayed:        m.RowsReplayed,
			RecoveredIterations: m.RecoveredIterations,
			StaleReads:          m.StaleReads,
			SupersededRows:      m.SupersededRows,
			BarrierWaitNanos:    m.BarrierWaitNanos,
			Curves:              r.TakeCurves(),
		})
		if *md {
			fmt.Println(tbl.Markdown())
			if c, ok := bench.Commentary[id]; ok {
				fmt.Println(c)
				fmt.Println()
			}
		} else {
			fmt.Println(tbl.String())
		}
		r.FreeDatasets()
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rasql-bench: marshal results: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rasql-bench: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s (%d experiments)\n", *jsonOut, len(records))
		}
	}
}
