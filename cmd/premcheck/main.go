// Command premcheck validates the PreM property for aggregate-in-recursion
// queries. With -static it first runs the vet analyzer's syntactic
// certification — which needs no data and terminates on every input — and
// only falls back to the paper's Appendix G dynamic GPtest (running the
// original query and its PreM-checking rewrite iteration by iteration)
// when the static verdict is inconclusive. It can also print the rewritten
// query.
//
// Usage:
//
//	premcheck -table 'edge=edges.csv:Src int,Dst int,Cost double' \
//	          -f apsp.sql [-static] [-iter 200] [-rewrite]
//
// Built-in queries can be checked by name:
//
//	premcheck -table ... -name sssp -static
//
// Exit codes make the checker scriptable: 0 the aggregate is certified /
// the property holds, 1 it is refuted / violated, 2 the analysis is
// inconclusive, 3 usage or execution error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/cli"
	"github.com/rasql/rasql-go/internal/prem"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/queries"
)

// The premcheck exit codes.
const (
	ExitHolds        = 0
	ExitViolated     = 1
	ExitInconclusive = 2
	ExitFatal        = 3
)

var builtins = map[string]string{
	"sssp":     queries.SSSP,
	"apsp":     queries.APSP,
	"cc":       queries.CCLabels,
	"delivery": queries.Delivery,
	"coalesce": queries.Coalesce,
}

func main() {
	var (
		tables  cli.MultiFlag
		query   = flag.String("q", "", "query text")
		file    = flag.String("f", "", "query file")
		name    = flag.String("name", "", "built-in query name: "+keys())
		iters   = flag.Int("iter", 200, "iteration budget for the step checker")
		static  = flag.Bool("static", false, "certify statically first; run the dynamic GPtest only when inconclusive")
		rewrite = flag.Bool("rewrite", false, "print the PreM-checking rewrite (Appendix G) and exit")
	)
	flag.Var(&tables, "table", "name=path:schema (repeatable)")
	flag.Parse()

	src := *query
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	case *name != "":
		q, ok := builtins[strings.ToLower(*name)]
		if !ok {
			fatal(fmt.Errorf("unknown built-in %q (have: %s)", *name, keys()))
		}
		src = q
	}
	if strings.TrimSpace(src) == "" {
		fatal(fmt.Errorf("no query given (-q, -f or -name)"))
	}

	if *rewrite {
		out, err := prem.RewriteCheckingQuery(src)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		return
	}

	eng := rasql.New(rasql.Config{})
	if err := cli.LoadTables(eng, tables); err != nil {
		fatal(err)
	}

	staticInconclusive := false
	if *static {
		rep, err := eng.Vet(src)
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep)
		switch rep.Verdict() {
		case rasql.VetCertified:
			fmt.Println("static: certified — skipping dynamic GPtest")
			os.Exit(ExitHolds)
		case rasql.VetRefuted:
			fmt.Println("static: refuted — the aggregate is not pre-mappable")
			os.Exit(ExitViolated)
		case rasql.VetNotApplicable:
			fmt.Println("static: no aggregate in recursion — nothing to check")
			os.Exit(ExitHolds)
		default:
			staticInconclusive = true
			fmt.Println("static: inconclusive — falling back to the dynamic GPtest")
		}
	}

	stmts, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	prog, err := analyze.Statements(stmts, eng.Catalog())
	if err != nil {
		fatal(err)
	}
	rep, err := prem.Check(prog, exec.NewContext(), *iters)
	if err != nil {
		if staticInconclusive {
			// The static pass already declined and the dynamic checker
			// cannot decide either (e.g. count/sum heads have no
			// min/max to GPtest): the overall answer is inconclusive.
			fmt.Println("dynamic:", err)
			os.Exit(ExitInconclusive)
		}
		fatal(err)
	}
	fmt.Println(rep)
	switch {
	case !rep.Holds:
		os.Exit(ExitViolated)
	case !rep.Converged:
		// The budget ran out with no violation found: evidence, not proof.
		os.Exit(ExitInconclusive)
	}
}

func keys() string {
	out := make([]string, 0, len(builtins))
	for k := range builtins {
		out = append(out, k)
	}
	return strings.Join(out, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "premcheck:", err)
	os.Exit(ExitFatal)
}
