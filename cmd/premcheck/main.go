// Command premcheck is the paper's Appendix G auto-validation tool
// (GPtest): it tests whether the PreM property holds for an
// aggregate-in-recursion query on given data by running the original query
// and its PreM-checking rewrite iteration by iteration and comparing
// results at every step. It can also print the rewritten query.
//
// Usage:
//
//	premcheck -table 'edge=edges.csv:Src int,Dst int,Cost double' \
//	          -f apsp.sql [-iter 200] [-rewrite]
//
// Built-in queries can be checked by name:
//
//	premcheck -table ... -name sssp
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/cli"
	"github.com/rasql/rasql-go/internal/prem"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/queries"
)

var builtins = map[string]string{
	"sssp":     queries.SSSP,
	"apsp":     queries.APSP,
	"cc":       queries.CCLabels,
	"delivery": queries.Delivery,
	"coalesce": queries.Coalesce,
}

func main() {
	var (
		tables  cli.MultiFlag
		query   = flag.String("q", "", "query text")
		file    = flag.String("f", "", "query file")
		name    = flag.String("name", "", "built-in query name: "+keys())
		iters   = flag.Int("iter", 200, "iteration budget for the step checker")
		rewrite = flag.Bool("rewrite", false, "print the PreM-checking rewrite (Appendix G) and exit")
	)
	flag.Var(&tables, "table", "name=path:schema (repeatable)")
	flag.Parse()

	src := *query
	switch {
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(b)
	case *name != "":
		q, ok := builtins[strings.ToLower(*name)]
		if !ok {
			fatal(fmt.Errorf("unknown built-in %q (have: %s)", *name, keys()))
		}
		src = q
	}
	if strings.TrimSpace(src) == "" {
		fatal(fmt.Errorf("no query given (-q, -f or -name)"))
	}

	if *rewrite {
		out, err := prem.RewriteCheckingQuery(src)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
		return
	}

	eng := rasql.New(rasql.Config{})
	if err := cli.LoadTables(eng, tables); err != nil {
		fatal(err)
	}
	stmts, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	prog, err := analyze.Statements(stmts, eng.Catalog())
	if err != nil {
		fatal(err)
	}
	rep, err := prem.Check(prog, exec.NewContext(), *iters)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
	if !rep.Holds {
		os.Exit(2)
	}
}

func keys() string {
	out := make([]string, 0, len(builtins))
	for k := range builtins {
		out = append(out, k)
	}
	return strings.Join(out, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "premcheck:", err)
	os.Exit(1)
}
