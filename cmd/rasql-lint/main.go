// Command rasql-lint checks the engine-source invariants that keep the
// allocation-free data plane honest and the engine safe for concurrent
// queries: deterministic clocks (simclock), non-retention of decode
// buffers (noretain), sync.Pool Get/Put pairing (pooldiscipline),
// worker-affine shuffle writes (workeraffinity), mutex-guarded field
// access (guardedby), deadlock-free lock ordering (lockorder), and
// unmixed atomic/plain access (atomicmix). See the internal/analysis
// package documentation for the invariants and the //rasql: annotation
// language.
//
// Two modes:
//
//	rasql-lint ./...                          # standalone, whole-program
//	go vet -vettool=$(which rasql-lint) ./... # unitchecker under cmd/go
//
// Standalone findings print human-readable by default; -json emits a
// machine-readable array of {file,line,col,analyzer,code,message}.
//
// Standalone mode loads and type-checks the matched module packages itself
// and sees every annotation at once. Under go vet, cmd/go drives one
// invocation per package and annotations cross package boundaries as facts
// files, so results are cached by the build system like any vet check.
//
// Exit status: 0 clean, 2 findings, 1 operational failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/rasql/rasql-go/internal/analysis"
	"github.com/rasql/rasql-go/internal/sql/vet"
)

// version is the tool identity reported to cmd/go's -V=full handshake.
// cmd/go requires the "<name> version <semver>" shape to build its
// cache key; "devel" would disable vet result caching.
const version = "v1.0.0"

func main() {
	// cmd/go probes the tool identity before first use.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Printf("rasql-lint version %s\n", version)
		return
	}
	// go vet queries the tool's flags as JSON; the suite takes none, so
	// every analyzer always runs.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Under go vet the final argument is the per-package config file.
	if n := len(os.Args); n >= 2 && strings.HasSuffix(os.Args[n-1], ".cfg") {
		os.Exit(analysis.RunUnit(os.Args[n-1], os.Stderr))
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	codes := flag.Bool("codes", false, "list every registered diagnostic code (RL and RV series) and exit")
	allocdrift := flag.Bool("allocdrift", false, "cross-check //rasql:noalloc annotations against //rasql:allocpin test pins instead of running the analyzers")
	dir := flag.String("C", ".", "change to `dir` before loading packages")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rasql-lint [-C dir] [-json] [-allocdrift] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Checks rasql engine-source invariants. With no packages, checks ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %-6s %s\n", a.Name, a.Code, a.Doc)
		}
		return
	}
	if *codes {
		printCodes()
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var diags []analysis.Diagnostic
	if *allocdrift {
		var err error
		diags, err = analysis.AllocDrift(*dir, patterns...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rasql-lint: %v\n", err)
			os.Exit(1)
		}
	} else {
		pkgs, fset, err := analysis.LoadPackages(*dir, patterns...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rasql-lint: %v\n", err)
			os.Exit(1)
		}
		diags = analysis.Run(fset, pkgs, analysis.All())
	}
	var err error
	if *jsonOut {
		err = analysis.RenderJSON(os.Stdout, diags)
	} else {
		err = analysis.RenderHuman(os.Stderr, diags)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rasql-lint: %v\n", err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// printCodes lists every stable diagnostic code the toolchain can emit:
// the RL series (engine-source invariants, this tool) and the RV series
// (`rasql vet` query-plan lints), each with its owning check and doc line.
func printCodes() {
	fmt.Printf("%-6s %-16s %s\n", "RL000", "rasql-lint", "malformed //rasql:allow or //rasql:detach annotation (framework check, always on)")
	byCode := analysis.All()
	sort.Slice(byCode, func(i, j int) bool { return byCode[i].Code < byCode[j].Code })
	for _, a := range byCode {
		fmt.Printf("%-6s %-16s %s\n", a.Code, a.Name, a.Doc)
	}
	fmt.Printf("%-6s %-16s %s\n", "RL010", "allocdrift", "//rasql:noalloc annotation without an //rasql:allocpin bench pin, or a stale pin (run with -allocdrift)")
	for _, cd := range vet.Codes() {
		fmt.Printf("%-6s %-16s %s\n", cd.Code, "rasql vet", cd.Doc)
	}
}
