// Command rasql-lint checks the engine-source invariants that keep the
// allocation-free data plane honest and the engine safe for concurrent
// queries: deterministic clocks (simclock), non-retention of decode
// buffers (noretain), sync.Pool Get/Put pairing (pooldiscipline),
// worker-affine shuffle writes (workeraffinity), mutex-guarded field
// access (guardedby), deadlock-free lock ordering (lockorder), and
// unmixed atomic/plain access (atomicmix). See the internal/analysis
// package documentation for the invariants and the //rasql: annotation
// language.
//
// Two modes:
//
//	rasql-lint ./...                          # standalone, whole-program
//	go vet -vettool=$(which rasql-lint) ./... # unitchecker under cmd/go
//
// Standalone findings print human-readable by default; -json emits a
// machine-readable array of {file,line,col,analyzer,code,message}.
//
// Standalone mode loads and type-checks the matched module packages itself
// and sees every annotation at once. Under go vet, cmd/go drives one
// invocation per package and annotations cross package boundaries as facts
// files, so results are cached by the build system like any vet check.
//
// Exit status: 0 clean, 2 findings, 1 operational failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/rasql/rasql-go/internal/analysis"
)

// version is the tool identity reported to cmd/go's -V=full handshake.
// cmd/go requires the "<name> version <semver>" shape to build its
// cache key; "devel" would disable vet result caching.
const version = "v1.0.0"

func main() {
	// cmd/go probes the tool identity before first use.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Printf("rasql-lint version %s\n", version)
		return
	}
	// go vet queries the tool's flags as JSON; the suite takes none, so
	// every analyzer always runs.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Under go vet the final argument is the per-package config file.
	if n := len(os.Args); n >= 2 && strings.HasSuffix(os.Args[n-1], ".cfg") {
		os.Exit(analysis.RunUnit(os.Args[n-1], os.Stderr))
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	dir := flag.String("C", ".", "change to `dir` before loading packages")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rasql-lint [-C dir] [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Checks rasql engine-source invariants. With no packages, checks ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-16s %-6s %s\n", a.Name, a.Code, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, fset, err := analysis.LoadPackages(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rasql-lint: %v\n", err)
		os.Exit(1)
	}
	diags := analysis.Run(fset, pkgs, analysis.All())
	if *jsonOut {
		err = analysis.RenderJSON(os.Stdout, diags)
	} else {
		err = analysis.RenderHuman(os.Stderr, diags)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rasql-lint: %v\n", err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
