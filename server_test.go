package rasql_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/server"
)

// newCaseServer starts an httptest rasqld serving one example case's tables
// on a fresh engine (fresh engine per server: metric families register once
// per registry).
func newCaseServer(t *testing.T, tc exampleCase, cfg server.Config) *httptest.Server {
	t.Helper()
	eng := rasql.New(rasql.Config{})
	for _, tab := range tc.tables() {
		eng.MustRegister(tab.Clone())
	}
	ts := httptest.NewServer(server.New(eng, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// postJSON posts body and decodes the response into out (row cells as
// json.Number so int64s survive). Returns the HTTP status.
func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		dec := json.NewDecoder(resp.Body)
		dec.UseNumber()
		if err := dec.Decode(out); err != nil && err != io.EOF {
			t.Fatalf("POST %s: decode response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// wireResult is the subset of the /v1/query response the tests decode.
type wireResult struct {
	Columns  []server.ColumnJSON `json:"columns"`
	Rows     [][]any             `json:"rows"`
	RowCount int                 `json:"row_count"`
	Cached   bool                `json:"cached"`
	Error    string              `json:"error"`
}

// serverQuery runs sql over HTTP (sid optional) and rebuilds the relation.
func serverQuery(t *testing.T, base, sid, sql string) (*rasql.Relation, *wireResult) {
	t.Helper()
	var res wireResult
	status := postJSON(t, base+"/v1/query", map[string]any{"sql": sql, "session_id": sid}, &res)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/query: status %d: %s", status, res.Error)
	}
	rel, err := server.DecodeRelation("result", res.Columns, res.Rows)
	if err != nil {
		t.Fatalf("decode result relation: %v", err)
	}
	return rel, &res
}

// newSession creates a server session and returns its id.
func newSession(t *testing.T, base string) string {
	t.Helper()
	var res struct {
		SessionID string `json:"session_id"`
		Error     string `json:"error"`
	}
	if status := postJSON(t, base+"/v1/sessions", map[string]any{}, &res); status != http.StatusCreated {
		t.Fatalf("POST /v1/sessions: status %d: %s", status, res.Error)
	}
	return res.SessionID
}

// caseOracle runs the example case on a fresh in-process engine.
func caseOracle(t *testing.T, tc exampleCase) *rasql.Relation {
	t.Helper()
	eng := rasql.New(rasql.Config{})
	for _, tab := range tc.tables() {
		eng.MustRegister(tab.Clone())
	}
	want, err := eng.Query(tc.query)
	if err != nil {
		t.Fatalf("sequential oracle: %v", err)
	}
	return want
}

// TestServerDifferential runs every example query through an
// httptest-started rasqld twice — once in a fresh session per request, once
// repeatedly through one shared session — and compares each HTTP result
// set-equal against the in-process sequential oracle. The shared-session
// repeats also pin down plan-cache behaviour: the repeat of a cacheable
// statement must be served from cache.
func TestServerDifferential(t *testing.T) {
	for _, tc := range exampleCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want := caseOracle(t, tc)
			ts := newCaseServer(t, tc, server.Config{})

			// Fresh session per request.
			got, _ := serverQuery(t, ts.URL, newSession(t, ts.URL), tc.query)
			if !got.EqualAsSet(want) {
				t.Errorf("fresh session diverged from oracle\n got: %v\nwant: %v", got.Sort(), want.Sort())
			}

			// One shared session, repeated requests. CREATE VIEW scripts
			// (coalesce) are not cacheable; repeats must still be correct.
			sid := newSession(t, ts.URL)
			var sawCached bool
			for i := 0; i < 3; i++ {
				got, res := serverQuery(t, ts.URL, sid, tc.query)
				if !got.EqualAsSet(want) {
					t.Errorf("shared session repeat %d diverged from oracle\n got: %v\nwant: %v",
						i, got.Sort(), want.Sort())
				}
				sawCached = sawCached || res.Cached
			}
			if tc.name != "coalesce" && !sawCached {
				t.Errorf("no repeat of %s was served from the plan cache", tc.name)
			}
		})
	}
}

// TestServerConcurrentClients is the serving differential under load: for
// every example query, concurrentGoroutines HTTP clients (each with its own
// session) issue the query twice against one shared server, and every
// response must be set-equal to the sequential oracle. The CI
// server-differential job runs this under -race.
func TestServerConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent server differential sweep is not short")
	}
	for _, tc := range exampleCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want := caseOracle(t, tc)
			ts := newCaseServer(t, tc, server.Config{MaxConcurrent: concurrentGoroutines, QueueDepth: 2 * concurrentGoroutines})

			errs := make([]error, concurrentGoroutines)
			var wg sync.WaitGroup
			for i := 0; i < concurrentGoroutines; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					sid, err := clientSession(ts.URL)
					if err != nil {
						errs[i] = err
						return
					}
					for rep := 0; rep < 2; rep++ {
						got, err := clientQuery(ts.URL, sid, tc.query)
						if err != nil {
							errs[i] = fmt.Errorf("repeat %d: %w", rep, err)
							return
						}
						if !got.EqualAsSet(want) {
							errs[i] = fmt.Errorf("repeat %d diverged: got %v want %v", rep, got.Sort(), want.Sort())
							return
						}
					}
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("client %d: %v", i, err)
				}
			}
		})
	}
}

// clientSession is newSession without *testing.T, for use off the test
// goroutine (t.Fatalf must not be called from spawned goroutines).
func clientSession(base string) (string, error) {
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("POST /v1/sessions: status %d: %s", resp.StatusCode, msg)
	}
	var out struct {
		SessionID string `json:"session_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.SessionID, nil
}

// clientQuery is serverQuery without *testing.T.
func clientQuery(base, sid, sql string) (*rasql.Relation, error) {
	buf, err := json.Marshal(map[string]any{"sql": sql, "session_id": sid})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("POST /v1/query: status %d: %s", resp.StatusCode, msg)
	}
	var res wireResult
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	if err := dec.Decode(&res); err != nil {
		return nil, err
	}
	return server.DecodeRelation("result", res.Columns, res.Rows)
}

// TestServerSessionSettings checks that per-session settings reach the
// fixpoint engine: a session created with an SSP mode reports that mode in
// its per-query stats, and a request-level override takes precedence.
func TestServerSessionSettings(t *testing.T) {
	tc := exampleCases()[0] // sssp
	ts := newCaseServer(t, tc, server.Config{})

	var sess struct {
		SessionID string `json:"session_id"`
	}
	if status := postJSON(t, ts.URL+"/v1/sessions",
		map[string]any{"settings": map[string]any{"mode": "ssp:2"}}, &sess); status != http.StatusCreated {
		t.Fatalf("create session: status %d", status)
	}

	var res struct {
		Stats struct {
			Mode string `json:"mode"`
		} `json:"stats"`
	}
	if status := postJSON(t, ts.URL+"/v1/query",
		map[string]any{"sql": tc.query, "session_id": sess.SessionID}, &res); status != http.StatusOK {
		t.Fatalf("query: status %d", status)
	}
	if res.Stats.Mode != "ssp(2)" {
		t.Errorf("session mode: stats.mode = %q, want ssp(2)", res.Stats.Mode)
	}

	if status := postJSON(t, ts.URL+"/v1/query",
		map[string]any{"sql": tc.query, "session_id": sess.SessionID,
			"settings": map[string]any{"mode": "async"}}, &res); status != http.StatusOK {
		t.Fatalf("query with override: status %d", status)
	}
	if res.Stats.Mode != "async" {
		t.Errorf("request override: stats.mode = %q, want async", res.Stats.Mode)
	}

	// Unknown sessions and invalid settings are client errors.
	var errRes struct {
		Error string `json:"error"`
	}
	if status := postJSON(t, ts.URL+"/v1/query",
		map[string]any{"sql": tc.query, "session_id": "nope"}, &errRes); status != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", status)
	}
	if status := postJSON(t, ts.URL+"/v1/query",
		map[string]any{"sql": tc.query, "settings": map[string]any{"mode": "warp"}}, &errRes); status != http.StatusBadRequest {
		t.Errorf("bad mode: status %d, want 400", status)
	}
	if status := postJSON(t, ts.URL+"/v1/query",
		map[string]any{"sql": "SELEKT"}, &errRes); status != http.StatusBadRequest {
		t.Errorf("bad sql: status %d, want 400", status)
	}
}

// TestServerPrepareExecute drives the prepared-statement endpoints: prepare
// once, execute repeatedly (second execute onward must hit the plan cache),
// and a DDL script in between must not poison correctness.
func TestServerPrepareExecute(t *testing.T) {
	tc := exampleCases()[0] // sssp
	want := caseOracle(t, tc)
	ts := newCaseServer(t, tc, server.Config{})
	sid := newSession(t, ts.URL)

	var prep struct {
		StatementID    string `json:"statement_id"`
		NormalizedSQL  string `json:"normalized_sql"`
		CatalogVersion uint64 `json:"catalog_version"`
		Error          string `json:"error"`
	}
	if status := postJSON(t, ts.URL+"/v1/prepare",
		map[string]any{"session_id": sid, "sql": tc.query}, &prep); status != http.StatusOK {
		t.Fatalf("prepare: status %d: %s", status, prep.Error)
	}
	if prep.StatementID == "" || prep.NormalizedSQL == "" {
		t.Fatalf("prepare: incomplete response %+v", prep)
	}

	for rep := 0; rep < 3; rep++ {
		var res wireResult
		if status := postJSON(t, ts.URL+"/v1/execute",
			map[string]any{"session_id": sid, "statement_id": prep.StatementID}, &res); status != http.StatusOK {
			t.Fatalf("execute %d: status %d: %s", rep, status, res.Error)
		}
		got, err := server.DecodeRelation("result", res.Columns, res.Rows)
		if err != nil {
			t.Fatalf("execute %d: %v", rep, err)
		}
		if !got.EqualAsSet(want) {
			t.Errorf("execute %d diverged\n got: %v\nwant: %v", rep, got.Sort(), want.Sort())
		}
		if rep > 0 && !res.Cached {
			t.Errorf("execute %d: not served from plan cache", rep)
		}
	}

	// Unknown statement ids are 404s.
	var errRes struct {
		Error string `json:"error"`
	}
	if status := postJSON(t, ts.URL+"/v1/execute",
		map[string]any{"session_id": sid, "statement_id": "nope"}, &errRes); status != http.StatusNotFound {
		t.Errorf("unknown statement: status %d, want 404", status)
	}
	// CREATE VIEW is not preparable: /v1/prepare must refuse it (400), while
	// /v1/query accepts it.
	ddl := `CREATE VIEW v(S) AS (SELECT Src FROM edge); SELECT S FROM v`
	if status := postJSON(t, ts.URL+"/v1/prepare",
		map[string]any{"session_id": sid, "sql": ddl}, &errRes); status != http.StatusBadRequest {
		t.Errorf("prepare DDL: status %d, want 400", status)
	}
	var res wireResult
	if status := postJSON(t, ts.URL+"/v1/query",
		map[string]any{"sql": ddl, "session_id": sid}, &res); status != http.StatusOK {
		t.Errorf("query DDL: status %d: %s", status, res.Error)
	}
	// The DDL bumped the catalog version; the prepared statement must still
	// execute correctly (the server re-prepares on version mismatch).
	var res2 wireResult
	if status := postJSON(t, ts.URL+"/v1/execute",
		map[string]any{"session_id": sid, "statement_id": prep.StatementID}, &res2); status != http.StatusOK {
		t.Fatalf("execute after DDL: status %d: %s", status, res2.Error)
	}
	got, err := server.DecodeRelation("result", res2.Columns, res2.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Errorf("execute after DDL diverged\n got: %v\nwant: %v", got.Sort(), want.Sort())
	}
}
