package rasql_test

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/queries"
)

// redactAnalyze strips the nondeterministic parts of an EXPLAIN ANALYZE
// rendering — wall-clock durations and the cluster counter delta (remote
// vs local fetch split depends on task placement) — leaving the tree
// shape, row counts, iteration telemetry and skew, which are all
// deterministic for a fixed cluster size.
func redactAnalyze(out string) string {
	out = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|ms|s)`).ReplaceAllString(out, "T")
	return regexp.MustCompile(`(?m)^Cluster delta: .*$`).ReplaceAllString(out, "Cluster delta: REDACTED")
}

// TestExplainAnalyzeGolden pins the EXPLAIN ANALYZE tree shape for the SSSP
// recursive-aggregate query on a fixed 4×4 cluster: plan, phases, stages,
// and the full per-iteration convergence table.
func TestExplainAnalyzeGolden(t *testing.T) {
	eng := rasql.New(rasql.Config{Cluster: rasql.ClusterConfig{Workers: 4, Partitions: 4}})
	eng.MustRegister(weightedEdges())
	out, err := eng.ExplainAnalyze(queries.SSSP)
	if err != nil {
		t.Fatal(err)
	}
	const want = `Fixpoint[path] partitionKey=[0] decomposed=false
  aggregate: min() AS Cost, implicit group by [0]
  rule 0: strategy=co-partition copartBase=edge on [0]
  view path(Dst int, Cost double): 1 base rule(s), 1 recursive rule(s)
Final: 1 source(s), 0 conjunct(s), grouped=false, schema (Dst int, Cost double)
-- analyze --
Result: 5 row(s)
Phases:
  parse                  ×1    T
  analyze                ×1    T
  fixpoint               ×1    T
  final                  ×1    T
Stages:
  copart.build           ×1    T (4 task(s), task time T)
  fixpoint.shufflemap    ×5    T (20 task(s), task time T)
Fixpoint iterations (dsn-combined): 5 recorded
  iter     delta       all       new  improved  shuffleB  shuffleRec     stale  superseded  skew  time
     0         1         1         1         0        25           2         -           -  4.00  T
     1         2         3         2         0        38           3         -           -  2.67  T
     2         3         5         2         1        39           3         -           -  2.40  T
     3         1         5         0         1        13           1         -           -  2.40  T
     4         0         5         0         0         0           0         -           -  2.40  T
Cluster delta: REDACTED
`
	if got := redactAnalyze(out); got != want {
		t.Errorf("EXPLAIN ANALYZE shape drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// Under chaos the analyze output gains a Recovery line; fault-free runs
// (the golden test above) must not show one.
func TestExplainAnalyzeRecoveryLine(t *testing.T) {
	cfg := rasql.Config{Cluster: rasql.ClusterConfig{Workers: 4, Partitions: 4}}
	cfg.Cluster.Chaos = rasql.ChaosConfig{Schedule: []rasql.ChaosEvent{
		{Stage: "fixpoint.shufflemap", Occurrence: -1, Part: 0, Attempt: 0, Kind: rasql.FaultPostMerge},
	}}
	eng := rasql.New(cfg)
	eng.MustRegister(weightedEdges())
	out, err := eng.ExplainAnalyze(queries.SSSP)
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile(`(?m)^Recovery: (\d+) task retries, (\d+) partition rollbacks, \d+ rows replayed$`).
		FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no Recovery line under chaos:\n%s", out)
	}
	if m[1] == "0" || m[2] == "0" {
		t.Errorf("Recovery line shows no retries/rollbacks: %q", m[0])
	}
}

// TestExplainAnalyzeRestoresTracer checks that ExplainAnalyze's internal
// tracer does not clobber one the caller attached.
func TestExplainAnalyzeRestoresTracer(t *testing.T) {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(weightedEdges())
	mine := rasql.NewTracer()
	eng.SetTracer(mine)
	if _, err := eng.ExplainAnalyze(queries.SSSP); err != nil {
		t.Fatal(err)
	}
	if eng.Tracer() != mine {
		t.Fatalf("ExplainAnalyze did not restore the attached tracer")
	}
	// A full attached tracer keeps recording, so -trace export still sees
	// the analyzed run.
	if len(mine.Events()) == 0 || len(mine.Iterations()) == 0 {
		t.Error("attached tracer did not record the analyzed run")
	}
}

// TestTraceExport runs a recursive query with a full tracer attached and
// checks the Chrome export validates and records the expected tracks.
func TestTraceExport(t *testing.T) {
	eng := rasql.New(rasql.Config{Cluster: rasql.ClusterConfig{Workers: 2, Partitions: 2}})
	eng.MustRegister(weightedEdges())
	tr := rasql.NewTracer()
	eng.SetTracer(tr)
	if _, err := eng.Query(queries.SSSP); err != nil {
		t.Fatal(err)
	}
	if n := len(tr.Iterations()); n == 0 {
		t.Fatal("no fixpoint iterations recorded")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rasql.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, buf.String())
	}
	for _, want := range []string{`"driver"`, `"worker 0"`, `"fixpoint iterations"`, "delta rows"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("trace missing %s", want)
		}
	}
}

// TestExplainAnalyzeRelaxedGolden pins the convergence table for the same
// SSSP query under SSP(1): the staleness columns carry numbers instead of
// "-", and the mode label names the bound. The sequential scheduler makes
// the relaxed round telemetry deterministic.
func TestExplainAnalyzeRelaxedGolden(t *testing.T) {
	cfg := rasql.Config{Cluster: rasql.ClusterConfig{Workers: 4, Partitions: 4, SequentialStages: true}}
	cfg.Fixpoint.Mode = rasql.ModeSSP
	cfg.Fixpoint.Staleness = 1
	eng := rasql.New(cfg)
	eng.MustRegister(weightedEdges())
	out, err := eng.ExplainAnalyze(queries.SSSP)
	if err != nil {
		t.Fatal(err)
	}
	const want = `Fixpoint[path] partitionKey=[0] decomposed=false
  aggregate: min() AS Cost, implicit group by [0]
  rule 0: strategy=co-partition copartBase=edge on [0]
  view path(Dst int, Cost double): 1 base rule(s), 1 recursive rule(s)
Final: 1 source(s), 0 conjunct(s), grouped=false, schema (Dst int, Cost double)
-- analyze --
Result: 5 row(s)
Phases:
  parse                  ×1    T
  analyze                ×1    T
  fixpoint               ×1    T
  final                  ×1    T
Stages:
  copart.build           ×1    T (4 task(s), task time T)
  fixpoint.relaxed       ×1    T (6 task(s), task time T)
Fixpoint iterations (dsn-ssp(1)): 3 recorded
  iter     delta       all       new  improved  shuffleB  shuffleRec     stale  superseded  skew  time
     0         5         4         4         1         0           0         0           0     -  T
     1         2         5         1         1         0           0         0           1     -  T
     2         0         5         0         0         0           0         1           1  2.40  T
Cluster delta: REDACTED
`
	if got := redactAnalyze(out); got != want {
		t.Errorf("EXPLAIN ANALYZE shape drifted.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
