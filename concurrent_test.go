package rasql_test

import (
	"sync"
	"testing"

	rasql "github.com/rasql/rasql-go"
)

// concurrentGoroutines is how many goroutines hammer one shared engine per
// case; the CI race-concurrent job runs this file under `go test -race`.
const concurrentGoroutines = 8

// TestConcurrentQueriesMatchSequential is the tentpole's proof obligation:
// one Engine serves many queries at once. For every example query, in both
// the distributed and the forced-local mode, a sequential run on a fresh
// engine is the oracle; then a single shared engine executes the same
// script from concurrentGoroutines goroutines simultaneously, and every
// result must equal the oracle as a set. Scripts with CREATE VIEW
// (coalesce) exercise the catalog's concurrent replace-commit path.
func TestConcurrentQueriesMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent differential sweep is not short")
	}
	modes := []struct {
		name string
		cfg  func() rasql.Config
	}{
		{"distributed", func() rasql.Config {
			var cfg rasql.Config
			cfg.Cluster.Workers = 4
			cfg.Cluster.Partitions = 4
			return cfg
		}},
		{"local", func() rasql.Config { return rasql.Config{ForceLocal: true} }},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			for _, tc := range exampleCases() {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					t.Parallel() // overlap cases too: more schedules, same oracle per case

					oracle := rasql.New(m.cfg())
					for _, tab := range tc.tables() {
						oracle.MustRegister(tab.Clone())
					}
					want, err := oracle.Query(tc.query)
					if err != nil {
						t.Fatalf("sequential oracle: %v", err)
					}

					shared := rasql.New(m.cfg())
					for _, tab := range tc.tables() {
						shared.MustRegister(tab.Clone())
					}
					got := make([]*rasql.Relation, concurrentGoroutines)
					errs := make([]error, concurrentGoroutines)
					var wg sync.WaitGroup
					for i := 0; i < concurrentGoroutines; i++ {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							got[i], errs[i] = shared.Query(tc.query)
						}(i)
					}
					wg.Wait()

					for i := 0; i < concurrentGoroutines; i++ {
						if errs[i] != nil {
							t.Errorf("goroutine %d: %v", i, errs[i])
							continue
						}
						if !got[i].EqualAsSet(want) {
							t.Errorf("goroutine %d diverged from sequential run\n got: %v\nwant: %v",
								i, got[i].Sort(), want.Sort())
						}
					}
				})
			}
		})
	}
}
