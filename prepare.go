package rasql

import (
	"context"
	"errors"
	"fmt"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/sql/optimize"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/internal/trace"
)

// ErrNotPreparable reports a script that cannot be compiled once and reused:
// CREATE VIEW commits DDL, so its effect depends on when it runs, not only
// on the catalog snapshot it was compiled against.
var ErrNotPreparable = errors.New("rasql: scripts containing CREATE VIEW cannot be prepared")

// ErrPlanStale reports an ExecPrepared against an engine whose catalog has
// committed DDL since the plan was compiled. Callers holding plan caches
// (the rasqld server) treat it as a miss and re-prepare.
var ErrPlanStale = errors.New("rasql: prepared plan is stale (catalog changed since Prepare)")

// Prepared is a compiled script: parsed, analyzed and optimized once against
// a snapshot-isolated catalog clone. A Prepared is immutable after Prepare
// and safe to execute from any number of goroutines concurrently — the
// compiled programs are read-only; all mutable execution state is per-query.
type Prepared struct {
	src     string
	progs   []*analyze.Program
	version uint64
}

// CatalogVersion returns the catalog DDL version the plan was compiled
// against (the plan-cache key component).
func (p *Prepared) CatalogVersion() uint64 { return p.version }

// Source returns the script text the plan was compiled from.
func (p *Prepared) Source() string { return p.src }

// Statements returns the number of compiled query statements.
func (p *Prepared) Statements() int { return len(p.progs) }

// CatalogVersion returns the session catalog's DDL commit counter: it bumps
// on every table or view registration, replacement or drop, so equal
// versions mean plans compiled earlier still resolve identically.
func (e *Engine) CatalogVersion() uint64 { return e.cat.Version() }

// Prepare compiles a script — parse, analyze, optimize — against a snapshot
// of the current catalog and returns the reusable compiled plan. Scripts
// containing CREATE VIEW return ErrNotPreparable; scripts with no query
// statement error too (there is nothing to execute repeatedly).
func (e *Engine) Prepare(src string) (*Prepared, error) {
	stmts, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	cat := e.cat.Clone()
	p := &Prepared{src: src, version: cat.Version()}
	for _, s := range stmts {
		if _, ok := s.(*ast.CreateView); ok {
			return nil, ErrNotPreparable
		}
		prog, err := analyze.Statement(s, cat)
		if err != nil {
			return nil, err
		}
		p.progs = append(p.progs, optimize.Program(prog))
	}
	if len(p.progs) == 0 {
		return nil, fmt.Errorf("rasql: script contained no query statement")
	}
	return p, nil
}

// ExecPrepared runs a compiled plan under ctx, returning the last
// statement's result. It refuses a plan whose catalog version no longer
// matches the session catalog (ErrPlanStale): a cached plan is never served
// against a changed catalog.
func (e *Engine) ExecPrepared(ctx context.Context, p *Prepared, opts *ExecOptions) (*relation.Relation, error) {
	if p.version != e.cat.Version() {
		return nil, ErrPlanStale
	}
	qc := e.cluster.NewQuery(opts.tracer(e))
	qc.SetContext(ctx)
	defer qc.Finish()
	var last *relation.Relation
	var err error
	for _, prog := range p.progs {
		sp := qc.Tracer.Begin("prepared", trace.TidDriver)
		last, err = e.run(qc, prog, opts)
		sp.End()
		if err != nil {
			break
		}
	}
	qc.SetErr(err)
	if opts != nil && opts.Stats != nil {
		qc.Finish()
		*opts.Stats = qc.Stats(qc.Metrics.Snapshot())
	}
	if err != nil {
		return nil, err
	}
	return last, nil
}
