package rasql

import (
	"fmt"
	"strings"
	"time"

	"github.com/rasql/rasql-go/internal/fixpoint"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/internal/trace"
)

// Explain renders the execution plan of a query: the recursive clique, its
// distributed plan (or the local fallback reason), and the final query
// shape. CREATE VIEW statements in the script are registered into the
// session, matching Exec.
func (e *Engine) Explain(src string) (string, error) {
	return e.explain(src, e.cat)
}

func (e *Engine) explain(src string, cat *catalog.Catalog) (string, error) {
	stmts, err := parser.Parse(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, s := range stmts {
		if cv, ok := s.(*ast.CreateView); ok {
			fmt.Fprintf(&b, "View %s(%s)\n", cv.Name, strings.Join(cv.Columns, ", "))
			if err := cat.RegisterView(&catalog.ViewDef{Name: cv.Name, Columns: cv.Columns, Query: cv.Query}); err != nil {
				return "", err
			}
			continue
		}
		prog, err := analyze.Statement(s, cat)
		if err != nil {
			return "", err
		}
		if prog.Clique != nil && len(prog.Clique.Views) > 0 {
			plan, perr := fixpoint.PlanDistributed(prog.Clique)
			switch {
			case e.cfg.ForceLocal:
				b.WriteString("Fixpoint: local (forced)\n")
			case perr == nil:
				b.WriteString(plan.Describe())
			default:
				fmt.Fprintf(&b, "Fixpoint: local engine (%v)\n", perr)
			}
			for _, v := range prog.Clique.Views {
				kind := "set"
				if v.IsAgg() {
					kind = v.Agg.String()
				}
				fmt.Fprintf(&b, "  view %s%s: %d base rule(s), %d recursive rule(s)\n",
					v.Name, v.Schema, len(v.BaseRules), len(v.RecRules))
				_ = kind
			}
		}
		fmt.Fprintf(&b, "Final: %d source(s), %d conjunct(s), grouped=%v, schema %s\n",
			len(prog.Final.Sources), len(prog.Final.Conjuncts), prog.Final.Grouped, prog.Final.Schema)
	}
	return b.String(), nil
}

// ExplainAnalyze executes the script with a full tracer attached and
// renders the static plan annotated with what actually happened: result
// size, per-phase timings, stage and task summaries, the per-iteration
// fixpoint table (delta rows, all-relation size, new vs improved, shuffle
// volume, partition skew), and the cluster counter delta.
//
// The plan is rendered against a throwaway copy of the catalog and the
// script is then executed for real — views it creates stay registered, like
// Exec. A full tracer already attached with SetTracer keeps recording (so
// EXPLAIN ANALYZE composes with -trace export); otherwise a throwaway
// per-query tracer captures the run. Either way the counters come from the
// run's own query context, so concurrent queries never bleed into the
// report.
func (e *Engine) ExplainAnalyze(src string) (string, error) {
	plan, err := e.explain(src, e.cat.Clone())
	if err != nil {
		return "", err
	}

	tr := e.Tracer()
	if !tr.SpansEnabled() {
		tr = trace.New()
	}
	preEvents, preIters := len(tr.Events()), len(tr.Iterations())
	qc := e.cluster.NewQuery(tr)
	rel, err := e.exec(qc, src, nil)
	qc.Finish()
	if err != nil {
		return "", err
	}
	delta := qc.Metrics.Snapshot()

	var b strings.Builder
	b.WriteString(plan)
	b.WriteString("-- analyze --\n")
	if rel != nil {
		fmt.Fprintf(&b, "Result: %d row(s)\n", rel.Len())
	} else {
		b.WriteString("Result: no query statement\n")
	}

	// Summarize only this run's slice of the (possibly shared) tracer.
	events := tr.Events()[preEvents:]
	writePhaseSummary(&b, events)
	writeStageSummary(&b, events)
	writeIterationTable(&b, tr.Iterations()[preIters:])
	fmt.Fprintf(&b, "Cluster delta: %s\n", delta)
	// Recovery telemetry only appears when fault injection actually fired
	// (fault-free runs keep the analyze output unchanged).
	if delta.TaskRetries > 0 || delta.RecoveredIterations > 0 {
		fmt.Fprintf(&b, "Recovery: %d task retries, %d partition rollbacks, %d rows replayed\n",
			delta.TaskRetries, delta.RecoveredIterations, delta.RowsReplayed)
	}
	return b.String(), nil
}

// writePhaseSummary lists the driver phases (parse, analyze, fixpoint,
// final — everything on the driver track that is not a stage span).
func writePhaseSummary(b *strings.Builder, events []trace.Event) {
	stats := trace.SummarizeSpans(events, func(e trace.Event) bool {
		return e.Tid == trace.TidDriver && !strings.HasPrefix(e.Name, "stage ")
	})
	if len(stats) == 0 {
		return
	}
	b.WriteString("Phases:\n")
	for _, s := range stats {
		fmt.Fprintf(b, "  %-22s ×%-4d %s\n", s.Name, s.Count, fmtNanos(s.TotalNS))
	}
}

// writeStageSummary aggregates the cluster stages (driver track) and their
// tasks (worker tracks) by name.
func writeStageSummary(b *strings.Builder, events []trace.Event) {
	stages := trace.SummarizeSpans(events, func(e trace.Event) bool {
		return e.Tid == trace.TidDriver && strings.HasPrefix(e.Name, "stage ")
	})
	if len(stages) == 0 {
		return
	}
	tasks := trace.SummarizeSpans(events, func(e trace.Event) bool {
		return e.Tid != trace.TidDriver && e.Tid != trace.TidIterations
	})
	taskByName := map[string]trace.SpanStat{}
	for _, t := range tasks {
		taskByName[t.Name] = t
	}
	b.WriteString("Stages:\n")
	for _, s := range stages {
		name := strings.TrimPrefix(s.Name, "stage ")
		t := taskByName[name]
		fmt.Fprintf(b, "  %-22s ×%-4d %s (%d task(s), task time %s)\n",
			name, s.Count, fmtNanos(s.TotalNS), t.Count, fmtNanos(t.TotalNS))
	}
}

// writeIterationTable renders the fixpoint convergence table.
func writeIterationTable(b *strings.Builder, iters []trace.IterationEvent) {
	if len(iters) == 0 {
		return
	}
	fmt.Fprintf(b, "Fixpoint iterations (%s): %d recorded\n", iters[0].Mode, len(iters))
	b.WriteString("  iter     delta       all       new  improved  shuffleB  shuffleRec     stale  superseded  skew  time\n")
	for _, it := range iters {
		skew := "-"
		if len(it.PartRows) > 0 {
			skew = fmt.Sprintf("%.2f", it.Skew())
		}
		// Staleness telemetry only means something without a barrier; BSP
		// rows render the columns as absent.
		stale, superseded := "-", "-"
		if it.Relaxed {
			stale = fmt.Sprintf("%d", it.StaleRows)
			superseded = fmt.Sprintf("%d", it.SupersededRows)
		}
		fmt.Fprintf(b, "  %4d  %8d  %8d  %8d  %8d  %8d  %10d  %8s  %10s  %4s  %s\n",
			it.Iter, it.DeltaRows, it.AllRows, it.NewKeys, it.Improved,
			it.ShuffleBytes, it.ShuffleRecords, stale, superseded, skew, fmtNanos(it.EndNS-it.StartNS))
	}
}

func fmtNanos(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
