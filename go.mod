module github.com/rasql/rasql-go

go 1.22
