// Benchmarks regenerating each of the paper's evaluation tables and
// figures at smoke scale. `go test -bench=. -benchmem` runs every
// experiment once per iteration; the full paper-shaped sweeps run via
// `go run ./cmd/rasql-bench -all`.
package rasql_test

import (
	"testing"

	"github.com/rasql/rasql-go/internal/bench"
)

func benchRunner(b *testing.B) *bench.Runner {
	b.Helper()
	return bench.NewRunner(bench.Config{Quick: true, Seed: 7})
}

func runExperiment(b *testing.B, id string) {
	r := benchRunner(b)
	exps := r.Experiments()
	f, ok := exps[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1StratifiedVsRaSQL regenerates Figure 1: the stratified
// versions of CC and SSSP versus their aggregate-in-recursion forms.
func BenchmarkFig1StratifiedVsRaSQL(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig5StageCombination regenerates Figure 5: stage combination
// on/off for CC, REACH and SSSP on RMAT graphs.
func BenchmarkFig5StageCombination(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6Decomposition regenerates Figure 6: decomposed plans and
// broadcast compression on the TC query.
func BenchmarkFig6Decomposition(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7CodeGen regenerates Figure 7: fused (code-generated) versus
// Volcano execution.
func BenchmarkFig7CodeGen(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8RMATScaling regenerates Figure 8: the five-system comparison
// across RMAT sizes.
func BenchmarkFig8RMATScaling(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9RealGraphs regenerates Figure 9: the systems comparison on
// real-world graph analogs.
func BenchmarkFig9RealGraphs(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10ComplexAnalytics regenerates Figure 10: Delivery,
// Management and MLM versus GraphX and the iterative-SQL baselines.
func BenchmarkFig10ComplexAnalytics(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11JoinChoice regenerates Figure 11 (Appendix D): shuffle-hash
// versus sort-merge joins.
func BenchmarkFig11JoinChoice(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12ScaleOut regenerates Figure 12 (Appendix F): the worker
// scaling sweep on TC and SG.
func BenchmarkFig12ScaleOut(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkTable1RealGraphParams regenerates Table 1's dataset parameters.
func BenchmarkTable1RealGraphParams(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2SyntheticGraphs regenerates Table 2: synthetic graph
// parameters with computed TC/SG result sizes.
func BenchmarkTable2SyntheticGraphs(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3CCBaselines regenerates Table 3 (Appendix F): CC against
// the single-machine GAP/COST baselines.
func BenchmarkTable3CCBaselines(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkAblations runs the DESIGN.md design-choice ablations: SetRDD
// mutability, scheduling policy, build-side caching, semi-naive vs naive.
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablations") }
