package rasql_test

import (
	"errors"
	"strings"
	"testing"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/fixpoint"
	"github.com/rasql/rasql-go/queries"
)

// ---- fixtures -------------------------------------------------------------

func relOf(name string, schema rasql.Schema, rows ...rasql.Row) *rasql.Relation {
	r := rasql.NewRelation(name, schema)
	for _, row := range rows {
		r.Append(row)
	}
	return r
}

func iRow(vals ...int64) rasql.Row {
	r := make(rasql.Row, len(vals))
	for i, v := range vals {
		r[i] = rasql.Int(v)
	}
	return r
}

func weightedEdges() *rasql.Relation {
	schema := rasql.NewSchema(rasql.Col("Src", rasql.KindInt), rasql.Col("Dst", rasql.KindInt), rasql.Col("Cost", rasql.KindFloat))
	e := rasql.NewRelation("edge", schema)
	for _, t := range [][3]float64{
		{1, 2, 1}, {1, 3, 4}, {2, 3, 2}, {3, 4, 1}, {4, 2, 5}, {2, 5, 10}, {5, 1, 1},
	} {
		e.Append(rasql.Row{rasql.Int(int64(t[0])), rasql.Int(int64(t[1])), rasql.Float(t[2])})
	}
	return e
}

func plainEdges(pairs ...[2]int64) *rasql.Relation {
	schema := rasql.NewSchema(rasql.Col("Src", rasql.KindInt), rasql.Col("Dst", rasql.KindInt))
	e := rasql.NewRelation("edge", schema)
	for _, p := range pairs {
		e.Append(iRow(p[0], p[1]))
	}
	return e
}

// symmetrized undirected edges for CC: components {1,2,3} and {4,5}.
func ccEdges() *rasql.Relation {
	return plainEdges([2]int64{1, 2}, [2]int64{2, 1}, [2]int64{2, 3}, [2]int64{3, 2},
		[2]int64{4, 5}, [2]int64{5, 4})
}

// engineConfigs enumerates the execution configurations every query must
// agree across: the reference engines and the distributed engine under each
// optimization combination.
func engineConfigs() map[string]rasql.Config {
	return map[string]rasql.Config{
		"local-semi-naive": {ForceLocal: true},
		"local-naive":      {Naive: true},
		"dist-default":     {},
		"dist-uncombined": {RawOptimizations: true,
			Cluster: rasql.ClusterConfig{CompressBroadcast: true}},
		"dist-volcano": func() rasql.Config {
			c := rasql.Config{}
			c.Fixpoint.Volcano = true
			return c
		}(),
		"dist-sortmerge": func() rasql.Config {
			c := rasql.Config{}
			c.Fixpoint.Join = fixpoint.SortMerge
			return c
		}(),
		"dist-hybrid-sched": {Cluster: rasql.ClusterConfig{Policy: rasql.PolicyHybrid}},
		"dist-immutable":    {Cluster: rasql.ClusterConfig{ImmutableState: true}},
		"dist-no-decompose": func() rasql.Config {
			c := rasql.Config{}
			c.Fixpoint.DisableDecomposition = true
			return c
		}(),
		"dist-1worker": {Cluster: rasql.ClusterConfig{Workers: 1, Partitions: 1}},
		"dist-7parts":  {Cluster: rasql.ClusterConfig{Workers: 3, Partitions: 7}},
	}
}

// runAll runs a query under every engine configuration and checks the
// result equals want as a set.
func runAll(t *testing.T, tables []*rasql.Relation, query string, want *rasql.Relation) {
	t.Helper()
	for name, cfg := range engineConfigs() {
		eng := rasql.New(cfg)
		for _, tab := range tables {
			eng.MustRegister(tab.Clone())
		}
		got, err := eng.Query(query)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !got.EqualAsSet(want) {
			t.Errorf("%s: wrong result\n got: %v\nwant: %v", name, got.Sort(), want.Clone().Sort())
		}
	}
}

// ---- paper queries end to end ---------------------------------------------

func TestSSSP(t *testing.T) {
	want := relOf("want", rasql.NewSchema(rasql.Col("Dst", rasql.KindInt), rasql.Col("Cost", rasql.KindFloat)),
		rasql.Row{rasql.Int(1), rasql.Float(0)},
		rasql.Row{rasql.Int(2), rasql.Float(1)},
		rasql.Row{rasql.Int(3), rasql.Float(3)},
		rasql.Row{rasql.Int(4), rasql.Float(4)},
		rasql.Row{rasql.Int(5), rasql.Float(11)},
	)
	runAll(t, []*rasql.Relation{weightedEdges()}, queries.SSSP, want)
}

func TestTC(t *testing.T) {
	edges := plainEdges([2]int64{1, 2}, [2]int64{2, 3}, [2]int64{3, 4})
	want := relOf("want", edges.Schema,
		iRow(1, 2), iRow(1, 3), iRow(1, 4), iRow(2, 3), iRow(2, 4), iRow(3, 4))
	runAll(t, []*rasql.Relation{edges}, queries.TC, want)
}

func TestTCOnCycleTerminates(t *testing.T) {
	edges := plainEdges([2]int64{1, 2}, [2]int64{2, 3}, [2]int64{3, 1})
	var want []rasql.Row
	for s := int64(1); s <= 3; s++ {
		for d := int64(1); d <= 3; d++ {
			want = append(want, iRow(s, d))
		}
	}
	runAll(t, []*rasql.Relation{edges}, queries.TC, relOf("want", edges.Schema, want...))
}

func TestCC(t *testing.T) {
	want := relOf("want", rasql.NewSchema(rasql.Col("count", rasql.KindInt)), iRow(2))
	runAll(t, []*rasql.Relation{ccEdges()}, queries.CC, want)
}

func TestCCLabels(t *testing.T) {
	schema := rasql.NewSchema(rasql.Col("Src", rasql.KindInt), rasql.Col("CmpId", rasql.KindInt))
	want := relOf("want", schema,
		iRow(1, 1), iRow(2, 1), iRow(3, 1), iRow(4, 4), iRow(5, 4))
	runAll(t, []*rasql.Relation{ccEdges()}, queries.CCLabels, want)
}

func TestReach(t *testing.T) {
	edges := plainEdges([2]int64{1, 2}, [2]int64{2, 3}, [2]int64{4, 5})
	want := relOf("want", rasql.NewSchema(rasql.Col("Dst", rasql.KindInt)),
		iRow(1), iRow(2), iRow(3))
	runAll(t, []*rasql.Relation{edges}, queries.Reach, want)
}

func TestCountPaths(t *testing.T) {
	edges := plainEdges([2]int64{1, 2}, [2]int64{1, 3}, [2]int64{2, 4}, [2]int64{3, 4}, [2]int64{4, 5})
	want := relOf("want", rasql.NewSchema(rasql.Col("Dst", rasql.KindInt), rasql.Col("Cnt", rasql.KindInt)),
		iRow(1, 1), iRow(2, 1), iRow(3, 1), iRow(4, 2), iRow(5, 2))
	runAll(t, []*rasql.Relation{edges}, queries.CountPaths, want)
}

func TestManagement(t *testing.T) {
	report := relOf("report",
		rasql.NewSchema(rasql.Col("Emp", rasql.KindInt), rasql.Col("Mgr", rasql.KindInt)),
		iRow(2, 1), iRow(3, 1), iRow(4, 2)) // 2,3 report to 1; 4 reports to 2
	want := relOf("want", rasql.NewSchema(rasql.Col("Mgr", rasql.KindInt), rasql.Col("Cnt", rasql.KindInt)),
		iRow(1, 3), iRow(2, 2), iRow(3, 1), iRow(4, 1))
	runAll(t, []*rasql.Relation{report}, queries.Management, want)
}

func TestMLM(t *testing.T) {
	sales := relOf("sales",
		rasql.NewSchema(rasql.Col("M", rasql.KindInt), rasql.Col("P", rasql.KindFloat)),
		rasql.Row{rasql.Int(1), rasql.Float(100)},
		rasql.Row{rasql.Int(2), rasql.Float(200)},
		rasql.Row{rasql.Int(3), rasql.Float(300)},
	)
	sponsor := relOf("sponsor",
		rasql.NewSchema(rasql.Col("M1", rasql.KindInt), rasql.Col("M2", rasql.KindInt)),
		iRow(1, 2), iRow(2, 3))
	// bonus(3)=30, bonus(2)=20+15=35, bonus(1)=10+17.5=27.5
	want := relOf("want", rasql.NewSchema(rasql.Col("M", rasql.KindInt), rasql.Col("B", rasql.KindFloat)),
		rasql.Row{rasql.Int(1), rasql.Float(27.5)},
		rasql.Row{rasql.Int(2), rasql.Float(35)},
		rasql.Row{rasql.Int(3), rasql.Float(30)},
	)
	runAll(t, []*rasql.Relation{sales, sponsor}, queries.MLM, want)
}

func bomTables() []*rasql.Relation {
	basic := relOf("basic",
		rasql.NewSchema(rasql.Col("Part", rasql.KindInt), rasql.Col("Days", rasql.KindInt)),
		iRow(3, 5), iRow(4, 2))
	assbl := relOf("assbl",
		rasql.NewSchema(rasql.Col("Part", rasql.KindInt), rasql.Col("Spart", rasql.KindInt)),
		iRow(1, 2), iRow(1, 3), iRow(2, 4), iRow(2, 3))
	return []*rasql.Relation{basic, assbl}
}

func TestDeliveryEndoMax(t *testing.T) {
	want := relOf("want", rasql.NewSchema(rasql.Col("Part", rasql.KindInt), rasql.Col("Days", rasql.KindInt)),
		iRow(3, 5), iRow(4, 2), iRow(2, 5), iRow(1, 5))
	runAll(t, bomTables(), queries.Delivery, want)
}

func TestDeliveryStratifiedEquivalence(t *testing.T) {
	// PreM: the stratified Q1 and the endo-max Q2 must agree.
	eng := rasql.New(rasql.Config{})
	for _, tab := range bomTables() {
		eng.MustRegister(tab)
	}
	q1, err := eng.Query(queries.DeliveryStratified)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := eng.Query(queries.Delivery)
	if err != nil {
		t.Fatal(err)
	}
	if !q1.EqualAsSet(q2) {
		t.Errorf("stratified and endo-max disagree:\nQ1 %v\nQ2 %v", q1.Sort(), q2.Sort())
	}
}

func TestAPSP(t *testing.T) {
	schema := rasql.NewSchema(rasql.Col("Src", rasql.KindInt), rasql.Col("Dst", rasql.KindInt), rasql.Col("Cost", rasql.KindFloat))
	e := rasql.NewRelation("edge", schema)
	for _, t3 := range [][3]float64{{1, 2, 1}, {2, 3, 2}, {1, 3, 5}, {3, 1, 1}} {
		e.Append(rasql.Row{rasql.Int(int64(t3[0])), rasql.Int(int64(t3[1])), rasql.Float(t3[2])})
	}
	want := rasql.NewRelation("want", schema)
	for _, t3 := range [][3]float64{
		{1, 2, 1}, {1, 3, 3}, {2, 3, 2}, {3, 1, 1}, {2, 1, 3}, {3, 2, 2},
		{1, 1, 4}, {2, 2, 4}, {3, 3, 4},
	} {
		want.Append(rasql.Row{rasql.Int(int64(t3[0])), rasql.Int(int64(t3[1])), rasql.Float(t3[2])})
	}
	runAll(t, []*rasql.Relation{e}, queries.APSP, want)
}

func TestSG(t *testing.T) {
	rel := relOf("rel",
		rasql.NewSchema(rasql.Col("Parent", rasql.KindInt), rasql.Col("Child", rasql.KindInt)),
		iRow(1, 2), iRow(1, 3), iRow(2, 4), iRow(3, 5)) // a=1,b=2,c=3,d=4,e=5
	want := relOf("want", rasql.NewSchema(rasql.Col("X", rasql.KindInt), rasql.Col("Y", rasql.KindInt)),
		iRow(2, 3), iRow(3, 2), iRow(4, 5), iRow(5, 4))
	runAll(t, []*rasql.Relation{rel}, queries.SG, want)
}

func TestIntervalCoalesce(t *testing.T) {
	inter := relOf("inter",
		rasql.NewSchema(rasql.Col("S", rasql.KindInt), rasql.Col("E", rasql.KindInt)),
		iRow(1, 3), iRow(2, 4), iRow(6, 7))
	want := relOf("want", rasql.NewSchema(rasql.Col("S", rasql.KindInt), rasql.Col("E", rasql.KindInt)),
		iRow(1, 4), iRow(6, 7))
	runAll(t, []*rasql.Relation{inter}, queries.Coalesce, want)
}

func partyTables() []*rasql.Relation {
	organizer := relOf("organizer",
		rasql.NewSchema(rasql.Col("OrgName", rasql.KindString)),
		rasql.Row{rasql.Str("o1")}, rasql.Row{rasql.Str("o2")}, rasql.Row{rasql.Str("o3")})
	f := func(p, fr string) rasql.Row { return rasql.Row{rasql.Str(p), rasql.Str(fr)} }
	friend := relOf("friend",
		rasql.NewSchema(rasql.Col("Pname", rasql.KindString), rasql.Col("Fname", rasql.KindString)),
		f("o1", "x"), f("o2", "x"), f("o3", "x"), // x has three attending friends
		f("x", "y"), f("o1", "y"), f("o2", "y"), // y reaches three once x attends
		f("o1", "z"), f("x", "z"), // z has only two
	)
	return []*rasql.Relation{organizer, friend}
}

func TestPartyAttendance(t *testing.T) {
	want := relOf("want", rasql.NewSchema(rasql.Col("Person", rasql.KindString)),
		rasql.Row{rasql.Str("o1")}, rasql.Row{rasql.Str("o2")}, rasql.Row{rasql.Str("o3")},
		rasql.Row{rasql.Str("x")}, rasql.Row{rasql.Str("y")})
	runAll(t, partyTables(), queries.Party, want)
}

func TestCompanyControl(t *testing.T) {
	s := func(by, of string, p int64) rasql.Row {
		return rasql.Row{rasql.Str(by), rasql.Str(of), rasql.Int(p)}
	}
	shares := relOf("shares",
		rasql.NewSchema(rasql.Col("By", rasql.KindString), rasql.Col("Of", rasql.KindString), rasql.Col("Percent", rasql.KindInt)),
		s("a", "b", 60), s("a", "c", 30), s("b", "c", 25))
	want := relOf("want",
		rasql.NewSchema(rasql.Col("ByCom", rasql.KindString), rasql.Col("OfCom", rasql.KindString), rasql.Col("Tot", rasql.KindInt)),
		s("a", "b", 60), s("a", "c", 55), s("b", "c", 25))
	runAll(t, []*rasql.Relation{shares}, queries.CompanyControl, want)
}

// ---- termination guards (Figure 1 behaviour) -------------------------------

func TestStratifiedSSSPDoesNotTerminateOnCycles(t *testing.T) {
	cfg := rasql.Config{ForceLocal: true}
	cfg.Fixpoint.MaxIterations = 50
	cfg.Fixpoint.MaxRows = 100000
	eng := rasql.New(cfg)
	eng.MustRegister(weightedEdges()) // contains cycles
	_, err := eng.Query(queries.SSSPStratified)
	var nt *fixpoint.ErrNonTermination
	if !errors.As(err, &nt) {
		t.Fatalf("want non-termination error, got %v", err)
	}
}

func TestRaSQLSSSPTerminatesOnSameCycles(t *testing.T) {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(weightedEdges())
	if _, err := eng.Query(queries.SSSP); err != nil {
		t.Fatalf("endo-min SSSP should terminate: %v", err)
	}
}

func TestStratifiedCCAgreesOnAcyclicPropagation(t *testing.T) {
	// CC's stratified version terminates (labels are finite) and must
	// agree with the endo-min version.
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(ccEdges())
	a, err := eng.Query(queries.CC)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Query(queries.CCStratified)
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualAsSet(b) {
		t.Errorf("CC vs stratified CC: %v vs %v", a, b)
	}
}

// ---- plumbing ---------------------------------------------------------------

func TestExplain(t *testing.T) {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(weightedEdges())
	out, err := eng.Explain(queries.SSSP)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fixpoint[path]", "co-partition", "min()"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	out, err = eng.Explain(queries.TC)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "decomposed=true") {
		t.Errorf("TC should plan decomposed:\n%s", out)
	}
}

func TestMetricsAccumulate(t *testing.T) {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(weightedEdges())
	if _, err := eng.Query(queries.SSSP); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if m.StagesRun == 0 || m.Iterations == 0 {
		t.Errorf("metrics should show activity: %v", m)
	}
	eng.ResetMetrics()
	if eng.Metrics().StagesRun != 0 {
		t.Error("ResetMetrics should zero counters")
	}
}

func TestViewOnlyScript(t *testing.T) {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(weightedEdges())
	rel, err := eng.Exec(`CREATE VIEW v(X) AS (SELECT Src FROM edge)`)
	if err != nil {
		t.Fatal(err)
	}
	if rel != nil {
		t.Error("view-only script should return nil relation")
	}
	got, err := eng.Query(`SELECT distinct X FROM v WHERE X = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("view should be usable afterwards: %v", got)
	}
}

func TestQueryErrors(t *testing.T) {
	eng := rasql.New(rasql.Config{})
	if _, err := eng.Query(`SELECT`); err == nil {
		t.Error("syntax error should surface")
	}
	if _, err := eng.Query(`SELECT X FROM missing`); err == nil {
		t.Error("analysis error should surface")
	}
	if _, err := eng.Query(`CREATE VIEW v(X) AS (SELECT 1)`); err == nil {
		t.Error("Query on view-only script should error")
	}
}

// Stages run on real goroutines by default; results must match the
// sequential debugging mode (validated under -race in CI).
func TestParallelStagesMatchesSequential(t *testing.T) {
	g := weightedEdges()
	seq := rasql.New(rasql.Config{Cluster: rasql.ClusterConfig{SequentialStages: true}})
	seq.MustRegister(g.Clone())
	want, err := seq.Query(queries.SSSP)
	if err != nil {
		t.Fatal(err)
	}
	par := rasql.New(rasql.Config{Cluster: rasql.ClusterConfig{Workers: 4, Partitions: 8}})
	par.MustRegister(g.Clone())
	got, err := par.Query(queries.SSSP)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Error("parallel stages changed results")
	}
}

// Engine.Vet analyzes without executing or mutating the session: vetting a
// script that defines views must not poison a later Exec of the same
// script, and verdicts/severities surface through the public aliases.
func TestEngineVet(t *testing.T) {
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(weightedEdges())

	rep, err := eng.Vet(queries.SSSP)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict() != rasql.VetCertified {
		t.Errorf("SSSP verdict = %v, want certified\n%s", rep.Verdict(), rep)
	}
	if rep.HasErrors() {
		t.Errorf("SSSP vet reported errors\n%s", rep)
	}

	refuted := `
WITH recursive path (Dst, min() AS Cost) AS
    (SELECT 1, 0) UNION
    (SELECT edge.Dst, edge.Cost - path.Cost
     FROM path, edge WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path`
	rep, err = eng.Vet(refuted)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict() != rasql.VetRefuted || !rep.HasErrors() {
		t.Errorf("refuted query: verdict = %v, errors = %v\n%s", rep.Verdict(), rep.HasErrors(), rep)
	}

	// Coalesce contains a CREATE VIEW; vetting twice and then executing
	// must all succeed (the view registers into a catalog clone).
	coalesceEng := rasql.New(rasql.Config{})
	coalesceEng.MustRegister(relOf("inter",
		rasql.NewSchema(rasql.Col("S", rasql.KindInt), rasql.Col("E", rasql.KindInt)),
		iRow(1, 3), iRow(2, 4), iRow(6, 7)))
	for i := 0; i < 2; i++ {
		rep, err := coalesceEng.Vet(queries.Coalesce)
		if err != nil {
			t.Fatalf("vet %d: %v", i, err)
		}
		if rep.Verdict() != rasql.VetCertified {
			t.Errorf("Coalesce verdict = %v, want certified\n%s", rep.Verdict(), rep)
		}
	}
	if _, err := coalesceEng.Query(queries.Coalesce); err != nil {
		t.Fatalf("exec after vet: %v", err)
	}
}
