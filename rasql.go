// Package rasql is a from-scratch Go implementation of RaSQL —
// Recursive-aggregate-SQL (Gu et al., SIGMOD 2019): SQL:99 recursive common
// table expressions extended with min/max/sum/count aggregates in the
// recursive view head, compiled into a fixpoint operator and evaluated with
// distributed semi-naive iteration on a simulated Spark-like cluster.
//
// Quick start:
//
//	eng := rasql.New(rasql.Config{})
//	eng.MustRegister(edges) // a *relation.Relation named "edge"
//	res, err := eng.Exec(`
//	    WITH recursive path (Dst, min() AS Cost) AS
//	        (SELECT 1, 0) UNION
//	        (SELECT edge.Dst, path.Cost + edge.Cost
//	         FROM path, edge WHERE path.Dst = edge.Src)
//	    SELECT Dst, Cost FROM path`)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package rasql

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/fixpoint"
	"github.com/rasql/rasql-go/internal/obs"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/sql/optimize"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/internal/sql/vet"
	"github.com/rasql/rasql-go/internal/trace"
)

// Config parameterizes an Engine. The zero value is a working default:
// distributed evaluation on a GOMAXPROCS-worker simulated cluster with all
// of the paper's optimizations enabled.
type Config struct {
	// Cluster configures the simulated cluster. Zero values get defaults
	// (workers = GOMAXPROCS, partition-aware scheduling).
	Cluster cluster.Config
	// Fixpoint configures the fixpoint operator. Zero values get
	// defaults; StageCombination defaults to on unless DisableDefaults.
	Fixpoint fixpoint.DistOptions
	// ForceLocal always evaluates recursion with the single-threaded
	// reference engine.
	ForceLocal bool
	// Naive replaces semi-naive evaluation with naive re-derivation
	// (implies ForceLocal; kept for the paper's Algorithm 1/2 baseline).
	Naive bool
	// RawOptimizations keeps every optimization flag exactly as given
	// instead of applying the RaSQL defaults (stage combination on,
	// broadcast compression on).
	RawOptimizations bool
}

// Engine is a RaSQL session: a catalog of base tables plus a configured
// execution environment. An Engine is safe for concurrent use: each query
// runs under its own per-query cluster context (tracer, counters, chaos
// injector) and analyzes against a snapshot-isolated clone of the session
// catalog, so any number of goroutines may call Exec/Query/Run on one
// Engine at the same time. Catalog registrations commit under the catalog's
// own lock.
type Engine struct {
	cfg     Config
	cat     *catalog.Catalog
	cluster *cluster.Cluster
	// obs is the engine's metrics recorder: every finished query folds its
	// QueryStats into the registry histograms, the recent-query ring and
	// (when attached) the structured query log.
	obs *obs.Recorder

	// mu guards the engine-attached tracer; queries snapshot it when they
	// start, so SetTracer mid-query affects only later queries.
	mu sync.RWMutex
	//rasql:guardedby=mu
	tracer *trace.Tracer
}

// New creates an engine. Unless cfg.RawOptimizations is set, the paper's
// default optimizations are switched on: stage combination and compressed
// broadcast.
func New(cfg Config) *Engine {
	if !cfg.RawOptimizations {
		cfg.Fixpoint.StageCombination = true
		cfg.Cluster.CompressBroadcast = true
	}
	if cfg.Naive {
		cfg.ForceLocal = true
		cfg.Fixpoint.Naive = true
	}
	e := &Engine{cfg: cfg, cat: catalog.New(), cluster: cluster.New(cfg.Cluster), obs: obs.NewRecorder()}
	e.cluster.SetObserver(e.obs)
	return e
}

// Register adds a base table to the catalog.
func (e *Engine) Register(rel *relation.Relation) error { return e.cat.Register(rel) }

// MustRegister is Register, panicking on error. Intended for setup code.
func (e *Engine) MustRegister(rel *relation.Relation) {
	if err := e.Register(rel); err != nil {
		panic(err)
	}
}

// Catalog exposes the engine's catalog (for tooling such as the REPL).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Metrics returns a snapshot of the simulated cluster's counters.
func (e *Engine) Metrics() cluster.Snapshot { return e.cluster.Metrics.Snapshot() }

// Observability returns the engine's metrics recorder: per-query stats
// histograms, the recent-query ring and the Prometheus registry. The recorder
// lives as long as the engine and is safe for concurrent use.
func (e *Engine) Observability() *obs.Recorder { return e.obs }

// ResetMetrics zeroes the cluster counters.
func (e *Engine) ResetMetrics() { e.cluster.Metrics.Reset() }

// SetTracer attaches a tracer to the engine; subsequent queries record
// driver-phase, stage and task spans plus per-iteration fixpoint telemetry
// into it. Passing nil detaches tracing (the default, near-zero-cost
// state). Queries already in flight keep the tracer they started with.
func (e *Engine) SetTracer(t *trace.Tracer) {
	e.mu.Lock()
	e.tracer = t
	e.mu.Unlock()
}

// Tracer returns the currently attached tracer (nil when tracing is off).
func (e *Engine) Tracer() *trace.Tracer {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tracer
}

// ExecOptions overrides per-query execution settings. The zero value (and a
// nil *ExecOptions) means "engine defaults" for every field — used by server
// sessions, which carry their own eval mode and limits per session.
type ExecOptions struct {
	// Mode overrides the fixpoint evaluation mode for this query using the
	// -mode flag syntax: "bsp", "ssp", "ssp:k" or "async". Empty inherits
	// the engine configuration.
	Mode string
	// MaxIterations overrides the fixpoint iteration bound (0 inherits).
	MaxIterations int
	// Tracer overrides the engine-attached tracer for this query (nil
	// inherits; tracing stays off if neither is set).
	Tracer *trace.Tracer
	// Stats, when non-nil, receives the finished query's QueryStats — the
	// same record the engine's recorder observes — so servers can attach
	// per-query execution stats to their responses without racing the
	// recorder's ring.
	Stats *obs.QueryStats
}

func (o *ExecOptions) tracer(e *Engine) *trace.Tracer {
	if o != nil && o.Tracer != nil {
		return o.Tracer
	}
	return e.Tracer()
}

// Exec runs a script: CREATE VIEW statements register views; each SELECT or
// WITH statement executes. The result of the last query statement is
// returned (nil if the script only defines views).
func (e *Engine) Exec(src string) (*relation.Relation, error) {
	return e.ExecContext(context.Background(), src)
}

// ExecContext is Exec with a cancellation context: when ctx is cancelled or
// its deadline expires, a running fixpoint stops at the next iteration
// boundary and the query returns an error satisfying
// errors.Is(err, ctx.Err()).
func (e *Engine) ExecContext(ctx context.Context, src string) (*relation.Relation, error) {
	return e.ExecOpt(ctx, src, nil)
}

// ExecOpt is ExecContext with per-query option overrides (nil opts = engine
// defaults).
func (e *Engine) ExecOpt(ctx context.Context, src string, opts *ExecOptions) (*relation.Relation, error) {
	qc := e.cluster.NewQuery(opts.tracer(e))
	qc.SetContext(ctx)
	defer qc.Finish()
	rel, err := e.exec(qc, src, opts)
	qc.SetErr(err)
	if opts != nil && opts.Stats != nil {
		qc.Finish()
		*opts.Stats = qc.Stats(qc.Metrics.Snapshot())
	}
	return rel, err
}

// QueryContext is Query with a cancellation context (see ExecContext).
func (e *Engine) QueryContext(ctx context.Context, src string) (*relation.Relation, error) {
	rel, err := e.ExecContext(ctx, src)
	if err != nil {
		return nil, err
	}
	if rel == nil {
		return nil, fmt.Errorf("rasql: script contained no query statement")
	}
	return rel, nil
}

// exec runs a script under one per-query cluster context. Analysis reads a
// snapshot-isolated clone of the session catalog; CREATE VIEW registers
// into the snapshot (visible to later statements of the same script) and
// commits to the session with replace semantics, so re-running a script —
// sequentially or from concurrent goroutines — stays idempotent.
func (e *Engine) exec(qc *cluster.QueryContext, src string, opts *ExecOptions) (*relation.Relation, error) {
	tr := qc.Tracer
	sp := tr.Begin("parse", trace.TidDriver)
	stmts, err := parser.Parse(src)
	sp.End()
	if err != nil {
		return nil, err
	}
	cat := e.cat.Clone()
	var last *relation.Relation
	for _, s := range stmts {
		if cv, ok := s.(*ast.CreateView); ok {
			v := &catalog.ViewDef{Name: cv.Name, Columns: cv.Columns, Query: cv.Query}
			if err := cat.PutView(v); err != nil {
				return nil, err
			}
			if err := e.cat.PutView(v); err != nil {
				return nil, err
			}
			continue
		}
		sp = tr.Begin("analyze", trace.TidDriver)
		prog, err := analyze.Statement(s, cat)
		if err != nil {
			sp.End()
			return nil, err
		}
		opt := optimize.Program(prog)
		sp.End()
		last, err = e.run(qc, opt, opts)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// Query runs a single query statement and returns its result.
func (e *Engine) Query(src string) (*relation.Relation, error) {
	rel, err := e.Exec(src)
	if err != nil {
		return nil, err
	}
	if rel == nil {
		return nil, fmt.Errorf("rasql: script contained no query statement")
	}
	return rel, nil
}

// Vet statically analyzes a script without executing it: every query
// statement is parsed, analyzed and optimized exactly as Exec would, then
// run through the vet passes (static PreM certification, termination and
// plan-hygiene lints). CREATE VIEW statements are registered into a
// throwaway copy of the catalog, so vetting never mutates the session. The
// merged report covers every query statement in the script.
func (e *Engine) Vet(src string) (*vet.Report, error) {
	sp := e.Tracer().Begin("vet", trace.TidDriver)
	defer sp.End()
	stmts, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	cat := e.cat.Clone()
	rep := &vet.Report{}
	for _, s := range stmts {
		if cv, ok := s.(*ast.CreateView); ok {
			if err := cat.RegisterView(&catalog.ViewDef{
				Name: cv.Name, Columns: cv.Columns, Query: cv.Query,
			}); err != nil {
				return nil, err
			}
			continue
		}
		prog, err := analyze.Statement(s, cat)
		if err != nil {
			return nil, err
		}
		rep.Merge(vet.Analyze(optimize.Program(prog)))
	}
	return rep, nil
}

// Run executes an analyzed program: the fixpoint for its recursive clique
// (if any), then the final query over the results.
func (e *Engine) Run(prog *analyze.Program) (*relation.Relation, error) {
	qc := e.cluster.NewQuery(e.Tracer())
	defer qc.Finish()
	rel, err := e.run(qc, prog, nil)
	qc.SetErr(err)
	return rel, err
}

func (e *Engine) run(qc *cluster.QueryContext, prog *analyze.Program, opts *ExecOptions) (*relation.Relation, error) {
	ctx := exec.NewContext()
	if prog.Clique != nil && len(prog.Clique.Views) > 0 {
		sp := qc.Tracer.Begin("fixpoint", trace.TidDriver)
		res, err := e.runClique(qc, prog.Clique, ctx, opts)
		sp.End()
		if err != nil {
			return nil, err
		}
		res.Bind(ctx)
	}
	sp := qc.Tracer.Begin("final", trace.TidDriver)
	rel, err := exec.Query(prog.Final, ctx)
	sp.End()
	return rel, err
}

// RunClique evaluates just the recursive clique of a program, returning the
// per-view fixpoint relations (used by the PreM checker and benchmarks).
func (e *Engine) RunClique(prog *analyze.Program) (*fixpoint.Result, error) {
	if prog.Clique == nil || len(prog.Clique.Views) == 0 {
		return nil, fmt.Errorf("rasql: statement has no recursive clique")
	}
	qc := e.cluster.NewQuery(e.Tracer())
	defer qc.Finish()
	res, err := e.runClique(qc, prog.Clique, exec.NewContext(), nil)
	qc.SetErr(err)
	return res, err
}

func (e *Engine) runClique(qc *cluster.QueryContext, clique *analyze.Clique, ctx *exec.Context, opts *ExecOptions) (*fixpoint.Result, error) {
	opt := e.cfg.Fixpoint
	if qc.Tracer != nil {
		opt.Tracer = qc.Tracer
	}
	// The caller's context rides the query context down to the fixpoint
	// drivers, which poll it at iteration boundaries.
	opt.Context = qc.Context()
	if opts != nil {
		if opts.Mode != "" {
			m, k, err := fixpoint.ParseEvalMode(opts.Mode)
			if err != nil {
				return nil, err
			}
			opt.Mode, opt.Staleness = m, k
		}
		if opts.MaxIterations > 0 {
			opt.MaxIterations = opts.MaxIterations
		}
	}
	if e.cfg.ForceLocal {
		qc.SetMode("local", "")
		return fixpoint.Local(clique, ctx, opt.Options)
	}
	res, err := fixpoint.Distributed(clique, ctx, qc, opt)
	if err == nil {
		return res, nil
	}
	var nd *fixpoint.ErrNotDistributable
	if errors.As(err, &nd) {
		// Mutual recursion and non-linear rules run on the exact local
		// engine — the distributed engine covers the linear fragment the
		// paper benchmarks.
		qc.SetMode("local", nd.Reason)
		return fixpoint.Local(clique, ctx, opt.Options)
	}
	return nil, err
}
