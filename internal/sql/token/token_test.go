package token

import "testing"

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	out := make([]Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	got := kinds(t, `SELECT a.b, 'str', 1.5 FROM t WHERE x <> 2`)
	want := []Kind{Keyword, Ident, Dot, Ident, Comma, String, Comma, Number,
		Keyword, Ident, Keyword, Ident, Ne, Number, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`( ) ; . * + - / % = <> != < <= > >=`)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{LParen, RParen, Semi, Dot, Star, Plus, Minus, Slash, Percent,
		Eq, Ne, Ne, Lt, Le, Gt, Ge, EOF}
	for i, w := range want {
		if toks[i].Kind != w {
			t.Errorf("token %d (%s) = %v, want %v", i, toks[i].Text, toks[i].Kind, w)
		}
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, _ := Lex(`select SeLeCt SELECT`)
	for i := 0; i < 3; i++ {
		if toks[i].Kind != Keyword || toks[i].Text != "SELECT" {
			t.Errorf("token %d = %v %q", i, toks[i].Kind, toks[i].Text)
		}
	}
	if !IsKeyword("union") || IsKeyword("by") || IsKeyword("foo") {
		t.Error("IsKeyword wrong (BY must be contextual, not reserved)")
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := Lex("a\n  b")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("second token at %d:%d", toks[1].Line, toks[1].Col)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "it's" {
		t.Errorf("string = %q", toks[0].Text)
	}
}

func TestLexComments(t *testing.T) {
	got := kinds(t, "1 -- trailing\n/* block\nspanning */ 2")
	want := []Kind{Number, Number, EOF}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`'unterminated`, `1.2.3`, `~`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestTokenString(t *testing.T) {
	toks, _ := Lex(`abc 'x'`)
	if toks[0].String() != `"abc"` || toks[1].String() != `'x'` {
		t.Errorf("token strings = %s, %s", toks[0], toks[1])
	}
	eof := Token{Kind: EOF}
	if eof.String() != "end of input" {
		t.Errorf("EOF string = %q", eof.String())
	}
}
