// Package token defines lexical tokens for the RaSQL dialect and a lexer
// producing them.
package token

import (
	"fmt"
	"strings"
)

// Kind classifies a token.
type Kind uint8

// The token kinds.
const (
	EOF Kind = iota
	Ident
	Keyword
	Number
	String
	// Punctuation and operators.
	LParen
	RParen
	Comma
	Semi
	Dot
	Star
	Plus
	Minus
	Slash
	Percent
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
)

// Token is one lexical token with its source position (1-based line/col).
type Token struct {
	Kind Kind
	// Text is the raw text; for keywords it is upper-cased.
	Text string
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of input"
	case String:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// Keywords recognized by the lexer; all other identifiers lex as Ident.
var keywords = map[string]bool{
	// Note: BY is deliberately not reserved — the paper's Company Control
	// query uses it as a column name; the parser matches it contextually
	// after GROUP and ORDER.
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "UNION": true, "ALL": true,
	"WITH": true, "RECURSIVE": true, "AS": true, "CREATE": true, "VIEW": true,
	"AND": true, "OR": true, "NOT": true, "DISTINCT": true, "DESC": true,
	"ASC": true, "NULL": true, "TRUE": true, "FALSE": true,
	"JOIN": true, "INNER": true, "ON": true, "BETWEEN": true, "IN": true,
}

// IsKeyword reports whether the upper-cased word is a reserved keyword.
func IsKeyword(w string) bool { return keywords[strings.ToUpper(w)] }

// Lexer tokenizes an input string.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1, col: 1} }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Line: l.line, Col: l.col}, nil
	}
	start := Token{Line: l.line, Col: l.col}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		w := l.takeWhile(isIdentPart)
		if IsKeyword(w) {
			start.Kind, start.Text = Keyword, strings.ToUpper(w)
		} else {
			start.Kind, start.Text = Ident, w
		}
		return start, nil
	case c >= '0' && c <= '9':
		start.Kind = Number
		start.Text = l.takeWhile(func(b byte) bool {
			return b >= '0' && b <= '9' || b == '.'
		})
		if strings.Count(start.Text, ".") > 1 {
			return start, fmt.Errorf("line %d:%d: malformed number %q", start.Line, start.Col, start.Text)
		}
		return start, nil
	case c == '\'':
		l.advance()
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return start, fmt.Errorf("line %d:%d: unterminated string", start.Line, start.Col)
			}
			ch := l.src[l.pos]
			l.advance()
			if ch == '\'' {
				if l.pos < len(l.src) && l.src[l.pos] == '\'' { // escaped quote
					b.WriteByte('\'')
					l.advance()
					continue
				}
				break
			}
			b.WriteByte(ch)
		}
		start.Kind, start.Text = String, b.String()
		return start, nil
	}
	// Operators and punctuation.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "!=":
		l.advance()
		l.advance()
		start.Kind, start.Text = Ne, "<>"
		return start, nil
	case "<=":
		l.advance()
		l.advance()
		start.Kind, start.Text = Le, "<="
		return start, nil
	case ">=":
		l.advance()
		l.advance()
		start.Kind, start.Text = Ge, ">="
		return start, nil
	}
	l.advance()
	switch c {
	case '(':
		start.Kind, start.Text = LParen, "("
	case ')':
		start.Kind, start.Text = RParen, ")"
	case ',':
		start.Kind, start.Text = Comma, ","
	case ';':
		start.Kind, start.Text = Semi, ";"
	case '.':
		start.Kind, start.Text = Dot, "."
	case '*':
		start.Kind, start.Text = Star, "*"
	case '+':
		start.Kind, start.Text = Plus, "+"
	case '-':
		start.Kind, start.Text = Minus, "-"
	case '/':
		start.Kind, start.Text = Slash, "/"
	case '%':
		start.Kind, start.Text = Percent, "%"
	case '=':
		start.Kind, start.Text = Eq, "="
	case '<':
		start.Kind, start.Text = Lt, "<"
	case '>':
		start.Kind, start.Text = Gt, ">"
	default:
		return start, fmt.Errorf("line %d:%d: unexpected character %q", start.Line, start.Col, string(c))
	}
	return start, nil
}

// Lex tokenizes the whole input.
func Lex(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.advance()
			}
			l.advance()
			l.advance()
		default:
			return
		}
	}
}

func (l *Lexer) advance() {
	if l.pos < len(l.src) {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) takeWhile(pred func(byte) bool) string {
	start := l.pos
	for l.pos < len(l.src) && pred(l.src[l.pos]) {
		l.advance()
	}
	return l.src[start:l.pos]
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
