// Package catalog tracks the base tables and named (non-recursive) views
// visible to query analysis, keyed case-insensitively.
//
// A Catalog is safe for concurrent use: an RWMutex guards the two maps
// (machine-checked by the guardedby analyzer), and concurrent queries take
// snapshot-isolated reads via Clone — each query analyzes against its own
// frozen copy while CREATE VIEW commits mutate the shared session catalog
// under the write lock.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/ast"
)

// ViewDef is a CREATE VIEW definition awaiting analysis/materialization.
type ViewDef struct {
	Name    string
	Columns []string
	Query   *ast.Select
}

// Catalog maps names to base tables and view definitions.
type Catalog struct {
	// mu guards the name maps; reads take the read lock, registrations the
	// write lock. Lock ordering: mu nests inside nothing — no catalog
	// method calls out while holding it.
	mu sync.RWMutex
	//rasql:guardedby=mu
	tables map[string]*relation.Relation
	//rasql:guardedby=mu
	views map[string]*ViewDef
	// version counts DDL commits (table or view registrations, replacements
	// and drops). Plan caches key compiled plans on it: any mutation bumps
	// the version, so a plan compiled against an older catalog can never be
	// served after DDL changes what its names resolve to.
	//rasql:guardedby=mu
	version uint64
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: map[string]*relation.Relation{},
		views:  map[string]*ViewDef{},
	}
}

func key(name string) string { return strings.ToLower(name) }

// Clone returns an independent catalog holding the same tables and view
// definitions. Registrations on the clone do not affect the original —
// used by tooling (vet, explain) and by concurrent query execution, which
// analyzes against a snapshot-isolated copy of the session catalog.
func (c *Catalog) Clone() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tables := make(map[string]*relation.Relation, len(c.tables))
	for k, t := range c.tables {
		tables[k] = t
	}
	views := make(map[string]*ViewDef, len(c.views))
	for k, v := range c.views {
		views[k] = v
	}
	return &Catalog{tables: tables, views: views, version: c.version}
}

// Version returns the catalog's DDL commit counter. The version and the
// name maps move together under one lock, so a Clone's Version identifies
// exactly the snapshot its names came from.
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Register adds or replaces a base table.
func (c *Catalog) Register(rel *relation.Relation) error {
	if rel.Name == "" {
		return fmt.Errorf("catalog: relation must be named")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.views[key(rel.Name)]; ok {
		return fmt.Errorf("catalog: %q already defined as a view", rel.Name)
	}
	c.tables[key(rel.Name)] = rel
	c.version++
	return nil
}

// RegisterView adds a view definition, erroring if the name is taken.
func (c *Catalog) RegisterView(v *ViewDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(v.Name)]; ok {
		return fmt.Errorf("catalog: %q already defined as a table", v.Name)
	}
	if _, ok := c.views[key(v.Name)]; ok {
		return fmt.Errorf("catalog: view %q already defined", v.Name)
	}
	c.views[key(v.Name)] = v
	c.version++
	return nil
}

// PutView adds or replaces a view definition, erroring only if the name
// collides with a base table. Sessions committing CREATE VIEW use it so
// re-running a script — or running it concurrently from several goroutines —
// stays idempotent instead of failing on the duplicate.
func (c *Catalog) PutView(v *ViewDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(v.Name)]; ok {
		return fmt.Errorf("catalog: %q already defined as a table", v.Name)
	}
	c.views[key(v.Name)] = v
	c.version++
	return nil
}

// Table looks up a base table.
func (c *Catalog) Table(name string) (*relation.Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	return t, ok
}

// View looks up a view definition.
func (c *Catalog) View(name string) (*ViewDef, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[key(name)]
	return v, ok
}

// DropView removes a view (used by sessions re-running scripts).
func (c *Catalog) DropView(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.views, key(name))
	c.version++
}

// Names lists all registered table and view names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables)+len(c.views))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	for _, v := range c.views {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}
