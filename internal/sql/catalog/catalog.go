// Package catalog tracks the base tables and named (non-recursive) views
// visible to query analysis, keyed case-insensitively.
package catalog

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/ast"
)

// ViewDef is a CREATE VIEW definition awaiting analysis/materialization.
type ViewDef struct {
	Name    string
	Columns []string
	Query   *ast.Select
}

// Catalog maps names to base tables and view definitions.
type Catalog struct {
	tables map[string]*relation.Relation
	views  map[string]*ViewDef
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: map[string]*relation.Relation{},
		views:  map[string]*ViewDef{},
	}
}

func key(name string) string { return strings.ToLower(name) }

// Clone returns an independent catalog holding the same tables and view
// definitions. Registrations on the clone do not affect the original —
// used by tooling (vet, explain) that must analyze scripts without
// mutating the session catalog.
func (c *Catalog) Clone() *Catalog {
	out := New()
	for k, t := range c.tables {
		out.tables[k] = t
	}
	for k, v := range c.views {
		out.views[k] = v
	}
	return out
}

// Register adds or replaces a base table.
func (c *Catalog) Register(rel *relation.Relation) error {
	if rel.Name == "" {
		return fmt.Errorf("catalog: relation must be named")
	}
	if _, ok := c.views[key(rel.Name)]; ok {
		return fmt.Errorf("catalog: %q already defined as a view", rel.Name)
	}
	c.tables[key(rel.Name)] = rel
	return nil
}

// RegisterView adds a view definition.
func (c *Catalog) RegisterView(v *ViewDef) error {
	if _, ok := c.tables[key(v.Name)]; ok {
		return fmt.Errorf("catalog: %q already defined as a table", v.Name)
	}
	if _, ok := c.views[key(v.Name)]; ok {
		return fmt.Errorf("catalog: view %q already defined", v.Name)
	}
	c.views[key(v.Name)] = v
	return nil
}

// Table looks up a base table.
func (c *Catalog) Table(name string) (*relation.Relation, bool) {
	t, ok := c.tables[key(name)]
	return t, ok
}

// View looks up a view definition.
func (c *Catalog) View(name string) (*ViewDef, bool) {
	v, ok := c.views[key(name)]
	return v, ok
}

// DropView removes a view (used by sessions re-running scripts).
func (c *Catalog) DropView(name string) { delete(c.views, key(name)) }

// Names lists all registered table and view names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables)+len(c.views))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	for _, v := range c.views {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}
