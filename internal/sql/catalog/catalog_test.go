package catalog

import (
	"testing"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
)

func rel(name string) *relation.Relation {
	return relation.New(name, types.NewSchema(types.Col("X", types.KindInt)))
}

func TestRegisterAndLookup(t *testing.T) {
	c := New()
	if err := c.Register(rel("Edge")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("edge"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := c.Table("EDGE"); !ok {
		t.Error("lookup should be case-insensitive (upper)")
	}
	if _, ok := c.Table("nope"); ok {
		t.Error("missing table should not resolve")
	}
}

func TestRegisterUnnamedFails(t *testing.T) {
	c := New()
	if err := c.Register(rel("")); err == nil {
		t.Error("unnamed relation must be rejected")
	}
}

func TestViewTableNameConflicts(t *testing.T) {
	c := New()
	if err := c.Register(rel("t")); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterView(&ViewDef{Name: "T"}); err == nil {
		t.Error("view name colliding with table must be rejected")
	}
	if err := c.RegisterView(&ViewDef{Name: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterView(&ViewDef{Name: "V"}); err == nil {
		t.Error("duplicate view must be rejected")
	}
	if err := c.Register(rel("v")); err == nil {
		t.Error("table name colliding with view must be rejected")
	}
	if _, ok := c.View("v"); !ok {
		t.Error("view lookup failed")
	}
	c.DropView("V")
	if _, ok := c.View("v"); ok {
		t.Error("dropped view should not resolve")
	}
}

func TestNamesSorted(t *testing.T) {
	c := New()
	_ = c.Register(rel("zeta"))
	_ = c.Register(rel("alpha"))
	_ = c.RegisterView(&ViewDef{Name: "mid"})
	names := c.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Errorf("names = %v", names)
	}
}

func TestReRegisterTableReplaces(t *testing.T) {
	c := New()
	_ = c.Register(rel("t"))
	r2 := rel("t")
	r2.Append(types.Row{types.Int(1)})
	if err := c.Register(r2); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Table("t")
	if got.Len() != 1 {
		t.Error("re-registration should replace the table")
	}
}

// TestVersionBumpsOnDDL pins the DDL-version contract the serving layer's
// plan cache keys on: every mutating commit bumps the version exactly once,
// reads never do, and Clone carries the version of its snapshot.
func TestVersionBumpsOnDDL(t *testing.T) {
	c := New()
	v := c.Version()
	if v != 0 {
		t.Fatalf("fresh catalog version = %d, want 0", v)
	}
	step := func(what string, mutate func() error) {
		t.Helper()
		if err := mutate(); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if got := c.Version(); got != v+1 {
			t.Errorf("%s: version %d -> %d, want exactly +1", what, v, got)
		}
		v = c.Version()
	}
	step("register table", func() error { return c.Register(rel("edge")) })
	step("re-register table", func() error { return c.Register(rel("edge")) })
	step("register view", func() error { return c.RegisterView(&ViewDef{Name: "v1"}) })
	step("replace view", func() error { return c.PutView(&ViewDef{Name: "v1"}) })
	step("drop view", func() error { c.DropView("v1"); return nil })

	// Reads and lookups leave the version untouched.
	c.Table("edge")
	c.View("v1")
	c.Names()
	if got := c.Version(); got != v {
		t.Errorf("reads changed the version: %d -> %d", v, got)
	}

	// A clone snapshots the version; later commits on the original do not
	// leak into it.
	snap := c.Clone()
	if snap.Version() != v {
		t.Errorf("clone version = %d, want %d", snap.Version(), v)
	}
	if err := c.Register(rel("other")); err != nil {
		t.Fatal(err)
	}
	if snap.Version() != v {
		t.Errorf("original DDL changed the clone's version: %d", snap.Version())
	}
	if c.Version() != v+1 {
		t.Errorf("original version = %d, want %d", c.Version(), v+1)
	}
}
