package catalog

import (
	"testing"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
)

func rel(name string) *relation.Relation {
	return relation.New(name, types.NewSchema(types.Col("X", types.KindInt)))
}

func TestRegisterAndLookup(t *testing.T) {
	c := New()
	if err := c.Register(rel("Edge")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("edge"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := c.Table("EDGE"); !ok {
		t.Error("lookup should be case-insensitive (upper)")
	}
	if _, ok := c.Table("nope"); ok {
		t.Error("missing table should not resolve")
	}
}

func TestRegisterUnnamedFails(t *testing.T) {
	c := New()
	if err := c.Register(rel("")); err == nil {
		t.Error("unnamed relation must be rejected")
	}
}

func TestViewTableNameConflicts(t *testing.T) {
	c := New()
	if err := c.Register(rel("t")); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterView(&ViewDef{Name: "T"}); err == nil {
		t.Error("view name colliding with table must be rejected")
	}
	if err := c.RegisterView(&ViewDef{Name: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterView(&ViewDef{Name: "V"}); err == nil {
		t.Error("duplicate view must be rejected")
	}
	if err := c.Register(rel("v")); err == nil {
		t.Error("table name colliding with view must be rejected")
	}
	if _, ok := c.View("v"); !ok {
		t.Error("view lookup failed")
	}
	c.DropView("V")
	if _, ok := c.View("v"); ok {
		t.Error("dropped view should not resolve")
	}
}

func TestNamesSorted(t *testing.T) {
	c := New()
	_ = c.Register(rel("zeta"))
	_ = c.Register(rel("alpha"))
	_ = c.RegisterView(&ViewDef{Name: "mid"})
	names := c.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Errorf("names = %v", names)
	}
}

func TestReRegisterTableReplaces(t *testing.T) {
	c := New()
	_ = c.Register(rel("t"))
	r2 := rel("t")
	r2.Append(types.Row{types.Int(1)})
	if err := c.Register(r2); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Table("t")
	if got.Len() != 1 {
		t.Error("re-registration should replace the table")
	}
}
