// Package ast defines the abstract syntax tree for the RaSQL dialect: the
// SQL:99 subset the paper's queries use, extended with aggregates in the
// heads of recursive common table expressions.
package ast

import (
	"fmt"
	"strings"

	"github.com/rasql/rasql-go/internal/types"
)

// Statement is any top-level statement.
type Statement interface {
	stmt()
	String() string
}

// CreateView is `CREATE VIEW name(cols...) AS select`.
type CreateView struct {
	Name    string
	Columns []string
	Query   *Select
}

func (*CreateView) stmt() {}

// String renders the statement.
func (s *CreateView) String() string {
	return fmt.Sprintf("CREATE VIEW %s(%s) AS %s", s.Name, strings.Join(s.Columns, ", "), s.Query)
}

// With is `WITH [recursive] v1(...) AS q1, ... body`.
type With struct {
	Views []*CTE
	Body  *Select
}

func (*With) stmt() {}

// String renders the statement.
func (s *With) String() string {
	parts := make([]string, len(s.Views))
	for i, v := range s.Views {
		parts[i] = v.String()
	}
	return fmt.Sprintf("WITH %s %s", strings.Join(parts, ", "), s.Body)
}

// CTE is one common table expression: a view head plus a union of branches.
type CTE struct {
	// Recursive is true when the `recursive` keyword was given.
	Recursive bool
	Name      string
	// Head declares the view columns; a column may carry an aggregate
	// (RaSQL's `max() AS Days` form).
	Head []HeadCol
	// Branches are the UNIONed sub-queries. The analyzer classifies each
	// as a base case or a recursive case.
	Branches []*Select
}

// String renders the CTE.
func (c *CTE) String() string {
	cols := make([]string, len(c.Head))
	for i, h := range c.Head {
		cols[i] = h.String()
	}
	qs := make([]string, len(c.Branches))
	for i, b := range c.Branches {
		qs[i] = "(" + b.String() + ")"
	}
	kw := ""
	if c.Recursive {
		kw = "recursive "
	}
	return fmt.Sprintf("%s%s(%s) AS %s", kw, c.Name, strings.Join(cols, ", "), strings.Join(qs, " UNION "))
}

// HeadCol is one declared column of a CTE head.
type HeadCol struct {
	Name string
	// Agg is non-AggNone for RaSQL aggregate heads like `min() AS Cost`.
	Agg types.AggKind
}

// String renders the head column.
func (h HeadCol) String() string {
	if h.Agg != types.AggNone {
		return fmt.Sprintf("%s() AS %s", h.Agg, h.Name)
	}
	return h.Name
}

// Select is a select statement, possibly with UNION branches chained in
// Unions (left-deep).
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	// Unions holds further selects combined with UNION (set semantics) or
	// UNION ALL.
	Unions []UnionPart
}

func (*Select) stmt() {}

// UnionPart is one `UNION [ALL] select` continuation.
type UnionPart struct {
	All    bool
	Select *Select
}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	// Star is true for a bare `*`.
	Star bool
}

// TableRef is one FROM item: a named table/view, or a derived table
// (parenthesized sub-select) with a mandatory alias.
type TableRef struct {
	Name  string
	Alias string
	// Sub is the derived-table query when this FROM item is
	// `(SELECT ...) alias`; Name is empty in that case.
	Sub *Select
}

// Binding returns the name this table is referenced by (alias if present).
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// String renders the select.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteByte('*')
		} else {
			b.WriteString(it.Expr.String())
			if it.Alias != "" {
				b.WriteString(" AS " + it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			if t.Sub != nil {
				b.WriteString("(" + t.Sub.String() + ")")
			} else {
				b.WriteString(t.Name)
			}
			if t.Alias != "" {
				b.WriteString(" " + t.Alias)
			}
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	for _, u := range s.Unions {
		b.WriteString(" UNION ")
		if u.All {
			b.WriteString("ALL ")
		}
		b.WriteString("(" + u.Select.String() + ")")
	}
	for i, o := range s.OrderBy {
		if i == 0 {
			b.WriteString(" ORDER BY ")
		} else {
			b.WriteString(", ")
		}
		b.WriteString(o.Expr.String())
		if o.Desc {
			b.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// Expr is any expression node.
type Expr interface {
	expr()
	String() string
}

// ColumnRef is a possibly-qualified column reference (`t.C` or `C`).
type ColumnRef struct {
	Table string // empty when unqualified
	Name  string
}

func (*ColumnRef) expr() {}

// String renders the reference.
func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

// Literal is a constant value.
type Literal struct {
	Value types.Value
}

func (*Literal) expr() {}

// String renders the literal.
func (e *Literal) String() string {
	if e.Value.K == types.KindString {
		return "'" + e.Value.S + "'"
	}
	return e.Value.String()
}

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// The binary operators.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opNames = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// String names the operator.
func (o BinaryOp) String() string { return opNames[o] }

// Binary is a binary expression.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

func (*Binary) expr() {}

// String renders the expression.
func (e *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// Unary is NOT or numeric negation.
type Unary struct {
	Op string // "NOT" or "-"
	E  Expr
}

func (*Unary) expr() {}

// String renders the expression.
func (e *Unary) String() string { return fmt.Sprintf("%s%s", e.Op, e.E) }

// FuncCall is an aggregate or scalar function call.
type FuncCall struct {
	Name     string
	Agg      types.AggKind // resolved aggregate kind, AggNone for scalars
	Distinct bool
	Star     bool // count(*)
	Args     []Expr
}

func (*FuncCall) expr() {}

// String renders the call.
func (e *FuncCall) String() string {
	var inner string
	switch {
	case e.Star:
		inner = "*"
	default:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = a.String()
		}
		inner = strings.Join(parts, ", ")
		if e.Distinct {
			inner = "distinct " + inner
		}
	}
	return fmt.Sprintf("%s(%s)", e.Name, inner)
}

// Walk visits e and all sub-expressions in pre-order; returning false from
// fn stops descent into a node's children.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Binary:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Unary:
		Walk(x.E, fn)
	case *FuncCall:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	}
}

// HasAggregate reports whether the expression contains an aggregate call.
func HasAggregate(e Expr) bool {
	found := false
	Walk(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.Agg != types.AggNone {
			found = true
			return false
		}
		return true
	})
	return found
}
