package ast

import (
	"strings"
	"testing"

	"github.com/rasql/rasql-go/internal/types"
)

func TestWalkVisitsAll(t *testing.T) {
	e := &Binary{Op: OpAdd,
		L: &FuncCall{Name: "min", Agg: types.AggMin, Args: []Expr{&ColumnRef{Name: "x"}}},
		R: &Unary{Op: "-", E: &Literal{Value: types.Int(3)}},
	}
	var seen []string
	Walk(e, func(x Expr) bool {
		seen = append(seen, strings.Split(strings.TrimPrefix(typeName(x), "*ast."), ".")[0])
		return true
	})
	if len(seen) != 5 {
		t.Errorf("visited %d nodes, want 5: %v", len(seen), seen)
	}
}

func typeName(e Expr) string {
	switch e.(type) {
	case *Binary:
		return "Binary"
	case *Unary:
		return "Unary"
	case *FuncCall:
		return "FuncCall"
	case *ColumnRef:
		return "ColumnRef"
	case *Literal:
		return "Literal"
	default:
		return "?"
	}
}

func TestWalkStopsOnFalse(t *testing.T) {
	e := &Binary{Op: OpAdd, L: &ColumnRef{Name: "a"}, R: &ColumnRef{Name: "b"}}
	count := 0
	Walk(e, func(x Expr) bool {
		count++
		return false // do not descend
	})
	if count != 1 {
		t.Errorf("walk should stop at the root, visited %d", count)
	}
}

func TestHasAggregateOnHead(t *testing.T) {
	agg := &FuncCall{Name: "sum", Agg: types.AggSum, Args: []Expr{&ColumnRef{Name: "x"}}}
	plain := &FuncCall{Name: "lower", Args: []Expr{&ColumnRef{Name: "x"}}}
	if !HasAggregate(&Binary{Op: OpAdd, L: agg, R: &Literal{Value: types.Int(1)}}) {
		t.Error("nested aggregate should be found")
	}
	if HasAggregate(plain) {
		t.Error("scalar call is not an aggregate")
	}
	if HasAggregate(nil) {
		t.Error("nil has no aggregate")
	}
}

func TestHeadColString(t *testing.T) {
	h := HeadCol{Name: "Cost", Agg: types.AggMin}
	if h.String() != "min() AS Cost" {
		t.Errorf("head col = %q", h.String())
	}
	h = HeadCol{Name: "Dst"}
	if h.String() != "Dst" {
		t.Errorf("plain head col = %q", h.String())
	}
}

func TestTableRefBinding(t *testing.T) {
	if (TableRef{Name: "edge"}).Binding() != "edge" {
		t.Error("binding without alias")
	}
	if (TableRef{Name: "edge", Alias: "e"}).Binding() != "e" {
		t.Error("binding with alias")
	}
}

func TestLiteralStringQuotesStrings(t *testing.T) {
	l := &Literal{Value: types.Str("bob")}
	if l.String() != "'bob'" {
		t.Errorf("literal = %q", l.String())
	}
	n := &Literal{Value: types.Int(5)}
	if n.String() != "5" {
		t.Errorf("literal = %q", n.String())
	}
}
