// Package expr defines resolved, executable expressions: the analyzer
// rewrites parsed ast expressions into this form, with every column
// reference bound to a (source, column) position. Evaluation runs against
// an environment of one row per FROM source.
package expr

import (
	"fmt"

	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/types"
)

// Env is the evaluation environment: one current row per FROM source.
type Env [][]types.Value

// Expr is a resolved, evaluable expression.
type Expr interface {
	Eval(env Env) types.Value
	String() string
}

// Col is a resolved column reference.
type Col struct {
	// Input is the FROM-source index; Idx the column within that source.
	Input, Idx int
	// Name is kept for display and planning.
	Name string
}

// Eval reads the column from the environment.
func (c *Col) Eval(env Env) types.Value { return env[c.Input][c.Idx] }

// String renders the reference with its resolved position.
func (c *Col) String() string { return fmt.Sprintf("%s#%d.%d", c.Name, c.Input, c.Idx) }

// Lit is a constant.
type Lit struct {
	V types.Value
}

// Eval returns the constant.
func (l *Lit) Eval(Env) types.Value { return l.V }

// String renders the constant.
func (l *Lit) String() string { return l.V.String() }

// Bin is a binary operation.
type Bin struct {
	Op   ast.BinaryOp
	L, R Expr
}

// Eval applies the operator with SQL-ish semantics: comparisons yield
// booleans (NULL operands yield false), AND/OR use truthiness.
func (b *Bin) Eval(env Env) types.Value {
	switch b.Op {
	case ast.OpAnd:
		return types.Bool(b.L.Eval(env).Truthy() && b.R.Eval(env).Truthy())
	case ast.OpOr:
		return types.Bool(b.L.Eval(env).Truthy() || b.R.Eval(env).Truthy())
	}
	l, r := b.L.Eval(env), b.R.Eval(env)
	switch b.Op {
	case ast.OpAdd:
		return l.Add(r)
	case ast.OpSub:
		return l.Sub(r)
	case ast.OpMul:
		return l.Mul(r)
	case ast.OpDiv:
		return l.Div(r)
	case ast.OpMod:
		return l.Mod(r)
	}
	if l.IsNull() || r.IsNull() {
		return types.Bool(false)
	}
	c := l.Compare(r)
	switch b.Op {
	case ast.OpEq:
		return types.Bool(c == 0)
	case ast.OpNe:
		return types.Bool(c != 0)
	case ast.OpLt:
		return types.Bool(c < 0)
	case ast.OpLe:
		return types.Bool(c <= 0)
	case ast.OpGt:
		return types.Bool(c > 0)
	case ast.OpGe:
		return types.Bool(c >= 0)
	}
	return types.Null()
}

// String renders the operation.
func (b *Bin) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// Not is boolean negation.
type Not struct {
	E Expr
}

// Eval negates truthiness.
func (n *Not) Eval(env Env) types.Value { return types.Bool(!n.E.Eval(env).Truthy()) }

// String renders the negation.
func (n *Not) String() string { return "NOT " + n.E.String() }

// Neg is numeric negation.
type Neg struct {
	E Expr
}

// Eval returns 0 - E.
func (n *Neg) Eval(env Env) types.Value { return types.Int(0).Sub(n.E.Eval(env)) }

// String renders the negation.
func (n *Neg) String() string { return "-" + n.E.String() }

// Walk visits e and its children in pre-order; returning false stops
// descent into a node's children.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Bin:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Not:
		Walk(x.E, fn)
	case *Neg:
		Walk(x.E, fn)
	}
}

// Inputs returns the set of source indices the expression reads.
func Inputs(e Expr) map[int]bool {
	out := map[int]bool{}
	Walk(e, func(x Expr) bool {
		if c, ok := x.(*Col); ok {
			out[c.Input] = true
		}
		return true
	})
	return out
}

// IsConst reports whether the expression reads no columns.
func IsConst(e Expr) bool { return len(Inputs(e)) == 0 }

// Fold performs constant folding: any subtree with no column references is
// replaced by its value. Part of the paper's "constant evaluation"
// optimizer batch.
func Fold(e Expr) Expr {
	switch x := e.(type) {
	case *Bin:
		l, r := Fold(x.L), Fold(x.R)
		if IsConst(l) && IsConst(r) {
			return &Lit{V: (&Bin{Op: x.Op, L: l, R: r}).Eval(nil)}
		}
		return &Bin{Op: x.Op, L: l, R: r}
	case *Not:
		inner := Fold(x.E)
		if IsConst(inner) {
			return &Lit{V: (&Not{E: inner}).Eval(nil)}
		}
		return &Not{E: inner}
	case *Neg:
		inner := Fold(x.E)
		if IsConst(inner) {
			return &Lit{V: (&Neg{E: inner}).Eval(nil)}
		}
		return &Neg{E: inner}
	default:
		return e
	}
}

// SplitConjuncts flattens a tree of ANDs into a list of conjuncts —
// the analyzer's "filter combination" normal form.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Bin); ok && b.Op == ast.OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// EquiJoin describes a conjunct of the form a.X = b.Y between two distinct
// sources.
type EquiJoin struct {
	LeftInput  int
	LeftCol    int
	RightInput int
	RightCol   int
}

// AsEquiJoin recognizes an equi-join conjunct, normalizing so that
// LeftInput < RightInput.
func AsEquiJoin(e Expr) (EquiJoin, bool) {
	b, ok := e.(*Bin)
	if !ok || b.Op != ast.OpEq {
		return EquiJoin{}, false
	}
	l, lok := b.L.(*Col)
	r, rok := b.R.(*Col)
	if !lok || !rok || l.Input == r.Input {
		return EquiJoin{}, false
	}
	if l.Input < r.Input {
		return EquiJoin{LeftInput: l.Input, LeftCol: l.Idx, RightInput: r.Input, RightCol: r.Idx}, true
	}
	return EquiJoin{LeftInput: r.Input, LeftCol: r.Idx, RightInput: l.Input, RightCol: l.Idx}, true
}

// InferKind infers the result kind of an expression given per-source
// schemas. Arithmetic over two ints yields int except division; anything
// involving a float yields float.
func InferKind(e Expr, schemas []types.Schema) types.Kind {
	switch x := e.(type) {
	case *Col:
		return schemas[x.Input].Columns[x.Idx].Type
	case *Lit:
		return x.V.K
	case *Neg:
		return InferKind(x.E, schemas)
	case *Not:
		return types.KindBool
	case *Bin:
		switch x.Op {
		case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpMod:
			lk, rk := InferKind(x.L, schemas), InferKind(x.R, schemas)
			if lk == types.KindFloat || rk == types.KindFloat {
				return types.KindFloat
			}
			if lk == types.KindString && rk == types.KindString && x.Op == ast.OpAdd {
				return types.KindString
			}
			return types.KindInt
		case ast.OpDiv:
			return types.KindFloat
		default:
			return types.KindBool
		}
	default:
		return types.KindNull
	}
}
