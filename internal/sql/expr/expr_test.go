package expr

import (
	"testing"
	"testing/quick"

	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/types"
)

func env(rows ...[]types.Value) Env { return Env(rows) }

func TestColEval(t *testing.T) {
	e := env([]types.Value{types.Int(1)}, []types.Value{types.Str("x"), types.Int(9)})
	c := &Col{Input: 1, Idx: 1, Name: "b"}
	if !c.Eval(e).Equal(types.Int(9)) {
		t.Errorf("Col eval = %v", c.Eval(e))
	}
}

func TestBinComparisonsAndArith(t *testing.T) {
	one, two := &Lit{V: types.Int(1)}, &Lit{V: types.Int(2)}
	cases := []struct {
		op   ast.BinaryOp
		want types.Value
	}{
		{ast.OpAdd, types.Int(3)},
		{ast.OpSub, types.Int(-1)},
		{ast.OpMul, types.Int(2)},
		{ast.OpDiv, types.Float(0.5)},
		{ast.OpEq, types.Bool(false)},
		{ast.OpNe, types.Bool(true)},
		{ast.OpLt, types.Bool(true)},
		{ast.OpLe, types.Bool(true)},
		{ast.OpGt, types.Bool(false)},
		{ast.OpGe, types.Bool(false)},
	}
	for _, c := range cases {
		got := (&Bin{Op: c.op, L: one, R: two}).Eval(nil)
		if !got.Equal(c.want) {
			t.Errorf("1 %v 2 = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestBoolOpsUseTruthiness(t *testing.T) {
	tr, fa := &Lit{V: types.Bool(true)}, &Lit{V: types.Bool(false)}
	if !(&Bin{Op: ast.OpAnd, L: tr, R: tr}).Eval(nil).Truthy() {
		t.Error("true AND true")
	}
	if (&Bin{Op: ast.OpAnd, L: tr, R: fa}).Eval(nil).Truthy() {
		t.Error("true AND false")
	}
	if !(&Bin{Op: ast.OpOr, L: fa, R: tr}).Eval(nil).Truthy() {
		t.Error("false OR true")
	}
	if !(&Not{E: fa}).Eval(nil).Truthy() {
		t.Error("NOT false")
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	null := &Lit{V: types.Null()}
	one := &Lit{V: types.Int(1)}
	for _, op := range []ast.BinaryOp{ast.OpEq, ast.OpNe, ast.OpLt, ast.OpGt} {
		if (&Bin{Op: op, L: null, R: one}).Eval(nil).Truthy() {
			t.Errorf("NULL %v 1 should not be truthy", op)
		}
	}
}

func TestNeg(t *testing.T) {
	if got := (&Neg{E: &Lit{V: types.Int(5)}}).Eval(nil); !got.Equal(types.Int(-5)) {
		t.Errorf("neg = %v", got)
	}
}

func TestFoldConstants(t *testing.T) {
	e := &Bin{Op: ast.OpAdd,
		L: &Bin{Op: ast.OpMul, L: &Lit{V: types.Int(2)}, R: &Lit{V: types.Int(3)}},
		R: &Col{Input: 0, Idx: 0, Name: "x"}}
	folded := Fold(e)
	b, ok := folded.(*Bin)
	if !ok {
		t.Fatalf("folded = %T", folded)
	}
	if _, ok := b.L.(*Lit); !ok {
		t.Errorf("left side should fold to literal: %s", b.L)
	}
	if _, ok := b.R.(*Col); !ok {
		t.Errorf("column side must stay: %s", b.R)
	}
	// Fully constant trees fold to a single literal.
	if _, ok := Fold(&Not{E: &Lit{V: types.Bool(false)}}).(*Lit); !ok {
		t.Error("NOT false should fold")
	}
}

// Property: folding never changes evaluation results.
func TestQuickFoldPreservesSemantics(t *testing.T) {
	f := func(a, b int8, x int16) bool {
		e := &Bin{Op: ast.OpAdd,
			L: &Bin{Op: ast.OpMul, L: &Lit{V: types.Int(int64(a))}, R: &Lit{V: types.Int(int64(b))}},
			R: &Col{Input: 0, Idx: 0, Name: "x"}}
		ev := env([]types.Value{types.Int(int64(x))})
		return e.Eval(ev).Equal(Fold(e).Eval(ev))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitConjuncts(t *testing.T) {
	a := &Lit{V: types.Bool(true)}
	b := &Lit{V: types.Bool(false)}
	c := &Lit{V: types.Bool(true)}
	e := &Bin{Op: ast.OpAnd, L: &Bin{Op: ast.OpAnd, L: a, R: b}, R: c}
	if got := SplitConjuncts(e); len(got) != 3 {
		t.Errorf("conjuncts = %d", len(got))
	}
	if got := SplitConjuncts(nil); got != nil {
		t.Error("nil should split to nil")
	}
	or := &Bin{Op: ast.OpOr, L: a, R: b}
	if got := SplitConjuncts(or); len(got) != 1 {
		t.Error("OR must not split")
	}
}

func TestAsEquiJoinNormalizes(t *testing.T) {
	l := &Col{Input: 2, Idx: 1, Name: "b"}
	r := &Col{Input: 0, Idx: 3, Name: "a"}
	ej, ok := AsEquiJoin(&Bin{Op: ast.OpEq, L: l, R: r})
	if !ok || ej.LeftInput != 0 || ej.LeftCol != 3 || ej.RightInput != 2 || ej.RightCol != 1 {
		t.Errorf("equijoin = %+v ok=%v", ej, ok)
	}
	// Same input on both sides is a filter, not a join.
	if _, ok := AsEquiJoin(&Bin{Op: ast.OpEq, L: l, R: &Col{Input: 2, Idx: 0}}); ok {
		t.Error("same-input equality is not an equi-join")
	}
	if _, ok := AsEquiJoin(&Bin{Op: ast.OpLt, L: l, R: r}); ok {
		t.Error("< is not an equi-join")
	}
}

func TestInputsAndIsConst(t *testing.T) {
	e := &Bin{Op: ast.OpAdd, L: &Col{Input: 1, Idx: 0}, R: &Col{Input: 3, Idx: 0}}
	in := Inputs(e)
	if !in[1] || !in[3] || len(in) != 2 {
		t.Errorf("inputs = %v", in)
	}
	if IsConst(e) {
		t.Error("column expression is not const")
	}
	if !IsConst(&Lit{V: types.Int(1)}) {
		t.Error("literal is const")
	}
}

func TestInferKind(t *testing.T) {
	schemas := []types.Schema{types.NewSchema(
		types.Col("I", types.KindInt), types.Col("F", types.KindFloat), types.Col("S", types.KindString))}
	i := &Col{Input: 0, Idx: 0}
	f := &Col{Input: 0, Idx: 1}
	s := &Col{Input: 0, Idx: 2}
	cases := []struct {
		e    Expr
		want types.Kind
	}{
		{i, types.KindInt},
		{f, types.KindFloat},
		{&Bin{Op: ast.OpAdd, L: i, R: i}, types.KindInt},
		{&Bin{Op: ast.OpAdd, L: i, R: f}, types.KindFloat},
		{&Bin{Op: ast.OpDiv, L: i, R: i}, types.KindFloat},
		{&Bin{Op: ast.OpAdd, L: s, R: s}, types.KindString},
		{&Bin{Op: ast.OpLt, L: i, R: i}, types.KindBool},
		{&Not{E: i}, types.KindBool},
		{&Neg{E: f}, types.KindFloat},
		{&Lit{V: types.Str("x")}, types.KindString},
	}
	for _, c := range cases {
		if got := InferKind(c.e, schemas); got != c.want {
			t.Errorf("InferKind(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	e := &Bin{Op: ast.OpAnd,
		L: &Bin{Op: ast.OpGt, L: &Col{Input: 0, Idx: 1, Name: "x"}, R: &Lit{V: types.Int(3)}},
		R: &Not{E: &Lit{V: types.Bool(false)}}}
	if e.String() == "" {
		t.Error("String should render")
	}
}
