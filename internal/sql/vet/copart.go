package vet

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/expr"
)

// This file analyzes the shuffle behaviour of recursive rules. The
// distributed engine (internal/fixpoint) joins each iteration's delta
// against a base relation; when the equi-join columns on the recursive
// side cover the view's partition key, the join runs co-partitioned and no
// delta row leaves its worker (Algorithm 4/5). Otherwise every iteration
// broadcasts or reshuffles — the dominant cost for deep recursions.
//
// Two outputs:
//
//   - SuggestPartitionKey: for aggregate views, a narrower partition key
//     (a subset of the implicit group-by) that every recursive rule's join
//     covers. Partitioning on a subset of the group key keeps grouping
//     partition-local, so the planner can adopt it directly; the lint
//     reports RV021 (info) when it does.
//   - RV020 (warning): a rule whose join keys cannot cover any usable
//     partition key — the delta reshuffles every iteration and no
//     automatic fix exists.

// ruleJoinKeys returns the candidate partition keys one rule offers: for
// each non-recursive source, the multiset of recursive-side columns its
// equi-joins bind (sorted canonically). Multiset semantics mirror the
// planner's colsEqualAsSet acceptance test.
func ruleJoinKeys(rule *analyze.Rule) [][]int {
	rec := rule.RecSources[0]
	perSource := map[int][]int{}
	for _, c := range rule.Conjuncts {
		j, ok := expr.AsEquiJoin(c)
		if !ok {
			continue
		}
		switch {
		case j.LeftInput == rec && j.RightInput != rec:
			perSource[j.RightInput] = append(perSource[j.RightInput], j.LeftCol)
		case j.RightInput == rec && j.LeftInput != rec:
			perSource[j.LeftInput] = append(perSource[j.LeftInput], j.RightCol)
		}
	}
	var out [][]int
	for si, cols := range perSource {
		if rule.Sources[si].Kind == analyze.SourceRec {
			continue
		}
		sorted := append([]int(nil), cols...)
		sort.Ints(sorted)
		out = append(out, sorted)
	}
	return out
}

func keyString(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

// coversKey reports whether any of a rule's candidate keys equals key as a
// multiset (the planner's acceptance condition).
func coversKey(candidates [][]int, key []int) bool {
	if len(key) == 0 {
		return false
	}
	want := keyString(key)
	for _, c := range candidates {
		if len(c) == len(key) && keyString(c) == want {
			return true
		}
	}
	return false
}

// vetCarriedColumns mirrors the planner's carriedColumns: view columns
// every recursive rule copies verbatim from the recursive source.
func vetCarriedColumns(v *analyze.RecView) []int {
	var out []int
	for i := 0; i < v.Schema.Len(); i++ {
		ok := len(v.RecRules) > 0
		for _, r := range v.RecRules {
			c, isCol := r.Head[i].(*expr.Col)
			if !isCol || c.Input != r.RecSources[0] || c.Idx != i {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// vetDecomposable mirrors the planner's decomposability test: carried
// columns exist and, for aggregate views, fall inside the group key.
func vetDecomposable(v *analyze.RecView) bool {
	carried := vetCarriedColumns(v)
	if len(carried) == 0 {
		return false
	}
	if !v.IsAgg() {
		return true
	}
	group := map[int]bool{}
	for _, g := range v.GroupIdx {
		group[g] = true
	}
	for _, c := range carried {
		if !group[c] {
			return false
		}
	}
	return true
}

// distributable reports whether the co-partition analysis applies: the
// planner's preconditions (single view, linear rules) plus at least one
// recursive rule.
func distributable(clique *analyze.Clique) (*analyze.RecView, bool) {
	if len(clique.Views) != 1 {
		return nil, false
	}
	v := clique.Views[0]
	if len(v.RecRules) == 0 {
		return nil, false
	}
	for _, r := range v.RecRules {
		if len(r.RecSources) != 1 {
			return nil, false
		}
	}
	return v, true
}

// SuggestPartitionKey returns a partition key, strictly narrower than the
// default (the full implicit group-by), that lets every recursive rule of
// an aggregate view run co-partitioned — or nil when the default already
// works, no common key exists, or the view is not an eligible aggregate
// view. Any subset of the group key is correct: the group key functionally
// determines the partition, so per-partition aggregation, delta seeding
// and result collection are unaffected.
func SuggestPartitionKey(v *analyze.RecView) []int {
	if !v.IsAgg() || len(v.RecRules) == 0 {
		return nil
	}
	for _, r := range v.RecRules {
		if len(r.RecSources) != 1 {
			return nil
		}
	}
	if vetDecomposable(v) {
		return nil
	}
	group := map[int]bool{}
	for _, g := range v.GroupIdx {
		group[g] = true
	}

	ruleKeys := make([][][]int, len(v.RecRules))
	defaultCovered := true
	for i, r := range v.RecRules {
		ruleKeys[i] = ruleJoinKeys(r)
		if !coversKey(ruleKeys[i], v.GroupIdx) {
			defaultCovered = false
		}
	}
	if defaultCovered {
		return nil
	}

	// Candidate keys: every rule's join keys whose columns stay inside the
	// group-by domain, intersected across rules.
	counts := map[string]int{}
	keys := map[string][]int{}
	for _, rk := range ruleKeys {
		seen := map[string]bool{}
		for _, cand := range rk {
			inGroup := true
			for _, c := range cand {
				if !group[c] {
					inGroup = false
					break
				}
			}
			ks := keyString(cand)
			if !inGroup || seen[ks] {
				continue
			}
			seen[ks] = true
			counts[ks]++
			keys[ks] = cand
		}
	}
	var best []int
	for ks, n := range counts {
		if n != len(v.RecRules) {
			continue
		}
		cand := keys[ks]
		// Prefer the longest key (finer partitioning), then the
		// lexicographically smallest for determinism.
		if best == nil || len(cand) > len(best) ||
			(len(cand) == len(best) && ks < keyString(best)) {
			best = cand
		}
	}
	return best
}

// lintCoPartition reports how the clique's recursive joins interact with
// partitioning (RV020, RV021).
func lintCoPartition(r *Report, clique *analyze.Clique) {
	v, ok := distributable(clique)
	if !ok {
		return
	}
	if vetDecomposable(v) {
		// Decomposed execution never shuffles; nothing to lint.
		return
	}
	defaultKey := v.GroupIdx
	if !v.IsAgg() {
		defaultKey = make([]int, v.Schema.Len())
		for i := range defaultKey {
			defaultKey[i] = i
		}
	}

	alt := SuggestPartitionKey(v)
	if alt != nil {
		r.add(Diagnostic{
			Code: "RV021", Severity: SeverityInfo, View: v.Name,
			Message: fmt.Sprintf("partition key narrowed from the full group-by %v to %v so every recursive rule joins co-partitioned; the planner applies this automatically", defaultKey, alt),
		})
		return
	}
	for _, rule := range v.RecRules {
		if coversKey(ruleJoinKeys(rule), defaultKey) {
			continue
		}
		r.add(Diagnostic{
			Code: "RV020", Severity: SeverityWarning, View: v.Name, Rule: ruleLabel(v, rule),
			Message: fmt.Sprintf("recursive join keys do not cover the partition key %v: the delta cannot stay co-partitioned and reshuffles (broadcast join) every iteration", defaultKey),
			Hint:    "join the recursive reference on its grouping columns, or carry the partition key through the head to enable decomposed execution",
		})
	}
}
