// Package vet implements `rasql vet`: a multi-pass static analyzer over
// the analyzed Program / Recursive Clique Plan (the output of
// internal/sql/analyze) that certifies PreM and lints recursive-clique
// plans at compile time, before any cluster time is spent.
//
// The passes, and their diagnostic codes:
//
//   - static PreM certification (RV001–RV003): recognizes the
//     constant/monotone-increment patterns of "Monotonic Properties of
//     Completed Aggregates in Recursive Queries" and "Fixpoint Semantics
//     and Optimization of Recursive Datalog Programs with Aggregates"
//     (Zaniolo et al.) under which γ(T(R)) = γ(T(γ(R))) holds for min/max
//     heads, plus the positive-contribution conditions that justify
//     count/sum in recursion, returning Certified, Refuted (with the
//     counter-pattern) or Inconclusive;
//   - termination lint (RV010): count/sum recursion over potentially
//     cyclic sources diverges; the dynamic engine only catches it after
//     burning its iteration budget;
//   - plan hygiene lints (RV020–RV041): recursive joins whose keys defeat
//     co-partitioning (forcing a reshuffle every iteration), cartesian
//     sources, unused views, and degenerate implicit group-bys.
//
// Every diagnostic carries a stable RVxxx code, a severity, the offending
// view/rule, and a remediation hint. The co-partitioning analysis doubles
// as planner input: internal/fixpoint consumes SuggestPartitionKey to pick
// the cheaper shuffle plan.
package vet

import (
	"fmt"
	"strings"

	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/expr"
	"github.com/rasql/rasql-go/internal/types"
)

// Severity ranks a diagnostic.
type Severity uint8

// The severities.
const (
	// SeverityError marks plans the engine should refuse to run (e.g. a
	// statically refuted PreM assumption would compute wrong answers).
	SeverityError Severity = iota
	// SeverityWarning marks plans that run but likely diverge or waste
	// cluster time.
	SeverityWarning
	// SeverityInfo reports certifications and automatic plan adjustments.
	SeverityInfo
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SeverityError:
		return "error"
	case SeverityWarning:
		return "warning"
	default:
		return "info"
	}
}

// Verdict is the outcome of static PreM certification for one view.
type Verdict uint8

// The verdicts.
const (
	// VerdictNotApplicable marks set-semantics views (no aggregate head).
	VerdictNotApplicable Verdict = iota
	// VerdictCertified means the aggregate is provably pre-mappable /
	// monotone: pushing it into the fixpoint is safe on every input.
	VerdictCertified
	// VerdictRefuted means a counter-pattern was found: inputs exist on
	// which the aggregate-in-recursion answer diverges from the stratified
	// semantics.
	VerdictRefuted
	// VerdictInconclusive means the rules fall outside the recognized
	// patterns; validate with the dynamic GPtest instead.
	VerdictInconclusive
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictCertified:
		return "certified"
	case VerdictRefuted:
		return "refuted"
	case VerdictInconclusive:
		return "inconclusive"
	default:
		return "not-applicable"
	}
}

// Diagnostic is one finding, with a stable code and a remediation hint.
type Diagnostic struct {
	// Code is the stable diagnostic code, e.g. "RV002".
	Code string
	// Severity ranks the finding.
	Severity Severity
	// View names the offending view ("" for program-scope findings).
	View string
	// Rule locates the offending rule within the view, e.g.
	// "recursive rule 1" ("" when the finding is view- or program-wide).
	Rule string
	// Message states the finding.
	Message string
	// Hint suggests a remediation.
	Hint string
}

// String renders the diagnostic on one line (plus an indented hint).
func (d Diagnostic) String() string {
	var b strings.Builder
	b.WriteString(d.Code)
	b.WriteByte(' ')
	b.WriteString(d.Severity.String())
	if d.View != "" || d.Rule != "" {
		b.WriteString(" [")
		b.WriteString(d.View)
		if d.View != "" && d.Rule != "" {
			b.WriteByte(' ')
		}
		b.WriteString(d.Rule)
		b.WriteByte(']')
	}
	b.WriteString(": ")
	b.WriteString(d.Message)
	if d.Hint != "" {
		b.WriteString("\n    hint: ")
		b.WriteString(d.Hint)
	}
	return b.String()
}

// ViewVerdict pairs a clique view with its PreM verdict.
type ViewVerdict struct {
	View    string
	Verdict Verdict
}

// Report is the result of analyzing one program (or several, when merged).
type Report struct {
	Diagnostics []Diagnostic
	// Views holds the PreM verdict of every recursive-clique view, in
	// clique order.
	Views []ViewVerdict
}

func (r *Report) add(d Diagnostic) { r.Diagnostics = append(r.Diagnostics, d) }

// Merge appends another report's findings (used when vetting scripts with
// several statements).
func (r *Report) Merge(o *Report) {
	r.Diagnostics = append(r.Diagnostics, o.Diagnostics...)
	r.Views = append(r.Views, o.Views...)
}

// HasErrors reports whether any diagnostic is error-severity.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// VerdictFor returns the PreM verdict of a view by name.
func (r *Report) VerdictFor(view string) Verdict {
	for _, v := range r.Views {
		if strings.EqualFold(v.View, view) {
			return v.Verdict
		}
	}
	return VerdictNotApplicable
}

// Verdict folds the per-view verdicts into one program verdict: Refuted
// dominates, then Inconclusive, then Certified; a program whose clique has
// no aggregate views is NotApplicable.
func (r *Report) Verdict() Verdict {
	out := VerdictNotApplicable
	for _, v := range r.Views {
		switch v.Verdict {
		case VerdictRefuted:
			return VerdictRefuted
		case VerdictInconclusive:
			out = VerdictInconclusive
		case VerdictCertified:
			if out == VerdictNotApplicable {
				out = VerdictCertified
			}
		}
	}
	return out
}

// String renders every diagnostic followed by the per-view verdicts.
func (r *Report) String() string {
	var b strings.Builder
	for _, d := range r.Diagnostics {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	for _, v := range r.Views {
		if v.Verdict == VerdictNotApplicable {
			continue
		}
		fmt.Fprintf(&b, "PreM[%s]: %s\n", v.View, v.Verdict)
	}
	return b.String()
}

// Analyze runs every pass over an analyzed program and returns the report.
func Analyze(prog *analyze.Program) *Report {
	r := &Report{}
	if prog == nil {
		return r
	}
	if prog.Clique != nil {
		for _, v := range prog.Clique.Views {
			r.Views = append(r.Views, ViewVerdict{View: v.Name, Verdict: certifyPreM(r, prog.Clique, v)})
		}
		lintTermination(r, prog.Clique)
		lintCoPartition(r, prog.Clique)
		lintGroupBy(r, prog.Clique)
		lintCartesianRules(r, prog.Clique)
		lintConfluence(r, prog.Clique)
	}
	lintUnused(r, prog)
	if prog.Final != nil {
		lintCartesianQuery(r, prog.Final, "")
	}
	return r
}

// ruleLabel names a rule for diagnostics: recursive rules and base rules
// are numbered separately, matching their order in the view.
func ruleLabel(v *analyze.RecView, rule *analyze.Rule) string {
	for i, rr := range v.RecRules {
		if rr == rule {
			return fmt.Sprintf("recursive rule %d", i+1)
		}
	}
	for i, br := range v.BaseRules {
		if br == rule {
			return fmt.Sprintf("base rule %d", i+1)
		}
	}
	return ""
}

// lintGroupBy checks the implicit group-by shape of every aggregate view
// (RV040, RV041).
func lintGroupBy(r *Report, clique *analyze.Clique) {
	for _, v := range clique.Views {
		if !v.IsAgg() {
			continue
		}
		if len(v.GroupIdx) == 0 {
			r.add(Diagnostic{
				Code: "RV040", Severity: SeverityWarning, View: v.Name,
				Message: fmt.Sprintf("implicit group-by is empty: every derivation folds into a single global %s() group", v.Agg),
				Hint:    "add a non-aggregate head column to group by, or confirm a global aggregate is intended",
			})
		}
		allRules := append(append([]*analyze.Rule{}, v.BaseRules...), v.RecRules...)
		for _, gi := range v.GroupIdx {
			val, degenerate := "", len(allRules) > 0
			for _, rule := range allRules {
				lit, ok := rule.Head[gi].(*expr.Lit)
				if !ok {
					degenerate = false
					break
				}
				if val == "" {
					val = lit.V.String()
				} else if val != lit.V.String() {
					degenerate = false
					break
				}
			}
			if degenerate {
				r.add(Diagnostic{
					Code: "RV041", Severity: SeverityInfo, View: v.Name,
					Message: fmt.Sprintf("group column %q is the constant %s in every rule; the implicit group-by is degenerate there", v.Schema.Columns[gi].Name, val),
					Hint:    "drop the constant column or bind it to a source column if per-key grouping was intended",
				})
			}
		}
	}
}

// lintCartesianRules flags rule bodies whose FROM sources are not all
// connected by join predicates (RV030).
func lintCartesianRules(r *Report, clique *analyze.Clique) {
	for _, v := range clique.Views {
		for _, rule := range append(append([]*analyze.Rule{}, v.BaseRules...), v.RecRules...) {
			if rule.NoFrom {
				continue
			}
			flagCartesian(r, v.Name, ruleLabel(v, rule), rule.Sources, rule.Conjuncts)
		}
	}
}

// lintCartesianQuery is lintCartesianRules for the final query (and its
// unions).
func lintCartesianQuery(r *Report, q *analyze.Query, view string) {
	if q == nil || q.NoFrom {
		return
	}
	flagCartesian(r, view, "", q.Sources, q.Conjuncts)
	for _, u := range q.Unions {
		lintCartesianQuery(r, u, view)
	}
}

// flagCartesian reports FROM sources not reachable from the first source
// through predicates that mention at least two sources.
func flagCartesian(r *Report, view, rule string, sources []analyze.Source, conjuncts []expr.Expr) {
	n := len(sources)
	if n < 2 {
		return
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, c := range conjuncts {
		prev := -1
		for in := range expr.Inputs(c) {
			if prev >= 0 {
				union(prev, in)
			}
			prev = in
		}
	}
	root := find(0)
	var loose []string
	for i := 1; i < n; i++ {
		if find(i) != root {
			loose = append(loose, sources[i].Binding)
		}
	}
	if len(loose) > 0 {
		r.add(Diagnostic{
			Code: "RV030", Severity: SeverityWarning, View: view, Rule: rule,
			Message: fmt.Sprintf("source(s) %s join the rest of the FROM list with no predicate: the body is a cartesian product", strings.Join(loose, ", ")),
			Hint:    "add a join condition, or confirm the cross product is intended",
		})
	}
}

// lintConfluence flags min/max views whose recursive rules derive a group
// key from an in-flight aggregate column (RV050). The aggregate column of a
// recursive source holds a provisional value that tightens as the fixpoint
// runs; a group-by key computed from it places the same logical derivation
// into different groups depending on the derivation schedule — delta
// batching, partition count, even map iteration order over the merge
// buckets — so the fixpoint is not confluent and two runs can return
// different (both "converged") answers. Reading the aggregate in the
// aggregate position is the PreM-certified pattern; reading it in a group
// position is the hazard.
func lintConfluence(r *Report, clique *analyze.Clique) {
	for _, v := range clique.Views {
		if v.Agg != types.AggMin && v.Agg != types.AggMax {
			continue
		}
		for _, rule := range v.RecRules {
			for _, gi := range v.GroupIdx {
				col := inFlightAggRead(rule, rule.Head[gi])
				if col == nil {
					continue
				}
				src := rule.Sources[col.Input].Rec
				r.add(Diagnostic{
					Code: "RV050", Severity: SeverityWarning, View: v.Name, Rule: ruleLabel(v, rule),
					Message: fmt.Sprintf("group column %q is computed from %s.%s, the in-flight %s() aggregate of a recursive source: the group key depends on the derivation schedule, so the fixpoint is not confluent and results can vary run to run",
						v.Schema.Columns[gi].Name, src.Name, src.Schema.Columns[src.AggIdx].Name, src.Agg),
					Hint: "group by stable key columns only; read the converged aggregate in the final query, after the fixpoint",
				})
			}
		}
	}
}

// inFlightAggRead returns a column reference inside e that reads the
// aggregate column of a recursive source of the rule, or nil.
func inFlightAggRead(rule *analyze.Rule, e expr.Expr) *expr.Col {
	var found *expr.Col
	expr.Walk(e, func(x expr.Expr) bool {
		c, ok := x.(*expr.Col)
		if !ok || found != nil {
			return true
		}
		if c.Input < 0 || c.Input >= len(rule.Sources) {
			return true
		}
		s := rule.Sources[c.Input]
		if s.Kind == analyze.SourceRec && s.Rec != nil && s.Rec.IsAgg() && c.Idx == s.Rec.AggIdx {
			found = c
		}
		return true
	})
	return found
}

// lintUnused reports CTEs and recursive views whose results are never read
// (RV031).
func lintUnused(r *Report, prog *analyze.Program) {
	if prog.Clique == nil {
		return
	}
	used := map[string]bool{}
	var markQuery func(q *analyze.Query)
	markSources := func(sources []analyze.Source) {
		for _, s := range sources {
			switch s.Kind {
			case analyze.SourceView:
				used[strings.ToLower(s.ViewName)] = true
				markQuery(s.ViewQuery)
			case analyze.SourceRec:
				used[strings.ToLower(s.Rec.Name)] = true
			}
		}
	}
	markQuery = func(q *analyze.Query) {
		if q == nil {
			return
		}
		markSources(q.Sources)
		for _, u := range q.Unions {
			markQuery(u)
		}
	}
	markQuery(prog.Final)
	// Cross-view references inside rules count; self-references do not.
	for _, v := range prog.Clique.Views {
		for _, rule := range append(append([]*analyze.Rule{}, v.BaseRules...), v.RecRules...) {
			for _, s := range rule.Sources {
				switch s.Kind {
				case analyze.SourceView:
					used[strings.ToLower(s.ViewName)] = true
					markQuery(s.ViewQuery)
				case analyze.SourceRec:
					if !strings.EqualFold(s.Rec.Name, v.Name) {
						used[strings.ToLower(s.Rec.Name)] = true
					}
				}
			}
		}
	}
	for _, vd := range prog.Clique.NonRec {
		if !used[strings.ToLower(vd.Name)] {
			r.add(Diagnostic{
				Code: "RV031", Severity: SeverityWarning, View: vd.Name,
				Message: "CTE is defined but never read",
				Hint:    "remove the definition, or reference it from the query",
			})
		}
	}
	for _, v := range prog.Clique.Views {
		if !used[strings.ToLower(v.Name)] {
			r.add(Diagnostic{
				Code: "RV031", Severity: SeverityWarning, View: v.Name,
				Message: "recursive view is computed to fixpoint but its result is never read",
				Hint:    "drop the view or read it from the final query; the fixpoint runs regardless",
			})
		}
	}
}
