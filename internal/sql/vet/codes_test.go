package vet

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

var codeLitRE = regexp.MustCompile(`Code:\s*"(RV\d+)"`)

// TestCodesRegistryComplete greps the package source for RV-code literals
// and pins that the Codes() registry matches them exactly — a new
// diagnostic code cannot ship without a -codes doc line, and a retired one
// cannot linger in the registry.
func TestCodesRegistryComplete(t *testing.T) {
	emitted := map[string]bool{}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") ||
			strings.HasSuffix(e.Name(), "_test.go") || e.Name() == "codes.go" {
			continue
		}
		src, err := os.ReadFile(e.Name())
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range codeLitRE.FindAllStringSubmatch(string(src), -1) {
			emitted[m[1]] = true
		}
	}
	registered := map[string]bool{}
	prev := ""
	for _, cd := range Codes() {
		if cd.Code <= prev {
			t.Errorf("Codes() out of order: %s after %s", cd.Code, prev)
		}
		prev = cd.Code
		registered[cd.Code] = true
		if cd.Doc == "" {
			t.Errorf("%s has no doc line", cd.Code)
		}
		if !emitted[cd.Code] {
			t.Errorf("Codes() registers %s but no vet pass emits it", cd.Code)
		}
	}
	for code := range emitted {
		if !registered[code] {
			t.Errorf("vet emits %s but Codes() does not register it", code)
		}
	}
}
