package vet

import (
	"fmt"

	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/sql/expr"
	"github.com/rasql/rasql-go/internal/types"
)

// This file is the static PreM certifier. The dynamic GPtest
// (internal/prem) must execute both query versions and never terminates on
// exactly the cyclic inputs where PreM matters most; the syntactic
// sufficient conditions below certify γ(T(R)) = γ(T(γ(R))) without running
// anything.
//
// For an extremum (min/max) head the recognized safe pattern is:
//
//  1. linear recursion — one recursive reference per rule;
//  2. the head's aggregate column is a monotone non-decreasing
//     (order-preserving) function of the running aggregate, or ignores it
//     entirely (a constant/monotone-increment transform: Cost + edge.Cost,
//     Days, B * 0.5, ...);
//  3. no group column reads the running aggregate — grouping must survive
//     γ unchanged;
//  4. every filter that reads the running aggregate keeps rows in the
//     direction the aggregate improves (min: `agg <= x`; max: `agg >= x`),
//     so derivations admitted from intermediate values are still admitted
//     from the completed aggregate and produce dominated head rows.
//
// An order-REVERSING transform or an anti-monotone filter is a
// counter-pattern: a group holding {v, v'} with v better than v' derives,
// through the un-aggregated twin, head rows the pre-mapped version can
// never produce — that is a Refuted verdict. Everything else (non-linear
// rules, mutual recursion, unknown-sign arithmetic) is Inconclusive and
// falls back to the dynamic checker.
//
// For additive (count/sum) heads certification follows the monotonic
// counting argument: contributions must be provably positive (literals > 0,
// or non-numeric count contributions, which count as 1) and propagate
// through identity or positive scaling, and filters over the running total
// must be monotone in the growing direction (`Tot > 50`).

// mono classifies an expression's behaviour as a function of one column —
// the running aggregate value of the recursive source.
type mono uint8

const (
	// monoConst does not read the aggregate column.
	monoConst mono = iota
	// monoInc is non-decreasing (order-preserving) in the aggregate.
	monoInc
	// monoDec is non-increasing (order-reversing) in the aggregate.
	monoDec
	// monoUnknown reads the aggregate in a shape we cannot classify.
	monoUnknown
)

func (m mono) String() string {
	switch m {
	case monoConst:
		return "constant"
	case monoInc:
		return "monotone"
	case monoDec:
		return "order-reversing"
	default:
		return "unclassifiable"
	}
}

func flip(m mono) mono {
	switch m {
	case monoInc:
		return monoDec
	case monoDec:
		return monoInc
	default:
		return m
	}
}

// addMono combines the monotonicities of two added subexpressions.
func addMono(a, b mono) mono {
	if a == monoUnknown || b == monoUnknown {
		return monoUnknown
	}
	if a == monoConst {
		return b
	}
	if b == monoConst {
		return a
	}
	if a == b {
		return a
	}
	return monoUnknown
}

// refsCol reports whether e reads column (input, idx).
func refsCol(e expr.Expr, input, idx int) bool {
	found := false
	expr.Walk(e, func(x expr.Expr) bool {
		if c, ok := x.(*expr.Col); ok && c.Input == input && c.Idx == idx {
			found = true
		}
		return !found
	})
	return found
}

// litSign returns the sign of a numeric literal: +1, -1, or 0 when the
// expression is not a sign-known literal. Analysis runs on folded
// expressions, so constant arithmetic is already a Lit.
func litSign(e expr.Expr) int {
	if n, ok := e.(*expr.Neg); ok {
		return -litSign(n.E)
	}
	l, ok := e.(*expr.Lit)
	if !ok || !l.V.IsNumeric() {
		return 0
	}
	switch f := l.V.AsFloat(); {
	case f >= 0:
		return +1
	default:
		return -1
	}
}

// monotonicity classifies e as a function of the aggregate column
// (input=rec, idx=aggIdx), holding every other column fixed.
func monotonicity(e expr.Expr, rec, aggIdx int) mono {
	switch x := e.(type) {
	case *expr.Col:
		if x.Input == rec && x.Idx == aggIdx {
			return monoInc
		}
		return monoConst
	case *expr.Lit:
		return monoConst
	case *expr.Neg:
		return flip(monotonicity(x.E, rec, aggIdx))
	case *expr.Bin:
		l := monotonicity(x.L, rec, aggIdx)
		r := monotonicity(x.R, rec, aggIdx)
		switch x.Op {
		case ast.OpAdd:
			return addMono(l, r)
		case ast.OpSub:
			return addMono(l, flip(r))
		case ast.OpMul:
			if l == monoConst && r == monoConst {
				return monoConst
			}
			// A scaled aggregate keeps or flips its direction with the
			// sign of the constant side; unknown signs are unclassifiable.
			if l == monoConst {
				return scaleMono(x.L, r)
			}
			if r == monoConst {
				return scaleMono(x.R, l)
			}
			return monoUnknown
		case ast.OpDiv:
			if r == monoConst {
				if l == monoConst {
					return monoConst
				}
				return scaleMono(x.R, l)
			}
			return monoUnknown
		default:
			// Comparisons, AND/OR, MOD: constant when agg-free, otherwise
			// unclassifiable as a value transform.
			if l == monoConst && r == monoConst {
				return monoConst
			}
			return monoUnknown
		}
	}
	if c, ok := e.(*expr.Not); ok {
		if refsCol(c.E, rec, aggIdx) {
			return monoUnknown
		}
		return monoConst
	}
	return monoConst
}

// scaleMono applies the sign of a constant factor to a monotonicity.
func scaleMono(factor expr.Expr, m mono) mono {
	if m == monoUnknown {
		return monoUnknown
	}
	switch litSign(factor) {
	case +1:
		return m
	case -1:
		return flip(m)
	default:
		return monoUnknown
	}
}

// condOutcome classifies one filter against the aggregate direction.
type condOutcome uint8

const (
	condSafe condOutcome = iota
	condRefuted
	condInconclusive
)

// mirrorOp rewrites `x op y` as `y op' x`.
func mirrorOp(op ast.BinaryOp) ast.BinaryOp {
	switch op {
	case ast.OpLt:
		return ast.OpGt
	case ast.OpLe:
		return ast.OpGe
	case ast.OpGt:
		return ast.OpLt
	case ast.OpGe:
		return ast.OpLe
	default:
		return op
	}
}

// judgeCondition decides whether a conjunct that reads the running
// aggregate stays monotone under the aggregate's direction of improvement.
// grows is true for max and for additive aggregates with positive
// contributions (the running value only increases); false for min.
func judgeCondition(c expr.Expr, rec, aggIdx int, grows bool) (condOutcome, string) {
	if !refsCol(c, rec, aggIdx) {
		return condSafe, ""
	}
	b, ok := c.(*expr.Bin)
	if !ok {
		return condInconclusive, fmt.Sprintf("filter %s reads the running aggregate in a non-comparison expression", c)
	}
	switch b.Op {
	case ast.OpLt, ast.OpLe, ast.OpGt, ast.OpGe, ast.OpEq, ast.OpNe:
	default:
		return condInconclusive, fmt.Sprintf("filter %s reads the running aggregate in a non-comparison expression", c)
	}
	lRefs, rRefs := refsCol(b.L, rec, aggIdx), refsCol(b.R, rec, aggIdx)
	if lRefs && rRefs {
		return condInconclusive, fmt.Sprintf("both sides of filter %s read the running aggregate", c)
	}
	aggSide, op := b.L, b.Op
	if rRefs {
		aggSide, op = b.R, mirrorOp(b.Op)
	}
	switch m := monotonicity(aggSide, rec, aggIdx); m {
	case monoInc:
	case monoDec:
		op = mirrorOp(op)
	default:
		return condInconclusive, fmt.Sprintf("filter %s transforms the running aggregate in an unclassifiable way", c)
	}
	if op == ast.OpEq || op == ast.OpNe {
		return condInconclusive, fmt.Sprintf("filter %s pins the running aggregate with =/<>; intermediate values that match may differ from the completed aggregate", c)
	}
	// Normalized: monotone(agg) op other. Improvement direction decides
	// which comparisons stay monotone.
	safe := op == ast.OpLt || op == ast.OpLe
	if grows {
		safe = op == ast.OpGt || op == ast.OpGe
	}
	if safe {
		return condSafe, ""
	}
	dir := "shrinks"
	if grows {
		dir = "grows"
	}
	return condRefuted, fmt.Sprintf("filter %s is anti-monotone: the running aggregate only %s, so derivations admitted from intermediate values are rejected by the completed aggregate — γ(T(R)) ≠ γ(T(γ(R)))", c, dir)
}

// CertifyClique folds the static PreM verdicts of every view in a clique,
// without building a full program report — the hook the distributed engine
// uses to gate barrier-relaxed (SSP/async) execution. The fold follows
// Report.Verdict precedence: Refuted dominates, then Inconclusive, then
// Certified; a clique with no aggregate views is NotApplicable (set
// semantics — idempotent monotone union, trivially order-insensitive).
func CertifyClique(clique *analyze.Clique) Verdict {
	r := &Report{}
	for _, v := range clique.Views {
		r.Views = append(r.Views, ViewVerdict{View: v.Name, Verdict: certifyPreM(r, clique, v)})
	}
	return r.Verdict()
}

// certifyPreM produces the static PreM verdict for one clique view,
// appending RV001/RV002/RV003 diagnostics to the report.
func certifyPreM(r *Report, clique *analyze.Clique, v *analyze.RecView) Verdict {
	if !v.IsAgg() {
		return VerdictNotApplicable
	}
	if len(clique.Views) > 1 {
		r.add(Diagnostic{
			Code: "RV003", Severity: SeverityWarning, View: v.Name,
			Message: fmt.Sprintf("cannot certify %s() statically: %s belongs to a mutually recursive clique of %d views", v.Agg, v.Name, len(clique.Views)),
			Hint:    "static certification covers single-view cliques; validate with the dynamic GPtest (premcheck)",
		})
		return VerdictInconclusive
	}
	switch v.Agg {
	case types.AggMin, types.AggMax:
		return certifyExtremum(r, v)
	default:
		return certifyAdditive(r, v)
	}
}

// verdictTracker accumulates per-rule findings, keeping the worst verdict.
type verdictTracker struct {
	verdict Verdict
	diags   []Diagnostic
}

func newTracker() *verdictTracker { return &verdictTracker{verdict: VerdictCertified} }

func (t *verdictTracker) refute(view, rule, msg string) {
	t.verdict = VerdictRefuted
	t.diags = append(t.diags, Diagnostic{
		Code: "RV002", Severity: SeverityError, View: view, Rule: rule,
		Message: msg,
		Hint:    "restructure the rule so the aggregate transform and filters are monotone, or compute the aggregate after the recursion (stratified form)",
	})
}

func (t *verdictTracker) inconclusive(view, rule, msg string) {
	if t.verdict == VerdictCertified {
		t.verdict = VerdictInconclusive
	}
	t.diags = append(t.diags, Diagnostic{
		Code: "RV003", Severity: SeverityWarning, View: view, Rule: rule,
		Message: msg,
		Hint:    "outside the statically recognized patterns; validate with the dynamic GPtest (premcheck)",
	})
}

func (t *verdictTracker) finish(r *Report, v *analyze.RecView, certifiedMsg string) Verdict {
	if t.verdict == VerdictCertified {
		r.add(Diagnostic{
			Code: "RV001", Severity: SeverityInfo, View: v.Name,
			Message: certifiedMsg,
		})
		return VerdictCertified
	}
	for _, d := range t.diags {
		r.add(d)
	}
	return t.verdict
}

// certifyExtremum statically certifies a min/max head.
func certifyExtremum(r *Report, v *analyze.RecView) Verdict {
	t := newTracker()
	for _, rule := range v.RecRules {
		label := ruleLabel(v, rule)
		if len(rule.RecSources) != 1 {
			t.inconclusive(v.Name, label, "non-linear rule: more than one recursive reference")
			continue
		}
		rec := rule.RecSources[0]
		// 1. The aggregate head column must transform the running value
		// monotonically (order-preserving) or ignore it.
		switch m := monotonicity(rule.Head[v.AggIdx], rec, v.AggIdx); m {
		case monoDec:
			t.refute(v.Name, label, fmt.Sprintf(
				"head transform %s is order-reversing in the running %s value: it maps the group's best value to the worst derived value, so γ(T(R)) ≠ γ(T(γ(R))) whenever a group holds two distinct values",
				rule.Head[v.AggIdx], v.Agg))
		case monoUnknown:
			t.inconclusive(v.Name, label, fmt.Sprintf(
				"cannot classify the monotonicity of head transform %s in the running %s value", rule.Head[v.AggIdx], v.Agg))
		}
		// 2. Group columns must not read the running aggregate.
		for ci, h := range rule.Head {
			if ci == v.AggIdx {
				continue
			}
			if refsCol(h, rec, v.AggIdx) {
				t.inconclusive(v.Name, label, fmt.Sprintf(
					"group column %q reads the running %s value: grouping would differ between the pre-mapped and stratified versions",
					v.Schema.Columns[ci].Name, v.Agg))
			}
		}
		// 3. Filters over the running aggregate must be monotone in the
		// improvement direction.
		for _, c := range rule.Conjuncts {
			switch outcome, msg := judgeCondition(c, rec, v.AggIdx, v.Agg == types.AggMax); outcome {
			case condRefuted:
				t.refute(v.Name, label, msg)
			case condInconclusive:
				t.inconclusive(v.Name, label, msg)
			}
		}
	}
	return t.finish(r, v, fmt.Sprintf(
		"PreM certified statically: every recursive rule transforms the running %s monotonically and filters it only in the improvement direction — pushing the aggregate into the fixpoint is safe on every input",
		v.Agg))
}

// certifyAdditive statically certifies a count/sum head via the monotonic
// counting argument: positive contributions, propagated by identity or
// positive scaling.
func certifyAdditive(r *Report, v *analyze.RecView) Verdict {
	t := newTracker()
	for _, rule := range v.BaseRules {
		if !positiveContribution(rule.Head[v.AggIdx], rule, v.Agg) {
			t.inconclusive(v.Name, ruleLabel(v, rule), fmt.Sprintf(
				"cannot prove the %s contribution %s is positive; negative contributions break the monotonic counting argument",
				v.Agg, rule.Head[v.AggIdx]))
		}
	}
	for _, rule := range v.RecRules {
		label := ruleLabel(v, rule)
		if len(rule.RecSources) != 1 {
			t.inconclusive(v.Name, label, "non-linear rule: more than one recursive reference")
			continue
		}
		rec := rule.RecSources[0]
		head := rule.Head[v.AggIdx]
		switch {
		case isAggCol(head, rec, v.AggIdx):
			// Identity propagation (Management, CountPaths).
		case isPositiveScale(head, rec, v.AggIdx):
			// Positive scaling (MLM's B * 0.5).
		case !refsCol(head, rec, v.AggIdx):
			// A fresh contribution per derivation; must be positive.
			if !positiveContribution(head, rule, v.Agg) {
				t.inconclusive(v.Name, label, fmt.Sprintf(
					"cannot prove the %s contribution %s is positive", v.Agg, head))
			}
		default:
			t.inconclusive(v.Name, label, fmt.Sprintf(
				"head transform %s is neither the running %s nor a positively scaled copy of it", head, v.Agg))
		}
		for ci, h := range rule.Head {
			if ci != v.AggIdx && refsCol(h, rec, v.AggIdx) {
				t.inconclusive(v.Name, label, fmt.Sprintf(
					"group column %q reads the running %s value", v.Schema.Columns[ci].Name, v.Agg))
			}
		}
		// With positive contributions the running total only grows.
		for _, c := range rule.Conjuncts {
			switch outcome, msg := judgeCondition(c, rec, v.AggIdx, true); outcome {
			case condRefuted:
				t.refute(v.Name, label, msg)
			case condInconclusive:
				t.inconclusive(v.Name, label, msg)
			}
		}
	}
	return t.finish(r, v, fmt.Sprintf(
		"monotonic %s() certified statically: contributions are positive and propagate by identity or positive scaling (Section 3's monotonic counting argument)", v.Agg))
}

func isAggCol(e expr.Expr, rec, aggIdx int) bool {
	c, ok := e.(*expr.Col)
	return ok && c.Input == rec && c.Idx == aggIdx
}

// isPositiveScale recognizes agg * k and k * agg for a positive literal k.
func isPositiveScale(e expr.Expr, rec, aggIdx int) bool {
	b, ok := e.(*expr.Bin)
	if !ok || b.Op != ast.OpMul {
		return false
	}
	if isAggCol(b.L, rec, aggIdx) {
		return litSign(b.R) == +1
	}
	if isAggCol(b.R, rec, aggIdx) {
		return litSign(b.L) == +1
	}
	return false
}

// positiveContribution reports whether a contribution expression is
// provably positive under the aggregate's contribution semantics: numeric
// literals must be > 0; for count(), non-numeric contributions count as 1
// each (Party Attendance counts friend names), which is positive.
func positiveContribution(e expr.Expr, rule *analyze.Rule, kind types.AggKind) bool {
	if l, ok := e.(*expr.Lit); ok {
		return l.V.IsNumeric() && l.V.AsFloat() > 0
	}
	if kind == types.AggCount {
		schemas := make([]types.Schema, len(rule.Sources))
		for i, s := range rule.Sources {
			schemas[i] = s.Schema
		}
		if expr.InferKind(e, schemas) == types.KindString {
			return true
		}
	}
	return false
}

// lintTermination flags count/sum recursion over potentially cyclic
// sources (RV010): unlike min/max, additive aggregates never converge on a
// cycle — every loop adds another contribution — and the engine only
// aborts after exhausting its iteration budget.
func lintTermination(r *Report, clique *analyze.Clique) {
	for _, v := range clique.Views {
		if !v.Agg.Additive() || len(v.RecRules) == 0 {
			continue
		}
		joined := map[string]bool{}
		var names []string
		for _, rule := range v.RecRules {
			for _, s := range rule.Sources {
				if s.Kind != analyze.SourceRec && !joined[s.Binding] {
					joined[s.Binding] = true
					names = append(names, s.Binding)
				}
			}
		}
		through := ""
		if len(names) > 0 {
			through = " through " + joinNames(names)
		}
		r.add(Diagnostic{
			Code: "RV010", Severity: SeverityWarning, View: v.Name,
			Message: fmt.Sprintf("%s() recursion%s diverges if the underlying derivation graph is cyclic: additive aggregates accumulate around a loop forever and only the engine's iteration/row guard stops them", v.Agg, through),
			Hint:    "verify the joined source is acyclic (a DAG), or reformulate with a min/max head, which converges on cycles",
		})
	}
}

func joinNames(names []string) string {
	if len(names) == 1 {
		return names[0]
	}
	return names[0] + ", " + joinNames(names[1:])
}
