package vet

import (
	"strings"
	"testing"

	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/internal/types"
	"github.com/rasql/rasql-go/queries"
)

// paperCatalog builds a catalog holding every base table the paper queries
// reference (schemas only; vet never reads rows).
func paperCatalog() *catalog.Catalog {
	cat := catalog.New()
	for _, r := range []*relation.Relation{
		relation.New("edge", gen.EdgeSchema()),
		relation.New("report", types.NewSchema(
			types.Col("Emp", types.KindInt), types.Col("Mgr", types.KindInt))),
		relation.New("sales", types.NewSchema(
			types.Col("M", types.KindInt), types.Col("P", types.KindFloat))),
		relation.New("sponsor", types.NewSchema(
			types.Col("M1", types.KindInt), types.Col("M2", types.KindInt))),
		relation.New("inter", types.NewSchema(
			types.Col("S", types.KindInt), types.Col("E", types.KindInt))),
		relation.New("organizer", types.NewSchema(
			types.Col("OrgName", types.KindString))),
		relation.New("friend", types.NewSchema(
			types.Col("Pname", types.KindString), types.Col("Fname", types.KindString))),
		relation.New("shares", types.NewSchema(
			types.Col("By", types.KindString), types.Col("Of", types.KindString),
			types.Col("Percent", types.KindInt))),
		relation.New("rel", types.NewSchema(
			types.Col("Parent", types.KindInt), types.Col("Child", types.KindInt))),
		relation.New("basic", types.NewSchema(
			types.Col("Part", types.KindInt), types.Col("Days", types.KindInt))),
		relation.New("assbl", types.NewSchema(
			types.Col("Part", types.KindInt), types.Col("Spart", types.KindInt))),
	} {
		if err := cat.Register(r); err != nil {
			panic(err)
		}
	}
	return cat
}

func vetQuery(t *testing.T, src string) *Report {
	t.Helper()
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyze.Statements(stmts, paperCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(prog)
}

func hasCode(r *Report, code string) bool {
	for _, d := range r.Diagnostics {
		if d.Code == code {
			return true
		}
	}
	return false
}

// TestPaperQueryVerdicts pins the static PreM verdict of every paper
// query: the endo-min/max queries and the positive-contribution
// count/sum queries certify without executing anything; MLM's base
// contribution has unknown sign and the mutually recursive examples fall
// outside the recognized patterns; set-semantics queries have no aggregate
// to certify.
func TestPaperQueryVerdicts(t *testing.T) {
	cases := []struct {
		name, src string
		want      Verdict
	}{
		{"SSSP", queries.SSSP, VerdictCertified},
		{"CC", queries.CC, VerdictCertified},
		{"CCLabels", queries.CCLabels, VerdictCertified},
		{"APSP", queries.APSP, VerdictCertified},
		{"Delivery", queries.Delivery, VerdictCertified},
		{"Coalesce", queries.Coalesce, VerdictCertified},
		{"CountPaths", queries.CountPaths, VerdictCertified},
		{"Management", queries.Management, VerdictCertified},
		{"MLM", queries.MLM, VerdictInconclusive},
		{"Party", queries.Party, VerdictInconclusive},
		{"CompanyControl", queries.CompanyControl, VerdictInconclusive},
		{"TC", queries.TC, VerdictNotApplicable},
		{"Reach", queries.Reach, VerdictNotApplicable},
		{"SG", queries.SG, VerdictNotApplicable},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep := vetQuery(t, c.src)
			if got := rep.Verdict(); got != c.want {
				t.Fatalf("verdict = %v, want %v\n%s", got, c.want, rep)
			}
			if c.want == VerdictCertified && !hasCode(rep, "RV001") {
				t.Errorf("certified without an RV001 diagnostic\n%s", rep)
			}
			if c.want == VerdictCertified && rep.HasErrors() {
				t.Errorf("certified query has error diagnostics\n%s", rep)
			}
			if c.want == VerdictInconclusive && !hasCode(rep, "RV003") {
				t.Errorf("inconclusive without an RV003 diagnostic\n%s", rep)
			}
		})
	}
}

// TestRefutedPatterns seeds the three counter-patterns — an
// order-reversing head, a negatively scaled head, and an anti-monotone
// filter — and asserts each is refuted with RV002.
func TestRefutedPatterns(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"order-reversing head", `
WITH recursive path (Dst, min() AS Cost) AS
    (SELECT 1, 0) UNION
    (SELECT edge.Dst, edge.Cost - path.Cost
     FROM path, edge
     WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path`},
		{"negative scale head", `
WITH recursive waitfor(Part, max() as Days) AS
    (SELECT Part, Days FROM basic) UNION
    (SELECT assbl.Part, waitfor.Days * -1
     FROM assbl, waitfor
     WHERE assbl.Spart = waitfor.Part)
SELECT Part, Days FROM waitfor`},
		{"anti-monotone filter", `
WITH recursive path (Dst, min() AS Cost) AS
    (SELECT 1, 0) UNION
    (SELECT edge.Dst, path.Cost + edge.Cost
     FROM path, edge
     WHERE path.Dst = edge.Src AND path.Cost >= 5)
SELECT Dst, Cost FROM path`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep := vetQuery(t, c.src)
			if got := rep.Verdict(); got != VerdictRefuted {
				t.Fatalf("verdict = %v, want refuted\n%s", got, rep)
			}
			if !hasCode(rep, "RV002") {
				t.Errorf("refuted without an RV002 diagnostic\n%s", rep)
			}
			if !rep.HasErrors() {
				t.Errorf("refutation is not error severity\n%s", rep)
			}
		})
	}
}

// TestInconclusivePatterns covers shapes the certifier declines to judge:
// an aggregate-dependent group column, a filter pinning the aggregate with
// =, and a head multiplying the aggregate by a non-constant.
func TestInconclusivePatterns(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"aggregate in group column", `
WITH recursive path (Dst, min() AS Cost) AS
    (SELECT 1, 0) UNION
    (SELECT path.Cost, path.Cost + edge.Cost
     FROM path, edge
     WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path`},
		{"equality filter on aggregate", `
WITH recursive path (Dst, min() AS Cost) AS
    (SELECT 1, 0) UNION
    (SELECT edge.Dst, path.Cost + edge.Cost
     FROM path, edge
     WHERE path.Dst = edge.Src AND path.Cost = 3)
SELECT Dst, Cost FROM path`},
		{"non-constant scale", `
WITH recursive path (Dst, min() AS Cost) AS
    (SELECT 1, 1) UNION
    (SELECT edge.Dst, path.Cost * edge.Cost
     FROM path, edge
     WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep := vetQuery(t, c.src)
			if got := rep.Verdict(); got != VerdictInconclusive {
				t.Fatalf("verdict = %v, want inconclusive\n%s", got, rep)
			}
			if !hasCode(rep, "RV003") {
				t.Errorf("inconclusive without an RV003 diagnostic\n%s", rep)
			}
		})
	}
}

// TestTerminationLint asserts RV010 fires on additive recursion (which
// diverges on cyclic inputs) and stays quiet on min/max.
func TestTerminationLint(t *testing.T) {
	for _, src := range []string{queries.CountPaths, queries.Management, queries.MLM} {
		if rep := vetQuery(t, src); !hasCode(rep, "RV010") {
			t.Errorf("additive recursion missing RV010\n%s", rep)
		}
	}
	for _, src := range []string{queries.SSSP, queries.Delivery} {
		if rep := vetQuery(t, src); hasCode(rep, "RV010") {
			t.Errorf("min/max recursion flagged RV010\n%s", rep)
		}
	}
}

// TestCoPartitionLint: SG joins the recursive view on two different
// columns, so its delta can never stay co-partitioned (RV020); SSSP and
// friends join on the full group key and stay quiet.
func TestCoPartitionLint(t *testing.T) {
	if rep := vetQuery(t, queries.SG); !hasCode(rep, "RV020") {
		t.Errorf("SG missing RV020\n%s", rep)
	}
	for _, src := range []string{queries.SSSP, queries.CC, queries.Management,
		queries.Delivery, queries.Reach, queries.TC, queries.Coalesce} {
		if rep := vetQuery(t, src); hasCode(rep, "RV020") || hasCode(rep, "RV021") {
			t.Errorf("unexpected co-partition diagnostic\n%s", rep)
		}
	}
}

// narrowedKeyQuery joins the recursive view on only the second of its two
// group columns, in both recursive rules: the default partition key (the
// full group-by) is never covered, but narrowing to column 1 lets both
// rules run co-partitioned.
const narrowedKeyQuery = `
WITH recursive p (A, B, min() AS C) AS
    (SELECT Src, Dst, Cost FROM edge) UNION
    (SELECT p.A, edge.Dst, p.C + edge.Cost
     FROM p, edge WHERE p.B = edge.Src) UNION
    (SELECT edge.Src, p.B, p.C + edge.Cost
     FROM p, edge WHERE p.B = edge.Dst)
SELECT A, B, C FROM p`

// TestSuggestPartitionKey pins the narrowing analysis on the contrived
// two-rule query above and its RV021 diagnostic.
func TestSuggestPartitionKey(t *testing.T) {
	stmts, err := parser.Parse(narrowedKeyQuery)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyze.Statements(stmts, paperCatalog())
	if err != nil {
		t.Fatal(err)
	}
	v := prog.Clique.Views[0]
	alt := SuggestPartitionKey(v)
	if len(alt) != 1 || alt[0] != 1 {
		t.Fatalf("SuggestPartitionKey = %v, want [1]", alt)
	}
	rep := Analyze(prog)
	if !hasCode(rep, "RV021") {
		t.Errorf("missing RV021\n%s", rep)
	}
	// Queries already co-partitioned on the default key must not narrow.
	for _, src := range []string{queries.SSSP, queries.Management, queries.MLM} {
		stmts, err := parser.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := analyze.Statements(stmts, paperCatalog())
		if err != nil {
			t.Fatal(err)
		}
		if alt := SuggestPartitionKey(prog.Clique.Views[0]); alt != nil {
			t.Errorf("unexpected narrowing %v for %.40s...", alt, src)
		}
	}
}

// TestHygieneLints covers the cartesian-product, unused-view, and
// group-by shape lints.
func TestHygieneLints(t *testing.T) {
	t.Run("RV030 cartesian rule", func(t *testing.T) {
		rep := vetQuery(t, `
WITH recursive reach (Dst) AS
    (SELECT a.Src FROM edge a, edge b) UNION
    (SELECT edge.Dst FROM reach, edge WHERE reach.Dst = edge.Src)
SELECT Dst FROM reach`)
		if !hasCode(rep, "RV030") {
			t.Errorf("missing RV030\n%s", rep)
		}
	})
	t.Run("RV030 cartesian final query", func(t *testing.T) {
		rep := vetQuery(t, `
WITH recursive reach (Dst) AS
    (SELECT 1) UNION
    (SELECT edge.Dst FROM reach, edge WHERE reach.Dst = edge.Src)
SELECT reach.Dst, edge.Dst FROM reach, edge`)
		if !hasCode(rep, "RV030") {
			t.Errorf("missing RV030\n%s", rep)
		}
	})
	t.Run("RV031 unused view", func(t *testing.T) {
		rep := vetQuery(t, `
WITH recursive reach (Dst) AS
    (SELECT 1) UNION
    (SELECT edge.Dst FROM reach, edge WHERE reach.Dst = edge.Src),
dead(T) AS (SELECT Src FROM edge)
SELECT Dst FROM reach`)
		if !hasCode(rep, "RV031") {
			t.Errorf("missing RV031\n%s", rep)
		}
	})
	t.Run("RV040 empty group-by", func(t *testing.T) {
		rep := vetQuery(t, `
WITH recursive m (min() AS C) AS
    (SELECT Cost FROM edge) UNION
    (SELECT m.C + 1 FROM m)
SELECT C FROM m`)
		if !hasCode(rep, "RV040") {
			t.Errorf("missing RV040\n%s", rep)
		}
	})
	t.Run("RV041 constant group column", func(t *testing.T) {
		rep := vetQuery(t, `
WITH recursive p (G, min() AS C) AS
    (SELECT 1, Cost FROM edge) UNION
    (SELECT 1, p.C + edge.Cost FROM p, edge WHERE p.G = edge.Src)
SELECT G, C FROM p`)
		if !hasCode(rep, "RV041") {
			t.Errorf("missing RV041\n%s", rep)
		}
	})
	t.Run("RV050 schedule-dependent group key", func(t *testing.T) {
		rep := vetQuery(t, `
WITH recursive sp (Dst, min() AS Cost) AS
    (SELECT 0, 0) UNION
    (SELECT sp.Cost, sp.Cost + edge.Cost FROM sp, edge WHERE sp.Dst = edge.Src)
SELECT Dst, Cost FROM sp`)
		if !hasCode(rep, "RV050") {
			t.Errorf("missing RV050\n%s", rep)
		}
	})
	t.Run("clean queries stay quiet", func(t *testing.T) {
		for _, src := range []string{queries.SSSP, queries.Delivery, queries.TC} {
			rep := vetQuery(t, src)
			for _, code := range []string{"RV030", "RV031", "RV040", "RV041", "RV050"} {
				if hasCode(rep, code) {
					t.Errorf("unexpected %s\n%s", code, rep)
				}
			}
		}
	})
}

// TestDiagnosticString pins the rendered diagnostic format.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Code: "RV002", Severity: SeverityError, View: "path", Rule: "recursive rule 1",
		Message: "bad", Hint: "fix it",
	}
	got := d.String()
	want := "RV002 error [path recursive rule 1]: bad\n    hint: fix it"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	rep := &Report{}
	rep.add(d)
	rep.Views = append(rep.Views, ViewVerdict{View: "path", Verdict: VerdictRefuted})
	if !strings.Contains(rep.String(), "PreM[path]: refuted") {
		t.Errorf("report rendering missing verdict line:\n%s", rep.String())
	}
	if rep.VerdictFor("PATH") != VerdictRefuted {
		t.Error("VerdictFor is not case-insensitive")
	}
}
