package vet

// CodeDoc pairs one stable diagnostic code with a one-line description —
// the registry `rasql-lint -codes` prints alongside the RL-series, so every
// code the toolchain can emit is discoverable from one place.
type CodeDoc struct {
	Code string
	Doc  string
}

// Codes lists every RV-series code the vet passes can emit, in code order.
// Keep in sync with the Diagnostic{Code: ...} literals in this package
// (pinned by TestCodesRegistryComplete).
func Codes() []CodeDoc {
	return []CodeDoc{
		{"RV001", "PreM certified: the aggregate provably pushes inside the fixpoint (info)"},
		{"RV002", "PreM refuted: a rule matches a counter-pattern; eager aggregation would change results"},
		{"RV003", "PreM inconclusive: no known monotone pattern applies, the engine post-aggregates"},
		{"RV010", "count/sum recursion over a potentially cyclic source may diverge"},
		{"RV020", "recursive join keys do not cover the partition key: the delta reshuffles every iteration"},
		{"RV021", "partition key narrowed so every recursive rule joins co-partitioned (info)"},
		{"RV030", "rule body sources not connected by join predicates: cartesian product"},
		{"RV031", "CTE or recursive view is defined but its result is never read"},
		{"RV040", "implicit group-by is empty: every derivation folds into one global aggregate group"},
		{"RV041", "group column is the same constant in every rule: degenerate group-by (info)"},
		{"RV050", "group key computed from an in-flight aggregate: the fixpoint is not confluent"},
	}
}
