package exec

import (
	"testing"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/internal/types"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	users := relation.New("users", types.NewSchema(
		types.Col("Id", types.KindInt), types.Col("Name", types.KindString),
		types.Col("Age", types.KindInt)))
	for _, u := range []struct {
		id   int64
		name string
		age  int64
	}{{1, "ann", 30}, {2, "bob", 25}, {3, "cat", 30}, {4, "dan", 40}} {
		users.Append(types.Row{types.Int(u.id), types.Str(u.name), types.Int(u.age)})
	}
	orders := relation.New("orders", types.NewSchema(
		types.Col("UserId", types.KindInt), types.Col("Amount", types.KindFloat)))
	for _, o := range [][2]float64{{1, 10}, {1, 20}, {2, 5}, {3, 7}, {9, 99}} {
		orders.Append(types.Row{types.Int(int64(o[0])), types.Float(o[1])})
	}
	if err := cat.Register(users); err != nil {
		panic(err)
	}
	if err := cat.Register(orders); err != nil {
		panic(err)
	}
	return cat
}

func run(t *testing.T, src string) *relation.Relation {
	t.Helper()
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyze.Statements(stmts, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Query(prog.Final, NewContext())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSelectFilterProject(t *testing.T) {
	out := run(t, `SELECT Name FROM users WHERE Age > 26`)
	if out.Len() != 3 {
		t.Errorf("rows = %d, want 3 (ann, cat, dan)", out.Len())
	}
}

func TestHashJoin(t *testing.T) {
	out := run(t, `SELECT users.Name, orders.Amount FROM users, orders WHERE users.Id = orders.UserId`)
	if out.Len() != 4 {
		t.Errorf("join rows = %d, want 4", out.Len())
	}
}

func TestThetaJoinFallsBackToNestedLoop(t *testing.T) {
	out := run(t, `SELECT a.Id, b.Id FROM users a, users b WHERE a.Age < b.Age`)
	// pairs with strictly smaller age: bob< everyone(3), ann<dan, cat<dan → 5
	if out.Len() != 5 {
		t.Errorf("theta join rows = %d, want 5", out.Len())
	}
}

func TestCrossJoin(t *testing.T) {
	out := run(t, `SELECT a.Id, b.UserId FROM users a, orders b`)
	if out.Len() != 20 {
		t.Errorf("cross join rows = %d, want 20", out.Len())
	}
}

func TestGroupByHaving(t *testing.T) {
	out := run(t, `SELECT Age, count(*) FROM users GROUP BY Age HAVING count(*) > 1`)
	if out.Len() != 1 || !out.Rows[0].Equal(types.Row{types.Int(30), types.Int(2)}) {
		t.Errorf("grouped = %v", out)
	}
}

func TestAggregates(t *testing.T) {
	out := run(t, `SELECT min(Age), max(Age), sum(Age), count(*), avg(Age) FROM users`)
	want := types.Row{types.Int(25), types.Int(40), types.Int(125), types.Int(4), types.Float(31.25)}
	if out.Len() != 1 || !out.Rows[0].Equal(want) {
		t.Errorf("aggregates = %v, want %v", out.Rows[0], want)
	}
}

func TestCountDistinct(t *testing.T) {
	out := run(t, `SELECT count(distinct Age) FROM users`)
	if !out.Rows[0][0].Equal(types.Int(3)) {
		t.Errorf("count distinct = %v", out.Rows[0][0])
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	out := run(t, `SELECT count(*), sum(Age) FROM users WHERE Age > 100`)
	if out.Len() != 1 {
		t.Fatalf("global aggregate must yield one row, got %d", out.Len())
	}
	if !out.Rows[0][0].Equal(types.Int(0)) || !out.Rows[0][1].IsNull() {
		t.Errorf("empty aggregate = %v", out.Rows[0])
	}
}

func TestDistinct(t *testing.T) {
	out := run(t, `SELECT distinct Age FROM users`)
	if out.Len() != 3 {
		t.Errorf("distinct rows = %d", out.Len())
	}
}

func TestOrderByLimit(t *testing.T) {
	out := run(t, `SELECT Name, Age FROM users ORDER BY Age DESC, Name LIMIT 2`)
	if out.Len() != 2 || out.Rows[0][0].S != "dan" || out.Rows[1][0].S != "ann" {
		t.Errorf("ordered = %v", out)
	}
}

func TestUnionDedupsAndUnionAllKeeps(t *testing.T) {
	out := run(t, `(SELECT Age FROM users) UNION (SELECT Age FROM users)`)
	if out.Len() != 3 {
		t.Errorf("UNION rows = %d, want 3 distinct ages", out.Len())
	}
	out = run(t, `(SELECT Age FROM users) UNION ALL (SELECT Age FROM users)`)
	if out.Len() != 8 {
		t.Errorf("UNION ALL rows = %d, want 8", out.Len())
	}
}

func TestLiteralSelect(t *testing.T) {
	out := run(t, `SELECT 1, 'x', 2.5`)
	if out.Len() != 1 || !out.Rows[0].Equal(types.Row{types.Int(1), types.Str("x"), types.Float(2.5)}) {
		t.Errorf("literal select = %v", out)
	}
}

func TestViewMaterializationCached(t *testing.T) {
	cat := testCatalog()
	stmts, err := parser.Parse(`
		CREATE VIEW grownups(N) AS (SELECT Name FROM users WHERE Age > 26);
		SELECT a.N FROM grownups a, grownups b WHERE a.N = b.N`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyze.Statements(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewContext()
	out, err := Query(prog.Final, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Errorf("self-joined view rows = %d", out.Len())
	}
	if len(ctx.viewCache) != 1 {
		t.Errorf("view should be materialized once, cache = %d", len(ctx.viewCache))
	}
}

func TestMissingRecResultErrors(t *testing.T) {
	cat := testCatalog()
	// Construct a query over a recursive view but evaluate the final
	// query without binding fixpoint results.
	stmts, err := parser.Parse(`
		WITH recursive v (Id) AS
		    (SELECT Id FROM users) UNION
		    (SELECT users.Id FROM v, users WHERE v.Id = users.Id)
		SELECT Id FROM v`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyze.Statements(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Query(prog.Final, NewContext()); err == nil {
		t.Error("final query over unbound recursive view must error")
	}
}

func TestExpressionArithmetic(t *testing.T) {
	out := run(t, `SELECT Amount * 2 + 1 FROM orders WHERE UserId = 2`)
	if out.Len() != 1 || !out.Rows[0][0].Equal(types.Float(11)) {
		t.Errorf("arith = %v", out)
	}
}

func TestNotAndOr(t *testing.T) {
	out := run(t, `SELECT Name FROM users WHERE NOT (Age = 30) AND (Id = 2 OR Id = 4)`)
	if out.Len() != 2 {
		t.Errorf("rows = %d, want bob and dan", out.Len())
	}
}

func TestJoinOnSyntax(t *testing.T) {
	out := run(t, `SELECT users.Name, orders.Amount
		FROM users JOIN orders ON users.Id = orders.UserId
		WHERE orders.Amount > 6`)
	if out.Len() != 3 {
		t.Errorf("JOIN ON rows = %d, want 3", out.Len())
	}
	out = run(t, `SELECT users.Name FROM users INNER JOIN orders ON users.Id = orders.UserId`)
	if out.Len() != 4 {
		t.Errorf("INNER JOIN rows = %d, want 4", out.Len())
	}
}

func TestBetweenAndIn(t *testing.T) {
	out := run(t, `SELECT Name FROM users WHERE Age BETWEEN 26 AND 35`)
	if out.Len() != 2 { // ann, cat
		t.Errorf("BETWEEN rows = %d, want 2", out.Len())
	}
	out = run(t, `SELECT Name FROM users WHERE Age NOT BETWEEN 26 AND 35`)
	if out.Len() != 2 { // bob, dan
		t.Errorf("NOT BETWEEN rows = %d, want 2", out.Len())
	}
	out = run(t, `SELECT Name FROM users WHERE Id IN (1, 3, 99)`)
	if out.Len() != 2 {
		t.Errorf("IN rows = %d, want 2", out.Len())
	}
	out = run(t, `SELECT Name FROM users WHERE Id NOT IN (1, 3)`)
	if out.Len() != 2 {
		t.Errorf("NOT IN rows = %d, want 2", out.Len())
	}
}

func TestDerivedTable(t *testing.T) {
	out := run(t, `SELECT g.Age, g.N FROM
		(SELECT Age, count(*) N FROM users GROUP BY Age) g
		WHERE g.N > 1`)
	if out.Len() != 1 || !out.Rows[0].Equal(types.Row{types.Int(30), types.Int(2)}) {
		t.Errorf("derived table rows = %v", out)
	}
	// Derived table joined with a base table.
	out = run(t, `SELECT users.Name FROM users
		JOIN (SELECT UserId, sum(Amount) Total FROM orders GROUP BY UserId) t
		ON users.Id = t.UserId
		WHERE t.Total > 9`)
	if out.Len() != 1 || out.Rows[0][0].S != "ann" {
		t.Errorf("derived join = %v", out)
	}
}
