// Package exec evaluates analyzed (non-recursive) queries locally: FROM
// joins with hash-join acceleration, WHERE filtering with predicate
// pushdown, grouping with the full aggregate set, unions, DISTINCT, ORDER
// BY and LIMIT. It materializes named views on demand and resolves
// recursive-view references through a caller-supplied result map, so final
// queries over fixpoint results run here too. It also serves as the
// single-node reference implementation the distributed engine is
// property-tested against.
package exec

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/expr"
	"github.com/rasql/rasql-go/internal/types"
)

// Context supplies table-independent state for evaluation.
type Context struct {
	// RecResults maps recursive view names (lower-cased) to their
	// computed fixpoint relations.
	RecResults map[string]*relation.Relation
	// viewCache memoizes materialized named views.
	viewCache map[string]*relation.Relation
}

// NewContext creates an empty evaluation context.
func NewContext() *Context {
	return &Context{RecResults: map[string]*relation.Relation{}, viewCache: map[string]*relation.Relation{}}
}

// SetRecResult registers a fixpoint result for a recursive view.
func (c *Context) SetRecResult(name string, rel *relation.Relation) {
	c.RecResults[strings.ToLower(name)] = rel
}

// SourceRelation resolves one FROM source to a concrete relation.
func (c *Context) SourceRelation(s analyze.Source) (*relation.Relation, error) {
	switch s.Kind {
	case analyze.SourceTable:
		return s.Rel, nil
	case analyze.SourceView:
		named := s.ViewName != ""
		key := strings.ToLower(s.ViewName)
		if named {
			if r, ok := c.viewCache[key]; ok {
				return r, nil
			}
		}
		r, err := Query(s.ViewQuery, c)
		if err != nil {
			return nil, fmt.Errorf("materialize view %s: %w", s.Binding, err)
		}
		r.Name = s.Binding
		r.Schema = s.Schema
		if named {
			c.viewCache[key] = r
		}
		return r, nil
	case analyze.SourceRec:
		r, ok := c.RecResults[strings.ToLower(s.Rec.Name)]
		if !ok {
			return nil, fmt.Errorf("exec: recursive view %q has no computed result", s.Rec.Name)
		}
		return r, nil
	default:
		return nil, fmt.Errorf("exec: unknown source kind %d", s.Kind)
	}
}

// Query evaluates an analyzed query to a relation.
func Query(q *analyze.Query, ctx *Context) (*relation.Relation, error) {
	out, err := evalCore(q, ctx)
	if err != nil {
		return nil, err
	}
	for i, u := range q.Unions {
		ur, err := evalCore(u, ctx)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ur.Rows...)
		if !q.All[i] {
			out.Dedup()
		}
	}
	if q.Distinct {
		out.Dedup()
	}
	if len(q.OrderBy) > 0 {
		keys := q.OrderBy
		sort.SliceStable(out.Rows, func(i, j int) bool {
			for _, k := range keys {
				c := out.Rows[i][k.Idx].Compare(out.Rows[j][k.Idx])
				if c == 0 {
					continue
				}
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if q.Limit >= 0 && len(out.Rows) > q.Limit {
		out.Rows = out.Rows[:q.Limit]
	}
	return out, nil
}

func evalCore(q *analyze.Query, ctx *Context) (*relation.Relation, error) {
	envs, err := JoinSources(q.Sources, q.Conjuncts, ctx)
	if err != nil {
		return nil, err
	}
	out := relation.New("", q.Schema)
	if !q.Grouped {
		for _, env := range envs {
			row := make(types.Row, len(q.Items))
			for i, e := range q.Items {
				row[i] = e.Eval(env)
			}
			out.Append(row)
		}
		return out, nil
	}

	// Grouped evaluation: bucket by group key, accumulate aggregates,
	// then evaluate post-expressions over [groups..., aggs...].
	type group struct {
		keys types.Row
		accs []*aggAcc
	}
	groups := map[string]*group{}
	var order []string
	for _, env := range envs {
		keys := make(types.Row, len(q.GroupExprs))
		for i, g := range q.GroupExprs {
			keys[i] = g.Eval(env)
		}
		k := types.RowKeyString(keys)
		grp, ok := groups[k]
		if !ok {
			grp = &group{keys: keys, accs: make([]*aggAcc, len(q.AggCalls))}
			for i := range q.AggCalls {
				grp.accs[i] = newAggAcc(q.AggCalls[i])
			}
			groups[k] = grp
			order = append(order, k)
		}
		for i := range grp.accs {
			grp.accs[i].add(env)
		}
	}
	// A global aggregate over zero rows still yields one output row
	// (count=0 etc.), matching SQL semantics.
	if len(groups) == 0 && len(q.GroupExprs) == 0 {
		grp := &group{accs: make([]*aggAcc, len(q.AggCalls))}
		for i := range q.AggCalls {
			grp.accs[i] = newAggAcc(q.AggCalls[i])
		}
		groups[""] = grp
		order = append(order, "")
	}
	for _, k := range order {
		grp := groups[k]
		synth := make(types.Row, 0, len(grp.keys)+len(grp.accs))
		synth = append(synth, grp.keys...)
		for _, a := range grp.accs {
			synth = append(synth, a.result())
		}
		env := expr.Env{synth}
		if q.Having != nil && !q.Having.Eval(env).Truthy() {
			continue
		}
		row := make(types.Row, len(q.PostItems))
		for i, e := range q.PostItems {
			row[i] = e.Eval(env)
		}
		out.Append(row)
	}
	return out, nil
}

// aggAcc accumulates one aggregate call.
type aggAcc struct {
	call analyze.AggCall
	cur  types.Value
	n    int64
	sum  types.Value
	seen map[string]struct{}
	any  bool
}

func newAggAcc(c analyze.AggCall) *aggAcc {
	a := &aggAcc{call: c, sum: types.Int(0)}
	if c.Distinct {
		a.seen = map[string]struct{}{}
	}
	return a
}

func (a *aggAcc) add(env expr.Env) {
	var v types.Value
	if a.call.Star {
		v = types.Int(1)
	} else {
		v = a.call.Arg.Eval(env)
		if v.IsNull() {
			return
		}
	}
	if a.seen != nil {
		k := types.RowKeyString(types.Row{v})
		if _, dup := a.seen[k]; dup {
			return
		}
		a.seen[k] = struct{}{}
	}
	a.n++
	switch a.call.Kind {
	case types.AggMin:
		if !a.any || v.Compare(a.cur) < 0 {
			a.cur = v
		}
	case types.AggMax:
		if !a.any || v.Compare(a.cur) > 0 {
			a.cur = v
		}
	case types.AggSum, types.AggAvg:
		a.sum = a.sum.Add(v)
	}
	a.any = true
}

func (a *aggAcc) result() types.Value {
	switch a.call.Kind {
	case types.AggCount:
		return types.Int(a.n)
	case types.AggSum:
		if !a.any {
			return types.Null()
		}
		return a.sum
	case types.AggAvg:
		if a.n == 0 {
			return types.Null()
		}
		return types.Float(a.sum.AsFloat() / float64(a.n))
	default: // min/max
		if !a.any {
			return types.Null()
		}
		return a.cur
	}
}

// JoinSources materializes the join of the FROM sources under the given
// conjuncts, returning one environment per result tuple. Conjuncts are
// applied as soon as all their inputs are bound (predicate pushdown), and
// equi-join conjuncts drive hash joins; remaining combinations fall back to
// nested-loop evaluation.
func JoinSources(sources []analyze.Source, conjuncts []expr.Expr, ctx *Context) ([]expr.Env, error) {
	rels := make([]*relation.Relation, len(sources))
	for i, s := range sources {
		r, err := ctx.SourceRelation(s)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	rows := make([][]types.Row, len(sources))
	for i, r := range rels {
		rows[i] = r.Rows
	}
	return JoinRows(len(sources), rows, conjuncts), nil
}

// JoinRows is JoinSources over pre-resolved per-source row slices; the
// fixpoint engine uses it with delta/all substitutions.
func JoinRows(n int, rows [][]types.Row, conjuncts []expr.Expr) []expr.Env {
	if n == 0 {
		return []expr.Env{make(expr.Env, 0)}
	}
	pending := make([]pend, len(conjuncts))
	for i, c := range conjuncts {
		pending[i] = pend{e: c, inputs: expr.Inputs(c)}
	}
	applied := make([]bool, len(conjuncts))

	bound := map[int]bool{0: true}
	envs := make([]expr.Env, 0, len(rows[0]))
	for _, r := range rows[0] {
		env := make(expr.Env, n)
		env[0] = r
		envs = append(envs, env)
	}
	envs = applyReady(envs, pending, applied, bound)

	for next := 1; next < n; next++ {
		bound[next] = true
		// Find an equi-join conjunct connecting the bound set to next.
		var probeCols, buildCols []int
		for i, p := range pending {
			if applied[i] {
				continue
			}
			ej, ok := expr.AsEquiJoin(p.e)
			if !ok {
				continue
			}
			var boundSide, boundCol, newCol int
			switch {
			case ej.RightInput == next && bound[ej.LeftInput] && ej.LeftInput != next:
				boundSide, boundCol, newCol = ej.LeftInput, ej.LeftCol, ej.RightCol
			case ej.LeftInput == next && bound[ej.RightInput] && ej.RightInput != next:
				boundSide, boundCol, newCol = ej.RightInput, ej.RightCol, ej.LeftCol
			default:
				continue
			}
			probeCols = append(probeCols, boundSide, boundCol)
			buildCols = append(buildCols, newCol)
			applied[i] = true
		}
		if len(buildCols) > 0 {
			// Hash join on the collected key columns.
			table := make(map[string][]types.Row, len(rows[next]))
			for _, r := range rows[next] {
				table[types.KeyString(r, buildCols)] = append(table[types.KeyString(r, buildCols)], r)
			}
			var out []expr.Env
			key := make(types.Row, len(buildCols))
			for _, env := range envs {
				for i := 0; i < len(buildCols); i++ {
					key[i] = env[probeCols[2*i]][probeCols[2*i+1]]
				}
				for _, m := range table[types.RowKeyString(key)] {
					ne := make(expr.Env, n)
					copy(ne, env)
					ne[next] = m
					out = append(out, ne)
				}
			}
			envs = out
		} else {
			// Cross product; theta conjuncts apply right after.
			var out []expr.Env
			for _, env := range envs {
				for _, m := range rows[next] {
					ne := make(expr.Env, n)
					copy(ne, env)
					ne[next] = m
					out = append(out, ne)
				}
			}
			envs = out
		}
		envs = applyReady(envs, pending, applied, bound)
	}
	return envs
}

// pend is a conjunct awaiting all its inputs to be bound.
type pend struct {
	e      expr.Expr
	inputs map[int]bool
}

func applyReady(envs []expr.Env, pending []pend, applied []bool, bound map[int]bool) []expr.Env {
	for i, p := range pending {
		if applied[i] {
			continue
		}
		ready := true
		for in := range p.inputs {
			if !bound[in] {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		applied[i] = true
		kept := envs[:0]
		for _, env := range envs {
			if p.e.Eval(env).Truthy() {
				kept = append(kept, env)
			}
		}
		envs = kept
	}
	return envs
}
