package analyze

import (
	"strings"
	"testing"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/internal/types"
)

// testCatalog registers the base tables used by the paper's queries.
func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	add := func(name string, cols ...types.Column) {
		if err := cat.Register(relation.New(name, types.NewSchema(cols...))); err != nil {
			panic(err)
		}
	}
	add("edge", types.Col("Src", types.KindInt), types.Col("Dst", types.KindInt), types.Col("Cost", types.KindFloat))
	add("basic", types.Col("Part", types.KindInt), types.Col("Days", types.KindInt))
	add("assbl", types.Col("Part", types.KindInt), types.Col("Spart", types.KindInt))
	add("report", types.Col("Emp", types.KindInt), types.Col("Mgr", types.KindInt))
	add("sales", types.Col("M", types.KindInt), types.Col("P", types.KindFloat))
	add("sponsor", types.Col("M1", types.KindInt), types.Col("M2", types.KindInt))
	add("inter", types.Col("S", types.KindInt), types.Col("E", types.KindInt))
	add("organizer", types.Col("OrgName", types.KindString))
	add("friend", types.Col("Pname", types.KindString), types.Col("Fname", types.KindString))
	add("shares", types.Col("By", types.KindString), types.Col("Of", types.KindString), types.Col("Percent", types.KindInt))
	add("rel", types.Col("Parent", types.KindInt), types.Col("Child", types.KindInt))
	return cat
}

func analyzeSrc(t *testing.T, src string) *Program {
	t.Helper()
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Statements(stmts, testCatalog())
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return p
}

func TestAnalyzeSSSP(t *testing.T) {
	p := analyzeSrc(t, `
		WITH recursive path (Dst, min() AS Cost) AS
		    (SELECT 1, 0) UNION
		    (SELECT edge.Dst, path.Cost + edge.Cost
		     FROM path, edge WHERE path.Dst = edge.Src)
		SELECT Dst, Cost FROM path`)
	if p.Clique == nil || len(p.Clique.Views) != 1 {
		t.Fatal("expected one recursive view")
	}
	v := p.Clique.Views[0]
	if v.Agg != types.AggMin || v.AggIdx != 1 {
		t.Errorf("agg = %v@%d", v.Agg, v.AggIdx)
	}
	if len(v.GroupIdx) != 1 || v.GroupIdx[0] != 0 {
		t.Errorf("group idx = %v", v.GroupIdx)
	}
	if len(v.BaseRules) != 1 || len(v.RecRules) != 1 {
		t.Fatalf("rules = %d base, %d rec", len(v.BaseRules), len(v.RecRules))
	}
	if !v.BaseRules[0].NoFrom {
		t.Error("base rule should be a literal select")
	}
	// The Cost column must widen to double (base gives int 0, recursion
	// adds edge.Cost double).
	if v.Schema.Columns[1].Type != types.KindFloat {
		t.Errorf("Cost type = %v, want double", v.Schema.Columns[1].Type)
	}
	if v.Schema.Columns[0].Type != types.KindInt {
		t.Errorf("Dst type = %v, want int", v.Schema.Columns[0].Type)
	}
	rec := v.RecRules[0]
	if len(rec.RecSources) != 1 || rec.RecSources[0] != 0 {
		t.Errorf("rec sources = %v", rec.RecSources)
	}
	if len(rec.Conjuncts) != 1 {
		t.Errorf("conjuncts = %d", len(rec.Conjuncts))
	}
}

func TestAnalyzeMutualRecursionClique(t *testing.T) {
	p := analyzeSrc(t, `
		WITH recursive cshares(ByCom, OfCom, sum() AS Tot) AS
		    (SELECT By, Of, Percent FROM shares) UNION
		    (SELECT control.Com1, cshares.OfCom, cshares.Tot
		     FROM control, cshares WHERE control.Com2 = cshares.ByCom),
		recursive control(Com1, Com2) AS
		    (SELECT ByCom, OfCom FROM cshares WHERE Tot > 50)
		SELECT ByCom, OfCom, Tot FROM cshares`)
	if len(p.Clique.Views) != 2 {
		t.Fatalf("clique size = %d", len(p.Clique.Views))
	}
	cs, ctl := p.Clique.Views[0], p.Clique.Views[1]
	if cs.Agg != types.AggSum || ctl.Agg != types.AggNone {
		t.Errorf("aggs = %v, %v", cs.Agg, ctl.Agg)
	}
	// control has no base rule; its only rule reads cshares.
	if len(ctl.BaseRules) != 0 || len(ctl.RecRules) != 1 {
		t.Errorf("control rules = %d base, %d rec", len(ctl.BaseRules), len(ctl.RecRules))
	}
	// Types flow from shares through the mutual recursion.
	if ctl.Schema.Columns[0].Type != types.KindString {
		t.Errorf("control.Com1 type = %v", ctl.Schema.Columns[0].Type)
	}
	// The cshares recursive rule has two recursive sources? No — control
	// and cshares are both recursive, so both sources are recursive.
	if len(cs.RecRules[0].RecSources) != 2 {
		t.Errorf("cshares rec rule rec sources = %v", cs.RecRules[0].RecSources)
	}
}

func TestAnalyzeNonRecursiveCTETreatedAsView(t *testing.T) {
	p := analyzeSrc(t, `
		WITH helper(X) AS (SELECT Src FROM edge),
		recursive tc (Src, Dst) AS
		    (SELECT Src, Dst FROM edge) UNION
		    (SELECT tc.Src, edge.Dst FROM tc, edge WHERE tc.Dst = edge.Src)
		SELECT Src FROM tc`)
	if len(p.Clique.Views) != 1 || len(p.Clique.NonRec) != 1 {
		t.Fatalf("views = %d recursive, %d plain", len(p.Clique.Views), len(p.Clique.NonRec))
	}
	if p.Clique.NonRec[0].Name != "helper" {
		t.Errorf("plain view = %q", p.Clique.NonRec[0].Name)
	}
}

func TestAnalyzeCreateViewThenWith(t *testing.T) {
	p := analyzeSrc(t, `
		CREATE VIEW lstart(T) AS
		    (SELECT a.S FROM inter a, inter b
		     WHERE a.S <= b.E GROUP BY a.S HAVING a.S = min(b.S));
		WITH recursive coal (S, max() AS E) AS
		    (SELECT lstart.T, inter.E FROM lstart, inter WHERE lstart.T = inter.S) UNION
		    (SELECT coal.S, inter.E FROM coal, inter
		     WHERE coal.S <= inter.S AND inter.S <= coal.E)
		SELECT S, E FROM coal`)
	v := p.Clique.Views[0]
	if len(v.BaseRules) != 1 {
		t.Fatal("coal should have one base rule")
	}
	base := v.BaseRules[0]
	if base.Sources[0].Kind != SourceView || base.Sources[0].ViewName != "lstart" {
		t.Errorf("base source = %+v", base.Sources[0])
	}
	vq := base.Sources[0].ViewQuery
	if !vq.Grouped || len(vq.AggCalls) != 1 || vq.AggCalls[0].Kind != types.AggMin {
		t.Errorf("lstart query = %+v", vq)
	}
	if vq.Having == nil {
		t.Error("lstart HAVING lost")
	}
	if vq.Schema.Columns[0].Name != "T" {
		t.Errorf("view column renamed wrong: %v", vq.Schema)
	}
}

func TestAnalyzeFinalGroupedQuery(t *testing.T) {
	p := analyzeSrc(t, `
		WITH recursive waitfor(Part, Days) AS
		    (SELECT Part, Days FROM basic) UNION
		    (SELECT assbl.Part, waitfor.Days FROM assbl, waitfor
		     WHERE assbl.Spart = waitfor.Part)
		SELECT Part, max(Days) FROM waitfor GROUP BY Part`)
	f := p.Final
	if !f.Grouped || len(f.GroupExprs) != 1 || len(f.AggCalls) != 1 {
		t.Fatalf("final = %+v", f)
	}
	if f.AggCalls[0].Kind != types.AggMax {
		t.Errorf("agg = %v", f.AggCalls[0].Kind)
	}
	if f.Sources[0].Kind != SourceRec {
		t.Error("final should read the recursive view")
	}
	if f.Schema.Columns[1].Type != types.KindInt {
		t.Errorf("max(Days) type = %v", f.Schema.Columns[1].Type)
	}
}

func TestAnalyzeCountDistinct(t *testing.T) {
	p := analyzeSrc(t, `
		WITH recursive cc (Src, min() AS CmpId) AS
		    (SELECT Src, Src FROM edge) UNION
		    (SELECT edge.Dst, cc.CmpId FROM cc, edge WHERE cc.Src = edge.Src)
		SELECT count(distinct cc.CmpId) FROM cc`)
	f := p.Final
	if !f.Grouped || len(f.GroupExprs) != 0 {
		t.Fatal("global aggregate should be grouped with no keys")
	}
	if !f.AggCalls[0].Distinct || f.AggCalls[0].Kind != types.AggCount {
		t.Errorf("agg call = %+v", f.AggCalls[0])
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown table", `SELECT X FROM nope`, "unknown table"},
		{"unknown column", `SELECT Nope FROM edge`, "unknown column"},
		{"ambiguous column", `SELECT Src FROM edge, edge e2`, "ambiguous"},
		{"duplicate binding", `SELECT 1 FROM edge, edge`, "duplicate table binding"},
		{"agg in where", `SELECT Src FROM edge WHERE max(Dst) > 1`, "not allowed in WHERE"},
		{"bare col with agg", `SELECT Src, max(Dst) FROM edge`, "GROUP BY"},
		{"avg in recursion", `WITH recursive v(X, avg() AS A) AS (SELECT Src, Cost FROM edge) UNION (SELECT v.X, v.A FROM v, edge WHERE v.X = edge.Src) SELECT X FROM v`, "not monotonic"},
		{"two agg heads", `WITH recursive v(X, min() AS A, max() AS B) AS (SELECT Src, Cost, Cost FROM edge) UNION (SELECT v.X, v.A, v.B FROM v, edge WHERE v.X = edge.Src) SELECT X FROM v`, "at most one aggregate"},
		{"head arity", `WITH recursive v(X, Y) AS (SELECT Src FROM edge) UNION (SELECT v.X, v.Y FROM v, edge WHERE v.X = edge.Src) SELECT X FROM v`, "head declares"},
		{"group by in branch", `WITH recursive v(X) AS (SELECT Src FROM edge GROUP BY Src) UNION (SELECT v.X FROM v, edge WHERE v.X = edge.Src) SELECT X FROM v`, "implicit group-by"},
		{"agg in branch select", `WITH recursive v(X, C) AS (SELECT Src, min(Cost) FROM edge) UNION (SELECT v.X, v.C FROM v, edge WHERE v.X = edge.Src) SELECT X FROM v`, "declared in the view head"},
		{"no base case", `WITH recursive v(X) AS (SELECT v.X FROM v, edge WHERE v.X = edge.Src) SELECT X FROM v`, "no base case"},
		{"union arity", `(SELECT Src FROM edge) UNION (SELECT Src, Dst FROM edge)`, "columns"},
		{"order by unknown", `SELECT Src FROM edge ORDER BY Nope`, "ORDER BY"},
		{"order by ordinal range", `SELECT Src FROM edge ORDER BY 2`, "out of range"},
	}
	for _, c := range cases {
		stmts, err := parser.Parse(c.src)
		if err != nil {
			t.Errorf("%s: parse failed: %v", c.name, err)
			continue
		}
		_, err = Statements(stmts, testCatalog())
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

func TestAnalyzeStarExpansion(t *testing.T) {
	p := analyzeSrc(t, `SELECT * FROM basic`)
	if p.Final.Schema.Len() != 2 || p.Final.Schema.Columns[0].Name != "Part" {
		t.Errorf("star schema = %v", p.Final.Schema)
	}
}

func TestAnalyzeConstantFolding(t *testing.T) {
	p := analyzeSrc(t, `SELECT Src FROM edge WHERE Dst > 1 + 2 * 3`)
	if len(p.Final.Conjuncts) != 1 {
		t.Fatalf("conjuncts = %d", len(p.Final.Conjuncts))
	}
	s := p.Final.Conjuncts[0].String()
	if !strings.Contains(s, "7") || strings.Contains(s, "2 * 3") {
		t.Errorf("constant not folded: %s", s)
	}
}

func TestAnalyzeFilterCombination(t *testing.T) {
	p := analyzeSrc(t, `SELECT Src FROM edge WHERE Src = 1 AND Dst = 2 AND Cost > 0`)
	if len(p.Final.Conjuncts) != 3 {
		t.Errorf("AND chain should split into 3 conjuncts, got %d", len(p.Final.Conjuncts))
	}
}

func TestAnalyzePartyAttendance(t *testing.T) {
	p := analyzeSrc(t, `
		WITH recursive attend(Person) AS
		    (SELECT OrgName FROM organizer) UNION
		    (SELECT Name FROM cntfriends WHERE Ncount >= 3),
		recursive cntfriends(Name, count() AS Ncount) AS
		    (SELECT friend.FName, friend.Pname FROM attend, friend
		     WHERE attend.Person = friend.Pname)
		SELECT Person FROM attend`)
	att, cnt := p.Clique.Views[0], p.Clique.Views[1]
	if att.IsAgg() || !cnt.IsAgg() {
		t.Error("agg classification wrong")
	}
	// cntfriends' Ncount column counts strings: its head type should be
	// int (counts), not string.
	if cnt.Schema.Columns[1].Type != types.KindInt {
		t.Errorf("Ncount type = %v", cnt.Schema.Columns[1].Type)
	}
	if att.Schema.Columns[0].Type != types.KindString {
		t.Errorf("Person type = %v", att.Schema.Columns[0].Type)
	}
}

func TestAnalyzeViewCycleDetected(t *testing.T) {
	cat := testCatalog()
	stmts, err := parser.Parse(`
		CREATE VIEW v1(X) AS (SELECT X FROM v2);
		CREATE VIEW v2(X) AS (SELECT X FROM v1);
		SELECT X FROM v1`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Statements(stmts, cat); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("want cyclic view error, got %v", err)
	}
}
