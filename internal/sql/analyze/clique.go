package analyze

import (
	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/expr"
	"github.com/rasql/rasql-go/internal/types"
)

// analyzeWith performs the paper's two-step compile for a WITH statement:
// step one recognizes recursive table references and partitions the CTEs
// into a recursive clique plus plain views; step two analyzes every branch
// into resolved base/recursive rules with implicit group-by applied, and
// analyzes the body query with the clique in scope.
func (a *analyzer) analyzeWith(w *ast.With) (*Program, error) {
	names := map[string]int{}
	for i, v := range w.Views {
		if _, dup := names[toLower(v.Name)]; dup {
			return nil, errf("", "duplicate CTE name %q", v.Name)
		}
		names[toLower(v.Name)] = i
	}

	// Dependency edges between CTEs, from FROM references.
	n := len(w.Views)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i, v := range w.Views {
		for _, b := range v.Branches {
			for _, name := range referencedTables(b) {
				if j, ok := names[toLower(name)]; ok {
					adj[i][j] = true
				}
			}
		}
	}
	recursive := cyclic(adj)
	// A CTE declared `recursive` that reads a recursive view joins the
	// clique even without a self-reference — the paper's Appendix G
	// PreM-checking queries and the Company Control pattern rely on the
	// view being evaluated inside the fixpoint rather than after it.
	for changed := true; changed; {
		changed = false
		for i, v := range w.Views {
			if recursive[i] || !v.Recursive {
				continue
			}
			for j := range w.Views {
				if adj[i][j] && recursive[j] {
					recursive[i] = true
					changed = true
					break
				}
			}
		}
	}

	clique := &Clique{}
	a.clique = clique
	localViews := map[string]*catalog.ViewDef{}
	for i, v := range w.Views {
		if !recursive[i] {
			vd := &catalog.ViewDef{Name: v.Name, Columns: headNames(v.Head), Query: branchesAsSelect(v)}
			if hasAggHead(v.Head) {
				return nil, errf("view "+v.Name, "aggregate heads require a recursive view")
			}
			localViews[toLower(v.Name)] = vd
			clique.NonRec = append(clique.NonRec, vd)
			continue
		}
		rv := &RecView{Name: v.Name, Agg: types.AggNone, AggIdx: -1, Index: len(clique.Views)}
		cols := make([]types.Column, len(v.Head))
		for ci, h := range v.Head {
			cols[ci] = types.Col(h.Name, types.KindNull)
			if h.Agg == types.AggNone {
				rv.GroupIdx = append(rv.GroupIdx, ci)
				continue
			}
			if rv.AggIdx >= 0 {
				return nil, errf("view "+v.Name, "at most one aggregate column per recursive head")
			}
			if !h.Agg.MonotonicInRecursion() {
				return nil, errf("view "+v.Name, "%s is not monotonic and cannot be used in recursion", h.Agg)
			}
			rv.Agg = h.Agg
			rv.AggIdx = ci
		}
		rv.Schema = types.NewSchema(cols...)
		clique.Views = append(clique.Views, rv)
	}
	a.localViews = localViews

	if len(clique.Views) == 0 {
		// Purely non-recursive WITH: analyze the body with the views.
		q, err := a.analyzeSelect(w.Body, "query")
		if err != nil {
			return nil, err
		}
		return &Program{Clique: clique, Final: q}, nil
	}

	// A clique must be grounded: at least one branch somewhere that
	// references no clique view. Check syntactically before type
	// inference, which cannot converge without a ground branch.
	hasBase := false
	for i, v := range w.Views {
		if !recursive[i] {
			continue
		}
		for _, b := range v.Branches {
			refsClique := false
			for _, name := range referencedTables(b) {
				if j, ok := names[toLower(name)]; ok && recursive[j] {
					refsClique = true
				}
			}
			if !refsClique {
				hasBase = true
			}
		}
	}
	if !hasBase {
		return nil, errf("", "recursive clique has no base case")
	}

	// Type-inference rounds: head column types start unknown and are
	// unified across branches until stable (bounded by clique size).
	cliqueIdx := 0
	astViews := make([]*ast.CTE, 0, len(clique.Views))
	for i, v := range w.Views {
		if recursive[i] {
			astViews = append(astViews, v)
			cliqueIdx++
		}
	}
	for round := 0; round < n+2; round++ {
		changed := false
		for vi, rv := range clique.Views {
			for _, branch := range astViews[vi].Branches {
				rule, err := a.analyzeRule(rv, branch)
				if err != nil {
					if round == 0 {
						// Errors on round 0 may be caused by unresolved
						// sibling types; give later rounds a chance
						// unless they persist.
						continue
					}
					return nil, err
				}
				for ci, h := range rule.Head {
					inferred := expr.InferKind(h, ruleSchemas(rule))
					if ci == rv.AggIdx && rv.Agg == types.AggCount {
						// count() columns hold counts regardless of what
						// is being counted (Party Attendance counts
						// friend names).
						inferred = types.KindInt
					}
					k, err := unifyKind("view "+rv.Name, rv.Schema.Columns[ci].Name,
						rv.Schema.Columns[ci].Type, inferred)
					if err != nil {
						return nil, err
					}
					if k != rv.Schema.Columns[ci].Type {
						rv.Schema.Columns[ci].Type = k
						changed = true
					}
				}
			}
		}
		if !changed && round > 0 {
			break
		}
	}
	for _, rv := range clique.Views {
		for _, c := range rv.Schema.Columns {
			if c.Type == types.KindNull {
				return nil, errf("view "+rv.Name, "cannot infer a type for column %q", c.Name)
			}
		}
	}

	// Final pass: build the resolved rules.
	for vi, rv := range clique.Views {
		for _, branch := range astViews[vi].Branches {
			rule, err := a.analyzeRule(rv, branch)
			if err != nil {
				return nil, err
			}
			if err := a.checkRuleStratification(rule); err != nil {
				return nil, err
			}
			if len(rule.RecSources) == 0 {
				rv.BaseRules = append(rv.BaseRules, rule)
			} else {
				rv.RecRules = append(rv.RecRules, rule)
			}
		}
	}
	final, err := a.analyzeSelect(w.Body, "query")
	if err != nil {
		return nil, err
	}
	return &Program{Clique: clique, Final: final}, nil
}

// analyzeRule resolves one CTE branch into a rule of its view.
func (a *analyzer) analyzeRule(rv *RecView, branch *ast.Select) (*Rule, error) {
	ctx := "view " + rv.Name
	switch {
	case len(branch.GroupBy) > 0 || branch.Having != nil:
		return nil, errf(ctx, "recursive CTE branches use RaSQL's implicit group-by; explicit GROUP BY/HAVING is not allowed")
	case branch.Distinct:
		return nil, errf(ctx, "DISTINCT is not allowed in recursive CTE branches")
	case len(branch.OrderBy) > 0 || branch.Limit >= 0:
		return nil, errf(ctx, "ORDER BY/LIMIT are not allowed in recursive CTE branches")
	}
	sources, err := a.resolveSources(branch.From, ctx)
	if err != nil {
		return nil, err
	}
	rule := &Rule{View: rv, Sources: sources, NoFrom: len(branch.From) == 0}
	for i, s := range sources {
		if s.Kind == SourceRec {
			rule.RecSources = append(rule.RecSources, i)
		}
	}
	sc := &scope{sources: sources, ctx: ctx}
	if branch.Where != nil {
		if ast.HasAggregate(branch.Where) {
			return nil, errf(ctx, "aggregates are not allowed in WHERE")
		}
		w, err := sc.resolveExpr(branch.Where)
		if err != nil {
			return nil, err
		}
		rule.Conjuncts = expr.SplitConjuncts(expr.Fold(w))
	}
	items := branch.Items
	if len(items) == 1 && items[0].Star {
		items = nil
		for _, src := range sources {
			for _, col := range src.Schema.Columns {
				items = append(items, ast.SelectItem{Expr: &ast.ColumnRef{Table: src.Binding, Name: col.Name}})
			}
		}
	}
	if len(items) != rv.Schema.Len() {
		return nil, errf(ctx, "head declares %d columns but branch selects %d", rv.Schema.Len(), len(items))
	}
	rule.Head = make([]expr.Expr, len(items))
	for i, it := range items {
		if it.Star {
			return nil, errf(ctx, "mixed * and expressions in a recursive branch")
		}
		if ast.HasAggregate(it.Expr) {
			return nil, errf(ctx, "aggregates in recursive branches are declared in the view head (e.g. `min() AS %s`), not the SELECT list", rv.Schema.Columns[i].Name)
		}
		e, err := sc.resolveExpr(it.Expr)
		if err != nil {
			return nil, err
		}
		rule.Head[i] = expr.Fold(e)
	}
	return rule, nil
}

// checkRuleStratification rejects rules whose named-view sources themselves
// read recursive views: a view materialized before the fixpoint cannot
// depend on fixpoint results.
func (a *analyzer) checkRuleStratification(rule *Rule) error {
	var check func(q *Query) error
	check = func(q *Query) error {
		for _, s := range q.Sources {
			switch s.Kind {
			case SourceRec:
				return errf("view "+rule.View.Name,
					"view %q reads recursive view %q; referencing recursion through a plain view is not supported inside rules",
					s.Binding, s.Rec.Name)
			case SourceView:
				if err := check(s.ViewQuery); err != nil {
					return err
				}
			}
		}
		for _, u := range q.Unions {
			if err := check(u); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range rule.Sources {
		if s.Kind == SourceView {
			if err := check(s.ViewQuery); err != nil {
				return err
			}
		}
	}
	return nil
}

func ruleSchemas(r *Rule) []types.Schema {
	out := make([]types.Schema, len(r.Sources))
	for i, s := range r.Sources {
		out[i] = s.Schema
	}
	return out
}

// cyclic returns, for each node, whether it lies on a cycle (including
// self-loops) in the adjacency matrix, via reachability.
func cyclic(adj [][]bool) []bool {
	n := len(adj)
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = append([]bool(nil), adj[i]...)
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = reach[i][i]
	}
	return out
}

func headNames(head []ast.HeadCol) []string {
	out := make([]string, len(head))
	for i, h := range head {
		out[i] = h.Name
	}
	return out
}

func hasAggHead(head []ast.HeadCol) bool {
	for _, h := range head {
		if h.Agg != types.AggNone {
			return true
		}
	}
	return false
}

// referencedTables lists every table/view name a select references,
// including inside derived tables and union branches.
func referencedTables(s *ast.Select) []string {
	var out []string
	var walk func(sel *ast.Select)
	walk = func(sel *ast.Select) {
		if sel == nil {
			return
		}
		for _, t := range sel.From {
			if t.Sub != nil {
				walk(t.Sub)
				continue
			}
			out = append(out, t.Name)
		}
		for _, u := range sel.Unions {
			walk(u.Select)
		}
	}
	walk(s)
	return out
}

// branchesAsSelect reassembles a non-recursive CTE's branches into a single
// select with unions, for registration as a plain view.
func branchesAsSelect(v *ast.CTE) *ast.Select {
	first := v.Branches[0]
	for _, b := range v.Branches[1:] {
		first.Unions = append(first.Unions, ast.UnionPart{Select: b})
	}
	return first
}
