package analyze

import (
	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/expr"
	"github.com/rasql/rasql-go/internal/types"
)

// Statements analyzes a parsed script: CREATE VIEW statements register
// their definitions in the catalog, and the last statement (a SELECT or
// WITH) becomes the Program.
func Statements(stmts []ast.Statement, cat *catalog.Catalog) (*Program, error) {
	var last ast.Statement
	for _, s := range stmts {
		if cv, ok := s.(*ast.CreateView); ok {
			if err := cat.RegisterView(&catalog.ViewDef{
				Name: cv.Name, Columns: cv.Columns, Query: cv.Query,
			}); err != nil {
				return nil, err
			}
			continue
		}
		if last != nil {
			return nil, errf("", "script has more than one query statement")
		}
		last = s
	}
	if last == nil {
		return nil, errf("", "script has no query statement")
	}
	return Statement(last, cat)
}

// Statement analyzes one SELECT or WITH statement.
func Statement(s ast.Statement, cat *catalog.Catalog) (*Program, error) {
	a := &analyzer{cat: cat, viewCache: map[string]*Query{}}
	switch x := s.(type) {
	case *ast.Select:
		q, err := a.analyzeSelect(x, "query")
		if err != nil {
			return nil, err
		}
		return &Program{Final: q}, nil
	case *ast.With:
		return a.analyzeWith(x)
	case *ast.CreateView:
		return nil, errf("", "CREATE VIEW must be followed by a query")
	default:
		return nil, errf("", "unsupported statement")
	}
}

// resolveSources binds the FROM list of a select.
func (a *analyzer) resolveSources(from []ast.TableRef, ctx string) ([]Source, error) {
	sources := make([]Source, 0, len(from))
	seen := map[string]bool{}
	for _, t := range from {
		b := t.Binding()
		lb := toLower(b)
		if seen[lb] {
			return nil, errf(ctx, "duplicate table binding %q", b)
		}
		seen[lb] = true
		src, err := a.resolveSource(t, ctx)
		if err != nil {
			return nil, err
		}
		sources = append(sources, src)
	}
	return sources, nil
}

func (a *analyzer) resolveSource(t ast.TableRef, ctx string) (Source, error) {
	if t.Sub != nil {
		// Derived table: analyze the sub-select; its output schema is the
		// source schema. It behaves as an anonymous, uncached view.
		sq, err := a.analyzeSelect(t.Sub, ctx+" derived table "+t.Alias)
		if err != nil {
			return Source{}, err
		}
		return Source{Binding: t.Binding(), Kind: SourceView, ViewQuery: sq, Schema: sq.Schema}, nil
	}
	// Resolution order: clique views shadow catalog views shadow tables.
	if a.clique != nil {
		if rv := a.clique.ViewByName(t.Name); rv != nil {
			return Source{Binding: t.Binding(), Kind: SourceRec, Rec: rv, Schema: rv.Schema}, nil
		}
	}
	if vd, ok := a.localViews[toLower(t.Name)]; ok {
		vq, err := a.analyzeView(vd, ctx)
		if err != nil {
			return Source{}, err
		}
		return Source{Binding: t.Binding(), Kind: SourceView, ViewQuery: vq,
			ViewName: vd.Name, Schema: vq.Schema}, nil
	}
	if vd, ok := a.cat.View(t.Name); ok {
		vq, err := a.analyzeView(vd, ctx)
		if err != nil {
			return Source{}, err
		}
		return Source{Binding: t.Binding(), Kind: SourceView, ViewQuery: vq,
			ViewName: vd.Name, Schema: vq.Schema}, nil
	}
	if rel, ok := a.cat.Table(t.Name); ok {
		return Source{Binding: t.Binding(), Kind: SourceTable, Rel: rel, Schema: rel.Schema}, nil
	}
	return Source{}, errf(ctx, "unknown table or view %q", t.Name)
}

// analyzeView analyzes a named view's definition, applying its declared
// column names and caching the result. Cyclic view definitions error.
func (a *analyzer) analyzeView(vd *catalog.ViewDef, ctx string) (*Query, error) {
	lname := toLower(vd.Name)
	if q, ok := a.viewCache[lname]; ok {
		return q, nil
	}
	for _, n := range a.viewStack {
		if n == lname {
			return nil, errf(ctx, "cyclic view definition involving %q", vd.Name)
		}
	}
	a.viewStack = append(a.viewStack, lname)
	defer func() { a.viewStack = a.viewStack[:len(a.viewStack)-1] }()

	q, err := a.analyzeSelect(vd.Query, "view "+vd.Name)
	if err != nil {
		return nil, err
	}
	if len(vd.Columns) != q.Schema.Len() {
		return nil, errf("view "+vd.Name, "declares %d columns but query produces %d",
			len(vd.Columns), q.Schema.Len())
	}
	renamed := q.Schema
	renamed.Columns = append([]types.Column(nil), q.Schema.Columns...)
	for i, c := range vd.Columns {
		renamed.Columns[i].Name = c
	}
	q.Schema = renamed
	a.viewCache[lname] = q
	return q, nil
}

// analyzeSelect analyzes a general (possibly grouped, possibly unioned)
// select statement.
func (a *analyzer) analyzeSelect(sel *ast.Select, ctx string) (*Query, error) {
	q, err := a.analyzeSelectCore(sel, ctx)
	if err != nil {
		return nil, err
	}
	for i, u := range sel.Unions {
		uq, err := a.analyzeSelectCore(u.Select, ctx)
		if err != nil {
			return nil, err
		}
		if uq.Schema.Len() != q.Schema.Len() {
			return nil, errf(ctx, "UNION branches have %d and %d columns",
				q.Schema.Len(), uq.Schema.Len())
		}
		for j := range q.Schema.Columns {
			k, err := unifyKind(ctx, q.Schema.Columns[j].Name,
				q.Schema.Columns[j].Type, uq.Schema.Columns[j].Type)
			if err != nil {
				return nil, err
			}
			q.Schema.Columns[j].Type = k
		}
		q.Unions = append(q.Unions, uq)
		q.All = append(q.All, u.All)
		_ = i
	}
	return q, nil
}

func (a *analyzer) analyzeSelectCore(sel *ast.Select, ctx string) (*Query, error) {
	sources, err := a.resolveSources(sel.From, ctx)
	if err != nil {
		return nil, err
	}
	sc := &scope{sources: sources, ctx: ctx}
	q := &Query{Sources: sources, Limit: sel.Limit, Distinct: sel.Distinct, NoFrom: len(sel.From) == 0}

	if sel.Where != nil {
		if ast.HasAggregate(sel.Where) {
			return nil, errf(ctx, "aggregates are not allowed in WHERE")
		}
		w, err := sc.resolveExpr(sel.Where)
		if err != nil {
			return nil, err
		}
		q.Conjuncts = expr.SplitConjuncts(expr.Fold(w))
	}

	// Expand stars.
	items := make([]ast.SelectItem, 0, len(sel.Items))
	for _, it := range sel.Items {
		if !it.Star {
			items = append(items, it)
			continue
		}
		if len(sources) == 0 {
			return nil, errf(ctx, "SELECT * requires a FROM clause")
		}
		for si, src := range sources {
			for ci, col := range src.Schema.Columns {
				items = append(items, ast.SelectItem{
					Expr:  &ast.ColumnRef{Table: src.Binding, Name: col.Name},
					Alias: col.Name,
				})
				_ = si
				_ = ci
			}
		}
	}
	if len(items) == 0 {
		return nil, errf(ctx, "SELECT list is empty")
	}

	grouped := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, it := range items {
		if ast.HasAggregate(it.Expr) {
			grouped = true
		}
	}

	names := make([]string, len(items))
	for i, it := range items {
		names[i] = outName(it, i)
	}

	if !grouped {
		q.Items = make([]expr.Expr, len(items))
		kinds := make([]types.Kind, len(items))
		for i, it := range items {
			e, err := sc.resolveExpr(it.Expr)
			if err != nil {
				return nil, err
			}
			q.Items[i] = expr.Fold(e)
			kinds[i] = expr.InferKind(q.Items[i], sc.schemas())
		}
		q.Schema = schemaOf(names, kinds)
		if err := a.resolveOrderBy(q, sel, names, ctx); err != nil {
			return nil, err
		}
		return q, nil
	}

	// Grouped query: resolve group expressions, collect aggregate calls,
	// and rewrite items/HAVING over the synthetic [groups..., aggs...] env.
	q.Grouped = true
	g := &groupedRewriter{a: a, sc: sc, groupAST: sel.GroupBy, ctx: ctx}
	for _, ge := range sel.GroupBy {
		re, err := sc.resolveExpr(ge)
		if err != nil {
			return nil, err
		}
		q.GroupExprs = append(q.GroupExprs, expr.Fold(re))
	}
	q.PostItems = make([]expr.Expr, len(items))
	kinds := make([]types.Kind, len(items))
	for i, it := range items {
		pe, k, err := g.rewrite(it.Expr)
		if err != nil {
			return nil, err
		}
		q.PostItems[i] = pe
		kinds[i] = k
	}
	if sel.Having != nil {
		h, _, err := g.rewrite(sel.Having)
		if err != nil {
			return nil, err
		}
		q.Having = h
	}
	q.AggCalls = g.calls
	q.Schema = schemaOf(names, kinds)
	if err := a.resolveOrderBy(q, sel, names, ctx); err != nil {
		return nil, err
	}
	return q, nil
}

func (a *analyzer) resolveOrderBy(q *Query, sel *ast.Select, names []string, ctx string) error {
	for _, o := range sel.OrderBy {
		switch x := o.Expr.(type) {
		case *ast.Literal:
			if x.Value.K != types.KindInt || x.Value.I < 1 || int(x.Value.I) > len(names) {
				return errf(ctx, "ORDER BY ordinal %v out of range", x.Value)
			}
			q.OrderBy = append(q.OrderBy, OrderKey{Idx: int(x.Value.I) - 1, Desc: o.Desc})
		case *ast.ColumnRef:
			idx := -1
			for i, n := range names {
				if equalFold(n, x.Name) {
					idx = i
					break
				}
			}
			if idx < 0 {
				return errf(ctx, "ORDER BY column %q is not in the SELECT list", x.Name)
			}
			q.OrderBy = append(q.OrderBy, OrderKey{Idx: idx, Desc: o.Desc})
		default:
			return errf(ctx, "ORDER BY supports output columns or ordinals, not %s", o.Expr)
		}
	}
	return nil
}

func schemaOf(names []string, kinds []types.Kind) types.Schema {
	cols := make([]types.Column, len(names))
	for i := range names {
		cols[i] = types.Col(names[i], kinds[i])
	}
	return types.NewSchema(cols...)
}

// groupedRewriter rewrites item/HAVING expressions of a grouped query into
// expressions over the synthetic environment [group values..., agg values...].
type groupedRewriter struct {
	a        *analyzer
	sc       *scope
	groupAST []ast.Expr
	calls    []AggCall
	ctx      string
}

func (g *groupedRewriter) rewrite(e ast.Expr) (expr.Expr, types.Kind, error) {
	// A (sub)expression that textually matches a GROUP BY expression
	// refers to the group key.
	if i := matchesGroupExpr(e, g.groupAST); i >= 0 {
		re, err := g.sc.resolveExpr(g.groupAST[i])
		if err != nil {
			return nil, 0, err
		}
		return &expr.Col{Input: 0, Idx: i, Name: "group" + itoa(i)},
			expr.InferKind(re, g.sc.schemas()), nil
	}
	switch x := e.(type) {
	case *ast.FuncCall:
		if x.Agg == types.AggNone {
			return nil, 0, errf(g.ctx, "unknown function %q", x.Name)
		}
		call := AggCall{Kind: x.Agg, Distinct: x.Distinct, Star: x.Star}
		kind := types.KindInt
		if !x.Star {
			arg, err := g.sc.resolveExpr(x.Args[0])
			if err != nil {
				return nil, 0, err
			}
			if ast.HasAggregate(x.Args[0]) {
				return nil, 0, errf(g.ctx, "nested aggregates are not allowed")
			}
			call.Arg = arg
			switch x.Agg {
			case types.AggCount:
				kind = types.KindInt
			case types.AggAvg:
				kind = types.KindFloat
			default:
				kind = expr.InferKind(arg, g.sc.schemas())
				if x.Agg == types.AggSum && kind == types.KindInt {
					kind = types.KindInt
				}
			}
		}
		idx := len(g.groupAST) + len(g.calls)
		g.calls = append(g.calls, call)
		return &expr.Col{Input: 0, Idx: idx, Name: x.Name}, kind, nil
	case *ast.Literal:
		return &expr.Lit{V: x.Value}, x.Value.K, nil
	case *ast.Binary:
		l, lk, err := g.rewrite(x.L)
		if err != nil {
			return nil, 0, err
		}
		r, rk, err := g.rewrite(x.R)
		if err != nil {
			return nil, 0, err
		}
		kind := types.KindBool
		switch x.Op {
		case ast.OpAdd, ast.OpSub, ast.OpMul, ast.OpMod:
			kind = types.KindInt
			if lk == types.KindFloat || rk == types.KindFloat {
				kind = types.KindFloat
			}
		case ast.OpDiv:
			kind = types.KindFloat
		}
		return &expr.Bin{Op: x.Op, L: l, R: r}, kind, nil
	case *ast.Unary:
		inner, k, err := g.rewrite(x.E)
		if err != nil {
			return nil, 0, err
		}
		if x.Op == "NOT" {
			return &expr.Not{E: inner}, types.KindBool, nil
		}
		return &expr.Neg{E: inner}, k, nil
	case *ast.ColumnRef:
		return nil, 0, errf(g.ctx, "column %s must appear in GROUP BY or inside an aggregate", x)
	default:
		return nil, 0, errf(g.ctx, "unsupported expression %s in grouped query", e)
	}
}

func toLower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
