package analyze

import (
	"strings"

	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/expr"
	"github.com/rasql/rasql-go/internal/types"
)

// analyzer carries per-statement analysis state.
type analyzer struct {
	cat    *catalog.Catalog
	clique *Clique
	// viewStack detects cyclic non-recursive view definitions.
	viewStack []string
	// viewCache caches analyzed named views by lower-cased name.
	viewCache map[string]*Query
	// localViews holds non-recursive CTEs of the WITH under analysis,
	// visible ahead of catalog views.
	localViews map[string]*catalog.ViewDef
}

// scope is the name-resolution context of one SELECT.
type scope struct {
	sources []Source
	ctx     string
}

func (s *scope) schemas() []types.Schema {
	out := make([]types.Schema, len(s.sources))
	for i, src := range s.sources {
		out[i] = src.Schema
	}
	return out
}

// resolveColumn binds a column reference to a (source, column) position.
func (s *scope) resolveColumn(c *ast.ColumnRef) (*expr.Col, error) {
	if c.Table != "" {
		for i, src := range s.sources {
			if equalFold(src.Binding, c.Table) {
				j := src.Schema.Index(c.Name)
				if j < 0 {
					return nil, errf(s.ctx, "column %s.%s not found (schema %s)", c.Table, c.Name, src.Schema)
				}
				return &expr.Col{Input: i, Idx: j, Name: c.Table + "." + c.Name}, nil
			}
		}
		return nil, errf(s.ctx, "unknown table %q in column reference %s", c.Table, c)
	}
	found := (*expr.Col)(nil)
	for i, src := range s.sources {
		j := src.Schema.Index(c.Name)
		if j < 0 {
			continue
		}
		if found != nil {
			return nil, errf(s.ctx, "ambiguous column %q (in %s and %s)", c.Name,
				s.sources[found.Input].Binding, src.Binding)
		}
		found = &expr.Col{Input: i, Idx: j, Name: c.Name}
	}
	if found == nil {
		return nil, errf(s.ctx, "unknown column %q", c.Name)
	}
	return found, nil
}

// resolveExpr rewrites a parsed expression into resolved form. Aggregate
// calls are rejected; grouped queries route through the grouped rewriter
// instead.
func (s *scope) resolveExpr(e ast.Expr) (expr.Expr, error) {
	switch x := e.(type) {
	case *ast.ColumnRef:
		return s.resolveColumn(x)
	case *ast.Literal:
		return &expr.Lit{V: x.Value}, nil
	case *ast.Binary:
		l, err := s.resolveExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := s.resolveExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &expr.Bin{Op: x.Op, L: l, R: r}, nil
	case *ast.Unary:
		inner, err := s.resolveExpr(x.E)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return &expr.Not{E: inner}, nil
		}
		return &expr.Neg{E: inner}, nil
	case *ast.FuncCall:
		if x.Agg != types.AggNone {
			return nil, errf(s.ctx, "aggregate %s() not allowed here", x.Name)
		}
		return nil, errf(s.ctx, "unknown function %q", x.Name)
	default:
		return nil, errf(s.ctx, "unsupported expression %s", e)
	}
}

// outName derives an output column name for a select item.
func outName(item ast.SelectItem, pos int) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch x := item.Expr.(type) {
	case *ast.ColumnRef:
		return x.Name
	case *ast.FuncCall:
		return x.Name
	default:
		return "col" + itoa(pos+1)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// unifyKind merges a newly inferred kind into an existing assignment,
// widening int to double and letting null absorb anything.
func unifyKind(ctx, col string, cur, nu types.Kind) (types.Kind, error) {
	switch {
	case cur == types.KindNull:
		return nu, nil
	case nu == types.KindNull || cur == nu:
		return cur, nil
	case cur == types.KindInt && nu == types.KindFloat,
		cur == types.KindFloat && nu == types.KindInt:
		return types.KindFloat, nil
	default:
		return cur, errf(ctx, "column %s has conflicting types %v and %v", col, cur, nu)
	}
}

// matchesGroupExpr reports whether a parsed expression is (textually) one of
// the GROUP BY expressions; SQL treats such occurrences as group key
// references.
func matchesGroupExpr(e ast.Expr, groupBy []ast.Expr) int {
	es := strings.ToLower(e.String())
	for i, g := range groupBy {
		if strings.ToLower(g.String()) == es {
			return i
		}
	}
	return -1
}
