// Package analyze implements semantic analysis: it resolves names against a
// catalog, classifies recursive-CTE branches into base and recursive rules
// (the paper's first compile step, building the Recursive Clique Plan),
// applies RaSQL's implicit group-by rule to aggregate heads, and produces
// resolved queries ready for planning.
package analyze

import (
	"fmt"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/expr"
	"github.com/rasql/rasql-go/internal/types"
)

// Program is the analysis result for one statement (plus any CREATE VIEWs
// that preceded it).
type Program struct {
	// Clique holds the recursive views of a WITH statement; nil when the
	// statement has no recursive CTEs.
	Clique *Clique
	// Final is the body/select query.
	Final *Query
}

// SourceKind classifies a FROM source.
type SourceKind uint8

// The source kinds.
const (
	// SourceTable is a catalog base table.
	SourceTable SourceKind = iota
	// SourceView is a non-recursive named view (CREATE VIEW or a
	// non-recursive CTE), materialized before the main query runs.
	SourceView
	// SourceRec is a reference to a recursive view of the current clique.
	SourceRec
)

// Source is one resolved FROM item.
type Source struct {
	// Binding is the name the source is referenced by (alias if given).
	Binding string
	Kind    SourceKind
	// Rel is the base table for SourceTable.
	Rel *relation.Relation
	// ViewQuery is the analyzed query for SourceView.
	ViewQuery *Query
	// ViewName names the view for SourceView (for materialization caching).
	ViewName string
	// Rec points at the clique view for SourceRec.
	Rec *RecView
	// Schema is the source's column schema.
	Schema types.Schema
}

// AggCall is one aggregate invocation in a stratified (non-recursive)
// query's SELECT items or HAVING clause.
type AggCall struct {
	Kind     types.AggKind
	Distinct bool
	Star     bool
	// Arg is the aggregated expression (nil for count(*)).
	Arg expr.Expr
}

// OrderKey is one resolved ORDER BY key.
type OrderKey struct {
	// Idx indexes the output column to sort by.
	Idx  int
	Desc bool
}

// Query is a resolved select. For grouped queries the SELECT items and
// HAVING run over a synthetic environment of [group values..., aggregate
// values...]; for ungrouped ones Items run directly over the FROM sources.
type Query struct {
	Sources   []Source
	Conjuncts []expr.Expr
	// NoFrom marks a literal SELECT (e.g. `SELECT 1, 0`).
	NoFrom bool

	// Items are the output expressions of an ungrouped query.
	Items []expr.Expr

	// Grouped marks aggregate queries. GroupExprs run over the sources;
	// AggCalls accumulate; PostItems and Having run over the synthetic
	// grouped environment.
	Grouped    bool
	GroupExprs []expr.Expr
	AggCalls   []AggCall
	PostItems  []expr.Expr
	Having     expr.Expr

	Distinct bool
	OrderBy  []OrderKey
	Limit    int // -1 when absent

	// Unions holds additional branches; All[i] is true for UNION ALL.
	Unions []*Query
	All    []bool

	// Schema is the output schema.
	Schema types.Schema
}

// Clique is a set of mutually recursive views analyzed together — the
// paper's Recursive Clique Plan.
type Clique struct {
	Views []*RecView
	// NonRec holds WITH-clause CTEs that turned out not to be recursive;
	// they behave as named views.
	NonRec []*catalog.ViewDef
}

// ViewByName finds a clique view by name (case-insensitive).
func (c *Clique) ViewByName(name string) *RecView {
	for _, v := range c.Views {
		if equalFold(v.Name, name) {
			return v
		}
	}
	return nil
}

// RecView is one recursive view of a clique.
type RecView struct {
	Name   string
	Schema types.Schema
	// Agg is the head aggregate; AggNone for set-semantics views.
	Agg types.AggKind
	// AggIdx is the aggregate column's index, -1 for set views.
	AggIdx int
	// GroupIdx lists the implicit group-by columns (all non-aggregate head
	// columns, per RaSQL's implicit group-by rule).
	GroupIdx []int
	// Index is the view's position within the clique.
	Index int

	BaseRules []*Rule
	RecRules  []*Rule
}

// IsAgg reports whether the view has an aggregate head.
func (v *RecView) IsAgg() bool { return v.Agg != types.AggNone }

// Rule is one analyzed CTE branch: a conjunctive body with head projections.
type Rule struct {
	// View is the rule's owner.
	View *RecView
	// Sources are the FROM items; RecSources indexes those referencing
	// clique views.
	Sources    []Source
	RecSources []int
	Conjuncts  []expr.Expr
	// Head holds one projection per view column.
	Head []expr.Expr
	// NoFrom marks literal base cases such as `SELECT 1, 0`.
	NoFrom bool
}

// Error is an analysis error with query context.
type Error struct {
	Context string
	Msg     string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Context == "" {
		return "analyze: " + e.Msg
	}
	return fmt.Sprintf("analyze: %s: %s", e.Context, e.Msg)
}

func errf(ctx, format string, args ...any) error {
	return &Error{Context: ctx, Msg: fmt.Sprintf(format, args...)}
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// used for doc reference; keeps the ast import meaningful in this file.
var _ = ast.OpAdd
