package parser

import (
	"strings"
	"testing"

	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/types"
)

// The paper's example queries, verbatim (§2, §4, Appendix C, Appendix G).
var paperQueries = map[string]string{
	"Q1-stratified-BOM": `
		WITH recursive waitfor(Part, Days) AS
		    (SELECT Part, Days FROM basic) UNION
		    (SELECT assbl.Part, waitfor.Days
		     FROM assbl, waitfor
		     WHERE assbl.Spart = waitfor.Part)
		SELECT Part, max(Days) FROM waitfor GROUP BY Part`,
	"Q2-endo-max-BOM": `
		WITH recursive waitfor(Part, max() as Days) AS
		    (SELECT Part, Days FROM basic) UNION
		    (SELECT assbl.Part, waitfor.Days
		     FROM assbl, waitfor
		     WHERE assbl.Spart = waitfor.Part)
		SELECT Part, Days FROM waitfor`,
	"SSSP": `
		WITH recursive path (Dst, min() AS Cost) AS
		    (SELECT 1, 0) UNION
		    (SELECT edge.Dst, path.Cost + edge.Cost
		     FROM path, edge
		     WHERE path.Dst = edge.Src)
		SELECT Dst, Cost FROM path`,
	"CC": `
		WITH recursive cc (Src, min() AS CmpId) AS
		    (SELECT Src, Src FROM edge) UNION
		    (SELECT edge.Dst, cc.CmpId FROM cc, edge
		     WHERE cc.Src = edge.Src)
		SELECT count(distinct cc.CmpId) FROM cc`,
	"CountPaths": `
		WITH recursive cpaths (Dst, sum() AS Cnt) AS
		    (SELECT 1, 1) UNION
		    (SELECT edge.Dst, cpaths.Cnt FROM cpaths, edge
		     WHERE cpaths.Dst = edge.Src)
		SELECT Dst, Cnt FROM cpaths`,
	"Management": `
		WITH recursive empCount (Mgr, count() AS Cnt) AS
		    (SELECT report.Emp, 1 FROM report) UNION
		    (SELECT report.Mgr, empCount.Cnt
		     FROM empCount, report
		     WHERE empCount.Mgr = report.Emp)
		SELECT Mgr, Cnt FROM empCount`,
	"MLM": `
		WITH recursive bonus(M, sum() as B) AS
		    (SELECT M, P*0.1 FROM sales) UNION
		    (SELECT sponsor.M1, bonus.B*0.5 FROM bonus, sponsor
		     WHERE bonus.M = sponsor.M2)
		SELECT M, B FROM bonus`,
	"IntervalCoalesce": `
		CREATE VIEW lstart(T) AS
		    (SELECT a.S FROM inter a, inter b
		     WHERE a.S <= b.E
		     GROUP BY a.S HAVING a.S = min(b.S));
		WITH recursive coal (S, max() AS E) AS
		    (SELECT lstart.T, inter.E FROM lstart, inter
		     WHERE lstart.T = inter.S) UNION
		    (SELECT coal.S, inter.E FROM coal, inter
		     WHERE coal.S <= inter.S AND inter.S <= coal.E)
		SELECT S, E FROM coal`,
	"PartyAttendance": `
		WITH recursive attend(Person) AS
		    (SELECT OrgName FROM organizer) UNION
		    (SELECT Name FROM cntfriends
		     WHERE Ncount >= 3),
		recursive cntfriends(Name, count() AS Ncount) AS
		    (SELECT friend.FName, friend.Pname
		     FROM attend, friend
		     WHERE attend.Person = friend.Pname)
		SELECT Person FROM attend`,
	"CompanyControl": `
		WITH recursive cshares(ByCom, OfCom, sum() AS Tot) AS
		    (SELECT By, Of, Percent FROM shares) UNION
		    (SELECT control.Com1, cshares.OfCom, cshares.Tot
		     FROM control, cshares
		     WHERE control.Com2 = cshares.ByCom),
		recursive control(Com1, Com2) AS
		    (SELECT ByCom, OfCom FROM cshares WHERE Tot > 50)
		SELECT ByCom, OfCom, Tot FROM cshares`,
	"TC": `
		WITH recursive tc (Src, Dst) AS
		    (SELECT Src, Dst FROM edge) UNION
		    (SELECT tc.Src, edge.Dst FROM tc, edge
		     WHERE tc.Dst = edge.Src)
		SELECT Src, Dst FROM tc`,
	"SG": `
		WITH recursive sg (X, Y) AS
		    (SELECT a.Child, b.Child FROM rel a, rel b
		     WHERE a.Parent = b.Parent AND a.Child <> b.Child)
		    UNION
		    (SELECT a.Child, b.Child FROM rel a, sg, rel b
		     WHERE a.Parent = sg.X AND b.Parent = sg.Y)
		SELECT X, Y FROM sg`,
	"REACH": `
		WITH recursive reach (Dst) AS
		    (SELECT 1) UNION
		    (SELECT edge.Dst FROM reach, edge
		     WHERE reach.Dst = edge.Src)
		SELECT Dst FROM reach`,
	"APSP": `
		WITH recursive path (Src, Dst, min() AS Cost) AS
		    (SELECT Src, Dst, Cost FROM edge) UNION
		    (SELECT path.Src, edge.Dst, path.Cost + edge.Cost
		     FROM path, edge WHERE path.Dst = edge.Src)
		SELECT Src, Dst, Cost FROM path`,
}

func TestParsePaperQueries(t *testing.T) {
	for name, q := range paperQueries {
		if _, err := Parse(q); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParseRoundTripStable(t *testing.T) {
	// Rendering a parsed statement and re-parsing it must succeed and
	// render identically (fixed point of String∘Parse).
	for name, q := range paperQueries {
		stmts, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, s := range stmts {
			again, err := ParseQuery(s.String())
			if err != nil {
				t.Errorf("%s: reparse of %q: %v", name, s.String(), err)
				continue
			}
			if again.String() != s.String() {
				t.Errorf("%s: render not stable:\n  first:  %s\n  second: %s", name, s, again)
			}
		}
	}
}

func TestParseRecursiveAggregateHead(t *testing.T) {
	s, err := ParseQuery(paperQueries["SSSP"])
	if err != nil {
		t.Fatal(err)
	}
	w, ok := s.(*ast.With)
	if !ok {
		t.Fatalf("not a WITH: %T", s)
	}
	if len(w.Views) != 1 {
		t.Fatalf("views = %d", len(w.Views))
	}
	v := w.Views[0]
	if !v.Recursive || v.Name != "path" {
		t.Errorf("view = %+v", v)
	}
	if len(v.Head) != 2 || v.Head[0].Agg != types.AggNone || v.Head[1].Agg != types.AggMin || v.Head[1].Name != "Cost" {
		t.Errorf("head = %+v", v.Head)
	}
	if len(v.Branches) != 2 {
		t.Errorf("branches = %d", len(v.Branches))
	}
	// The base case is a literal select with no FROM.
	if len(v.Branches[0].From) != 0 || len(v.Branches[0].Items) != 2 {
		t.Errorf("base branch = %+v", v.Branches[0])
	}
}

func TestParseMutualRecursion(t *testing.T) {
	s, err := ParseQuery(paperQueries["CompanyControl"])
	if err != nil {
		t.Fatal(err)
	}
	w := s.(*ast.With)
	if len(w.Views) != 2 {
		t.Fatalf("views = %d", len(w.Views))
	}
	if w.Views[0].Name != "cshares" || w.Views[1].Name != "control" {
		t.Errorf("view names = %s, %s", w.Views[0].Name, w.Views[1].Name)
	}
	if w.Views[0].Head[2].Agg != types.AggSum {
		t.Errorf("cshares head = %+v", w.Views[0].Head)
	}
	if len(w.Views[1].Branches) != 1 {
		t.Errorf("control branches = %d", len(w.Views[1].Branches))
	}
}

func TestParseMultiStatementScript(t *testing.T) {
	stmts, err := Parse(paperQueries["IntervalCoalesce"])
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("statements = %d", len(stmts))
	}
	cv, ok := stmts[0].(*ast.CreateView)
	if !ok {
		t.Fatalf("first statement: %T", stmts[0])
	}
	if cv.Name != "lstart" || len(cv.Columns) != 1 || cv.Columns[0] != "T" {
		t.Errorf("create view = %+v", cv)
	}
	if cv.Query.Having == nil || len(cv.Query.GroupBy) != 1 {
		t.Errorf("lstart query lost GROUP BY/HAVING: %s", cv.Query)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	s, err := ParseQuery(`SELECT 1+2*3 FROM t WHERE a = 1 OR b = 2 AND c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if got := sel.Items[0].Expr.String(); got != "(1 + (2 * 3))" {
		t.Errorf("arith precedence: %s", got)
	}
	// AND binds tighter than OR.
	if got := sel.Where.String(); got != "((a = 1) OR ((b = 2) AND (c = 3)))" {
		t.Errorf("bool precedence: %s", got)
	}
}

func TestParseNegativeNumberFolds(t *testing.T) {
	s, err := ParseQuery(`SELECT -5, -2.5`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	l0 := sel.Items[0].Expr.(*ast.Literal)
	l1 := sel.Items[1].Expr.(*ast.Literal)
	if !l0.Value.Equal(types.Int(-5)) || !l1.Value.Equal(types.Float(-2.5)) {
		t.Errorf("negatives = %v, %v", l0.Value, l1.Value)
	}
}

func TestParseCountStarAndDistinct(t *testing.T) {
	s, err := ParseQuery(`SELECT count(*), count(distinct x), sum(y) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	f0 := sel.Items[0].Expr.(*ast.FuncCall)
	f1 := sel.Items[1].Expr.(*ast.FuncCall)
	f2 := sel.Items[2].Expr.(*ast.FuncCall)
	if !f0.Star || f0.Agg != types.AggCount {
		t.Errorf("count(*) = %+v", f0)
	}
	if !f1.Distinct || f1.Agg != types.AggCount {
		t.Errorf("count(distinct) = %+v", f1)
	}
	if f2.Agg != types.AggSum || f2.Distinct {
		t.Errorf("sum = %+v", f2)
	}
}

func TestParseComments(t *testing.T) {
	q := `-- line comment
	SELECT /* block
	comment */ 1`
	if _, err := Parse(q); err != nil {
		t.Error(err)
	}
}

func TestParseStringLiterals(t *testing.T) {
	s, err := ParseQuery(`SELECT 'it''s', 'plain' FROM t WHERE name = 'bob'`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if got := sel.Items[0].Expr.(*ast.Literal).Value.S; got != "it's" {
		t.Errorf("escaped quote = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT 1 FROM`,
		`WITH v(a) AS SELECT 1 2`,
		`SELECT 'unterminated`,
		`SELECT 1.2.3`,
		`CREATE VIEW v AS SELECT 1`, // missing column list
		`WITH recursive v(bogus() AS x) AS (SELECT 1) SELECT x FROM v`, // unknown aggregate
		`SELECT min(a, b) FROM t`,                                      // aggregate arity
		`SELECT sum(*) FROM t`,                                         // star on non-count
		`SELECT 1 ~ 2`,                                                 // bad character
		`SELECT 1 SELECT 2`,                                            // missing separator
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseUnionAll(t *testing.T) {
	s, err := ParseQuery(`(SELECT 1) UNION ALL (SELECT 2) UNION (SELECT 3)`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if len(sel.Unions) != 2 || !sel.Unions[0].All || sel.Unions[1].All {
		t.Errorf("unions = %+v", sel.Unions)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	s, err := ParseQuery(`SELECT a FROM t ORDER BY a DESC, b LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	if _, err := Parse(`select A from T where A > 1 group by A`); err != nil {
		t.Error(err)
	}
}

func TestParseStarItem(t *testing.T) {
	s, err := ParseQuery(`SELECT * FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if !s.(*ast.Select).Items[0].Star {
		t.Error("star item not recognized")
	}
}

func TestHasAggregate(t *testing.T) {
	s, _ := ParseQuery(`SELECT a + max(b) FROM t`)
	if !ast.HasAggregate(s.(*ast.Select).Items[0].Expr) {
		t.Error("HasAggregate should find nested aggregate")
	}
	s, _ = ParseQuery(`SELECT a + b FROM t`)
	if ast.HasAggregate(s.(*ast.Select).Items[0].Expr) {
		t.Error("HasAggregate false positive")
	}
}

func TestParseImplicitAlias(t *testing.T) {
	s, err := ParseQuery(`SELECT a x, b AS y FROM t u`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if sel.Items[0].Alias != "x" || sel.Items[1].Alias != "y" {
		t.Errorf("aliases = %+v", sel.Items)
	}
	if sel.From[0].Binding() != "u" {
		t.Errorf("table binding = %s", sel.From[0].Binding())
	}
}

func TestStatementStringHasKeywords(t *testing.T) {
	s, _ := ParseQuery(paperQueries["Q2-endo-max-BOM"])
	str := s.String()
	for _, want := range []string{"WITH", "recursive", "max() AS Days", "UNION"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q: %s", want, str)
		}
	}
}

func TestParseJoinOnDesugarsToConjuncts(t *testing.T) {
	s, err := ParseQuery(`SELECT a.X FROM t a JOIN u b ON a.X = b.Y JOIN v c ON b.Y = c.Z WHERE a.X > 1`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if len(sel.From) != 3 {
		t.Fatalf("FROM items = %d", len(sel.From))
	}
	str := sel.Where.String()
	for _, want := range []string{"a.X = b.Y", "b.Y = c.Z", "a.X > 1"} {
		if !strings.Contains(str, want) {
			t.Errorf("WHERE missing %q: %s", want, str)
		}
	}
}

func TestParseBetweenIn(t *testing.T) {
	s, err := ParseQuery(`SELECT X FROM t WHERE X BETWEEN 1 AND 5 AND Y IN (1, 2) AND Z NOT IN (3)`)
	if err != nil {
		t.Fatal(err)
	}
	str := s.(*ast.Select).Where.String()
	for _, want := range []string{"(X >= 1)", "(X <= 5)", "(Y = 1)", "(Y = 2)", "NOT(Z = 3)"} {
		if !strings.Contains(str, want) {
			t.Errorf("desugar missing %q: %s", want, str)
		}
	}
	if _, err := ParseQuery(`SELECT X FROM t WHERE X NOT 5`); err == nil {
		t.Error("bare NOT in comparison position should fail")
	}
}

func TestParseDerivedTable(t *testing.T) {
	s, err := ParseQuery(`SELECT d.N FROM (SELECT count(*) N FROM t) d`)
	if err != nil {
		t.Fatal(err)
	}
	sel := s.(*ast.Select)
	if sel.From[0].Sub == nil || sel.From[0].Alias != "d" {
		t.Fatalf("derived table = %+v", sel.From[0])
	}
	if _, err := ParseQuery(`SELECT 1 FROM (SELECT 2)`); err == nil {
		t.Error("derived table without alias should fail")
	}
	// Round-trip stability.
	again, err := ParseQuery(s.String())
	if err != nil || again.String() != s.String() {
		t.Errorf("derived table render unstable: %v / %s", err, s)
	}
}
