// Package parser implements a recursive-descent parser for the RaSQL
// dialect: the SQL:99 subset used by the paper's queries plus RaSQL's
// aggregate-in-head recursive CTE extension.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/sql/token"
	"github.com/rasql/rasql-go/internal/types"
)

// Parse parses a script: one or more statements separated by semicolons.
func Parse(src string) ([]ast.Statement, error) {
	toks, err := token.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []ast.Statement
	for {
		for p.at(token.Semi) {
			p.next()
		}
		if p.at(token.EOF) {
			break
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.at(token.Semi) && !p.at(token.EOF) {
			return nil, p.errorf("expected ';' or end of input, found %s", p.cur())
		}
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("parse: empty input")
	}
	return stmts, nil
}

// ParseQuery parses a single statement and errors if more follow.
func ParseQuery(src string) (ast.Statement, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("parse: expected one statement, found %d", len(stmts))
	}
	return stmts[0], nil
}

type parser struct {
	toks []token.Token
	pos  int
}

func (p *parser) cur() token.Token     { return p.toks[p.pos] }
func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) atKeyword(kw string) bool {
	return p.cur().Kind == token.Keyword && p.cur().Text == kw
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

// expectContextual consumes an identifier that acts as a keyword only in
// this position (e.g. BY after GROUP/ORDER, which is not reserved because
// the paper's Company Control query uses By as a column name).
func (p *parser) expectContextual(word string) error {
	if p.at(token.Ident) && strings.EqualFold(p.cur().Text, word) {
		p.next()
		return nil
	}
	return p.errorf("expected %s, found %s", word, p.cur())
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) expect(k token.Kind, what string) (token.Token, error) {
	if !p.at(k) {
		return token.Token{}, p.errorf("expected %s, found %s", what, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("parse: line %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *parser) statement() (ast.Statement, error) {
	switch {
	case p.atKeyword("CREATE"):
		return p.createView()
	case p.atKeyword("WITH"):
		return p.with()
	case p.atKeyword("SELECT"), p.at(token.LParen):
		return p.selectExpr()
	default:
		return nil, p.errorf("expected CREATE, WITH or SELECT, found %s", p.cur())
	}
}

func (p *parser) createView() (*ast.CreateView, error) {
	p.next() // CREATE
	if err := p.expectKeyword("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.expect(token.Ident, "view name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.LParen, "'('"); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.expect(token.Ident, "column name")
		if err != nil {
			return nil, err
		}
		cols = append(cols, c.Text)
		if p.at(token.Comma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(token.RParen, "')'"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	q, err := p.selectExpr()
	if err != nil {
		return nil, err
	}
	return &ast.CreateView{Name: name.Text, Columns: cols, Query: q}, nil
}

func (p *parser) with() (*ast.With, error) {
	p.next() // WITH
	var views []*ast.CTE
	for {
		cte, err := p.cte()
		if err != nil {
			return nil, err
		}
		views = append(views, cte)
		if p.at(token.Comma) {
			p.next()
			continue
		}
		break
	}
	body, err := p.selectExpr()
	if err != nil {
		return nil, err
	}
	return &ast.With{Views: views, Body: body}, nil
}

func (p *parser) cte() (*ast.CTE, error) {
	c := &ast.CTE{}
	if p.atKeyword("RECURSIVE") {
		c.Recursive = true
		p.next()
	}
	name, err := p.expect(token.Ident, "view name")
	if err != nil {
		return nil, err
	}
	c.Name = name.Text
	if _, err := p.expect(token.LParen, "'('"); err != nil {
		return nil, err
	}
	for {
		h, err := p.headCol()
		if err != nil {
			return nil, err
		}
		c.Head = append(c.Head, h)
		if p.at(token.Comma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(token.RParen, "')'"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	body, err := p.selectExpr()
	if err != nil {
		return nil, err
	}
	// Flatten the union chain into CTE branches; the analyzer classifies
	// each branch as a base or recursive case.
	c.Branches = append(c.Branches, body)
	for _, u := range body.Unions {
		c.Branches = append(c.Branches, u.Select)
	}
	body.Unions = nil
	return c, nil
}

// headCol parses `ident` or `agg() AS ident`.
func (p *parser) headCol() (ast.HeadCol, error) {
	id, err := p.expect(token.Ident, "column name or aggregate")
	if err != nil {
		return ast.HeadCol{}, err
	}
	if !p.at(token.LParen) {
		return ast.HeadCol{Name: id.Text}, nil
	}
	agg, ok := types.ParseAgg(id.Text)
	if !ok {
		return ast.HeadCol{}, p.errorf("unknown aggregate %q in view head", id.Text)
	}
	p.next() // (
	if _, err := p.expect(token.RParen, "')' (RaSQL head aggregates take no argument)"); err != nil {
		return ast.HeadCol{}, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return ast.HeadCol{}, err
	}
	name, err := p.expect(token.Ident, "column name")
	if err != nil {
		return ast.HeadCol{}, err
	}
	return ast.HeadCol{Name: name.Text, Agg: agg}, nil
}

// selectExpr parses `sel (UNION [ALL] sel)*` where sel may be parenthesized.
func (p *parser) selectExpr() (*ast.Select, error) {
	first, err := p.selectPrimary()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("UNION") {
		p.next()
		all := false
		if p.atKeyword("ALL") {
			all = true
			p.next()
		}
		s, err := p.selectPrimary()
		if err != nil {
			return nil, err
		}
		first.Unions = append(first.Unions, ast.UnionPart{All: all, Select: s})
		// A parenthesized branch may itself have parsed trailing unions;
		// hoist them so the chain stays flat and left-deep.
		for _, u := range s.Unions {
			first.Unions = append(first.Unions, u)
		}
		s.Unions = nil
	}
	return first, nil
}

func (p *parser) selectPrimary() (*ast.Select, error) {
	if p.at(token.LParen) {
		p.next()
		s, err := p.selectExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return nil, err
		}
		return s, nil
	}
	return p.selectCore()
}

func (p *parser) selectCore() (*ast.Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &ast.Select{Limit: -1}
	if p.atKeyword("DISTINCT") {
		s.Distinct = true
		p.next()
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if p.at(token.Comma) {
			p.next()
			continue
		}
		break
	}
	var joinConds []ast.Expr
	if p.atKeyword("FROM") {
		p.next()
		for {
			t, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, t)
			// `[INNER] JOIN t ON cond` desugars to another FROM item
			// plus a WHERE conjunct.
			for p.atKeyword("JOIN") || p.atKeyword("INNER") {
				if p.atKeyword("INNER") {
					p.next()
				}
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				jt, err := p.tableRef()
				if err != nil {
					return nil, err
				}
				s.From = append(s.From, jt)
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				cond, err := p.expr()
				if err != nil {
					return nil, err
				}
				joinConds = append(joinConds, cond)
			}
			if p.at(token.Comma) {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("WHERE") {
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	for _, c := range joinConds {
		if s.Where == nil {
			s.Where = c
		} else {
			s.Where = &ast.Binary{Op: ast.OpAnd, L: s.Where, R: c}
		}
	}
	if p.atKeyword("GROUP") {
		p.next()
		if err := p.expectContextual("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if p.at(token.Comma) {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("HAVING") {
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.atKeyword("ORDER") {
		p.next()
		if err := p.expectContextual("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := ast.OrderItem{Expr: e}
			if p.atKeyword("DESC") {
				item.Desc = true
				p.next()
			} else if p.atKeyword("ASC") {
				p.next()
			}
			s.OrderBy = append(s.OrderBy, item)
			if p.at(token.Comma) {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("LIMIT") {
		p.next()
		n, err := p.expect(token.Number, "limit count")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.Text)
		if err != nil || v < 0 {
			return nil, p.errorf("bad LIMIT %q", n.Text)
		}
		s.Limit = v
	}
	return s, nil
}

func (p *parser) selectItem() (ast.SelectItem, error) {
	if p.at(token.Star) {
		p.next()
		return ast.SelectItem{Star: true}, nil
	}
	e, err := p.expr()
	if err != nil {
		return ast.SelectItem{}, err
	}
	item := ast.SelectItem{Expr: e}
	if p.atKeyword("AS") {
		p.next()
		a, err := p.expect(token.Ident, "alias")
		if err != nil {
			return ast.SelectItem{}, err
		}
		item.Alias = a.Text
	} else if p.at(token.Ident) {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) tableRef() (ast.TableRef, error) {
	if p.at(token.LParen) {
		p.next()
		sub, err := p.selectExpr()
		if err != nil {
			return ast.TableRef{}, err
		}
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return ast.TableRef{}, err
		}
		t := ast.TableRef{Sub: sub}
		if p.atKeyword("AS") {
			p.next()
		}
		a, err := p.expect(token.Ident, "derived table alias")
		if err != nil {
			return ast.TableRef{}, err
		}
		t.Alias = a.Text
		return t, nil
	}
	name, err := p.expect(token.Ident, "table name")
	if err != nil {
		return ast.TableRef{}, err
	}
	t := ast.TableRef{Name: name.Text}
	if p.atKeyword("AS") {
		p.next()
		a, err := p.expect(token.Ident, "alias")
		if err != nil {
			return ast.TableRef{}, err
		}
		t.Alias = a.Text
	} else if p.at(token.Ident) {
		t.Alias = p.next().Text
	}
	return t, nil
}

// Expression parsing, lowest precedence first: OR, AND, NOT, comparison,
// additive, multiplicative, unary, primary.

func (p *parser) expr() (ast.Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (ast.Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (ast.Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.next()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (ast.Expr, error) {
	if p.atKeyword("NOT") {
		p.next()
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "NOT", E: e}, nil
	}
	return p.comparison()
}

var cmpOps = map[token.Kind]ast.BinaryOp{
	token.Eq: ast.OpEq, token.Ne: ast.OpNe,
	token.Lt: ast.OpLt, token.Le: ast.OpLe,
	token.Gt: ast.OpGt, token.Ge: ast.OpGe,
}

func (p *parser) comparison() (ast.Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	negate := false
	if p.atKeyword("NOT") && (p.peekKeyword(1, "BETWEEN") || p.peekKeyword(1, "IN")) {
		negate = true
		p.next()
	}
	switch {
	case p.atKeyword("BETWEEN"):
		p.next()
		lo, err := p.additive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.additive()
		if err != nil {
			return nil, err
		}
		e := ast.Expr(&ast.Binary{Op: ast.OpAnd,
			L: &ast.Binary{Op: ast.OpGe, L: l, R: lo},
			R: &ast.Binary{Op: ast.OpLe, L: l, R: hi}})
		if negate {
			e = &ast.Unary{Op: "NOT", E: e}
		}
		return e, nil
	case p.atKeyword("IN"):
		p.next()
		if _, err := p.expect(token.LParen, "'('"); err != nil {
			return nil, err
		}
		var e ast.Expr
		for {
			item, err := p.expr()
			if err != nil {
				return nil, err
			}
			eq := ast.Expr(&ast.Binary{Op: ast.OpEq, L: l, R: item})
			if e == nil {
				e = eq
			} else {
				e = &ast.Binary{Op: ast.OpOr, L: e, R: eq}
			}
			if p.at(token.Comma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return nil, err
		}
		if negate {
			e = &ast.Unary{Op: "NOT", E: e}
		}
		return e, nil
	}
	if negate {
		return nil, p.errorf("expected BETWEEN or IN after NOT")
	}
	if op, ok := cmpOps[p.cur().Kind]; ok {
		p.next()
		r, err := p.additive()
		if err != nil {
			return nil, err
		}
		return &ast.Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

// peekKeyword reports whether the token at offset n ahead is the keyword.
func (p *parser) peekKeyword(n int, kw string) bool {
	i := p.pos + n
	if i >= len(p.toks) {
		return false
	}
	return p.toks[i].Kind == token.Keyword && p.toks[i].Text == kw
}

func (p *parser) additive() (ast.Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(token.Plus) || p.at(token.Minus) {
		op := ast.OpAdd
		if p.at(token.Minus) {
			op = ast.OpSub
		}
		p.next()
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) multiplicative() (ast.Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.at(token.Star) || p.at(token.Slash) || p.at(token.Percent) {
		var op ast.BinaryOp
		switch p.cur().Kind {
		case token.Star:
			op = ast.OpMul
		case token.Slash:
			op = ast.OpDiv
		default:
			op = ast.OpMod
		}
		p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (ast.Expr, error) {
	if p.at(token.Minus) {
		p.next()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		// Fold negation of literals immediately so -1 is a literal.
		if lit, ok := e.(*ast.Literal); ok && lit.Value.IsNumeric() {
			switch lit.Value.K {
			case types.KindInt:
				return &ast.Literal{Value: types.Int(-lit.Value.I)}, nil
			default:
				return &ast.Literal{Value: types.Float(-lit.Value.F)}, nil
			}
		}
		return &ast.Unary{Op: "-", E: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case token.Number:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &ast.Literal{Value: types.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &ast.Literal{Value: types.Int(i)}, nil
	case token.String:
		p.next()
		return &ast.Literal{Value: types.Str(t.Text)}, nil
	case token.Keyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &ast.Literal{Value: types.Null()}, nil
		case "TRUE":
			p.next()
			return &ast.Literal{Value: types.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &ast.Literal{Value: types.Bool(false)}, nil
		}
		return nil, p.errorf("unexpected %s in expression", t)
	case token.LParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case token.Ident:
		p.next()
		if p.at(token.LParen) {
			return p.funcCall(t.Text)
		}
		if p.at(token.Dot) {
			p.next()
			col, err := p.expect(token.Ident, "column name")
			if err != nil {
				return nil, err
			}
			return &ast.ColumnRef{Table: t.Text, Name: col.Text}, nil
		}
		return &ast.ColumnRef{Name: t.Text}, nil
	default:
		return nil, p.errorf("unexpected %s in expression", t)
	}
}

func (p *parser) funcCall(name string) (ast.Expr, error) {
	p.next() // (
	f := &ast.FuncCall{Name: strings.ToLower(name)}
	if agg, ok := types.ParseAgg(name); ok {
		f.Agg = agg
	}
	if p.at(token.Star) {
		p.next()
		f.Star = true
		if _, err := p.expect(token.RParen, "')'"); err != nil {
			return nil, err
		}
		if f.Agg != types.AggCount {
			return nil, p.errorf("only count(*) takes a star argument")
		}
		return f, nil
	}
	if p.atKeyword("DISTINCT") {
		f.Distinct = true
		p.next()
	}
	if !p.at(token.RParen) {
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, a)
			if p.at(token.Comma) {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expect(token.RParen, "')'"); err != nil {
		return nil, err
	}
	if f.Agg != types.AggNone && len(f.Args) != 1 {
		return nil, p.errorf("%s takes exactly one argument", f.Name)
	}
	return f, nil
}
