package parser

import "testing"

// FuzzParse exercises the lexer and parser against arbitrary inputs: they
// must never panic, and anything that parses must render to text that
// parses again to the same rendering (print/parse fixed point).
func FuzzParse(f *testing.F) {
	for _, q := range paperQueries {
		f.Add(q)
	}
	f.Add(`SELECT a.b FROM t a JOIN u ON a.x = u.y WHERE z BETWEEN 1 AND 2`)
	f.Add(`SELECT * FROM (SELECT 1, 'x') d WHERE d.col1 IN (1,2,3)`)
	f.Add(`WITH recursive v(x, min() AS m) AS (SELECT 1, 0) UNION (SELECT v.x, v.m FROM v) SELECT x FROM v`)
	f.Add(`-- comment only`)
	f.Add(`SELECT 'unterminated`)
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src)
		if err != nil {
			return
		}
		for _, s := range stmts {
			text := s.String()
			again, err := ParseQuery(text)
			if err != nil {
				t.Fatalf("rendered statement does not reparse: %q: %v", text, err)
			}
			if again.String() != text {
				t.Fatalf("print/parse not stable:\n%s\n%s", text, again.String())
			}
		}
	})
}
