package optimize

import (
	"testing"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/internal/types"
)

func testProgram(t *testing.T, src string) (*analyze.Program, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New()
	nums := relation.New("nums", types.NewSchema(
		types.Col("X", types.KindInt), types.Col("Y", types.KindInt)))
	for i := int64(0); i < 100; i++ {
		nums.Append(types.Row{types.Int(i), types.Int(i % 10)})
	}
	if err := cat.Register(nums); err != nil {
		t.Fatal(err)
	}
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyze.Statements(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	return prog, cat
}

func evalFinal(t *testing.T, prog *analyze.Program) *relation.Relation {
	t.Helper()
	out, err := exec.Query(prog.Final, exec.NewContext())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPushdownIntoDerivedTable(t *testing.T) {
	src := `SELECT d.X FROM (SELECT X, Y + 1 AS Y1 FROM nums) d WHERE d.Y1 = 3 AND d.X < 50`
	prog, _ := testProgram(t, src)
	before := evalFinal(t, prog)

	Program(prog)
	// Both conjuncts reference only the derived table; they should have
	// moved inside it.
	if len(prog.Final.Conjuncts) != 0 {
		t.Errorf("conjuncts left on the outer query: %d", len(prog.Final.Conjuncts))
	}
	inner := prog.Final.Sources[0].ViewQuery
	if len(inner.Conjuncts) != 2 {
		t.Errorf("derived table should have received 2 conjuncts, has %d", len(inner.Conjuncts))
	}
	after := evalFinal(t, prog)
	if !before.EqualAsBag(after) {
		t.Errorf("pushdown changed results:\n%v\nvs\n%v", before.Sort(), after.Sort())
	}
	if before.Len() != 5 { // Y1=3 → Y=2 → 10 values, X<50 → 5
		t.Errorf("expected 5 rows, got %d", before.Len())
	}
}

func TestNoPushIntoGroupedDerivedTable(t *testing.T) {
	src := `SELECT d.Y FROM (SELECT Y, count(*) AS N FROM nums GROUP BY Y) d WHERE d.N > 5`
	prog, _ := testProgram(t, src)
	before := evalFinal(t, prog)
	Program(prog)
	if len(prog.Final.Conjuncts) != 1 {
		t.Error("filters over grouped views must stay outside (they filter aggregates)")
	}
	after := evalFinal(t, prog)
	if !before.EqualAsBag(after) {
		t.Error("optimization changed grouped results")
	}
}

func TestNoPushIntoNamedView(t *testing.T) {
	src := `
		CREATE VIEW v(X, Y) AS (SELECT X, Y FROM nums);
		SELECT a.X FROM v a, v b WHERE a.X = 1 AND a.X = b.X`
	prog, _ := testProgram(t, src)
	before := evalFinal(t, prog)
	Program(prog)
	// The single-source conjunct must not be pushed into the shared view.
	if len(prog.Final.Conjuncts) != 2 {
		t.Errorf("named-view conjuncts should stay, have %d", len(prog.Final.Conjuncts))
	}
	after := evalFinal(t, prog)
	if !before.EqualAsBag(after) {
		t.Error("optimization changed named-view results")
	}
}

func TestTrivialConjunctElimination(t *testing.T) {
	src := `SELECT X FROM nums WHERE 1 = 1 AND X < 3`
	prog, _ := testProgram(t, src)
	Program(prog)
	if len(prog.Final.Conjuncts) != 1 {
		t.Errorf("constant-true conjunct should be dropped, have %d", len(prog.Final.Conjuncts))
	}
	if evalFinal(t, prog).Len() != 3 {
		t.Error("results changed")
	}
}

func TestOptimizeRecursiveProgram(t *testing.T) {
	cat := catalog.New()
	edge := relation.New("edge", types.NewSchema(
		types.Col("Src", types.KindInt), types.Col("Dst", types.KindInt)))
	for _, p := range [][2]int64{{1, 2}, {2, 3}, {3, 4}} {
		edge.Append(types.Row{types.Int(p[0]), types.Int(p[1])})
	}
	if err := cat.Register(edge); err != nil {
		t.Fatal(err)
	}
	stmts, err := parser.Parse(`
		WITH recursive reach (Dst) AS
		    (SELECT 1) UNION
		    (SELECT edge.Dst FROM reach, edge WHERE reach.Dst = edge.Src AND 2 = 2)
		SELECT Dst FROM reach`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyze.Statements(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	Program(prog)
	rec := prog.Clique.Views[0].RecRules[0]
	if len(rec.Conjuncts) != 1 {
		t.Errorf("rule should keep only the join conjunct, has %d", len(rec.Conjuncts))
	}
}
