// Package optimize implements the rule batch the paper's Section 5 runs
// after analysis: constant evaluation and filter combination happen during
// analysis (expr.Fold / expr.SplitConjuncts); this package adds the
// plan-level rewrites — trivial-conjunct elimination and predicate pushdown
// into (derived) views — applied to the analyzed program before planning.
package optimize

import (
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/sql/expr"
)

// Program optimizes an analyzed program in place and returns it.
func Program(p *analyze.Program) *analyze.Program {
	if p.Final != nil {
		optimizeQuery(p.Final)
	}
	if p.Clique != nil {
		for _, v := range p.Clique.Views {
			for _, r := range append(append([]*analyze.Rule{}, v.BaseRules...), v.RecRules...) {
				r.Conjuncts = simplifyConjuncts(r.Conjuncts)
				for _, s := range r.Sources {
					if s.Kind == analyze.SourceView {
						optimizeQuery(s.ViewQuery)
					}
				}
			}
		}
	}
	return p
}

func optimizeQuery(q *analyze.Query) {
	q.Conjuncts = simplifyConjuncts(q.Conjuncts)
	q.Conjuncts = pushIntoViews(q)
	for _, s := range q.Sources {
		if s.Kind == analyze.SourceView {
			optimizeQuery(s.ViewQuery)
		}
	}
	for _, u := range q.Unions {
		optimizeQuery(u)
	}
}

// simplifyConjuncts drops constant-true conjuncts (e.g. residue of folded
// literals) and keeps everything else.
func simplifyConjuncts(conjuncts []expr.Expr) []expr.Expr {
	out := conjuncts[:0]
	for _, c := range conjuncts {
		if lit, ok := c.(*expr.Lit); ok && lit.V.Truthy() {
			continue
		}
		out = append(out, c)
	}
	return out
}

// pushIntoViews moves conjuncts that reference a single view source down
// into that view's own WHERE clause, substituting the view's item
// expressions for output-column references. Filtering before
// materialization shrinks the intermediate — classic predicate pushdown.
//
// The push is performed only when it is semantics-preserving and
// worthwhile: the view must be ungrouped, without DISTINCT/ORDER BY/LIMIT
// and without UNION branches.
func pushIntoViews(q *analyze.Query) []expr.Expr {
	kept := q.Conjuncts[:0]
	for _, c := range q.Conjuncts {
		inputs := expr.Inputs(c)
		if len(inputs) != 1 {
			kept = append(kept, c)
			continue
		}
		var si int
		for i := range inputs {
			si = i
		}
		src := q.Sources[si]
		// Named views share one analyzed query across all references
		// (and across statements); mutating them would leak the filter
		// into other readers. Only anonymous derived tables — private to
		// this FROM item — are pushed into.
		if src.Kind != analyze.SourceView || src.ViewName != "" || !pushable(src.ViewQuery) {
			kept = append(kept, c)
			continue
		}
		pushed, ok := substitute(c, src.ViewQuery.Items)
		if !ok {
			kept = append(kept, c)
			continue
		}
		src.ViewQuery.Conjuncts = append(src.ViewQuery.Conjuncts, pushed)
	}
	return kept
}

func pushable(v *analyze.Query) bool {
	return v != nil && !v.Grouped && !v.Distinct && len(v.Unions) == 0 &&
		len(v.OrderBy) == 0 && v.Limit < 0 && !v.NoFrom
}

// substitute rewrites an expression over a view's output columns into one
// over the view's own sources, by replacing output-column references with
// the view's item expressions.
func substitute(e expr.Expr, items []expr.Expr) (expr.Expr, bool) {
	switch x := e.(type) {
	case *expr.Col:
		if x.Idx < 0 || x.Idx >= len(items) {
			return nil, false
		}
		return items[x.Idx], true
	case *expr.Lit:
		return x, true
	case *expr.Bin:
		l, ok := substitute(x.L, items)
		if !ok {
			return nil, false
		}
		r, ok := substitute(x.R, items)
		if !ok {
			return nil, false
		}
		return &expr.Bin{Op: x.Op, L: l, R: r}, true
	case *expr.Not:
		inner, ok := substitute(x.E, items)
		if !ok {
			return nil, false
		}
		return &expr.Not{E: inner}, true
	case *expr.Neg:
		inner, ok := substitute(x.E, items)
		if !ok {
			return nil, false
		}
		return &expr.Neg{E: inner}, true
	default:
		return nil, false
	}
}

var _ = ast.OpAnd // the rule batch mirrors ast-level structures
