// Package trace is the engine's structured execution tracer: spans for
// driver phases, stages and tasks, plus per-iteration fixpoint telemetry
// (delta sizes, all-relation growth, shuffle volume, partition skew).
//
// Like the cluster's metrics stopwatch, this package is the observability
// side of the simclock boundary: its readings feed traces and EXPLAIN
// ANALYZE output, never results, placement or iteration counts. It is
// therefore deliberately outside the simclock analyzer's deterministic
// package set — the engine packages that call into it stay clock-free, and
// the clock reads live in exactly one place (clock.go).
//
// A nil *Tracer is the disabled tracer: every method is safe to call on it
// and costs one nil check, no allocation. Hot paths that must stay
// allocation-free when tracing is off (the cluster's per-task loop) call
// SpansEnabled before building any event data.
package trace

import "sync"

// Level selects how much a Tracer records.
type Level int

const (
	// LevelIterations records fixpoint iteration events only. Span calls
	// are no-ops, so a run traced at this level pays one mutex append per
	// iteration — cheap enough to leave on during benchmarking.
	LevelIterations Level = iota
	// LevelSpans additionally records driver-phase, stage and task spans.
	LevelSpans
)

// Track ids (Chrome trace "tid"s). The driver is track 0, workers count
// from 1, and iteration events render on their own counter-style track.
const (
	TidDriver     = 0
	TidIterations = 1000000
)

// TidWorker maps a simulated worker index to its track id (-1, the driver,
// maps to the driver track).
func TidWorker(w int) int {
	if w < 0 {
		return TidDriver
	}
	return w + 1
}

// Arg is one key/value annotation on an event.
type Arg struct {
	Key string
	Val int64
}

// Event is one recorded trace event, timestamped in nanoseconds since the
// tracer was created. Phase follows the Chrome trace-event vocabulary:
// 'X' complete span, 'B'/'E' begin/end pair, 'C' counter, 'i' instant.
type Event struct {
	Name  string
	Phase byte
	// Qid is the query ID of the per-query tracer handle that recorded the
	// event (see ForQuery); 0 for events recorded on the root handle. The
	// Chrome export renders each query as its own process, so interleaved
	// concurrent-query traces stay distinguishable.
	Qid   int64
	Tid   int
	TS    int64
	Dur   int64 // 'X' only
	Args  []Arg
}

// IterationEvent is the per-iteration fixpoint telemetry record. Iteration
// 0 is the base-case (seed) merge; iterations count from 1 after that, so
// the series aligns with the cluster's Iterations metric across execution
// modes.
type IterationEvent struct {
	// Iter is the iteration number (0 = base-case merge).
	Iter int
	// Mode names the evaluator that produced the event (dsn-two-stage,
	// dsn-combined, dsn-decomposed, sql-naive, local, local-naive).
	Mode string
	// DeltaRows counts the delta rows produced by this iteration's merge.
	DeltaRows int
	// AllRows is the all-relation size after the merge.
	AllRows int
	// NewKeys counts delta entries whose tuple/group first appeared this
	// iteration; Improved counts entries whose aggregate value changed on
	// an existing group (DeltaRows = NewKeys + Improved).
	NewKeys  int
	Improved int
	// ShuffleBytes / ShuffleRecords are the shuffle volume written during
	// this iteration (counter deltas, not totals).
	ShuffleBytes   int64
	ShuffleRecords int64
	// PartRows holds the per-partition all-relation row counts after the
	// merge — the skew profile.
	PartRows []int
	// Qid is the query ID of the per-query tracer handle that recorded the
	// event (0 on the root handle), so concurrent queries' convergence
	// series separate cleanly.
	Qid int64
	// Relaxed marks events from barrier-relaxed (SSP/async) execution,
	// where the staleness telemetry below is meaningful; BSP events leave
	// it false and render those columns as absent.
	Relaxed bool
	// StaleRows counts rows consumed from delta batches older than the
	// BSP-fresh stamp during this round (relaxed modes only).
	StaleRows int
	// SupersededRows counts incoming rows the merge discarded because a
	// fresher derivation already covered them — the wasted work barrier
	// relaxation trades for the removed barrier (relaxed modes only).
	SupersededRows int
	// StartNS/EndNS bound the iteration on the trace clock.
	StartNS, EndNS int64
}

// Skew returns the max/mean ratio of the per-partition row counts
// (1.0 = perfectly balanced; 0 when the event carries no partition data).
func (e *IterationEvent) Skew() float64 {
	if len(e.PartRows) == 0 {
		return 0
	}
	total, max := 0, 0
	for _, n := range e.PartRows {
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(len(e.PartRows))
	return float64(max) / mean
}

// Tracer records execution events. It is safe for concurrent use by the
// driver and worker goroutines; a nil Tracer is the disabled tracer.
//
// A Tracer is a handle onto a shared event log: ForQuery derives per-query
// handles that stamp their query ID onto every event while appending to the
// same log, so one engine-attached tracer collects interleaved concurrent
// queries without losing attribution.
type Tracer struct {
	level Level
	start startRef
	// qid stamps every event this handle records (0 on the root handle).
	qid int64
	log *eventLog
}

// eventLog is the shared append-only store behind one tracer and all of its
// per-query handles.
type eventLog struct {
	// mu guards the event logs; every append and read locks it (checked by
	// the guardedby analyzer).
	mu sync.Mutex
	//rasql:guardedby=mu
	events []Event
	//rasql:guardedby=mu
	iters []IterationEvent
}

// New creates a full tracer: spans and iteration events.
func New() *Tracer {
	return &Tracer{level: LevelSpans, start: startClock(), log: &eventLog{}}
}

// NewIterationsOnly creates a tracer that records iteration events but
// drops spans — the mode the benchmark runner uses so convergence curves
// come out of measured runs without per-task tracing overhead.
func NewIterationsOnly() *Tracer {
	return &Tracer{level: LevelIterations, start: startClock(), log: &eventLog{}}
}

// ForQuery derives a per-query handle: same level, clock base and event log,
// with qid stamped onto every event the handle records. Nil-safe (the
// disabled tracer derives itself). The cluster calls it once per
// QueryContext, so the one allocation amortizes over the query.
func (t *Tracer) ForQuery(qid int64) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{level: t.level, start: t.start, qid: qid, log: t.log}
}

// Qid returns the handle's query ID (0 for the root handle or nil).
func (t *Tracer) Qid() int64 {
	if t == nil {
		return 0
	}
	return t.qid
}

// Enabled reports whether the tracer records anything (nil = disabled).
//
//rasql:noalloc
func (t *Tracer) Enabled() bool { return t != nil }

// SpansEnabled reports whether span events are recorded. Callers that
// would allocate to build span data must check this first.
//
//rasql:noalloc
func (t *Tracer) SpansEnabled() bool { return t != nil && t.level >= LevelSpans }

// Span is an in-flight span returned by Begin; its End records the event.
// The zero Span (from a disabled tracer) is a no-op.
type Span struct {
	t    *Tracer
	name string
	tid  int
	args []Arg
	t0   int64
}

// Begin opens a span on the given track. On a disabled tracer it returns
// the zero Span without reading the clock or allocating.
//
//rasql:noalloc
func (t *Tracer) Begin(name string, tid int) Span {
	if !t.SpansEnabled() {
		return Span{}
	}
	return Span{t: t, name: name, tid: tid, t0: t.sinceStart()}
}

// BeginArgs is Begin with annotations attached to the completed span. The
// body allocates nothing; the implicit args slice is built (and paid for)
// at call sites, which gate on SpansEnabled first.
//
//rasql:noalloc
func (t *Tracer) BeginArgs(name string, tid int, args ...Arg) Span {
	if !t.SpansEnabled() {
		return Span{}
	}
	return Span{t: t, name: name, tid: tid, args: args, t0: t.sinceStart()}
}

// End completes the span and records it as an 'X' event.
//
//rasql:noalloc
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := s.t.sinceStart()
	s.t.append(Event{Name: s.name, Phase: 'X', Tid: s.tid, TS: s.t0, Dur: now - s.t0, Args: s.args})
}

// IterSpan brackets one fixpoint iteration; End attaches the telemetry.
// The zero IterSpan is a no-op.
type IterSpan struct {
	t    *Tracer
	iter int
	t0   int64
}

// BeginIteration opens iteration telemetry. Unlike Begin it works at every
// level — iteration events are the tracer's reason to exist.
//
//rasql:noalloc
func (t *Tracer) BeginIteration(iter int) IterSpan {
	if t == nil {
		return IterSpan{}
	}
	return IterSpan{t: t, iter: iter, t0: t.sinceStart()}
}

// End records the iteration event: the telemetry row plus, on the
// iteration track, a B/E span pair and counter samples for the convergence
// curves. ev.Iter, StartNS and EndNS are filled from the span.
//
//rasql:noalloc
func (s IterSpan) End(ev IterationEvent) {
	if s.t == nil {
		return
	}
	ev.Iter = s.iter
	ev.StartNS, ev.EndNS = s.t0, s.t.sinceStart()
	//rasql:allow noalloc -- once per fixpoint iteration: the telemetry row amortizes over the iteration's work
	s.t.recordIteration(ev)
}

// Now returns nanoseconds since the tracer started — the timestamp base
// every event uses. Barrier-relaxed evaluators stamp per-round telemetry
// with it as rounds complete and emit the events later via EmitIteration
// (rounds of different partitions interleave, so no span brackets them).
// Zero on a disabled tracer.
//
//rasql:noalloc
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.sinceStart()
}

// EmitIteration records a fully built iteration event whose Iter, StartNS
// and EndNS the caller has already stamped (see Now). A no-op on a disabled
// tracer.
func (t *Tracer) EmitIteration(ev IterationEvent) {
	if t == nil {
		return
	}
	t.recordIteration(ev)
}

// recordIteration appends the telemetry row plus, on the iteration track,
// a B/E span pair and counter samples for the convergence curves.
func (t *Tracer) recordIteration(ev IterationEvent) {
	name := "iteration " + itoa(ev.Iter)
	ev.Qid = t.qid
	t.log.mu.Lock()
	t.log.iters = append(t.log.iters, ev)
	if t.level >= LevelSpans {
		t.log.events = append(t.log.events,
			Event{Name: name, Phase: 'B', Qid: t.qid, Tid: TidIterations, TS: ev.StartNS},
			Event{Name: name, Phase: 'E', Qid: t.qid, Tid: TidIterations, TS: ev.EndNS},
			Event{Name: "delta rows", Phase: 'C', Qid: t.qid, Tid: TidIterations, TS: ev.EndNS, Args: []Arg{{"rows", int64(ev.DeltaRows)}}},
			Event{Name: "all rows", Phase: 'C', Qid: t.qid, Tid: TidIterations, TS: ev.EndNS, Args: []Arg{{"rows", int64(ev.AllRows)}}},
			Event{Name: "shuffle bytes/iter", Phase: 'C', Qid: t.qid, Tid: TidIterations, TS: ev.EndNS, Args: []Arg{{"bytes", ev.ShuffleBytes}}},
		)
	}
	t.log.mu.Unlock()
}

// EndAt is End with the iteration number resolved late — for evaluators
// (the decomposed runner) that only learn the count when their single
// stage completes.
func (s IterSpan) EndAt(iter int, ev IterationEvent) {
	if s.t == nil {
		return
	}
	s.iter = iter
	s.End(ev)
}

// Instant records a point event on a track.
func (t *Tracer) Instant(name string, tid int, args ...Arg) {
	if !t.SpansEnabled() {
		return
	}
	t.append(Event{Name: name, Phase: 'i', Tid: tid, TS: t.sinceStart(), Args: args})
}

func (t *Tracer) append(e Event) {
	e.Qid = t.qid
	t.log.mu.Lock()
	t.log.events = append(t.log.events, e)
	t.log.mu.Unlock()
}

// Events returns a copy of the recorded events (all queries' handles share
// one log, so a root handle sees every query's events).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.log.mu.Lock()
	defer t.log.mu.Unlock()
	return append([]Event(nil), t.log.events...)
}

// Iterations returns a copy of the recorded iteration telemetry, in
// recording order.
func (t *Tracer) Iterations() []IterationEvent {
	if t == nil {
		return nil
	}
	t.log.mu.Lock()
	defer t.log.mu.Unlock()
	return append([]IterationEvent(nil), t.log.iters...)
}

// SpanStat aggregates the 'X' spans sharing one name.
type SpanStat struct {
	Name    string
	Count   int
	TotalNS int64
}

// SummarizeSpans aggregates complete ('X') spans by name, in first-seen
// order. A nil pred admits every span.
func SummarizeSpans(events []Event, pred func(Event) bool) []SpanStat {
	idx := map[string]int{}
	var out []SpanStat
	for _, e := range events {
		if e.Phase != 'X' || (pred != nil && !pred(e)) {
			continue
		}
		i, ok := idx[e.Name]
		if !ok {
			i = len(out)
			idx[e.Name] = i
			out = append(out, SpanStat{Name: e.Name})
		}
		out[i].Count++
		out[i].TotalNS += e.Dur
	}
	return out
}

// itoa is strconv.Itoa for small non-negative ints without the import.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
