package trace

import (
	"bytes"
	"strings"
	"testing"
)

//rasql:allocpin trace.Tracer.Enabled trace.Tracer.SpansEnabled trace.Tracer.Begin trace.Tracer.BeginArgs trace.Span.End trace.Tracer.BeginIteration trace.IterSpan.End trace.Tracer.Now
func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Begin("task", 3)
		s.End()
		tr.BeginArgs("task", 3).End()
		is := tr.BeginIteration(1)
		is.End(IterationEvent{DeltaRows: 7})
		if tr.Enabled() || tr.SpansEnabled() {
			t.Fatal("nil tracer reports enabled")
		}
		if tr.Now() != 0 {
			t.Fatal("nil tracer reports a nonzero clock")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %v allocs/op, want 0", allocs)
	}
}

func TestIterationsOnlyLevelDropsSpans(t *testing.T) {
	tr := NewIterationsOnly()
	tr.Begin("stage", TidDriver).End()
	tr.Instant("mark", TidDriver)
	is := tr.BeginIteration(2)
	is.End(IterationEvent{Mode: "dsn-two-stage", DeltaRows: 5, AllRows: 9})
	if got := tr.Events(); len(got) != 0 {
		t.Fatalf("iterations-only tracer recorded %d span events, want 0", len(got))
	}
	iters := tr.Iterations()
	if len(iters) != 1 {
		t.Fatalf("got %d iteration events, want 1", len(iters))
	}
	ev := iters[0]
	if ev.Iter != 2 || ev.DeltaRows != 5 || ev.AllRows != 9 || ev.Mode != "dsn-two-stage" {
		t.Fatalf("unexpected iteration event: %+v", ev)
	}
	if ev.EndNS < ev.StartNS {
		t.Fatalf("iteration ends before it starts: %+v", ev)
	}
}

func TestSpansRecorded(t *testing.T) {
	tr := New()
	outer := tr.Begin("outer", TidDriver)
	tr.BeginArgs("task", TidWorker(0), Arg{"part", 3}).End()
	tr.BeginArgs("task", TidWorker(1), Arg{"part", 4}).End()
	outer.End()

	events := tr.Events()
	stats := SummarizeSpans(events, nil)
	if len(stats) != 2 {
		t.Fatalf("got %d span stats, want 2: %+v", len(stats), stats)
	}
	// Spans are recorded when they End, so the inner tasks land first.
	if stats[0].Name != "task" || stats[0].Count != 2 {
		t.Fatalf("first stat = %+v, want task×2 (first-seen order)", stats[0])
	}
	if stats[1].Name != "outer" || stats[1].Count != 1 {
		t.Fatalf("second stat = %+v, want outer×1", stats[1])
	}
	workerOnly := SummarizeSpans(events, func(e Event) bool { return e.Tid != TidDriver })
	if len(workerOnly) != 1 || workerOnly[0].Count != 2 {
		t.Fatalf("filtered stats = %+v, want task×2 only", workerOnly)
	}
}

func TestSkew(t *testing.T) {
	ev := IterationEvent{PartRows: []int{10, 10, 10, 10}}
	if got := ev.Skew(); got != 1 {
		t.Fatalf("balanced skew = %v, want 1", got)
	}
	ev = IterationEvent{PartRows: []int{40, 0, 0, 0}}
	if got := ev.Skew(); got != 4 {
		t.Fatalf("skewed = %v, want 4", got)
	}
	ev = IterationEvent{}
	if got := ev.Skew(); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
}

func TestWriteChromeValidates(t *testing.T) {
	tr := New()
	stage := tr.Begin("stage shufflemap", TidDriver)
	tr.BeginArgs("task", TidWorker(0), Arg{"part", 0}).End()
	tr.BeginArgs("task", TidWorker(1), Arg{"part", 1}).End()
	stage.End()
	it := tr.BeginIteration(1)
	it.End(IterationEvent{Mode: "dsn-two-stage", DeltaRows: 3, AllRows: 5, ShuffleBytes: 64, PartRows: []int{2, 3}})
	tr.Instant("fixpoint reached", TidDriver)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("own output does not validate: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{`"worker 0"`, `"worker 1"`, `"driver"`, `"fixpoint iterations"`, `"delta rows"`, `"traceEvents"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome output missing %s", want)
		}
	}
}

func TestValidateChromeRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"no events":      `{"traceEvents":[]}`,
		"unnamed":        `[{"ph":"i","pid":1,"tid":0,"ts":1}]`,
		"bad phase":      `[{"name":"x","ph":"Q","pid":1,"tid":0,"ts":1}]`,
		"missing ts":     `[{"name":"x","ph":"i","pid":1,"tid":0}]`,
		"negative ts":    `[{"name":"x","ph":"i","pid":1,"tid":0,"ts":-1}]`,
		"time travel":    `[{"name":"a","ph":"i","pid":1,"tid":0,"ts":5},{"name":"b","ph":"i","pid":1,"tid":0,"ts":2}]`,
		"unopened end":   `[{"name":"x","ph":"E","pid":1,"tid":0,"ts":1}]`,
		"mismatched end": `[{"name":"a","ph":"B","pid":1,"tid":0,"ts":1},{"name":"b","ph":"E","pid":1,"tid":0,"ts":2}]`,
		"unclosed begin": `[{"name":"a","ph":"B","pid":1,"tid":0,"ts":1}]`,
		"negative dur":   `[{"name":"a","ph":"X","pid":1,"tid":0,"ts":1,"dur":-2}]`,
	}
	for name, doc := range cases {
		if err := ValidateChrome([]byte(doc)); err == nil {
			t.Errorf("%s: validated but should not have", name)
		}
	}
	ok := `[{"name":"m","ph":"M","pid":1,"tid":0},{"name":"a","ph":"B","pid":1,"tid":0,"ts":1},{"name":"a","ph":"E","pid":1,"tid":0,"ts":2}]`
	if err := ValidateChrome([]byte(ok)); err != nil {
		t.Errorf("bare array with balanced spans rejected: %v", err)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				tr.BeginArgs("task", TidWorker(w), Arg{"part", int64(i)}).End()
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if got := len(tr.Events()); got != 800 {
		t.Fatalf("recorded %d events, want 800", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("concurrent trace does not validate: %v", err)
	}
}

// BenchmarkDisabledTracer pins the disabled-tracer hot-path cost: run with
// -benchmem, it must report 0 allocs/op.
func BenchmarkDisabledTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := tr.Begin("task", 1)
		s.End()
		if tr.SpansEnabled() {
			b.Fatal("unreachable")
		}
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Begin("task", 1).End()
	}
}

// TestMultiQueryChrome drives two per-query tracer handles over one shared
// log from concurrent goroutines: the export must give each query its own
// named process (pid = query ID), and ValidateChrome must accept the
// interleaved file because it tracks spans and timelines per (pid, tid).
func TestMultiQueryChrome(t *testing.T) {
	root := New()
	done := make(chan struct{})
	for q := 1; q <= 2; q++ {
		go func(q int) {
			defer func() { done <- struct{}{} }()
			tr := root.ForQuery(int64(q))
			if tr.Qid() != int64(q) {
				t.Errorf("ForQuery(%d).Qid() = %d", q, tr.Qid())
			}
			sp := tr.Begin("fixpoint", TidDriver)
			for i := 0; i < 50; i++ {
				tr.BeginArgs("task", TidWorker(i%4), Arg{"part", int64(i)}).End()
			}
			sp.End()
		}(q)
	}
	<-done
	<-done

	events := root.Events()
	if len(events) != 2*(1+50) {
		t.Fatalf("shared log holds %d events, want %d", len(events), 2*(1+50))
	}
	byQid := map[int64]int{}
	for _, e := range events {
		byQid[e.Qid]++
	}
	if byQid[1] != 51 || byQid[2] != 51 {
		t.Fatalf("per-query event counts = %v, want 51 each", byQid)
	}

	var buf bytes.Buffer
	if err := root.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("multi-query trace does not validate: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"rasql"`, `"rasql query 2"`, `"pid":2`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome output missing %s", want)
		}
	}
}

// TestValidateChromePerTrack checks that validation state is per (pid, tid)
// track: interleavings that are legal across queries stay legal, while the
// same shapes on one track still fail.
func TestValidateChromePerTrack(t *testing.T) {
	// Query 2's span opens inside query 1's and outlives it; timestamps
	// rewind between pids. Legal: the tracks are independent.
	ok := `[{"name":"a","ph":"B","pid":1,"tid":0,"ts":10},
	        {"name":"b","ph":"B","pid":2,"tid":0,"ts":5},
	        {"name":"a","ph":"E","pid":1,"tid":0,"ts":20},
	        {"name":"b","ph":"E","pid":2,"tid":0,"ts":30}]`
	if err := ValidateChrome([]byte(ok)); err != nil {
		t.Errorf("cross-pid interleaving rejected: %v", err)
	}
	// Same interleaving with one pid: mismatched nesting on a single track.
	bad := `[{"name":"a","ph":"B","pid":1,"tid":0,"ts":10},
	         {"name":"b","ph":"B","pid":1,"tid":0,"ts":15},
	         {"name":"a","ph":"E","pid":1,"tid":0,"ts":20},
	         {"name":"b","ph":"E","pid":1,"tid":0,"ts":30}]`
	if err := ValidateChrome([]byte(bad)); err == nil {
		t.Error("mismatched nesting on one track validated but should not have")
	}
	// Unclosed span diagnostics name the track.
	unclosed := `[{"name":"a","ph":"B","pid":3,"tid":7,"ts":1}]`
	err := ValidateChrome([]byte(unclosed))
	if err == nil || !strings.Contains(err.Error(), "3/7") {
		t.Errorf("unclosed-span error %v does not name track 3/7", err)
	}
}
