package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteChrome serializes the recorded events in the Chrome trace-event JSON
// format (the one Perfetto and chrome://tracing load): an object with a
// traceEvents array, timestamps and durations in microseconds. Each query
// renders as its own named process (pid = query ID), so concurrent queries
// interleaved in one shared log stay distinguishable; within a process each
// worker renders as its own named thread track, iteration telemetry as B/E
// slices plus counter series on a dedicated track.
func (t *Tracer) WriteChrome(w io.Writer) error {
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })

	out := make([]map[string]any, 0, len(events)+8)
	type track struct {
		pid int
		tid int
	}
	seenPid := map[int]bool{}
	seenTrack := map[track]bool{}
	for _, e := range events {
		pid := chromePid(e.Qid)
		if !seenPid[pid] {
			seenPid[pid] = true
			out = append(out, map[string]any{
				"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
				"args": map[string]any{"name": processName(e.Qid)},
			})
		}
		if k := (track{pid, e.Tid}); !seenTrack[k] {
			seenTrack[k] = true
			out = append(out, map[string]any{
				"name": "thread_name", "ph": "M", "pid": pid, "tid": e.Tid,
				"args": map[string]any{"name": trackName(e.Tid)},
			})
		}
	}
	for _, e := range events {
		ev := map[string]any{
			"name": e.Name,
			"ph":   string(e.Phase),
			"pid":  chromePid(e.Qid),
			"tid":  e.Tid,
			"ts":   float64(e.TS) / 1e3,
		}
		if e.Phase == 'X' {
			ev["dur"] = float64(e.Dur) / 1e3
		}
		if e.Phase == 'i' {
			ev["s"] = "t" // thread-scoped instant
		}
		if len(e.Args) > 0 {
			args := make(map[string]any, len(e.Args))
			for _, a := range e.Args {
				args[a.Key] = a.Val
			}
			ev["args"] = args
		}
		out = append(out, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	})
}

// chromePid maps a query ID to its Chrome process id. Query 1 and the root
// handle (qid 0) share pid 1, so single-query traces keep the layout every
// existing consumer knows; later queries get their own process.
func chromePid(qid int64) int {
	if qid <= 1 {
		return 1
	}
	return int(qid)
}

// processName labels a query's process track.
func processName(qid int64) string {
	if qid <= 1 {
		return "rasql"
	}
	return "rasql query " + itoa(int(qid))
}

func trackName(tid int) string {
	switch {
	case tid == TidDriver:
		return "driver"
	case tid == TidIterations:
		return "fixpoint iterations"
	default:
		return "worker " + itoa(tid-1)
	}
}

// chromeEvent is the subset of the trace-event schema ValidateChrome checks.
type chromeEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	TS   *float64 `json:"ts"`
	Dur  float64  `json:"dur"`
}

// ValidateChrome checks that data is a well-formed Chrome trace: parseable
// as {"traceEvents": [...]} or a bare event array, every event carrying a
// name, a known phase and a non-negative timestamp, timestamps monotone
// non-decreasing per track, and B/E pairs balanced with matching names.
// A track is a (pid, tid) pair: concurrent queries export as separate
// processes, so multi-query traces validate each query's spans and
// timelines independently even though the events interleave in the file.
func ValidateChrome(data []byte) error {
	var wrapper struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	var events []chromeEvent
	if err := json.Unmarshal(data, &wrapper); err == nil && wrapper.TraceEvents != nil {
		events = wrapper.TraceEvents
	} else if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("trace: not a trace-event JSON document: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("trace: no events")
	}

	type track struct {
		pid int
		tid int
	}
	lastTS := map[track]float64{}
	stacks := map[track][]string{}
	for i, e := range events {
		where := fmt.Sprintf("event %d (%q)", i, e.Name)
		if e.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		switch e.Ph {
		case "B", "E", "X", "C", "i", "M":
		default:
			return fmt.Errorf("trace: %s has unsupported phase %q", where, e.Ph)
		}
		if e.Ph == "M" {
			continue // metadata events carry no timestamp
		}
		if e.TS == nil {
			return fmt.Errorf("trace: %s has no timestamp", where)
		}
		ts := *e.TS
		if ts < 0 {
			return fmt.Errorf("trace: %s has negative timestamp %v", where, ts)
		}
		k := track{e.Pid, e.Tid}
		if prev, ok := lastTS[k]; ok && ts < prev {
			return fmt.Errorf("trace: %s goes back in time on track %d/%d (%v < %v)", where, e.Pid, e.Tid, ts, prev)
		}
		lastTS[k] = ts
		switch e.Ph {
		case "X":
			if e.Dur < 0 {
				return fmt.Errorf("trace: %s has negative duration %v", where, e.Dur)
			}
		case "B":
			stacks[k] = append(stacks[k], e.Name)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("trace: %s ends a span that never began on track %d/%d", where, e.Pid, e.Tid)
			}
			if top := st[len(st)-1]; top != e.Name {
				return fmt.Errorf("trace: %s ends while %q is open on track %d/%d", where, top, e.Pid, e.Tid)
			}
			stacks[k] = st[:len(st)-1]
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("trace: track %d/%d has %d unclosed span(s), first %q", k.pid, k.tid, len(st), st[0])
		}
	}
	return nil
}
