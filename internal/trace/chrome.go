package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteChrome serializes the recorded events in the Chrome trace-event JSON
// format (the one Perfetto and chrome://tracing load): an object with a
// traceEvents array, timestamps and durations in microseconds. Each worker
// renders as its own named thread track, iteration telemetry as B/E slices
// plus counter series on a dedicated track.
func (t *Tracer) WriteChrome(w io.Writer) error {
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })

	out := make([]map[string]any, 0, len(events)+8)
	out = append(out, map[string]any{
		"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
		"args": map[string]any{"name": "rasql"},
	})
	seen := map[int]bool{}
	for _, e := range events {
		if seen[e.Tid] {
			continue
		}
		seen[e.Tid] = true
		out = append(out, map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": e.Tid,
			"args": map[string]any{"name": trackName(e.Tid)},
		})
	}
	for _, e := range events {
		ev := map[string]any{
			"name": e.Name,
			"ph":   string(e.Phase),
			"pid":  1,
			"tid":  e.Tid,
			"ts":   float64(e.TS) / 1e3,
		}
		if e.Phase == 'X' {
			ev["dur"] = float64(e.Dur) / 1e3
		}
		if e.Phase == 'i' {
			ev["s"] = "t" // thread-scoped instant
		}
		if len(e.Args) > 0 {
			args := make(map[string]any, len(e.Args))
			for _, a := range e.Args {
				args[a.Key] = a.Val
			}
			ev["args"] = args
		}
		out = append(out, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ms",
	})
}

func trackName(tid int) string {
	switch {
	case tid == TidDriver:
		return "driver"
	case tid == TidIterations:
		return "fixpoint iterations"
	default:
		return "worker " + itoa(tid-1)
	}
}

// chromeEvent is the subset of the trace-event schema ValidateChrome checks.
type chromeEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	TS   *float64 `json:"ts"`
	Dur  float64  `json:"dur"`
}

// ValidateChrome checks that data is a well-formed Chrome trace: parseable
// as {"traceEvents": [...]} or a bare event array, every event carrying a
// name, a known phase and a non-negative timestamp, timestamps monotone
// non-decreasing per track, and B/E pairs balanced with matching names.
func ValidateChrome(data []byte) error {
	var wrapper struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	var events []chromeEvent
	if err := json.Unmarshal(data, &wrapper); err == nil && wrapper.TraceEvents != nil {
		events = wrapper.TraceEvents
	} else if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("trace: not a trace-event JSON document: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("trace: no events")
	}

	lastTS := map[int]float64{}
	stacks := map[int][]string{}
	for i, e := range events {
		where := fmt.Sprintf("event %d (%q)", i, e.Name)
		if e.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		switch e.Ph {
		case "B", "E", "X", "C", "i", "M":
		default:
			return fmt.Errorf("trace: %s has unsupported phase %q", where, e.Ph)
		}
		if e.Ph == "M" {
			continue // metadata events carry no timestamp
		}
		if e.TS == nil {
			return fmt.Errorf("trace: %s has no timestamp", where)
		}
		ts := *e.TS
		if ts < 0 {
			return fmt.Errorf("trace: %s has negative timestamp %v", where, ts)
		}
		if prev, ok := lastTS[e.Tid]; ok && ts < prev {
			return fmt.Errorf("trace: %s goes back in time on track %d (%v < %v)", where, e.Tid, ts, prev)
		}
		lastTS[e.Tid] = ts
		switch e.Ph {
		case "X":
			if e.Dur < 0 {
				return fmt.Errorf("trace: %s has negative duration %v", where, e.Dur)
			}
		case "B":
			stacks[e.Tid] = append(stacks[e.Tid], e.Name)
		case "E":
			st := stacks[e.Tid]
			if len(st) == 0 {
				return fmt.Errorf("trace: %s ends a span that never began on track %d", where, e.Tid)
			}
			if top := st[len(st)-1]; top != e.Name {
				return fmt.Errorf("trace: %s ends while %q is open on track %d", where, top, e.Tid)
			}
			stacks[e.Tid] = st[:len(st)-1]
		}
	}
	for tid, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("trace: track %d has %d unclosed span(s), first %q", tid, len(st), st[0])
		}
	}
	return nil
}
