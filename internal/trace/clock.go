package trace

import "time"

// startRef anchors a tracer's timeline. All event timestamps are nanoseconds
// since this anchor, so traces from one run share a comparable time base.
//
// These are the trace package's only wall-clock reads, the observability
// twin of the cluster metrics stopwatch: readings feed trace events and
// EXPLAIN ANALYZE rendering, never results, placement or iteration counts.
// The deterministic engine packages (covered by the simclock analyzer)
// never read the clock themselves — they hand data to this package.
type startRef struct{ t0 time.Time }

func startClock() startRef {
	return startRef{t0: time.Now()}
}

func (t *Tracer) sinceStart() int64 {
	return int64(time.Since(t.start.t0))
}
