package cli

import (
	"os"
	"path/filepath"
	"testing"

	rasql "github.com/rasql/rasql-go"
)

func TestParseSchema(t *testing.T) {
	s, err := ParseSchema("Src int, Dst int, Cost double, Name string, Ok boolean")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5 {
		t.Fatalf("cols = %d", s.Len())
	}
	if s.Columns[2].Type != rasql.KindFloat || s.Columns[3].Type != rasql.KindString {
		t.Errorf("kinds = %v", s)
	}
	if _, err := ParseSchema(""); err == nil {
		t.Error("empty schema must fail")
	}
	if _, err := ParseSchema("X unknownkind"); err == nil {
		t.Error("unknown kind must fail")
	}
	if _, err := ParseSchema("JustAName"); err == nil {
		t.Error("missing kind must fail")
	}
}

func TestParseKindAliases(t *testing.T) {
	for _, c := range []struct {
		in   string
		want rasql.Kind
	}{
		{"INT", rasql.KindInt}, {"bigint", rasql.KindInt},
		{"float", rasql.KindFloat}, {"REAL", rasql.KindFloat},
		{"varchar", rasql.KindString}, {"text", rasql.KindString},
		{"bool", rasql.KindBool},
	} {
		got, err := ParseKind(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseKind(%q) = %v, %v", c.in, got, err)
		}
	}
}

func TestParseTableSpec(t *testing.T) {
	ts, err := ParseTableSpec("edge=/data/e.csv:Src int,Dst int")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Name != "edge" || ts.Path != "/data/e.csv" || ts.Schema.Len() != 2 {
		t.Errorf("spec = %+v", ts)
	}
	for _, bad := range []string{"", "noequals", "n=p", "=p:X int", "n=:X int"} {
		if _, err := ParseTableSpec(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

func TestLoadTables(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e.csv")
	if err := os.WriteFile(path, []byte("Src,Dst\n1,2\n2,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := rasql.New(rasql.Config{})
	if err := LoadTables(eng, []string{"edge=" + path + ":Src int,Dst int"}); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Query("SELECT count(*) FROM edge")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Rows[0][0].Equal(rasql.Int(2)) {
		t.Errorf("loaded rows = %v", out.Rows[0][0])
	}
	if err := LoadTables(eng, []string{"bad=missing.csv:X int"}); err == nil {
		t.Error("missing file must fail")
	}
}

func TestParseChaos(t *testing.T) {
	cfg, err := ParseChaos("seed=7,rate=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Rate != 0.01 || cfg.MaxAttempts != 0 {
		t.Errorf("cfg = %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Error("rate>0 must enable the injector")
	}
	cfg, err = ParseChaos(" rate=0.5 , attempts=5 ")
	if err != nil || cfg.Rate != 0.5 || cfg.MaxAttempts != 5 {
		t.Errorf("cfg = %+v, err %v", cfg, err)
	}
	if cfg, err := ParseChaos(""); err != nil || cfg.Enabled() {
		t.Errorf("empty spec must be the disabled zero config, got %+v, %v", cfg, err)
	}
	for _, bad := range []string{"seed", "seed=x", "rate=2", "rate=-0.1", "attempts=0", "bogus=1"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("spec %q should fail", bad)
		}
	}
}

func TestMultiFlag(t *testing.T) {
	var m MultiFlag
	_ = m.Set("a")
	_ = m.Set("b")
	if len(m) != 2 || m.String() != "a; b" {
		t.Errorf("multiflag = %v", m)
	}
}
