// Package cli holds flag-parsing helpers shared by the command-line tools:
// table specs, schema parsing and engine configuration.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	rasql "github.com/rasql/rasql-go"
)

// TableSpec is a parsed -table flag: name=path:schema.
type TableSpec struct {
	Name   string
	Path   string
	Schema rasql.Schema
}

// ParseTableSpec parses "name=path:Col1 int,Col2 double,...".
func ParseTableSpec(spec string) (TableSpec, error) {
	eq := strings.IndexByte(spec, '=')
	if eq < 0 {
		return TableSpec{}, fmt.Errorf("table spec %q: want name=path:schema", spec)
	}
	name := strings.TrimSpace(spec[:eq])
	rest := spec[eq+1:]
	colon := strings.LastIndexByte(rest, ':')
	if colon < 0 {
		return TableSpec{}, fmt.Errorf("table spec %q: missing schema after path (name=path:Col kind,...)", spec)
	}
	path := strings.TrimSpace(rest[:colon])
	schema, err := ParseSchema(rest[colon+1:])
	if err != nil {
		return TableSpec{}, fmt.Errorf("table spec %q: %w", spec, err)
	}
	if name == "" || path == "" {
		return TableSpec{}, fmt.Errorf("table spec %q: empty name or path", spec)
	}
	return TableSpec{Name: name, Path: path, Schema: schema}, nil
}

// ParseSchema parses "Col1 int,Col2 double,Col3 string,Col4 boolean".
func ParseSchema(s string) (rasql.Schema, error) {
	var cols []rasql.Column
	for _, part := range strings.Split(s, ",") {
		fields := strings.Fields(strings.TrimSpace(part))
		if len(fields) != 2 {
			return rasql.Schema{}, fmt.Errorf("bad column %q: want \"Name kind\"", part)
		}
		kind, err := ParseKind(fields[1])
		if err != nil {
			return rasql.Schema{}, err
		}
		cols = append(cols, rasql.Col(fields[0], kind))
	}
	if len(cols) == 0 {
		return rasql.Schema{}, fmt.Errorf("empty schema")
	}
	return rasql.NewSchema(cols...), nil
}

// ParseKind parses a column kind name.
func ParseKind(s string) (rasql.Kind, error) {
	switch strings.ToLower(s) {
	case "int", "integer", "bigint":
		return rasql.KindInt, nil
	case "double", "float", "real":
		return rasql.KindFloat, nil
	case "string", "varchar", "text", "str":
		return rasql.KindString, nil
	case "bool", "boolean":
		return rasql.KindBool, nil
	default:
		return 0, fmt.Errorf("unknown column kind %q (int|double|string|boolean)", s)
	}
}

// LoadTables reads every spec into a relation and registers it.
func LoadTables(eng *rasql.Engine, specs []string) error {
	for _, s := range specs {
		ts, err := ParseTableSpec(s)
		if err != nil {
			return err
		}
		sep := ','
		if strings.HasSuffix(ts.Path, ".tsv") {
			sep = '\t'
		}
		rel, err := rasql.ReadCSVFile(ts.Path, ts.Name, ts.Schema, sep)
		if err != nil {
			return err
		}
		if err := eng.Register(rel); err != nil {
			return err
		}
	}
	return nil
}

// ParseChaos parses a -chaos flag: "seed=N,rate=P[,attempts=K]" — e.g.
// "seed=7,rate=0.01". The empty spec returns the zero (disabled) config.
func ParseChaos(spec string) (rasql.ChaosConfig, error) {
	var cfg rasql.ChaosConfig
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return rasql.ChaosConfig{}, fmt.Errorf("chaos spec %q: want seed=N,rate=P[,attempts=K]", spec)
		}
		switch strings.ToLower(strings.TrimSpace(kv[0])) {
		case "seed":
			n, err := strconv.ParseInt(kv[1], 10, 64)
			if err != nil {
				return rasql.ChaosConfig{}, fmt.Errorf("chaos seed %q: %w", kv[1], err)
			}
			cfg.Seed = n
		case "rate":
			p, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return rasql.ChaosConfig{}, fmt.Errorf("chaos rate %q: %w", kv[1], err)
			}
			if p < 0 || p > 1 {
				return rasql.ChaosConfig{}, fmt.Errorf("chaos rate %v: want a probability in [0,1]", p)
			}
			cfg.Rate = p
		case "attempts":
			k, err := strconv.Atoi(kv[1])
			if err != nil || k < 1 {
				return rasql.ChaosConfig{}, fmt.Errorf("chaos attempts %q: want a positive integer", kv[1])
			}
			cfg.MaxAttempts = k
		default:
			return rasql.ChaosConfig{}, fmt.Errorf("chaos spec %q: unknown key %q (seed, rate, attempts)", spec, kv[0])
		}
	}
	return cfg, nil
}

// MultiFlag collects repeated string flags.
type MultiFlag []string

// String implements flag.Value.
func (m *MultiFlag) String() string { return strings.Join(*m, "; ") }

// Set implements flag.Value.
func (m *MultiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
