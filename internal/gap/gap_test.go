package gap

import (
	"math/rand"
	"testing"

	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
)

func edges(pairs ...[3]float64) *relation.Relation {
	rel := relation.New("edge", gen.EdgeSchema())
	for _, p := range pairs {
		rel.Append(types.Row{types.Int(int64(p[0])), types.Int(int64(p[1])), types.Float(p[2])})
	}
	return rel
}

func TestBFS(t *testing.T) {
	g := NewCSR(edges([3]float64{1, 2, 1}, [3]float64{2, 3, 1}, [3]float64{4, 5, 1}))
	got := g.BFS(1)
	want := map[int64]bool{1: true, 2: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("BFS = %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Errorf("unexpected vertex %d", v)
		}
	}
	if g.BFS(99) != nil {
		t.Error("BFS from absent source should be nil")
	}
}

func TestSSSPAgainstKnownDistances(t *testing.T) {
	g := NewCSR(edges(
		[3]float64{1, 2, 1}, [3]float64{1, 3, 4}, [3]float64{2, 3, 2},
		[3]float64{3, 4, 1}, [3]float64{4, 2, 5}, [3]float64{2, 5, 10}, [3]float64{5, 1, 1}))
	d := g.SSSP(1)
	want := map[int64]float64{1: 0, 2: 1, 3: 3, 4: 4, 5: 11}
	if len(d) != len(want) {
		t.Fatalf("SSSP = %v", d)
	}
	for v, w := range want {
		if d[v] != w {
			t.Errorf("dist[%d] = %v, want %v", v, d[v], w)
		}
	}
}

// unionFind is the ground-truth component structure.
func unionFind(n int, pairs [][2]int64) map[int64]int64 {
	parent := map[int64]int64{}
	var find func(x int64) int64
	find = func(x int64) int64 {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, p := range pairs {
		a, b := find(p[0]), find(p[1])
		if a != b {
			if a < b {
				parent[b] = a
			} else {
				parent[a] = b
			}
		}
	}
	out := map[int64]int64{}
	for v := range parent {
		out[v] = find(v)
	}
	return out
}

func TestCCAgainstUnionFind(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pairs [][2]int64
	rel := relation.New("edge", gen.PlainEdgeSchema())
	for i := 0; i < 300; i++ {
		a, b := rng.Int63n(120), rng.Int63n(120)
		if a == b {
			continue
		}
		pairs = append(pairs, [2]int64{a, b})
		rel.Append(types.Row{types.Int(a), types.Int(b)})
		rel.Append(types.Row{types.Int(b), types.Int(a)})
	}
	want := unionFind(120, pairs)

	for name, labels := range map[string]map[int64]int64{
		"serial":   NewCSR(rel).CC(),
		"parallel": NewCSR(rel).CCParallel(4),
	} {
		if len(labels) == 0 {
			t.Fatalf("%s: no labels", name)
		}
		// Same partition into components: two vertices share a label iff
		// they share a root.
		for v, l := range labels {
			for w, m := range labels {
				if (want[v] == want[w]) != (l == m) {
					t.Fatalf("%s: vertices %d and %d: labels %d,%d but roots %d,%d",
						name, v, w, l, m, want[v], want[w])
				}
			}
		}
		if ComponentCount(labels) != ComponentCount(want) {
			t.Errorf("%s: component count %d, want %d", name, ComponentCount(labels), ComponentCount(want))
		}
	}
}

func TestRelationRenderers(t *testing.T) {
	if r := CCRelation(map[int64]int64{1: 1, 2: 1}); r.Len() != 2 {
		t.Error("CCRelation wrong")
	}
	if r := SSSPRelation(map[int64]float64{1: 0}); r.Len() != 1 {
		t.Error("SSSPRelation wrong")
	}
	if r := ReachRelation([]int64{1, 2, 3}); r.Len() != 3 {
		t.Error("ReachRelation wrong")
	}
}

func TestCSRCounts(t *testing.T) {
	g := NewCSR(edges([3]float64{1, 2, 1}, [3]float64{1, 3, 1}))
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Errorf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}
