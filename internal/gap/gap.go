// Package gap reimplements the single-machine baselines of the paper's
// Figure 9 / Table 3 comparison — the GAP Benchmark Suite style serial
// algorithms (and a parallel CC variant) on a CSR graph: BFS reachability,
// label-propagation connected components, and queue-based Bellman-Ford
// shortest paths.
package gap

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
)

// CSR is a compressed sparse row adjacency representation with remapped
// dense vertex ids.
type CSR struct {
	// IDs maps dense index -> original vertex id.
	IDs []int64
	// ofs/dst/wt are the CSR arrays.
	ofs []int32
	dst []int32
	wt  []float64
	// index maps original id -> dense index.
	index map[int64]int32
}

// NewCSR builds a CSR graph from an edge relation (weighted or not).
func NewCSR(edges *relation.Relation) *CSR {
	weighted := edges.Schema.Len() >= 3
	g := &CSR{index: map[int64]int32{}}
	id := func(v int64) int32 {
		if i, ok := g.index[v]; ok {
			return i
		}
		i := int32(len(g.IDs))
		g.index[v] = i
		g.IDs = append(g.IDs, v)
		return i
	}
	type e struct {
		s, d int32
		w    float64
	}
	es := make([]e, 0, len(edges.Rows))
	for _, r := range edges.Rows {
		w := 1.0
		if weighted {
			w = r[2].AsFloat()
		}
		es = append(es, e{s: id(r[0].AsInt()), d: id(r[1].AsInt()), w: w})
	}
	n := len(g.IDs)
	sort.Slice(es, func(i, j int) bool { return es[i].s < es[j].s })
	g.ofs = make([]int32, n+1)
	g.dst = make([]int32, len(es))
	g.wt = make([]float64, len(es))
	for i, ed := range es {
		g.dst[i] = ed.d
		g.wt[i] = ed.w
		g.ofs[ed.s+1]++
	}
	for i := 0; i < n; i++ {
		g.ofs[i+1] += g.ofs[i]
	}
	return g
}

// NumVertices returns the vertex count.
func (g *CSR) NumVertices() int { return len(g.IDs) }

// NumEdges returns the edge count.
func (g *CSR) NumEdges() int { return len(g.dst) }

// BFS returns the original ids of all vertices reachable from source
// (including the source itself, if present).
func (g *CSR) BFS(source int64) []int64 {
	s, ok := g.index[source]
	if !ok {
		return nil
	}
	seen := make([]bool, len(g.IDs))
	seen[s] = true
	queue := []int32{s}
	out := []int64{g.IDs[s]}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for i := g.ofs[v]; i < g.ofs[v+1]; i++ {
			d := g.dst[i]
			if !seen[d] {
				seen[d] = true
				out = append(out, g.IDs[d])
				queue = append(queue, d)
			}
		}
	}
	return out
}

// CC runs serial label propagation until a fixpoint, returning each
// vertex's component label (the minimum original id in its component,
// assuming a symmetrized graph).
func (g *CSR) CC() map[int64]int64 {
	n := len(g.IDs)
	label := make([]int64, n)
	for i := range label {
		label[i] = g.IDs[i]
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			l := label[v]
			for i := g.ofs[v]; i < g.ofs[v+1]; i++ {
				if label[g.dst[i]] > l {
					label[g.dst[i]] = l
					changed = true
				}
			}
		}
	}
	out := make(map[int64]int64, n)
	for i, l := range label {
		out[g.IDs[i]] = l
	}
	return out
}

// CCParallel is the GAP-parallel analog: synchronous label propagation
// with the vertex range split across workers (default GOMAXPROCS).
func (g *CSR) CCParallel(workers int) map[int64]int64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(g.IDs)
	label := make([]int64, n)
	next := make([]int64, n)
	for i := range label {
		label[i] = g.IDs[i]
		next[i] = label[i]
	}
	for {
		// Pull phase: every vertex takes the min of its in-labels; with a
		// symmetrized graph, pulling over out-edges is equivalent.
		var wg sync.WaitGroup
		changed := make([]bool, workers)
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				for v := lo; v < hi; v++ {
					l := label[v]
					for i := g.ofs[v]; i < g.ofs[v+1]; i++ {
						if dl := label[g.dst[i]]; dl < l {
							l = dl
						}
					}
					next[v] = l
					if l != label[v] {
						changed[w] = true
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		label, next = next, label
		any := false
		for _, c := range changed {
			any = any || c
		}
		if !any {
			break
		}
	}
	out := make(map[int64]int64, n)
	for i, l := range label {
		out[g.IDs[i]] = l
	}
	return out
}

// SSSP runs queue-based Bellman-Ford from the source, returning distances
// by original id for all reachable vertices.
func (g *CSR) SSSP(source int64) map[int64]float64 {
	s, ok := g.index[source]
	if !ok {
		return nil
	}
	n := len(g.IDs)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = 0
	inQueue := make([]bool, n)
	queue := []int32{s}
	inQueue[s] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		dv := dist[v]
		for i := g.ofs[v]; i < g.ofs[v+1]; i++ {
			d := g.dst[i]
			if nd := dv + g.wt[i]; nd < dist[d] {
				dist[d] = nd
				if !inQueue[d] {
					inQueue[d] = true
					queue = append(queue, d)
				}
			}
		}
	}
	out := make(map[int64]float64, n)
	for i, dv := range dist {
		if !math.IsInf(dv, 1) {
			out[g.IDs[i]] = dv
		}
	}
	return out
}

// CCRelation renders CC labels as a (Src, CmpId) relation for comparison
// with the RaSQL result.
func CCRelation(labels map[int64]int64) *relation.Relation {
	rel := relation.New("cc", types.NewSchema(
		types.Col("Src", types.KindInt), types.Col("CmpId", types.KindInt)))
	for v, l := range labels {
		rel.Append(types.Row{types.Int(v), types.Int(l)})
	}
	return rel
}

// SSSPRelation renders distances as a (Dst, Cost) relation.
func SSSPRelation(dist map[int64]float64) *relation.Relation {
	rel := relation.New("path", types.NewSchema(
		types.Col("Dst", types.KindInt), types.Col("Cost", types.KindFloat)))
	for v, d := range dist {
		rel.Append(types.Row{types.Int(v), types.Float(d)})
	}
	return rel
}

// ReachRelation renders reachable ids as a (Dst) relation.
func ReachRelation(ids []int64) *relation.Relation {
	rel := relation.New("reach", types.NewSchema(types.Col("Dst", types.KindInt)))
	for _, v := range ids {
		rel.Append(types.Row{types.Int(v)})
	}
	return rel
}

// ComponentCount returns the number of distinct labels.
func ComponentCount(labels map[int64]int64) int {
	set := map[int64]struct{}{}
	for _, l := range labels {
		set[l] = struct{}{}
	}
	return len(set)
}
