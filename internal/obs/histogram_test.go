package obs

import (
	"math"
	"sort"
	"sync"
	"testing"
)

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %d, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("empty histogram Count/Sum = %d/%d, want 0/0", h.Count(), h.Sum())
	}
}

func TestSingleObservation(t *testing.T) {
	var h Histogram
	const v = 123456
	h.Observe(v)
	if h.Count() != 1 || h.Sum() != v {
		t.Fatalf("Count/Sum = %d/%d, want 1/%d", h.Count(), h.Sum(), v)
	}
	lo, hi := bucketBounds(bucketIndex(v))
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if got < lo || got >= hi {
			t.Errorf("Quantile(%v) = %d, want within the observation's bucket [%d,%d)", q, got, lo, hi)
		}
	}
}

func TestUnderflow(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	h.Observe(math.MinInt64)
	if h.Count() != 2 {
		t.Fatalf("Count = %d, want 2", h.Count())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("all-underflow Quantile(0.5) = %d, want 0", got)
	}
}

func TestOverflow(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	h.Observe(maxValue)
	if got := h.Quantile(0.5); got != maxValue {
		t.Errorf("all-overflow Quantile(0.5) = %d, want maxValue %d", got, int64(maxValue))
	}
	s := h.Snapshot()
	last := s.Buckets[len(s.Buckets)-1]
	if last.UpperBound != math.MaxInt64 || last.CumulativeCount != 2 {
		t.Errorf("overflow bucket = {%d, %d}, want {MaxInt64, 2}", last.UpperBound, last.CumulativeCount)
	}
}

func TestSaturatingCounts(t *testing.T) {
	var h Histogram
	h.ObserveN(7, math.MaxUint64)
	h.ObserveN(7, 10)
	if h.Count() != math.MaxUint64 {
		t.Errorf("Count = %d, want saturation at MaxUint64", h.Count())
	}
	// Merging two saturated histograms must pin, not wrap.
	var a, b Histogram
	a.ObserveN(7, math.MaxUint64-1)
	b.ObserveN(7, math.MaxUint64-1)
	a.Merge(&b)
	if a.Count() != math.MaxUint64 {
		t.Errorf("merged Count = %d, want saturation at MaxUint64", a.Count())
	}
}

func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*perG {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*perG)
	}
	var bucketTotal uint64
	for i := range h.counts {
		bucketTotal += h.counts[i].Load()
	}
	if bucketTotal != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, goroutines*perG)
	}
}

// xorshift is a tiny deterministic PRNG so the property test needs no seed
// plumbing and never flakes.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// TestMergeAssociativityProperty checks Merge against a sorted-slice oracle:
// however observations are split across histograms and whatever order the
// parts merge in, the result is bucket-identical to observing everything
// into one histogram, and every quantile estimate lands in the bucket of the
// oracle's exact rank value.
func TestMergeAssociativityProperty(t *testing.T) {
	rng := xorshift(12345)
	const n = 3000
	values := make([]int64, n)
	for i := range values {
		v := int64(rng.next() >> (rng.next() % 50)) // span many octaves
		switch rng.next() % 10 {
		case 0:
			v = -v // some underflow
		case 1:
			v += maxValue // some overflow
		}
		values[i] = v
	}

	var all, h1, h2, h3 Histogram
	for i, v := range values {
		all.Observe(v)
		switch i % 3 {
		case 0:
			h1.Observe(v)
		case 1:
			h2.Observe(v)
		case 2:
			h3.Observe(v)
		}
	}
	// (h1+h2)+h3 and h1+(h2+h3), via copies.
	left := clone(&h1)
	left.Merge(&h2)
	left.Merge(&h3)
	right := clone(&h2)
	right.Merge(&h3)
	rightAll := clone(&h1)
	rightAll.Merge(right)

	for name, h := range map[string]*Histogram{"(1+2)+3": left, "1+(2+3)": rightAll} {
		if h.Count() != all.Count() || h.Sum() != all.Sum() {
			t.Fatalf("%s: Count/Sum = %d/%d, want %d/%d", name, h.Count(), h.Sum(), all.Count(), all.Sum())
		}
		for i := range h.counts {
			if h.counts[i].Load() != all.counts[i].Load() {
				t.Fatalf("%s: bucket %d = %d, want %d", name, i, h.counts[i].Load(), all.counts[i].Load())
			}
		}
	}

	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1} {
		rank := int(q * float64(n-1))
		oracle := sorted[rank]
		got := left.Quantile(q)
		oi := bucketIndex(oracle)
		lo, hi := bucketBounds(oi)
		switch oi {
		case 0:
			if got != 0 {
				t.Errorf("Quantile(%v) = %d, oracle %d is underflow, want 0", q, got, oracle)
			}
		case bucketCount - 1:
			if got != maxValue {
				t.Errorf("Quantile(%v) = %d, oracle %d is overflow, want maxValue", q, got, oracle)
			}
		default:
			if got < lo || got >= hi {
				t.Errorf("Quantile(%v) = %d, want in oracle bucket [%d,%d) around %d", q, got, lo, hi, oracle)
			}
		}
	}
}

func clone(h *Histogram) *Histogram {
	var c Histogram
	c.Merge(h)
	return &c
}

// TestObserveZeroAllocs pins the dynamic side of the //rasql:noalloc
// contract on the metrics hot path: recording into a histogram, counter or
// gauge never allocates, so instrumentation can sit on per-task code.
//
//rasql:allocpin obs.Histogram.Observe obs.bucketIndex obs.Counter.Add obs.Counter.Inc obs.Gauge.Set obs.Gauge.Add
func TestObserveZeroAllocs(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(42)
		h.Observe(1 << 40)
		h.Observe(-1)
		c.Add(3)
		c.Inc()
		g.Set(7)
		g.Add(-2)
	})
	if allocs != 0 {
		t.Fatalf("metrics hot path allocated %v allocs/op, want 0", allocs)
	}
}

// BenchmarkObserve measures the wait-free Observe hot path; run with
// -benchmem, it doubles as the allocation pin `make allocs` checks.
func BenchmarkObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
	if h.Count() == 0 {
		b.Fatal("no observations recorded")
	}
}

func BenchmarkObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v = (v * 31) & (maxValue - 1)
		}
	})
}
