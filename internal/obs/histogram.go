package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: log-linear ("HDR-lite") over non-negative int64
// values. Each power-of-two octave is split into subCount linear sub-buckets,
// bounding the relative error of any reconstructed value by 1/subCount
// (12.5% with subCount = 8) while keeping the whole structure a fixed array
// of atomic counters — no allocation, no locks, mergeable by addition.
//
// Values below 0 land in the underflow bucket, values at or above maxValue
// (2^maxExp ns ≈ 39 hours when observing nanoseconds) in the overflow
// bucket. Both extremes stay part of Count/Sum/Quantile so a saturated
// histogram still reports honest tails.
const (
	subBits  = 3
	subCount = 1 << subBits // linear sub-buckets per octave
	// maxExp bounds the representable range: values in [0, 2^maxExp).
	maxExp = 47
	// valueBuckets spans the log-linear range: one linear run of subCount
	// buckets for values < subCount, then subCount buckets per octave.
	valueBuckets = (maxExp - subBits + 1) * subCount
	// bucketCount adds the underflow (index 0) and overflow (last index)
	// buckets around the value range.
	bucketCount = valueBuckets + 2
	// maxValue is the smallest value counted as overflow.
	maxValue = int64(1) << maxExp
)

// Histogram is a fixed-bucket, lock-free latency/size histogram. All methods
// are safe for concurrent use; Observe is wait-free (one atomic add per
// counter) and allocation-free. The zero Histogram is ready to use.
//
// Counts saturate at math.MaxUint64 instead of wrapping, so a merge of
// near-full histograms degrades to a pinned count rather than a corrupt one.
type Histogram struct {
	counts [bucketCount]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
}

// bucketIndex maps a value to its bucket: 0 for underflow (v < 0),
// bucketCount-1 for overflow (v >= maxValue), log-linear in between.
//
//rasql:noalloc
func bucketIndex(v int64) int {
	if v < 0 {
		return 0
	}
	if v >= maxValue {
		return bucketCount - 1
	}
	u := uint64(v)
	exp := bits.Len64(u|1) - 1
	if exp < subBits {
		// The first subCount values are exact.
		return 1 + int(u)
	}
	// u>>(exp-subBits) is in [subCount, 2*subCount): the sub-bucket plus a
	// subCount offset that lands each octave after the previous one.
	return 1 + (exp-subBits)*subCount + int(u>>uint(exp-subBits))
}

// bucketBounds returns the half-open value range [lo, hi) of bucket i of the
// log-linear region. For the underflow bucket it returns [minInt64, 0); for
// the overflow bucket [maxValue, maxInt64].
func bucketBounds(i int) (lo, hi int64) {
	switch {
	case i <= 0:
		return math.MinInt64, 0
	case i >= bucketCount-1:
		return maxValue, math.MaxInt64
	}
	k := i - 1 // index into the log-linear region
	if k < subCount {
		return int64(k), int64(k) + 1
	}
	octave := k/subCount - 1 + subBits // exponent of the octave's low bound
	sub := k % subCount
	width := int64(1) << uint(octave-subBits)
	lo = (int64(subCount) + int64(sub)) << uint(octave-subBits)
	return lo, lo + width
}

// Observe records one value. Wait-free and allocation-free: one atomic add
// on the bucket, the total count and the sum.
//
//rasql:noalloc
func (h *Histogram) Observe(v int64) {
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveN records a value n times, saturating the counts at their maximum
// instead of wrapping.
func (h *Histogram) ObserveN(v int64, n uint64) {
	if n == 0 {
		return
	}
	satAdd(&h.counts[bucketIndex(v)], n)
	satAdd(&h.count, n)
	// The sum is a best-effort aggregate; clamp the product rather than
	// multiply past the int64 range.
	if n <= math.MaxInt64/2 && v != 0 {
		prod, overflow := mulClamp(v, int64(n))
		if overflow {
			prod = clampSign(v)
		}
		h.sum.Add(prod)
	}
}

// satAdd adds n to c, pinning at math.MaxUint64 on overflow.
func satAdd(c *atomic.Uint64, n uint64) {
	for {
		cur := c.Load()
		next := cur + n
		if next < cur {
			next = math.MaxUint64
		}
		if c.CompareAndSwap(cur, next) {
			return
		}
	}
}

// mulClamp multiplies a*b, reporting overflow.
func mulClamp(a, b int64) (int64, bool) {
	p := a * b
	if a != 0 && (p/a != b) {
		return 0, true
	}
	return p, false
}

func clampSign(v int64) int64 {
	if v < 0 {
		return math.MinInt64
	}
	return math.MaxInt64
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Merge folds o's counts into h (counter-wise saturating addition). Merging
// is associative and commutative up to saturation, so per-shard histograms
// can fold in any order — the property the distributed fold relies on.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range o.counts {
		if n := o.counts[i].Load(); n > 0 {
			satAdd(&h.counts[i], n)
		}
	}
	if n := o.count.Load(); n > 0 {
		satAdd(&h.count, n)
	}
	h.sum.Add(o.sum.Load())
}

// Reset zeroes every counter. Not atomic with respect to concurrent
// observers: counts arriving during a reset may survive it.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution: it walks the cumulative bucket counts to the bucket holding
// the target rank and interpolates linearly inside it. The estimate is exact
// for values below subCount and within one sub-bucket width (≤ 1/subCount
// relative error) elsewhere. An empty histogram returns 0. Underflow
// observations report as 0, overflow observations as maxValue.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < bucketCount; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		if i == 0 {
			return 0 // underflow: all we know is v < 0; report the floor
		}
		lo, hi := bucketBounds(i)
		if i == bucketCount-1 {
			return maxValue
		}
		// Interpolate the rank's position inside the bucket.
		frac := float64(rank-cum) / float64(n)
		return lo + int64(frac*float64(hi-lo-1)+0.5)
	}
	// Counts raced with the total; fall back to the largest non-empty bucket.
	for i := bucketCount - 1; i >= 0; i-- {
		if h.counts[i].Load() > 0 {
			if i == bucketCount-1 {
				return maxValue
			}
			_, hi := bucketBounds(i)
			return hi - 1
		}
	}
	return 0
}

// Snapshot returns the non-empty buckets as (upperBound, cumulativeCount)
// pairs in ascending bound order, plus the total count and sum — the shape
// Prometheus histogram exposition wants. The final pair is always the
// overflow bucket rendered with upper bound math.MaxInt64 (exposed as +Inf).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	var cum uint64
	for i := 0; i < bucketCount; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		_, hi := bucketBounds(i)
		s.Buckets = append(s.Buckets, Bucket{UpperBound: hi, CumulativeCount: cum})
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Bucket is one cumulative histogram bucket: everything observed at values
// strictly below UpperBound (the bucket's exclusive high edge).
type Bucket struct {
	UpperBound      int64
	CumulativeCount uint64
}

// HistogramSnapshot is a point-in-time copy of a histogram's non-empty
// buckets.
type HistogramSnapshot struct {
	Buckets []Bucket
	Count   uint64
	Sum     int64
}
