package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestPrometheusRoundTrip writes a populated registry and re-reads it with
// the strict parser: every family survives with its type, values and
// histogram invariants intact.
func TestPrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "Requests served.")
	g := reg.Gauge("test_inflight", "Requests in flight.")
	h := reg.Histogram("test_latency_nanos", "Latency in nanoseconds.")
	c.Add(41)
	c.Inc()
	g.Set(7)
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}
	h.Observe(-1)            // underflow
	h.Observe(math.MaxInt64) // overflow folds into +Inf

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not re-parse:\n%s\nerror: %v", buf.String(), err)
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	counter := fams["test_requests_total"]
	if counter == nil || counter.Type != "counter" || len(counter.Samples) != 1 || counter.Samples[0].Value != 42 {
		t.Errorf("counter family = %+v, want one sample of 42", counter)
	}
	gauge := fams["test_inflight"]
	if gauge == nil || gauge.Type != "gauge" || gauge.Samples[0].Value != 7 {
		t.Errorf("gauge family = %+v, want one sample of 7", gauge)
	}
	hist := fams["test_latency_nanos"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family = %+v", hist)
	}
	var count, sum, inf float64
	for _, s := range hist.Samples {
		switch {
		case s.Name == "test_latency_nanos_count":
			count = s.Value
		case s.Name == "test_latency_nanos_sum":
			sum = s.Value
		case s.Labels["le"] == "+Inf":
			inf = s.Value
		}
	}
	if count != 1002 || inf != 1002 {
		t.Errorf("count = %v, +Inf = %v, want both 1002", count, inf)
	}
	if sum == 0 {
		t.Error("sum sample missing or zero")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Error("re-registering dup_total did not panic")
		}
	}()
	reg.Gauge("dup_total", "second")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("registering an invalid metric name did not panic")
		}
	}()
	reg.Counter("bad name!", "spaces are not a metric name")
}

func TestRegistryLookupAndNames(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_total", "z")
	h := reg.Histogram("a_nanos", "a")
	if reg.LookupHistogram("a_nanos") != h {
		t.Error("LookupHistogram did not return the registered histogram")
	}
	if reg.LookupHistogram("z_total") != nil {
		t.Error("LookupHistogram returned a non-histogram metric")
	}
	if got := reg.SortedNames(); len(got) != 2 || got[0] != "a_nanos" || got[1] != "z_total" {
		t.Errorf("SortedNames = %v", got)
	}
}

// TestHelpEscaping checks that newlines and backslashes in help text survive
// the exposition format (escaped on write, unescaped semantics on read).
func TestHelpEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "line one\nline \\two")
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("escaped help does not re-parse: %v\n%s", err, buf.String())
	}
	if strings.Contains(buf.String(), "line one\nline") {
		t.Error("help newline written raw, breaks line-oriented format")
	}
}

// TestRegistryLookupCounterGauge mirrors the histogram lookup contract for
// the other two instrument kinds (used by the serving layer and the bench
// to read cache counters back).
func TestRegistryLookupCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "c")
	g := reg.Gauge("g", "g")
	reg.Histogram("h_nanos", "h")
	c.Add(3)
	g.Set(7)
	if got := reg.LookupCounter("c_total"); got != c || got.Value() != 3 {
		t.Errorf("LookupCounter = %v (value %d), want the registered counter", got, got.Value())
	}
	if got := reg.LookupGauge("g"); got != g || got.Value() != 7 {
		t.Errorf("LookupGauge = %v (value %d), want the registered gauge", got, got.Value())
	}
	if reg.LookupCounter("g") != nil || reg.LookupCounter("h_nanos") != nil {
		t.Error("LookupCounter returned a non-counter metric")
	}
	if reg.LookupGauge("c_total") != nil || reg.LookupGauge("missing") != nil {
		t.Error("LookupGauge returned a non-gauge or missing metric")
	}
}
