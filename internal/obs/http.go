package obs

import (
	"net"
	"net/http"
)

// Handler returns an http.Handler serving the registry's Prometheus text
// exposition — mount it on /metrics.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The strict parser validates this output in tests and CI; an
		// encoding error mid-scrape can only be a broken connection.
		_ = reg.WritePrometheus(w)
	})
}

// ListenAndServe serves /metrics (and /) from the registry on addr in a
// background goroutine, returning the bound listener address (useful with
// ":0") or an error if the listen fails. The server runs for the life of
// the process — metrics endpoints have no orderly shutdown story in the
// CLI tools that mount them.
func ListenAndServe(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	srv := &http.Server{Handler: mux}
	//rasql:detach -- process-lifetime metrics endpoint: the CLI exits by returning from main, never by draining the server
	go func() {
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), nil
}
