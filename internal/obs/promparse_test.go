package obs

import (
	"strings"
	"testing"
)

func TestParsePrometheusAccepts(t *testing.T) {
	doc := `# HELP up Whether the target is up.
# TYPE up gauge
up 1
# TYPE http_requests_total counter
http_requests_total{code="200",method="get"} 1027 1395066363000
http_requests_total{code="400"} 3
# TYPE rpc_nanos histogram
rpc_nanos_bucket{le="100"} 2
rpc_nanos_bucket{le="1000"} 5
rpc_nanos_bucket{le="+Inf"} 6
rpc_nanos_sum 4200
rpc_nanos_count 6
`
	fams, err := ParsePrometheus([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	if got := fams["http_requests_total"].Samples[0].Labels["method"]; got != "get" {
		t.Errorf("label method = %q, want get", got)
	}
	if n := len(fams["rpc_nanos"].Samples); n != 5 {
		t.Errorf("histogram family has %d samples, want 5", n)
	}
}

func TestParsePrometheusRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"sample without TYPE", "orphan 1\n", "no preceding # TYPE"},
		{"unknown TYPE", "# TYPE x lightcone\nx 1\n", "unknown TYPE"},
		{"duplicate TYPE", "# TYPE x counter\n# TYPE x counter\nx 1\n", "duplicate TYPE"},
		{"duplicate HELP", "# HELP x a\n# HELP x b\n# TYPE x counter\nx 1\n", "duplicate HELP"},
		{"TYPE after samples", "# TYPE x counter\nx 1\n# TYPE y counter\ny 1\n# TYPE x counter\n", "duplicate TYPE"},
		{"duplicate series", "# TYPE x counter\nx 1\nx 2\n", "duplicate series"},
		{"duplicate labelled series", "# TYPE x counter\nx{a=\"1\"} 1\nx{a=\"1\"} 2\n", "duplicate series"},
		{"bad value", "# TYPE x counter\nx one\n", "bad value"},
		{"no value", "# TYPE x counter\nx\n", "no value"},
		{"unterminated labels", "# TYPE x counter\nx{a=\"1\" 2\n", "unterminated"},
		{"unquoted label value", "# TYPE x counter\nx{a=1} 2\n", "not quoted"},
		{"bad label name", "# TYPE x counter\nx{1a=\"v\"} 2\n", "invalid label name"},
		{"duplicate label", "# TYPE x counter\nx{a=\"1\",a=\"2\"} 2\n", "duplicate label"},
		{"empty family", "# TYPE x counter\n", "no samples"},
		{"histogram missing +Inf", "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 5\nh_count 1\n", "+Inf"},
		{"histogram missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", "_sum"},
		{"histogram missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 5\n", "_count"},
		{"histogram bucket without le", "# TYPE h histogram\nh_bucket 1\nh_sum 5\nh_count 1\n", "without le"},
		{"histogram bounds not increasing",
			"# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 5\nh_count 2\n",
			"not increasing"},
		{"histogram cumulative decreases",
			"# TYPE h histogram\nh_bucket{le=\"10\"} 3\nh_bucket{le=\"20\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 5\nh_count 3\n",
			"decrease"},
		{"histogram +Inf disagrees with count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 5\nh_count 4\n",
			"disagrees"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePrometheus([]byte(tc.doc))
			if err == nil {
				t.Fatalf("parse accepted invalid document:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
