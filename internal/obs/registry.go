// Package obs is the engine's serving-grade metrics layer: lock-free
// fixed-bucket histograms, a registry of named counters/gauges/histograms
// with Prometheus text-format exposition, and the per-query QueryStats
// record every finished cluster.QueryContext folds into it.
//
// Like internal/trace, obs sits on the observability side of the simclock
// boundary: nothing in the engine's deterministic packages reads values back
// out of it, so its contents never influence results, placement or
// iteration counts. The hot-path surface (Histogram.Observe, Counter.Add)
// is allocation-free and wait-free — cheap enough to call from the query
// fold of every request a serving deployment handles.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero Counter is ready
// to use; all methods are safe for concurrent use and allocation-free.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative n is ignored: counters only go
// up, and a registry scrape must never observe a decrease).
//
//rasql:noalloc
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
//
//rasql:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero Gauge is ready to
// use; all methods are safe for concurrent use and allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
//
//rasql:noalloc
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
//
//rasql:noalloc
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind tags a registered metric for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registry entry.
type metric struct {
	name string
	help string
	kind metricKind
	ctr  *Counter
	gau  *Gauge
	hist *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration takes a lock; the returned instruments
// are plain pointers the caller holds on to, so the observation fast paths
// never touch the registry again.
type Registry struct {
	mu sync.RWMutex
	//rasql:guardedby=mu
	byName map[string]*metric
	//rasql:guardedby=mu
	ordered []*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register adds m under its name, panicking on duplicates or invalid names —
// metric registration is setup code, and a typo'd duplicate silently
// shadowing a metric is exactly the failure exposition must not have.
func (r *Registry) register(m *metric) {
	if !validMetricName(m.name) {
		panic("obs: invalid metric name " + strconv.Quote(m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.byName[m.name] = m
	r.ordered = append(r.ordered, m)
}

// Counter registers and returns a counter. Panics if the name is taken.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, ctr: c})
	return c
}

// Gauge registers and returns a gauge. Panics if the name is taken.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gau: g})
	return g
}

// Histogram registers and returns a histogram. Panics if the name is taken.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// Lookup returns the histogram registered under name, or nil.
func (r *Registry) LookupHistogram(name string) *Histogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if m := r.byName[name]; m != nil {
		return m.hist
	}
	return nil
}

// LookupCounter returns the counter registered under name, or nil.
func (r *Registry) LookupCounter(name string) *Counter {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if m := r.byName[name]; m != nil {
		return m.ctr
	}
	return nil
}

// LookupGauge returns the gauge registered under name, or nil.
func (r *Registry) LookupGauge(name string) *Gauge {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if m := r.byName[name]; m != nil {
		return m.gau
	}
	return nil
}

// validMetricName enforces the Prometheus metric-name charset:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE headers, counter and
// gauge samples, and for histograms the cumulative le-labelled _bucket
// series plus _sum and _count. Metrics render in registration order;
// histogram bucket bounds render as integers in the metric's native unit
// (the unit is part of the metric name, e.g. _nanos), closed by the
// mandatory le="+Inf" bucket.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	metrics := append([]*metric(nil), r.ordered...)
	r.mu.RUnlock()
	for _, m := range metrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, escapeHelp(m.help), m.name, m.kind); err != nil {
			return err
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.ctr.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.gau.Value())
		case kindHistogram:
			err = writeHistogram(w, m.name, m.hist.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s HistogramSnapshot) error {
	var cum uint64
	for _, b := range s.Buckets {
		cum = b.CumulativeCount
		if b.UpperBound == math.MaxInt64 {
			continue // folded into +Inf below
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.UpperBound, b.CumulativeCount); err != nil {
			return err
		}
	}
	// The +Inf bucket is mandatory and must equal _count; it absorbs the
	// overflow bucket when one is present.
	if cum < s.Count {
		cum = s.Count
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	return err
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, len(r.ordered))
	for i, m := range r.ordered {
		names[i] = m.name
	}
	return names
}

// SortedNames returns the registered metric names sorted.
func (r *Registry) SortedNames() []string {
	names := r.Names()
	sort.Strings(names)
	return names
}
