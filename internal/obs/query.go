package obs

import (
	"log/slog"
	"sync"
)

// QueryStats is the per-query resource-attribution record a finished
// cluster.QueryContext folds into the recorder: the distributional raw
// material the engine-global counter snapshot cannot express. One is
// produced per query — success or failure — so latency percentiles, QPS and
// staleness/recovery aggregates describe everything the engine served.
type QueryStats struct {
	// ID is the engine-wide query sequence number (1-based); the same ID
	// stamps the query's trace events and its slog query-log line.
	ID uint64 `json:"id"`
	// WallNanos is the end-to-end latency of the query on the host clock.
	WallNanos int64 `json:"wall_nanos"`
	// SimNanos is the simulated in-stage time (max per-worker busy per
	// stage, summed).
	SimNanos int64 `json:"sim_nanos"`
	// Iterations is the fixpoint iteration count (0 for non-recursive
	// statements).
	Iterations int64 `json:"iterations"`
	// ShuffleBytes / ShuffleRecords attribute shuffle volume to the query.
	ShuffleBytes   int64 `json:"shuffle_bytes"`
	ShuffleRecords int64 `json:"shuffle_records"`
	// TaskRetries / RowsReplayed / RecoveredIterations attribute fault
	// recovery work (zero on fault-free runs).
	TaskRetries         int64 `json:"task_retries"`
	RowsReplayed        int64 `json:"rows_replayed"`
	RecoveredIterations int64 `json:"recovered_iterations"`
	// StaleReads / SupersededRows attribute barrier-relaxation costs
	// (zero under BSP).
	StaleReads     int64 `json:"stale_reads"`
	SupersededRows int64 `json:"superseded_rows"`
	// BarrierWaitNanos is time workers idled at stage barriers (or
	// staleness gates).
	BarrierWaitNanos int64 `json:"barrier_wait_nanos"`
	// Mode names the fixpoint evaluation mode that actually ran ("bsp",
	// "ssp(k)", "async", "local"; empty for non-recursive statements).
	Mode string `json:"mode,omitempty"`
	// FallbackReason explains a relaxed-mode downgrade to BSP, when one
	// happened.
	FallbackReason string `json:"fallback_reason,omitempty"`
	// Err is the query's error text ("" on success).
	Err string `json:"err,omitempty"`
}

// QueryObserver receives the lifecycle of every query run on a cluster:
// QueryStarted from NewQuery, ObserveQuery from QueryContext.Finish, each on
// the query's own goroutine — implementations must be safe for concurrent
// use.
type QueryObserver interface {
	QueryStarted()
	ObserveQuery(QueryStats)
}

// Recorder is the engine's metrics hub: a Registry pre-populated with the
// serving instruments, a bounded ring of recent QueryStats, and an optional
// structured query log. It implements QueryObserver; every finished query
// folds into the histograms, the counters and the ring in one call.
type Recorder struct {
	reg *Registry

	// Prepared instruments — held as pointers so the per-query fold never
	// takes the registry lock.
	queries   *Counter
	errors    *Counter
	latency   *Histogram
	simTime   *Histogram
	iters     *Histogram
	shuffleB  *Histogram
	retries   *Counter
	replayed  *Counter
	recovered *Counter
	stale     *Counter
	supersede *Counter
	inflight  *Gauge

	mu sync.Mutex
	//rasql:guardedby=mu
	recent []QueryStats
	//rasql:guardedby=mu
	next int
	//rasql:guardedby=mu
	logger *slog.Logger
}

// recentCap bounds the recent-query ring.
const recentCap = 128

// NewRecorder creates a recorder with its own registry, pre-registering the
// rasql_* serving metrics.
func NewRecorder() *Recorder {
	reg := NewRegistry()
	return &Recorder{
		reg:       reg,
		queries:   reg.Counter("rasql_queries_total", "Queries finished (success or error)."),
		errors:    reg.Counter("rasql_query_errors_total", "Queries finished with an error."),
		latency:   reg.Histogram("rasql_query_latency_nanos", "End-to-end query latency in nanoseconds."),
		simTime:   reg.Histogram("rasql_query_sim_nanos", "Simulated in-stage time per query in nanoseconds."),
		iters:     reg.Histogram("rasql_query_iterations", "Fixpoint iterations per query."),
		shuffleB:  reg.Histogram("rasql_query_shuffle_bytes", "Shuffle bytes per query."),
		retries:   reg.Counter("rasql_task_retries_total", "Task attempts killed by faults and replayed."),
		replayed:  reg.Counter("rasql_rows_replayed_total", "Rows re-fetched by retry attempts."),
		recovered: reg.Counter("rasql_recovered_iterations_total", "Partition-level checkpoint rollbacks."),
		stale:     reg.Counter("rasql_stale_reads_total", "Rows consumed past the BSP-fresh stamp."),
		supersede: reg.Counter("rasql_superseded_rows_total", "Rows discarded because a fresher derivation covered them."),
		inflight:  reg.Gauge("rasql_queries_inflight", "Queries currently executing."),
	}
}

// Registry returns the recorder's metric registry (for exposition).
func (r *Recorder) Registry() *Registry { return r.reg }

// QueryLatency returns the latency histogram (for percentile readouts).
func (r *Recorder) QueryLatency() *Histogram { return r.latency }

// SetLogger attaches a structured query log: every finished query emits one
// record carrying its ID, latency and resource attribution. A nil logger
// (the default) disables logging.
func (r *Recorder) SetLogger(l *slog.Logger) {
	r.mu.Lock()
	r.logger = l
	r.mu.Unlock()
}

// QueryStarted marks a query in flight (folded back out by ObserveQuery).
func (r *Recorder) QueryStarted() { r.inflight.Add(1) }

// ObserveQuery folds one finished query into the registry instruments and
// the recent-query ring, and emits the query-log record when a logger is
// attached. Safe for concurrent use.
func (r *Recorder) ObserveQuery(s QueryStats) {
	r.inflight.Add(-1)
	r.queries.Inc()
	if s.Err != "" {
		r.errors.Inc()
	}
	r.latency.Observe(s.WallNanos)
	r.simTime.Observe(s.SimNanos)
	r.iters.Observe(s.Iterations)
	r.shuffleB.Observe(s.ShuffleBytes)
	r.retries.Add(s.TaskRetries)
	r.replayed.Add(s.RowsReplayed)
	r.recovered.Add(s.RecoveredIterations)
	r.stale.Add(s.StaleReads)
	r.supersede.Add(s.SupersededRows)

	r.mu.Lock()
	if len(r.recent) < recentCap {
		r.recent = append(r.recent, s)
	} else {
		r.recent[r.next] = s
	}
	r.next = (r.next + 1) % recentCap
	logger := r.logger
	r.mu.Unlock()

	if logger != nil {
		logger.Info("query finished",
			slog.Uint64("qid", s.ID),
			slog.Int64("wall_nanos", s.WallNanos),
			slog.Int64("sim_nanos", s.SimNanos),
			slog.Int64("iterations", s.Iterations),
			slog.Int64("shuffle_bytes", s.ShuffleBytes),
			slog.Int64("task_retries", s.TaskRetries),
			slog.Int64("stale_reads", s.StaleReads),
			slog.String("mode", s.Mode),
			slog.String("fallback", s.FallbackReason),
			slog.String("err", s.Err),
		)
	}
}

// Recent returns the retained QueryStats, oldest first (at most the ring
// capacity, 128).
func (r *Recorder) Recent() []QueryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QueryStats, 0, len(r.recent))
	if len(r.recent) < recentCap {
		return append(out, r.recent...)
	}
	out = append(out, r.recent[r.next:]...)
	return append(out, r.recent[:r.next]...)
}

// Last returns the most recently recorded QueryStats and whether one exists.
func (r *Recorder) Last() (QueryStats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recent) == 0 {
		return QueryStats{}, false
	}
	i := r.next - 1
	if i < 0 {
		i = len(r.recent) - 1
	}
	return r.recent[i], true
}
