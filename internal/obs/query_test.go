package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// promValue reads one un-labelled sample back through the exposition
// round-trip — the same path a real scrape takes.
func promValue(t *testing.T, reg *Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not re-parse: %v", err)
	}
	for _, fam := range fams {
		for _, s := range fam.Samples {
			if s.Name == name && len(s.Labels) == 0 {
				return s.Value
			}
		}
	}
	t.Fatalf("sample %s not found", name)
	return 0
}

func TestRecorderFold(t *testing.T) {
	r := NewRecorder()
	r.QueryStarted()
	r.QueryStarted()
	if got := promValue(t, r.Registry(), "rasql_queries_inflight"); got != 2 {
		t.Errorf("inflight after two starts = %v, want 2", got)
	}
	r.ObserveQuery(QueryStats{ID: 1, WallNanos: 1000, Iterations: 3, ShuffleBytes: 64, TaskRetries: 2, StaleReads: 5})
	r.ObserveQuery(QueryStats{ID: 2, WallNanos: 2000, Err: "boom"})

	reg := r.Registry()
	checks := map[string]float64{
		"rasql_queries_total":             2,
		"rasql_query_errors_total":        1,
		"rasql_queries_inflight":          0,
		"rasql_task_retries_total":        2,
		"rasql_stale_reads_total":         5,
		"rasql_query_latency_nanos_count": 2,
	}
	for name, want := range checks {
		if got := promValue(t, reg, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if r.QueryLatency().Count() != 2 {
		t.Errorf("latency histogram count = %d, want 2", r.QueryLatency().Count())
	}
	last, ok := r.Last()
	if !ok || last.ID != 2 || last.Err != "boom" {
		t.Errorf("Last() = %+v/%v, want query 2", last, ok)
	}
}

func TestRecorderRingWraps(t *testing.T) {
	r := NewRecorder()
	const n = recentCap + 37
	for i := 1; i <= n; i++ {
		r.QueryStarted()
		r.ObserveQuery(QueryStats{ID: uint64(i)})
	}
	recent := r.Recent()
	if len(recent) != recentCap {
		t.Fatalf("ring holds %d records, want %d", len(recent), recentCap)
	}
	for i, s := range recent {
		want := uint64(n - recentCap + 1 + i)
		if s.ID != want {
			t.Fatalf("recent[%d].ID = %d, want %d (oldest-first order)", i, s.ID, want)
		}
	}
	if last, _ := r.Last(); last.ID != n {
		t.Errorf("Last().ID = %d, want %d", last.ID, n)
	}
}

func TestRecorderQueryLog(t *testing.T) {
	r := NewRecorder()
	var buf bytes.Buffer
	r.SetLogger(slog.New(slog.NewJSONHandler(&buf, nil)))
	r.QueryStarted()
	r.ObserveQuery(QueryStats{ID: 7, WallNanos: 123, Mode: "bsp", FallbackReason: "prem refuted"})
	line := buf.String()
	for _, want := range []string{`"qid":7`, `"wall_nanos":123`, `"mode":"bsp"`, `"fallback":"prem refuted"`, "query finished"} {
		if !strings.Contains(line, want) {
			t.Errorf("query log line %q missing %q", line, want)
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.QueryStarted()
				r.ObserveQuery(QueryStats{ID: uint64(g*perG + i + 1), WallNanos: int64(i)})
			}
		}(g)
	}
	wg.Wait()
	if got := promValue(t, r.Registry(), "rasql_queries_total"); got != goroutines*perG {
		t.Errorf("rasql_queries_total = %v, want %d", got, goroutines*perG)
	}
	if got := promValue(t, r.Registry(), "rasql_queries_inflight"); got != 0 {
		t.Errorf("rasql_queries_inflight = %v, want 0 after all queries finished", got)
	}
	if got := len(r.Recent()); got != recentCap {
		t.Errorf("Recent() holds %d, want full ring %d", got, recentCap)
	}
}

func ExampleRegistry_WritePrometheus() {
	reg := NewRegistry()
	reg.Counter("example_total", "An example counter.").Add(3)
	var buf bytes.Buffer
	_ = reg.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP example_total An example counter.
	// # TYPE example_total counter
	// example_total 3
}
