package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Strict parser for the Prometheus text exposition format — the validation
// side of WritePrometheus. The CI metrics-smoke job round-trips every
// scrape through it, so exposition bugs (unsorted buckets, a missing +Inf,
// a sample without a TYPE header) fail the build instead of failing the
// first real scrape.
//
// The parser accepts the subset the registry emits plus standard labelled
// samples, and rejects: samples without a preceding TYPE, unknown types,
// duplicate TYPE/HELP headers, duplicate series, malformed label syntax,
// unparseable values, histograms with non-cumulative buckets, and
// histograms missing le="+Inf", _sum or _count (or whose +Inf bucket
// disagrees with _count).

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one metric family: its headers plus samples in input order.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParsePrometheus parses and validates a text-format exposition, returning
// the families keyed by name. Any violation of the format (or of histogram
// semantics) is an error naming the offending line.
func ParsePrometheus(data []byte) (map[string]*PromFamily, error) {
	families := map[string]*PromFamily{}
	var order []string
	seenSeries := map[string]bool{}

	lines := strings.Split(string(data), "\n")
	for ln, raw := range lines {
		line := strings.TrimRight(raw, " \t\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		where := fmt.Sprintf("line %d", ln+1)
		if strings.HasPrefix(line, "#") {
			if err := parseHeader(line, where, families, &order); err != nil {
				return nil, err
			}
			continue
		}
		s, err := parseSample(line, where)
		if err != nil {
			return nil, err
		}
		famName := familyOf(s.Name, families)
		fam := families[famName]
		if fam == nil || fam.Type == "" {
			return nil, fmt.Errorf("obs: %s: sample %q has no preceding # TYPE header", where, s.Name)
		}
		key := seriesKey(s)
		if seenSeries[key] {
			return nil, fmt.Errorf("obs: %s: duplicate series %s", where, key)
		}
		seenSeries[key] = true
		fam.Samples = append(fam.Samples, s)
	}

	for _, name := range order {
		fam := families[name]
		if fam.Type == "histogram" {
			if err := validateHistogramFamily(fam); err != nil {
				return nil, err
			}
		} else if len(fam.Samples) == 0 {
			return nil, fmt.Errorf("obs: family %s declares TYPE %s but has no samples", name, fam.Type)
		}
	}
	return families, nil
}

// parseHeader handles # HELP and # TYPE lines (other comments are ignored).
func parseHeader(line, where string, families map[string]*PromFamily, order *[]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // plain comment
	}
	name := fields[2]
	if !validMetricName(name) {
		return fmt.Errorf("obs: %s: invalid metric name %q in %s header", where, name, fields[1])
	}
	fam := families[name]
	if fam == nil {
		fam = &PromFamily{Name: name}
		families[name] = fam
		*order = append(*order, name)
	}
	switch fields[1] {
	case "HELP":
		if fam.Help != "" {
			return fmt.Errorf("obs: %s: duplicate HELP for %s", where, name)
		}
		if len(fields) == 4 {
			fam.Help = fields[3]
		} else {
			fam.Help = " " // present but empty
		}
	case "TYPE":
		if fam.Type != "" {
			return fmt.Errorf("obs: %s: duplicate TYPE for %s", where, name)
		}
		if len(fam.Samples) > 0 {
			return fmt.Errorf("obs: %s: TYPE for %s appears after its samples", where, name)
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
			fam.Type = typ
		default:
			return fmt.Errorf("obs: %s: unknown TYPE %q for %s", where, typ, name)
		}
	}
	return nil
}

// parseSample parses `name[{label="v",...}] value [timestamp]`.
func parseSample(line, where string) (PromSample, error) {
	s := PromSample{}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 && brace < strings.IndexByte(rest+" ", ' ') {
		nameEnd = brace
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return s, fmt.Errorf("obs: %s: sample %q has no value", where, line)
		}
		nameEnd = sp
	}
	s.Name = rest[:nameEnd]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("obs: %s: invalid metric name %q", where, s.Name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("obs: %s: unterminated label set in %q", where, line)
		}
		labels, err := parseLabels(rest[1:end], where)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("obs: %s: want `value [timestamp]` after %s, got %q", where, s.Name, strings.TrimSpace(rest))
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("obs: %s: bad value %q for %s: %v", where, fields[0], s.Name, err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("obs: %s: bad timestamp %q for %s", where, fields[1], s.Name)
		}
	}
	return s, nil
}

// parsePromValue parses a sample value: decimal floats plus +Inf/-Inf/NaN.
func parsePromValue(f string) (float64, error) {
	switch f {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(f, 64)
}

// parseLabels parses `k="v",k2="v2"` (trailing comma tolerated, as the
// format allows).
func parseLabels(s, where string) (map[string]string, error) {
	labels := map[string]string{}
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("obs: %s: label %q missing '='", where, s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validLabelName(key) {
			return nil, fmt.Errorf("obs: %s: invalid label name %q", where, key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("obs: %s: label %s value is not quoted", where, key)
		}
		val, rest, err := scanQuoted(s)
		if err != nil {
			return nil, fmt.Errorf("obs: %s: label %s: %v", where, key, err)
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("obs: %s: duplicate label %s", where, key)
		}
		labels[key] = val
		s = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

// scanQuoted consumes a double-quoted string with \", \\ and \n escapes,
// returning the unescaped value and the remainder.
func scanQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return s == "__name__" // reserved but syntactically fine
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// familyOf maps a sample name to its family: histogram samples X_bucket,
// X_sum and X_count belong to family X when X is a declared histogram.
func familyOf(name string, families map[string]*PromFamily) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f, ok := families[base]; ok && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

// seriesKey canonicalizes name+labels for duplicate detection.
func seriesKey(s PromSample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// validateHistogramFamily checks histogram semantics: le-labelled buckets
// with parseable, strictly increasing bounds and non-decreasing cumulative
// counts, a mandatory le="+Inf" bucket, _sum and _count samples, and
// +Inf == _count.
func validateHistogramFamily(fam *PromFamily) error {
	type bkt struct {
		le  float64
		cum float64
	}
	var buckets []bkt
	var haveSum, haveCount bool
	var count float64
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("obs: histogram %s: bucket sample without le label", fam.Name)
			}
			bound, err := parsePromValue(le)
			if err != nil {
				return fmt.Errorf("obs: histogram %s: unparseable le=%q", fam.Name, le)
			}
			buckets = append(buckets, bkt{le: bound, cum: s.Value})
		case fam.Name + "_sum":
			haveSum = true
		case fam.Name + "_count":
			haveCount = true
			count = s.Value
		default:
			return fmt.Errorf("obs: histogram %s: unexpected sample %s", fam.Name, s.Name)
		}
	}
	if len(buckets) == 0 {
		return fmt.Errorf("obs: histogram %s has no buckets", fam.Name)
	}
	if !haveSum || !haveCount {
		return fmt.Errorf("obs: histogram %s missing _sum or _count", fam.Name)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].le <= buckets[i-1].le {
			return fmt.Errorf("obs: histogram %s: bucket bounds not increasing (le=%v after le=%v)", fam.Name, buckets[i].le, buckets[i-1].le)
		}
		if buckets[i].cum < buckets[i-1].cum {
			return fmt.Errorf("obs: histogram %s: cumulative counts decrease at le=%v (%v < %v)", fam.Name, buckets[i].le, buckets[i].cum, buckets[i-1].cum)
		}
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.le, 1) {
		return fmt.Errorf("obs: histogram %s missing le=\"+Inf\" bucket", fam.Name)
	}
	if last.cum != count {
		return fmt.Errorf("obs: histogram %s: +Inf bucket (%v) disagrees with _count (%v)", fam.Name, last.cum, count)
	}
	return nil
}
