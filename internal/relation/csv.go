package relation

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/rasql/rasql-go/internal/types"
)

// ReadCSV loads a relation from CSV (or TSV when sep is '\t'). The schema
// must be supplied; a leading header row matching the schema column names
// is skipped automatically.
func ReadCSV(r io.Reader, name string, schema types.Schema, sep rune) (*Relation, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, 1<<16))
	cr.Comma = sep
	cr.FieldsPerRecord = schema.Len()
	cr.ReuseRecord = true
	rel := New(name, schema)
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read %s: %w", name, err)
		}
		if first {
			first = false
			if isHeader(rec, schema) {
				continue
			}
		}
		row := make(types.Row, len(rec))
		for i, f := range rec {
			v, err := types.ParseValue(strings.TrimSpace(f), schema.Columns[i].Type)
			if err != nil {
				return nil, fmt.Errorf("relation: %s row %d: %w", name, rel.Len()+1, err)
			}
			row[i] = v
		}
		rel.Append(row)
	}
}

func isHeader(rec []string, schema types.Schema) bool {
	for i, f := range rec {
		if !strings.EqualFold(strings.TrimSpace(f), schema.Columns[i].Name) {
			return false
		}
	}
	return true
}

// ReadCSVFile loads a relation from a file path.
func ReadCSVFile(path, name string, schema types.Schema, sep rune) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, name, schema, sep)
}

// WriteCSV writes the relation as CSV with a header row.
func WriteCSV(w io.Writer, rel *Relation, sep rune) error {
	cw := csv.NewWriter(w)
	cw.Comma = sep
	if err := cw.Write(rel.Schema.Names()); err != nil {
		return err
	}
	rec := make([]string, rel.Schema.Len())
	for _, row := range rel.Rows {
		for i, v := range row {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the relation to a file path.
func WriteCSVFile(path string, rel *Relation, sep rune) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<16)
	if err := WriteCSV(w, rel, sep); err != nil {
		return err
	}
	return w.Flush()
}
