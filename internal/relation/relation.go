// Package relation provides the in-memory relation abstraction: a schema
// plus a slice of rows, with helpers for building, sorting, deduplicating
// and comparing relations, and CSV input/output.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rasql/rasql-go/internal/types"
)

// Relation is an in-memory table: a schema and its rows.
type Relation struct {
	// Name is an optional identifier (catalog name or derived label).
	Name string
	// Schema describes the columns.
	Schema types.Schema
	// Rows holds the tuples. Callers may append directly while building.
	Rows []types.Row
}

// New creates an empty relation with the given name and schema.
func New(name string, schema types.Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// FromRows creates a relation from pre-built rows.
func FromRows(name string, schema types.Schema, rows []types.Row) *Relation {
	return &Relation{Name: name, Schema: schema, Rows: rows}
}

// Append adds a row. The row arity must match the schema; this is checked
// only in debug paths, not per append, to keep bulk loading cheap.
func (r *Relation) Append(row types.Row) { r.Rows = append(r.Rows, row) }

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// Clone deep-copies the relation (rows are re-sliced; values are immutable).
func (r *Relation) Clone() *Relation {
	rows := make([]types.Row, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = row.Clone()
	}
	return &Relation{Name: r.Name, Schema: r.Schema, Rows: rows}
}

// Sort orders rows lexicographically in place and returns the relation.
func (r *Relation) Sort() *Relation {
	sort.Slice(r.Rows, func(i, j int) bool {
		return r.Rows[i].Compare(r.Rows[j]) < 0
	})
	return r
}

// Dedup removes duplicate rows (set semantics) in place and returns r.
func (r *Relation) Dedup() *Relation {
	seen := make(map[string]struct{}, len(r.Rows))
	out := r.Rows[:0]
	for _, row := range r.Rows {
		k := types.RowKeyString(row)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, row)
	}
	r.Rows = out
	return r
}

// EqualAsSet reports whether two relations hold the same set of rows,
// ignoring order and duplicates.
func (r *Relation) EqualAsSet(o *Relation) bool {
	a := countRows(r.Rows, true)
	b := countRows(o.Rows, true)
	return mapsEqual(a, b)
}

// EqualAsBag reports whether two relations hold the same multiset of rows,
// ignoring order.
func (r *Relation) EqualAsBag(o *Relation) bool {
	a := countRows(r.Rows, false)
	b := countRows(o.Rows, false)
	return mapsEqual(a, b)
}

func countRows(rows []types.Row, set bool) map[string]int {
	m := make(map[string]int, len(rows))
	for _, row := range rows {
		k := types.RowKeyString(row)
		if set {
			m[k] = 1
		} else {
			m[k]++
		}
	}
	return m
}

func mapsEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// String renders the relation as a small ASCII table, truncated to 20 rows.
func (r *Relation) String() string { return r.Format(20) }

// Format renders the relation as an ASCII table with at most maxRows rows.
func (r *Relation) Format(maxRows int) string {
	var b strings.Builder
	name := r.Name
	if name == "" {
		name = "relation"
	}
	fmt.Fprintf(&b, "%s %s: %d rows\n", name, r.Schema, len(r.Rows))
	n := len(r.Rows)
	if maxRows >= 0 && n > maxRows {
		n = maxRows
	}
	for i := 0; i < n; i++ {
		b.WriteString("  ")
		b.WriteString(r.Rows[i].String())
		b.WriteByte('\n')
	}
	if n < len(r.Rows) {
		fmt.Fprintf(&b, "  ... (%d more)\n", len(r.Rows)-n)
	}
	return b.String()
}

// Validate checks that every row matches the schema arity and that each
// non-null value is compatible with the declared column type.
func (r *Relation) Validate() error {
	for i, row := range r.Rows {
		if len(row) != r.Schema.Len() {
			return fmt.Errorf("relation %s: row %d has %d values, schema has %d columns",
				r.Name, i, len(row), r.Schema.Len())
		}
		for j, v := range row {
			if v.IsNull() {
				continue
			}
			want := r.Schema.Columns[j].Type
			ok := v.K == want ||
				(want == types.KindFloat && v.K == types.KindInt) // ints widen to double
			if !ok {
				return fmt.Errorf("relation %s: row %d col %s: value %v has kind %v, want %v",
					r.Name, i, r.Schema.Columns[j].Name, v, v.K, want)
			}
		}
	}
	return nil
}
