package relation

import (
	"strings"
	"testing"

	"github.com/rasql/rasql-go/internal/types"
)

func edgeSchema() types.Schema {
	return types.NewSchema(types.Col("Src", types.KindInt), types.Col("Dst", types.KindInt))
}

func testRel() *Relation {
	r := New("edge", edgeSchema())
	r.Append(types.Row{types.Int(1), types.Int(2)})
	r.Append(types.Row{types.Int(2), types.Int(3)})
	r.Append(types.Row{types.Int(1), types.Int(2)})
	return r
}

func TestDedup(t *testing.T) {
	r := testRel()
	r.Dedup()
	if r.Len() != 2 {
		t.Errorf("after dedup: %d rows, want 2", r.Len())
	}
}

func TestSort(t *testing.T) {
	r := New("x", edgeSchema())
	r.Append(types.Row{types.Int(2), types.Int(1)})
	r.Append(types.Row{types.Int(1), types.Int(9)})
	r.Append(types.Row{types.Int(1), types.Int(2)})
	r.Sort()
	want := []types.Row{
		{types.Int(1), types.Int(2)},
		{types.Int(1), types.Int(9)},
		{types.Int(2), types.Int(1)},
	}
	for i, w := range want {
		if !r.Rows[i].Equal(w) {
			t.Errorf("row %d = %v, want %v", i, r.Rows[i], w)
		}
	}
}

func TestEqualAsSetAndBag(t *testing.T) {
	a := testRel()         // {(1,2) x2, (2,3)}
	b := testRel().Dedup() // {(1,2), (2,3)}
	if !a.EqualAsSet(b) {
		t.Error("set equality should ignore duplicates")
	}
	if a.EqualAsBag(b) {
		t.Error("bag equality should see the duplicate")
	}
	c := New("c", edgeSchema())
	c.Append(types.Row{types.Int(9), types.Int(9)})
	if a.EqualAsSet(c) {
		t.Error("different contents must not be set-equal")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := testRel()
	b := a.Clone()
	b.Rows[0][0] = types.Int(99)
	if a.Rows[0][0].Equal(types.Int(99)) {
		t.Error("clone must not share row storage")
	}
}

func TestValidate(t *testing.T) {
	r := testRel()
	if err := r.Validate(); err != nil {
		t.Errorf("valid relation: %v", err)
	}
	r.Append(types.Row{types.Int(1)})
	if err := r.Validate(); err == nil {
		t.Error("arity mismatch should fail validation")
	}
	r.Rows = r.Rows[:len(r.Rows)-1]
	r.Append(types.Row{types.Str("x"), types.Int(1)})
	if err := r.Validate(); err == nil {
		t.Error("kind mismatch should fail validation")
	}
	// Ints are allowed in double columns.
	f := New("f", types.NewSchema(types.Col("C", types.KindFloat)))
	f.Append(types.Row{types.Int(3)})
	if err := f.Validate(); err != nil {
		t.Errorf("int in double column should validate: %v", err)
	}
}

func TestFormatTruncation(t *testing.T) {
	r := testRel()
	s := r.Format(1)
	if !strings.Contains(s, "(2 more)") {
		t.Errorf("Format should note truncation: %q", s)
	}
	if !strings.Contains(r.String(), "edge") {
		t.Error("String should include the relation name")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := testRel()
	var buf strings.Builder
	if err := WriteCSV(&buf, r, ','); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(buf.String()), "edge", edgeSchema(), ',')
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsBag(r) {
		t.Errorf("CSV round trip mismatch:\n%v\n%v", got, r)
	}
}

func TestCSVNoHeader(t *testing.T) {
	in := "1,2\n3,4\n"
	got, err := ReadCSV(strings.NewReader(in), "e", edgeSchema(), ',')
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("got %d rows, want 2", got.Len())
	}
}

func TestCSVBadValue(t *testing.T) {
	in := "1,notanint\n"
	if _, err := ReadCSV(strings.NewReader(in), "e", edgeSchema(), ','); err == nil {
		t.Error("bad int should error")
	}
}

func TestCSVTabSeparated(t *testing.T) {
	in := "1\t2\n2\t3\n"
	got, err := ReadCSV(strings.NewReader(in), "e", edgeSchema(), '\t')
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("got %d rows, want 2", got.Len())
	}
}
