package server

import (
	"fmt"
	"strconv"
	"sync"

	"github.com/rasql/rasql-go/internal/obs"
)

// Settings are the per-session execution knobs. The zero value inherits the
// engine configuration for everything. Requests may override per call; the
// session's values fill anything the request leaves unset.
type Settings struct {
	// Mode is the fixpoint evaluation mode in -mode syntax: "bsp", "ssp",
	// "ssp:k" or "async". Empty inherits the engine default.
	Mode string `json:"mode,omitempty"`
	// MaxIterations bounds the fixpoint loop (0 inherits).
	MaxIterations int `json:"max_iterations,omitempty"`
	// TimeoutMillis is the per-request deadline in milliseconds (0 inherits
	// the server default; negative disables the deadline entirely).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Trace selects the per-query trace level: "" or "off" (none),
	// "iterations" (fixpoint telemetry only) or "full" (spans too). Traced
	// queries report iteration counts in their stats; the trace itself stays
	// server-side.
	Trace string `json:"trace,omitempty"`
}

// merge overlays o (a request's overrides) on s: any field o sets wins.
func (s Settings) merge(o Settings) Settings {
	if o.Mode != "" {
		s.Mode = o.Mode
	}
	if o.MaxIterations != 0 {
		s.MaxIterations = o.MaxIterations
	}
	if o.TimeoutMillis != 0 {
		s.TimeoutMillis = o.TimeoutMillis
	}
	if o.Trace != "" {
		s.Trace = o.Trace
	}
	return s
}

func (s Settings) validate() error {
	switch s.Trace {
	case "", "off", "iterations", "full":
	default:
		return fmt.Errorf("unknown trace level %q (want off, iterations or full)", s.Trace)
	}
	return nil
}

// preparedStmt is one session-scoped prepared statement: the client-visible
// handle plus the normalized text the plan cache is keyed on. The compiled
// plan itself lives in the shared PlanCache so sessions preparing the same
// statement share one compilation, and DDL invalidation is centralized.
type preparedStmt struct {
	id   string
	src  string
	norm string
}

// session is one client session: settings plus prepared-statement handles.
type session struct {
	id string

	mu sync.Mutex
	//rasql:guardedby=mu
	settings Settings
	//rasql:guardedby=mu
	stmts map[string]*preparedStmt
	//rasql:guardedby=mu
	nextStmt int
}

func (s *session) Settings() Settings {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.settings
}

func (s *session) addStmt(src, norm string) *preparedStmt {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextStmt++
	st := &preparedStmt{id: s.id + "-" + strconv.Itoa(s.nextStmt), src: src, norm: norm}
	s.stmts[st.id] = st
	return st
}

func (s *session) stmt(id string) (*preparedStmt, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stmts[id]
	return st, ok
}

// sessionRegistry tracks live sessions and exposes the count as a gauge.
type sessionRegistry struct {
	mu sync.Mutex
	//rasql:guardedby=mu
	byID map[string]*session
	//rasql:guardedby=mu
	nextID uint64
	gauge  *obs.Gauge
}

func newSessionRegistry(reg *obs.Registry) *sessionRegistry {
	return &sessionRegistry{
		byID:  make(map[string]*session),
		gauge: reg.Gauge("rasql_server_sessions", "Live client sessions."),
	}
}

func (r *sessionRegistry) create(settings Settings) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	s := &session{
		id:       "s" + strconv.FormatUint(r.nextID, 10),
		settings: settings,
		stmts:    make(map[string]*preparedStmt),
	}
	r.byID[s.id] = s
	r.gauge.Set(int64(len(r.byID)))
	return s
}

func (r *sessionRegistry) get(id string) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[id]
	return s, ok
}

func (r *sessionRegistry) remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; !ok {
		return false
	}
	delete(r.byID, id)
	r.gauge.Set(int64(len(r.byID)))
	return true
}
