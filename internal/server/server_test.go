package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/queries"
)

// chainEngine registers a 1→2→…→n chain as edge(Src,Dst,Cost): SSSP on it
// needs n-1 fixpoint iterations, making query wall time tunable from tests.
func chainEngine(t *testing.T, n int64) *rasql.Engine {
	t.Helper()
	schema := rasql.NewSchema(
		rasql.Col("Src", rasql.KindInt),
		rasql.Col("Dst", rasql.KindInt),
		rasql.Col("Cost", rasql.KindFloat))
	e := rasql.NewRelation("edge", schema)
	for i := int64(1); i < n; i++ {
		e.Append(rasql.Row{rasql.Int(i), rasql.Int(i + 1), rasql.Float(1)})
	}
	eng := rasql.New(rasql.Config{})
	eng.MustRegister(e)
	return eng
}

// post sends one JSON request and returns status, headers and parsed body.
func post(t *testing.T, url string, body any) (int, http.Header, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	raw, _ := io.ReadAll(resp.Body)
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("POST %s: decode %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode, resp.Header, out
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// metricLine returns the sample line for name ("name value") or "".
func metricLine(exposition, name string) string {
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return line
		}
	}
	return ""
}

// TestServerTimeout: a deadline shorter than the query cancels the fixpoint
// at an iteration boundary — the client gets 408 with the iteration count in
// the error, the timeout counter increments, and no goroutines leak.
func TestServerTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("slow-query timeout test is not short")
	}
	eng := chainEngine(t, 5000)
	srv := New(eng, Config{MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm-up request so the client's keep-alive connection (and its two
	// transport goroutines) exists before the baseline count is taken.
	if status, _, out := post(t, ts.URL+"/v1/query", map[string]any{"sql": "SELECT count(*) FROM edge"}); status != http.StatusOK {
		t.Fatalf("warm-up query: status %d (body: %v)", status, out)
	}
	before := runtime.NumGoroutine()
	status, _, out := post(t, ts.URL+"/v1/query", map[string]any{
		"sql":      queries.SSSP,
		"settings": map[string]any{"timeout_ms": 150},
	})
	if status != http.StatusRequestTimeout {
		t.Fatalf("status = %d, want 408 (body: %v)", status, out)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "iteration boundary") {
		t.Errorf("error %q does not mention the iteration boundary", msg)
	}

	// The fixpoint must actually stop: all worker goroutines wind down to
	// the pre-request level (plus scheduler slack) shortly after the 408.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancelled query: before %d, now %d",
				before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}

	exp := scrapeMetrics(t, ts.URL)
	if line := metricLine(exp, "rasql_server_timeouts_total"); line != "rasql_server_timeouts_total 1" {
		t.Errorf("timeouts counter line = %q, want 1", line)
	}

	// A generous deadline leaves the same query untouched.
	status, _, out = post(t, ts.URL+"/v1/query", map[string]any{
		"sql":      "SELECT count(*) FROM edge",
		"settings": map[string]any{"timeout_ms": 60000},
	})
	if status != http.StatusOK {
		t.Fatalf("fast query under deadline: status %d (body: %v)", status, out)
	}
}

// TestServerAdmissionSaturation: with one execution slot and a one-deep
// queue, a running query plus a queued one saturate the server — the next
// request gets an immediate 429 with Retry-After, and the queue-depth gauge
// is visible in /metrics while the backlog exists.
func TestServerAdmissionSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation test is not short")
	}
	eng := chainEngine(t, 5000)
	srv := New(eng, Config{MaxConcurrent: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	query := func(timeoutMillis int64) (int, http.Header) {
		buf, _ := json.Marshal(map[string]any{
			"sql":      queries.SSSP,
			"settings": map[string]any{"timeout_ms": timeoutMillis},
		})
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(buf))
		if err != nil {
			return 0, nil
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, resp.Header
	}
	waitGauge := func(name string, want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if line := metricLine(scrapeMetrics(t, ts.URL), name); line == fmt.Sprintf("%s %d", name, want) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("gauge %s never reached %d; exposition:\n%s", name, want,
					metricLine(scrapeMetrics(t, ts.URL), name))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	var wg sync.WaitGroup
	statuses := make([]int, 2)
	wg.Add(1)
	go func() { defer wg.Done(); statuses[0], _ = query(-1) }() // holds the slot (~1.5s)
	waitGauge("rasql_server_active_requests", 1)
	wg.Add(1)
	go func() { defer wg.Done(); statuses[1], _ = query(-1) }() // waits in the queue
	waitGauge("rasql_server_queue_depth", 1)

	// Saturated: slot busy, queue full. The next request bounces.
	status, hdr := query(-1)
	if status != http.StatusTooManyRequests {
		t.Errorf("saturated request: status %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	exp := scrapeMetrics(t, ts.URL)
	if line := metricLine(exp, "rasql_server_rejected_total"); line != "rasql_server_rejected_total 1" {
		t.Errorf("rejected counter line = %q, want 1", line)
	}

	wg.Wait()
	for i, status := range statuses {
		if status != http.StatusOK {
			t.Errorf("admitted query %d: status %d, want 200", i, status)
		}
	}
	waitGauge("rasql_server_queue_depth", 0)
	waitGauge("rasql_server_active_requests", 0)
}

// TestServerQueueTimeout: a request whose deadline expires while it is still
// queued gets 503 (not 408 — it never started executing) with Retry-After.
func TestServerQueueTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("queue-timeout test is not short")
	}
	eng := chainEngine(t, 5000)
	srv := New(eng, Config{MaxConcurrent: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf, _ := json.Marshal(map[string]any{"sql": queries.SSSP, "settings": map[string]any{"timeout_ms": -1}})
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(buf))
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if line := metricLine(scrapeMetrics(t, ts.URL), "rasql_server_active_requests"); line == "rasql_server_active_requests 1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot holder never started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	status, hdr, out := post(t, ts.URL+"/v1/query", map[string]any{
		"sql":      "SELECT count(*) FROM edge",
		"settings": map[string]any{"timeout_ms": 100},
	})
	if status != http.StatusServiceUnavailable {
		t.Errorf("queued past deadline: status %d, want 503 (body: %v)", status, out)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	wg.Wait()
}

// TestServerDrain: draining flips /readyz, refuses new work with 503 +
// Retry-After, and Drain returns once in-flight requests finish.
func TestServerDrain(t *testing.T) {
	eng := chainEngine(t, 50)
	srv := New(eng, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _, _ := post(t, ts.URL+"/v1/query", map[string]any{"sql": "SELECT count(*) FROM edge"}); status != http.StatusOK {
		t.Fatalf("pre-drain query: status %d", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	status, hdr, _ := post(t, ts.URL+"/v1/query", map[string]any{"sql": "SELECT count(*) FROM edge"})
	if status != http.StatusServiceUnavailable {
		t.Errorf("post-drain query: status %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("post-drain 503 missing Retry-After")
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: status %d, want 503", resp.StatusCode)
	}
	// /metrics and /healthz keep serving for the final scrape.
	if exp := scrapeMetrics(t, ts.URL); metricLine(exp, "rasql_server_requests_total") == "" {
		t.Error("/metrics unavailable while draining")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz while draining: status %d, want 200", resp.StatusCode)
	}
}
