package server

import (
	"container/list"
	"strconv"
	"sync"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/obs"
)

// PlanCache is an LRU cache of compiled plans keyed on normalized SQL text
// plus the catalog DDL version the plan was compiled against. Because the
// version is part of the key, a DDL commit makes every older entry
// unreachable — a cached plan is never served against a changed catalog —
// and Invalidate sweeps the dead entries out eagerly.
//
// Hit/miss/eviction counters and the live-entry gauge register in the
// engine's obs registry, so the cache's behaviour shows up in /metrics next
// to the query histograms. The counters satisfy hits + misses == lookups.
type PlanCache struct {
	mu sync.Mutex
	//rasql:guardedby=mu
	lru *list.List
	//rasql:guardedby=mu
	byKey map[string]*list.Element
	cap   int

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	entries   *obs.Gauge
}

// cacheEntry is one cached plan with its key (kept for eviction).
type cacheEntry struct {
	key  string
	prep *rasql.Prepared
}

// NewPlanCache creates a cache holding at most capacity plans (minimum 1)
// and registers its rasql_plan_cache_* instruments on reg.
func NewPlanCache(capacity int, reg *obs.Registry) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		lru:       list.New(),
		byKey:     make(map[string]*list.Element),
		cap:       capacity,
		hits:      reg.Counter("rasql_plan_cache_hits_total", "Plan-cache lookups served from cache."),
		misses:    reg.Counter("rasql_plan_cache_misses_total", "Plan-cache lookups that had to compile."),
		evictions: reg.Counter("rasql_plan_cache_evictions_total", "Plans evicted by LRU or DDL invalidation."),
		entries:   reg.Gauge("rasql_plan_cache_entries", "Plans currently cached."),
	}
}

// cacheKey joins the normalized SQL and the catalog version. The version
// renders first so Invalidate can match entries by prefix-free comparison on
// the stored Prepared instead of re-parsing keys.
func cacheKey(norm string, version uint64) string {
	return strconv.FormatUint(version, 10) + "\x00" + norm
}

// Get looks up the plan compiled from norm against catalog version,
// counting a hit or a miss. A hit moves the entry to the LRU front.
func (pc *PlanCache) Get(norm string, version uint64) *rasql.Prepared {
	key := cacheKey(norm, version)
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.byKey[key]; ok {
		pc.lru.MoveToFront(el)
		pc.hits.Inc()
		return el.Value.(*cacheEntry).prep
	}
	pc.misses.Inc()
	return nil
}

// Put stores a compiled plan under its normalized text and the catalog
// version it was compiled against, evicting the LRU tail beyond capacity.
// Racing Puts for the same key keep the first entry (the plans are
// interchangeable: same normal form, same catalog snapshot).
func (pc *PlanCache) Put(norm string, p *rasql.Prepared) {
	key := cacheKey(norm, p.CatalogVersion())
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.byKey[key]; ok {
		pc.lru.MoveToFront(el)
		return
	}
	pc.byKey[key] = pc.lru.PushFront(&cacheEntry{key: key, prep: p})
	for pc.lru.Len() > pc.cap {
		tail := pc.lru.Back()
		pc.lru.Remove(tail)
		delete(pc.byKey, tail.Value.(*cacheEntry).key)
		pc.evictions.Inc()
	}
	pc.entries.Set(int64(pc.lru.Len()))
}

// Invalidate drops every plan compiled against a catalog version other than
// current. Versioned keys already make stale entries unreachable; the sweep
// frees their memory and keeps the entries gauge honest. Swept entries count
// as evictions.
func (pc *PlanCache) Invalidate(current uint64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var next *list.Element
	for el := pc.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.prep.CatalogVersion() != current {
			pc.lru.Remove(el)
			delete(pc.byKey, e.key)
			pc.evictions.Inc()
		}
	}
	pc.entries.Set(int64(pc.lru.Len()))
}

// Reset drops every cached plan (each counted as an eviction). The serving
// path never calls this; the benchmark uses it to re-measure the cold path
// after the first pass has populated the cache.
func (pc *PlanCache) Reset() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for pc.lru.Len() > 0 {
		tail := pc.lru.Back()
		pc.lru.Remove(tail)
		delete(pc.byKey, tail.Value.(*cacheEntry).key)
		pc.evictions.Inc()
	}
	pc.entries.Set(0)
}

// Len returns the number of cached plans.
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}
