package server

import (
	"encoding/json"
	"fmt"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
)

// ColumnJSON describes one result column on the wire.
type ColumnJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// columnsJSON renders a schema for the wire.
func columnsJSON(s types.Schema) []ColumnJSON {
	out := make([]ColumnJSON, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = ColumnJSON{Name: c.Name, Kind: c.Type.String()}
	}
	return out
}

// encodeRows renders rows as JSON-native values: ints as numbers, doubles
// as numbers, strings as strings, booleans as booleans, NULL as null.
func encodeRows(rows []types.Row) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		jr := make([]any, len(r))
		for j, v := range r {
			switch v.K {
			case types.KindInt:
				jr[j] = v.I
			case types.KindFloat:
				jr[j] = v.F
			case types.KindString:
				jr[j] = v.S
			case types.KindBool:
				jr[j] = v.I != 0
			default:
				jr[j] = nil
			}
		}
		out[i] = jr
	}
	return out
}

// parseKind maps the wire kind names (types.Kind.String) back to kinds.
func parseKind(s string) (types.Kind, error) {
	switch s {
	case "int":
		return types.KindInt, nil
	case "double":
		return types.KindFloat, nil
	case "string":
		return types.KindString, nil
	case "boolean":
		return types.KindBool, nil
	case "null":
		return types.KindNull, nil
	}
	return types.KindNull, fmt.Errorf("server: unknown column kind %q", s)
}

// DecodeRelation rebuilds a relation from a wire response (columns + rows).
// Clients decoding with encoding/json should decode row cells into
// json.Number (or any); both are handled here. Used by the differential
// tests and the HTTP bench client to compare server results against the
// in-process oracle.
func DecodeRelation(name string, cols []ColumnJSON, rows [][]any) (*relation.Relation, error) {
	schema := types.Schema{Columns: make([]types.Column, len(cols))}
	for i, c := range cols {
		k, err := parseKind(c.Kind)
		if err != nil {
			return nil, err
		}
		schema.Columns[i] = types.Column{Name: c.Name, Type: k}
	}
	rel := relation.New(name, schema)
	for _, jr := range rows {
		if len(jr) != len(cols) {
			return nil, fmt.Errorf("server: row has %d cells, schema has %d columns", len(jr), len(cols))
		}
		row := make(types.Row, len(jr))
		for j, cell := range jr {
			v, err := decodeValue(cell, schema.Columns[j].Type)
			if err != nil {
				return nil, fmt.Errorf("server: column %s: %w", cols[j].Name, err)
			}
			row[j] = v
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel, nil
}

// decodeValue converts one decoded JSON cell to a typed value. The declared
// column kind disambiguates JSON's single number type.
func decodeValue(cell any, kind types.Kind) (types.Value, error) {
	if cell == nil {
		return types.Null(), nil
	}
	switch c := cell.(type) {
	case json.Number:
		if kind == types.KindFloat {
			f, err := c.Float64()
			if err != nil {
				return types.Value{}, err
			}
			return types.Float(f), nil
		}
		i, err := c.Int64()
		if err != nil {
			// An int column can still carry a fractional literal when the
			// engine widened it; fall back to the float reading.
			f, ferr := c.Float64()
			if ferr != nil {
				return types.Value{}, err
			}
			return types.Float(f), nil
		}
		if kind == types.KindInt {
			return types.Int(i), nil
		}
		return types.Int(i), nil
	case float64:
		if kind == types.KindInt && c == float64(int64(c)) {
			return types.Int(int64(c)), nil
		}
		return types.Float(c), nil
	case int64:
		return types.Int(c), nil
	case string:
		return types.Str(c), nil
	case bool:
		return types.Bool(c), nil
	}
	return types.Value{}, fmt.Errorf("unsupported JSON cell type %T", cell)
}
