package server

import (
	"context"
	"errors"

	"github.com/rasql/rasql-go/internal/obs"
)

// Admission errors, mapped to HTTP statuses by the handlers.
var (
	// errQueueFull means the wait queue is at capacity: 429 Too Many
	// Requests with Retry-After — the client should back off and retry.
	errQueueFull = errors.New("server saturated: admission queue full")
	// errQueueTimeout means the request's deadline expired (or the client
	// went away) while waiting for an execution slot: 503.
	errQueueTimeout = errors.New("request expired while queued for admission")
	// errDraining means the server is shutting down and admits nothing new.
	errDraining = errors.New("server is draining")
)

// admission is the bounded-concurrency gate in front of the engine: at most
// slots queries execute at once, at most queueCap more wait, and everything
// beyond that is rejected immediately. The queue depth is exported as a
// gauge so saturation is visible in /metrics while it is happening.
type admission struct {
	slots    chan struct{}
	queue    chan struct{}
	queued   *obs.Gauge
	active   *obs.Gauge
	rejected *obs.Counter
}

func newAdmission(slots, queueCap int, reg *obs.Registry) *admission {
	if slots < 1 {
		slots = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	return &admission{
		slots:    make(chan struct{}, slots),
		queue:    make(chan struct{}, slots+queueCap),
		queued:   reg.Gauge("rasql_server_queue_depth", "Requests waiting for an execution slot."),
		active:   reg.Gauge("rasql_server_active_requests", "Requests holding an execution slot."),
		rejected: reg.Counter("rasql_server_rejected_total", "Requests rejected by admission control (queue full)."),
	}
}

// acquire claims an execution slot, waiting in the bounded queue when all
// slots are busy. It returns a release func on success; errQueueFull when
// the queue is at capacity, and errQueueTimeout when ctx expires while
// waiting. The caller must invoke release exactly once.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	// Claim a queue ticket first: its capacity (slots + queueCap) bounds the
	// total number of requests either running or waiting.
	select {
	case a.queue <- struct{}{}:
	default:
		a.rejected.Inc()
		return nil, errQueueFull
	}
	a.queued.Set(queueDepth(len(a.queue), len(a.slots)))
	select {
	case a.slots <- struct{}{}:
		a.queued.Set(queueDepth(len(a.queue), len(a.slots)))
		a.active.Set(int64(len(a.slots)))
		return func() {
			<-a.slots
			<-a.queue
			a.active.Set(int64(len(a.slots)))
			a.queued.Set(queueDepth(len(a.queue), len(a.slots)))
		}, nil
	case <-ctx.Done():
		<-a.queue
		a.queued.Set(queueDepth(len(a.queue), len(a.slots)))
		return nil, errQueueTimeout
	}
}

// queueDepth clamps the waiting-request estimate at zero: the two channel
// length reads are not atomic together, so a release racing an acquire can
// transiently observe more slot holders than queue tickets.
func queueDepth(queueLen, slotsLen int) int64 {
	d := queueLen - slotsLen
	if d < 0 {
		d = 0
	}
	return int64(d)
}
