package server

import (
	"strings"

	"github.com/rasql/rasql-go/internal/sql/token"
)

// NormalizeSQL canonicalizes a script for plan-cache keying: it re-renders
// the token stream with one space between tokens, keywords upper-cased (the
// lexer already does this), identifiers lower-cased (the catalog resolves
// names case-insensitively, so `Edge` and `edge` compile to the same plan),
// and comments/whitespace dropped. String literals are preserved verbatim —
// 'Alice' and 'alice' are different constants and must not collide — and
// number literals keep their spelling, so 1 and 1.0 stay distinct keys.
//
// Two scripts with equal normal forms compile to identical plans against the
// same catalog version; the converse does not hold (the cache just misses).
func NormalizeSQL(src string) (string, error) {
	toks, err := token.Lex(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Grow(len(src))
	first := true
	for _, t := range toks {
		if t.Kind == token.EOF {
			break
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		switch t.Kind {
		case token.Ident:
			b.WriteString(strings.ToLower(t.Text))
		case token.String:
			// Re-quote, restoring the '' escape the lexer decoded, so a
			// literal can never masquerade as surrounding syntax.
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.Text, "'", "''"))
			b.WriteByte('\'')
		default:
			b.WriteString(t.Text)
		}
	}
	return b.String(), nil
}
