package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/obs"
)

func testEngine(t *testing.T) *rasql.Engine {
	t.Helper()
	eng := rasql.New(rasql.Config{})
	schema := rasql.NewSchema(rasql.Col("Src", rasql.KindInt), rasql.Col("Dst", rasql.KindInt))
	e := rasql.NewRelation("edge", schema)
	for _, p := range [][2]int64{{1, 2}, {2, 3}, {3, 1}, {3, 4}} {
		e.Append(rasql.Row{rasql.Int(p[0]), rasql.Int(p[1])})
	}
	eng.MustRegister(e)
	return eng
}

// TestNormalizeSQL pins down the cache-key normal form: whitespace,
// comments and keyword/identifier case fold away, while literals — the
// values that change results — never collide.
func TestNormalizeSQL(t *testing.T) {
	same := []struct {
		name string
		a, b string
	}{
		{"whitespace", "SELECT count(*) FROM edge", "SELECT   count(*)\n\tFROM  edge"},
		{"keyword-case", "SELECT count(*) FROM edge", "select count(*) from edge"},
		{"ident-case", "SELECT Src FROM edge", "select SRC from EDGE"},
		{"line-comment", "SELECT count(*) FROM edge", "SELECT count(*) -- rows\nFROM edge"},
		{"block-comment", "SELECT count(*) FROM edge", "/* head */ SELECT count(*) FROM /* mid */ edge"},
		{"string-escape", "SELECT 'it''s' FROM edge", "SELECT  'it''s'  FROM edge"},
	}
	for _, c := range same {
		t.Run("same/"+c.name, func(t *testing.T) {
			na, err := NormalizeSQL(c.a)
			if err != nil {
				t.Fatalf("NormalizeSQL(%q): %v", c.a, err)
			}
			nb, err := NormalizeSQL(c.b)
			if err != nil {
				t.Fatalf("NormalizeSQL(%q): %v", c.b, err)
			}
			if na != nb {
				t.Errorf("variants normalize differently:\n a: %q\n b: %q", na, nb)
			}
		})
	}

	distinct := []struct {
		name string
		a, b string
	}{
		{"int-literal", "SELECT Src FROM edge WHERE Src = 1", "SELECT Src FROM edge WHERE Src = 2"},
		{"string-literal", "SELECT 'a' FROM edge", "SELECT 'b' FROM edge"},
		{"string-case", "SELECT 'A' FROM edge", "SELECT 'a' FROM edge"},
		{"float-form", "SELECT Src FROM edge WHERE Src < 1.5", "SELECT Src FROM edge WHERE Src < 15"},
		{"string-vs-ident", "SELECT 'src' FROM edge", "SELECT Src FROM edge"},
	}
	for _, c := range distinct {
		t.Run("distinct/"+c.name, func(t *testing.T) {
			na, err := NormalizeSQL(c.a)
			if err != nil {
				t.Fatalf("NormalizeSQL(%q): %v", c.a, err)
			}
			nb, err := NormalizeSQL(c.b)
			if err != nil {
				t.Fatalf("NormalizeSQL(%q): %v", c.b, err)
			}
			if na == nb {
				t.Errorf("distinct statements collide on %q", na)
			}
		})
	}

	if _, err := NormalizeSQL("SELECT ? FROM"); err == nil {
		t.Error("malformed input: want lex error, got nil")
	}
}

// TestPlanCacheHitMiss exercises the LRU mechanics and the counter
// invariant hits + misses == lookups.
func TestPlanCacheHitMiss(t *testing.T) {
	eng := testEngine(t)
	reg := obs.NewRegistry()
	pc := NewPlanCache(2, reg)
	v := eng.CatalogVersion()

	norm := func(sql string) string {
		t.Helper()
		n, err := NormalizeSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	prep := func(sql string) *rasql.Prepared {
		t.Helper()
		p, err := eng.Prepare(sql)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	q1, q2, q3 := "SELECT count(*) FROM edge", "SELECT Src FROM edge", "SELECT Dst FROM edge"
	if pc.Get(norm(q1), v) != nil {
		t.Fatal("empty cache returned a plan")
	}
	pc.Put(norm(q1), prep(q1))
	if pc.Get(norm(q1), v) == nil {
		t.Fatal("cached plan not returned")
	}
	if pc.Get(norm("select COUNT(*) from EDGE -- same"), v) == nil {
		t.Error("normalized variant missed the cache")
	}

	// Capacity 2: inserting q2 then q3 evicts the LRU entry.
	pc.Put(norm(q2), prep(q2))
	pc.Get(norm(q1), v) // touch q1 so q2 is LRU
	pc.Put(norm(q3), prep(q3))
	if pc.Len() != 2 {
		t.Errorf("cache len = %d, want 2", pc.Len())
	}
	if pc.Get(norm(q2), v) != nil {
		t.Error("LRU entry survived eviction")
	}
	if pc.Get(norm(q1), v) == nil || pc.Get(norm(q3), v) == nil {
		t.Error("recently used entries were evicted")
	}

	hits := reg.LookupCounter("rasql_plan_cache_hits_total").Value()
	misses := reg.LookupCounter("rasql_plan_cache_misses_total").Value()
	const lookups = 7
	if hits+misses != lookups {
		t.Errorf("hits (%d) + misses (%d) != lookups (%d)", hits, misses, lookups)
	}
	if evs := reg.LookupCounter("rasql_plan_cache_evictions_total").Value(); evs != 1 {
		t.Errorf("evictions = %d, want 1", evs)
	}
	if n := reg.LookupGauge("rasql_plan_cache_entries").Value(); n != 2 {
		t.Errorf("entries gauge = %d, want 2", n)
	}
}

// TestPlanCacheDDLInvalidation: a DDL commit bumps the catalog version,
// which (a) makes old entries unreachable through Get, (b) lets Invalidate
// sweep them, and (c) makes ExecPrepared refuse the stale plan.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	eng := testEngine(t)
	reg := obs.NewRegistry()
	pc := NewPlanCache(8, reg)

	sql := "SELECT count(*) FROM edge"
	n, err := NormalizeSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	v0 := eng.CatalogVersion()
	p, err := eng.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	pc.Put(n, p)
	if pc.Get(n, v0) == nil {
		t.Fatal("plan not cached")
	}

	// DDL: committing a view bumps the version.
	if _, err := eng.Exec("CREATE VIEW vx(S) AS (SELECT Src FROM edge)"); err != nil {
		t.Fatalf("DDL: %v", err)
	}
	v1 := eng.CatalogVersion()
	if v1 == v0 {
		t.Fatal("DDL did not bump the catalog version")
	}
	if pc.Get(n, v1) != nil {
		t.Error("stale plan reachable under the new catalog version")
	}
	if _, err := eng.ExecPrepared(nil, p, nil); !errors.Is(err, rasql.ErrPlanStale) {
		t.Errorf("ExecPrepared(stale plan): err = %v, want ErrPlanStale", err)
	}

	if pc.Len() != 1 {
		t.Fatalf("cache len = %d before sweep, want 1", pc.Len())
	}
	pc.Invalidate(v1)
	if pc.Len() != 0 {
		t.Errorf("cache len = %d after sweep, want 0", pc.Len())
	}
	if evs := reg.LookupCounter("rasql_plan_cache_evictions_total").Value(); evs != 1 {
		t.Errorf("sweep evictions = %d, want 1", evs)
	}

	// Recompiled against the new catalog, the statement caches and runs.
	p2, err := eng.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	pc.Put(n, p2)
	if pc.Get(n, v1) == nil {
		t.Error("recompiled plan not cached under the new version")
	}
	if _, err := eng.ExecPrepared(nil, p2, nil); err != nil {
		t.Errorf("ExecPrepared(fresh plan): %v", err)
	}
}

// TestPlanCacheConcurrentStress hammers one cache from parallel workers
// doing lookup-compile-put-execute while a DDL goroutine keeps bumping the
// catalog version, then asserts the counter invariant: every lookup is
// counted exactly once, as a hit or as a miss.
func TestPlanCacheConcurrentStress(t *testing.T) {
	eng := testEngine(t)
	reg := obs.NewRegistry()
	pc := NewPlanCache(4, reg)

	stmts := []string{
		"SELECT count(*) FROM edge",
		"SELECT Src FROM edge",
		"SELECT Dst FROM edge",
		"SELECT Src, count(*) FROM edge GROUP BY Src",
		"SELECT Dst, count(*) FROM edge GROUP BY Dst",
	}
	norms := make([]string, len(stmts))
	for i, s := range stmts {
		n, err := NormalizeSQL(s)
		if err != nil {
			t.Fatal(err)
		}
		norms[i] = n
	}

	const workers, iters = 8, 50
	var lookups atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, workers+1)

	wg.Add(1)
	go func() { // DDL churn: each view commit bumps the catalog version
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			ddl := fmt.Sprintf("CREATE VIEW churn%d(S) AS (SELECT Src FROM edge)", i)
			if _, err := eng.Exec(ddl); err != nil {
				errCh <- fmt.Errorf("ddl %d: %w", i, err)
				return
			}
			pc.Invalidate(eng.CatalogVersion())
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (w + i) % len(stmts)
				version := eng.CatalogVersion()
				p := pc.Get(norms[k], version)
				lookups.Add(1)
				if p == nil {
					var err error
					p, err = eng.Prepare(stmts[k])
					if err != nil {
						errCh <- fmt.Errorf("worker %d: prepare: %w", w, err)
						return
					}
					pc.Put(norms[k], p)
				}
				if _, err := eng.ExecPrepared(nil, p, nil); err != nil && !errors.Is(err, rasql.ErrPlanStale) {
					errCh <- fmt.Errorf("worker %d: exec: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	hits := reg.LookupCounter("rasql_plan_cache_hits_total").Value()
	misses := reg.LookupCounter("rasql_plan_cache_misses_total").Value()
	if hits+misses != lookups.Load() {
		t.Errorf("hits (%d) + misses (%d) != lookups (%d)", hits, misses, lookups.Load())
	}
	if misses == 0 {
		t.Error("stress run recorded no misses (DDL churn should force recompiles)")
	}
	if hits == 0 {
		t.Error("stress run recorded no hits")
	}
}
