// Package server implements rasqld's HTTP/JSON serving layer in front of a
// shared rasql.Engine: sessions with per-session execution settings,
// prepared statements backed by a compiled-plan cache keyed on normalized
// SQL text plus catalog DDL version, bounded-concurrency admission control
// with queue-depth telemetry, per-request deadlines that cancel a running
// fixpoint at an iteration boundary, and graceful drain.
//
// The package uses only net/http from the standard library. All goroutines
// follow the engine's join-accounting discipline.
//
//rasql:lifecycle
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"context"

	rasql "github.com/rasql/rasql-go"
	"github.com/rasql/rasql-go/internal/obs"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/trace"
)

// Config parameterizes a Server. Zero values get serving defaults.
type Config struct {
	// MaxConcurrent bounds queries executing at once (default GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a slot beyond MaxConcurrent
	// (default 2×MaxConcurrent); anything past it is rejected with 429.
	QueueDepth int
	// DefaultTimeout is the per-request deadline when neither the session
	// nor the request sets one (0 = no deadline).
	DefaultTimeout time.Duration
	// PlanCacheSize bounds the compiled-plan LRU (default 256 plans).
	PlanCacheSize int
	// RetryAfterSeconds is the Retry-After hint on 429/503 (default 1).
	RetryAfterSeconds int
	// DefaultSettings seeds every new session's settings.
	DefaultSettings Settings
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 256
	}
	if c.RetryAfterSeconds <= 0 {
		c.RetryAfterSeconds = 1
	}
	return c
}

// Server is the HTTP serving layer over one shared engine. Create at most
// one Server per engine: the server registers its metric families on the
// engine's obs registry, and duplicate registration panics by design.
type Server struct {
	eng      *rasql.Engine
	cfg      Config
	cache    *PlanCache
	sessions *sessionRegistry
	adm      *admission

	draining atomic.Bool
	inflight sync.WaitGroup

	requests   *obs.Counter
	errorsCtr  *obs.Counter
	timeouts   *obs.Counter
	reqLatency *obs.Histogram
}

// New wires a server in front of eng, registering the rasql_server_* and
// rasql_plan_cache_* metric families on the engine's registry so one
// /metrics exposition covers engine and serving layers together.
func New(eng *rasql.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := eng.Observability().Registry()
	return &Server{
		eng:        eng,
		cfg:        cfg,
		cache:      NewPlanCache(cfg.PlanCacheSize, reg),
		sessions:   newSessionRegistry(reg),
		adm:        newAdmission(cfg.MaxConcurrent, cfg.QueueDepth, reg),
		requests:   reg.Counter("rasql_server_requests_total", "API requests received (excluding health/metrics)."),
		errorsCtr:  reg.Counter("rasql_server_errors_total", "API requests answered with a 4xx/5xx status."),
		timeouts:   reg.Counter("rasql_server_timeouts_total", "API requests that hit their deadline."),
		reqLatency: reg.Histogram("rasql_server_request_nanos", "End-to-end API request latency in nanoseconds."),
	}
}

// Engine returns the served engine.
func (s *Server) Engine() *rasql.Engine { return s.eng }

// Cache returns the compiled-plan cache (exported for tests and the bench).
func (s *Server) Cache() *PlanCache { return s.cache }

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.track(s.serveCreateSession))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.track(s.serveDeleteSession))
	mux.HandleFunc("POST /v1/query", s.track(s.serveQuery))
	mux.HandleFunc("POST /v1/prepare", s.track(s.servePrepare))
	mux.HandleFunc("POST /v1/execute", s.track(s.serveExecute))
	mux.Handle("GET /metrics", obs.Handler(s.eng.Observability().Registry()))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ready\n"))
	})
	return mux
}

// Drain stops admitting work and waits for in-flight requests to finish (or
// ctx to expire). After Drain, /readyz reports 503 and every API request is
// refused with 503 + Retry-After; /metrics and /healthz keep serving so the
// final exposition can be scraped.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	//rasql:detach -- watcher dies as soon as the in-flight WaitGroup drains; Drain's select consumes its signal or abandons it on ctx expiry
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain aborted with requests in flight: %w", ctx.Err())
	}
}

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// track wraps an API handler with drain refusal, in-flight accounting and
// the request counter/latency/error metrics.
func (s *Server) track(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Done()
		s.requests.Inc()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		if s.draining.Load() {
			s.writeError(sw, http.StatusServiceUnavailable, errDraining)
		} else {
			start := time.Now()
			h(sw, r)
			s.reqLatency.Observe(time.Since(start).Nanoseconds())
		}
		if sw.code >= 400 {
			s.errorsCtr.Inc()
		}
		if sw.code == http.StatusRequestTimeout {
			s.timeouts.Inc()
		}
	}
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

// --- sessions -------------------------------------------------------------

type sessionRequest struct {
	Settings Settings `json:"settings"`
}

type sessionResponse struct {
	SessionID      string   `json:"session_id"`
	Settings       Settings `json:"settings"`
	CatalogVersion uint64   `json:"catalog_version"`
	Catalog        []string `json:"catalog"`
}

func (s *Server) serveCreateSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if r.ContentLength != 0 {
		if err := decodeBody(r, &req); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	set := s.cfg.DefaultSettings.merge(req.Settings)
	if err := validateSettings(set); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sess := s.sessions.create(set)
	writeJSON(w, http.StatusCreated, sessionResponse{
		SessionID:      sess.id,
		Settings:       set,
		CatalogVersion: s.eng.CatalogVersion(),
		Catalog:        s.eng.Catalog().Names(),
	})
}

func (s *Server) serveDeleteSession(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.remove(r.PathValue("id")) {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"closed": true})
}

// validateSettings rejects settings the engine would only fault on later.
func validateSettings(set Settings) error {
	if set.Mode != "" {
		if _, _, err := rasql.ParseEvalMode(set.Mode); err != nil {
			return err
		}
	}
	return set.validate()
}

// resolveSettings merges session settings with per-request overrides.
func (s *Server) resolveSettings(sessionID string, overrides Settings) (Settings, error) {
	base := s.cfg.DefaultSettings
	if sessionID != "" {
		sess, ok := s.sessions.get(sessionID)
		if !ok {
			return Settings{}, fmt.Errorf("unknown session %q", sessionID)
		}
		base = sess.Settings()
	}
	set := base.merge(overrides)
	return set, validateSettings(set)
}

// requestContext applies the effective deadline: positive TimeoutMillis sets
// it, negative disables any deadline, zero inherits the server default.
func (s *Server) requestContext(parent context.Context, set Settings) (context.Context, context.CancelFunc) {
	timeout := s.cfg.DefaultTimeout
	switch {
	case set.TimeoutMillis > 0:
		timeout = time.Duration(set.TimeoutMillis) * time.Millisecond
	case set.TimeoutMillis < 0:
		timeout = 0
	}
	if timeout <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, timeout)
}

// --- query / prepare / execute -------------------------------------------

type queryRequest struct {
	SessionID string   `json:"session_id,omitempty"`
	SQL       string   `json:"sql"`
	Settings  Settings `json:"settings"`
}

type queryResponse struct {
	Columns  []ColumnJSON    `json:"columns"`
	Rows     [][]any         `json:"rows"`
	RowCount int             `json:"row_count"`
	Cached   bool            `json:"cached"`
	Stats    *obs.QueryStats `json:"stats,omitempty"`
}

type prepareRequest struct {
	SessionID string `json:"session_id"`
	SQL       string `json:"sql"`
}

type prepareResponse struct {
	StatementID    string `json:"statement_id"`
	NormalizedSQL  string `json:"normalized_sql"`
	CatalogVersion uint64 `json:"catalog_version"`
	Statements     int    `json:"statements"`
	Cached         bool   `json:"cached"`
}

type executeRequest struct {
	SessionID   string   `json:"session_id"`
	StatementID string   `json:"statement_id"`
	Settings    Settings `json:"settings"`
}

func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.SQL == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("missing sql"))
		return
	}
	set, err := s.resolveSettings(req.SessionID, req.Settings)
	if err != nil {
		s.writeError(w, statusForResolve(req.SessionID, err), err)
		return
	}
	ctx, cancel := s.requestContext(r.Context(), set)
	defer cancel()
	release, aerr := s.adm.acquire(ctx)
	if aerr != nil {
		s.writeError(w, admissionStatus(aerr), aerr)
		return
	}
	defer release()
	resp, status, err := s.runSQL(ctx, req.SQL, set)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) servePrepare(w http.ResponseWriter, r *http.Request) {
	var req prepareRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.sessions.get(req.SessionID)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", req.SessionID))
		return
	}
	if req.SQL == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("missing sql"))
		return
	}
	norm, err := NormalizeSQL(req.SQL)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	// Compile (or reuse) eagerly so the client learns about bad SQL at
	// prepare time, not first execute.
	prep, hit := s.cache.Get(norm, s.eng.CatalogVersion()), true
	if prep == nil {
		hit = false
		prep, err = s.eng.Prepare(req.SQL)
		if err != nil {
			s.writeError(w, prepareStatus(err), err)
			return
		}
		s.cache.Put(norm, prep)
	}
	st := sess.addStmt(req.SQL, norm)
	writeJSON(w, http.StatusOK, prepareResponse{
		StatementID:    st.id,
		NormalizedSQL:  norm,
		CatalogVersion: prep.CatalogVersion(),
		Statements:     prep.Statements(),
		Cached:         hit,
	})
}

func (s *Server) serveExecute(w http.ResponseWriter, r *http.Request) {
	var req executeRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, ok := s.sessions.get(req.SessionID)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown session %q", req.SessionID))
		return
	}
	st, ok := sess.stmt(req.StatementID)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown statement %q", req.StatementID))
		return
	}
	set, err := s.resolveSettings(req.SessionID, req.Settings)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r.Context(), set)
	defer cancel()
	release, aerr := s.adm.acquire(ctx)
	if aerr != nil {
		s.writeError(w, admissionStatus(aerr), aerr)
		return
	}
	defer release()
	resp, status, err := s.execNormalized(ctx, st.src, st.norm, set)
	if err != nil {
		s.writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// runSQL executes arbitrary SQL: cacheable scripts go through the plan
// cache; scripts containing DDL (CREATE VIEW) execute directly and
// invalidate the cache once the DDL commits.
func (s *Server) runSQL(ctx context.Context, src string, set Settings) (*queryResponse, int, error) {
	norm, err := NormalizeSQL(src)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return s.execNormalized(ctx, src, norm, set)
}

// execNormalized is the shared execution path for /v1/query and
// /v1/execute: plan-cache lookup keyed on (normalized text, catalog
// version), compile on miss, execute under ctx, retry once if a concurrent
// DDL commit made the compiled plan stale between lookup and execution.
func (s *Server) execNormalized(ctx context.Context, src, norm string, set Settings) (*queryResponse, int, error) {
	stats := &obs.QueryStats{}
	opts := &rasql.ExecOptions{Mode: set.Mode, MaxIterations: set.MaxIterations, Stats: stats}
	switch set.Trace {
	case "iterations":
		opts.Tracer = trace.NewIterationsOnly()
	case "full":
		opts.Tracer = trace.New()
	}

	var rel *relation.Relation
	var err error
	cached := false
	for attempt := 0; ; attempt++ {
		version := s.eng.CatalogVersion()
		prep := s.cache.Get(norm, version)
		hit := prep != nil
		if prep == nil {
			var perr error
			prep, perr = s.eng.Prepare(src)
			if errors.Is(perr, rasql.ErrNotPreparable) {
				// DDL script: execute uncached; a successful commit bumps the
				// catalog version, so sweep the cache to the new version.
				rel, err = s.eng.ExecOpt(ctx, src, opts)
				if err == nil {
					if v := s.eng.CatalogVersion(); v != version {
						s.cache.Invalidate(v)
					}
				}
				break
			}
			if perr != nil {
				return nil, prepareStatus(perr), perr
			}
			s.cache.Put(norm, prep)
		}
		rel, err = s.eng.ExecPrepared(ctx, prep, opts)
		if errors.Is(err, rasql.ErrPlanStale) && attempt < 2 {
			continue // DDL committed between lookup and execute; recompile
		}
		cached = hit
		break
	}
	if err != nil {
		return nil, execStatus(err), err
	}
	resp := &queryResponse{Cached: cached, Stats: stats}
	if rel != nil {
		resp.Columns = columnsJSON(rel.Schema)
		resp.Rows = encodeRows(rel.Rows)
		resp.RowCount = len(rel.Rows)
	} else {
		resp.Columns = []ColumnJSON{}
		resp.Rows = [][]any{}
	}
	return resp, http.StatusOK, nil
}

// admissionStatus maps admission errors to HTTP statuses: a full queue is
// 429 (back off and retry), expiry-while-queued and drain are 503.
func admissionStatus(err error) int {
	if errors.Is(err, errQueueFull) {
		return http.StatusTooManyRequests
	}
	return http.StatusServiceUnavailable
}

// prepareStatus classifies compile-stage errors: everything the parser or
// analyzer rejects is the client's SQL, 400.
func prepareStatus(error) int { return http.StatusBadRequest }

// execStatus classifies execution errors: an iteration-boundary cancellation
// (deadline or client disconnect) is 408; anything else is the engine's, 500.
func execStatus(err error) int {
	var cancelled *rasql.ErrFixpointCancelled
	if errors.As(err, &cancelled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled) {
		return http.StatusRequestTimeout
	}
	return http.StatusInternalServerError
}

// statusForResolve distinguishes a missing session (404) from bad settings
// (400).
func statusForResolve(sessionID string, err error) int {
	if sessionID != "" && err != nil && err.Error() == fmt.Sprintf("unknown session %q", sessionID) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}
