package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AtomicMix detects mixed atomic/plain access, the race class where half
// the program synchronizes and the other half doesn't:
//
//   - a variable or field whose address is passed to a sync/atomic
//     function anywhere in the program must never be read or written
//     plainly elsewhere — the plain access races with every atomic one,
//     and the compiler may tear, cache or reorder it;
//   - values of the sync/atomic struct types (atomic.Int64, atomic.Uint64,
//     atomic.Bool, …) must only be used through their methods or by
//     address: copying one (assignment, argument, return, composite
//     literal) forks its internal state and silently decouples the copy.
//
// The first class is cross-package: atomic sites and plain access sites
// are collected per package during Prepare and joined program-wide (or
// against dependency facts under go vet). The second is purely local
// syntax and is checked per package.
var AtomicMix = &Analyzer{
	Name:       "atomicmix",
	Code:       "RL007",
	Doc:        "state touched via sync/atomic is never accessed plainly elsewhere, and atomic values are never copied",
	Run:        runAtomicMixPackage,
	Prepare:    prepareAtomicMix,
	RunProgram: runAtomicMixProgram,
}

// atomicCapable reports whether a plain variable of type t could be the
// target of sync/atomic free functions (the only types they accept).
func atomicCapable(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer:
			return true
		}
	}
	return false
}

// isAtomicFreeFunc reports whether the call invokes a sync/atomic
// package-level function (AddInt64, StoreUint32, …).
func isAtomicFreeFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isAtomicStructType reports whether t is one of sync/atomic's value types
// (atomic.Int64, atomic.Bool, atomic.Pointer[T], …).
func isAtomicStructType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// atomicTargetKey names the variable or field whose address feeds an
// atomic call, addressable program-wide: fields as "pkgpath.Struct.Field",
// package vars as "pkgpath.var", locals by declaration position.
func atomicTargetKey(pass *Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return fieldAccessKey(pass, e)
	case *ast.Ident:
		obj, ok := pass.Info.Uses[e].(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return ""
		}
		if isPackageLevel(obj) {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return obj.Pkg().Path() + "." + obj.Name() + "@" + pass.Fset.Position(obj.Pos()).String()
	}
	return ""
}

// displayKey renders an access key for diagnostics (strips the local
// declaration-position suffix).
func displayKey(key string) string {
	if i := strings.Index(key, "@"); i >= 0 {
		key = key[:i]
	}
	return key
}

func prepareAtomicMix(pass *Pass) {
	// First pass: record every &x handed to a sync/atomic free function as
	// an atomic site, and remember those operand nodes — they are the one
	// place a plain spelling of the variable is legitimate.
	exempt := map[ast.Expr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFreeFunc(calleeFunc(pass, call)) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				target := ast.Unparen(u.X)
				key := atomicTargetKey(pass, target)
				if key == "" {
					continue
				}
				exempt[target] = true
				pass.Index.AddAtomicSite(key, Site{
					Pos: target.Pos(), PosStr: pass.Fset.Position(target.Pos()).String(), Local: true,
				})
			}
			return true
		})
	}

	// Second pass: record every other spelling of an atomic-capable
	// variable or field as a plain access site.
	for _, f := range pass.Files {
		walkWithStack(f, func(stack []ast.Node, n ast.Node) {
			expr, ok := n.(ast.Expr)
			if !ok || exempt[expr] {
				return
			}
			var key string
			switch e := n.(type) {
			case *ast.SelectorExpr:
				key = fieldAccessKey(pass, e)
			case *ast.Ident:
				obj, ok := pass.Info.Uses[e].(*types.Var)
				if !ok || obj.IsField() {
					return
				}
				// The Sel of a selector is also an Ident use of the field
				// object; the SelectorExpr case already covers it.
				if len(stack) >= 2 {
					if sel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && sel.Sel == e {
						return
					}
				}
				key = atomicTargetKey(pass, e)
			default:
				return
			}
			if key == "" || !atomicCapable(pass.typeOf(expr)) {
				return
			}
			pass.Index.AddPlainSite(key, Site{
				Pos: expr.Pos(), PosStr: pass.Fset.Position(expr.Pos()).String(), Local: true,
			})
		})
	}
}

// runAtomicMixPackage flags copies of sync/atomic value types.
func runAtomicMixPackage(pass *Pass) {
	for _, f := range pass.Files {
		walkWithStack(f, func(stack []ast.Node, n ast.Node) {
			expr, ok := n.(ast.Expr)
			if !ok {
				return
			}
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if s, ok := pass.Info.Selections[e]; !ok || s.Kind() != types.FieldVal {
					return
				}
			case *ast.Ident:
				obj, ok := pass.Info.Uses[e].(*types.Var)
				if !ok || obj.IsField() {
					return
				}
			default:
				return
			}
			if !isAtomicStructType(pass.typeOf(expr)) {
				return
			}
			if len(stack) < 2 {
				return
			}
			switch p := stack[len(stack)-2].(type) {
			case *ast.SelectorExpr:
				if p.X == expr || p.Sel == expr {
					return // method call or the selector's own Sel ident
				}
			case *ast.UnaryExpr:
				if p.Op == token.AND && p.X == expr {
					return // taking the address is how atomics are shared
				}
			case *ast.ParenExpr:
				return // conservatively skip parenthesized forms
			}
			name := types.ExprString(expr)
			pass.Reportf(expr.Pos(), "%s copies a sync/atomic value; use its methods or pass &%s", name, name)
		})
	}
}

// runAtomicMixProgram joins the program-wide atomic and plain access maps.
func runAtomicMixProgram(pass *Pass) {
	atomics := pass.Index.AtomicSites()
	plains := pass.Index.PlainSites()
	keys := make([]string, 0, len(atomics))
	for k := range atomics {
		if len(plains[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, key := range keys {
		anchor := atomics[key][0]
		for _, site := range plains[key] {
			if site.Local && site.Pos.IsValid() {
				pass.Reportf(site.Pos, "plain access of %s, which is accessed via sync/atomic at %s; every access must go through sync/atomic", displayKey(key), anchor.PosStr)
			}
		}
		// The converse direction: a dependency accessed the variable
		// plainly before this package introduced the atomic use. Anchor at
		// the local atomic site, naming the remote plain access.
		if !hasLocalSite(plains[key]) {
			for _, site := range atomics[key] {
				if site.Local && site.Pos.IsValid() {
					pass.Reportf(site.Pos, "%s is accessed via sync/atomic here but accessed plainly at %s; every access must go through sync/atomic", displayKey(key), plains[key][0].PosStr)
					break
				}
			}
		}
	}
}

func hasLocalSite(sites []Site) bool {
	for _, s := range sites {
		if s.Local {
			return true
		}
	}
	return false
}
