// Package lockorder seeds acquired-while-held cycles: a direct two-lock
// inversion, an inter-procedural inversion through helpers, and a
// same-class re-acquisition (self-cycle).
package lockorder

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

func abOrder(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock() // want `lock ordering cycle: .*b\.mu is acquired while holding .*a\.mu`
	y.mu.Unlock()
	x.mu.Unlock()
}

func baOrder(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

type c struct{ mu sync.Mutex }
type d struct{ mu sync.Mutex }

func lockD(y *d) {
	y.mu.Lock()
	y.mu.Unlock()
}

func lockC(x *c) {
	x.mu.Lock()
	x.mu.Unlock()
}

func cThenD(x *c, y *d) {
	x.mu.Lock()
	lockD(y) // want `lock ordering cycle: .*d\.mu is acquired while holding .*c\.mu at .* \(via call to lockD\)`
	x.mu.Unlock()
}

func dThenC(x *c, y *d) {
	y.mu.Lock()
	lockC(x)
	y.mu.Unlock()
}

type node struct{ mu sync.Mutex }

// link acquires two instances of the same lock class nested; two
// goroutines linking opposite pairs deadlock.
func link(n1, n2 *node) {
	n1.mu.Lock()
	n2.mu.Lock() // want `lock ordering cycle: .*node\.mu is acquired at .* while already held`
	n2.mu.Unlock()
	n1.mu.Unlock()
}

type p struct{ mu sync.Mutex }
type q struct{ mu sync.Mutex }

// The p/q inversion below is suppressed: the report anchors at the first
// edge of the cycle, which carries the allow.
func pqOrder(x *p, y *q) {
	x.mu.Lock()
	y.mu.Lock() //rasql:allow lockorder -- fixture: documented p-before-q order, inversion is in dead test code
	y.mu.Unlock()
	x.mu.Unlock()
}

func qpOrder(x *p, y *q) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

func malformedAllow(x *p) {
	x.mu.Lock() //rasql:allow lockorder // want `needs analyzer names`
	x.mu.Unlock()
}
