// Package pooldiscipline exercises the sync.Pool pairing invariant: every
// Get must reach a Put on all paths, and the value is off-limits after Put.
package pooldiscipline

import "sync"

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64)
		return &b
	},
}

// getBuf and putBuf are the annotated accessor pair the engine uses.
//
//rasql:pool-get
func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

//rasql:pool-put
func putBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}

func use(b *[]byte)       {}
func cond() bool          { return false }
func encode(b *[]byte) int { return len(*b) }

// BalancedOK is the canonical shape: Get, use, Put.
func BalancedOK() {
	b := getBuf()
	use(b)
	putBuf(b)
}

// DeferOK covers every path with a deferred Put, so later returns are fine.
func DeferOK() int {
	b := getBuf()
	defer putBuf(b)
	if cond() {
		return 0
	}
	return encode(b)
}

// BranchesOK puts on both arms of the if/else.
func BranchesOK() {
	b := getBuf()
	if cond() {
		putBuf(b)
	} else {
		putBuf(b)
	}
}

// DirectOK pairs the raw sync.Pool methods without the accessors.
func DirectOK() {
	b := bufPool.Get().(*[]byte)
	use(b)
	bufPool.Put(b)
}

// MissingPut leaks the buffer: the pool degrades to plain allocation.
func MissingPut() {
	b := getBuf() // want `pooled value b has no Put guaranteed in this block`
	use(b)
}

// EarlyReturn leaks on the error path.
func EarlyReturn() int {
	b := getBuf()
	if cond() {
		return 0 // want `return leaks pooled value b`
	}
	n := encode(b)
	putBuf(b)
	return n
}

// UseAfterPut touches a buffer the pool may already have handed out again.
func UseAfterPut() int {
	b := getBuf()
	putBuf(b)
	return encode(b) // want `pooled value b used after Put`
}

// ConditionalPut only recycles on one arm, so the other leaks.
func ConditionalPut() {
	b := getBuf() // want `pooled value b has no Put guaranteed in this block`
	if cond() {
		putBuf(b)
	}
}

// Discarded drops the pooled value on the floor immediately.
func Discarded() {
	getBuf() // want `pooled Get result is discarded`
}

// TransferOK declares an ownership hand-off with a justified allow.
func TransferOK() *[]byte {
	//rasql:allow pooldiscipline -- fixture: ownership transfers to the caller, which recycles
	b := getBuf()
	return b
}
