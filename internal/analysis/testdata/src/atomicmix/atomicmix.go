// Package atomicmix seeds mixed atomic/plain access: fields, package
// variables and locals touched through sync/atomic in one place and
// plainly in another, plus copies of sync/atomic value types.
package atomicmix

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
}

func (s *stats) hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) snapshot() int64 {
	return s.hits // want `plain access of .*stats\.hits, which is accessed via sync/atomic`
}

// misses is only ever accessed plainly: no diagnostic.
func (s *stats) miss() { s.misses++ }

var pkgCounter uint64

func bumpPkg() { atomic.AddUint64(&pkgCounter, 1) }

func resetPkg() {
	pkgCounter = 0 // want `plain access of .*pkgCounter, which is accessed via sync/atomic`
}

func localMix() int64 {
	var n int64
	atomic.StoreInt64(&n, 5)
	return n // want `plain access of .*\.n, which is accessed via sync/atomic`
}

var sink atomic.Uint64

func addSink() { sink.Add(1) }

func takeSinkAddr() *atomic.Uint64 { return &sink }

func copySink() uint64 {
	x := sink // want `sink copies a sync/atomic value; use its methods or pass &sink`
	return x.Load()
}

type gauge struct {
	level int64
}

func (g *gauge) set(v int64) { atomic.StoreInt64(&g.level, v) }

func (g *gauge) allowedRead() int64 {
	return g.level //rasql:allow atomicmix -- read during single-threaded shutdown, after all writers joined
}

func (g *gauge) malformedRead() int64 {
	return g.level //rasql:allow atomicmix // want `plain access of .*gauge\.level` // want `needs analyzer names`
}
