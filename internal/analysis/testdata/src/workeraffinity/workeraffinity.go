// Package workeraffinity exercises the worker-affinity invariant: an
// annotated function may only be called from a Task.Run body or another
// annotated function — never a fresh goroutine or an unannotated caller.
package workeraffinity

// Task mirrors the cluster's unit of worker-scheduled work: the analyzer
// treats the Run field's func literal as the worker context.
type Task struct {
	Part int
	Run  func(worker int)
}

type Shuffle struct {
	shards [][]int
}

// Add appends to the producer's shard without a lock; the caller must be
// the goroutine that owns the shard.
//
//rasql:affinity=worker
func (s *Shuffle) Add(rows []int, producer int) {
	s.shards[producer] = append(s.shards[producer], rows...)
}

// TaskBodyOK calls Add from a Task.Run body — the worker context.
func TaskBodyOK(s *Shuffle, n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		p := i
		tasks[i] = Task{Part: p, Run: func(w int) {
			s.Add([]int{p}, w)
		}}
	}
	return tasks
}

// ChainOK is itself worker-affine, so it may call Add directly.
//
//rasql:affinity=worker
func ChainOK(s *Shuffle, w int) {
	s.Add(nil, w)
}

// IIFEOK runs the literal immediately on the caller's goroutine, inside an
// annotated function — still the worker.
//
//rasql:affinity=worker
func IIFEOK(s *Shuffle, w int) {
	func() {
		s.Add(nil, w)
	}()
}

// FreshGoroutine breaks the one-writer-per-shard invariant.
func FreshGoroutine(s *Shuffle) {
	go func() {
		s.Add(nil, 0) // want `freshly spawned goroutine`
	}()
}

// PlainCaller has no affinity annotation and no Task.Run context.
func PlainCaller(s *Shuffle) {
	s.Add(nil, 0) // want `not from PlainCaller`
}

// EscapingLiteral stores the closure where any goroutine could invoke it.
func EscapingLiteral(s *Shuffle) func() {
	f := func() {
		s.Add(nil, 0) // want `stored or passed as a value`
	}
	return f
}

// NotATask installs the literal in a Run field of some other type.
type NotATask struct {
	Run func(worker int)
}

func WrongType(s *Shuffle) NotATask {
	return NotATask{Run: func(w int) {
		s.Add(nil, w) // want `not a Task\.Run body`
	}}
}

// DriverAllowed documents the sanctioned driver-side seed write.
func DriverAllowed(s *Shuffle) {
	//rasql:allow workeraffinity -- fixture: driver-side write before any task starts
	s.Add(nil, 0)
}
