// Package golifecycle seeds join-accounting violations of the engine's
// goroutine discipline (plus the clean shapes) and pins the diagnostics
// with // want comments. The package opts into lifecycle checking with the
// //rasql:lifecycle comment below — fixtures live outside the engine's
// import-path prefixes.
//
//rasql:lifecycle
package golifecycle

import "sync"

func work() {}

// wellFormed is the canonical clean shape: Add before the spawn, Done
// deferred as the goroutine's first action.
func wellFormed(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// deferredIIFE is also clean: Done inside a directly-deferred closure runs
// on every exit path like a direct defer.
func deferredIIFE() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer func() {
			wg.Done()
		}()
		work()
	}()
	wg.Wait()
}

// unaccounted spawns with no join evidence and no detach justification.
func unaccounted() {
	go work() // want `goroutine is not join-accounted`
}

// detached carries the written rationale the analyzer demands.
func detached() {
	//rasql:detach -- fixture: fire-and-forget, lifetime bounded by the test process
	go work()
}

// malformedDetach lacks the justification, so the detach does not register
// and the spawn is still unaccounted.
func malformedDetach() {
	//rasql:detach // want `needs a`
	go work() // want `not join-accounted`
}

// addInside puts the Add on the wrong side of the spawn: Wait can run
// before the goroutine's Add, a lost-signal race.
func addInside() {
	var wg sync.WaitGroup
	go func() { // want `never Adds to before the spawn`
		wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine races with the spawner's Wait`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// addAfter spells the same race differently: the Add textually follows the
// go statement.
func addAfter() {
	var wg sync.WaitGroup
	go func() { // want `Add for the goroutine's Done happens after the spawn`
		defer wg.Done()
		work()
	}()
	wg.Add(1)
	wg.Wait()
}

// plainDone skips the Done when the goroutine panics, leaking the
// spawner's Wait.
func plainDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		work()
		wg.Done() // want `Done is not deferred: a panic in the goroutine skips it`
	}()
	wg.Wait()
}

// neverAdds joins a WaitGroup the spawner never Adds to.
func neverAdds() {
	var wg sync.WaitGroup
	go func() { // want `never Adds to before the spawn`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// worker carries its own deferred-Done summary on the call graph.
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// spawnsWorker is the clean one-hop shape: `go worker(&wg)` is accounted
// through the callee's WaitGroup summary.
func spawnsWorker(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go worker(&wg)
	}
	wg.Wait()
}

// workerPlain's Done is not deferred, and the summary says so.
func workerPlain(wg *sync.WaitGroup) {
	work()
	wg.Done()
}

func spawnsWorkerPlain() {
	var wg sync.WaitGroup
	wg.Add(1)
	go workerPlain(&wg) // want `Done is not deferred`
	wg.Wait()
}

// wrappedWorker is the clean two-hop shape: the goroutine body calls the
// worker, whose summary contributes the deferred Done.
func wrappedWorker() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		worker(&wg)
	}()
	wg.Wait()
}
