// Package allow exercises the suppression comment itself: an allow without
// analyzer names or without a `-- justification` is a diagnostic, so silent
// blanket waivers cannot accumulate.
package allow

func justificationMissing() {
	//rasql:allow simclock // want `needs analyzer names and a`
	_ = 0
}

func namesMissing() {
	//rasql:allow -- because I said so // want `needs analyzer names and a`
	_ = 0
}

func wellFormed() {
	//rasql:allow simclock -- fixture: carries its justification
	_ = 0
}
