// Package simclock exercises the deterministic-clock invariant: wall-clock
// reads and global math/rand calls are banned; injected generators and
// justified allows are not.
//
//rasql:deterministic
package simclock

import (
	"math/rand"
	"time"
)

func wallClock() int64 {
	t0 := time.Now() // want `time\.Now reads the host clock`
	busy()
	return int64(time.Since(t0)) // want `time\.Since reads the host clock`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the host clock`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn uses the shared process-wide source`
}

// seeded is the sanctioned pattern: construct an explicit generator and
// call methods on it.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// durationMath uses time only for deterministic arithmetic — no reads.
func durationMath(nanos int64) time.Duration {
	return time.Duration(nanos) * time.Nanosecond
}

// justified shows a suppression carrying its mandatory justification.
func justified() time.Time {
	//rasql:allow simclock -- fixture: stands in for the audited metrics boundary
	return time.Now()
}

func busy() {}
