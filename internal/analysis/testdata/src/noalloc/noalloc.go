// Package noalloc seeds known violations of the //rasql:noalloc contract
// (plus the idiomatic clean shapes) and pins the exact diagnostics with
// // want comments. Every classifier rule has a row here: direct builtins,
// transitive callee allocations, interface boxing in its three positions,
// conversions, closure captures, map writes, variadic argument slices,
// dynamic calls, and the allow/annotation escape hatches.
package noalloc

import "fmt"

// helperAllocates is an unannotated helper whose allocation propagates to
// every annotated caller through the call graph.
func helperAllocates() []int {
	return make([]int, 8)
}

// helperAllowed carries a justified allow on its site, so the allocation is
// suppressed at record time and must NOT propagate to annotated callers.
func helperAllowed() []int {
	//rasql:allow noalloc -- fixture: amortized allocation, justified at the site
	return make([]int, 8)
}

// mid adds a hop so the transitive diagnostic carries a call chain.
func mid() []int {
	return helperAllocates()
}

//rasql:noalloc
func directMake() []int {
	return make([]int, 4) // want `annotated //rasql:noalloc but make allocates`
}

//rasql:noalloc
func directNew() *int {
	return new(int) // want `new allocates`
}

//rasql:noalloc
func transitive() []int {
	return helperAllocates() // want `calls noalloc.helperAllocates, which reaches an allocation: make allocates`
}

//rasql:noalloc
func deepTransitive() []int {
	return mid() // want `calls noalloc.mid, which reaches an allocation: make allocates .*via noalloc.mid -> noalloc.helperAllocates`
}

//rasql:noalloc
func suppressedTransitive() []int {
	return helperAllowed() // clean: the callee's site carries a justified allow
}

// annotatedLeaf is its own modular proof obligation; callers stop here.
//
//rasql:noalloc
func annotatedLeaf(buf []byte, b byte) []byte {
	return append(buf, b) // clean: destination derives from a parameter
}

//rasql:noalloc
func callsAnnotated(buf []byte) []byte {
	return annotatedLeaf(buf, 1) // clean: the callee carries its own proof
}

//rasql:noalloc
func appendFresh() []int {
	var s []int
	s = append(s, 1) // want `append to a slice not derived from a parameter or receiver`
	return s
}

//rasql:noalloc
func sliceLit() []int {
	return []int{1, 2} // want `slice literal allocates`
}

type pair struct{ a, b int }

//rasql:noalloc
func addrLit() *pair {
	return &pair{1, 2} // want `&-literal escapes to the heap`
}

//rasql:noalloc
func valueLit() pair {
	return pair{1, 2} // clean: a plain struct literal stays on the stack
}

//rasql:noalloc
func mapWrite(m map[int]int) {
	m[1] = 2 // want `map write may grow the map`
}

//rasql:noalloc
func conv(b []byte) string {
	return string(b) // want `\[\]byte-to-string conversion copies`
}

//rasql:noalloc
func convBack(s string) []byte {
	return []byte(s) // want `string-to-\[\]byte conversion copies`
}

//rasql:noalloc
func mapIndexConv(m map[string]int, b []byte) int {
	return m[string(b)] // clean: the compiler elides the map-index copy
}

//rasql:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

func sink(v any) { _ = v }

//rasql:noalloc
func argBox(x int) {
	sink(x) // want `argument boxed into interface parameter allocates`
}

//rasql:noalloc
func argNoBox(p *pair) {
	sink(p) // clean: pointers fit the interface data word
}

//rasql:noalloc
func returnBox(x int) any {
	return x // want `return boxes the value into an interface`
}

//rasql:noalloc
func assignBox(x int) {
	var v any
	v = x // want `assignment boxes the value into an interface`
	_ = v
}

func variadicSink(vs ...int) { _ = vs }

//rasql:noalloc
func variadic() {
	variadicSink(1, 2) // want `variadic call builds an implicit argument slice`
}

//rasql:noalloc
func variadicSpread(vs []int) {
	variadicSink(vs...) // clean: the slice is passed through, not built
}

//rasql:noalloc
func dynamic(f func() int) int {
	return f() // want `dynamic call through a func value`
}

type iface interface{ M() }

//rasql:noalloc
func ifaceCall(v iface) {
	v.M() // want `dynamic call through interface method M`
}

//rasql:noalloc
func coldError(err error) error {
	return fmt.Errorf("wrap: %w", err) // want `calls fmt.Errorf, not known to be allocation-free`
}

//rasql:noalloc
func capture() func() int {
	x := 0
	f := func() int { return x } // want `closure captures x by reference and allocates its environment`
	return f
}

//rasql:noalloc
func iife() int {
	x := 1
	return func() int { return x }() // clean: immediately-invoked, frame stays on the stack
}

//rasql:noalloc
func spawns() {
	go helperNop() // want `spawns a goroutine`
}

func helperNop() {}

//rasql:noalloc
func allowedSite() []int {
	//rasql:allow noalloc -- fixture: cold path, justified at the site
	return make([]int, 4)
}

//rasql:noalloc
func malformedAllow() []int {
	//rasql:allow noalloc // want `needs analyzer names and a`
	return make([]int, 4) // want `make allocates`
}
