// Package noretain exercises the buffer-retention invariant: a function
// annotated //rasql:noretain must not store its parameter-derived slices
// anywhere that outlives the call.
package noretain

var sink []byte

var table = map[string][]byte{}

// DecodeOK copies values out of buf — scalar loads and string conversions
// launder the taint, so nothing here is a retention.
//
//rasql:noretain buf
func DecodeOK(dst []int, buf []byte) []int {
	for _, b := range buf {
		dst = append(dst, int(b))
	}
	_ = string(buf)
	return dst
}

// LeakGlobal retains the raw parameter in a package-level variable.
//
//rasql:noretain buf
func LeakGlobal(buf []byte) {
	sink = buf // want `stores a noretain-parameter-derived slice into package-level variable sink`
}

// LeakSubslice retains memory through a derived local: the subslice still
// aliases the caller's buffer.
//
//rasql:noretain buf
func LeakSubslice(buf []byte) {
	head := buf[:4]
	table["head"] = head // want `stores a noretain-parameter-derived slice into a heap-reachable location`
}

// LeakReturn hands the aliasing slice back to the caller.
//
//rasql:noretain buf
func LeakReturn(buf []byte) []byte {
	return buf[1:] // want `returns a value derived from a noretain parameter`
}

// LeakClosure captures the parameter in a closure that may outlive the call.
//
//rasql:noretain buf
func LeakClosure(buf []byte) func() byte {
	return func() byte {
		return buf[0] // want `noretain parameter buf is captured by a closure`
	}
}

// LeakChannel sends the aliasing slice to another goroutine.
//
//rasql:noretain buf
func LeakChannel(buf []byte, ch chan []byte) {
	ch <- buf // want `sends a noretain-parameter-derived value on a channel`
}

// LeakCallee passes the buffer to a function with no noretain contract.
//
//rasql:noretain buf
func LeakCallee(buf []byte) {
	stash(buf) // want `passes a noretain-parameter-derived slice to stash`
}

// ChainOK delegates to another annotated function — the contract carries.
//
//rasql:noretain buf
func ChainOK(dst []int, buf []byte) []int {
	return DecodeOK(dst, buf)
}

func stash(b []byte) { sink = b }
