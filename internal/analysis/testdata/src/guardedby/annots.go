package guardedby

import "sync"

// Misannotations are diagnosed in the declaring package: the guard must
// exist and must be a sync.Mutex or sync.RWMutex.

type missingGuard struct {
	//rasql:guardedby=lock
	v int // want `the struct has no field named lock`
}

type wrongGuardType struct {
	mu int
	//rasql:guardedby=mu
	v int // want `mu is not a sync\.Mutex or sync\.RWMutex`
}

//rasql:locked=absent
func (w *wrongGuardType) helper() {} // want `the receiver struct has no field named absent`

type allowedField struct {
	mu sync.Mutex
	//rasql:guardedby=mu
	v int
}

func (a *allowedField) suppressed() int {
	return a.v //rasql:allow guardedby -- read-only after construction in this fixture
}

// A malformed allow (no `-- justification`) suppresses nothing: the line
// gets both the analyzer's diagnostic and the framework's RL000.
func (a *allowedField) suppressedMalformed() int {
	return a.v //rasql:allow guardedby // want `read of v` // want `needs analyzer names`
}
