// Package guardedby seeds violations of the //rasql:guardedby contract:
// accesses without the mutex, writes under the read lock, calls into
// //rasql:locked helpers without the lock, and misannotations.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	//rasql:guardedby=mu
	n int
}

func (c *counter) incLocked() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) getDeferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) incUnlocked() {
	c.n++ // want `write to n \(guarded by mu\) without holding c\.mu`
}

func (c *counter) getUnlocked() int {
	return c.n // want `read of n \(guarded by mu\) without holding c\.mu`
}

func (c *counter) escape() *int {
	return &c.n // want `write to n \(guarded by mu\) without holding c\.mu`
}

func (c *counter) lockedTooLate() {
	c.n = 1 // want `write to n \(guarded by mu\) without holding c\.mu`
	c.mu.Lock()
	c.mu.Unlock()
}

func (c *counter) releasedTooSoon() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want `read of n \(guarded by mu\) without holding c\.mu`
}

// bump requires the caller to hold c.mu; its own body is checked as if
// the lock were taken on entry.
//
//rasql:locked=mu
func (c *counter) bump() { c.n++ }

func (c *counter) callsBumpLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bump()
}

func (c *counter) callsBumpUnlocked() {
	c.bump() // want `bump requires c\.mu held exclusively`
}

// newCounter publishes nothing before returning: composite-literal
// construction of an unshared value is exempt by design.
func newCounter() *counter {
	return &counter{n: 1}
}

type registry struct {
	mu sync.RWMutex
	//rasql:guardedby=mu
	entries map[string]int
}

func (r *registry) lookup(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[k]
}

func (r *registry) store(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[k] = v
}

func (r *registry) storeUnderReadLock(k string, v int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.entries[k] = v // want `write to entries \(guarded by mu\) requires the write lock`
}

func (r *registry) dropUnlocked(k string) {
	delete(r.entries, k) // want `write to entries \(guarded by mu\) without holding r\.mu`
}

func (r *registry) sizeAllowed() int {
	return len(r.entries) //rasql:allow guardedby -- single-threaded bootstrap path, measured before publication
}
