package analysis

import "strings"

// NoAlloc checks functions annotated //rasql:noalloc: neither the body nor
// any transitively-called in-module function may reach an allocation site
// recorded by the shared call-graph Prepare. Callees that are themselves
// annotated //rasql:noalloc become modular proof obligations — the walk
// stops at them, and they are checked (once) at their own declaration.
//
// Direct sites anchor the diagnostic at the allocating construct;
// transitive sites anchor at the first-hop call in the annotated function,
// with the remote site's position and call chain in the message. Justified
// exceptions use //rasql:allow noalloc -- <why> on the site itself, which
// suppresses it for every caller.
var NoAlloc = &Analyzer{
	Name:       "noalloc",
	Code:       "RL008",
	Doc:        "functions annotated //rasql:noalloc must reach no allocation site, transitively through in-module calls",
	Prepare:    prepareCallGraph,
	RunProgram: runNoAllocProgram,
}

func runNoAllocProgram(pass *Pass) {
	ix := pass.Index
	for _, key := range ix.LocalNoAlloc() {
		for _, s := range ix.AllocSites(key) {
			if s.Local {
				pass.Reportf(s.Pos, "%s is annotated //rasql:noalloc but %s", displayFunc(key), s.What)
			}
		}
		reported := map[string]bool{}
		for _, edge := range ix.CallEdges(key) {
			if !edge.Local || reported[edge.Callee] {
				continue
			}
			if ann := ix.DeclAnnots(edge.Callee); ann != nil && ann.NoAlloc {
				continue // the callee carries its own proof obligation
			}
			site, chain := ix.findAllocPath(edge.Callee)
			if site == nil {
				continue
			}
			reported[edge.Callee] = true
			via := ""
			if len(chain) > 1 {
				short := make([]string, len(chain))
				for i, c := range chain {
					short[i] = displayFunc(c)
				}
				via = ", via " + strings.Join(short, " -> ")
			}
			pass.Reportf(edge.Pos, "%s is annotated //rasql:noalloc but calls %s, which reaches an allocation: %s (at %s%s)",
				displayFunc(key), displayFunc(edge.Callee), site.What, site.PosStr, via)
		}
	}
}

// findAllocPath breadth-first-walks the call graph from start, skipping
// callees annotated //rasql:noalloc, and returns the first reachable
// allocation site plus the call chain (start first) leading to it.
func (ix *Index) findAllocPath(start string) (*AllocSite, []string) {
	type node struct {
		key   string
		chain []string
	}
	seen := map[string]bool{start: true}
	queue := []node{{key: start, chain: []string{start}}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if sites := ix.allocSites[n.key]; len(sites) > 0 {
			return &sites[0], n.chain
		}
		for _, e := range ix.callEdges[n.key] {
			if seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			if ann := ix.funcs[e.Callee]; ann != nil && ann.NoAlloc {
				continue
			}
			chain := append(append([]string(nil), n.chain...), e.Callee)
			queue = append(queue, node{key: e.Callee, chain: chain})
		}
	}
	return nil, nil
}

// displayFunc shortens a function key to its package base for messages:
// github.com/rasql/rasql-go/internal/types.AppendKey -> types.AppendKey.
func displayFunc(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
