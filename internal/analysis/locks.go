package analysis

import (
	"go/ast"
	"go/types"
)

// Shared mutex-recognition machinery for the concurrency analyzers
// (guardedby, lockorder). Both scan function bodies for calls of the form
//
//	<expr>.Lock() / RLock() / Unlock() / RUnlock()
//
// where <expr> has type sync.Mutex or sync.RWMutex, and reconstruct the
// lock state with a position-ordered linear scan: events are sorted by
// source position and replayed in order, which models the engine's
// straight-line "Lock … access … Unlock" and "Lock; defer Unlock" shapes
// exactly. Deferred unlocks never release — the lock is held to the end of
// the function, which is the conservative direction for both analyzers.

// mutexOp classifies one Lock/RLock/Unlock/RUnlock call.
type mutexOp struct {
	call *ast.CallExpr
	// recv is the mutex-valued expression the method is called on
	// (e.g. the `c.mu` of `c.mu.Lock()`).
	recv ast.Expr
	// name is the method name: Lock, RLock, Unlock or RUnlock.
	name string
	// deferred marks `defer x.mu.Unlock()` (and, degenerately, deferred
	// locks, which the scanners ignore).
	deferred bool
}

func (op *mutexOp) acquire() bool { return op.name == "Lock" || op.name == "RLock" }
func (op *mutexOp) read() bool    { return op.name == "RLock" || op.name == "RUnlock" }

// asMutexOp recognizes a mutex method call; stack is the ancestor chain
// (outermost first) used to detect a directly enclosing defer.
func asMutexOp(pass *Pass, stack []ast.Node, call *ast.CallExpr) (mutexOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return mutexOp{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return mutexOp{}, false
	}
	if !isMutexType(pass.typeOf(sel.X)) {
		return mutexOp{}, false
	}
	op := mutexOp{call: call, recv: sel.X, name: sel.Sel.Name}
	if len(stack) >= 2 {
		if d, ok := stack[len(stack)-2].(*ast.DeferStmt); ok && d.Call == call {
			op.deferred = true
		}
	}
	return op, true
}

// typeOf resolves an expression's type, nil when unknown.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	name, rw := mutexTypeName(t)
	return name || rw
}

func mutexTypeName(t types.Type) (mutex, rwmutex bool) {
	if t == nil {
		return false, false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return false, false
	}
	switch n.Obj().Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return false, true
	}
	return false, false
}

// lockClass names the lock an expression denotes, instance-insensitively:
// a struct field becomes "pkgpath.Struct.field", a package-level var
// "pkgpath.var", and a local mutex variable gets a declaration-position
// key. Returns "" when the expression doesn't resolve.
func lockClass(pass *Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if owner := namedRecv(sel.Recv()); owner != nil {
				return FieldKey(owner.Obj().Pkg().Path(), owner.Obj().Name(), sel.Obj().Name())
			}
		}
		if obj, ok := pass.Info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(obj) {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[e].(*types.Var); ok {
			if isPackageLevel(obj) {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			return "local@" + pass.Fset.Position(obj.Pos()).String()
		}
	}
	return ""
}

// namedRecv unwraps a selection receiver to its named struct type.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return nil
	}
	return n
}

// fieldAccessKey resolves a selector to its field key
// ("pkgpath.Struct.Field") when it selects a named struct's field; ""
// otherwise. Promoted fields key on the embedded struct that declares
// them, matching where the annotation lives.
func fieldAccessKey(pass *Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return ""
	}
	// Walk the selection path so promoted fields resolve to the struct
	// that actually declares them.
	t := s.Recv()
	idx := s.Index()
	for i := 0; i < len(idx)-1; i++ {
		st := structUnder(t)
		if st == nil {
			return ""
		}
		t = st.Field(idx[i]).Type()
	}
	owner := namedRecv(t)
	if owner == nil {
		return ""
	}
	return FieldKey(owner.Obj().Pkg().Path(), owner.Obj().Name(), field.Name())
}

func structUnder(t types.Type) *types.Struct {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		t = n.Underlying()
	}
	st, _ := t.(*types.Struct)
	return st
}

// enclosingFuncKey returns the index key of the innermost enclosing
// function declaration on the ancestor stack ("" inside func literals,
// whose identity is not addressable across packages).
func enclosingFuncKey(pass *Pass, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return ""
		case *ast.FuncDecl:
			return FuncKey(pass.Pkg.Path(), declRecvName(n), n.Name.Name)
		}
	}
	return ""
}

// walkWithStack runs fn over every node of root with the ancestor chain
// (outermost first, current node last).
func walkWithStack(root ast.Node, fn func(stack []ast.Node, n ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(stack, n)
		return true
	})
}
