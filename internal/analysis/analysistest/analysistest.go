// Package analysistest runs analyzers over golden fixture packages and
// checks their diagnostics against expectations written in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	sink = buf // want `stores a noretain-parameter-derived slice`
//
// A want comment expects at least one diagnostic on its line whose message
// matches the regular expression; any diagnostic not covered by a want, or
// want without a diagnostic, fails the test. Both `backquoted` and
// "quoted" expectation forms are accepted.
package analysistest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/rasql/rasql-go/internal/analysis"
)

// fixtureDeps are the standard-library packages fixtures may import; their
// export data (and that of their transitive dependencies) is listed once
// per test binary.
var fixtureDeps = []string{"sync", "sync/atomic", "time", "math/rand", "fmt"}

var (
	exportsOnce sync.Once
	exportsSet  *analysis.ExportSet
	exportsErr  error
)

func exports() (*analysis.ExportSet, error) {
	exportsOnce.Do(func() {
		exportsSet, exportsErr = analysis.ListExports(".", fixtureDeps...)
	})
	return exportsSet, exportsErr
}

var wantRE = regexp.MustCompile("//\\s*want\\s+(?:`([^`]*)`|\"([^\"]*)\")")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package at <testdata>/src/<pkg>, applies the
// analyzers (plus the always-on malformed-allow check), and verifies the
// diagnostics against the fixture's want comments.
func Run(t *testing.T, testdata, pkg string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	es, err := exports()
	if err != nil {
		t.Fatalf("listing fixture dependency exports: %v", err)
	}
	dir := filepath.Join(testdata, "src", pkg)
	lp, fset, err := analysis.LoadDir(dir, "rasql.fixture/"+pkg, es)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := analysis.Run(fset, []*analysis.LoadedPackage{lp}, analyzers)
	wants, err := collectWants(dir)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.pattern)
		}
	}
}

// vetDiagRE splits one unitchecker output line into position and payload;
// the payload keeps the analyzer prefix, which unanchored want patterns
// simply skip over.
var vetDiagRE = regexp.MustCompile(`^(.+?):(\d+):\d+: (.+)$`)

// RunVet re-runs a fixture package through the `go vet -vettool` driver
// path: it synthesizes the vet.cfg JSON cmd/go would write for the unit and
// feeds it to RunUnit, so the unitchecker plumbing (config parse, facts
// write, full-suite run, diagnostic printing) is exercised end to end. The
// full analyzer suite runs — unitchecker mode has no per-analyzer
// selection — so fixtures must be clean for every analyzer except where a
// want says otherwise, pinning that both driver modes agree.
func RunVet(t *testing.T, testdata, pkg string) {
	t.Helper()
	es, err := exports()
	if err != nil {
		t.Fatalf("listing fixture dependency exports: %v", err)
	}
	dir, err := filepath.Abs(filepath.Join(testdata, "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, filepath.Join(dir, e.Name()))
		}
	}
	tmp := t.TempDir()
	cfg := analysis.VetConfig{
		ID:          "rasql.fixture/" + pkg,
		Compiler:    "gc",
		Dir:         dir,
		ImportPath:  "rasql.fixture/" + pkg,
		GoFiles:     goFiles,
		ImportMap:   map[string]string{},
		PackageFile: es.Files(),
		ModulePath:  "rasql.fixture",
		VetxOutput:  filepath.Join(tmp, "fixture.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFile := filepath.Join(tmp, "vet.cfg")
	if err := os.WriteFile(cfgFile, data, 0o666); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	code := analysis.RunUnit(cfgFile, &out)
	if code == 1 {
		t.Fatalf("RunUnit operational failure:\n%s", out.String())
	}
	wants, err := collectWants(dir)
	if err != nil {
		t.Fatal(err)
	}
	sawDiag := false
	for _, line := range strings.Split(out.String(), "\n") {
		if line == "" {
			continue
		}
		m := vetDiagRE.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable unitchecker output line: %q", line)
			continue
		}
		sawDiag = true
		lineNo, err := strconv.Atoi(m[2])
		if err != nil {
			t.Fatalf("bad line number in %q: %v", line, err)
		}
		if !claim(wants, m[1], lineNo, m[3]) {
			t.Errorf("unexpected unitchecker diagnostic: %s", line)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no unitchecker diagnostic matched want `%s`", w.file, w.line, w.pattern)
		}
	}
	if sawDiag != (code == 2) {
		t.Errorf("exit code %d inconsistent with %v diagnostics printed", code, sawDiag)
	}
	if fi, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("unit facts file was not written: %v", err)
	} else if fi.Size() == 0 {
		t.Errorf("unit facts file is empty")
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches; a want may cover repeated identical diagnostics.
func claim(wants []*expectation, file string, line int, msg string) bool {
	base := filepath.Base(file)
	var fallback *expectation
	for _, w := range wants {
		if w.file != base || w.line != line || !w.pattern.MatchString(msg) {
			continue
		}
		if !w.matched {
			w.matched = true
			return true
		}
		fallback = w
	}
	if fallback != nil {
		return true
	}
	return false
}

func collectWants(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", e.Name(), line, pat, err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: line, pattern: re})
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return wants, nil
}
