package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The annotation language. Annotations ride in ordinary comments so they
// survive gofmt and need no build-tag machinery:
//
//	//rasql:noretain buf            — on a func: the named slice params (all
//	                                  params when none are named) must not be
//	                                  retained anywhere heap-reachable
//	//rasql:affinity=worker         — on a func: call sites must be worker-
//	                                  affine (a Task.Run body or another
//	                                  annotated function)
//	//rasql:pool-get                — on a func: it is a sync.Pool Get
//	                                  accessor; its result is a pooled value
//	//rasql:pool-put                — on a func: it is a sync.Pool Put
//	                                  accessor; its argument is recycled
//	//rasql:deterministic           — anywhere in a file: the whole package
//	                                  opts into the simclock restriction
//	//rasql:allow <names> -- <why>  — on or above a line: suppress the named
//	                                  analyzers there, with justification

// FuncAnnots are the annotations attached to one function declaration.
type FuncAnnots struct {
	// NoRetain lists the parameter names covered by //rasql:noretain;
	// nil means the function carries no noretain annotation, and an empty
	// non-nil slice covers every parameter.
	NoRetain []string
	// HasNoRetain distinguishes "annotated with no params" from
	// "not annotated".
	HasNoRetain bool
	// WorkerAffinity marks //rasql:affinity=worker.
	WorkerAffinity bool
	// PoolGet and PoolPut mark sync.Pool accessor wrappers.
	PoolGet, PoolPut bool
}

func (a *FuncAnnots) empty() bool {
	return a == nil || (!a.HasNoRetain && !a.WorkerAffinity && !a.PoolGet && !a.PoolPut)
}

// NoRetainCovers reports whether the annotation covers the parameter name.
func (a *FuncAnnots) NoRetainCovers(param string) bool {
	if a == nil || !a.HasNoRetain {
		return false
	}
	if len(a.NoRetain) == 0 {
		return true
	}
	for _, p := range a.NoRetain {
		if p == param {
			return true
		}
	}
	return false
}

// allowSite is one //rasql:allow comment occurrence.
type allowSite struct {
	analyzers []string
	reason    string
	pos       token.Pos
}

// Index is the cross-package annotation table: function annotations keyed
// by qualified name, package-level determinism opt-ins, and per-line
// suppressions. In whole-program mode it is built from every loaded
// package's syntax; in unitchecker mode the function and package tables of
// dependencies arrive as vetx facts.
type Index struct {
	funcs         map[string]*FuncAnnots
	deterministic map[string]bool
	// allows maps filename -> line -> analyzer names suppressed there.
	allows map[string]map[int][]string
	// malformed collects allow comments missing their justification.
	malformed []allowSite
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		funcs:         map[string]*FuncAnnots{},
		deterministic: map[string]bool{},
		allows:        map[string]map[int][]string{},
	}
}

// FuncKey builds the index key for a function: pkgpath.Name, or
// pkgpath.Recv.Name for methods (pointer receivers are flattened).
func FuncKey(pkgPath, recv, name string) string {
	if recv != "" {
		return pkgPath + "." + recv + "." + name
	}
	return pkgPath + "." + name
}

// ObjKey builds the index key for a resolved function object.
func ObjKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		}
	}
	return FuncKey(fn.Pkg().Path(), recv, fn.Name())
}

// FuncAnnots returns the annotations for a resolved function, or nil.
func (ix *Index) FuncAnnots(fn *types.Func) *FuncAnnots {
	if fn == nil {
		return nil
	}
	return ix.funcs[ObjKey(fn)]
}

// DeclAnnots returns the annotations recorded for a declaration key, or nil.
func (ix *Index) DeclAnnots(key string) *FuncAnnots { return ix.funcs[key] }

// Deterministic reports whether the package opted into (or was listed for)
// the simclock restriction.
func (ix *Index) Deterministic(pkgPath string) bool { return ix.deterministic[pkgPath] }

// MarkDeterministic records a package as clock-restricted (used when
// merging facts and for the built-in engine package list).
func (ix *Index) MarkDeterministic(pkgPath string) { ix.deterministic[pkgPath] = true }

// ScanPackage records every //rasql: annotation in the files of one
// package: function annotations, package determinism opt-ins, and
// per-line allow suppressions.
func (ix *Index) ScanPackage(fset *token.FileSet, pkgPath string, files []*ast.File) {
	for _, f := range files {
		ix.scanFile(fset, pkgPath, f)
	}
}

func (ix *Index) scanFile(fset *token.FileSet, pkgPath string, f *ast.File) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		ann := parseFuncAnnots(fd.Doc)
		if ann.empty() {
			continue
		}
		ix.funcs[FuncKey(pkgPath, declRecvName(fd), fd.Name.Name)] = ann
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			line := strings.TrimSpace(c.Text)
			switch {
			case line == "//rasql:deterministic":
				ix.deterministic[pkgPath] = true
			case strings.HasPrefix(line, "//rasql:allow"):
				ix.recordAllow(fset, c)
			}
		}
	}
}

// declRecvName extracts the receiver type name of a declaration
// ("" for plain functions).
func declRecvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func parseFuncAnnots(doc *ast.CommentGroup) *FuncAnnots {
	ann := &FuncAnnots{}
	for _, c := range doc.List {
		line := strings.TrimSpace(c.Text)
		rest, ok := strings.CutPrefix(line, "//rasql:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "noretain":
			ann.HasNoRetain = true
			ann.NoRetain = append(ann.NoRetain, fields[1:]...)
		case "affinity=worker":
			ann.WorkerAffinity = true
		case "pool-get":
			ann.PoolGet = true
		case "pool-put":
			ann.PoolPut = true
		}
	}
	return ann
}

// recordAllow parses one //rasql:allow comment. The comment suppresses the
// named analyzers on its own line (end-of-line form) and on the following
// line (standalone form).
func (ix *Index) recordAllow(fset *token.FileSet, c *ast.Comment) {
	body := strings.TrimPrefix(strings.TrimSpace(c.Text), "//rasql:allow")
	names, reason, found := strings.Cut(body, "--")
	site := allowSite{analyzers: strings.Fields(names), reason: strings.TrimSpace(reason), pos: c.Pos()}
	if !found || site.reason == "" || len(site.analyzers) == 0 {
		ix.malformed = append(ix.malformed, site)
		return
	}
	p := fset.Position(c.Pos())
	lines := ix.allows[p.Filename]
	if lines == nil {
		lines = map[int][]string{}
		ix.allows[p.Filename] = lines
	}
	lines[p.Line] = append(lines[p.Line], site.analyzers...)
	lines[p.Line+1] = append(lines[p.Line+1], site.analyzers...)
}

// Allowed reports whether a diagnostic of the named analyzer at the given
// position is suppressed by an allow comment.
func (ix *Index) Allowed(analyzer string, pos token.Position) bool {
	for _, a := range ix.allows[pos.Filename][pos.Line] {
		if a == analyzer {
			return true
		}
	}
	return false
}

// Facts is the serializable subset of the index exchanged between
// unitchecker runs: the annotations a package exports to its dependents.
type Facts struct {
	Funcs         map[string]*FuncAnnots `json:"funcs,omitempty"`
	Deterministic []string               `json:"deterministic,omitempty"`
}

// ExportFacts extracts the facts recorded for one package.
func (ix *Index) ExportFacts(pkgPath string) Facts {
	f := Facts{Funcs: map[string]*FuncAnnots{}}
	prefix := pkgPath + "."
	for k, v := range ix.funcs {
		if strings.HasPrefix(k, prefix) {
			f.Funcs[k] = v
		}
	}
	if ix.deterministic[pkgPath] {
		f.Deterministic = []string{pkgPath}
	}
	return f
}

// MergeFacts folds a dependency's exported facts into the index.
func (ix *Index) MergeFacts(f Facts) {
	for k, v := range f.Funcs {
		ix.funcs[k] = v
	}
	for _, p := range f.Deterministic {
		ix.deterministic[p] = true
	}
}

// MalformedAllows returns diagnostics for allow comments missing their
// `-- justification`, sorted by position.
func (ix *Index) MalformedAllows(fset *token.FileSet) []Diagnostic {
	var out []Diagnostic
	for _, m := range ix.malformed {
		out = append(out, Diagnostic{
			Pos:      fset.Position(m.pos),
			Analyzer: "rasql-lint",
			Message:  "//rasql:allow needs analyzer names and a `-- justification`",
		})
	}
	sort.Slice(out, func(i, j int) bool { return positionLess(out[i].Pos, out[j].Pos) })
	return out
}

func positionLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}
