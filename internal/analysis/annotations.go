package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The annotation language. Annotations ride in ordinary comments so they
// survive gofmt and need no build-tag machinery:
//
//	//rasql:noretain buf            — on a func: the named slice params (all
//	                                  params when none are named) must not be
//	                                  retained anywhere heap-reachable
//	//rasql:affinity=worker         — on a func: call sites must be worker-
//	                                  affine (a Task.Run body or another
//	                                  annotated function)
//	//rasql:pool-get                — on a func: it is a sync.Pool Get
//	                                  accessor; its result is a pooled value
//	//rasql:pool-put                — on a func: it is a sync.Pool Put
//	                                  accessor; its argument is recycled
//	//rasql:deterministic           — anywhere in a file: the whole package
//	                                  opts into the simclock restriction
//	//rasql:guardedby=<mutex>       — on a struct field: the field may only
//	                                  be accessed while the named
//	                                  sync.Mutex/RWMutex field of the same
//	                                  struct is held (read lock suffices
//	                                  for reads)
//	//rasql:locked=<mutex>          — on a method: callers must already
//	                                  hold the named mutex field of the
//	                                  receiver exclusively; the body is
//	                                  checked as if the lock were taken on
//	                                  entry
//	//rasql:noalloc                 — on a func: neither the body nor any
//	                                  transitively-called in-module function
//	                                  may reach a heap-allocation site
//	//rasql:lifecycle               — anywhere in a file: the whole package
//	                                  opts into the golifecycle goroutine
//	                                  accounting (engine packages are in by
//	                                  default)
//	//rasql:detach -- <why>         — on or above a `go` statement: the
//	                                  goroutine intentionally outlives its
//	                                  spawner (no WaitGroup join), with
//	                                  justification
//	//rasql:allocpin <names>        — in a test file: the enclosing
//	                                  AllocsPerRun test/benchmark dynamically
//	                                  pins the named //rasql:noalloc
//	                                  functions (checked by `rasql-lint
//	                                  -allocdrift`)
//	//rasql:allow <names> -- <why>  — on or above a line: suppress the named
//	                                  analyzers there, with justification
//
// Two kinds of shared mutable state are deliberately exempt from guardedby
// rather than annotated:
//
//   - package-level sync.Pool variables (the cluster's encBufPool): the
//     pool is its own synchronization — Get/Put are safe under any
//     interleaving, and the separate pooldiscipline analyzer enforces the
//     engine's stricter Get/Put pairing on top;
//   - write-only atomic sinks (the cluster's burnSink): an atomic value
//     that is only ever written and never read cannot produce an
//     observable race, so a guarding mutex would change nothing. The
//     atomicmix analyzer still covers such variables — any plain
//     (non-atomic) access anywhere in the program is a diagnostic.

// FuncAnnots are the annotations attached to one function declaration.
type FuncAnnots struct {
	// NoRetain lists the parameter names covered by //rasql:noretain;
	// nil means the function carries no noretain annotation, and an empty
	// non-nil slice covers every parameter.
	NoRetain []string
	// HasNoRetain distinguishes "annotated with no params" from
	// "not annotated".
	HasNoRetain bool
	// WorkerAffinity marks //rasql:affinity=worker.
	WorkerAffinity bool
	// PoolGet and PoolPut mark sync.Pool accessor wrappers.
	PoolGet, PoolPut bool
	// Locked lists the receiver mutex fields named by //rasql:locked=;
	// callers must hold them exclusively and the body is checked with
	// them held.
	Locked []string
	// NoAlloc marks //rasql:noalloc: the function (and every in-module
	// function it transitively calls) must reach no allocation site.
	NoAlloc bool
}

func (a *FuncAnnots) empty() bool {
	return a == nil || (!a.HasNoRetain && !a.WorkerAffinity && !a.PoolGet && !a.PoolPut && len(a.Locked) == 0 && !a.NoAlloc)
}

// NoRetainCovers reports whether the annotation covers the parameter name.
func (a *FuncAnnots) NoRetainCovers(param string) bool {
	if a == nil || !a.HasNoRetain {
		return false
	}
	if len(a.NoRetain) == 0 {
		return true
	}
	for _, p := range a.NoRetain {
		if p == param {
			return true
		}
	}
	return false
}

// allowSite is one //rasql:allow comment occurrence.
type allowSite struct {
	analyzers []string
	reason    string
	pos       token.Pos
}

// Index is the cross-package annotation table: function annotations keyed
// by qualified name, package-level determinism opt-ins, and per-line
// suppressions. In whole-program mode it is built from every loaded
// package's syntax; in unitchecker mode the function and package tables of
// dependencies arrive as vetx facts.
type Index struct {
	funcs         map[string]*FuncAnnots
	deterministic map[string]bool
	// fields maps "pkgpath.Struct.Field" to the guarding mutex field name
	// from //rasql:guardedby annotations.
	fields map[string]string
	// allows maps filename -> line -> analyzer names suppressed there.
	allows map[string]map[int][]string
	// malformed collects allow comments missing their justification.
	malformed []allowSite
	// detaches maps filename -> line -> true for //rasql:detach comments
	// (the golifecycle escape hatch; covers the comment line and the next).
	detaches map[string]map[int]bool
	// malformedDetach collects detach comments missing their justification.
	malformedDetach []token.Pos
	// lifecycle holds packages opted into golifecycle via //rasql:lifecycle
	// (engine packages are scoped by LifecyclePrefixes instead).
	lifecycle map[string]bool

	// The program-scope evidence below is recorded by analyzer Prepare
	// hooks (local entries carry a usable token.Pos) and merged from
	// dependency facts (position survives only as a string).

	// acquires maps a function key to every lock class it may acquire,
	// transitively through calls.
	acquires map[string][]string
	// lockEdges are acquired-while-held observations: To was acquired at
	// Pos while From was held.
	lockEdges []LockEdge
	// atomicSites and plainSites record, per variable/field key, where it
	// was accessed through sync/atomic and where it was accessed plainly.
	atomicSites map[string][]Site
	plainSites  map[string][]Site
	// allocSites maps a function key to the potential heap allocations in
	// its own body; callEdges maps it to its static in-module call sites.
	// Together they form the call graph the noalloc analyzer walks.
	allocSites map[string][]AllocSite
	callEdges  map[string][]CallSite
	// wgDone summarizes, per function key, the WaitGroup classes the
	// function calls Done on — the one-hop evidence golifecycle uses to
	// account `go worker(&wg)`-shaped spawns.
	wgDone map[string]*WgSummary
	// localNoAlloc lists the //rasql:noalloc functions declared by locally
	// scanned syntax (never merged from facts), so program-scope checking
	// anchors each function's diagnostics in exactly one unit.
	localNoAlloc []string
	// preparedCG guards the shared call-graph Prepare, which both noalloc
	// and golifecycle declare: once per package, not once per analyzer.
	preparedCG map[string]bool

	siteSeen map[string]bool
}

// Site is one recorded access, addressable across packages by its
// formatted position; Pos is token.NoPos for sites merged from facts.
type Site struct {
	PosStr string
	Pos    token.Pos
	Local  bool
}

// LockEdge is one acquired-while-held observation. Via names the call
// chain for inter-procedural edges ("" for direct acquisitions).
type LockEdge struct {
	From, To string
	PosStr   string
	Via      string
	Pos      token.Pos
	Local    bool
}

// AllocSite is one potential heap allocation recorded by the call-graph
// Prepare pass, keyed under its enclosing function. What describes the
// construct conservatively classified as allocating.
type AllocSite struct {
	What   string
	PosStr string
	Pos    token.Pos
	Local  bool
}

// CallSite is one static call to an in-module function, the edge the
// noalloc analyzer follows transitively.
type CallSite struct {
	// Callee is the target's FuncKey.
	Callee string
	PosStr string
	Pos    token.Pos
	Local  bool
}

// WgSummary records the sync.WaitGroup classes a function calls Done on
// directly in its own body — deferred Dones run on every exit path
// including panics, plain Dones only on normal fallthrough.
type WgSummary struct {
	DeferredDone []string `json:"deferredDone,omitempty"`
	PlainDone    []string `json:"plainDone,omitempty"`
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		funcs:         map[string]*FuncAnnots{},
		deterministic: map[string]bool{},
		fields:        map[string]string{},
		allows:        map[string]map[int][]string{},
		detaches:      map[string]map[int]bool{},
		lifecycle:     map[string]bool{},
		acquires:      map[string][]string{},
		atomicSites:   map[string][]Site{},
		plainSites:    map[string][]Site{},
		allocSites:    map[string][]AllocSite{},
		callEdges:     map[string][]CallSite{},
		wgDone:        map[string]*WgSummary{},
		preparedCG:    map[string]bool{},
		siteSeen:      map[string]bool{},
	}
}

// FuncKey builds the index key for a function: pkgpath.Name, or
// pkgpath.Recv.Name for methods (pointer receivers are flattened).
func FuncKey(pkgPath, recv, name string) string {
	if recv != "" {
		return pkgPath + "." + recv + "." + name
	}
	return pkgPath + "." + name
}

// ObjKey builds the index key for a resolved function object.
func ObjKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		}
	}
	return FuncKey(fn.Pkg().Path(), recv, fn.Name())
}

// FuncAnnots returns the annotations for a resolved function, or nil.
func (ix *Index) FuncAnnots(fn *types.Func) *FuncAnnots {
	if fn == nil {
		return nil
	}
	return ix.funcs[ObjKey(fn)]
}

// DeclAnnots returns the annotations recorded for a declaration key, or nil.
func (ix *Index) DeclAnnots(key string) *FuncAnnots { return ix.funcs[key] }

// Deterministic reports whether the package opted into (or was listed for)
// the simclock restriction.
func (ix *Index) Deterministic(pkgPath string) bool { return ix.deterministic[pkgPath] }

// MarkDeterministic records a package as clock-restricted (used when
// merging facts and for the built-in engine package list).
func (ix *Index) MarkDeterministic(pkgPath string) { ix.deterministic[pkgPath] = true }

// GuardedBy returns the guarding mutex field name for a field key
// ("pkgpath.Struct.Field"), or "" when the field carries no annotation.
func (ix *Index) GuardedBy(fieldKey string) string { return ix.fields[fieldKey] }

// Acquires returns the transitive lock-acquisition set recorded for a
// function key (nil when unknown).
func (ix *Index) Acquires(funcKey string) []string { return ix.acquires[funcKey] }

// SetAcquires records a function's transitive lock-acquisition set.
func (ix *Index) SetAcquires(funcKey string, locks []string) {
	if len(locks) > 0 {
		ix.acquires[funcKey] = locks
	}
}

// AddLockEdge records one acquired-while-held observation, deduplicated
// by (from, to, position).
func (ix *Index) AddLockEdge(e LockEdge) {
	k := "edge\x00" + e.From + "\x00" + e.To + "\x00" + e.PosStr
	if ix.siteSeen[k] {
		return
	}
	ix.siteSeen[k] = true
	ix.lockEdges = append(ix.lockEdges, e)
}

// LockEdges returns every recorded acquired-while-held edge.
func (ix *Index) LockEdges() []LockEdge { return ix.lockEdges }

// AddAtomicSite / AddPlainSite record one access to the keyed variable,
// deduplicated by position.
func (ix *Index) AddAtomicSite(key string, s Site) { ix.addSite(ix.atomicSites, "a", key, s) }
func (ix *Index) AddPlainSite(key string, s Site)  { ix.addSite(ix.plainSites, "p", key, s) }

func (ix *Index) addSite(m map[string][]Site, kind, key string, s Site) {
	k := kind + "\x00" + key + "\x00" + s.PosStr
	if ix.siteSeen[k] {
		return
	}
	ix.siteSeen[k] = true
	m[key] = append(m[key], s)
}

// AtomicSites and PlainSites expose the recorded access maps.
func (ix *Index) AtomicSites() map[string][]Site { return ix.atomicSites }
func (ix *Index) PlainSites() map[string][]Site  { return ix.plainSites }

// AddAllocSite records one potential allocation inside the keyed function,
// deduplicated by position and description (facts are cumulative, so the
// same site can arrive through several dependency paths).
func (ix *Index) AddAllocSite(funcKey string, s AllocSite) {
	k := "alloc\x00" + funcKey + "\x00" + s.PosStr + "\x00" + s.What
	if ix.siteSeen[k] {
		return
	}
	ix.siteSeen[k] = true
	ix.allocSites[funcKey] = append(ix.allocSites[funcKey], s)
}

// AllocSites returns the allocation sites recorded for a function key.
func (ix *Index) AllocSites(funcKey string) []AllocSite { return ix.allocSites[funcKey] }

// AddCallEdge records one static in-module call, deduplicated by caller,
// callee and position.
func (ix *Index) AddCallEdge(funcKey string, c CallSite) {
	k := "cedge\x00" + funcKey + "\x00" + c.Callee + "\x00" + c.PosStr
	if ix.siteSeen[k] {
		return
	}
	ix.siteSeen[k] = true
	ix.callEdges[funcKey] = append(ix.callEdges[funcKey], c)
}

// CallEdges returns the static in-module call sites recorded for a
// function key.
func (ix *Index) CallEdges(funcKey string) []CallSite { return ix.callEdges[funcKey] }

// SetWgSummary records a function's WaitGroup.Done summary (first writer
// wins; merged facts never overwrite local evidence recorded earlier).
func (ix *Index) SetWgSummary(funcKey string, s *WgSummary) {
	if _, ok := ix.wgDone[funcKey]; !ok && s != nil {
		ix.wgDone[funcKey] = s
	}
}

// WgSummary returns a function's WaitGroup.Done summary, nil when it has
// none (or is unknown).
func (ix *Index) WgSummary(funcKey string) *WgSummary { return ix.wgDone[funcKey] }

// addLocalNoAlloc registers a locally-declared //rasql:noalloc function for
// program-scope checking. Never exported as a fact: each unit checks (and
// anchors diagnostics for) its own declarations only.
func (ix *Index) addLocalNoAlloc(funcKey string) {
	k := "lna\x00" + funcKey
	if ix.siteSeen[k] {
		return
	}
	ix.siteSeen[k] = true
	ix.localNoAlloc = append(ix.localNoAlloc, funcKey)
}

// LocalNoAlloc lists the //rasql:noalloc functions declared by locally
// scanned syntax, in scan order.
func (ix *Index) LocalNoAlloc() []string { return ix.localNoAlloc }

// callGraphPrepare reports whether the shared call-graph Prepare still
// needs to run for the package, marking it done. Both analyzers built on
// the graph declare the same Prepare hook; the first call wins.
func (ix *Index) callGraphPrepare(pkgPath string) bool {
	if ix.preparedCG[pkgPath] {
		return false
	}
	ix.preparedCG[pkgPath] = true
	return true
}

// Detached reports whether a `go` statement at the position carries (or
// follows) a //rasql:detach justification.
func (ix *Index) Detached(pos token.Position) bool {
	return ix.detaches[pos.Filename][pos.Line]
}

// Lifecycle reports whether the package opted into golifecycle checking
// via a //rasql:lifecycle file comment.
func (ix *Index) Lifecycle(pkgPath string) bool { return ix.lifecycle[pkgPath] }

// ScanPackage records every //rasql: annotation in the files of one
// package: function annotations, package determinism opt-ins, and
// per-line allow suppressions.
func (ix *Index) ScanPackage(fset *token.FileSet, pkgPath string, files []*ast.File) {
	for _, f := range files {
		ix.scanFile(fset, pkgPath, f)
	}
}

func (ix *Index) scanFile(fset *token.FileSet, pkgPath string, f *ast.File) {
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *ast.FuncDecl:
			if d.Doc == nil {
				continue
			}
			ann := parseFuncAnnots(d.Doc)
			if ann.empty() {
				continue
			}
			key := FuncKey(pkgPath, declRecvName(d), d.Name.Name)
			ix.funcs[key] = ann
			if ann.NoAlloc {
				ix.addLocalNoAlloc(key)
			}
		case *ast.GenDecl:
			ix.scanTypeDecl(pkgPath, d)
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			line := strings.TrimSpace(c.Text)
			switch {
			case line == "//rasql:deterministic":
				ix.deterministic[pkgPath] = true
			case line == "//rasql:lifecycle":
				ix.lifecycle[pkgPath] = true
			case strings.HasPrefix(line, "//rasql:allow"):
				ix.recordAllow(fset, c)
			case strings.HasPrefix(line, "//rasql:detach"):
				ix.recordDetach(fset, c)
			}
		}
	}
}

// scanTypeDecl records //rasql:guardedby annotations on struct fields.
// The annotation rides in the field's doc comment (the line above) or its
// trailing line comment.
func (ix *Index) scanTypeDecl(pkgPath string, d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			mu := guardedByOf(field.Doc)
			if mu == "" {
				mu = guardedByOf(field.Comment)
			}
			if mu == "" {
				continue
			}
			for _, name := range field.Names {
				ix.fields[FieldKey(pkgPath, ts.Name.Name, name.Name)] = mu
			}
		}
	}
}

func guardedByOf(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		line := strings.TrimSpace(c.Text)
		if mu, ok := strings.CutPrefix(line, "//rasql:guardedby="); ok {
			return strings.TrimSpace(mu)
		}
	}
	return ""
}

// FieldKey builds the index key for a struct field annotation.
func FieldKey(pkgPath, structName, fieldName string) string {
	return pkgPath + "." + structName + "." + fieldName
}

// declRecvName extracts the receiver type name of a declaration
// ("" for plain functions).
func declRecvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func parseFuncAnnots(doc *ast.CommentGroup) *FuncAnnots {
	ann := &FuncAnnots{}
	for _, c := range doc.List {
		line := strings.TrimSpace(c.Text)
		rest, ok := strings.CutPrefix(line, "//rasql:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "noretain":
			ann.HasNoRetain = true
			ann.NoRetain = append(ann.NoRetain, fields[1:]...)
		case "affinity=worker":
			ann.WorkerAffinity = true
		case "pool-get":
			ann.PoolGet = true
		case "pool-put":
			ann.PoolPut = true
		case "noalloc":
			ann.NoAlloc = true
		default:
			if mu, ok := strings.CutPrefix(fields[0], "locked="); ok && mu != "" {
				ann.Locked = append(ann.Locked, mu)
			}
		}
	}
	return ann
}

// recordAllow parses one //rasql:allow comment. The comment suppresses the
// named analyzers on its own line (end-of-line form) and on the following
// line (standalone form).
func (ix *Index) recordAllow(fset *token.FileSet, c *ast.Comment) {
	body := strings.TrimPrefix(strings.TrimSpace(c.Text), "//rasql:allow")
	names, reason, found := strings.Cut(body, "--")
	site := allowSite{analyzers: strings.Fields(names), reason: strings.TrimSpace(reason), pos: c.Pos()}
	if !found || site.reason == "" || len(site.analyzers) == 0 {
		ix.malformed = append(ix.malformed, site)
		return
	}
	p := fset.Position(c.Pos())
	lines := ix.allows[p.Filename]
	if lines == nil {
		lines = map[int][]string{}
		ix.allows[p.Filename] = lines
	}
	lines[p.Line] = append(lines[p.Line], site.analyzers...)
	lines[p.Line+1] = append(lines[p.Line+1], site.analyzers...)
}

// recordDetach parses one //rasql:detach comment. Like allow, it covers
// its own line (end-of-line form) and the following line (standalone
// form), and the `-- justification` is mandatory.
func (ix *Index) recordDetach(fset *token.FileSet, c *ast.Comment) {
	body := strings.TrimPrefix(strings.TrimSpace(c.Text), "//rasql:detach")
	_, reason, found := strings.Cut(body, "--")
	if !found || strings.TrimSpace(reason) == "" {
		ix.malformedDetach = append(ix.malformedDetach, c.Pos())
		return
	}
	p := fset.Position(c.Pos())
	lines := ix.detaches[p.Filename]
	if lines == nil {
		lines = map[int]bool{}
		ix.detaches[p.Filename] = lines
	}
	lines[p.Line] = true
	lines[p.Line+1] = true
}

// Allowed reports whether a diagnostic of the named analyzer at the given
// position is suppressed by an allow comment.
func (ix *Index) Allowed(analyzer string, pos token.Position) bool {
	for _, a := range ix.allows[pos.Filename][pos.Line] {
		if a == analyzer {
			return true
		}
	}
	return false
}

// Facts is the serializable subset of the index exchanged between
// unitchecker runs: the annotations and program-scope evidence a package
// exports to its dependents. Facts are cumulative — a unit re-exports its
// dependencies' facts alongside its own, so evidence reaches indirect
// dependents no matter how cmd/go wires the vetx graph.
type Facts struct {
	Funcs         map[string]*FuncAnnots      `json:"funcs,omitempty"`
	Deterministic []string                    `json:"deterministic,omitempty"`
	Fields        map[string]string           `json:"fields,omitempty"`
	Acquires      map[string][]string         `json:"acquires,omitempty"`
	LockEdges     []LockEdgeFact              `json:"lockEdges,omitempty"`
	AtomicSites   map[string][]string         `json:"atomicSites,omitempty"`
	PlainSites    map[string][]string         `json:"plainSites,omitempty"`
	AllocSites    map[string][]AllocSiteFact  `json:"allocSites,omitempty"`
	CallEdges     map[string][]CallSiteFact   `json:"callEdges,omitempty"`
	WgDone        map[string]*WgSummary       `json:"wgDone,omitempty"`
}

// AllocSiteFact and CallSiteFact are the serialized forms of AllocSite and
// CallSite (positions survive only as strings across the facts boundary).
type AllocSiteFact struct {
	What string `json:"what"`
	Pos  string `json:"pos"`
}

type CallSiteFact struct {
	Callee string `json:"callee"`
	Pos    string `json:"pos"`
}

// LockEdgeFact is the serialized form of a LockEdge (positions survive
// only as strings across the facts boundary).
type LockEdgeFact struct {
	From string `json:"from"`
	To   string `json:"to"`
	Pos  string `json:"pos"`
	Via  string `json:"via,omitempty"`
}

// ExportFacts extracts the cumulative facts held by the index: this
// package's annotations and evidence plus everything merged from its
// dependencies.
func (ix *Index) ExportFacts(pkgPath string) Facts {
	f := Facts{
		Funcs:       ix.funcs,
		Fields:      ix.fields,
		Acquires:    ix.acquires,
		AtomicSites: map[string][]string{},
		PlainSites:  map[string][]string{},
	}
	for p := range ix.deterministic {
		f.Deterministic = append(f.Deterministic, p)
	}
	sort.Strings(f.Deterministic)
	for _, e := range ix.lockEdges {
		f.LockEdges = append(f.LockEdges, LockEdgeFact{From: e.From, To: e.To, Pos: e.PosStr, Via: e.Via})
	}
	for k, sites := range ix.atomicSites {
		for _, s := range sites {
			f.AtomicSites[k] = append(f.AtomicSites[k], s.PosStr)
		}
	}
	for k, sites := range ix.plainSites {
		for _, s := range sites {
			f.PlainSites[k] = append(f.PlainSites[k], s.PosStr)
		}
	}
	f.AllocSites = map[string][]AllocSiteFact{}
	for k, sites := range ix.allocSites {
		for _, s := range sites {
			f.AllocSites[k] = append(f.AllocSites[k], AllocSiteFact{What: s.What, Pos: s.PosStr})
		}
	}
	f.CallEdges = map[string][]CallSiteFact{}
	for k, edges := range ix.callEdges {
		for _, c := range edges {
			f.CallEdges[k] = append(f.CallEdges[k], CallSiteFact{Callee: c.Callee, Pos: c.PosStr})
		}
	}
	f.WgDone = ix.wgDone
	return f
}

// MergeFacts folds a dependency's exported facts into the index. Merged
// evidence is non-local: it anchors no diagnostics itself but completes
// graphs and cross-references for the local package's reports.
func (ix *Index) MergeFacts(f Facts) {
	for k, v := range f.Funcs {
		ix.funcs[k] = v
	}
	for _, p := range f.Deterministic {
		ix.deterministic[p] = true
	}
	for k, v := range f.Fields {
		ix.fields[k] = v
	}
	for k, v := range f.Acquires {
		ix.acquires[k] = v
	}
	for _, e := range f.LockEdges {
		ix.AddLockEdge(LockEdge{From: e.From, To: e.To, PosStr: e.Pos, Via: e.Via})
	}
	for k, sites := range f.AtomicSites {
		for _, pos := range sites {
			ix.AddAtomicSite(k, Site{PosStr: pos})
		}
	}
	for k, sites := range f.PlainSites {
		for _, pos := range sites {
			ix.AddPlainSite(k, Site{PosStr: pos})
		}
	}
	for k, sites := range f.AllocSites {
		for _, s := range sites {
			ix.AddAllocSite(k, AllocSite{What: s.What, PosStr: s.Pos})
		}
	}
	for k, edges := range f.CallEdges {
		for _, c := range edges {
			ix.AddCallEdge(k, CallSite{Callee: c.Callee, PosStr: c.Pos})
		}
	}
	for k, s := range f.WgDone {
		ix.SetWgSummary(k, s)
	}
}

// MalformedAllows returns diagnostics for allow and detach comments
// missing their `-- justification`, sorted by position.
func (ix *Index) MalformedAllows(fset *token.FileSet) []Diagnostic {
	var out []Diagnostic
	for _, m := range ix.malformed {
		out = append(out, Diagnostic{
			Pos:      fset.Position(m.pos),
			Analyzer: "rasql-lint",
			Code:     "RL000",
			Message:  "//rasql:allow needs analyzer names and a `-- justification`",
		})
	}
	for _, pos := range ix.malformedDetach {
		out = append(out, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "rasql-lint",
			Code:     "RL000",
			Message:  "//rasql:detach needs a `-- justification`",
		})
	}
	sort.Slice(out, func(i, j int) bool { return positionLess(out[i].Pos, out[j].Pos) })
	return out
}

func positionLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}
