package analysis

import (
	"go/types"
	"strings"
)

// DeterministicPrefixes lists the import-path prefixes of the engine
// packages whose results (and simulated clock, SimNanos) must be a pure
// function of their inputs: no wall-clock reads, no global math/rand.
// Out-of-tree packages opt in with a //rasql:deterministic file comment.
var DeterministicPrefixes = []string{
	"github.com/rasql/rasql-go/internal/cluster",
	"github.com/rasql/rasql-go/internal/fixpoint",
	"github.com/rasql/rasql-go/internal/sql",
	"github.com/rasql/rasql-go/internal/types",
	"github.com/rasql/rasql-go/internal/gen",
}

// bannedTimeFuncs are the package-level time functions that read or wait on
// the host clock. Conversions and arithmetic (time.Duration, t.Sub) are
// fine: they are deterministic given their inputs.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand package functions that construct
// explicitly seeded generators rather than touching the global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// Simclock reports wall-clock reads and global math/rand calls inside
// deterministic engine packages. The cluster's simulated clock (SimNanos)
// and every query result must be reproducible from inputs alone; host time
// belongs behind the bench/metrics boundary. Methods on an injected
// *rand.Rand are always fine — only the process-global source is banned.
var Simclock = &Analyzer{
	Name: "simclock",
	Code: "RL001",
	Doc:  "forbid wall-clock and global math/rand calls in deterministic engine packages",
	Run:  runSimclock,
}

func runSimclock(pass *Pass) {
	if !deterministicPackage(pass) {
		return
	}
	for id, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue // methods (e.g. (*rand.Rand).Intn) are deterministic per instance
		}
		switch fn.Pkg().Path() {
		case "time":
			if bannedTimeFuncs[fn.Name()] {
				pass.Reportf(id.Pos(), "time.%s reads the host clock in deterministic package %s; move it behind the bench/metrics boundary or justify with //rasql:allow simclock -- <why>", fn.Name(), pass.Pkg.Path())
			}
		case "math/rand", "math/rand/v2":
			if !allowedRandFuncs[fn.Name()] {
				pass.Reportf(id.Pos(), "global %s.%s uses the shared process-wide source in deterministic package %s; inject an explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed)))", fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
			}
		}
	}
}

func deterministicPackage(pass *Pass) bool {
	path := pass.Pkg.Path()
	if pass.Index.Deterministic(path) {
		return true
	}
	for _, prefix := range DeterministicPrefixes {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}
