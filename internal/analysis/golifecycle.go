package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// LifecyclePrefixes lists the import-path prefixes of the engine packages
// whose goroutines must be join-accounted: every `go` statement either
// participates in a WaitGroup join (Add before the spawn, Done deferred on
// every exit path) or carries an explicit //rasql:detach justification.
// Out-of-tree packages opt in with a //rasql:lifecycle file comment.
var LifecyclePrefixes = []string{
	"github.com/rasql/rasql-go/internal/cluster",
	"github.com/rasql/rasql-go/internal/fixpoint",
	"github.com/rasql/rasql-go/internal/gap",
	"github.com/rasql/rasql-go/internal/pregel",
}

// GoLifecycle checks the join accounting of every `go` statement in scoped
// packages. The spawned frame's WaitGroup evidence comes from the spawned
// closure's own body, or — for `go worker(&wg)` spawns — from the callee's
// WgSummary on the shared call graph, so one-hop indirection through a
// named worker function still counts.
//
// Diagnosed shapes:
//   - no Done anywhere on the spawned frame and no //rasql:detach;
//   - Add inside the spawned goroutine while the spawner joins the same
//     WaitGroup (Wait can run before the goroutine's Add — a lost-signal
//     race);
//   - Add positioned after the go statement (same race, spelled
//     differently);
//   - Done not deferred (a panic in the goroutine skips it and the
//     spawner's Wait blocks forever).
var GoLifecycle = &Analyzer{
	Name:    "golifecycle",
	Code:    "RL009",
	Doc:     "every go statement in engine packages is join-accounted (Add before spawn, deferred Done) or an annotated detach",
	Prepare: prepareCallGraph,
	Run:     runGoLifecycle,
}

func lifecycleScoped(pass *Pass) bool {
	path := pass.Pkg.Path()
	for _, p := range LifecyclePrefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return pass.Index.Lifecycle(path)
}

func runGoLifecycle(pass *Pass) {
	if !lifecycleScoped(pass) {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			outer := collectWgOps(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkOneGo(pass, g, outer)
				}
				return true
			})
		}
	}
}

// spawnDone is one Done the spawned frame is known to execute.
type spawnDone struct {
	class    string
	deferred bool
	pos      token.Pos
}

func checkOneGo(pass *Pass, g *ast.GoStmt, outer []wgRecord) {
	if pass.Index.Detached(pass.Fset.Position(g.Pos())) {
		return
	}
	var done []spawnDone
	var insideAdds []wgRecord

	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		for _, op := range collectWgOps(pass, lit.Body) {
			switch op.name {
			case "Done":
				done = append(done, spawnDone{class: op.class, deferred: op.deferred, pos: op.pos})
			case "Add":
				insideAdds = append(insideAdds, op)
			}
		}
		// One hop deeper: a static in-module call in the goroutine body
		// contributes its callee's Done summary (go func() { worker(&wg) }).
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			done = appendSummaryDones(pass, done, call)
			return true
		})
	} else {
		// go worker(&wg): the callee's own summary is the evidence.
		done = appendSummaryDones(pass, done, g.Call)
	}

	for _, a := range insideAdds {
		if classJoined(outer, a.class) {
			pass.Reportf(a.pos, "WaitGroup.Add inside the spawned goroutine races with the spawner's Wait; Add before the go statement")
		}
	}

	if len(done) == 0 {
		pass.Reportf(g.Pos(), "goroutine is not join-accounted: no WaitGroup.Done on its exit paths and no //rasql:detach justification")
		return
	}

	checked := map[string]bool{}
	for _, d := range done {
		if checked[d.class] {
			continue
		}
		checked[d.class] = true
		before, after := matchAdd(outer, d.class, g.Pos())
		switch {
		case before:
		case after:
			pass.Reportf(g.Pos(), "WaitGroup.Add for the goroutine's Done happens after the spawn; Add must precede the go statement")
		default:
			pass.Reportf(g.Pos(), "goroutine calls Done on a WaitGroup the spawning function never Adds to before the spawn")
		}
		if !classDeferred(done, d.class) {
			pass.Reportf(d.pos, "WaitGroup.Done is not deferred: a panic in the goroutine skips it and leaks the spawner's Wait")
		}
	}
}

// appendSummaryDones folds the Done summary of a static in-module callee
// into the spawned frame's evidence.
func appendSummaryDones(pass *Pass, done []spawnDone, call *ast.CallExpr) []spawnDone {
	fn := calleeFunc(pass, call)
	if fn == nil || !sameModule(pass.Pkg.Path(), fn.Pkg()) {
		return done
	}
	s := pass.Index.WgSummary(ObjKey(fn))
	if s == nil {
		return done
	}
	for _, c := range s.DeferredDone {
		done = append(done, spawnDone{class: c, deferred: true, pos: call.Pos()})
	}
	for _, c := range s.PlainDone {
		done = append(done, spawnDone{class: c, deferred: false, pos: call.Pos()})
	}
	return done
}

// matchAdd finds the spawner's Add calls for a Done class, split by
// whether they precede the go statement. Exact class matches win; when the
// Done class is a local or parameter waitgroup with no exact match
// (`go worker(&wg)` renames the class to the callee's parameter), any
// local-class Add in the spawner is accepted.
func matchAdd(outer []wgRecord, class string, spawn token.Pos) (before, after bool) {
	exact := false
	for _, o := range outer {
		if o.name == "Add" && o.class == class {
			exact = true
			if o.pos < spawn {
				before = true
			} else {
				after = true
			}
		}
	}
	if exact || !looseClass(class) {
		return
	}
	for _, o := range outer {
		if o.name == "Add" && looseClass(o.class) {
			if o.pos < spawn {
				before = true
			} else {
				after = true
			}
		}
	}
	return
}

func looseClass(class string) bool {
	return class == "" || strings.HasPrefix(class, "local@")
}

// classJoined reports whether the spawning function itself participates in
// the class's join (any Add or Wait on it outside the goroutine).
func classJoined(outer []wgRecord, class string) bool {
	for _, o := range outer {
		if o.class == class || (looseClass(class) && looseClass(o.class)) {
			return true
		}
	}
	return false
}

// classDeferred reports whether any Done recorded for the class is
// deferred (one deferred Done covers the panic path; extra plain Dones on
// early returns are then fine).
func classDeferred(done []spawnDone, class string) bool {
	for _, d := range done {
		if d.class == class && d.deferred {
			return true
		}
	}
	return false
}
