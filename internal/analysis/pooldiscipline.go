package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolDiscipline verifies sync.Pool usage: a pooled value obtained from
// Get (directly, or through an accessor annotated //rasql:pool-get) must
// be returned with a matching Put — direct, deferred, or on both arms of
// an if/else — with no early return leaking it in between, and must not be
// used after the Put. A leaked buffer silently degrades the pool back to
// per-call allocation; a use after Put is a data race with the next Get.
//
// Ownership transfers (the shuffle's Add encodes into a pooled buffer that
// FetchTarget recycles later) are declared at the Get site:
//
//	bp := getEncBuf() //rasql:allow pooldiscipline -- ownership moves to encBucket; FetchTarget recycles
//
// The path analysis is block-structured and intentionally conservative:
// a Put that only happens on one arm of a branch, or inside a nested loop,
// does not count as guaranteed.
var PoolDiscipline = &Analyzer{
	Name: "pooldiscipline",
	Code: "RL003",
	Doc:  "sync.Pool Get must pair with Put on every path, with no use after Put",
	Run:  runPoolDiscipline,
}

func runPoolDiscipline(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ann := pass.Index.DeclAnnots(FuncKey(pass.Pkg.Path(), declRecvName(fd), fd.Name.Name))
			if ann != nil && (ann.PoolGet || ann.PoolPut) {
				continue // the accessor definitions themselves are exempt
			}
			pc := &poolCheck{pass: pass}
			pc.walkStmts(fd.Body.List)
		}
	}
}

type poolCheck struct {
	pass *Pass
}

// walkStmts visits every statement list in the body, tracking pooled-value
// lifetimes within the list where the Get occurs.
func (pc *poolCheck) walkStmts(stmts []ast.Stmt) {
	for i, s := range stmts {
		if as, ok := s.(*ast.AssignStmt); ok {
			if v := pc.getTarget(as); v != nil {
				pc.checkLifetime(stmts, i, v)
			}
		}
		if es, ok := s.(*ast.ExprStmt); ok {
			if call := pc.asGetCall(es.X); call != nil {
				pc.pass.Reportf(es.Pos(), "pooled Get result is discarded; bind it to a variable and Put it back")
			}
		}
		pc.walkNested(s)
	}
}

func (pc *poolCheck) walkNested(s ast.Stmt) {
	switch t := s.(type) {
	case *ast.BlockStmt:
		pc.walkStmts(t.List)
	case *ast.IfStmt:
		pc.walkStmts(t.Body.List)
		if t.Else != nil {
			pc.walkNested(t.Else)
		}
	case *ast.ForStmt:
		pc.walkStmts(t.Body.List)
	case *ast.RangeStmt:
		pc.walkStmts(t.Body.List)
	case *ast.SwitchStmt:
		pc.walkStmts(t.Body.List)
	case *ast.TypeSwitchStmt:
		pc.walkStmts(t.Body.List)
	case *ast.SelectStmt:
		pc.walkStmts(t.Body.List)
	case *ast.CaseClause:
		pc.walkStmts(t.Body)
	case *ast.CommClause:
		pc.walkStmts(t.Body)
	case *ast.LabeledStmt:
		pc.walkNested(t.Stmt)
	case *ast.ExprStmt:
		if fl, ok := ast.Unparen(t.X).(*ast.FuncLit); ok {
			pc.walkStmts(fl.Body.List)
		}
	case *ast.GoStmt:
		if fl, ok := ast.Unparen(t.Call.Fun).(*ast.FuncLit); ok {
			pc.walkStmts(fl.Body.List)
		}
	}
}

// getTarget returns the variable bound to a pooled Get result, if s is one.
func (pc *poolCheck) getTarget(as *ast.AssignStmt) types.Object {
	if len(as.Rhs) != 1 || len(as.Lhs) == 0 {
		return nil
	}
	if pc.asGetCall(as.Rhs[0]) == nil {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		pc.pass.Reportf(as.Pos(), "pooled Get result must be bound to a variable so its Put can be checked")
		return nil
	}
	if obj := pc.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pc.pass.Info.Uses[id]
}

// asGetCall unwraps e (through type assertions) to a sync.Pool Get or
// annotated pool-get accessor call.
func (pc *poolCheck) asGetCall(e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(pc.pass, call)
	if fn == nil {
		return nil
	}
	if isSyncPoolMethod(fn, "Get") {
		return call
	}
	if ann := pc.pass.Index.FuncAnnots(fn); ann != nil && ann.PoolGet {
		return call
	}
	return nil
}

// putFor reports whether stmt is a direct or deferred Put of v, and which.
func (pc *poolCheck) putFor(s ast.Stmt, v types.Object) (isPut, isDefer bool) {
	switch t := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(t.X).(*ast.CallExpr); ok {
			return pc.callPuts(call, v), false
		}
	case *ast.DeferStmt:
		return pc.callPuts(t.Call, v), pc.callPuts(t.Call, v)
	}
	return false, false
}

func (pc *poolCheck) callPuts(call *ast.CallExpr, v types.Object) bool {
	fn := calleeFunc(pc.pass, call)
	if fn == nil || len(call.Args) == 0 {
		return false
	}
	isPutCall := isSyncPoolMethod(fn, "Put")
	if !isPutCall {
		if ann := pc.pass.Index.FuncAnnots(fn); ann != nil && ann.PoolPut {
			isPutCall = true
		}
	}
	if !isPutCall {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		arg = ast.Unparen(ue.X)
	}
	id, ok := arg.(*ast.Ident)
	return ok && pc.objOf(id) == v
}

func (pc *poolCheck) objOf(id *ast.Ident) types.Object {
	if obj := pc.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pc.pass.Info.Defs[id]
}

// guaranteesPut reports whether the statement unconditionally puts v: a
// direct or deferred Put, or an if/else whose both arms guarantee it.
func (pc *poolCheck) guaranteesPut(s ast.Stmt, v types.Object) (ok, isDefer bool) {
	if put, def := pc.putFor(s, v); put {
		return true, def
	}
	if ifs, isIf := s.(*ast.IfStmt); isIf && ifs.Else != nil {
		thenOK := pc.listGuaranteesPut(ifs.Body.List, v)
		var elseOK bool
		switch e := ifs.Else.(type) {
		case *ast.BlockStmt:
			elseOK = pc.listGuaranteesPut(e.List, v)
		case *ast.IfStmt:
			elseOK, _ = pc.guaranteesPut(e, v)
		}
		return thenOK && elseOK, false
	}
	return false, false
}

func (pc *poolCheck) listGuaranteesPut(stmts []ast.Stmt, v types.Object) bool {
	for _, s := range stmts {
		if ok, _ := pc.guaranteesPut(s, v); ok {
			return true
		}
	}
	return false
}

// checkLifetime enforces the Get/Put discipline for v, bound at stmts[i].
func (pc *poolCheck) checkLifetime(stmts []ast.Stmt, i int, v types.Object) {
	getPos := stmts[i].Pos()
	putIdx, putIsDefer := -1, false
	for j := i + 1; j < len(stmts); j++ {
		if ok, def := pc.guaranteesPut(stmts[j], v); ok {
			putIdx, putIsDefer = j, def
			break
		}
	}
	if putIdx < 0 {
		pc.pass.Reportf(getPos, "pooled value %s has no Put guaranteed in this block; Put it on every path, or declare the ownership transfer with //rasql:allow pooldiscipline -- <where it is recycled>", v.Name())
		return
	}
	// No path between Get and Put may leave the function.
	for j := i + 1; j < putIdx; j++ {
		ast.Inspect(stmts[j], func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if ret, isRet := n.(*ast.ReturnStmt); isRet {
				pc.pass.Reportf(ret.Pos(), "return leaks pooled value %s (Put comes later in the block)", v.Name())
			}
			return true
		})
	}
	// After a non-deferred Put the value belongs to the pool again.
	if !putIsDefer {
		for j := putIdx + 1; j < len(stmts); j++ {
			ast.Inspect(stmts[j], func(n ast.Node) bool {
				if id, isID := n.(*ast.Ident); isID && pc.objOf(id) == v {
					pc.pass.Reportf(id.Pos(), "pooled value %s used after Put; the pool may have handed it to another goroutine", v.Name())
				}
				return true
			})
		}
	}
}

func isSyncPoolMethod(fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Pool"
}
