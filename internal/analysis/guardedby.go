package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GuardedBy enforces //rasql:guardedby=<mutex-field>: every access to the
// annotated field must happen while the named sync.Mutex/RWMutex on the
// same struct is provably held. A lock is provably held when it is
// acquired earlier in the same function (and not yet released — deferred
// unlocks hold to function end), or when the enclosing method is annotated
// //rasql:locked=<mutex-field>, which moves the proof obligation to its
// callers. Reads are satisfied by the read lock of an RWMutex; writes —
// assignments, map stores and deletes, ++/--, and address-taking — need
// the write lock.
//
// The held-lock reconstruction is a position-ordered linear scan per
// function, keyed by the spelled receiver expression (the `c.mu` of
// `c.mu.Lock()` guards accesses through base `c`). Construction through
// composite literals ({tables: m}) uses field keys, not selectors, so
// building an unshared value needs no lock — which is exactly the
// published/unpublished distinction the engine relies on.
//
// The analyzer also validates the annotations themselves in the declaring
// package: naming a field that does not exist, or one that is not a
// sync.Mutex/RWMutex, is a diagnostic.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Code: "RL005",
	Doc:  "fields annotated //rasql:guardedby=<mutex> are only accessed with the mutex held (read lock for reads)",
	Run:  runGuardedBy,
}

const (
	gbLock = iota
	gbUnlock
	gbAccess
	gbLockedCall
)

// gbEvent is one lock-state-relevant occurrence inside a function,
// replayed in source-position order.
type gbEvent struct {
	pos  token.Pos
	kind int
	// lockKey is the spelled lock identity ("c.mu") for lock ops and the
	// required lock for accesses and locked calls.
	lockKey string
	// read distinguishes RLock/RUnlock and read accesses.
	read bool
	// field and mu name the accessed field and its guard, for messages.
	field, mu string
	// callee names the locked-annotated function being called.
	callee string
}

type gbHeld struct{ w, r int }

func runGuardedBy(pass *Pass) {
	checkGuardAnnotations(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncGuards(pass, fd)
		}
	}
}

func checkFuncGuards(pass *Pass, fd *ast.FuncDecl) {
	events := collectGuardEvents(pass, fd.Body)
	if len(events) == 0 {
		return
	}
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]gbHeld{}
	// //rasql:locked=<mu> seeds the receiver's mutex as exclusively held.
	if ann := pass.Index.DeclAnnots(FuncKey(pass.Pkg.Path(), declRecvName(fd), fd.Name.Name)); ann != nil {
		if recv := recvIdentName(fd); recv != "" {
			for _, mu := range ann.Locked {
				held[recv+"."+mu] = gbHeld{w: 1}
			}
		}
	}

	for _, ev := range events {
		h := held[ev.lockKey]
		switch ev.kind {
		case gbLock:
			if ev.read {
				h.r++
			} else {
				h.w++
			}
			held[ev.lockKey] = h
		case gbUnlock:
			if ev.read {
				h.r--
			} else {
				h.w--
			}
			held[ev.lockKey] = h
		case gbAccess:
			switch {
			case ev.read && h.w <= 0 && h.r <= 0:
				pass.Reportf(ev.pos, "read of %s (guarded by %s) without holding %s", ev.field, ev.mu, ev.lockKey)
			case !ev.read && h.w <= 0 && h.r > 0:
				pass.Reportf(ev.pos, "write to %s (guarded by %s) requires the write lock, but %s is only read-locked", ev.field, ev.mu, ev.lockKey)
			case !ev.read && h.w <= 0:
				pass.Reportf(ev.pos, "write to %s (guarded by %s) without holding %s", ev.field, ev.mu, ev.lockKey)
			}
		case gbLockedCall:
			if h.w <= 0 {
				pass.Reportf(ev.pos, "%s requires %s held exclusively (it is //rasql:locked=%s)", ev.callee, ev.lockKey, ev.mu)
			}
		}
	}
}

func collectGuardEvents(pass *Pass, body *ast.BlockStmt) []gbEvent {
	var events []gbEvent
	walkWithStack(body, func(stack []ast.Node, n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if op, ok := asMutexOp(pass, stack, n); ok {
				if op.deferred {
					return // deferred unlocks hold to function end
				}
				kind := gbUnlock
				if op.acquire() {
					kind = gbLock
				}
				events = append(events, gbEvent{
					pos: n.Pos(), kind: kind,
					lockKey: types.ExprString(op.recv), read: op.read(),
				})
				return
			}
			callee := calleeFunc(pass, n)
			ann := pass.Index.FuncAnnots(callee)
			if ann == nil || len(ann.Locked) == 0 {
				return
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			for _, mu := range ann.Locked {
				events = append(events, gbEvent{
					pos: n.Pos(), kind: gbLockedCall,
					lockKey: types.ExprString(sel.X) + "." + mu,
					mu:      mu, callee: callee.Name(),
				})
			}
		case *ast.SelectorExpr:
			key := fieldAccessKey(pass, n)
			if key == "" {
				return
			}
			mu := pass.Index.GuardedBy(key)
			if mu == "" {
				return
			}
			events = append(events, gbEvent{
				pos: n.Sel.Pos(), kind: gbAccess,
				lockKey: types.ExprString(n.X) + "." + mu,
				read:    !isWriteAccess(stack, n),
				field:   n.Sel.Name, mu: mu,
			})
		}
	})
	return events
}

// isWriteAccess climbs from the selector through index/paren chains to
// decide whether the access mutates (or escapes the address of) the field.
func isWriteAccess(stack []ast.Node, sel *ast.SelectorExpr) bool {
	var cur ast.Expr = sel
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
		case *ast.IndexExpr:
			if p.X != cur {
				return false // the field is the index, i.e. a read
			}
			cur = p
		case *ast.SelectorExpr:
			return false // drilling further: this level is a read
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == cur
		case *ast.UnaryExpr:
			return p.Op == token.AND && p.X == cur
		case *ast.CallExpr:
			if id, ok := p.Fun.(*ast.Ident); ok && id.Name == "delete" && len(p.Args) > 0 && p.Args[0] == cur {
				return true
			}
			return false
		default:
			return false
		}
	}
	return false
}

func recvIdentName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// checkGuardAnnotations validates //rasql:guardedby and //rasql:locked in
// the declaring package: the named mutex must exist on the struct and be a
// sync.Mutex or sync.RWMutex.
func checkGuardAnnotations(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				checkStructGuards(pass, d)
			case *ast.FuncDecl:
				checkLockedAnnotation(pass, d)
			}
		}
	}
}

func checkStructGuards(pass *Pass, d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				mu := pass.Index.GuardedBy(FieldKey(pass.Pkg.Path(), ts.Name.Name, name.Name))
				if mu == "" {
					continue
				}
				if msg := validateGuard(pass, st, mu); msg != "" {
					pass.Reportf(name.Pos(), "//rasql:guardedby=%s on %s.%s: %s", mu, ts.Name.Name, name.Name, msg)
				}
			}
		}
	}
}

func checkLockedAnnotation(pass *Pass, fd *ast.FuncDecl) {
	ann := pass.Index.DeclAnnots(FuncKey(pass.Pkg.Path(), declRecvName(fd), fd.Name.Name))
	if ann == nil || len(ann.Locked) == 0 {
		return
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		pass.Reportf(fd.Pos(), "//rasql:locked=%s on %s: the annotation names a receiver mutex field, but %s has no receiver", strings.Join(ann.Locked, ","), fd.Name.Name, fd.Name.Name)
		return
	}
	recvType := pass.typeOf(fd.Recv.List[0].Type)
	st := structUnder(recvType)
	for _, mu := range ann.Locked {
		if msg := validateGuardType(st, mu); msg != "" {
			pass.Reportf(fd.Pos(), "//rasql:locked=%s on %s: %s", mu, fd.Name.Name, msg)
		}
	}
}

func validateGuard(pass *Pass, st *ast.StructType, mu string) string {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != mu {
				continue
			}
			if !isMutexType(pass.typeOf(field.Type)) {
				return fmt.Sprintf("%s is not a sync.Mutex or sync.RWMutex", mu)
			}
			return ""
		}
	}
	return fmt.Sprintf("the struct has no field named %s", mu)
}

func validateGuardType(st *types.Struct, mu string) string {
	if st == nil {
		return "the receiver is not a struct"
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() != mu {
			continue
		}
		if !isMutexType(st.Field(i).Type()) {
			return fmt.Sprintf("%s is not a sync.Mutex or sync.RWMutex", mu)
		}
		return ""
	}
	return fmt.Sprintf("the receiver struct has no field named %s", mu)
}
