package analysis

import (
	"go/token"
	"strings"
	"testing"
)

var outputDiags = []Diagnostic{
	{
		Pos:      token.Position{Filename: "cluster/shuffle.go", Line: 42, Column: 7},
		Analyzer: "guardedby",
		Code:     "RL005",
		Message:  "read of n (guarded by mu) without holding c.mu",
	},
	{
		Pos:      token.Position{Filename: "cluster/pool.go", Line: 9, Column: 2},
		Analyzer: "atomicmix",
		Code:     "RL007",
		Message:  `plain access of "quoted", which is accessed via sync/atomic at pool.go:3:1; every access must go through sync/atomic`,
	},
	{
		Pos:      token.Position{Filename: "types/encode.go", Line: 151, Column: 9},
		Analyzer: "noalloc",
		Code:     "RL008",
		Message:  "types.DecodeRowsAppend is annotated //rasql:noalloc but calls fmt.Sprintf, not known to be allocation-free",
	},
	{
		Pos:      token.Position{Filename: "cluster/relaxed.go", Line: 270, Column: 3},
		Analyzer: "golifecycle",
		Code:     "RL009",
		Message:  "goroutine is not join-accounted: no WaitGroup.Done on its exit paths and no //rasql:detach justification",
	},
}

func TestRenderHumanGolden(t *testing.T) {
	var b strings.Builder
	if err := RenderHuman(&b, outputDiags); err != nil {
		t.Fatal(err)
	}
	want := "cluster/shuffle.go:42:7: guardedby: read of n (guarded by mu) without holding c.mu\n" +
		"cluster/pool.go:9:2: atomicmix: plain access of \"quoted\", which is accessed via sync/atomic at pool.go:3:1; every access must go through sync/atomic\n" +
		"types/encode.go:151:9: noalloc: types.DecodeRowsAppend is annotated //rasql:noalloc but calls fmt.Sprintf, not known to be allocation-free\n" +
		"cluster/relaxed.go:270:3: golifecycle: goroutine is not join-accounted: no WaitGroup.Done on its exit paths and no //rasql:detach justification\n"
	if got := b.String(); got != want {
		t.Errorf("human output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := RenderJSON(&b, outputDiags); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "file": "cluster/shuffle.go",
    "line": 42,
    "col": 7,
    "analyzer": "guardedby",
    "code": "RL005",
    "message": "read of n (guarded by mu) without holding c.mu"
  },
  {
    "file": "cluster/pool.go",
    "line": 9,
    "col": 2,
    "analyzer": "atomicmix",
    "code": "RL007",
    "message": "plain access of \"quoted\", which is accessed via sync/atomic at pool.go:3:1; every access must go through sync/atomic"
  },
  {
    "file": "types/encode.go",
    "line": 151,
    "col": 9,
    "analyzer": "noalloc",
    "code": "RL008",
    "message": "types.DecodeRowsAppend is annotated //rasql:noalloc but calls fmt.Sprintf, not known to be allocation-free"
  },
  {
    "file": "cluster/relaxed.go",
    "line": 270,
    "col": 3,
    "analyzer": "golifecycle",
    "code": "RL009",
    "message": "goroutine is not join-accounted: no WaitGroup.Done on its exit paths and no //rasql:detach justification"
  }
]
`
	if got := b.String(); got != want {
		t.Errorf("json output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRenderJSONEmpty pins that zero findings render as an empty array,
// not null: consumers can always range over the result.
func TestRenderJSONEmpty(t *testing.T) {
	var b strings.Builder
	if err := RenderJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "[]\n" {
		t.Errorf("empty json output = %q, want %q", got, "[]\n")
	}
}
