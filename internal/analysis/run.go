package analysis

import (
	"go/token"
	"sort"
)

// BuildIndex scans every loaded package's annotations into one
// whole-program index and seeds the built-in deterministic package list.
func BuildIndex(fset *token.FileSet, pkgs []*LoadedPackage) *Index {
	ix := NewIndex()
	for _, p := range pkgs {
		ix.ScanPackage(fset, p.ImportPath, p.Files)
	}
	return ix
}

// PreparePackage runs every Prepare hook over one package, recording
// program-scope evidence into the index. Packages must be prepared in
// dependency order so inter-procedural summaries (transitive lock
// acquisitions) see their callees' entries.
func PreparePackage(fset *token.FileSet, pkg *LoadedPackage, ix *Index, analyzers []*Analyzer) {
	for _, a := range analyzers {
		if a.Prepare == nil {
			continue
		}
		a.Prepare(&Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Index:    ix,
			report:   func(token.Pos, string) {},
		})
	}
}

// RunPackage executes the per-package analyzers over one package,
// returning the surviving (non-suppressed) diagnostics unsorted.
func RunPackage(fset *token.FileSet, pkg *LoadedPackage, ix *Index, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Index:    ix,
		}
		pass.report = reportInto(fset, ix, a, &out)
		a.Run(pass)
	}
	return out
}

// RunProgramAnalyzers executes the program-scope hooks once against the
// fully merged index. Diagnostics anchor at positions recorded by Prepare.
func RunProgramAnalyzers(fset *token.FileSet, ix *Index, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &Pass{Analyzer: a, Fset: fset, Index: ix}
		pass.report = reportInto(fset, ix, a, &out)
		a.RunProgram(pass)
	}
	return out
}

func reportInto(fset *token.FileSet, ix *Index, a *Analyzer, out *[]Diagnostic) func(token.Pos, string) {
	return func(pos token.Pos, msg string) {
		p := fset.Position(pos)
		if ix.Allowed(a.Name, p) {
			return
		}
		*out = append(*out, Diagnostic{Pos: p, Analyzer: a.Name, Code: a.Code, Message: msg})
	}
}

// Run executes the analyzers over every package against a whole-program
// annotation index, returning diagnostics sorted by position. Malformed
// allow comments are reported alongside analyzer findings.
func Run(fset *token.FileSet, pkgs []*LoadedPackage, analyzers []*Analyzer) []Diagnostic {
	ix := BuildIndex(fset, pkgs)
	out := ix.MalformedAllows(fset)
	for _, p := range pkgs {
		PreparePackage(fset, p, ix, analyzers)
	}
	for _, p := range pkgs {
		out = append(out, RunPackage(fset, p, ix, analyzers)...)
	}
	out = append(out, RunProgramAnalyzers(fset, ix, analyzers)...)
	sort.Slice(out, func(i, j int) bool { return positionLess(out[i].Pos, out[j].Pos) })
	return out
}
