package analysis

import (
	"go/token"
	"sort"
)

// BuildIndex scans every loaded package's annotations into one
// whole-program index and seeds the built-in deterministic package list.
func BuildIndex(fset *token.FileSet, pkgs []*LoadedPackage) *Index {
	ix := NewIndex()
	for _, p := range pkgs {
		ix.ScanPackage(fset, p.ImportPath, p.Files)
	}
	return ix
}

// RunPackage executes the analyzers over one package, returning the
// surviving (non-suppressed) diagnostics unsorted.
func RunPackage(fset *token.FileSet, pkg *LoadedPackage, ix *Index, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Index:    ix,
		}
		pass.report = func(pos token.Pos, msg string) {
			p := fset.Position(pos)
			if ix.Allowed(a.Name, p) {
				return
			}
			out = append(out, Diagnostic{Pos: p, Analyzer: a.Name, Message: msg})
		}
		a.Run(pass)
	}
	return out
}

// Run executes the analyzers over every package against a whole-program
// annotation index, returning diagnostics sorted by position. Malformed
// allow comments are reported alongside analyzer findings.
func Run(fset *token.FileSet, pkgs []*LoadedPackage, analyzers []*Analyzer) []Diagnostic {
	ix := BuildIndex(fset, pkgs)
	out := ix.MalformedAllows(fset)
	for _, p := range pkgs {
		out = append(out, RunPackage(fset, p, ix, analyzers)...)
	}
	sort.Slice(out, func(i, j int) bool { return positionLess(out[i].Pos, out[j].Pos) })
	return out
}
