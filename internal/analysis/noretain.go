package analysis

import (
	"go/ast"
	"go/types"
)

// NoRetain verifies functions annotated //rasql:noretain [params]: the
// named slice parameters (all parameters when none are named) must not be
// retained anywhere that outlives the call. The shuffle recycles encode
// buffers the moment DecodeRowsAppend returns, so a retained input slab is
// silent data corruption one refactor away.
//
// The check is a conservative flow-insensitive taint walk over the
// function body: parameter-derived values (the parameter, its subslices,
// anything assigned from them) must not be stored into package-level
// variables, struct fields, map/slice elements, closures, channels, or
// return values, and may only be passed on to callees that are themselves
// annotated //rasql:noretain for that parameter (or to the pure decoders
// of encoding/binary and the len/cap/copy builtins). Copies launder taint:
// string(buf) and indexing a byte out of buf produce fresh values.
var NoRetain = &Analyzer{
	Name: "noretain",
	Code: "RL002",
	Doc:  "annotated functions must not retain their parameter-derived slices",
	Run:  runNoRetain,
}

// safeCalleePkgs are packages whose functions are known not to retain
// slice arguments (pure decoders).
var safeCalleePkgs = map[string]bool{
	"encoding/binary": true,
}

func runNoRetain(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ann := pass.Index.DeclAnnots(FuncKey(pass.Pkg.Path(), declRecvName(fd), fd.Name.Name))
			if ann == nil || !ann.HasNoRetain {
				continue
			}
			nr := &noretainCheck{pass: pass, fn: fd, tainted: map[types.Object]bool{}}
			nr.seed(ann)
			if len(nr.tainted) == 0 {
				continue
			}
			nr.propagate()
			nr.check()
		}
	}
}

type noretainCheck struct {
	pass    *Pass
	fn      *ast.FuncDecl
	tainted map[types.Object]bool
	changed bool
}

// seed taints the annotated parameters.
func (nr *noretainCheck) seed(ann *FuncAnnots) {
	for _, field := range nr.fn.Type.Params.List {
		for _, name := range field.Names {
			if !ann.NoRetainCovers(name.Name) {
				continue
			}
			if obj := nr.pass.Info.Defs[name]; obj != nil && typeRetains(obj.Type()) {
				nr.tainted[obj] = true
			}
		}
	}
}

// propagate runs the pure taint transfer to a fixpoint: assignments and
// range clauses whose right side is tainted taint their left side.
func (nr *noretainCheck) propagate() {
	for {
		nr.changed = false
		ast.Inspect(nr.fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				nr.propagateAssign(s)
			case *ast.RangeStmt:
				if nr.taintedExpr(s.X) {
					nr.taintIdent(s.Value) // the key is an index or map key copy
				}
			}
			return true
		})
		if !nr.changed {
			return
		}
	}
}

func (nr *noretainCheck) propagateAssign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		// Multi-value form: x, y := f(tainted). Annotated or allowlisted
		// callees launder; anything else taints every reference-typed LHS.
		if len(s.Rhs) == 1 && nr.taintedExpr(s.Rhs[0]) {
			for _, l := range s.Lhs {
				nr.taintIdent(l)
			}
		}
		return
	}
	for i, r := range s.Rhs {
		if nr.taintedExpr(r) {
			nr.taintIdent(s.Lhs[i])
		}
	}
}

// taintIdent taints a plain local identifier target; non-ident targets are
// stores, handled (reported) by the check phase.
func (nr *noretainCheck) taintIdent(e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := nr.pass.Info.Defs[id]
	if obj == nil {
		obj = nr.pass.Info.Uses[id]
	}
	if obj == nil || !typeRetains(obj.Type()) {
		return
	}
	if isPackageLevel(obj) {
		return // the store itself is reported by the check phase
	}
	if !nr.tainted[obj] {
		nr.tainted[obj] = true
		nr.changed = true
	}
}

// taintedExpr reports whether evaluating e can yield a value sharing
// memory with an annotated parameter. It is pure: violations are reported
// only by the check phase.
func (nr *noretainCheck) taintedExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := nr.pass.Info.Uses[x]
		if obj == nil {
			obj = nr.pass.Info.Defs[x]
		}
		return obj != nil && nr.tainted[obj]
	case *ast.ParenExpr:
		return nr.taintedExpr(x.X)
	case *ast.SliceExpr:
		return nr.taintedExpr(x.X)
	case *ast.StarExpr:
		return nr.taintedExpr(x.X)
	case *ast.TypeAssertExpr:
		return nr.taintedExpr(x.X)
	case *ast.IndexExpr:
		// Loading an element copies it; only reference-typed elements
		// keep pointing into the parameter's memory.
		return nr.taintedExpr(x.X) && typeRetains(nr.exprType(e))
	case *ast.SelectorExpr:
		return nr.taintedExpr(x.X) && typeRetains(nr.exprType(e))
	case *ast.UnaryExpr:
		return nr.taintedExpr(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if nr.taintedExpr(elt) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return nr.callTaints(x)
	}
	return false
}

// callTaints decides whether a call result can alias a tainted argument.
func (nr *noretainCheck) callTaints(call *ast.CallExpr) bool {
	// Conversions: string(buf) copies (strings are immutable snapshots of
	// the conversion); slice/named-slice conversions alias.
	if tv, ok := nr.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if basicKind(tv.Type) {
			return false
		}
		return len(call.Args) == 1 && nr.taintedExpr(call.Args[0])
	}
	anyTainted := false
	for _, a := range call.Args {
		if nr.taintedExpr(a) {
			anyTainted = true
			break
		}
	}
	if !anyTainted {
		return false
	}
	if b := nr.builtinName(call); b != "" {
		switch b {
		case "len", "cap", "copy", "min", "max":
			return false
		case "append":
			// append copies element values; the result aliases the tainted
			// input only when the destination or a reference-typed element
			// is tainted.
			if nr.taintedExpr(call.Args[0]) {
				return true
			}
			for _, a := range call.Args[1:] {
				if nr.taintedExpr(a) && typeRetains(nr.exprType(a)) && call.Ellipsis == 0 {
					return true
				}
				if call.Ellipsis != 0 && nr.taintedExpr(a) && typeRetains(elemType(nr.exprType(a))) {
					return true
				}
			}
			return false
		}
		return true
	}
	if fn := calleeFunc(nr.pass, call); fn != nil {
		if nr.calleeLaunders(fn, call) {
			return false
		}
	}
	return typeRetains(nr.exprType(call))
}

// calleeLaunders reports whether the callee's contract guarantees tainted
// arguments neither escape nor alias the result: it is annotated
// //rasql:noretain for every tainted argument, or lives in a known-pure
// decoder package.
func (nr *noretainCheck) calleeLaunders(fn *types.Func, call *ast.CallExpr) bool {
	if fn.Pkg() != nil && safeCalleePkgs[fn.Pkg().Path()] {
		return true
	}
	ann := nr.pass.Index.FuncAnnots(fn)
	if ann == nil || !ann.HasNoRetain {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i, a := range call.Args {
		if !nr.taintedExpr(a) {
			continue
		}
		pi := i
		if pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if pi < 0 || !ann.NoRetainCovers(sig.Params().At(pi).Name()) {
			return false
		}
	}
	return true
}

// check is the reporting phase: one walk over the body with the final
// taint set, flagging every escape route.
func (nr *noretainCheck) check() {
	pass := nr.pass
	ast.Inspect(nr.fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			// A closure capturing a tainted variable can outlive the call;
			// one report per captured use, then skip the body (anything
			// else inside it is reachable only through the capture).
			ast.Inspect(s.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil && nr.tainted[obj] {
						pass.Reportf(id.Pos(), "%s: noretain parameter %s is captured by a closure, which may outlive the call", nr.fn.Name.Name, id.Name)
					}
				}
				return true
			})
			return false
		case *ast.AssignStmt:
			nr.checkAssign(s)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if nr.taintedExpr(r) {
					pass.Reportf(r.Pos(), "%s: returns a value derived from a noretain parameter; the caller could retain it after the buffer is recycled", nr.fn.Name.Name)
				}
			}
		case *ast.SendStmt:
			if nr.taintedExpr(s.Value) {
				pass.Reportf(s.Value.Pos(), "%s: sends a noretain-parameter-derived value on a channel", nr.fn.Name.Name)
			}
		case *ast.CallExpr:
			nr.checkCallArgs(s)
		}
		return true
	})
}

func (nr *noretainCheck) checkAssign(s *ast.AssignStmt) {
	report := func(lhs ast.Expr) {
		switch l := lhs.(type) {
		case *ast.Ident:
			obj := nr.pass.Info.Uses[l]
			if obj == nil {
				obj = nr.pass.Info.Defs[l]
			}
			if obj != nil && isPackageLevel(obj) {
				nr.pass.Reportf(s.Pos(), "%s: stores a noretain-parameter-derived slice into package-level variable %s", nr.fn.Name.Name, l.Name)
			}
		default:
			nr.pass.Reportf(s.Pos(), "%s: stores a noretain-parameter-derived slice into a heap-reachable location", nr.fn.Name.Name)
		}
	}
	if len(s.Lhs) != len(s.Rhs) {
		if len(s.Rhs) == 1 && nr.taintedExpr(s.Rhs[0]) {
			for _, l := range s.Lhs {
				report(l)
			}
		}
		return
	}
	for i, r := range s.Rhs {
		if nr.taintedExpr(r) {
			report(s.Lhs[i])
		}
	}
}

// checkCallArgs flags tainted arguments handed to callees that give no
// noretain guarantee.
func (nr *noretainCheck) checkCallArgs(call *ast.CallExpr) {
	if tv, ok := nr.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if b := nr.builtinName(call); b != "" {
		return // builtins never retain (append aliasing handled via taint)
	}
	var taintedArgs []int
	for i, a := range call.Args {
		if nr.taintedExpr(a) {
			taintedArgs = append(taintedArgs, i)
		}
	}
	if len(taintedArgs) == 0 {
		return
	}
	fn := calleeFunc(nr.pass, call)
	if fn != nil && nr.calleeLaunders(fn, call) {
		return
	}
	name := "a function value"
	if fn != nil {
		name = fn.Name()
	}
	nr.pass.Reportf(call.Args[taintedArgs[0]].Pos(), "%s: passes a noretain-parameter-derived slice to %s, which is not annotated //rasql:noretain for it", nr.fn.Name.Name, name)
}

func (nr *noretainCheck) exprType(e ast.Expr) types.Type {
	if tv, ok := nr.pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (nr *noretainCheck) builtinName(call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := nr.pass.Info.Uses[id].(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

// calleeFunc resolves a call's target function object, if static.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// typeRetains reports whether a value of type t can keep other memory
// alive when copied: reference types do, plain scalars (and strings, which
// only arise from copying conversions here) do not.
func typeRetains(t types.Type) bool {
	switch u := t.(type) {
	case nil:
		return true // unknown: be conservative
	case *types.Basic:
		return false
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return typeRetains(u.Elem())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeRetains(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Named:
		return typeRetains(u.Underlying())
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if typeRetains(u.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return true
}

func elemType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	}
	return t
}

func basicKind(t types.Type) bool {
	_, ok := t.Underlying().(*types.Basic)
	return ok
}
