package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// RenderHuman writes diagnostics one per line in the conventional
// file:line:col: analyzer: message form (the Diagnostic String form).
func RenderHuman(w io.Writer, diags []Diagnostic) error {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d); err != nil {
			return err
		}
	}
	return nil
}

// jsonDiagnostic is the stable machine-readable shape of one finding.
// Field names are part of the tool's interface: downstream consumers key
// on code (RL000…) rather than message text.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Code     string `json:"code"`
	Message  string `json:"message"`
}

// RenderJSON writes diagnostics as an indented JSON array (never null:
// zero findings render as []), terminated by a newline.
func RenderJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Code:     d.Code,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
