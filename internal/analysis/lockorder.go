package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrder detects lock-ordering deadlock hazards: it builds the
// inter-procedural acquired-while-held graph — an edge A→B means some code
// path acquires lock B while holding lock A — and reports every cycle,
// naming both (all) acquisition paths in the diagnostic. Two goroutines
// traversing a cycle's edges concurrently can each hold one lock while
// waiting for the other, forever.
//
// Locks are identified by class, not instance: a struct's mutex field is
// "pkgpath.Struct.field" wherever it lives, so acquiring two instances of
// the same class while holding one (a self-edge) is also reported — that
// shape deadlocks as soon as two goroutines pick opposite orders.
//
// The graph is assembled in two layers during Prepare:
//
//   - direct edges: a Lock/RLock while the position-ordered scan (see
//     locks.go) shows another lock held in the same function;
//   - call edges: a call made while holding A, to a function whose
//     transitive acquisition set (closed over the static call graph, and
//     carried across packages as facts) contains B, yields A→B "via" the
//     callee.
//
// Cycles are reported once per distinct lock set, anchored at a local
// edge, after the whole program (or, under go vet, the unit plus its
// dependencies' facts) has been indexed.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Code:       "RL006",
	Doc:        "the acquired-while-held graph across the engine must stay acyclic (deadlock freedom)",
	Prepare:    prepareLockOrder,
	RunProgram: runLockOrderProgram,
}

// loPending is a call made with locks held, resolved into edges once the
// package's transitive acquisition sets are known.
type loPending struct {
	held   []string
	callee string
	short  string
	pos    token.Pos
}

func prepareLockOrder(pass *Pass) {
	direct := map[string][]string{}  // function key -> directly acquired classes
	callees := map[string][]string{} // function key -> called function keys
	var pending []loPending

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := FuncKey(pass.Pkg.Path(), declRecvName(fd), fd.Name.Name)
			scanLockFlow(pass, fd, key, direct, callees, &pending)
		}
	}

	// Close the acquisition sets over the call graph: package-local
	// callees iterate to fixpoint; cross-package callees contribute their
	// already-closed sets from the index (facts, or earlier packages of
	// the dependency-ordered load).
	trans := map[string]map[string]bool{}
	for key, locks := range direct {
		set := map[string]bool{}
		for _, l := range locks {
			set[l] = true
		}
		trans[key] = set
	}
	for changed := true; changed; {
		changed = false
		for key, calls := range callees {
			set := trans[key]
			if set == nil {
				set = map[string]bool{}
				trans[key] = set
			}
			for _, c := range calls {
				var add []string
				if t, ok := trans[c]; ok {
					for l := range t {
						add = append(add, l)
					}
				} else {
					add = pass.Index.Acquires(c)
				}
				for _, l := range add {
					if !set[l] {
						set[l] = true
						changed = true
					}
				}
			}
		}
	}
	for key, set := range trans {
		locks := make([]string, 0, len(set))
		for l := range set {
			locks = append(locks, l)
		}
		sort.Strings(locks)
		pass.Index.SetAcquires(key, locks)
	}

	for _, p := range pending {
		acq := pass.Index.Acquires(p.callee)
		for _, held := range p.held {
			for _, to := range acq {
				pass.Index.AddLockEdge(LockEdge{
					From: held, To: to,
					Pos: p.pos, PosStr: pass.Fset.Position(p.pos).String(),
					Via: p.short, Local: true,
				})
			}
		}
	}
}

// scanLockFlow replays one function body in position order, recording
// direct acquired-while-held edges, the function's direct acquisitions,
// its callees, and calls made under locks.
func scanLockFlow(pass *Pass, fd *ast.FuncDecl, key string, direct, callees map[string][]string, pending *[]loPending) {
	type ev struct {
		pos     token.Pos
		acquire bool
		release bool
		class   string
		callee  string
		short   string
	}
	var events []ev
	walkWithStack(fd.Body, func(stack []ast.Node, n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if op, ok := asMutexOp(pass, stack, call); ok {
			if op.deferred {
				return
			}
			class := lockClass(pass, op.recv)
			if class == "" {
				return
			}
			events = append(events, ev{pos: call.Pos(), acquire: op.acquire(), release: !op.acquire(), class: class})
			return
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return
		}
		events = append(events, ev{pos: call.Pos(), callee: ObjKey(fn), short: fn.Name()})
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]int{}
	for _, e := range events {
		switch {
		case e.acquire:
			for h, n := range held {
				if n > 0 {
					pass.Index.AddLockEdge(LockEdge{
						From: h, To: e.class,
						Pos: e.pos, PosStr: pass.Fset.Position(e.pos).String(),
						Local: true,
					})
				}
			}
			held[e.class]++
			direct[key] = append(direct[key], e.class)
		case e.release:
			held[e.class]--
		default:
			callees[key] = append(callees[key], e.callee)
			var snapshot []string
			for h, n := range held {
				if n > 0 {
					snapshot = append(snapshot, h)
				}
			}
			if len(snapshot) > 0 {
				sort.Strings(snapshot)
				*pending = append(*pending, loPending{held: snapshot, callee: e.callee, short: e.short, pos: e.pos})
			}
		}
	}
}

func runLockOrderProgram(pass *Pass) {
	edges := pass.Index.LockEdges()
	adj := map[string][]int{}
	for i, e := range edges {
		adj[e.From] = append(adj[e.From], i)
	}
	seen := map[string]bool{}
	for i := range edges {
		cycle := closeCycle(edges, adj, i)
		if cycle == nil {
			continue
		}
		key := canonicalCycle(edges, cycle)
		if seen[key] {
			continue
		}
		seen[key] = true
		anchor := localAnchor(edges, cycle)
		if anchor < 0 {
			continue // every edge came from facts; the owning unit reports it
		}
		pass.Reportf(edges[anchor].Pos, "lock ordering cycle: %s", describeCycle(edges, cycle))
	}
}

// closeCycle finds a shortest edge path from edges[start].To back to
// edges[start].From (BFS), returning the full cycle's edge indices, or nil.
func closeCycle(edges []LockEdge, adj map[string][]int, start int) []int {
	from, to := edges[start].From, edges[start].To
	if from == to {
		return []int{start} // self-cycle: re-acquisition of the same class
	}
	prev := map[string]int{to: start}
	queue := []string{to}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, ei := range adj[node] {
			next := edges[ei].To
			if _, ok := prev[next]; ok {
				continue
			}
			prev[next] = ei
			if next == from {
				var path []int
				for n := from; n != to; n = edges[prev[n]].From {
					path = append(path, prev[n])
				}
				// path runs backwards (…→from); prepend the start edge.
				out := []int{start}
				for i := len(path) - 1; i >= 0; i-- {
					out = append(out, path[i])
				}
				return out
			}
			queue = append(queue, next)
		}
	}
	return nil
}

func canonicalCycle(edges []LockEdge, cycle []int) string {
	nodes := map[string]bool{}
	for _, ei := range cycle {
		nodes[edges[ei].From] = true
		nodes[edges[ei].To] = true
	}
	list := make([]string, 0, len(nodes))
	for n := range nodes {
		list = append(list, n)
	}
	sort.Strings(list)
	return strings.Join(list, "\x00")
}

func localAnchor(edges []LockEdge, cycle []int) int {
	for _, ei := range cycle {
		if edges[ei].Local && edges[ei].Pos.IsValid() {
			return ei
		}
	}
	return -1
}

func describeCycle(edges []LockEdge, cycle []int) string {
	if len(cycle) == 1 {
		e := edges[cycle[0]]
		return fmt.Sprintf("%s is acquired at %s while already held%s", e.To, e.PosStr, viaSuffix(e))
	}
	parts := make([]string, 0, len(cycle))
	for _, ei := range cycle {
		e := edges[ei]
		parts = append(parts, fmt.Sprintf("%s is acquired while holding %s at %s%s", e.To, e.From, e.PosStr, viaSuffix(e)))
	}
	return strings.Join(parts, "; ")
}

func viaSuffix(e LockEdge) string {
	if e.Via == "" {
		return ""
	}
	return fmt.Sprintf(" (via call to %s)", e.Via)
}
