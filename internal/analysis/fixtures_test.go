package analysis_test

import (
	"testing"

	"github.com/rasql/rasql-go/internal/analysis"
	"github.com/rasql/rasql-go/internal/analysis/analysistest"
)

// Each fixture package under testdata/src seeds known violations of one
// invariant (plus the idiomatic clean shapes) and pins the exact
// diagnostics with // want comments.

func TestSimclockFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "simclock", analysis.Simclock)
}

func TestNoRetainFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "noretain", analysis.NoRetain)
}

func TestPoolDisciplineFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "pooldiscipline", analysis.PoolDiscipline)
}

func TestWorkerAffinityFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "workeraffinity", analysis.WorkerAffinity)
}

func TestGuardedByFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "guardedby", analysis.GuardedBy)
}

func TestLockOrderFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "lockorder", analysis.LockOrder)
}

func TestAtomicMixFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "atomicmix", analysis.AtomicMix)
}

func TestNoAllocFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "noalloc", analysis.NoAlloc)
}

func TestGoLifecycleFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "golifecycle", analysis.GoLifecycle)
}

// The vet-driver twins re-run the call-graph fixtures through the
// unitchecker plumbing (vet.cfg parse, facts write, full-suite run), so the
// two driver modes are pinned to agree on every diagnostic variant.

func TestNoAllocFixtureVet(t *testing.T) {
	analysistest.RunVet(t, "testdata", "noalloc")
}

func TestGoLifecycleFixtureVet(t *testing.T) {
	analysistest.RunVet(t, "testdata", "golifecycle")
}

// TestAllowFixture runs no analyzer at all: malformed //rasql:allow
// comments are diagnosed by the framework itself.
func TestAllowFixture(t *testing.T) {
	analysistest.Run(t, "testdata", "allow")
}

// TestEngineClean pins the tentpole acceptance criterion in-process: the
// full analyzer suite reports nothing on the engine packages the linter
// was built to guard.
func TestEngineClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-program load is not short")
	}
	pkgs, fset, err := analysis.LoadPackages("../..", ".", "./internal/cluster/...", "./internal/types/...", "./internal/fixpoint/...", "./internal/trace/...", "./internal/sql/...", "./internal/pregel/...", "./internal/gap/...", "./internal/server/...", "./cmd/rasqld/...")
	if err != nil {
		t.Fatalf("loading engine packages: %v", err)
	}
	for _, d := range analysis.Run(fset, pkgs, analysis.All()) {
		t.Errorf("engine package diagnostic: %s", d)
	}
}
