package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
)

// Unitchecker mode: cmd/go invokes the vet tool once per package with a
// JSON config file describing the unit — its files, its resolved import
// map, and the export-data and facts files of its dependencies. This is
// the same contract golang.org/x/tools/go/analysis/unitchecker implements;
// the config schema below mirrors cmd/go/internal/work.vetConfig.

// VetConfig describes a vet invocation for a single package unit.
type VetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string
	ImportMap  map[string]string
	// PackageFile maps resolved import paths to export data files.
	PackageFile map[string]string
	Standard    map[string]bool
	// PackageVetx maps dependency import paths to their facts files.
	PackageVetx map[string]string
	VetxOnly    bool
	// VetxOutput is where this unit's facts must be written.
	VetxOutput                string
	GoVersion                 string
	ModulePath                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes the analyzer suite for one vet.cfg unit, printing
// diagnostics to w. It returns the process exit code: 0 clean, 2 findings,
// 1 operational failure.
func RunUnit(cfgFile string, w io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(w, "rasql-lint: %v\n", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(w, "rasql-lint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	ix := NewIndex()
	for _, vetx := range cfg.PackageVetx {
		if err := mergeFactsFile(ix, vetx); err != nil {
			fmt.Fprintf(w, "rasql-lint: %v\n", err)
			return 1
		}
	}

	// Standard-library and other out-of-module units carry no rasql
	// annotations and are never deterministic-scoped: emit empty facts and
	// skip the (expensive, occasionally cgo-laden) source typecheck.
	if cfg.ModulePath == "" || len(cfg.GoFiles) == 0 {
		if err := writeFactsFile(cfg.VetxOutput, Facts{}); err != nil {
			fmt.Fprintf(w, "rasql-lint: %v\n", err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "rasql-lint: %v\n", err)
		return 1
	}
	ix.ScanPackage(fset, cfg.ImportPath, files)

	// Type-check before exporting facts: the program-scope analyzers
	// (lockorder, atomicmix) derive their facts from type information, so
	// their Prepare hooks must run between the typecheck and the facts
	// write. On a tolerated typecheck failure the unit still exports its
	// annotation facts so dependents keep working.
	resolve := func(path string) string {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return cfg.PackageFile[path]
	}
	info := newInfo()
	conf := types.Config{Importer: newExportImporter(fset, resolve)}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if werr := writeFactsFile(cfg.VetxOutput, ix.ExportFacts(cfg.ImportPath)); werr != nil {
			fmt.Fprintf(w, "rasql-lint: %v\n", werr)
			return 1
		}
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(w, "rasql-lint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	loaded := &LoadedPackage{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}
	PreparePackage(fset, loaded, ix, All())
	if err := writeFactsFile(cfg.VetxOutput, ix.ExportFacts(cfg.ImportPath)); err != nil {
		fmt.Fprintf(w, "rasql-lint: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	diags := ix.MalformedAllows(fset)
	diags = append(diags, RunPackage(fset, loaded, ix, All())...)
	diags = append(diags, RunProgramAnalyzers(fset, ix, All())...)
	sort.Slice(diags, func(i, j int) bool { return positionLess(diags[i].Pos, diags[j].Pos) })
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func mergeFactsFile(ix *Index, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading facts %s: %v", path, err)
	}
	if len(data) == 0 {
		return nil
	}
	var f Facts
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("parsing facts %s: %v", path, err)
	}
	ix.MergeFacts(f)
	return nil
}

func writeFactsFile(path string, f Facts) error {
	if path == "" {
		return nil
	}
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}
