package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader enumerates packages with `go list -deps -export -json` and
// type-checks module packages from source, importing every dependency from
// compiler export data. This gives full go/types information with no
// dependency beyond the go toolchain itself (the x/tools packages loader is
// deliberately not used: the repo carries no third-party modules).

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	Export     string
	GoFiles    []string
	Error      *struct{ Err string }
}

// LoadedPackage is one type-checked module package ready for analysis.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// ExportSet resolves import paths to compiler export data files.
type ExportSet struct {
	files map[string]string
}

// Files exposes the import-path → export-data-file map, the shape a
// unitchecker VetConfig's PackageFile field wants (the analysistest vet
// harness synthesizes configs from it).
func (es *ExportSet) Files() map[string]string { return es.files }

// goList runs `go list -deps -export -json` for the patterns and decodes
// the package stream (dependencies come before dependents).
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Standard,Export,GoFiles,Error",
	}, patterns...)
	out, err := runGoList(dir, args)
	if err != nil {
		return nil, err
	}
	return decodeListStream[listedPackage](out)
}

// runGoList executes one go list invocation and returns its stdout.
func runGoList(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// decodeListStream decodes go list's concatenated-JSON package stream.
func decodeListStream[T any](out []byte) ([]*T, error) {
	var pkgs []*T
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p T
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ListExports builds an export set covering the patterns and all their
// transitive dependencies (the analysistest harness uses this to resolve
// fixture imports).
func ListExports(dir string, patterns ...string) (*ExportSet, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	es := &ExportSet{files: map[string]string{}}
	for _, p := range pkgs {
		if p.Export != "" {
			es.files[p.ImportPath] = p.Export
		}
	}
	return es, nil
}

// importerFor combines source-checked module packages with an export-data
// importer for everything else, so type identities stay consistent across
// the whole load.
type importerFor struct {
	gc  types.Importer
	src map[string]*types.Package
}

func (im *importerFor) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := im.src[path]; ok {
		return p, nil
	}
	return im.gc.Import(path)
}

// newExportImporter returns an importer reading gc export data through the
// resolver (import path -> export data file).
func newExportImporter(fset *token.FileSet, resolve func(string) string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file := resolve(path)
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadPackages loads and type-checks every module package matched by the
// patterns (standard-library dependencies are imported from export data,
// not analyzed). Packages come back in dependency order.
func LoadPackages(dir string, patterns ...string) ([]*LoadedPackage, *token.FileSet, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	im := &importerFor{
		gc:  newExportImporter(fset, func(path string) string { return exports[path] }),
		src: map[string]*types.Package{},
	}
	var out []*LoadedPackage
	for _, p := range listed {
		if p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		info := newInfo()
		conf := types.Config{Importer: im}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		im.src[p.ImportPath] = pkg
		out = append(out, &LoadedPackage{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
		})
	}
	return out, fset, nil
}

// LoadDir parses and type-checks a single directory of Go files as the
// given import path, resolving imports through the export set. The
// analysistest harness loads fixture packages this way.
func LoadDir(dir, importPath string, es *ExportSet) (*LoadedPackage, *token.FileSet, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return nil, nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: newExportImporter(fset, func(path string) string { return es.files[path] })}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	return &LoadedPackage{ImportPath: importPath, Dir: dir, Files: files, Pkg: pkg, Info: info}, fset, nil
}
