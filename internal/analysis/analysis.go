// Package analysis implements rasql-lint: source-level static analysis
// passes that turn the engine's unsafe-by-convention invariants into
// machine-checked properties, complementing the plan-level analyzer in
// internal/sql/vet. Where `rasql vet` certifies properties of a query plan
// (PreM, termination, co-partitioning), the passes here certify properties
// of the engine source itself:
//
//   - simclock: no wall-clock or global math/rand calls in deterministic
//     engine packages, so SimNanos and query results are reproducible;
//   - noretain: functions annotated //rasql:noretain never store their
//     parameter-derived slices into heap-reachable locations, which is what
//     makes immediate buffer recycling behind them safe;
//   - pooldiscipline: every sync.Pool Get is paired with a Put on every
//     return path, and the pooled value is not used after Put;
//   - workeraffinity: functions annotated //rasql:affinity=worker (the
//     shuffle's lock-free Add) are only called from per-worker task bodies
//     or other worker-affine functions, never from fresh goroutines;
//   - guardedby: struct fields annotated //rasql:guardedby=<mutex-field>
//     are only touched while the named mutex on the same struct is provably
//     held — acquired in the same function, or the caller is annotated
//     //rasql:locked=<mutex-field>. Reads may hold the read lock; writes
//     need the write lock;
//   - lockorder: the inter-procedural acquired-while-held graph is acyclic,
//     so no two code paths can acquire the same pair of locks in opposite
//     orders and deadlock;
//   - atomicmix: a variable or field touched through sync/atomic anywhere
//     in the program is never read or written plainly elsewhere, and values
//     of sync/atomic struct types are never copied;
//   - noalloc: functions annotated //rasql:noalloc (the data plane's hot
//     path) reach no heap-allocation site, transitively through in-module
//     calls, on a shared whole-program call graph with a conservative
//     escape classifier;
//   - golifecycle: every `go` statement in engine packages is
//     join-accounted — WaitGroup.Add before the spawn, Done deferred on
//     every exit path — or carries a //rasql:detach justification.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) but is built on the standard library alone:
// packages are enumerated with `go list -deps -export -json` and
// type-checked with go/types, importing dependencies from compiler export
// data. cmd/rasql-lint drives the passes both standalone (`rasql-lint
// ./...`) and as a `go vet -vettool=` unitchecker.
//
// Findings are suppressed with a justification comment on (or immediately
// above) the offending line:
//
//	sh.Add(seed, -1) //rasql:allow workeraffinity -- driver-side seed write before any task runs
//
// The justification after `--` is mandatory; a bare allow is itself a
// diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one invariant checker. The fields mirror
// golang.org/x/tools/go/analysis.Analyzer so the passes could migrate to a
// vendored x/tools multichecker without rewriting.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rasql:allow comments.
	Name string
	// Code is the stable diagnostic code (RL001…) carried into -json
	// output so downstream tooling survives message-text changes.
	Code string
	// Doc describes the invariant the analyzer enforces.
	Doc string
	// Run executes the analyzer over one package. Nil for analyzers that
	// only report at program scope.
	Run func(*Pass)
	// Prepare, if set, runs over every package before any reporting pass
	// and records cross-package evidence (lock-acquisition edges, atomic
	// access sites) into the pass Index. In unitchecker mode it runs over
	// the current unit on top of the dependency facts, and what it records
	// is exported as this unit's facts.
	Prepare func(*Pass)
	// RunProgram, if set, runs once per whole-program load (or once per
	// unit under go vet) after every Prepare, with the Index holding the
	// merged evidence. The pass carries no single package's syntax:
	// Files/Pkg/Info are nil and diagnostics anchor at positions recorded
	// during Prepare.
	RunProgram func(*Pass)
}

// Pass carries one package's syntax and type information to an analyzer,
// plus the cross-package annotation index.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's parsed syntax (comments included).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the package's type-checking results.
	Info *types.Info
	// Index resolves //rasql: annotations, including those exported by
	// dependency packages (via whole-program loading or vetx facts).
	Index *Index

	report func(token.Pos, string)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Code     string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Simclock, NoRetain, PoolDiscipline, WorkerAffinity, GuardedBy, LockOrder, AtomicMix, NoAlloc, GoLifecycle}
}
