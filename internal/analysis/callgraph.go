package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The shared call-graph layer: one Prepare pass, declared by both the
// noalloc and golifecycle analyzers, that records for every function
// declaration in the package
//
//   - its potential heap-allocation sites (a conservative, syntactic
//     escape classifier — see the rules on classifyCall and friends),
//   - its static in-module call sites (the edges noalloc walks
//     transitively), and
//   - its sync.WaitGroup.Done summary (the one-hop evidence golifecycle
//     uses to account `go worker(&wg)`-shaped spawns).
//
// All three are exported as vetx facts, so both driver modes see the same
// whole-program graph: standalone mode prepares every package in
// dependency order, unitchecker mode merges dependency facts before
// preparing the current unit.
//
// The classifier is deliberately conservative: it flags constructs that
// *may* allocate rather than proving that they do. Escape hatches exist at
// both ends — a justified //rasql:allow noalloc on the site suppresses it
// for every caller, and annotating the callee //rasql:noalloc makes it a
// modular proof obligation of its own instead of something re-derived at
// every use.

// noallocSafePkgs are out-of-module packages whose exported functions are
// known allocation-free wholesale (pure arithmetic / atomic primitives).
var noallocSafePkgs = map[string]bool{
	"encoding/binary": true,
	"math":            true,
	"math/bits":       true,
	"sync/atomic":     true,
	"unicode/utf8":    true,
}

// noallocSafeFuncs are individual out-of-module functions and methods
// known allocation-free, keyed by ObjKey. sync.Pool.Get/Put are
// deliberately absent: a pool miss runs New, so pool accessors need a
// per-site justification.
var noallocSafeFuncs = map[string]bool{
	"sync.Mutex.Lock": true, "sync.Mutex.Unlock": true, "sync.Mutex.TryLock": true,
	"sync.RWMutex.Lock": true, "sync.RWMutex.Unlock": true,
	"sync.RWMutex.RLock": true, "sync.RWMutex.RUnlock": true,
	"sync.WaitGroup.Add": true, "sync.WaitGroup.Done": true, "sync.WaitGroup.Wait": true,
	"sync.Cond.Signal": true, "sync.Cond.Broadcast": true, "sync.Cond.Wait": true,
	"sync.Once.Do": true,
	"time.Now":     true, "time.Since": true,
	"bytes.Equal": true, "bytes.Compare": true, "bytes.IndexByte": true,
	"bytes.HasPrefix": true, "bytes.HasSuffix": true,
}

// prepareCallGraph records alloc sites, call edges and WaitGroup summaries
// for every function of the package. Both analyzers built on the graph
// declare it as their Prepare hook; the index guard makes the second
// declaration a no-op, so running either analyzer alone still builds the
// full graph.
func prepareCallGraph(pass *Pass) {
	if pass.Pkg == nil || !pass.Index.callGraphPrepare(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				scanFuncGraph(pass, fd)
			}
		}
	}
}

func scanFuncGraph(pass *Pass, fd *ast.FuncDecl) {
	key := FuncKey(pass.Pkg.Path(), declRecvName(fd), fd.Name.Name)
	derived := derivedBases(pass, fd)
	record := func(pos token.Pos, what string) {
		p := pass.Fset.Position(pos)
		// Allow suppressions apply at record time: a justified site in an
		// unannotated helper must not propagate to annotated callers.
		// (The literal name avoids an initialization cycle with NoAlloc.)
		if pass.Index.Allowed("noalloc", p) {
			return
		}
		pass.Index.AddAllocSite(key, AllocSite{What: what, PosStr: p.String(), Pos: pos, Local: true})
	}
	walkWithStack(fd.Body, func(stack []ast.Node, n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			classifyCall(pass, stack, n, derived, record, key)
		case *ast.CompositeLit:
			classifyCompositeLit(pass, stack, n, record)
		case *ast.FuncLit:
			classifyFuncLit(pass, stack, n, record)
		case *ast.GoStmt:
			record(n.Pos(), "spawns a goroutine (stack allocation)")
		case *ast.AssignStmt:
			classifyAssign(pass, n, record)
		case *ast.ReturnStmt:
			classifyReturn(pass, stack, fd, n, record)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.Info.Types[n]; ok && tv.Value == nil && tv.Type != nil && isStringType(tv.Type.Underlying()) {
					record(n.Pos(), "string concatenation allocates")
				}
			}
		}
	})
	// WaitGroup.Done summary: the function's own direct (or deferred-
	// closure) Dones, recorded sparsely.
	wg := &WgSummary{}
	for _, op := range collectWgOps(pass, fd.Body) {
		if op.name != "Done" {
			continue
		}
		if op.deferred {
			wg.DeferredDone = append(wg.DeferredDone, op.class)
		} else {
			wg.PlainDone = append(wg.PlainDone, op.class)
		}
	}
	if len(wg.DeferredDone)+len(wg.PlainDone) > 0 {
		pass.Index.SetWgSummary(key, wg)
	}
}

// classifyCall handles conversions, builtins, and function calls.
//
// Rules, in order:
//   - type conversions: string↔[]byte/[]rune copy (except the compiler's
//     no-copy m[string(b)] map-index form); conversions to interface box
//     non-pointer-shaped values; all other conversions are free;
//   - builtins: make/new allocate; append allocates unless its destination
//     derives from a parameter or receiver (the caller owns the capacity
//     contract); len/cap/copy/delete are free; panic's boxing is cold-path
//     by definition;
//   - dynamic calls (func values, interface methods): the callee is
//     unknown, so the call is conservatively an allocation site;
//   - static in-module calls: recorded as call-graph edges (plus boxing
//     checks on their interface-typed arguments);
//   - static out-of-module calls: free only when safe-listed.
func classifyCall(pass *Pass, stack []ast.Node, call *ast.CallExpr, derived map[types.Object]bool, record func(token.Pos, string), key string) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		classifyConversion(pass, stack, call, tv.Type, record)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				record(call.Pos(), "make allocates")
			case "new":
				record(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && baseIsDerived(pass, call.Args[0], derived) {
					return
				}
				record(call.Pos(), "append to a slice not derived from a parameter or receiver may grow past capacity")
			}
			return
		}
	}
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Calling a literal is not a dynamic call: the literal's body is
		// scanned in this same frame, and classifyFuncLit decides whether
		// the closure value itself escapes.
		return
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		record(call.Pos(), "dynamic call through a func value: callee not statically known to be allocation-free")
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		record(call.Pos(), "dynamic call through interface method "+fn.Name()+": implementation not statically known")
		return
	}
	classifyCallArgs(pass, call, fn, record)
	callee := ObjKey(fn)
	if sameModule(pass.Pkg.Path(), fn.Pkg()) {
		recordVariadicSlice(pass, call, fn, record)
		p := pass.Fset.Position(call.Pos())
		pass.Index.AddCallEdge(key, CallSite{Callee: callee, PosStr: p.String(), Pos: call.Pos(), Local: true})
		return
	}
	if (fn.Pkg() != nil && noallocSafePkgs[fn.Pkg().Path()]) || noallocSafeFuncs[callee] {
		recordVariadicSlice(pass, call, fn, record)
		return
	}
	record(call.Pos(), "calls "+callee+", not known to be allocation-free")
}

func classifyConversion(pass *Pass, stack []ast.Node, call *ast.CallExpr, dst types.Type, record func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	src := pass.typeOf(call.Args[0])
	if src == nil {
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	switch {
	case isStringType(du) && isCharSlice(su):
		// The compiler elides the copy for m[string(b)] map indexing.
		if len(stack) >= 2 {
			if ix, ok := stack[len(stack)-2].(*ast.IndexExpr); ok && ix.Index == call {
				if t := pass.typeOf(ix.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return
					}
				}
			}
		}
		record(call.Pos(), "[]byte-to-string conversion copies")
	case isCharSlice(du) && isStringType(su):
		record(call.Pos(), "string-to-[]byte conversion copies")
	case boxes(pass, dst, call.Args[0]):
		record(call.Pos(), "conversion boxes the value into an interface")
	}
}

// recordVariadicSlice flags the implicit slice a variadic call builds for
// its trailing arguments (tracer span Args and the like). Only applied to
// calls that pass the other checks — an unsafe out-of-module call is one
// site, not two.
func recordVariadicSlice(pass *Pass, call *ast.CallExpr, fn *types.Func, record func(token.Pos, string)) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return
	}
	if len(call.Args) >= sig.Params().Len() {
		record(call.Pos(), "variadic call builds an implicit argument slice")
	}
}

func classifyCallArgs(pass *Pass, call *ast.CallExpr, fn *types.Func, record func(token.Pos, string)) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, nothing boxed here
			}
			st, _ := params.At(params.Len() - 1).Type().Underlying().(*types.Slice)
			if st == nil {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pass, pt, arg) {
			record(arg.Pos(), "argument boxed into interface parameter allocates")
		}
	}
}

// classifyCompositeLit: slice and map literals always allocate; struct and
// array literals only escape when the program takes their address.
func classifyCompositeLit(pass *Pass, stack []ast.Node, lit *ast.CompositeLit, record func(token.Pos, string)) {
	t := pass.typeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		record(lit.Pos(), "slice literal allocates")
	case *types.Map:
		record(lit.Pos(), "map literal allocates")
	default:
		if len(stack) >= 2 {
			if u, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == lit {
				record(u.Pos(), "&-literal escapes to the heap")
			}
		}
	}
}

// classifyFuncLit: a closure that captures outer variables by reference
// allocates its environment — except when immediately invoked (the
// compiler keeps the frame on the stack) or spawned by a go statement
// (the go statement is already a site of its own).
func classifyFuncLit(pass *Pass, stack []ast.Node, lit *ast.FuncLit, record func(token.Pos, string)) {
	if len(stack) >= 2 {
		if c, ok := stack[len(stack)-2].(*ast.CallExpr); ok && c.Fun == lit {
			if len(stack) >= 3 {
				switch s := stack[len(stack)-3].(type) {
				case *ast.GoStmt:
					if s.Call == c {
						return
					}
				case *ast.DeferStmt:
					if s.Call == c {
						break // deferred closures heap-allocate their captures
					}
				default:
					return // immediately-invoked: stays on the stack
				}
			} else {
				return
			}
		}
	}
	if name := capturedVar(pass, lit); name != "" {
		record(lit.Pos(), "closure captures "+name+" by reference and allocates its environment")
	}
}

func classifyAssign(pass *Pass, as *ast.AssignStmt, record func(token.Pos, string)) {
	for i, lhs := range as.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := pass.typeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					record(lhs.Pos(), "map write may grow the map")
					continue
				}
			}
		}
		if as.Tok == token.ASSIGN && len(as.Lhs) == len(as.Rhs) && i < len(as.Rhs) {
			if boxes(pass, pass.typeOf(lhs), as.Rhs[i]) {
				record(as.Rhs[i].Pos(), "assignment boxes the value into an interface")
			}
		}
	}
}

func classifyReturn(pass *Pass, stack []ast.Node, fd *ast.FuncDecl, ret *ast.ReturnStmt, record func(token.Pos, string)) {
	sig := enclosingSig(pass, stack, fd)
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		if boxes(pass, sig.Results().At(i).Type(), r) {
			record(r.Pos(), "return boxes the value into an interface")
		}
	}
}

// boxes reports whether assigning e to a target of type dst heap-allocates
// an interface box: dst is an interface, and e is a non-constant, non-nil,
// non-interface value whose representation doesn't fit the interface data
// word (pointers, channels, maps and funcs do).
func boxes(pass *Pass, dst types.Type, e ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := pass.Info.Types[e]
	if !ok || tv.IsNil() || tv.Value != nil || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isCharSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// derivedBases computes the function's parameter-derived identifier set: a
// fixpoint over assignments whose right side is a chain of selections,
// indexing, slicing, addressing or appends rooted at a parameter, receiver
// or named result. Appending to such a destination honors the caller's
// capacity contract (types.AppendKey-style append-to-caller-buffer APIs)
// and is exempt from the append rule; call results are never derived.
func derivedBases(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	d := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					d[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	if fd.Type != nil {
		addFields(fd.Type.Params)
		addFields(fd.Type.Results)
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil || d[obj] {
					continue
				}
				if base := baseIdentObj(pass, as.Rhs[i]); base != nil && d[base] {
					d[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return d
}

func baseIsDerived(pass *Pass, e ast.Expr, derived map[types.Object]bool) bool {
	base := baseIdentObj(pass, e)
	return base != nil && derived[base]
}

// baseIdentObj resolves the root identifier of a selection/index/slice/
// address chain ("sh" for &s.shards[i] is s; nil when the chain roots at a
// call or literal).
func baseIdentObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return obj
			}
			return pass.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.CallExpr:
			// append(derived, ...) keeps its base; any other call breaks
			// the derivation.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && len(x.Args) > 0 {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					e = x.Args[0]
					continue
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// capturedVar returns the name of one outer local variable the closure
// references ("" when it captures nothing heap-forcing).
func capturedVar(pass *Pass, lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || isPackageLevel(v) {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = v.Name()
		}
		return true
	})
	return found
}

// enclosingSig resolves the signature of the innermost enclosing function
// on the ancestor stack; returns outside any closure belong to the
// declaration itself (walkWithStack roots at fd.Body, so fd is never on
// the stack).
func enclosingSig(pass *Pass, stack []ast.Node, fd *ast.FuncDecl) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		if n, ok := stack[i].(*ast.FuncLit); ok {
			sig, _ := pass.typeOf(n).(*types.Signature)
			return sig
		}
	}
	if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
		sig, _ := obj.Type().(*types.Signature)
		return sig
	}
	return nil
}

// sameModule reports whether pkg lives in the same module as selfPath,
// by the moduleRoot heuristic.
func sameModule(selfPath string, pkg *types.Package) bool {
	return pkg != nil && moduleRoot(selfPath) == moduleRoot(pkg.Path())
}

// moduleRoot approximates a package's module path: hosted modules
// (github.com/owner/repo/...) keep three segments, single-segment and
// test-fixture modules (rasql.fixture/pkg) keep the first.
func moduleRoot(path string) string {
	parts := strings.SplitN(path, "/", 4)
	if strings.Contains(parts[0], ".") && len(parts) >= 3 {
		return strings.Join(parts[:3], "/")
	}
	return parts[0]
}

// wgRecord is one direct sync.WaitGroup method call inside a function or
// closure body.
type wgRecord struct {
	class    string
	name     string
	deferred bool
	pos      token.Pos
}

// collectWgOps gathers the WaitGroup operations that belong to root's own
// frame: calls outside any nested closure, plus calls inside a directly
// deferred closure (defer func(){ ...; wg.Done() }()), which run on
// every exit path like a direct defer.
func collectWgOps(pass *Pass, root ast.Node) []wgRecord {
	var out []wgRecord
	walkWithStack(root, func(stack []ast.Node, n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		class, name, isWg := wgOp(pass, call)
		if !isWg {
			return
		}
		include, deferred := frameOpContext(stack)
		if !include {
			return
		}
		out = append(out, wgRecord{class: class, name: name, deferred: deferred, pos: call.Pos()})
	})
	return out
}

// frameOpContext decides whether a call on the ancestor stack executes in
// the root frame, and whether it is deferred.
func frameOpContext(stack []ast.Node) (include, deferred bool) {
	nearest := -1
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			nearest = i
			break
		}
	}
	if nearest == -1 {
		if len(stack) >= 2 {
			if d, ok := stack[len(stack)-2].(*ast.DeferStmt); ok {
				return true, d.Call == stack[len(stack)-1]
			}
		}
		return true, false
	}
	if nearest >= 2 {
		if c, ok := stack[nearest-1].(*ast.CallExpr); ok && c.Fun == stack[nearest] {
			if d, ok := stack[nearest-2].(*ast.DeferStmt); ok && d.Call == c {
				return true, true
			}
		}
	}
	return false, false
}

// wgOp recognizes a sync.WaitGroup Add/Done/Wait call, returning the
// waitgroup's lock class (see lockClass).
func wgOp(pass *Pass, call *ast.CallExpr) (class, name string, ok bool) {
	sel, selOk := call.Fun.(*ast.SelectorExpr)
	if !selOk {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
	default:
		return "", "", false
	}
	if !isWaitGroupType(pass.typeOf(sel.X)) {
		return "", "", false
	}
	return lockClass(pass, sel.X), sel.Sel.Name, true
}

func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}
