package analysis

import (
	"go/ast"
	"go/types"
)

// WorkerAffinity enforces //rasql:affinity=worker: the annotated functions
// (the shuffle's lock-free Add, which writes a per-producer shard) rely on
// the caller being pinned to one worker, so every call must come from a
// worker task body — a func literal installed as the Run field of a Task —
// or from another worker-affine function. A call from a freshly spawned
// goroutine, or from an unannotated function, breaks the one-writer-per-
// shard invariant that lets Add skip the mutex.
//
// The check is syntactic over the enclosing-function chain: immediately
// invoked func literals (including deferred ones) are transparent, since
// they run on the caller's goroutine; a literal that is stored or passed
// elsewhere is flagged conservatively because its executing goroutine is
// unknowable here.
var WorkerAffinity = &Analyzer{
	Name: "workeraffinity",
	Code: "RL004",
	Doc:  "worker-affine functions may only be called from Task.Run bodies or other worker-affine functions",
	Run:  runWorkerAffinity,
}

func runWorkerAffinity(pass *Pass) {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			ann := pass.Index.FuncAnnots(fn)
			if ann == nil || !ann.WorkerAffinity {
				return true
			}
			checkAffinity(pass, stack, call, fn)
			return true
		})
	}
}

// checkAffinity walks outward from the call through its enclosing
// functions until it finds a context that settles the question.
func checkAffinity(pass *Pass, stack []ast.Node, call *ast.CallExpr, fn *types.Func) {
	for i := len(stack) - 2; i >= 0; i-- {
		switch node := stack[i].(type) {
		case *ast.FuncDecl:
			key := FuncKey(pass.Pkg.Path(), declRecvName(node), node.Name.Name)
			if a := pass.Index.DeclAnnots(key); a != nil && a.WorkerAffinity {
				return
			}
			pass.Reportf(call.Pos(), "%s is worker-affine (//rasql:affinity=worker); call it from a Task.Run body or another worker-affine function, not from %s", fn.Name(), node.Name.Name)
			return
		case *ast.FuncLit:
			if i == 0 {
				return // malformed tree; nothing to conclude
			}
			switch parent := stack[i-1].(type) {
			case *ast.CallExpr:
				if parent.Fun != node {
					pass.Reportf(call.Pos(), "%s is worker-affine, but this func literal is passed as an argument; its executing goroutine is unknown here", fn.Name())
					return
				}
				// Immediately invoked: runs on whoever invokes it — unless
				// that invocation is a go statement.
				if i >= 2 {
					if g, ok := stack[i-2].(*ast.GoStmt); ok && g.Call == parent {
						pass.Reportf(call.Pos(), "%s is worker-affine; calling it from a freshly spawned goroutine breaks the one-writer-per-shard invariant — move the call into the worker's Task.Run body", fn.Name())
						return
					}
				}
				continue // transparent (plain or deferred invocation)
			case *ast.KeyValueExpr:
				if key, ok := parent.Key.(*ast.Ident); ok && key.Name == "Run" && parent.Value == node && i >= 2 {
					if lit, ok := stack[i-2].(*ast.CompositeLit); ok && isTaskType(pass, lit) {
						return // the worker task body itself
					}
				}
				pass.Reportf(call.Pos(), "%s is worker-affine, but this func literal is stored in a composite literal that is not a Task.Run body", fn.Name())
				return
			default:
				pass.Reportf(call.Pos(), "%s is worker-affine, but this func literal is stored or passed as a value; its executing goroutine is unknown here", fn.Name())
				return
			}
		}
	}
}

// isTaskType reports whether the composite literal builds a value of a
// named type called Task (the cluster's unit of worker-scheduled work).
func isTaskType(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Task"
}
