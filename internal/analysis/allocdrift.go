package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Alloc-contract drift check (`rasql-lint -allocdrift`, code RL010).
//
// The noalloc analyzer proves the static side of the allocation contract:
// an annotated function reaches no allocation site the classifier can see.
// The dynamic side is an AllocsPerRun test or -benchmem benchmark that
// actually runs the function and observes zero (or pinned) allocs/op. The
// two drift apart silently: an annotation added without a bench is an
// unverified claim, and a bench pin left behind after an annotation is
// removed measures a contract nobody states anymore.
//
// The drift check cross-references the two. Every function annotated
// //rasql:noalloc in a non-test file must be named by at least one
// //rasql:allocpin comment in a test file — placed on the AllocsPerRun
// test or benchmark that dynamically exercises it (transitively: a bench
// of DecodeRowsAppend pins decodeRowInto too) — and every pinned name must
// resolve to an annotated function. Names are package-qualified with the
// bare receiver type: types.AppendKey, cluster.keyIndex.getOrInsert.
//
// This is a comment-level pass (parse only, no type checking): pin names
// are strings by design, so a pin can name an unexported function of the
// package under test from an external _test package.

// listedTestPackage is the subset of `go list -json` output the drift
// check reads; unlike the analysis loader it wants test files and does not
// need export data or dependencies.
type listedTestPackage struct {
	Dir          string
	ImportPath   string
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

// AllocDrift loads the matched packages' sources and test files and
// returns one RL010 diagnostic per drift: an annotated-but-unpinned
// function (anchored at its declaration) or a pinned-but-unannotated name
// (anchored at the pin).
func AllocDrift(dir string, patterns ...string) ([]Diagnostic, error) {
	listed, err := goListTests(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	annotated := map[string]token.Position{}
	pinned := map[string][]token.Position{}
	for _, p := range listed {
		if p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			collectNoAllocDecls(fset, f, annotated)
		}
		testFiles, err := parseFiles(fset, p.Dir, append(append([]string{}, p.TestGoFiles...), p.XTestGoFiles...))
		if err != nil {
			return nil, err
		}
		for _, f := range testFiles {
			collectAllocPins(fset, f, pinned)
		}
	}

	var diags []Diagnostic
	for name, pos := range annotated {
		if len(pinned[name]) == 0 {
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Analyzer: "allocdrift",
				Code:     "RL010",
				Message: fmt.Sprintf("%s is annotated //rasql:noalloc but no //rasql:allocpin in a test file names it; pin it on the AllocsPerRun test or benchmark that exercises it", name),
			})
		}
	}
	for name, positions := range pinned {
		if _, ok := annotated[name]; ok {
			continue
		}
		for _, pos := range positions {
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Analyzer: "allocdrift",
				Code:     "RL010",
				Message:  fmt.Sprintf("//rasql:allocpin names %s, which is not annotated //rasql:noalloc (stale pin, or a misspelled name)", name),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// goListTests enumerates the matched packages with their test files (no
// -deps, no export data: the drift check only parses comments).
func goListTests(dir string, patterns ...string) ([]*listedTestPackage, error) {
	args := append([]string{
		"list",
		"-json=Dir,ImportPath,Standard,GoFiles,TestGoFiles,XTestGoFiles,Error",
	}, patterns...)
	out, err := runGoList(dir, args)
	if err != nil {
		return nil, err
	}
	return decodeListStream[listedTestPackage](out)
}

// collectNoAllocDecls records every //rasql:noalloc-annotated function
// declared in the file under its pin name.
func collectNoAllocDecls(fset *token.FileSet, f *ast.File, out map[string]token.Position) {
	pkg := f.Name.Name
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		for _, c := range fd.Doc.List {
			if annotationName(c.Text) == "noalloc" {
				out[pinName(pkg, fd)] = fset.Position(fd.Name.Pos())
				break
			}
		}
	}
}

// collectAllocPins records every name listed by a //rasql:allocpin comment
// anywhere in the file.
func collectAllocPins(fset *token.FileSet, f *ast.File, out map[string][]token.Position) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "//rasql:allocpin")
			if !ok {
				continue
			}
			for _, name := range strings.Fields(rest) {
				out[name] = append(out[name], fset.Position(c.Pos()))
			}
		}
	}
}

// annotationName returns the //rasql:<name> annotation a comment line
// carries ("" when it is not an annotation).
func annotationName(text string) string {
	rest, ok := strings.CutPrefix(strings.TrimSpace(text), "//rasql:")
	if !ok {
		return ""
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// pinName is the package-qualified name an allocpin must use for the
// declaration: pkg.Func, or pkg.Recv.Method with the bare receiver type.
func pinName(pkg string, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if se, ok := t.(*ast.StarExpr); ok {
			t = se.X
		}
		switch x := t.(type) {
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return pkg + "." + id.Name + "." + fd.Name.Name
		}
	}
	return pkg + "." + fd.Name.Name
}
