// Package gen generates the synthetic datasets of the paper's evaluation:
// RMAT power-law graphs (Section 8.1), Erdős–Rényi G(n,p) graphs, grid
// graphs and random trees (Appendix E), plus scaled-down analogs of the
// four real-world graphs of Table 1.
//
// Every generator takes an explicitly seeded *rand.Rand — never the global
// math/rand source (the simclock analyzer bans it engine-wide) — so a
// dataset is a pure function of its seed: Rng(seed) always reproduces the
// same relation. Generators that used to take a seed directly are called
// as, e.g., RMATDefault(n, gen.Rng(seed)), which produces bit-identical
// data to the old form.
package gen

import (
	"math/rand"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
)

// Rng constructs the canonical explicitly seeded generator for a dataset.
// One Rng feeds one generator call; reusing it across calls chains the
// streams (deliberately different data), while fresh Rng(seed) calls
// reproduce the same data.
func Rng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// EdgeSchema is the weighted edge schema edge(Src, Dst, Cost).
func EdgeSchema() types.Schema {
	return types.NewSchema(
		types.Col("Src", types.KindInt),
		types.Col("Dst", types.KindInt),
		types.Col("Cost", types.KindFloat),
	)
}

// PlainEdgeSchema is the unweighted edge schema edge(Src, Dst).
func PlainEdgeSchema() types.Schema {
	return types.NewSchema(
		types.Col("Src", types.KindInt),
		types.Col("Dst", types.KindInt),
	)
}

// RMAT generates an RMAT graph with n vertices and m directed edges using
// recursive quadrant probabilities (a, b, c, 1-a-b-c) — the paper uses
// (0.45, 0.25, 0.15) and m = 10n, with uniform integer weights in [0, 100).
func RMAT(n, m int, a, b, c float64, rng *rand.Rand) *relation.Relation {
	scale := 0
	for 1<<scale < n {
		scale++
	}
	rel := relation.New("edge", EdgeSchema())
	rel.Rows = make([]types.Row, 0, m)
	for i := 0; i < m; i++ {
		src, dst := 0, 0
		for level := 0; level < scale; level++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left quadrant
			case r < a+b:
				dst |= 1 << level
			case r < a+b+c:
				src |= 1 << level
			default:
				src |= 1 << level
				dst |= 1 << level
			}
		}
		src %= n
		dst %= n
		w := float64(rng.Intn(100))
		rel.Append(types.Row{types.Int(int64(src)), types.Int(int64(dst)), types.Float(w)})
	}
	return rel
}

// RMATDefault generates the paper's RMAT-n parameterization: n vertices,
// 10n edges, (a,b,c) = (0.45, 0.25, 0.15).
func RMATDefault(n int, rng *rand.Rand) *relation.Relation {
	return RMAT(n, 10*n, 0.45, 0.25, 0.15, rng)
}

// Erdos generates a directed Erdős–Rényi G(n, p) graph with uniform
// weights, using geometric skip sampling so the cost is proportional to the
// edge count. The paper's G10K-3 is Erdos(10000, 1e-3, ...).
func Erdos(n int, p float64, rng *rand.Rand) *relation.Relation {
	rel := relation.New("edge", EdgeSchema())
	if p <= 0 {
		return rel
	}
	total := int64(n) * int64(n-1)
	pos := int64(0)
	for {
		// Skip ahead geometrically to the next sampled pair.
		skip := int64(rng.ExpFloat64() / p)
		if skip < 0 {
			skip = 0
		}
		pos += skip + 1
		if pos > total {
			return rel
		}
		idx := pos - 1
		src := idx / int64(n-1)
		off := idx % int64(n-1)
		dst := off
		if dst >= src {
			dst++ // skip self-loops
		}
		w := float64(rng.Intn(100))
		rel.Append(types.Row{types.Int(src), types.Int(dst), types.Float(w)})
	}
}

// Grid generates the paper's Grid-k dataset: a (k+1) × (k+1) grid with
// directed right and down edges (Grid150 → 22801 vertices, 45300 edges).
func Grid(k int, rng *rand.Rand) *relation.Relation {
	side := k + 1
	rel := relation.New("edge", EdgeSchema())
	rel.Rows = make([]types.Row, 0, 2*side*k)
	id := func(r, c int) int64 { return int64(r*side + c) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			w := float64(rng.Intn(100))
			if c+1 < side {
				rel.Append(types.Row{types.Int(id(r, c)), types.Int(id(r, c+1)), types.Float(w)})
			}
			if r+1 < side {
				rel.Append(types.Row{types.Int(id(r, c)), types.Int(id(r+1, c)), types.Float(w)})
			}
		}
	}
	return rel
}

// Unweighted strips the Cost column, producing edge(Src, Dst).
func Unweighted(weighted *relation.Relation) *relation.Relation {
	rel := relation.New(weighted.Name, PlainEdgeSchema())
	rel.Rows = make([]types.Row, len(weighted.Rows))
	for i, r := range weighted.Rows {
		rel.Rows[i] = types.Row{r[0], r[1]}
	}
	return rel
}

// Symmetrized returns the graph with every edge duplicated in reverse —
// how undirected graphs are loaded for CC-style label propagation.
func Symmetrized(edges *relation.Relation) *relation.Relation {
	rel := relation.New(edges.Name, edges.Schema)
	rel.Rows = make([]types.Row, 0, 2*len(edges.Rows))
	for _, r := range edges.Rows {
		rel.Append(r)
		rev := r.Clone()
		rev[0], rev[1] = r[1], r[0]
		rel.Append(rev)
	}
	return rel
}

// Tree is a random rooted tree; node 0 is the root and Parent[i] is the
// parent of node i (Parent[0] = -1).
type Tree struct {
	Parent []int32
	// IsLeaf marks nodes with no children.
	IsLeaf []bool
	// Height is the generated height.
	Height int
}

// NewTree generates a random tree level by level, matching the paper's
// Section 8.2 datasets: each internal node has minChild..maxChild children
// and each child turns leaf with probability leafProb, down to the given
// height. maxNodes caps generation (0 = unlimited).
func NewTree(height, minChild, maxChild int, leafProb float64, maxNodes int, rng *rand.Rand) *Tree {
	t := &Tree{Parent: []int32{-1}, IsLeaf: []bool{false}, Height: height}
	frontier := []int32{0}
	for level := 0; level < height && len(frontier) > 0; level++ {
		var next []int32
		for _, p := range frontier {
			if t.IsLeaf[p] {
				continue
			}
			k := minChild
			if maxChild > minChild {
				k += rng.Intn(maxChild - minChild + 1)
			}
			for c := 0; c < k; c++ {
				if maxNodes > 0 && len(t.Parent) >= maxNodes {
					t.fixLeaves()
					return t
				}
				id := int32(len(t.Parent))
				t.Parent = append(t.Parent, p)
				leaf := level+1 >= height || rng.Float64() < leafProb
				t.IsLeaf = append(t.IsLeaf, leaf)
				if !leaf {
					next = append(next, id)
				}
			}
		}
		frontier = next
	}
	t.fixLeaves()
	return t
}

// fixLeaves marks any childless node as a leaf (generation may have been
// cut by maxNodes).
func (t *Tree) fixLeaves() {
	hasChild := make([]bool, len(t.Parent))
	for i := 1; i < len(t.Parent); i++ {
		hasChild[t.Parent[i]] = true
	}
	for i := range t.IsLeaf {
		t.IsLeaf[i] = !hasChild[i]
	}
}

// Len returns the node count.
func (t *Tree) Len() int { return len(t.Parent) }

// AssblBasic converts the tree into the BOM tables: assbl(Part, Spart) for
// internal edges and basic(Part, Days) with random days on leaves.
func (t *Tree) AssblBasic(maxDays int, rng *rand.Rand) (assbl, basic *relation.Relation) {
	assbl = relation.New("assbl", types.NewSchema(
		types.Col("Part", types.KindInt), types.Col("Spart", types.KindInt)))
	basic = relation.New("basic", types.NewSchema(
		types.Col("Part", types.KindInt), types.Col("Days", types.KindInt)))
	for i := 1; i < len(t.Parent); i++ {
		assbl.Append(types.Row{types.Int(int64(t.Parent[i])), types.Int(int64(i))})
	}
	for i, leaf := range t.IsLeaf {
		if leaf {
			basic.Append(types.Row{types.Int(int64(i)), types.Int(int64(1 + rng.Intn(maxDays)))})
		}
	}
	return assbl, basic
}

// Report converts the tree into the Management table report(Emp, Mgr):
// every non-root node reports to its parent.
func (t *Tree) Report() *relation.Relation {
	rel := relation.New("report", types.NewSchema(
		types.Col("Emp", types.KindInt), types.Col("Mgr", types.KindInt)))
	for i := 1; i < len(t.Parent); i++ {
		rel.Append(types.Row{types.Int(int64(i)), types.Int(int64(t.Parent[i]))})
	}
	return rel
}

// SalesSponsor converts the tree into the MLM tables: sales(M, P) with
// random profits on every node and sponsor(M1, M2) along tree edges.
func (t *Tree) SalesSponsor(maxProfit int, rng *rand.Rand) (sales, sponsor *relation.Relation) {
	sales = relation.New("sales", types.NewSchema(
		types.Col("M", types.KindInt), types.Col("P", types.KindFloat)))
	sponsor = relation.New("sponsor", types.NewSchema(
		types.Col("M1", types.KindInt), types.Col("M2", types.KindInt)))
	for i := range t.Parent {
		sales.Append(types.Row{types.Int(int64(i)), types.Float(float64(rng.Intn(maxProfit)) + 1)})
	}
	for i := 1; i < len(t.Parent); i++ {
		sponsor.Append(types.Row{types.Int(int64(t.Parent[i])), types.Int(int64(i))})
	}
	return sales, sponsor
}

// RealWorldAnalog describes a scaled-down stand-in for one of the paper's
// Table 1 graphs: an RMAT graph with the original's edge/vertex ratio and
// heavier skew, preserving the skew-sensitivity Figure 9 exercises.
type RealWorldAnalog struct {
	Name     string
	Vertices int
	// EdgeFactor is |E|/|V| of the original graph.
	EdgeFactor int
	// PaperVertices/PaperEdges document the original sizes (Table 1).
	PaperVertices, PaperEdges int64
}

// RealWorldAnalogs lists the four Table 1 datasets with default scaled
// sizes (original vertex counts divided by ~64, capped for laptop runs).
func RealWorldAnalogs(scaleDiv int) []RealWorldAnalog {
	if scaleDiv <= 0 {
		scaleDiv = 64
	}
	mk := func(name string, v, e int64) RealWorldAnalog {
		return RealWorldAnalog{
			Name:          name,
			Vertices:      int(v / int64(scaleDiv)),
			EdgeFactor:    int(e / v),
			PaperVertices: v,
			PaperEdges:    e,
		}
	}
	return []RealWorldAnalog{
		mk("livejournal", 4847572, 68993773),
		mk("orkut", 3072441, 117185083),
		mk("arabic", 22744080, 639999458),
		mk("twitter", 41652231, 1468365182),
	}
}

// Generate produces the analog graph: RMAT with skewed quadrant weights
// (0.57, 0.19, 0.19), the parameterization commonly used for social-graph
// degree skew.
func (a RealWorldAnalog) Generate(rng *rand.Rand) *relation.Relation {
	return RMAT(a.Vertices, a.Vertices*a.EdgeFactor, 0.57, 0.19, 0.19, rng)
}
