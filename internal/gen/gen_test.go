package gen

import (
	"testing"

	"github.com/rasql/rasql-go/internal/types"
)

func TestRMATDeterministicAndSized(t *testing.T) {
	a := RMATDefault(1024, Rng(7))
	b := RMATDefault(1024, Rng(7))
	if !a.EqualAsBag(b) {
		t.Error("same seed must generate the same graph")
	}
	if a.Len() != 10240 {
		t.Errorf("RMAT-1024 should have 10n edges, got %d", a.Len())
	}
	c := RMATDefault(1024, Rng(8))
	if a.EqualAsBag(c) {
		t.Error("different seeds should differ")
	}
	for _, r := range a.Rows[:100] {
		if r[0].AsInt() < 0 || r[0].AsInt() >= 1024 || r[1].AsInt() < 0 || r[1].AsInt() >= 1024 {
			t.Fatalf("vertex out of range: %v", r)
		}
		if r[2].AsFloat() < 0 || r[2].AsFloat() >= 100 {
			t.Fatalf("weight out of range: %v", r)
		}
	}
}

func TestRMATIsSkewed(t *testing.T) {
	g := RMATDefault(4096, Rng(3))
	deg := map[int64]int{}
	for _, r := range g.Rows {
		deg[r[0].AsInt()]++
	}
	max, sum := 0, 0
	for _, d := range deg {
		if d > max {
			max = d
		}
		sum += d
	}
	avg := float64(sum) / float64(len(deg))
	if float64(max) < 5*avg {
		t.Errorf("RMAT should be skewed: max degree %d vs average %.1f", max, avg)
	}
}

func TestErdosEdgeCount(t *testing.T) {
	n, p := 2000, 1e-3
	g := Erdos(n, p, Rng(11))
	want := float64(n) * float64(n-1) * p
	got := float64(g.Len())
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("G(%d, %g) edge count %v not within 20%% of %v", n, p, got, want)
	}
	for _, r := range g.Rows {
		if r[0].AsInt() == r[1].AsInt() {
			t.Fatal("Erdos must not generate self-loops")
		}
	}
	if !g.EqualAsBag(Erdos(n, p, Rng(11))) {
		t.Error("Erdos must be deterministic in its seed")
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(150, Rng(1))
	// Paper Table 2: Grid150 has 22801 vertices and 45300 edges.
	if g.Len() != 45300 {
		t.Errorf("Grid150 edges = %d, want 45300", g.Len())
	}
	vs := map[int64]struct{}{}
	for _, r := range g.Rows {
		vs[r[0].AsInt()] = struct{}{}
		vs[r[1].AsInt()] = struct{}{}
	}
	if len(vs) != 22801 {
		t.Errorf("Grid150 vertices = %d, want 22801", len(vs))
	}
}

func TestUnweightedAndSymmetrized(t *testing.T) {
	g := RMATDefault(256, Rng(2))
	u := Unweighted(g)
	if u.Schema.Len() != 2 || u.Len() != g.Len() {
		t.Errorf("Unweighted wrong: %v", u.Schema)
	}
	s := Symmetrized(u)
	if s.Len() != 2*u.Len() {
		t.Errorf("Symmetrized should double edges: %d vs %d", s.Len(), u.Len())
	}
	// Every edge must have its reverse.
	set := map[[2]int64]bool{}
	for _, r := range s.Rows {
		set[[2]int64{r[0].AsInt(), r[1].AsInt()}] = true
	}
	for _, r := range s.Rows {
		if !set[[2]int64{r[1].AsInt(), r[0].AsInt()}] {
			t.Fatalf("missing reverse of %v", r)
		}
	}
}

func TestTreeStructure(t *testing.T) {
	tr := NewTree(6, 2, 4, 0.3, 0, Rng(5))
	if tr.Len() < 10 {
		t.Fatalf("tree too small: %d", tr.Len())
	}
	if tr.Parent[0] != -1 {
		t.Error("root parent must be -1")
	}
	// Parents always precede children (level order).
	for i := 1; i < tr.Len(); i++ {
		if int(tr.Parent[i]) >= i {
			t.Fatalf("node %d has parent %d", i, tr.Parent[i])
		}
	}
	// IsLeaf is consistent with child sets.
	hasChild := make([]bool, tr.Len())
	for i := 1; i < tr.Len(); i++ {
		hasChild[tr.Parent[i]] = true
	}
	for i := range hasChild {
		if tr.IsLeaf[i] == hasChild[i] {
			t.Fatalf("node %d: IsLeaf=%v but hasChild=%v", i, tr.IsLeaf[i], hasChild[i])
		}
	}
	// Determinism.
	tr2 := NewTree(6, 2, 4, 0.3, 0, Rng(5))
	if tr2.Len() != tr.Len() {
		t.Error("tree generation must be deterministic")
	}
}

func TestTreeMaxNodesCap(t *testing.T) {
	tr := NewTree(20, 5, 10, 0.2, 1000, Rng(1))
	if tr.Len() > 1000+10 {
		t.Errorf("maxNodes exceeded: %d", tr.Len())
	}
}

func TestTreeTableConversions(t *testing.T) {
	tr := NewTree(4, 2, 3, 0.2, 0, Rng(9))
	assbl, basic := tr.AssblBasic(10, Rng(1))
	if assbl.Len() != tr.Len()-1 {
		t.Errorf("assbl rows = %d, want %d", assbl.Len(), tr.Len()-1)
	}
	leaves := 0
	for _, l := range tr.IsLeaf {
		if l {
			leaves++
		}
	}
	if basic.Len() != leaves {
		t.Errorf("basic rows = %d, want %d leaves", basic.Len(), leaves)
	}
	for _, r := range basic.Rows {
		if d := r[1].AsInt(); d < 1 || d > 10 {
			t.Fatalf("days out of range: %v", r)
		}
	}
	report := tr.Report()
	if report.Len() != tr.Len()-1 {
		t.Errorf("report rows = %d", report.Len())
	}
	sales, sponsor := tr.SalesSponsor(100, Rng(2))
	if sales.Len() != tr.Len() || sponsor.Len() != tr.Len()-1 {
		t.Errorf("sales=%d sponsor=%d", sales.Len(), sponsor.Len())
	}
}

func TestRealWorldAnalogs(t *testing.T) {
	as := RealWorldAnalogs(1024)
	if len(as) != 4 {
		t.Fatalf("want 4 analogs, got %d", len(as))
	}
	names := map[string]bool{}
	for _, a := range as {
		names[a.Name] = true
		wantRatio := a.PaperEdges / a.PaperVertices
		if int64(a.EdgeFactor) != wantRatio {
			t.Errorf("%s: edge factor %d, want %d", a.Name, a.EdgeFactor, wantRatio)
		}
		g := a.Generate(Rng(3))
		if g.Len() != a.Vertices*a.EdgeFactor {
			t.Errorf("%s: generated %d edges, want %d", a.Name, g.Len(), a.Vertices*a.EdgeFactor)
		}
	}
	for _, n := range []string{"livejournal", "orkut", "arabic", "twitter"} {
		if !names[n] {
			t.Errorf("missing analog %s", n)
		}
	}
}

func TestSchemas(t *testing.T) {
	if EdgeSchema().Len() != 3 || PlainEdgeSchema().Len() != 2 {
		t.Error("schema arities wrong")
	}
	if EdgeSchema().Columns[2].Type != types.KindFloat {
		t.Error("Cost must be double")
	}
}
