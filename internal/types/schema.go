package types

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	// Name is the column name as referenced in queries. Case-insensitive
	// lookup is performed by the analyzer; the stored name preserves case.
	Name string
	// Type is the declared kind of the column.
	Type Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from alternating name/kind pairs.
func NewSchema(cols ...Column) Schema { return Schema{Columns: cols} }

// Col is a convenience constructor for a Column.
func Col(name string, t Kind) Column { return Column{Name: name, Type: t} }

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.Columns) }

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Index returns the position of the named column (case-insensitive),
// or -1 if absent.
func (s Schema) Index(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// MustIndex is Index but panics on a missing column. Intended for
// engine-internal schemas already validated by the analyzer.
func (s Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("types: column %q not in schema %v", name, s))
	}
	return i
}

// String renders the schema as "(name type, ...)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have the same column names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if !strings.EqualFold(s.Columns[i].Name, o.Columns[i].Name) ||
			s.Columns[i].Type != o.Columns[i].Type {
			return false
		}
	}
	return true
}
