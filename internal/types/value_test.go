package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		k    Kind
		null bool
	}{
		{Int(7), KindInt, false},
		{Float(2.5), KindFloat, false},
		{Str("x"), KindString, false},
		{Bool(true), KindBool, false},
		{Bool(false), KindBool, false},
		{Null(), KindNull, true},
		{Value{}, KindNull, true},
	}
	for _, c := range cases {
		if c.v.K != c.k {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.K, c.k)
		}
		if c.v.IsNull() != c.null {
			t.Errorf("%v: IsNull = %v, want %v", c.v, c.v.IsNull(), c.null)
		}
	}
}

func TestValueEqualNumericCoercion(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if !Bool(true).Equal(Int(1)) {
		t.Error("Bool(true) should equal Int(1) numerically")
	}
	if Str("3").Equal(Int(3)) {
		t.Error("Str should not equal Int")
	}
	if !Null().Equal(Null()) {
		t.Error("NULL should equal NULL for set semantics")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("a"), Str("a"), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueArithmetic(t *testing.T) {
	if got := Int(2).Add(Int(3)); !got.Equal(Int(5)) {
		t.Errorf("2+3 = %v", got)
	}
	if got := Int(2).Add(Float(0.5)); !got.Equal(Float(2.5)) {
		t.Errorf("2+0.5 = %v", got)
	}
	if got := Int(7).Sub(Int(3)); !got.Equal(Int(4)) {
		t.Errorf("7-3 = %v", got)
	}
	if got := Int(6).Mul(Float(0.5)); !got.Equal(Float(3)) {
		t.Errorf("6*0.5 = %v", got)
	}
	if got := Int(6).Div(Int(2)); !got.Equal(Int(3)) {
		t.Errorf("6/2 = %v", got)
	}
	if got := Int(7).Div(Int(2)); !got.Equal(Float(3.5)) {
		t.Errorf("7/2 = %v", got)
	}
	if got := Int(7).Div(Int(0)); !got.IsNull() {
		t.Errorf("7/0 = %v, want NULL", got)
	}
	if got := Int(7).Mod(Int(3)); !got.Equal(Int(1)) {
		t.Errorf("7%%3 = %v", got)
	}
	if got := Str("a").Add(Str("b")); !got.Equal(Str("ab")) {
		t.Errorf("'a'+'b' = %v", got)
	}
	if got := Null().Add(Int(1)); !got.IsNull() {
		t.Errorf("NULL+1 = %v, want NULL", got)
	}
}

func TestValueTruthy(t *testing.T) {
	for _, v := range []Value{Bool(true), Int(1), Float(0.1)} {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range []Value{Bool(false), Int(0), Float(0), Null(), Str("x")} {
		if v.Truthy() {
			t.Errorf("%v should not be truthy", v)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Float(1.5), "1.5"},
		{Float(3), "3.0"},
		{Str("hi"), "hi"},
		{Bool(true), "true"},
		{Null(), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("42", KindInt)
	if err != nil || !v.Equal(Int(42)) {
		t.Errorf("ParseValue int: %v, %v", v, err)
	}
	v, err = ParseValue("2.5", KindFloat)
	if err != nil || !v.Equal(Float(2.5)) {
		t.Errorf("ParseValue float: %v, %v", v, err)
	}
	v, err = ParseValue("hello", KindString)
	if err != nil || !v.Equal(Str("hello")) {
		t.Errorf("ParseValue string: %v, %v", v, err)
	}
	v, err = ParseValue("true", KindBool)
	if err != nil || !v.Equal(Bool(true)) {
		t.Errorf("ParseValue bool: %v, %v", v, err)
	}
	if _, err = ParseValue("zzz", KindInt); err == nil {
		t.Error("ParseValue should fail on bad int")
	}
	if _, err = ParseValue("x", KindNull); err == nil {
		t.Error("ParseValue should fail on null kind")
	}
}

func TestHashEqualValuesHashEqual(t *testing.T) {
	// Equal values must hash equal even across numeric kinds.
	pairs := [][2]Value{
		{Int(3), Float(3.0)},
		{Bool(true), Int(1)},
		{Str("abc"), Str("abc")},
		{Null(), Null()},
	}
	for _, p := range pairs {
		h1 := HashValue(fnvOffset, p[0])
		h2 := HashValue(fnvOffset, p[1])
		if h1 != h2 {
			t.Errorf("equal values %v and %v hash to %d and %d", p[0], p[1], h1, h2)
		}
	}
}

func TestHashPropertyEqualImpliesEqualHash(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Float(float64(b))
		if va.Equal(vb) {
			return HashValue(1, va) == HashValue(1, vb)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashRowKeySubset(t *testing.T) {
	r1 := Row{Int(1), Str("x"), Float(2.5)}
	r2 := Row{Int(9), Str("x"), Float(2.5)}
	if HashRowKey(r1, []int{1, 2}) != HashRowKey(r2, []int{1, 2}) {
		t.Error("rows with equal key columns must hash equal on those columns")
	}
	if HashRowKey(r1, []int{0}) == HashRowKey(r2, []int{0}) {
		t.Error("different key values should (almost surely) hash differently")
	}
}

func TestFloatSpecialValues(t *testing.T) {
	inf := Float(math.Inf(1))
	if inf.Compare(Float(1e300)) != 1 {
		t.Error("+inf should compare greater")
	}
	if got := Float(math.NaN()); got.Equal(got) {
		// NaN != NaN under IEEE; document the engine-level behavior.
		t.Error("NaN should not equal itself (IEEE semantics)")
	}
}

func TestNumKeyAndPackRow(t *testing.T) {
	if k1, ok := NumKey(Int(3)); !ok {
		t.Error("ints have numeric keys")
	} else if k2, _ := NumKey(Float(3.0)); k1 != k2 {
		t.Error("Int(3) and Float(3.0) must share a key")
	}
	if _, ok := NumKey(Str("x")); ok {
		t.Error("strings have no numeric key")
	}
	if _, ok := NumKey(Null()); ok {
		t.Error("NULL has no numeric key")
	}
	r := Row{Int(1), Float(2), Bool(true)}
	if _, ok := PackRow(r, []int{0, 1, 2}); !ok {
		t.Error("all-numeric row should pack")
	}
	if _, ok := PackRow(Row{Str("s")}, []int{0}); ok {
		t.Error("string row must not pack")
	}
	if _, ok := PackRow(Row{Int(1), Int(2), Int(3), Int(4)}, []int{0, 1, 2, 3}); ok {
		t.Error("more than 3 key columns must not pack")
	}
	// Distinct rows pack to distinct keys; equal rows to equal keys.
	a, _ := PackRow(Row{Int(1), Int(2)}, []int{0, 1})
	b, _ := PackRow(Row{Int(1), Float(2)}, []int{0, 1})
	c, _ := PackRow(Row{Int(2), Int(1)}, []int{0, 1})
	if a != b {
		t.Error("value-equal rows must pack equal")
	}
	if a == c {
		t.Error("different rows must pack differently")
	}
}

func TestAllNumeric(t *testing.T) {
	if !AllNumeric(NewSchema(Col("A", KindInt), Col("B", KindFloat), Col("C", KindBool))) {
		t.Error("numeric schema misclassified")
	}
	if AllNumeric(NewSchema(Col("A", KindInt), Col("S", KindString))) {
		t.Error("string column is not numeric")
	}
}

func TestPartialAggregateStringKeysFallback(t *testing.T) {
	rows := []Row{
		{Str("a"), Int(1)}, {Str("a"), Int(2)}, {Str("b"), Int(5)},
	}
	out := PartialAggregate(rows, []int{0}, 1, AggSum)
	if len(out) != 2 {
		t.Fatalf("groups = %d", len(out))
	}
	for _, r := range out {
		if r[0].S == "a" && !r[1].Equal(Int(3)) {
			t.Errorf("sum(a) = %v", r[1])
		}
	}
	// Inputs must be untouched in the unowned variant even on fallback.
	if !rows[0][1].Equal(Int(1)) {
		t.Error("input mutated")
	}
	// Owned variant may reuse rows.
	out = PartialAggregateOwned([]Row{{Str("a"), Int(1)}, {Str("a"), Int(2)}}, []int{0}, 1, AggSum)
	if len(out) != 1 || !out[0][1].Equal(Int(3)) {
		t.Errorf("owned sum = %v", out)
	}
}

func TestAggKindHelpers(t *testing.T) {
	if AggAvg.MonotonicInRecursion() || !AggMin.MonotonicInRecursion() {
		t.Error("monotonicity classification wrong")
	}
	if !AggSum.Additive() || AggMax.Additive() {
		t.Error("additivity classification wrong")
	}
	if !AggMin.Improves(Int(1), Int(2)) || AggMin.Improves(Int(2), Int(2)) {
		t.Error("min improvement wrong")
	}
	if !AggMax.Improves(Int(3), Int(2)) || AggMax.Improves(Int(2), Int(2)) {
		t.Error("max improvement wrong")
	}
	if !AggSum.Improves(Int(1), Int(0)) || AggSum.Improves(Int(0), Int(5)) {
		t.Error("sum improvement = nonzero increment")
	}
	if got := AggMin.Combine(Int(2), Int(5)); !got.Equal(Int(2)) {
		t.Errorf("min combine = %v", got)
	}
	if got := AggMax.Combine(Int(2), Int(5)); !got.Equal(Int(5)) {
		t.Errorf("max combine = %v", got)
	}
	if got := AggSum.Combine(Int(2), Int(5)); !got.Equal(Int(7)) {
		t.Errorf("sum combine = %v", got)
	}
	if k, ok := ParseAgg("MAX"); !ok || k != AggMax {
		t.Error("ParseAgg case-insensitive")
	}
	if _, ok := ParseAgg("median"); ok {
		t.Error("unknown aggregate accepted")
	}
	for _, k := range []AggKind{AggMin, AggMax, AggSum, AggCount, AggAvg, AggNone} {
		if k.String() == "" {
			t.Error("empty aggregate name")
		}
	}
}

func TestValueModAndStringConcat(t *testing.T) {
	if got := Int(9).Mod(Int(0)); !got.IsNull() {
		t.Errorf("mod by zero = %v", got)
	}
	if got := Float(7.5).Mod(Int(2)); !got.Equal(Int(1)) {
		t.Errorf("float mod truncates: %v", got)
	}
}
