package types

import "strings"

// Row is a flat tuple of values.
type Row []Value

// Clone returns a deep-enough copy of the row (values are value types).
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Equal reports whether two rows are value-equal position by position.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !r[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Compare orders rows lexicographically.
func (r Row) Compare(o Row) int {
	n := len(r)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := r[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(r) < len(o):
		return -1
	case len(r) > len(o):
		return 1
	default:
		return 0
	}
}

// Project returns a new row holding the values at the given indices.
func (r Row) Project(idx []int) Row {
	out := make(Row, len(idx))
	for i, j := range idx {
		out[i] = r[j]
	}
	return out
}

// String renders the row as a comma-separated list in parentheses.
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Concat returns a new row that is r followed by o.
func Concat(r, o Row) Row {
	out := make(Row, 0, len(r)+len(o))
	out = append(out, r...)
	out = append(out, o...)
	return out
}
