package types

import "testing"

func TestRowCloneIndependence(t *testing.T) {
	r := Row{Int(1), Str("a")}
	c := r.Clone()
	c[0] = Int(2)
	if !r[0].Equal(Int(1)) {
		t.Error("mutating clone must not affect original")
	}
}

func TestRowEqualAndCompare(t *testing.T) {
	a := Row{Int(1), Str("x")}
	b := Row{Int(1), Str("x")}
	c := Row{Int(1), Str("y")}
	short := Row{Int(1)}
	if !a.Equal(b) {
		t.Error("identical rows must be equal")
	}
	if a.Equal(c) || a.Equal(short) {
		t.Error("different rows must not be equal")
	}
	if a.Compare(b) != 0 || a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("row comparison ordering wrong")
	}
	if short.Compare(a) != -1 || a.Compare(short) != 1 {
		t.Error("prefix row should sort first")
	}
}

func TestRowProjectAndConcat(t *testing.T) {
	r := Row{Int(1), Int(2), Int(3)}
	p := r.Project([]int{2, 0})
	if !p.Equal(Row{Int(3), Int(1)}) {
		t.Errorf("Project = %v", p)
	}
	cat := Concat(Row{Int(1)}, Row{Int(2), Int(3)})
	if !cat.Equal(r) {
		t.Errorf("Concat = %v", cat)
	}
}

func TestRowString(t *testing.T) {
	r := Row{Int(1), Str("a")}
	if got := r.String(); got != "(1, a)" {
		t.Errorf("Row.String = %q", got)
	}
}

func TestSchemaLookup(t *testing.T) {
	s := NewSchema(Col("Src", KindInt), Col("Dst", KindInt), Col("Cost", KindFloat))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Index("dst") != 1 {
		t.Error("Index should be case-insensitive")
	}
	if s.Index("missing") != -1 {
		t.Error("Index of missing column should be -1")
	}
	if s.MustIndex("Cost") != 2 {
		t.Error("MustIndex wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIndex should panic on missing column")
		}
	}()
	s.MustIndex("nope")
}

func TestSchemaEqual(t *testing.T) {
	a := NewSchema(Col("A", KindInt), Col("B", KindString))
	b := NewSchema(Col("a", KindInt), Col("b", KindString))
	c := NewSchema(Col("A", KindInt), Col("B", KindInt))
	if !a.Equal(b) {
		t.Error("schemas differing only by case must be equal")
	}
	if a.Equal(c) {
		t.Error("schemas with different types must not be equal")
	}
	if a.Equal(NewSchema(Col("A", KindInt))) {
		t.Error("schemas with different arity must not be equal")
	}
}

func TestSchemaNamesAndString(t *testing.T) {
	s := NewSchema(Col("X", KindInt), Col("Y", KindFloat))
	names := s.Names()
	if len(names) != 2 || names[0] != "X" || names[1] != "Y" {
		t.Errorf("Names = %v", names)
	}
	if got := s.String(); got != "(X int, Y double)" {
		t.Errorf("String = %q", got)
	}
}
