package types

import (
	"bytes"
	"math"
	"testing"
)

// Fuzzing the shuffle wire format and the binary row-key scheme — the two
// byte-level codecs everything crossing a simulated worker boundary depends
// on. CI runs each target briefly (-fuzztime smoke); checked-in corpus
// seeds under testdata/fuzz keep regressions pinned.

func fuzzSampleRows() []Row {
	return []Row{
		{Int(1), Float(2.5), Str("hello"), Bool(true)},
		{Int(-42), Null(), Str(""), Bool(false)},
		{},
		{Str("π≈3.14159"), Int(1 << 60)},
	}
}

// FuzzDecodeRowsAppend: arbitrary bytes must never panic or over-allocate,
// and anything that decodes must survive a canonical re-encode/decode
// roundtrip with values and kinds intact.
func FuzzDecodeRowsAppend(f *testing.F) {
	f.Add(EncodeRows(fuzzSampleRows()))
	f.Add(EncodeRows(nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // absurd batch count
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := DecodeRowsAppend(nil, data)
		if err != nil {
			return
		}
		enc := EncodeRows(rows)
		if len(enc) != EncodedSize(rows) {
			t.Fatalf("EncodedSize %d but encoding is %d bytes", EncodedSize(rows), len(enc))
		}
		back, err := DecodeRows(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if len(back) != len(rows) {
			t.Fatalf("roundtrip row count %d, want %d", len(back), len(rows))
		}
		for i := range rows {
			if len(back[i]) != len(rows[i]) {
				t.Fatalf("row %d width %d, want %d", i, len(back[i]), len(rows[i]))
			}
			for j := range rows[i] {
				v, w := rows[i][j], back[i][j]
				if v.K != w.K {
					t.Fatalf("row %d col %d: kind %v roundtripped to %v", i, j, v.K, w.K)
				}
				// Floats compare by bits: NaN is value-unequal to itself but
				// must still cross the wire unchanged.
				if v.K == KindFloat {
					if math.Float64bits(v.F) != math.Float64bits(w.F) {
						t.Fatalf("row %d col %d: float bits %x roundtripped to %x",
							i, j, math.Float64bits(v.F), math.Float64bits(w.F))
					}
				} else if !w.Equal(v) {
					t.Fatalf("row %d col %d: %v roundtripped to %v", i, j, v, w)
				}
			}
		}
	})
}

// FuzzRowKey: the binary key encoding must be deterministic, collapse
// numerics exactly like Value.Equal (Int(n) and Float collide iff
// value-equal), keep distinct strings distinct (length-prefixing makes the
// encoding prefix-free), and agree with the allocating KeyString fallback.
// HashBytes must be a pure function of the bytes.
func FuzzRowKey(f *testing.F) {
	f.Add(int64(0), 0.0, "", "x", true)
	f.Add(int64(-1), 3.0, "abc", "abd", false)
	f.Add(int64(1<<53), -0.0, "π", "", true)
	f.Fuzz(func(t *testing.T, n int64, fv float64, s1, s2 string, b bool) {
		row := Row{Int(n), Float(fv), Str(s1), Bool(b), Null()}
		k1 := AppendRowKey(nil, row)
		k2 := AppendRowKey(nil, row)
		if !bytes.Equal(k1, k2) {
			t.Fatalf("key encoding not deterministic: %x vs %x", k1, k2)
		}
		if HashBytes(k1) != HashBytes(k2) {
			t.Fatal("HashBytes not deterministic")
		}

		// Numeric collapse mirrors Value.Equal.
		ik := AppendKeyValues(nil, []Value{Int(n)})
		fk := AppendKeyValues(nil, []Value{Float(float64(n))})
		if !bytes.Equal(ik, fk) {
			t.Fatalf("Int(%d) and Float(%g) are value-equal but key bytes differ", n, float64(n))
		}
		if Int(n).Equal(Float(fv)) != bytes.Equal(
			AppendKeyValues(nil, []Value{Int(n)}),
			AppendKeyValues(nil, []Value{Float(fv)})) {
			t.Fatalf("key-byte equality disagrees with Value.Equal for Int(%d)/Float(%g)", n, fv)
		}

		if s1 != s2 {
			a := AppendKeyValues(nil, []Value{Str(s1)})
			c := AppendKeyValues(nil, []Value{Str(s2)})
			if bytes.Equal(a, c) {
				t.Fatalf("distinct strings %q and %q collide in key bytes", s1, s2)
			}
		}

		key := []int{0, 2, 4}
		if KeyString(row, key) != string(AppendKey(nil, row, key)) {
			t.Fatal("KeyString disagrees with AppendKey")
		}
	})
}
