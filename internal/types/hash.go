package types

import "math"

// FNV-1a 64-bit constants.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashValue folds one value into an FNV-1a style running hash.
//
//rasql:noalloc
func HashValue(h uint64, v Value) uint64 {
	h = hashByte(h, byte(normKind(v)))
	switch v.K {
	case KindNull:
		return h
	case KindString:
		for i := 0; i < len(v.S); i++ {
			h = hashByte(h, v.S[i])
		}
		return h
	default:
		// Hash numerics through their float64 image so Int(3) and
		// Float(3.0) — which compare equal — also hash equal.
		return hashUint64(h, math.Float64bits(v.AsFloat()))
	}
}

// normKind collapses numeric kinds so equal values hash equal.
func normKind(v Value) Kind {
	if v.IsNumeric() {
		return KindFloat
	}
	return v.K
}

// HashRow hashes an entire row with the given seed.
//
//rasql:noalloc
func HashRow(seed uint64, r Row) uint64 {
	h := seed
	if h == 0 {
		h = fnvOffset
	}
	for _, v := range r {
		h = HashValue(h, v)
	}
	return h
}

// HashRowKey hashes only the values at the given key indices.
//
//rasql:noalloc
func HashRowKey(r Row, key []int) uint64 {
	h := uint64(fnvOffset)
	for _, i := range key {
		h = HashValue(h, r[i])
	}
	return h
}

func hashByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func hashUint64(h uint64, x uint64) uint64 {
	return mix64((h ^ x) * fnvPrime)
}

// mix64 is a splitmix64-style finalizer. A chain of FNV multiplies only
// propagates bit differences upward, so two float64 images differing in the
// exponent/high mantissa (e.g. consecutive small integers) would share
// their low hash bits — exactly the bits partition routing (mod) and
// open-addressed tables (mask) consume. Folding the high half back down
// restores avalanche at a fraction of byte-at-a-time FNV's cost.
func mix64(h uint64) uint64 {
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}
