package types

import "testing"

func benchRows(n int) []Row {
	rows := make([]Row, n)
	names := []string{"alice", "bob", "carol", "dave"}
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Int(int64(i % 97)), Float(float64(i) * 0.5), Str(names[i%len(names)])}
	}
	return rows
}

func BenchmarkEncodeRows(b *testing.B) {
	rows := benchRows(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := EncodeRows(rows)
		if len(buf) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

func BenchmarkAppendRowsReused(b *testing.B) {
	rows := benchRows(1024)
	buf := make([]byte, 0, EncodedSize(rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendRows(buf[:0], rows)
	}
}

func BenchmarkDecodeRows(b *testing.B) {
	rows := benchRows(1024)
	buf := EncodeRows(rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := DecodeRows(buf)
		if err != nil || len(got) != len(rows) {
			b.Fatalf("decode: %v (%d rows)", err, len(got))
		}
	}
}

func BenchmarkRowKeyBinary(b *testing.B) {
	rows := benchRows(1024)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			buf = AppendRowKey(buf[:0], r)
			if HashBytes(buf) == 0 {
				b.Fatal("degenerate hash")
			}
		}
	}
}

func BenchmarkRowKeyString(b *testing.B) {
	rows := benchRows(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			if len(RowKeyString(r)) == 0 {
				b.Fatal("empty key")
			}
		}
	}
}
