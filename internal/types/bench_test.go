package types

import "testing"

func benchRows(n int) []Row {
	rows := make([]Row, n)
	names := []string{"alice", "bob", "carol", "dave"}
	for i := range rows {
		rows[i] = Row{Int(int64(i)), Int(int64(i % 97)), Float(float64(i) * 0.5), Str(names[i%len(names)])}
	}
	return rows
}

func BenchmarkEncodeRows(b *testing.B) {
	rows := benchRows(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := EncodeRows(rows)
		if len(buf) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

//rasql:allocpin types.AppendRow types.AppendRows
func BenchmarkAppendRowsReused(b *testing.B) {
	rows := benchRows(1024)
	buf := make([]byte, 0, EncodedSize(rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendRows(buf[:0], rows)
	}
}

//rasql:allocpin types.DecodeRowsAppend types.decodeRowInto
func BenchmarkDecodeRows(b *testing.B) {
	rows := benchRows(1024)
	buf := EncodeRows(rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := DecodeRows(buf)
		if err != nil || len(got) != len(rows) {
			b.Fatalf("decode: %v (%d rows)", err, len(got))
		}
	}
}

//rasql:allocpin types.AppendKey types.AppendRowKey types.AppendKeyValues types.appendKeyValue types.HashBytes
func BenchmarkRowKeyBinary(b *testing.B) {
	rows := benchRows(1024)
	var buf []byte
	key := []int{0, 1, 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			buf = AppendRowKey(buf[:0], r)
			if HashBytes(buf) == 0 {
				b.Fatal("degenerate hash")
			}
			buf = AppendKey(buf[:0], r, key)
			if len(buf) == 0 {
				b.Fatal("empty key")
			}
		}
	}
}

// TestKeyAndHashZeroAllocs pins the dynamic side of the //rasql:noalloc
// contract on the key and hash paths: with a warm scratch buffer, encoding
// and hashing a row touches the allocator zero times per row.
//
//rasql:allocpin types.HashValue types.HashRow types.HashRowKey
func TestKeyAndHashZeroAllocs(t *testing.T) {
	rows := benchRows(64)
	key := []int{0, 1, 3}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		for _, r := range rows {
			buf = AppendKey(buf[:0], r, key)
			if HashBytes(buf) == 0 {
				t.Fatal("degenerate hash")
			}
			h := HashRow(0, r)
			h = HashValue(h, r[0])
			if HashRowKey(r, key) == h {
				// The two digests differing is overwhelmingly likely; the
				// comparison just keeps both calls observable.
				t.Log("hash collision between row and key digests")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("key/hash path allocates %.1f per run, want 0", allocs)
	}
}

func BenchmarkRowKeyString(b *testing.B) {
	rows := benchRows(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			if len(RowKeyString(r)) == 0 {
				b.Fatal("empty key")
			}
		}
	}
}
