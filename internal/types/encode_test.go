package types

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleRows() []Row {
	return []Row{
		{Int(1), Int(-5), Float(2.5), Str("hello"), Bool(true), Null()},
		{},
		{Str(""), Int(0)},
		{Float(math.Inf(-1)), Float(math.MaxFloat64)},
		{Int(math.MaxInt64), Int(math.MinInt64)},
	}
}

func TestRowEncodeDecodeRoundTrip(t *testing.T) {
	for _, r := range sampleRows() {
		buf := AppendRow(nil, r)
		got, n, err := DecodeRow(buf)
		if err != nil {
			t.Fatalf("DecodeRow(%v): %v", r, err)
		}
		if n != len(buf) {
			t.Errorf("DecodeRow consumed %d of %d bytes", n, len(buf))
		}
		if !got.Equal(r) {
			t.Errorf("round trip: got %v, want %v", got, r)
		}
	}
}

func TestBatchEncodeDecodeRoundTrip(t *testing.T) {
	rows := sampleRows()
	buf := EncodeRows(rows)
	got, err := DecodeRows(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if !got[i].Equal(rows[i]) {
			t.Errorf("row %d: got %v, want %v", i, got[i], rows[i])
		}
	}
}

func TestDecodeRowTruncated(t *testing.T) {
	full := AppendRow(nil, Row{Int(12345), Str("abcdef"), Float(1.5)})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeRow(full[:cut]); err == nil && cut < len(full) {
			// Some prefixes may decode a shorter valid row only if the
			// header says so; with a fixed header of 3 values any cut
			// must error.
			t.Errorf("DecodeRow of %d/%d bytes should fail", cut, len(full))
		}
	}
}

func TestDecodeRowsBadInput(t *testing.T) {
	if _, err := DecodeRows(nil); err == nil {
		t.Error("DecodeRows(nil) should fail")
	}
	if _, _, err := DecodeRow([]byte{1, 99}); err == nil {
		t.Error("DecodeRow with bad kind byte should fail")
	}
}

// Property: encode/decode round-trips arbitrary rows.
func TestQuickRowRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randomRow := func() Row {
		n := rng.Intn(6)
		r := make(Row, n)
		for i := range r {
			switch rng.Intn(5) {
			case 0:
				r[i] = Int(rng.Int63() - rng.Int63())
			case 1:
				r[i] = Float(rng.NormFloat64() * 1e6)
			case 2:
				b := make([]byte, rng.Intn(20))
				rng.Read(b)
				r[i] = Str(string(b))
			case 3:
				r[i] = Bool(rng.Intn(2) == 0)
			default:
				r[i] = Null()
			}
		}
		return r
	}
	for i := 0; i < 500; i++ {
		r := randomRow()
		got, n, err := DecodeRow(AppendRow(nil, r))
		if err != nil {
			t.Fatalf("round trip %v: %v", r, err)
		}
		if n != len(AppendRow(nil, r)) || !got.Equal(r) {
			t.Fatalf("round trip mismatch: got %v want %v", got, r)
		}
	}
}

// Property: KeyString equality coincides with key-column equality.
func TestQuickKeyStringAgreesWithEquality(t *testing.T) {
	f := func(a1, b1 int64, s1 string, a2, b2 int64, s2 string) bool {
		r1 := Row{Int(a1), Int(b1), Str(s1)}
		r2 := Row{Int(a2), Int(b2), Str(s2)}
		key := []int{0, 2}
		same := r1[0].Equal(r2[0]) && r1[2].Equal(r2[2])
		return (KeyString(r1, key) == KeyString(r2, key)) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyStringNumericNormalization(t *testing.T) {
	r1 := Row{Int(3)}
	r2 := Row{Float(3.0)}
	if KeyString(r1, []int{0}) != KeyString(r2, []int{0}) {
		t.Error("Int(3) and Float(3.0) must produce the same key string")
	}
	if RowKeyString(r1) != RowKeyString(r2) {
		t.Error("RowKeyString must normalize numerics too")
	}
}
