package types

import "strings"

// AggKind enumerates the monotonic aggregates RaSQL allows in recursion,
// plus AVG which is legal only in stratified (non-recursive) position.
type AggKind uint8

// The aggregate kinds.
const (
	AggNone AggKind = iota
	AggMin
	AggMax
	AggSum
	AggCount
	AggAvg // stratified-only; the paper notes avg is not monotonic
)

// String names the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggSum:
		return "sum"
	case AggCount:
		return "count"
	case AggAvg:
		return "avg"
	default:
		return "none"
	}
}

// ParseAgg recognizes an aggregate function name (case-insensitive).
func ParseAgg(name string) (AggKind, bool) {
	switch strings.ToLower(name) {
	case "min":
		return AggMin, true
	case "max":
		return AggMax, true
	case "sum":
		return AggSum, true
	case "count":
		return AggCount, true
	case "avg":
		return AggAvg, true
	default:
		return AggNone, false
	}
}

// MonotonicInRecursion reports whether the aggregate may appear in a
// recursive view head under PreM (min/max) or monotonic-sum/count semantics.
func (a AggKind) MonotonicInRecursion() bool {
	switch a {
	case AggMin, AggMax, AggSum, AggCount:
		return true
	default:
		return false
	}
}

// Additive reports whether delta propagation carries increments (sum/count)
// rather than replacement values (min/max).
func (a AggKind) Additive() bool { return a == AggSum || a == AggCount }

// Improves reports whether candidate v improves on current cur under a
// min/max aggregate. For additive aggregates it reports whether the
// increment is nonzero.
func (a AggKind) Improves(v, cur Value) bool {
	switch a {
	case AggMin:
		return v.Compare(cur) < 0
	case AggMax:
		return v.Compare(cur) > 0
	case AggSum, AggCount:
		return v.AsFloat() != 0
	default:
		return false
	}
}

// Combine merges a new contribution v into the accumulator cur:
// min/max keep the better value; sum/count add.
func (a AggKind) Combine(cur, v Value) Value {
	switch a {
	case AggMin:
		if v.Compare(cur) < 0 {
			return v
		}
		return cur
	case AggMax:
		if v.Compare(cur) > 0 {
			return v
		}
		return cur
	case AggSum, AggCount:
		return cur.Add(v)
	default:
		return v
	}
}

// CountContribution normalizes a value for count() in recursion: numeric
// contributions are summed (so running counts propagate, as in the paper's
// Management query), non-numeric contributions count as 1 each (as in the
// Party Attendance query, which counts friend names).
func CountContribution(v Value) Value {
	if v.IsNumeric() {
		return v
	}
	return Int(1)
}

// PartialAggregate combines rows sharing the same group key before they are
// shuffled (the paper's Algorithm 5, line 5). key indexes the group
// columns; valIdx is the aggregate value column. Order of output groups is
// unspecified. Input rows are not mutated.
func PartialAggregate(rows []Row, key []int, valIdx int, kind AggKind) []Row {
	return partialAggregate(rows, key, valIdx, kind, false)
}

// PartialAggregateOwned is PartialAggregate for callers that own the input
// rows: surviving rows are reused and updated in place instead of cloned.
func PartialAggregateOwned(rows []Row, key []int, valIdx int, kind AggKind) []Row {
	return partialAggregate(rows, key, valIdx, kind, true)
}

func partialAggregate(rows []Row, key []int, valIdx int, kind AggKind, owned bool) []Row {
	if len(rows) == 0 {
		return rows
	}
	// Packed fast path for numeric keys of up to three columns. Check
	// packability up front — the aggregation below mutates rows, so the
	// path must be committed before any Combine runs.
	packable := len(key) <= 3
	if packable {
		for _, r := range rows {
			if _, ok := PackRow(r, key); !ok {
				packable = false
				break
			}
		}
	}
	if packable {
		groups := make(map[PackedKey]int, len(rows))
		out := rows[:0:0]
		for _, r := range rows {
			k, _ := PackRow(r, key)
			if i, hit := groups[k]; hit {
				out[i][valIdx] = kind.Combine(out[i][valIdx], r[valIdx])
				continue
			}
			groups[k] = len(out)
			if owned {
				out = append(out, r)
			} else {
				out = append(out, r.Clone())
			}
		}
		return out
	}
	groups := make(map[string]int, len(rows))
	out := rows[:0:0] // fresh backing; rows may alias cached storage
	for _, r := range rows {
		k := KeyString(r, key)
		if i, ok := groups[k]; ok {
			out[i][valIdx] = kind.Combine(out[i][valIdx], r[valIdx])
			continue
		}
		groups[k] = len(out)
		if owned {
			out = append(out, r)
		} else {
			out = append(out, r.Clone())
		}
	}
	return out
}
