package types

import "math"

// NumKey maps a numeric value to an exact 64-bit key (the bit pattern of
// its float64 image, so Int(3) and Float(3.0) coincide, matching Equal and
// KeyString). ok is false for strings and NULL, which need string keys.
func NumKey(v Value) (uint64, bool) {
	if !v.IsNumeric() {
		return 0, false
	}
	return math.Float64bits(v.AsFloat()), true
}

// AllNumeric reports whether every column of the schema is numeric, which
// enables the engine's packed-key fast paths — the data-layout side of
// whole-stage code generation.
func AllNumeric(s Schema) bool {
	for _, c := range s.Columns {
		switch c.Type {
		case KindInt, KindFloat, KindBool:
		default:
			return false
		}
	}
	return true
}

// PackedKey is an exact fixed-size key for rows of up to 3 numeric
// columns.
type PackedKey [3]uint64

// PackRow builds a PackedKey from the row's values at the given columns.
// ok is false when a value is non-numeric or more than 3 columns are
// requested.
func PackRow(r Row, cols []int) (PackedKey, bool) {
	var k PackedKey
	if len(cols) > 3 {
		return k, false
	}
	for i, c := range cols {
		u, ok := NumKey(r[c])
		if !ok {
			return k, false
		}
		k[i] = u
	}
	return k, true
}
