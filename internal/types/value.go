// Package types defines the value, row and schema model shared by every
// layer of the RaSQL engine: the SQL frontend, the simulated cluster, the
// fixpoint operator and the baselines.
//
// A Value is a compact tagged union over the SQL types the paper's queries
// need (64-bit integers, doubles, strings, booleans and NULL). Rows are flat
// slices of values. Schemas carry column names and declared kinds.
package types

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "double"
	case KindString:
		return "string"
	case KindBool:
		return "boolean"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a tagged union holding one SQL value. The zero Value is NULL.
type Value struct {
	// K is the runtime kind of the value.
	K Kind
	// I holds the payload for KindInt, and 0/1 for KindBool.
	I int64
	// F holds the payload for KindFloat.
	F float64
	// S holds the payload for KindString.
	S string
}

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a double value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Truthy reports whether v counts as true in a WHERE clause.
// NULL and non-booleans are false, except nonzero numerics.
func (v Value) Truthy() bool {
	switch v.K {
	case KindBool, KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	default:
		return false
	}
}

// AsFloat converts a numeric value to float64. Strings and NULL yield 0.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindBool:
		return float64(v.I)
	case KindFloat:
		return v.F
	default:
		return 0
	}
}

// AsInt converts a numeric value to int64, truncating floats.
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// IsNumeric reports whether the value is an int, float or bool.
func (v Value) IsNumeric() bool {
	return v.K == KindInt || v.K == KindFloat || v.K == KindBool
}

// Equal reports deep equality of two values. Numeric kinds compare by
// numeric value, so Int(3) equals Float(3.0).
func (v Value) Equal(o Value) bool {
	if v.K == o.K {
		switch v.K {
		case KindNull:
			return true
		case KindString:
			return v.S == o.S
		case KindFloat:
			return v.F == o.F
		default:
			return v.I == o.I
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		return v.AsFloat() == o.AsFloat()
	}
	return false
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before everything; mixed numeric kinds compare numerically;
// otherwise values order by kind then payload.
func (v Value) Compare(o Value) int {
	if v.K == KindNull || o.K == KindNull {
		switch {
		case v.K == o.K:
			return 0
		case v.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.K == KindInt && o.K == KindInt {
			switch {
			case v.I < o.I:
				return -1
			case v.I > o.I:
				return 1
			default:
				return 0
			}
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.K != o.K {
		if v.K < o.K {
			return -1
		}
		return 1
	}
	// Same non-numeric kind: strings.
	switch {
	case v.S < o.S:
		return -1
	case v.S > o.S:
		return 1
	default:
		return 0
	}
}

// Add returns v + o with numeric coercion; strings concatenate.
func (v Value) Add(o Value) Value { return arith(v, o, '+') }

// Sub returns v - o with numeric coercion.
func (v Value) Sub(o Value) Value { return arith(v, o, '-') }

// Mul returns v * o with numeric coercion.
func (v Value) Mul(o Value) Value { return arith(v, o, '*') }

// Div returns v / o with numeric coercion. Division by zero yields NULL.
func (v Value) Div(o Value) Value { return arith(v, o, '/') }

// Mod returns v % o on integers. Mod by zero yields NULL.
func (v Value) Mod(o Value) Value {
	if v.IsNull() || o.IsNull() || o.AsInt() == 0 {
		return Null()
	}
	return Int(v.AsInt() % o.AsInt())
}

func arith(v, o Value, op byte) Value {
	if v.IsNull() || o.IsNull() {
		return Null()
	}
	if op == '+' && v.K == KindString && o.K == KindString {
		return Str(v.S + o.S)
	}
	if v.K == KindInt && o.K == KindInt && op != '/' {
		switch op {
		case '+':
			return Int(v.I + o.I)
		case '-':
			return Int(v.I - o.I)
		case '*':
			return Int(v.I * o.I)
		}
	}
	a, b := v.AsFloat(), o.AsFloat()
	switch op {
	case '+':
		return Float(a + b)
	case '-':
		return Float(a - b)
	case '*':
		return Float(a * b)
	case '/':
		if b == 0 {
			return Null()
		}
		if v.K == KindInt && o.K == KindInt && v.I%o.I == 0 {
			return Int(v.I / o.I)
		}
		return Float(a / b)
	}
	return Null()
}

// String renders the value for display and CSV output.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return strconv.FormatFloat(v.F, 'f', 1, 64)
		}
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// ParseValue parses s into a value of the given kind. Used by CSV loading.
func ParseValue(s string, k Kind) (Value, error) {
	switch k {
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null(), fmt.Errorf("parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null(), fmt.Errorf("parse double %q: %w", s, err)
		}
		return Float(f), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Null(), fmt.Errorf("parse boolean %q: %w", s, err)
		}
		return Bool(b), nil
	case KindString:
		return Str(s), nil
	default:
		return Null(), fmt.Errorf("cannot parse into kind %v", k)
	}
}
