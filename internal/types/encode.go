package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The shuffle wire format. The simulated cluster serializes rows whenever
// data crosses a worker boundary (remote fetch, shuffle to a different
// worker, broadcast), so serialization cost is paid exactly where a real
// Spark deployment pays it. Layout per row:
//
//	uvarint n            — number of values
//	per value: kind byte, then payload:
//	  int    → zig-zag varint
//	  float  → 8-byte little-endian IEEE-754
//	  string → uvarint length + bytes
//	  bool   → 1 byte
//	  null   → nothing

// AppendRow appends the wire encoding of r to buf and returns it.
//
//rasql:noalloc
func AppendRow(buf []byte, r Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		buf = append(buf, byte(v.K))
		switch v.K {
		case KindNull:
		case KindInt:
			buf = binary.AppendVarint(buf, v.I)
		case KindFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case KindString:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		case KindBool:
			buf = append(buf, byte(v.I))
		}
	}
	return buf
}

// DecodeRow decodes one row from buf, returning the row and the number of
// bytes consumed.
func DecodeRow(buf []byte) (Row, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("types: truncated row header")
	}
	// Every value costs at least its kind byte, so a width the remaining
	// buffer can't possibly hold is corruption — reject it before sizing
	// the row, not after an absurd allocation.
	if n > uint64(len(buf)-sz) {
		return nil, 0, fmt.Errorf("types: row width %d exceeds buffer", n)
	}
	r := make(Row, n)
	used, err := decodeRowInto(r, buf[sz:])
	if err != nil {
		return nil, 0, err
	}
	return r, sz + used, nil
}

// uvarintLen returns the encoded size of x as a uvarint.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// EncodedRowSize returns the exact wire size of one row.
func EncodedRowSize(r Row) int {
	n := uvarintLen(uint64(len(r)))
	for _, v := range r {
		n++ // kind byte
		switch v.K {
		case KindInt:
			// Zig-zag transform, then uvarint width.
			n += uvarintLen(uint64(v.I)<<1 ^ uint64(v.I>>63))
		case KindFloat:
			n += 8
		case KindString:
			n += uvarintLen(uint64(len(v.S))) + len(v.S)
		case KindBool:
			n++
		}
	}
	return n
}

// EncodedSize returns the exact wire size of the EncodeRows batch encoding,
// letting batch encoders allocate once.
func EncodedSize(rows []Row) int {
	n := uvarintLen(uint64(len(rows)))
	for _, r := range rows {
		n += EncodedRowSize(r)
	}
	return n
}

// AppendRows appends the batch encoding of rows to buf and returns it.
// Callers that reuse buffers (the shuffle's encode pool) pass a recycled
// buf; one-shot callers should size it with EncodedSize.
//
//rasql:noalloc
func AppendRows(buf []byte, rows []Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, r := range rows {
		buf = AppendRow(buf, r)
	}
	return buf
}

// EncodeRows serializes a batch of rows into one exactly-sized buffer.
func EncodeRows(rows []Row) []byte {
	return AppendRows(make([]byte, 0, EncodedSize(rows)), rows)
}

// DecodeRows deserializes a batch produced by EncodeRows.
func DecodeRows(buf []byte) ([]Row, error) {
	return DecodeRowsAppend(nil, buf)
}

// DecodeRowsAppend decodes a batch produced by EncodeRows/AppendRows,
// appending the rows to dst. Row storage is carved out of chunked value
// slabs, so decoding allocates per chunk rather than per row; the input
// buffer is not retained (string payloads are copied), so callers may
// recycle it immediately — the noretain analyzer enforces that contract on
// this function's body. The noalloc annotation pins the steady state —
// per row, decoding touches no allocator; the justified exceptions below
// are the amortized slab refills, the nil-dst convenience path, and the
// corrupt-wire error paths.
//
//rasql:noretain buf
//rasql:noalloc
func DecodeRowsAppend(dst []Row, buf []byte) ([]Row, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		//rasql:allow noalloc -- cold path: corrupt wire data aborts the decode
		return nil, fmt.Errorf("types: truncated batch header")
	}
	// Every row costs at least one byte (its width header), so a count the
	// remaining buffer can't hold is corruption; rejecting it here keeps the
	// capacity hint below safe against attacker-sized allocations.
	if n > uint64(len(buf)-sz) {
		//rasql:allow noalloc -- cold path: corrupt wire data aborts the decode
		return nil, fmt.Errorf("types: batch count %d exceeds buffer", n)
	}
	pos := sz
	if dst == nil {
		//rasql:allow noalloc -- one-time: only the nil-dst convenience path sizes a fresh slice
		dst = make([]Row, 0, n)
	}
	var slab []Value
	for i := uint64(0); i < n; i++ {
		width, wsz := binary.Uvarint(buf[pos:])
		if wsz <= 0 {
			//rasql:allow noalloc -- cold path: corrupt wire data aborts the decode
			return nil, fmt.Errorf("types: row %d: truncated row header", i)
		}
		pos += wsz
		// Same argument per value: at least a kind byte each.
		if width > uint64(len(buf)-pos) {
			//rasql:allow noalloc -- cold path: corrupt wire data aborts the decode
			return nil, fmt.Errorf("types: row %d: width %d exceeds buffer", i, width)
		}
		w := int(width)
		if len(slab) < w {
			// Chunks stay under the runtime's 32KB large-object threshold
			// (512 Values ≈ 20KB) so slab allocation rides the fast path;
			// the tail chunk shrinks to the remaining need (exact for
			// uniform-width batches).
			c := 512
			if rem := int(n-i) * w; rem < c {
				c = rem
			}
			if c < w {
				c = w
			}
			//rasql:allow noalloc -- amortized: one slab refill per 512 values, not per row
			slab = make([]Value, c)
		}
		r := Row(slab[:w:w])
		slab = slab[w:]
		used, err := decodeRowInto(r, buf[pos:])
		if err != nil {
			//rasql:allow noalloc -- cold path: corrupt wire data aborts the decode
			return nil, fmt.Errorf("types: row %d: %w", i, err)
		}
		pos += used
		dst = append(dst, r)
	}
	return dst, nil
}

// decodeRowInto decodes len(r) values (the body of a row whose width header
// is already consumed) from buf into r, returning the bytes consumed. Like
// DecodeRowsAppend it must not retain buf: every string payload is copied —
// that copy is the one justified allocation on the non-error path.
//
//rasql:noretain buf
//rasql:noalloc
func decodeRowInto(r Row, buf []byte) (int, error) {
	pos := 0
	for i := range r {
		if pos >= len(buf) {
			//rasql:allow noalloc -- cold path: corrupt wire data aborts the decode
			return 0, fmt.Errorf("types: truncated value kind")
		}
		k := Kind(buf[pos])
		pos++
		switch k {
		case KindNull:
			r[i] = Null()
		case KindInt:
			x, s := binary.Varint(buf[pos:])
			if s <= 0 {
				//rasql:allow noalloc -- cold path: corrupt wire data aborts the decode
				return 0, fmt.Errorf("types: truncated int")
			}
			pos += s
			r[i] = Int(x)
		case KindFloat:
			if pos+8 > len(buf) {
				//rasql:allow noalloc -- cold path: corrupt wire data aborts the decode
				return 0, fmt.Errorf("types: truncated double")
			}
			r[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:])))
			pos += 8
		case KindString:
			l, s := binary.Uvarint(buf[pos:])
			// Compare unsigned: a length near 2^64 converted to int goes
			// negative and would sail past an int-arithmetic bounds check
			// into a negative slice index.
			if s <= 0 || l > uint64(len(buf)-pos-s) {
				//rasql:allow noalloc -- cold path: corrupt wire data aborts the decode
				return 0, fmt.Errorf("types: truncated string")
			}
			pos += s
			//rasql:allow noalloc -- string payloads must be copied so buf can be recycled (noretain contract)
			r[i] = Str(string(buf[pos : pos+int(l)]))
			pos += int(l)
		case KindBool:
			if pos >= len(buf) {
				//rasql:allow noalloc -- cold path: corrupt wire data aborts the decode
				return 0, fmt.Errorf("types: truncated boolean")
			}
			r[i] = Bool(buf[pos] != 0)
			pos++
		default:
			//rasql:allow noalloc -- cold path: corrupt wire data aborts the decode
			return 0, fmt.Errorf("types: bad kind byte %d", k)
		}
	}
	return pos, nil
}
