package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The shuffle wire format. The simulated cluster serializes rows whenever
// data crosses a worker boundary (remote fetch, shuffle to a different
// worker, broadcast), so serialization cost is paid exactly where a real
// Spark deployment pays it. Layout per row:
//
//	uvarint n            — number of values
//	per value: kind byte, then payload:
//	  int    → zig-zag varint
//	  float  → 8-byte little-endian IEEE-754
//	  string → uvarint length + bytes
//	  bool   → 1 byte
//	  null   → nothing

// AppendRow appends the wire encoding of r to buf and returns it.
func AppendRow(buf []byte, r Row) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		buf = append(buf, byte(v.K))
		switch v.K {
		case KindNull:
		case KindInt:
			buf = binary.AppendVarint(buf, v.I)
		case KindFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case KindString:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		case KindBool:
			buf = append(buf, byte(v.I))
		}
	}
	return buf
}

// DecodeRow decodes one row from buf, returning the row and the number of
// bytes consumed.
func DecodeRow(buf []byte) (Row, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("types: truncated row header")
	}
	pos := sz
	r := make(Row, n)
	for i := uint64(0); i < n; i++ {
		if pos >= len(buf) {
			return nil, 0, fmt.Errorf("types: truncated value kind")
		}
		k := Kind(buf[pos])
		pos++
		switch k {
		case KindNull:
			r[i] = Null()
		case KindInt:
			x, s := binary.Varint(buf[pos:])
			if s <= 0 {
				return nil, 0, fmt.Errorf("types: truncated int")
			}
			pos += s
			r[i] = Int(x)
		case KindFloat:
			if pos+8 > len(buf) {
				return nil, 0, fmt.Errorf("types: truncated double")
			}
			r[i] = Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[pos:])))
			pos += 8
		case KindString:
			l, s := binary.Uvarint(buf[pos:])
			if s <= 0 || pos+s+int(l) > len(buf) {
				return nil, 0, fmt.Errorf("types: truncated string")
			}
			pos += s
			r[i] = Str(string(buf[pos : pos+int(l)]))
			pos += int(l)
		case KindBool:
			if pos >= len(buf) {
				return nil, 0, fmt.Errorf("types: truncated boolean")
			}
			r[i] = Bool(buf[pos] != 0)
			pos++
		default:
			return nil, 0, fmt.Errorf("types: bad kind byte %d", k)
		}
	}
	return r, pos, nil
}

// EncodeRows serializes a batch of rows into one buffer.
func EncodeRows(rows []Row) []byte {
	buf := make([]byte, 0, 16*len(rows)+8)
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for _, r := range rows {
		buf = AppendRow(buf, r)
	}
	return buf
}

// DecodeRows deserializes a batch produced by EncodeRows.
func DecodeRows(buf []byte) ([]Row, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, fmt.Errorf("types: truncated batch header")
	}
	pos := sz
	rows := make([]Row, 0, n)
	for i := uint64(0); i < n; i++ {
		r, used, err := DecodeRow(buf[pos:])
		if err != nil {
			return nil, fmt.Errorf("types: row %d: %w", i, err)
		}
		pos += used
		rows = append(rows, r)
	}
	return rows, nil
}

// KeyString renders the values at the key indices into a compact string
// usable as a Go map key. It uses the wire encoding, so two rows produce the
// same key string iff their key columns are value-equal (numerics are
// normalized through float64).
func KeyString(r Row, key []int) string {
	buf := make([]byte, 0, 12*len(key))
	for _, i := range key {
		v := r[i]
		if v.IsNumeric() {
			v = Float(v.AsFloat())
		}
		buf = append(buf, byte(normKind(v)))
		switch v.K {
		case KindFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case KindString:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		}
	}
	return string(buf)
}

// RowKeyString renders the whole row as a map key (set semantics).
func RowKeyString(r Row) string {
	key := make([]int, len(r))
	for i := range key {
		key[i] = i
	}
	return KeyString(r, key)
}
