package types

import (
	"encoding/binary"
	"math"
)

// The binary row-key scheme. A row key is the normalized wire encoding of a
// row's key columns: per value a kind byte (numerics collapse to
// KindFloat), then the payload — 8-byte float64 bits for numerics, uvarint
// length + bytes for strings, nothing for NULL. Two rows produce identical
// key bytes iff their key columns are value-equal (Int(3) and Float(3.0)
// coincide, matching Value.Equal), so keys compare collision-safely as raw
// bytes while hashing to a cheap uint64.
//
// Key bytes are meant to live in caller-owned buffers and arenas (see
// cluster's keyIndex): AppendKey into a reused scratch slice, hash with
// HashBytes, compare with bytes.Equal — no per-row heap allocation, unlike
// the string keys these replace.

// AppendKey appends the binary key of r's values at the key indices to buf
// and returns the extended buffer.
//
//rasql:noalloc
func AppendKey(buf []byte, r Row, key []int) []byte {
	for _, i := range key {
		buf = appendKeyValue(buf, r[i])
	}
	return buf
}

// AppendRowKey appends the binary key of the entire row (set semantics).
//
//rasql:noalloc
func AppendRowKey(buf []byte, r Row) []byte {
	for _, v := range r {
		buf = appendKeyValue(buf, v)
	}
	return buf
}

// AppendKeyValues appends the binary key of a bare value list (a probe key
// assembled column by column).
//
//rasql:noalloc
func AppendKeyValues(buf []byte, vals []Value) []byte {
	for _, v := range vals {
		buf = appendKeyValue(buf, v)
	}
	return buf
}

//rasql:noalloc
func appendKeyValue(buf []byte, v Value) []byte {
	if v.IsNumeric() {
		buf = append(buf, byte(KindFloat))
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.AsFloat()))
	}
	buf = append(buf, byte(v.K))
	if v.K == KindString {
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	}
	return buf
}

// HashBytes hashes a byte slice with an FNV-1a variant that folds eight
// bytes per multiply, the companion hash of the binary key encoding. Keys
// are compared byte-wise on hash hits, so the hash only needs to spread
// well, not to match reference FNV output. The mix64 finalizer pushes
// high-byte differences (where numeric keys mostly vary) into the low bits
// that table masks consume.
//
//rasql:noalloc
func HashBytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * fnvPrime
		b = b[8:]
	}
	for i := 0; i < len(b); i++ {
		h = hashByte(h, b[i])
	}
	return mix64(h)
}

// KeyString renders the values at the key indices into a compact string
// usable as a Go map key: the binary key encoding, so two rows produce the
// same key string iff their key columns are value-equal. Hot paths should
// prefer AppendKey into a reused buffer; KeyString allocates per call.
func KeyString(r Row, key []int) string {
	return string(AppendKey(make([]byte, 0, 12*len(key)), r, key))
}

// RowKeyString renders the whole row as a map key (set semantics).
func RowKeyString(r Row) string {
	return string(AppendRowKey(make([]byte, 0, 12*len(r)), r))
}
