package prem

import (
	"testing"

	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/internal/sql/vet"
	"github.com/rasql/rasql-go/internal/types"
	"github.com/rasql/rasql-go/queries"
)

// These tests tie the two PreM checkers together: a Certified verdict from
// the static analyzer (internal/sql/vet) is a proof, so the dynamic GPtest
// must never observe a divergence on any input — and a statically Refuted
// query should be dynamically falsifiable on a small witness.

func agreeCatalog(t *testing.T, rels ...*relation.Relation) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, r := range rels {
		if err := cat.Register(r); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func analyzeAgree(t *testing.T, src string, cat *catalog.Catalog) *analyze.Program {
	t.Helper()
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyze.Statements(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func interRows(pairs ...[2]int64) *relation.Relation {
	rel := relation.New("inter", types.NewSchema(
		types.Col("S", types.KindInt), types.Col("E", types.KindInt)))
	for _, p := range pairs {
		rel.Append(types.Row{types.Int(p[0]), types.Int(p[1])})
	}
	return rel
}

// TestStaticCertifiedNeverContradicted: for every endo-min/max paper query
// the static verdict is Certified, and the dynamic GPtest on small
// generated inputs — cyclic Erdős graphs, symmetrized components, BOM
// trees, overlapping intervals — agrees (no divergence at any step; runs
// on cyclic inputs are budget-bounded, so Holds matters, not Converged).
func TestStaticCertifiedNeverContradicted(t *testing.T) {
	tree := gen.NewTree(4, 2, 3, 0.3, 0, gen.Rng(7))
	assbl, basic := tree.AssblBasic(20, gen.Rng(3))
	erdos := gen.Erdos(25, 0.12, gen.Rng(11))

	cases := []struct {
		name, src string
		cat       *catalog.Catalog
		iters     int
	}{
		{"SSSP", queries.SSSP, agreeCatalog(t, erdos), 25},
		{"APSP", queries.APSP, agreeCatalog(t, gen.Erdos(12, 0.2, gen.Rng(5))), 15},
		{"CCLabels", queries.CCLabels, agreeCatalog(t, gen.Symmetrized(gen.Unweighted(erdos))), 40},
		{"Delivery", queries.Delivery, agreeCatalog(t, assbl, basic), 0},
		{"Coalesce", queries.Coalesce,
			agreeCatalog(t, interRows([2]int64{1, 3}, [2]int64{2, 4}, [2]int64{3, 6}, [2]int64{8, 9})), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := analyzeAgree(t, c.src, c.cat)
			static := vet.Analyze(prog)
			if static.Verdict() != vet.VerdictCertified {
				t.Fatalf("static verdict = %v, want certified\n%s", static.Verdict(), static)
			}
			dyn, err := Check(prog, exec.NewContext(), c.iters)
			if err != nil {
				t.Fatal(err)
			}
			if !dyn.Holds {
				t.Errorf("dynamic GPtest contradicts the static certificate: %s", dyn)
			}
		})
	}
}

// TestStaticRefutedIsDynamicallyFalsifiable: the order-reversing head is
// statically Refuted (RV002), and the parallel-edge witness graph actually
// exhibits the divergence dynamically: from (2,1) and (2,4), min keeps
// Cost 1, but the rule head edge.Cost − path.Cost derives different
// successor costs from the two, so the aggregated and un-aggregated runs
// split at step 2.
func TestStaticRefutedIsDynamicallyFalsifiable(t *testing.T) {
	const refuted = `
WITH recursive path (Dst, min() AS Cost) AS
    (SELECT 1, 0) UNION
    (SELECT edge.Dst, edge.Cost - path.Cost
     FROM path, edge
     WHERE path.Dst = edge.Src)
SELECT Dst, Cost FROM path`
	edge := relation.New("edge", gen.EdgeSchema())
	for _, r := range [][3]int64{{1, 2, 1}, {1, 2, 4}, {2, 3, 1}} {
		edge.Append(types.Row{types.Int(r[0]), types.Int(r[1]), types.Float(float64(r[2]))})
	}
	prog := analyzeAgree(t, refuted, agreeCatalog(t, edge))

	static := vet.Analyze(prog)
	if static.Verdict() != vet.VerdictRefuted {
		t.Fatalf("static verdict = %v, want refuted\n%s", static.Verdict(), static)
	}
	found := false
	for _, d := range static.Diagnostics {
		if d.Code == "RV002" {
			found = true
		}
	}
	if !found {
		t.Fatalf("refutation carries no RV002 diagnostic\n%s", static)
	}

	dyn, err := Check(prog, exec.NewContext(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Holds {
		t.Errorf("dynamic GPtest missed the violation on the witness graph: %s", dyn)
	}
}
