// Package prem implements the paper's PreM (Pre-Mappability) tooling
// (Section 3 and Appendix G):
//
//   - algebraic property checks — γ(T(R)) = γ(T(γ(R))) validated directly
//     on relations, the definition from Section 3;
//   - the Appendix G query rewrite, producing the PreM-checking version of
//     an endo-min/max query (the un-minimized `all` twin view);
//   - the GPtest-style step checker: it drives the original query and its
//     PreM-checking version through the naive fixpoint iteration by
//     iteration and reports the first step at which the aggregated results
//     diverge (Theorem G.1: if they never do, the fixpoint computes the
//     stratified version's perfect model).
package prem

import (
	"fmt"
	"strings"

	"github.com/rasql/rasql-go/internal/fixpoint"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/types"
)

// Report is the outcome of a GPtest run.
type Report struct {
	// Holds is true when no divergence was observed.
	Holds bool
	// FailedIteration is the first diverging step (1-based), 0 if none.
	FailedIteration int
	// Iterations is the number of steps checked.
	Iterations int
	// Converged is true when both versions reached their fixpoints within
	// the iteration budget; false means PreM was verified only up to the
	// budget (e.g. cyclic SSSP, whose un-aggregated twin never
	// terminates).
	Converged bool
	// Detail describes a failure (empty when Holds).
	Detail string
}

// String renders the report.
func (r *Report) String() string {
	switch {
	case !r.Holds:
		return fmt.Sprintf("PreM VIOLATED at iteration %d: %s", r.FailedIteration, r.Detail)
	case r.Converged:
		return fmt.Sprintf("PreM holds: verified at each of %d iterations to the fixpoint", r.Iterations)
	default:
		return fmt.Sprintf("PreM holds for the first %d iterations (un-aggregated twin still growing; increase the budget for more)", r.Iterations)
	}
}

// Check runs the GPtest procedure on an analyzed program whose clique is a
// single recursive view with a min or max head, against the base tables in
// ctx. maxIter bounds the stepping (0 = 1000).
func Check(prog *analyze.Program, ctx *exec.Context, maxIter int) (*Report, error) {
	if maxIter <= 0 {
		maxIter = 1000
	}
	v, err := targetView(prog)
	if err != nil {
		return nil, err
	}
	twinClique, origClique := twin(prog.Clique, v)

	origState := map[string]*relation.Relation{
		strings.ToLower(v.Name): relation.New(v.Name, v.Schema),
	}
	twinState := map[string]*relation.Relation{
		strings.ToLower(v.Name): relation.New(v.Name, v.Schema),
	}

	rep := &Report{Holds: true}
	origDone, twinDone := false, false
	for step := 1; step <= maxIter; step++ {
		rep.Iterations = step
		var origChanged, twinChanged bool
		if !origDone {
			origState, origChanged, err = fixpoint.NaiveStep(origClique, origState, ctx)
			if err != nil {
				return nil, err
			}
			origDone = !origChanged
		}
		if !twinDone {
			twinState, twinChanged, err = fixpoint.NaiveStep(twinClique, twinState, ctx)
			if err != nil {
				return nil, err
			}
			twinDone = !twinChanged
		}
		// Compare γ(T(I)) — the twin's aggregated state — against
		// γ(T(γ(I))) — the original's state.
		agg := Aggregate(twinState[strings.ToLower(v.Name)], v.GroupIdx, v.AggIdx, v.Agg)
		if !agg.EqualAsSet(origState[strings.ToLower(v.Name)]) {
			rep.Holds = false
			rep.FailedIteration = step
			rep.Detail = diffDetail(agg, origState[strings.ToLower(v.Name)])
			return rep, nil
		}
		if origDone && twinDone {
			rep.Converged = true
			return rep, nil
		}
	}
	return rep, nil
}

func targetView(prog *analyze.Program) (*analyze.RecView, error) {
	if prog.Clique == nil || len(prog.Clique.Views) != 1 {
		return nil, fmt.Errorf("prem: GPtest applies to a single recursive view")
	}
	v := prog.Clique.Views[0]
	switch v.Agg {
	case types.AggMin, types.AggMax:
		return v, nil
	case types.AggSum, types.AggCount:
		return nil, fmt.Errorf("prem: %s-in-recursion is justified by the monotonic counting argument (Section 3), not PreM checking; nothing to test", v.Agg)
	default:
		return nil, fmt.Errorf("prem: view %s has no aggregate in its head", v.Name)
	}
}

// twin builds two single-view cliques sharing the rule structure: the
// original, and the un-aggregated twin whose rules are identical but whose
// head drops the extremum (set semantics) — the `all` view of Appendix G.
func twin(clique *analyze.Clique, v *analyze.RecView) (twinClique, origClique *analyze.Clique) {
	tv := &analyze.RecView{
		Name:   v.Name,
		Schema: v.Schema,
		Agg:    types.AggNone,
		AggIdx: -1,
		Index:  0,
	}
	for i := 0; i < v.Schema.Len(); i++ {
		tv.GroupIdx = append(tv.GroupIdx, i)
	}
	reown := func(rules []*analyze.Rule, owner *analyze.RecView) []*analyze.Rule {
		out := make([]*analyze.Rule, len(rules))
		for i, r := range rules {
			nr := *r
			nr.View = owner
			nr.Sources = append([]analyze.Source(nil), r.Sources...)
			for si := range nr.Sources {
				if nr.Sources[si].Kind == analyze.SourceRec {
					nr.Sources[si].Rec = owner
				}
			}
			out[i] = &nr
		}
		return out
	}
	tv.BaseRules = reown(v.BaseRules, tv)
	tv.RecRules = reown(v.RecRules, tv)
	return &analyze.Clique{Views: []*analyze.RecView{tv}}, clique
}

func diffDetail(a, b *relation.Relation) string {
	return fmt.Sprintf("γ(T(I)) has %d rows, γ(T(γ(I))) has %d rows; first sample: %s vs %s",
		a.Len(), b.Len(), sample(a), sample(b))
}

func sample(r *relation.Relation) string {
	if r.Len() == 0 {
		return "(empty)"
	}
	return r.Clone().Sort().Rows[0].String()
}

// Aggregate applies γ — grouping on key columns with the given aggregate on
// the value column — to a relation.
func Aggregate(rel *relation.Relation, key []int, valIdx int, kind types.AggKind) *relation.Relation {
	out := relation.New(rel.Name, rel.Schema)
	idx := map[string]int{}
	for _, r := range rel.Rows {
		k := types.KeyString(r, key)
		if i, ok := idx[k]; ok {
			out.Rows[i][valIdx] = kind.Combine(out.Rows[i][valIdx], r[valIdx])
			continue
		}
		idx[k] = len(out.Rows)
		out.Rows = append(out.Rows, r.Clone())
	}
	return out
}

// HoldsFor checks the algebraic PreM property γ(T(R)) = γ(T(γ(R))) for one
// application of a transform T on a concrete relation R. It is the direct
// Section 3 definition, used by property-based tests.
func HoldsFor(T func(*relation.Relation) *relation.Relation, R *relation.Relation,
	key []int, valIdx int, kind types.AggKind) bool {
	left := Aggregate(T(R), key, valIdx, kind)
	right := Aggregate(T(Aggregate(R, key, valIdx, kind)), key, valIdx, kind)
	return left.EqualAsSet(right)
}
