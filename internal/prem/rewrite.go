package prem

import (
	"fmt"
	"strings"

	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/internal/types"
)

// RewriteCheckingQuery produces the Appendix G PreM-checking version of an
// endo-min/max query: an additional recursive view `all` holding the
// un-minimized counterpart, with the original view's recursive case reading
// `all` instead of itself. The returned text is itself a valid RaSQL query
// (Query G2 in the paper).
func RewriteCheckingQuery(src string) (string, error) {
	stmt, err := parser.ParseQuery(src)
	if err != nil {
		return "", err
	}
	w, ok := stmt.(*ast.With)
	if !ok {
		return "", fmt.Errorf("prem: PreM rewriting applies to WITH queries")
	}
	if len(w.Views) != 1 {
		return "", fmt.Errorf("prem: PreM rewriting applies to a single recursive view")
	}
	v := w.Views[0]
	aggIdx := -1
	for i, h := range v.Head {
		if h.Agg == types.AggMin || h.Agg == types.AggMax {
			if aggIdx >= 0 {
				return "", fmt.Errorf("prem: more than one extremum in the head")
			}
			aggIdx = i
		} else if h.Agg != types.AggNone {
			return "", fmt.Errorf("prem: %s is handled by the monotonic counting argument, not PreM rewriting", h.Agg)
		}
	}
	if aggIdx < 0 {
		return "", fmt.Errorf("prem: view %s has no min/max head column", v.Name)
	}

	// The paper names the twin `all`; that collides with SQL's UNION ALL
	// keyword, so the rewrite uses <view>_all.
	allName := freshName(v, v.Name+"_all")

	// The `all` view: same branches, aggregate dropped, self-references
	// kept (they refer to all itself).
	allView := &ast.CTE{Recursive: true, Name: allName}
	for _, h := range v.Head {
		allView.Head = append(allView.Head, ast.HeadCol{Name: h.Name})
	}
	for _, b := range v.Branches {
		allView.Branches = append(allView.Branches, renameRefs(b, v.Name, allName))
	}

	// The original view keeps its aggregate head but its recursive cases
	// read `all` instead of itself (γ(T(I)) per Appendix G).
	// Declared recursive so the analyzer evaluates it inside the fixpoint
	// alongside `all`, even though it no longer references itself.
	checkView := &ast.CTE{Recursive: true, Name: v.Name, Head: v.Head}
	for _, b := range v.Branches {
		checkView.Branches = append(checkView.Branches, renameRefs(b, v.Name, allName))
	}

	out := &ast.With{Views: []*ast.CTE{allView, checkView}, Body: w.Body}
	return out.String(), nil
}

func freshName(v *ast.CTE, base string) string {
	name := base
	for i := 0; strings.EqualFold(name, v.Name); i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	return name
}

// renameRefs deep-copies a select branch, renaming FROM references and
// column qualifiers from old to new.
func renameRefs(s *ast.Select, old, nu string) *ast.Select {
	out := *s
	out.From = append([]ast.TableRef(nil), s.From...)
	for i := range out.From {
		if strings.EqualFold(out.From[i].Name, old) && out.From[i].Alias == "" {
			out.From[i].Name = nu
		}
	}
	out.Items = append([]ast.SelectItem(nil), s.Items...)
	for i := range out.Items {
		out.Items[i].Expr = renameExpr(out.Items[i].Expr, old, nu)
	}
	out.Where = renameExpr(s.Where, old, nu)
	return &out
}

func renameExpr(e ast.Expr, old, nu string) ast.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.ColumnRef:
		if strings.EqualFold(x.Table, old) {
			return &ast.ColumnRef{Table: nu, Name: x.Name}
		}
		return x
	case *ast.Binary:
		return &ast.Binary{Op: x.Op, L: renameExpr(x.L, old, nu), R: renameExpr(x.R, old, nu)}
	case *ast.Unary:
		return &ast.Unary{Op: x.Op, E: renameExpr(x.E, old, nu)}
	case *ast.FuncCall:
		args := make([]ast.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = renameExpr(a, old, nu)
		}
		return &ast.FuncCall{Name: x.Name, Agg: x.Agg, Distinct: x.Distinct, Star: x.Star, Args: args}
	default:
		return e
	}
}
