package prem

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/internal/types"
	"github.com/rasql/rasql-go/queries"
)

func catWith(rels ...*relation.Relation) *catalog.Catalog {
	cat := catalog.New()
	for _, r := range rels {
		if err := cat.Register(r); err != nil {
			panic(err)
		}
	}
	return cat
}

func smallWeighted() *relation.Relation {
	rel := relation.New("edge", gen.EdgeSchema())
	for _, t := range [][3]float64{{1, 2, 1}, {2, 3, 2}, {1, 3, 5}, {3, 4, 1}} {
		rel.Append(types.Row{types.Int(int64(t[0])), types.Int(int64(t[1])), types.Float(t[2])})
	}
	return rel
}

func analyzeQ(t *testing.T, src string, cat *catalog.Catalog) *analyze.Program {
	t.Helper()
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyze.Statements(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestGPtestHoldsForAPSP(t *testing.T) {
	cat := catWith(smallWeighted())
	prog := analyzeQ(t, queries.APSP, cat)
	rep, err := Check(prog, exec.NewContext(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds || !rep.Converged {
		t.Errorf("APSP should satisfy PreM and converge: %s", rep)
	}
}

func TestGPtestHoldsForSSSPOnDAG(t *testing.T) {
	cat := catWith(smallWeighted())
	prog := analyzeQ(t, queries.SSSP, cat)
	rep, err := Check(prog, exec.NewContext(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("SSSP should satisfy PreM: %s", rep)
	}
}

func TestGPtestBoundedOnCyclicSSSP(t *testing.T) {
	// On a cyclic graph the un-aggregated twin never converges; the
	// checker must report bounded verification, not failure.
	rel := relation.New("edge", gen.EdgeSchema())
	for _, e := range [][3]float64{{1, 2, 1}, {2, 3, 1}, {3, 1, 1}} {
		rel.Append(types.Row{types.Int(int64(e[0])), types.Int(int64(e[1])), types.Float(e[2])})
	}
	prog := analyzeQ(t, queries.SSSP, catWith(rel))
	rep, err := Check(prog, exec.NewContext(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds {
		t.Errorf("PreM should hold on cycles: %s", rep)
	}
	if rep.Converged {
		t.Error("the un-aggregated twin cannot converge on a cycle within 10 steps")
	}
}

func TestGPtestHoldsForDelivery(t *testing.T) {
	basic := relation.New("basic", types.NewSchema(
		types.Col("Part", types.KindInt), types.Col("Days", types.KindInt)))
	basic.Append(types.Row{types.Int(3), types.Int(5)})
	basic.Append(types.Row{types.Int(4), types.Int(2)})
	assbl := relation.New("assbl", types.NewSchema(
		types.Col("Part", types.KindInt), types.Col("Spart", types.KindInt)))
	for _, p := range [][2]int64{{1, 2}, {1, 3}, {2, 4}, {2, 3}} {
		assbl.Append(types.Row{types.Int(p[0]), types.Int(p[1])})
	}
	prog := analyzeQ(t, queries.Delivery, catWith(basic, assbl))
	rep, err := Check(prog, exec.NewContext(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Holds || !rep.Converged {
		t.Errorf("Delivery (endo-max BOM) should satisfy PreM: %s", rep)
	}
}

func TestGPtestRejectsNonExtrema(t *testing.T) {
	cat := catWith(relation.New("report", types.NewSchema(
		types.Col("Emp", types.KindInt), types.Col("Mgr", types.KindInt))))
	prog := analyzeQ(t, queries.Management, cat)
	if _, err := Check(prog, exec.NewContext(), 10); err == nil {
		t.Error("count-in-recursion should be rejected by the PreM checker")
	}
}

func TestRewriteCheckingQuery(t *testing.T) {
	out, err := RewriteCheckingQuery(queries.APSP)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"all", "min() AS Cost", "UNION"} {
		if !strings.Contains(out, want) {
			t.Errorf("rewrite missing %q:\n%s", want, out)
		}
	}
	// The rewritten text must itself parse and analyze.
	prog := analyzeQ(t, out, catWith(smallWeighted()))
	if len(prog.Clique.Views) != 2 {
		t.Fatalf("rewritten query should have a two-view clique, got %d", len(prog.Clique.Views))
	}
	// And evaluating it must produce the same result as the original.
	ctxA, ctxB := exec.NewContext(), exec.NewContext()
	orig := analyzeQ(t, queries.APSP, catWith(smallWeighted()))
	resA := runLocal(t, orig, ctxA)
	resB := runLocal(t, prog, ctxB)
	if !resA.EqualAsSet(resB) {
		t.Errorf("PreM-checking version computes a different result:\n%v\nvs\n%v", resA.Sort(), resB.Sort())
	}
}

func TestRewriteRejectsUnsuitableQueries(t *testing.T) {
	if _, err := RewriteCheckingQuery(`SELECT 1`); err == nil {
		t.Error("non-WITH should be rejected")
	}
	if _, err := RewriteCheckingQuery(queries.TC); err == nil {
		t.Error("no-aggregate query should be rejected")
	}
	if _, err := RewriteCheckingQuery(queries.CountPaths); err == nil {
		t.Error("sum query should be rejected")
	}
	if _, err := RewriteCheckingQuery(queries.CompanyControl); err == nil {
		t.Error("multi-view query should be rejected")
	}
}

func TestAggregateHelper(t *testing.T) {
	rel := relation.New("r", types.NewSchema(
		types.Col("K", types.KindInt), types.Col("V", types.KindInt)))
	rows := [][2]int64{{1, 5}, {1, 3}, {2, 8}, {1, 7}}
	for _, r := range rows {
		rel.Append(types.Row{types.Int(r[0]), types.Int(r[1])})
	}
	got := Aggregate(rel, []int{0}, 1, types.AggMin)
	if got.Len() != 2 {
		t.Fatalf("groups = %d", got.Len())
	}
	for _, r := range got.Rows {
		switch r[0].AsInt() {
		case 1:
			if r[1].AsInt() != 3 {
				t.Errorf("min(1) = %v", r[1])
			}
		case 2:
			if r[1].AsInt() != 8 {
				t.Errorf("min(2) = %v", r[1])
			}
		}
	}
}

// Property test: PreM of min/max over the join-project transform of the
// paper's Section 3 identity, on random relations.
func TestPreMPropertyJoinProject(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	edgeRel := relation.New("edge", types.NewSchema(
		types.Col("Src", types.KindInt), types.Col("Dst", types.KindInt), types.Col("W", types.KindFloat)))
	for i := 0; i < 60; i++ {
		edgeRel.Append(types.Row{
			types.Int(rng.Int63n(10)), types.Int(rng.Int63n(10)), types.Float(float64(rng.Intn(20)))})
	}
	// T(R) = π(edge ⋈ R): new (Dst, cost+w) pairs — the SSSP transform.
	T := func(R *relation.Relation) *relation.Relation {
		out := relation.New("t", R.Schema)
		for _, r := range R.Rows {
			for _, e := range edgeRel.Rows {
				if e[0].Equal(r[0]) {
					out.Append(types.Row{e[1], r[1].Add(e[2])})
				}
			}
		}
		return out
	}
	for trial := 0; trial < 50; trial++ {
		R := relation.New("r", types.NewSchema(
			types.Col("Dst", types.KindInt), types.Col("Cost", types.KindFloat)))
		for i := 0; i < rng.Intn(30); i++ {
			R.Append(types.Row{types.Int(rng.Int63n(10)), types.Float(float64(rng.Intn(50)))})
		}
		if !HoldsFor(T, R, []int{0}, 1, types.AggMin) {
			t.Fatalf("PreM(min) must hold for the join-project transform (trial %d)", trial)
		}
		if !HoldsFor(T, R, []int{0}, 1, types.AggMax) {
			t.Fatalf("PreM(max) must hold for monotone additive transforms (trial %d)", trial)
		}
	}
}

// A transform that is NOT PreM: a conditional that inspects non-extremal
// values. PreM must be reported violated for some input.
func TestPreMPropertyDetectsViolation(t *testing.T) {
	// T counts the tuples per key — dropping non-minimal tuples changes
	// the count, so min is not PreM w.r.t. this T.
	T := func(R *relation.Relation) *relation.Relation {
		out := relation.New("t", R.Schema)
		counts := map[int64]int64{}
		for _, r := range R.Rows {
			counts[r[0].AsInt()]++
		}
		for k, c := range counts {
			out.Append(types.Row{types.Int(k), types.Float(float64(c))})
		}
		return out
	}
	R := relation.New("r", types.NewSchema(
		types.Col("K", types.KindInt), types.Col("V", types.KindFloat)))
	R.Append(types.Row{types.Int(1), types.Float(1)})
	R.Append(types.Row{types.Int(1), types.Float(2)})
	if HoldsFor(T, R, []int{0}, 1, types.AggMin) {
		t.Error("count-style transforms must violate PreM for min")
	}
}

func runLocal(t *testing.T, prog *analyze.Program, ctx *exec.Context) *relation.Relation {
	t.Helper()
	res, err := localFixpoint(prog, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The library queries the paper states were proven PreM must pass GPtest
// on random inputs.
func TestGPtestLibraryQueries(t *testing.T) {
	edges := relation.New("edge", gen.EdgeSchema())
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 18; i++ {
		edges.Append(types.Row{
			types.Int(rng.Int63n(8)), types.Int(rng.Int63n(8)),
			types.Float(float64(1 + rng.Intn(9)))})
	}
	sym := relation.New("edge", gen.PlainEdgeSchema())
	for _, r := range edges.Rows {
		sym.Append(types.Row{r[0], r[1]})
		sym.Append(types.Row{r[1], r[0]})
	}
	cases := []struct {
		name, src string
		cat       *catalog.Catalog
	}{
		{"APSP", queries.APSP, catWith(edges)},
		{"CC", queries.CCLabels, catWith(sym)},
	}
	for _, c := range cases {
		prog := analyzeQ(t, c.src, c.cat)
		rep, err := Check(prog, exec.NewContext(), 10)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if !rep.Holds {
			t.Errorf("%s: PreM should hold: %s", c.name, rep)
		}
	}
}
