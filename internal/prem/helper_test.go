package prem

import (
	"github.com/rasql/rasql-go/internal/fixpoint"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/exec"
)

// localFixpoint runs a program end to end with the local engine (test
// helper; the full engine lives in the root package, which this internal
// package cannot import without a cycle).
func localFixpoint(prog *analyze.Program, ctx *exec.Context) (*relation.Relation, error) {
	if prog.Clique != nil && len(prog.Clique.Views) > 0 {
		res, err := fixpoint.Local(prog.Clique, ctx, fixpoint.Options{})
		if err != nil {
			return nil, err
		}
		res.Bind(ctx)
	}
	return exec.Query(prog.Final, ctx)
}
