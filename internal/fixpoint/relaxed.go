package fixpoint

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/vet"
	"github.com/rasql/rasql-go/internal/trace"
	"github.com/rasql/rasql-go/internal/types"
)

// EvalMode selects the fixpoint synchronization discipline.
type EvalMode int

const (
	// ModeBSP is the classical bulk-synchronous loop: every iteration ends
	// at a global barrier (the default, and the fallback when a query is
	// not certified safe for barrier relaxation).
	ModeBSP EvalMode = iota
	// ModeSSP is stale-synchronous-parallel execution: partitions advance
	// independently but no partition may run more than k rounds ahead of
	// the slowest partition that still has work (DistOptions.Staleness).
	ModeSSP
	// ModeAsync drops the staleness gate entirely: workers drain delta
	// inboxes until global quiescence.
	ModeAsync
)

// String implements fmt.Stringer.
func (m EvalMode) String() string {
	switch m {
	case ModeSSP:
		return "ssp"
	case ModeAsync:
		return "async"
	}
	return "bsp"
}

// ParseEvalMode parses a -mode flag value: "bsp", "async", or "ssp:k" with
// a non-negative staleness bound k ("ssp" alone means ssp:1).
func ParseEvalMode(s string) (EvalMode, int, error) {
	switch {
	case s == "" || s == "bsp":
		return ModeBSP, 0, nil
	case s == "async":
		return ModeAsync, 0, nil
	case s == "ssp":
		return ModeSSP, 1, nil
	case strings.HasPrefix(s, "ssp:"):
		k, err := strconv.Atoi(s[len("ssp:"):])
		if err != nil || k < 0 {
			return ModeBSP, 0, fmt.Errorf("invalid staleness bound %q (want ssp:k with k >= 0)", s)
		}
		return ModeSSP, k, nil
	}
	return ModeBSP, 0, fmt.Errorf("unknown evaluation mode %q (want bsp, ssp:k or async)", s)
}

// stalenessBound is the effective SSP bound: negatives clamp to 0 so a
// zero-valued DistOptions{Mode: ModeSSP} means the tightest gate, never an
// accidental async run.
func (o DistOptions) stalenessBound() int {
	if o.Staleness < 0 {
		return 0
	}
	return o.Staleness
}

// modeLabel names the mode a run actually executed under (Result.Mode).
func (o DistOptions) modeLabel() string {
	switch o.Mode {
	case ModeSSP:
		return "ssp(" + strconv.Itoa(o.stalenessBound()) + ")"
	case ModeAsync:
		return "async"
	}
	return "bsp"
}

// relaxedIneligible reports why a clique must not run barrier-relaxed, or
// "" when it may. Non-aggregate views accumulate under set union, which is
// trivially confluent: any delivery order reaches the same fixpoint. An
// aggregate view is safe only when vet certifies the aggregate premappable
// (PreM): then applying the monotonic aggregate to stale or reordered
// partial states can only produce values the fixpoint would eventually
// supersede, never a wrong final answer.
func relaxedIneligible(clique *analyze.Clique, plan *Plan) string {
	v := plan.View
	if !v.IsAgg() {
		return ""
	}
	if verdict := vet.CertifyClique(clique); verdict != vet.VerdictCertified {
		return "aggregate view " + v.Name + " is not PreM-certified for barrier-relaxed execution (vet: " + verdict.String() + ")"
	}
	return ""
}

// relaxedRound accumulates one round's telemetry across partitions. Rounds
// of different partitions interleave freely, so the runner buckets by the
// consuming partition's round index and emits the events once the region
// quiesces.
type relaxedRound struct {
	deltaRows, newKeys, improved int
	stale, superseded            int
	startNS, endNS               int64
	started                      bool
}

// runRelaxed is the shared barrier-relaxed evaluator: every plan shape
// (two-stage, combined, decomposed, shuffled) collapses onto one
// delta-routing kernel — merge the drained batch into the partition's
// state, derive the next delta, and route the output buckets — with the
// cluster's relaxed router supplying the staleness gate and quiescence
// detection. Per-iteration shuffle-volume telemetry is not sliced per
// round (rounds interleave, so byte attribution is ambiguous); the region
// totals still land in the cluster metrics.
func runRelaxed(plan *Plan, state *viewState, kernels []*ruleKernel, seed [][]types.Row, c *cluster.QueryContext, opt DistOptions) (*Result, error) {
	parts := state.partitions()
	pr := newProjector(plan, parts)
	tr := opt.Tracer
	traceOn := tr.Enabled()

	gate := -1 // async: no staleness gate
	if opt.Mode == ModeSSP {
		gate = opt.stalenessBound()
	}

	var failed atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		failed.Store(true)
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	var telMu sync.Mutex
	var rounds []relaxedRound
	record := func(round int64, d deltaBatch, stale, superseded int, t0, t1 int64) {
		telMu.Lock()
		for int64(len(rounds)) <= round {
			rounds = append(rounds, relaxedRound{})
		}
		r := &rounds[round]
		n, news, imp := countDelta(d)
		r.deltaRows += n
		r.newKeys += news
		r.improved += imp
		r.stale += stale
		r.superseded += superseded
		if !r.started || t0 < r.startNS {
			r.startNS = t0
			r.started = true
		}
		if t1 > r.endNS {
			r.endNS = t1
		}
		telMu.Unlock()
	}

	stats := c.RunRelaxed(cluster.RelaxedOptions{
		Name:      "fixpoint.relaxed",
		Parts:     parts,
		Owner:     state.owner,
		Staleness: gate,
		Checkpoint: func(part int) func() {
			cp := state.checkpoint(part)
			return func() { state.restore(cp) }
		},
		Process: func(part, worker int, rows []types.Row, round int64, stale int) [][]types.Row {
			if failed.Load() {
				// A guard already tripped: drain the remaining credit so the
				// region quiesces without doing further work.
				return nil
			}
			// Relaxed execution has no global barrier; each partition round
			// is its own iteration boundary, so a cancelled context stops the
			// region before this round's merge mutates the state.
			if err := checkCancel(opt.Context, int(round)); err != nil {
				fail(err)
				return nil
			}
			var t0 int64
			if traceOn {
				t0 = tr.Now()
			}
			d := state.merge(part, rows)
			// Post-merge fault point: an executor dying after mutating the
			// cached state rolls back to the Checkpoint snapshot and replays
			// this processing step (Section 6.1), exactly like a BSP merge
			// task.
			c.ChaosPostMerge(worker)
			superseded := len(rows) - len(d.Rows)
			if superseded > 0 {
				c.Metrics.SupersededRows.Add(int64(superseded))
			}
			// state.len() sums every partition and is not safe while other
			// owners mutate theirs, so the row guard extrapolates from this
			// partition like the decomposed runner.
			if round > int64(opt.maxIter()) || (opt.MaxRows > 0 && len(state.rows(part))*parts > opt.MaxRows) {
				fail(&ErrNonTermination{Iterations: int(round), Rows: len(state.rows(part)) * parts})
				return nil
			}
			var out [][]types.Row
			if !d.empty() {
				out = pr.run(c, kernels, d, part, worker)
			}
			if traceOn {
				record(round, d, stale, superseded, t0, tr.Now())
			}
			return out
		},
	}, seed)

	if failed.Load() {
		return nil, firstErr
	}
	// Round 0 is the base-case merge, so the deepest clock exceeds the
	// iteration count by one — aligned with the BSP runners' convention.
	iters := int(stats.MaxClock) - 1
	if iters < 0 {
		iters = 0
	}
	if iters > 0 {
		c.Metrics.Iterations.Add(int64(iters))
	}
	if traceOn {
		mode := "dsn-" + opt.Mode.String()
		if opt.Mode == ModeSSP {
			mode = "dsn-ssp(" + strconv.Itoa(gate) + ")"
		}
		all := 0
		for i := range rounds {
			r := rounds[i]
			all += r.newKeys
			ev := trace.IterationEvent{
				Iter: i, Mode: mode,
				DeltaRows: r.deltaRows, AllRows: all,
				NewKeys: r.newKeys, Improved: r.improved,
				Relaxed: true, StaleRows: r.stale, SupersededRows: r.superseded,
				StartNS: r.startNS, EndNS: r.endNS,
			}
			if i == len(rounds)-1 {
				ev.PartRows = make([]int, parts)
				for p := range ev.PartRows {
					ev.PartRows[p] = len(state.rows(p))
				}
			}
			tr.EmitIteration(ev)
		}
	}
	return collect(plan, state, c, iters)
}
