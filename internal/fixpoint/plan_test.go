package fixpoint

import (
	"testing"

	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/types"
	"github.com/rasql/rasql-go/queries"
)

// TestReplanShuffledPartKeys pins the two partition-key paths of the
// decomposition ablation: an aggregate view shuffles on its group key, a
// set view on every column; either way every rule downgrades to a
// broadcast join and the plan loses its decomposed mark.
func TestReplanShuffledPartKeys(t *testing.T) {
	edges := relation.New("edge", gen.EdgeSchema())

	// APSP: decomposed aggregate view, group key [Src, Dst] = columns 0,1.
	prog := analyzeQ(t, queries.APSP, testCatalog(edges))
	orig, err := PlanDistributed(prog.Clique)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Decomposed {
		t.Fatal("precondition: APSP must plan decomposed")
	}
	p := replanShuffled(prog.Clique)
	if p.Decomposed {
		t.Error("replanShuffled must clear the decomposed mark")
	}
	if want := prog.Clique.Views[0].GroupIdx; !colsEqualAsSet(p.PartKey, want) {
		t.Errorf("agg part key = %v, want group key %v", p.PartKey, want)
	}
	for i, rp := range p.Rules {
		if rp.Strategy != StrategyBroadcast {
			t.Errorf("agg rule %d strategy = %v, want broadcast", i, rp.Strategy)
		}
	}

	// TC: decomposed set view — the shuffled replan keys on all columns.
	prog = analyzeQ(t, queries.TC, testCatalog(edges))
	p = replanShuffled(prog.Clique)
	v := prog.Clique.Views[0]
	if len(p.PartKey) != v.Schema.Len() {
		t.Errorf("set part key = %v, want all %d columns", p.PartKey, v.Schema.Len())
	}
	for i, rp := range p.Rules {
		if rp.Strategy != StrategyBroadcast {
			t.Errorf("set rule %d strategy = %v, want broadcast", i, rp.Strategy)
		}
	}
}

// TestDeltaModeDecisions pins the three delta-consumption modes a rule can
// take, driving deltaMode directly on analyzed rules.
func TestDeltaModeDecisions(t *testing.T) {
	edges := relation.New("edge", gen.EdgeSchema())
	plain := relation.New("edge", types.NewSchema(
		types.Col("Src", types.KindInt), types.Col("Dst", types.KindInt)))
	report := relation.New("report", types.NewSchema(
		types.Col("Emp", types.KindInt), types.Col("Mgr", types.KindInt)))

	// An additive view whose head emits a constant instead of aggregating
	// the recursive value: only first derivations may feed the rule.
	const constHeadCount = `
WITH recursive r (Dst, count() AS C) AS
    (SELECT 1, 1) UNION
    (SELECT edge.Dst, 1 FROM r, edge WHERE r.Dst = edge.Src)
SELECT Dst, C FROM r`

	cases := []struct {
		name, src          string
		rel                *relation.Relation
		wantInc, wantFresh bool
	}{
		// count over a recursive count, head propagates the value:
		// increments flow through (exact delta semantics).
		{"management-increments", queries.Management, report, true, false},
		// sum propagating the recursive sum: increments too.
		{"count-paths-increments", queries.CountPaths, plain, true, false},
		// additive agg with a constant head: new groups only.
		{"const-head-new-groups", constHeadCount, plain, false, true},
		// min is not additive: plain delta rows.
		{"sssp-plain", queries.SSSP, edges, false, false},
		// set semantics: plain delta rows.
		{"tc-plain", queries.TC, edges, false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prog := analyzeQ(t, c.src, testCatalog(c.rel))
			v := prog.Clique.Views[0]
			if len(v.RecRules) == 0 {
				t.Fatal("no recursive rule")
			}
			inc, fresh := deltaMode(v.RecRules[0])
			if inc != c.wantInc || fresh != c.wantFresh {
				t.Errorf("deltaMode = (inc=%v, newGroupsOnly=%v), want (%v, %v)",
					inc, fresh, c.wantInc, c.wantFresh)
			}
		})
	}
}
