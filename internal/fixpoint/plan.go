package fixpoint

import (
	"fmt"
	"strings"

	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/expr"
	"github.com/rasql/rasql-go/internal/sql/vet"
)

// JoinStrategy selects the distributed join implementation for
// co-partitioned rules (the paper's Appendix D comparison).
type JoinStrategy uint8

// The join strategies.
const (
	// ShuffleHash builds a cached hash table on the base side once and
	// probes it with delta rows each iteration — the paper's default.
	ShuffleHash JoinStrategy = iota
	// SortMerge sorts the base side once and the delta each iteration,
	// then merges.
	SortMerge
)

// String names the strategy.
func (j JoinStrategy) String() string {
	if j == SortMerge {
		return "sort-merge"
	}
	return "shuffle-hash"
}

// RuleStrategy classifies how one recursive rule executes per iteration.
type RuleStrategy uint8

// The rule strategies.
const (
	// StrategyCoPartition joins the delta with a base relation
	// co-partitioned on the view's partition key (Algorithm 4/5).
	StrategyCoPartition RuleStrategy = iota
	// StrategyBroadcast joins the delta against broadcast copies of every
	// base relation, then shuffles the output.
	StrategyBroadcast
	// StrategyDecomposed is StrategyBroadcast without the output shuffle:
	// the head carries the partition key, so every partition iterates to
	// its own fixpoint independently (Section 7.2).
	StrategyDecomposed
)

// String names the strategy.
func (s RuleStrategy) String() string {
	switch s {
	case StrategyCoPartition:
		return "co-partition"
	case StrategyBroadcast:
		return "broadcast"
	default:
		return "decomposed"
	}
}

// probeStep is one hash/broadcast join in a rule's per-iteration pipeline:
// the source at Source joins to already-bound sources on BuildCols,
// probed with values from bound positions.
type probeStep struct {
	// Source is the rule-source index being joined in.
	Source int
	// BuildCols are the key columns on the new source.
	BuildCols []int
	// ProbeFrom lists (sourceIdx, colIdx) pairs, aligned with BuildCols,
	// read from the bound side.
	ProbeFrom [][2]int
	// Filters are residual conjuncts that become fully bound once this
	// source is joined.
	Filters []expr.Expr
}

// RulePlan is the physical plan of one recursive rule.
type RulePlan struct {
	Rule *analyze.Rule
	// RecIdx is the rule-source index of the recursive reference.
	RecIdx int
	// Strategy picks the execution shape.
	Strategy RuleStrategy
	// CoPartSource is the base source joined co-partitioned (strategy
	// co-partition only); CoPartBuildCols are its join key columns, and
	// CoPartProbeCols the matching delta columns.
	CoPartSource    int
	CoPartBuildCols []int
	CoPartProbeCols []int
	// Steps are the remaining joins (broadcast), in execution order.
	Steps []probeStep
	// InitialFilters are conjuncts over the delta source alone.
	InitialFilters []expr.Expr
	// UseIncrements marks that delta rows feed the rule with the
	// aggregate column replaced by the increment (additive views).
	UseIncrements bool
	// NewGroupsOnly marks that only first-derivation delta tuples feed
	// the rule (additive head not aggregating the source value).
	NewGroupsOnly bool
}

// Plan is the distributed physical plan of a clique.
type Plan struct {
	View *analyze.RecView
	// PartKey lists the view columns the state and deltas are hash
	// partitioned on.
	PartKey []int
	// Decomposed is true when every rule is decomposed, enabling the
	// no-global-synchronization execution of Section 7.2.
	Decomposed bool
	Rules      []*RulePlan
}

// ErrNotDistributable explains why a clique needs the local engine.
type ErrNotDistributable struct{ Reason string }

// Error implements error.
func (e *ErrNotDistributable) Error() string {
	return "fixpoint: clique not distributable: " + e.Reason
}

// PlanDistributed builds the distributed plan for a clique, or reports why
// the clique must fall back to the local engine. The distributed engine
// covers single-view linear recursion — every workload the paper
// benchmarks; mutual recursion and non-linear rules use the exact local
// engine.
func PlanDistributed(clique *analyze.Clique) (*Plan, error) {
	if len(clique.Views) != 1 {
		return nil, &ErrNotDistributable{Reason: fmt.Sprintf("mutual recursion over %d views", len(clique.Views))}
	}
	v := clique.Views[0]
	for _, r := range v.RecRules {
		if len(r.RecSources) != 1 {
			return nil, &ErrNotDistributable{Reason: "non-linear rule (multiple recursive references)"}
		}
	}

	p := &Plan{View: v}
	carried := carriedColumns(v)

	// Decomposed execution applies when some carried columns exist and,
	// for aggregate views, they fall inside the group key so grouping
	// stays partition-local.
	decomposable := len(carried) > 0
	if v.IsAgg() && decomposable {
		group := map[int]bool{}
		for _, g := range v.GroupIdx {
			group[g] = true
		}
		for _, c := range carried {
			if !group[c] {
				decomposable = false
			}
		}
	}

	if decomposable {
		p.Decomposed = true
		p.PartKey = carried
		for _, r := range v.RecRules {
			rp, err := planRule(r, p.PartKey, true)
			if err != nil {
				return nil, err
			}
			rp.Strategy = StrategyDecomposed
			p.Rules = append(p.Rules, rp)
		}
		return p, nil
	}

	if v.IsAgg() {
		p.PartKey = append([]int(nil), v.GroupIdx...)
		// When the recursive joins cannot cover the full group key, vet's
		// co-partition analysis may offer a narrower key (a subset of the
		// group-by, so grouping stays partition-local) that every rule's
		// join does cover — turning per-iteration reshuffles into
		// co-partitioned probes.
		if alt := vet.SuggestPartitionKey(v); alt != nil {
			p.PartKey = alt
		}
	} else {
		p.PartKey = allColumns(v)
	}
	for _, r := range v.RecRules {
		rp, err := planRule(r, p.PartKey, false)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, rp)
	}
	return p, nil
}

// carriedColumns returns view columns that every recursive rule copies
// verbatim from the recursive source (head[i] ≡ rec.col[i]) — the columns
// whose partitioning survives an iteration.
func carriedColumns(v *analyze.RecView) []int {
	var out []int
	for i := 0; i < v.Schema.Len(); i++ {
		ok := len(v.RecRules) > 0
		for _, r := range v.RecRules {
			c, isCol := r.Head[i].(*expr.Col)
			if !isCol || c.Input != r.RecSources[0] || c.Idx != i {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

func allColumns(v *analyze.RecView) []int {
	out := make([]int, v.Schema.Len())
	for i := range out {
		out[i] = i
	}
	return out
}

// planRule lays out one rule's join pipeline: optionally a co-partitioned
// primary join, then broadcast probes for the remaining sources, with every
// conjunct applied at the earliest point it is fully bound.
func planRule(r *analyze.Rule, partKey []int, forceBroadcast bool) (*RulePlan, error) {
	rec := r.RecSources[0]
	rp := &RulePlan{Rule: r, RecIdx: rec, CoPartSource: -1, Strategy: StrategyBroadcast}
	rp.UseIncrements, rp.NewGroupsOnly = deltaMode(r)

	// Classify conjuncts: equi-joins between sources vs filters.
	type ej struct {
		e  expr.Expr
		j  expr.EquiJoin
		ok bool
	}
	conj := make([]ej, len(r.Conjuncts))
	for i, c := range r.Conjuncts {
		j, ok := expr.AsEquiJoin(c)
		conj[i] = ej{e: c, j: j, ok: ok}
	}
	used := make([]bool, len(conj))

	// Try a co-partitioned primary join: a base source whose equi-join
	// columns against the recursive source cover exactly the partition
	// key on the recursive side.
	if !forceBroadcast {
		for si, s := range r.Sources {
			if si == rec || s.Kind == analyze.SourceRec {
				continue
			}
			var probeCols, buildCols []int
			var idxs []int
			for ci, c := range conj {
				if !c.ok {
					continue
				}
				j := c.j
				switch {
				case j.LeftInput == rec && j.RightInput == si:
					probeCols = append(probeCols, j.LeftCol)
					buildCols = append(buildCols, j.RightCol)
					idxs = append(idxs, ci)
				case j.RightInput == rec && j.LeftInput == si:
					probeCols = append(probeCols, j.RightCol)
					buildCols = append(buildCols, j.LeftCol)
					idxs = append(idxs, ci)
				}
			}
			if colsEqualAsSet(probeCols, partKey) {
				rp.Strategy = StrategyCoPartition
				rp.CoPartSource = si
				rp.CoPartBuildCols = buildCols
				rp.CoPartProbeCols = probeCols
				for _, ci := range idxs {
					used[ci] = true
				}
				break
			}
		}
	}

	// Remaining sources join via broadcast in declaration order; each
	// step's build key comes from equi-joins against bound sources.
	bound := map[int]bool{rec: true}
	if rp.CoPartSource >= 0 {
		bound[rp.CoPartSource] = true
	}
	// Filters bound by the initial delta (and co-partition join) apply
	// first.
	takeFilters := func() []expr.Expr {
		var out []expr.Expr
		for ci, c := range conj {
			if used[ci] {
				continue
			}
			ready := true
			for in := range expr.Inputs(c.e) {
				if !bound[in] {
					ready = false
					break
				}
			}
			if ready {
				used[ci] = true
				out = append(out, c.e)
			}
		}
		return out
	}
	rp.InitialFilters = takeFilters()

	for si := range r.Sources {
		if bound[si] {
			continue
		}
		step := probeStep{Source: si}
		for ci, c := range conj {
			if used[ci] || !c.ok {
				continue
			}
			j := c.j
			switch {
			case j.RightInput == si && bound[j.LeftInput]:
				step.BuildCols = append(step.BuildCols, j.RightCol)
				step.ProbeFrom = append(step.ProbeFrom, [2]int{j.LeftInput, j.LeftCol})
				used[ci] = true
			case j.LeftInput == si && bound[j.RightInput]:
				step.BuildCols = append(step.BuildCols, j.LeftCol)
				step.ProbeFrom = append(step.ProbeFrom, [2]int{j.RightInput, j.RightCol})
				used[ci] = true
			}
		}
		bound[si] = true
		step.Filters = takeFilters()
		rp.Steps = append(rp.Steps, step)
	}
	for ci, u := range used {
		if !u {
			return nil, &ErrNotDistributable{Reason: "conjunct not schedulable: " + conj[ci].e.String()}
		}
	}
	return rp, nil
}

// deltaMode decides how a rule consumes its recursive delta (mirrors the
// local engine's deltaRowsFor).
func deltaMode(r *analyze.Rule) (useIncrements, newGroupsOnly bool) {
	v := r.View
	if !v.Agg.Additive() {
		return false, false
	}
	src := r.Sources[r.RecSources[0]]
	if src.Rec.IsAgg() && src.Rec.Agg.Additive() && headAggregatesValue(r, r.RecSources[0]) {
		return true, false
	}
	return false, true
}

func colsEqualAsSet(a, b []int) bool {
	if len(a) == 0 || len(a) != len(b) {
		return false
	}
	m := map[int]int{}
	for _, x := range a {
		m[x]++
	}
	for _, x := range b {
		m[x]--
	}
	for _, v := range m {
		if v != 0 {
			return false
		}
	}
	return true
}

// Describe renders the plan for EXPLAIN output.
func (p *Plan) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fixpoint[%s] partitionKey=%v decomposed=%v\n", p.View.Name, p.PartKey, p.Decomposed)
	if p.View.IsAgg() {
		fmt.Fprintf(&b, "  aggregate: %s() AS %s, implicit group by %v\n",
			p.View.Agg, p.View.Schema.Columns[p.View.AggIdx].Name, p.View.GroupIdx)
	}
	for i, rp := range p.Rules {
		fmt.Fprintf(&b, "  rule %d: strategy=%s", i, rp.Strategy)
		if rp.CoPartSource >= 0 {
			fmt.Fprintf(&b, " copartBase=%s on %v", rp.Rule.Sources[rp.CoPartSource].Binding, rp.CoPartBuildCols)
		}
		for _, s := range rp.Steps {
			fmt.Fprintf(&b, " broadcast=%s on %v", rp.Rule.Sources[s.Source].Binding, s.BuildCols)
		}
		if rp.UseIncrements {
			b.WriteString(" delta=increments")
		}
		if rp.NewGroupsOnly {
			b.WriteString(" delta=new-groups")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
