// Package fixpoint implements the paper's core contribution: the fixpoint
// operator evaluating recursive cliques with aggregates in recursion.
//
// Two engines are provided. Local is a single-threaded reference
// implementation supporting the full language — mutual recursion,
// non-linear rules, and all four monotonic aggregates with exact
// delta-increment semantics for sum/count. Distributed executes linear
// single-view cliques (every workload the paper benchmarks) on the
// simulated cluster with the paper's Distributed Semi-Naive evaluation and
// its optimizations: SetRDD state, partition-aware scheduling, stage
// combination, decomposed plans with compressed broadcast, and fused
// (code-generated) versus Volcano kernels.
package fixpoint

import (
	"context"
	"fmt"
	"strings"

	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/sql/expr"
	"github.com/rasql/rasql-go/internal/trace"
	"github.com/rasql/rasql-go/internal/types"
)

// Options configures a fixpoint evaluation.
type Options struct {
	// MaxIterations bounds the fixpoint loop; 0 means the default (100000).
	MaxIterations int
	// MaxRows aborts when the accumulated state exceeds this many rows;
	// 0 means unlimited. It is the guard that catches the paper's
	// non-terminating stratified SSSP on cyclic graphs.
	MaxRows int
	// Naive disables semi-naive evaluation: every iteration re-derives
	// everything from the full state (the paper's Algorithm 1/2).
	Naive bool
	// Tracer, when non-nil, receives per-iteration fixpoint telemetry
	// (and, through the cluster, stage/task spans). Nil disables tracing
	// at near-zero cost.
	Tracer *trace.Tracer
	// Context, when non-nil, is polled at every iteration boundary; once it
	// is done the evaluation stops between iterations and returns an
	// *ErrCancelled wrapping the context's error. Mid-iteration work always
	// completes, so cancellation never observes a half-merged delta.
	Context context.Context
}

func (o Options) maxIter() int {
	if o.MaxIterations <= 0 {
		return 100000
	}
	return o.MaxIterations
}

// Result holds the computed fixpoint of a clique.
type Result struct {
	// Relations maps lower-cased view names to their fixpoint relations.
	Relations map[string]*relation.Relation
	// Iterations is the number of fixpoint iterations executed.
	Iterations int
	// Mode names the evaluation mode the distributed engine actually ran
	// ("bsp", "ssp(k)", "async"); empty for the local engine.
	Mode string
	// FallbackReason, when non-empty, explains why a requested barrier-
	// relaxed mode was downgraded to BSP (the clique failed PreM
	// certification).
	FallbackReason string
}

// Bind registers the result relations on an execution context so the final
// query can read them.
func (r *Result) Bind(ctx *exec.Context) {
	for name, rel := range r.Relations {
		ctx.SetRecResult(name, rel)
	}
}

// ErrNonTermination reports a fixpoint that hit an iteration or row guard —
// the behaviour the paper describes for stratified SSSP on cyclic graphs.
type ErrNonTermination struct {
	Iterations int
	Rows       int
}

// Error implements error.
func (e *ErrNonTermination) Error() string {
	return fmt.Sprintf("fixpoint: no fixpoint after %d iterations (%d rows accumulated); the query may not terminate on this input", e.Iterations, e.Rows)
}

// ErrCancelled reports a fixpoint stopped at an iteration boundary because
// the caller's context was cancelled or its deadline expired. Cause is the
// context's error, so errors.Is(err, context.DeadlineExceeded) (or
// context.Canceled) sees through it.
type ErrCancelled struct {
	// Iterations counts the iterations that completed before the stop.
	Iterations int
	// Cause is the context error (context.Canceled or DeadlineExceeded).
	Cause error
}

// Error implements error.
func (e *ErrCancelled) Error() string {
	return fmt.Sprintf("fixpoint: cancelled at iteration boundary after %d iterations: %v", e.Iterations, e.Cause)
}

// Unwrap exposes the context error for errors.Is/As.
func (e *ErrCancelled) Unwrap() error { return e.Cause }

// checkCancel polls ctx without blocking and converts a done context into
// the iteration-boundary cancellation error.
func checkCancel(ctx context.Context, iterations int) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return &ErrCancelled{Iterations: iterations, Cause: ctx.Err()}
	default:
		return nil
	}
}

// deltaEntry is one tuple of a view's delta.
type deltaEntry struct {
	// row holds the tuple; for aggregate views the value column holds the
	// group's new total (or extremum).
	row types.Row
	// inc is the increment for additive (sum/count) views.
	inc types.Value
	// isNew marks a group/tuple first derived this iteration.
	isNew bool
}

// localView is the evaluation state of one recursive view.
type localView struct {
	v *analyze.RecView
	// all maps tuple/group keys to current rows.
	all map[string]types.Row
	// order preserves insertion order for deterministic output.
	order []string
	// delta is the frontier produced by the previous iteration.
	delta []deltaEntry
	// oldVals records, for groups updated in the last merge, the value
	// before the merge (nil Value with isNew for fresh groups). It
	// supports the A⁻ (all-minus-delta) source role in non-linear rules.
	oldVals map[string]*types.Value
}

func (lv *localView) key(row types.Row) string {
	if lv.v.IsAgg() {
		return types.KeyString(row, lv.v.GroupIdx)
	}
	return types.RowKeyString(row)
}

// rowsAll returns the current relation rows (A).
func (lv *localView) rowsAll() []types.Row {
	out := make([]types.Row, 0, len(lv.order))
	for _, k := range lv.order {
		out = append(out, lv.all[k])
	}
	return out
}

// rowsOld returns A⁻: the state as it was before the last merge.
func (lv *localView) rowsOld() []types.Row {
	out := make([]types.Row, 0, len(lv.order))
	for _, k := range lv.order {
		old, changed := lv.oldVals[k]
		if !changed {
			out = append(out, lv.all[k])
			continue
		}
		if old == nil {
			continue // tuple/group is new; not in A⁻
		}
		r := lv.all[k].Clone()
		r[lv.v.AggIdx] = *old
		out = append(out, r)
	}
	return out
}

// merge folds emitted contributions into the view state and computes the
// next delta. Emissions carry full contribution values; for additive views
// they are increments.
func (lv *localView) merge(emitted []types.Row) {
	lv.delta = lv.delta[:0]
	lv.oldVals = map[string]*types.Value{}
	v := lv.v
	if !v.IsAgg() {
		for _, r := range emitted {
			k := lv.key(r)
			if _, ok := lv.all[k]; ok {
				continue
			}
			lv.all[k] = r
			lv.order = append(lv.order, k)
			lv.oldVals[k] = nil
			lv.delta = append(lv.delta, deltaEntry{row: r, isNew: true})
		}
		return
	}
	additive := v.Agg.Additive()
	// Collapse emissions per group first so the delta has one entry per
	// changed group.
	changed := map[string]bool{}
	var changedOrder []string
	for _, r := range emitted {
		k := lv.key(r)
		val := r[v.AggIdx]
		cur, ok := lv.all[k]
		if !ok {
			if additive && val.AsFloat() == 0 {
				continue
			}
			lv.all[k] = r.Clone()
			lv.order = append(lv.order, k)
			lv.oldVals[k] = nil
			if !changed[k] {
				changed[k] = true
				changedOrder = append(changedOrder, k)
			}
			continue
		}
		if additive {
			if val.AsFloat() == 0 {
				continue
			}
			lv.recordOld(k, cur, val)
			cur[v.AggIdx] = cur[v.AggIdx].Add(val)
			if !changed[k] {
				changed[k] = true
				changedOrder = append(changedOrder, k)
			}
			continue
		}
		if v.Agg.Improves(val, cur[v.AggIdx]) {
			lv.recordOld(k, cur, val)
			cur[v.AggIdx] = val
			if !changed[k] {
				changed[k] = true
				changedOrder = append(changedOrder, k)
			}
		}
	}
	for _, k := range changedOrder {
		row := lv.all[k].Clone()
		e := deltaEntry{row: row}
		old, recorded := lv.oldVals[k]
		if recorded && old == nil {
			e.isNew = true
		}
		if additive {
			if e.isNew {
				e.inc = row[v.AggIdx]
			} else {
				e.inc = row[v.AggIdx].Sub(*old)
			}
		}
		lv.delta = append(lv.delta, e)
	}
}

// recordOld saves a group's pre-merge value exactly once per iteration.
func (lv *localView) recordOld(k string, cur types.Row, _ types.Value) {
	if _, ok := lv.oldVals[k]; !ok {
		old := cur[lv.v.AggIdx]
		lv.oldVals[k] = &old
	}
}

// Local evaluates the clique with single-threaded semi-naive (or naive)
// fixpoint iteration. It is the reference implementation: exact for mutual
// recursion, non-linear rules and all monotonic aggregates.
func Local(clique *analyze.Clique, ctx *exec.Context, opt Options) (*Result, error) {
	if opt.Naive {
		return localNaive(clique, ctx, opt)
	}
	views := make([]*localView, len(clique.Views))
	for i, v := range clique.Views {
		views[i] = &localView{v: v, all: map[string]types.Row{}, oldVals: map[string]*types.Value{}}
	}
	byName := map[string]*localView{}
	for _, lv := range views {
		byName[strings.ToLower(lv.v.Name)] = lv
	}

	tr := opt.Tracer
	// Base cases seed the deltas (iteration 0 of the telemetry).
	seedSpan := tr.BeginIteration(0)
	for _, lv := range views {
		var emitted []types.Row
		for _, rule := range lv.v.BaseRules {
			rows, err := evalRuleLocal(rule, nil, ctx, nil)
			if err != nil {
				return nil, err
			}
			emitted = append(emitted, rows...)
		}
		lv.merge(emitted)
	}
	if tr.Enabled() {
		seedSpan.End(localIterEvent("local", views))
	}

	iter := 0
	for {
		active := false
		for _, lv := range views {
			if len(lv.delta) > 0 {
				active = true
			}
		}
		if !active {
			break
		}
		iter++
		if err := checkCancel(opt.Context, iter-1); err != nil {
			return nil, err
		}
		if iter > opt.maxIter() || (opt.MaxRows > 0 && totalRows(views) > opt.MaxRows) {
			return nil, &ErrNonTermination{Iterations: iter, Rows: totalRows(views)}
		}

		is := tr.BeginIteration(iter)
		emitted := make([][]types.Row, len(views))
		for vi, lv := range views {
			for _, rule := range lv.v.RecRules {
				rows, err := evalRecRuleLocal(rule, byName, ctx)
				if err != nil {
					return nil, err
				}
				emitted[vi] = append(emitted[vi], rows...)
			}
		}
		for vi, lv := range views {
			lv.merge(emitted[vi])
		}
		if tr.Enabled() {
			is.End(localIterEvent("local", views))
		}
	}

	res := &Result{Relations: map[string]*relation.Relation{}, Iterations: iter}
	for _, lv := range views {
		res.Relations[strings.ToLower(lv.v.Name)] = relation.FromRows(lv.v.Name, lv.v.Schema, lv.rowsAll())
	}
	return res, nil
}

func totalRows(views []*localView) int {
	n := 0
	for _, lv := range views {
		n += len(lv.all)
	}
	return n
}

// evalRecRuleLocal evaluates one recursive rule with the exact semi-naive
// variant split: for k recursive sources the rule expands into k variants
// where variant i reads full state (A) for recursive sources before i, the
// delta for source i, and pre-merge state (A⁻) for sources after i — a
// disjoint partition of the new derivations.
func evalRecRuleLocal(rule *analyze.Rule, byName map[string]*localView, ctx *exec.Context) ([]types.Row, error) {
	var out []types.Row
	for vi := range rule.RecSources {
		rows, err := evalRuleVariant(rule, vi, byName, ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

func evalRuleVariant(rule *analyze.Rule, variant int, byName map[string]*localView, ctx *exec.Context) ([]types.Row, error) {
	n := len(rule.Sources)
	rows := make([][]types.Row, n)
	for si, s := range rule.Sources {
		if s.Kind != analyze.SourceRec {
			rel, err := ctx.SourceRelation(s)
			if err != nil {
				return nil, err
			}
			rows[si] = rel.Rows
			continue
		}
		lv := byName[strings.ToLower(s.Rec.Name)]
		pos := recPosition(rule, si)
		switch {
		case pos == variant:
			rows[si] = deltaRowsFor(rule, si, lv)
		case pos < variant:
			rows[si] = lv.rowsAll()
		default:
			rows[si] = lv.rowsOld()
		}
	}
	envs := exec.JoinRows(n, rows, rule.Conjuncts)
	return projectHead(rule, envs), nil
}

// recPosition returns the index of source si within the rule's recursive
// sources.
func recPosition(rule *analyze.Rule, si int) int {
	for i, s := range rule.RecSources {
		if s == si {
			return i
		}
	}
	return -1
}

// deltaRowsFor adapts a recursive source's delta to the consuming rule.
// When the consuming rule sums the source's aggregate value (linearly),
// delta rows carry increments; when the consuming head is additive but does
// not aggregate the value, only genuinely new tuples flow (value updates
// derive nothing new); otherwise delta rows carry their totals.
func deltaRowsFor(rule *analyze.Rule, si int, lv *localView) []types.Row {
	src := rule.Sources[si]
	consumerAdditive := rule.View.Agg.Additive()
	if !consumerAdditive {
		out := make([]types.Row, len(lv.delta))
		for i, d := range lv.delta {
			out[i] = d.row
		}
		return out
	}
	if src.Rec.IsAgg() && src.Rec.Agg.Additive() && headAggregatesValue(rule, si) {
		out := make([]types.Row, 0, len(lv.delta))
		for _, d := range lv.delta {
			r := d.row.Clone()
			r[src.Rec.AggIdx] = d.inc
			out = append(out, r)
		}
		return out
	}
	// Additive consumer that does not propagate the value: count each
	// tuple/group once, on first derivation.
	out := make([]types.Row, 0, len(lv.delta))
	for _, d := range lv.delta {
		if d.isNew {
			out = append(out, d.row)
		}
	}
	return out
}

// headAggregatesValue reports whether the rule's aggregate head expression
// reads the recursive source's aggregate column.
func headAggregatesValue(rule *analyze.Rule, si int) bool {
	if rule.View.AggIdx < 0 {
		return false
	}
	found := false
	expr.Walk(rule.Head[rule.View.AggIdx], func(e expr.Expr) bool {
		if c, ok := e.(*expr.Col); ok && c.Input == si && c.Idx == rule.Sources[si].Rec.AggIdx {
			found = true
			return false
		}
		return true
	})
	return found
}

// projectHead evaluates the head projections over the join results,
// normalizing count() contributions.
func projectHead(rule *analyze.Rule, envs []expr.Env) []types.Row {
	v := rule.View
	out := make([]types.Row, 0, len(envs))
	for _, env := range envs {
		row := make(types.Row, len(rule.Head))
		for i, h := range rule.Head {
			row[i] = h.Eval(env)
		}
		if v.Agg == types.AggCount {
			row[v.AggIdx] = types.CountContribution(row[v.AggIdx])
		}
		out = append(out, row)
	}
	return out
}

// evalRuleLocal evaluates a base rule (no recursive sources).
func evalRuleLocal(rule *analyze.Rule, _ []*localView, ctx *exec.Context, _ map[string]*localView) ([]types.Row, error) {
	n := len(rule.Sources)
	rows := make([][]types.Row, n)
	for si, s := range rule.Sources {
		rel, err := ctx.SourceRelation(s)
		if err != nil {
			return nil, err
		}
		rows[si] = rel.Rows
	}
	envs := exec.JoinRows(n, rows, rule.Conjuncts)
	return projectHead(rule, envs), nil
}

// localNaive evaluates the clique with the paper's Algorithm 1/2: every
// iteration re-derives the whole state from the previous state and the
// loop stops when nothing changes.
func localNaive(clique *analyze.Clique, ctx *exec.Context, opt Options) (*Result, error) {
	state := map[string]*relation.Relation{}
	for _, v := range clique.Views {
		state[strings.ToLower(v.Name)] = relation.New(v.Name, v.Schema)
	}
	tr := opt.Tracer
	prevRows := 0
	iter := 0
	for {
		iter++
		if err := checkCancel(opt.Context, iter-1); err != nil {
			return nil, err
		}
		if iter > opt.maxIter() {
			return nil, &ErrNonTermination{Iterations: iter, Rows: naiveRows(state)}
		}
		is := tr.BeginIteration(iter)
		next, changedAny, err := NaiveStep(clique, state, ctx)
		if err != nil {
			return nil, err
		}
		state = next
		if tr.Enabled() {
			// Naive evaluation has no delta; report relation growth so the
			// curve is comparable with the semi-naive runs.
			n := naiveRows(state)
			grown := n - prevRows
			if grown < 0 {
				grown = 0
			}
			prevRows = n
			is.End(trace.IterationEvent{Mode: "local-naive", DeltaRows: grown, NewKeys: grown, AllRows: n})
		}
		if !changedAny {
			break
		}
		if opt.MaxRows > 0 && naiveRows(state) > opt.MaxRows {
			return nil, &ErrNonTermination{Iterations: iter, Rows: naiveRows(state)}
		}
	}
	return &Result{Relations: state, Iterations: iter}, nil
}

// NaiveStep evaluates one naive-fixpoint iteration (the γ(T(·)) of the
// paper's Algorithm 1/2): every rule re-derives from the full given state
// and the per-view aggregate (or set dedup) applies to the complete
// derivation set. It returns the next state and whether anything changed.
// The PreM checker drives both the original and the PreM-checking versions
// of a query through this step function.
func NaiveStep(clique *analyze.Clique, state map[string]*relation.Relation, ctx *exec.Context) (map[string]*relation.Relation, bool, error) {
	next := map[string]*relation.Relation{}
	changedAny := false
	for _, v := range clique.Views {
		var emitted []types.Row
		for _, rule := range append(append([]*analyze.Rule{}, v.BaseRules...), v.RecRules...) {
			rows, err := evalRuleNaive(rule, state, ctx)
			if err != nil {
				return nil, false, err
			}
			emitted = append(emitted, rows...)
		}
		nr := naiveAggregate(v, emitted)
		next[strings.ToLower(v.Name)] = nr
		if !nr.EqualAsSet(state[strings.ToLower(v.Name)]) {
			changedAny = true
		}
	}
	return next, changedAny, nil
}

func naiveRows(state map[string]*relation.Relation) int {
	n := 0
	for _, r := range state {
		n += r.Len()
	}
	return n
}

func evalRuleNaive(rule *analyze.Rule, state map[string]*relation.Relation, ctx *exec.Context) ([]types.Row, error) {
	n := len(rule.Sources)
	rows := make([][]types.Row, n)
	for si, s := range rule.Sources {
		if s.Kind == analyze.SourceRec {
			rows[si] = state[strings.ToLower(s.Rec.Name)].Rows
			continue
		}
		rel, err := ctx.SourceRelation(s)
		if err != nil {
			return nil, err
		}
		rows[si] = rel.Rows
	}
	envs := exec.JoinRows(n, rows, rule.Conjuncts)
	return projectHead(rule, envs), nil
}

// naiveAggregate applies the view's head aggregate (or set dedup) to a full
// set of derivations — the γ of γ(T(R)) in the naive loop.
func naiveAggregate(v *analyze.RecView, emitted []types.Row) *relation.Relation {
	out := relation.New(v.Name, v.Schema)
	if !v.IsAgg() {
		out.Rows = emitted
		return out.Dedup()
	}
	idx := map[string]int{}
	for _, r := range emitted {
		k := types.KeyString(r, v.GroupIdx)
		if i, ok := idx[k]; ok {
			out.Rows[i][v.AggIdx] = v.Agg.Combine(out.Rows[i][v.AggIdx], r[v.AggIdx])
			continue
		}
		idx[k] = len(out.Rows)
		out.Rows = append(out.Rows, r.Clone())
	}
	return out
}
