package fixpoint

import (
	"testing"

	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/types"
	"github.com/rasql/rasql-go/queries"
)

func TestParseEvalMode(t *testing.T) {
	cases := []struct {
		in      string
		mode    EvalMode
		k       int
		wantErr bool
	}{
		{"", ModeBSP, 0, false},
		{"bsp", ModeBSP, 0, false},
		{"ssp", ModeSSP, 1, false},
		{"ssp:0", ModeSSP, 0, false},
		{"ssp:4", ModeSSP, 4, false},
		{"async", ModeAsync, 0, false},
		{"ssp:-1", ModeBSP, 0, true},
		{"ssp:x", ModeBSP, 0, true},
		{"turbo", ModeBSP, 0, true},
	}
	for _, c := range cases {
		mode, k, err := ParseEvalMode(c.in)
		if (err != nil) != c.wantErr || mode != c.mode || k != c.k {
			t.Errorf("ParseEvalMode(%q) = (%v, %d, %v), want (%v, %d, err=%v)",
				c.in, mode, k, err, c.mode, c.k, c.wantErr)
		}
	}
}

func TestModeLabels(t *testing.T) {
	if got := (DistOptions{}).modeLabel(); got != "bsp" {
		t.Errorf("bsp label = %q", got)
	}
	if got := (DistOptions{Mode: ModeSSP, Staleness: 3}).modeLabel(); got != "ssp(3)" {
		t.Errorf("ssp label = %q", got)
	}
	if got := (DistOptions{Mode: ModeSSP, Staleness: -7}).modeLabel(); got != "ssp(0)" {
		t.Errorf("negative staleness must clamp: %q", got)
	}
	if got := (DistOptions{Mode: ModeAsync}).modeLabel(); got != "async" {
		t.Errorf("async label = %q", got)
	}
}

// TestRelaxedMatchesBSPPerPlanShape runs the relaxed evaluator against the
// BSP oracle for each distributed plan shape — co-partitioned aggregate,
// decomposed set, decomposed aggregate, broadcast, and the shuffled replan
// — confirming the single delta-routing kernel covers them all.
func TestRelaxedMatchesBSPPerPlanShape(t *testing.T) {
	edges := gen.RMATDefault(128, gen.Rng(21))
	rel := relation.New("rel", types.NewSchema(
		types.Col("Parent", types.KindInt), types.Col("Child", types.KindInt)))
	rel.Rows = append(rel.Rows,
		types.Row{types.Int(1), types.Int(2)}, types.Row{types.Int(1), types.Int(3)},
		types.Row{types.Int(2), types.Int(4)}, types.Row{types.Int(3), types.Int(5)})

	cases := []struct {
		name, src, view string
		rels            []*relation.Relation
		noDecompose     bool
	}{
		{"copart-agg", queries.SSSP, "path", []*relation.Relation{edges}, false},
		{"decomposed-set", queries.TC, "tc", []*relation.Relation{gen.Unweighted(edges)}, false},
		{"decomposed-agg", queries.APSP, "path", []*relation.Relation{edges}, false},
		{"broadcast", queries.SG, "sg", []*relation.Relation{rel}, false},
		{"shuffled-replan", queries.TC, "tc", []*relation.Relation{gen.Unweighted(edges)}, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cat := testCatalog(c.rels...)
			run := func(opt DistOptions) *Result {
				opt.DisableDecomposition = c.noDecompose
				prog := analyzeQ(t, c.src, cat)
				res, err := Distributed(prog.Clique, exec.NewContext(), testCluster(), opt)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := run(DistOptions{})
			if want.Mode != "bsp" {
				t.Errorf("BSP result mode = %q", want.Mode)
			}
			for _, opt := range []DistOptions{
				{Mode: ModeSSP, Staleness: 1},
				{Mode: ModeSSP, Staleness: 4},
				{Mode: ModeAsync},
			} {
				got := run(opt)
				if !got.Relations[c.view].EqualAsSet(want.Relations[c.view]) {
					t.Errorf("%s diverged from BSP", opt.modeLabel())
				}
				if got.Mode != opt.modeLabel() {
					t.Errorf("result mode = %q, want %q", got.Mode, opt.modeLabel())
				}
				if got.FallbackReason != "" {
					t.Errorf("unexpected fallback: %s", got.FallbackReason)
				}
			}
		})
	}
}

// TestRelaxedFallbackRecordsReason: an uncertifiable aggregate clique
// requested relaxed must run BSP and say why.
func TestRelaxedFallbackRecordsReason(t *testing.T) {
	// The anti-monotone filter refutes PreM but still terminates.
	const refuted = `
WITH recursive path (Dst, min() AS Cost) AS
    (SELECT 1, 0) UNION
    (SELECT edge.Dst, path.Cost + edge.Cost
     FROM path, edge
     WHERE path.Dst = edge.Src AND path.Cost >= 5)
SELECT Dst, Cost FROM path`
	edges := gen.RMATDefault(64, gen.Rng(7))
	prog := analyzeQ(t, refuted, testCatalog(edges))
	res, err := Distributed(prog.Clique, exec.NewContext(), testCluster(),
		DistOptions{Mode: ModeAsync})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "bsp" {
		t.Errorf("mode = %q, want bsp fallback", res.Mode)
	}
	if res.FallbackReason == "" {
		t.Error("fallback reason not recorded")
	}
}

// TestRelaxedNonTerminationGuard: the iteration guard must also fire
// without barriers (the failed flag drains the region instead of hanging).
func TestRelaxedNonTerminationGuard(t *testing.T) {
	// SSSP over a negative-cost cycle never converges.
	edges := relation.New("edge", gen.EdgeSchema())
	add := func(s, d int64, c float64) {
		edges.Rows = append(edges.Rows, types.Row{types.Int(s), types.Int(d), types.Float(c)})
	}
	add(1, 2, -1)
	add(2, 1, -1)
	prog := analyzeQ(t, queries.SSSP, testCatalog(edges))
	_, err := Distributed(prog.Clique, exec.NewContext(), testCluster(),
		DistOptions{Options: Options{MaxIterations: 50}, Mode: ModeAsync})
	if _, ok := err.(*ErrNonTermination); !ok {
		t.Fatalf("err = %v, want ErrNonTermination", err)
	}
}
