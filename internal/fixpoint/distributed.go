package fixpoint

import (
	"strings"
	"sync"
	"sync/atomic"

	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/ast"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/sql/expr"
	"github.com/rasql/rasql-go/internal/trace"
	"github.com/rasql/rasql-go/internal/types"
)

// DistOptions configures the distributed DSN engine.
type DistOptions struct {
	Options
	// StageCombination fuses the Reduce stage of iteration i with the Map
	// stage of iteration i+1 into one ShuffleMap stage (Algorithm 6,
	// Section 7.1). Off reproduces the two-stage Algorithm 4/5.
	StageCombination bool
	// Join selects the co-partitioned join implementation (Appendix D).
	Join JoinStrategy
	// Volcano disables the fused ("code generation") kernels and runs the
	// classical iterator model instead (Section 7.3 ablation).
	Volcano bool
	// DisableDecomposition forces shuffle execution even for decomposable
	// plans (Section 7.2 ablation).
	DisableDecomposition bool
	// RebuildJoinState rebuilds the cached build-side hash tables /
	// sorted runs and re-broadcasts every iteration, modelling an
	// iterative-SQL loop that cannot cache across statements (the
	// Spark-SQL-SN baseline of Section 8.2).
	RebuildJoinState bool
	// Mode selects the synchronization discipline: the default ModeBSP
	// barrier loop, SSP(k) bounded staleness, or fully asynchronous
	// execution. Relaxed modes require the clique to be confluent — a set
	// view, or an aggregate view vet certifies PreM — and transparently
	// fall back to BSP otherwise (Result.FallbackReason records why).
	Mode EvalMode
	// Staleness is the SSP bound k (ModeSSP only): a partition may run at
	// most k rounds ahead of the slowest partition that still has work.
	Staleness int
}

// Distributed evaluates a linear single-view clique on the simulated
// cluster with Distributed Semi-Naive evaluation. Callers should fall back
// to Local when PlanDistributed rejects the clique.
func Distributed(clique *analyze.Clique, ctx *exec.Context, c *cluster.QueryContext, opt DistOptions) (*Result, error) {
	plan, err := PlanDistributed(clique)
	if err != nil {
		return nil, err
	}
	if opt.DisableDecomposition && plan.Decomposed {
		plan = replanShuffled(clique)
	}
	// Barrier relaxation is sound only for confluent cliques; anything else
	// silently losing the barrier could observe non-final aggregates, so a
	// failed certification downgrades to BSP and says why.
	var fallback string
	if opt.Mode != ModeBSP {
		if reason := relaxedIneligible(clique, plan); reason != "" {
			fallback = reason
			if opt.Tracer.SpansEnabled() {
				opt.Tracer.Instant("bsp fallback: "+reason, trace.TidDriver)
			}
			opt.Mode = ModeBSP
		}
	}
	res, err := runDistributed(plan, ctx, c, opt)
	if err != nil {
		return nil, err
	}
	res.Mode = opt.modeLabel()
	res.FallbackReason = fallback
	// Surface the mode on the query context so the per-query QueryStats
	// fold (obs recorder, query log) attributes it without re-deriving.
	c.SetMode(res.Mode, fallback)
	return res, nil
}

// replanShuffled rebuilds the plan with decomposition disabled; the rules
// keep their broadcast joins but the output shuffles each iteration.
func replanShuffled(clique *analyze.Clique) *Plan {
	v := clique.Views[0]
	p := &Plan{View: v}
	if v.IsAgg() {
		p.PartKey = append([]int(nil), v.GroupIdx...)
	} else {
		p.PartKey = allColumns(v)
	}
	for _, r := range v.RecRules {
		rp, err := planRule(r, p.PartKey, true)
		if err != nil {
			// planRule with forceBroadcast cannot fail for rules that
			// already planned once.
			panic("fixpoint: replan failed: " + err.Error())
		}
		rp.Strategy = StrategyBroadcast
		p.Rules = append(p.Rules, rp)
	}
	return p
}

// viewState wraps SetRDD/AggRDD behind one merge interface.
type viewState struct {
	v   *analyze.RecView
	set *cluster.SetRDD
	agg *cluster.AggRDD
}

func newViewState(c *cluster.QueryContext, v *analyze.RecView) *viewState {
	if v.IsAgg() {
		return &viewState{v: v, agg: c.NewAggRDD(v.Schema, v.GroupIdx, v.AggIdx, v.Agg)}
	}
	return &viewState{v: v, set: c.NewSetRDD(v.Schema)}
}

func (s *viewState) merge(part int, rows []types.Row) deltaBatch {
	if s.set != nil {
		return deltaBatch{Rows: s.set.Merge(part, rows)}
	}
	d := s.agg.Merge(part, rows)
	return deltaBatch{Rows: d.Rows, Incs: d.Incs, News: d.News}
}

func (s *viewState) len() int {
	if s.set != nil {
		return s.set.Len()
	}
	return s.agg.Len()
}

func (s *viewState) owner(part int) int {
	if s.set != nil {
		return s.set.Owner[part]
	}
	return s.agg.Owner[part]
}

func (s *viewState) partitions() int {
	if s.set != nil {
		return s.set.NumPartitions()
	}
	return s.agg.NumPartitions()
}

func (s *viewState) rows(part int) []types.Row {
	if s.set != nil {
		return s.set.Rows(part)
	}
	return s.agg.Rows(part)
}

// checkpoint/restore wrap the state's Section 6.1 snapshots.
type stateCheckpoint struct {
	set *cluster.SetCheckpoint
	agg *cluster.AggCheckpoint
}

func (s *viewState) checkpoint(part int) stateCheckpoint {
	if s.set != nil {
		return stateCheckpoint{set: s.set.Checkpoint(part)}
	}
	return stateCheckpoint{agg: s.agg.Checkpoint(part)}
}

func (s *viewState) restore(cp stateCheckpoint) {
	if s.set != nil {
		s.set.Restore(cp.set)
		return
	}
	s.agg.Restore(cp.agg)
}

// recoverableTask wraps a stage task that merges into the view state. Under
// an enabled fault injector it snapshots the partition at stage-construction
// time (the driver builds tasks before any attempt runs, so the snapshot is
// valid even when the fault fires before the body) and registers a Rollback
// that restores it — the Section 6.1 recovery: the accumulated all relation
// is its own checkpoint, and a failed attempt replays only the current
// iteration's work on that partition.
func recoverableTask(c *cluster.QueryContext, state *viewState, t cluster.Task) cluster.Task {
	if c.ChaosEnabled() {
		cp := state.checkpoint(t.Part)
		t.Rollback = func() {
			state.restore(cp)
			c.Metrics.RecoveredIterations.Add(1)
		}
	}
	return t
}

func runDistributed(plan *Plan, ctx *exec.Context, c *cluster.QueryContext, opt DistOptions) (*Result, error) {
	if opt.Volcano && opt.Join == SortMerge {
		opt.Join = ShuffleHash // sort-merge is implemented in the fused path
	}
	v := plan.View
	parts := c.Partitions()

	kernels, err := makeKernels(plan, ctx, c, opt)
	if err != nil {
		return nil, err
	}

	state := newViewState(c, v)

	// Evaluate base cases on the driver and bucket them by partition key.
	var baseRows []types.Row
	for _, rule := range v.BaseRules {
		rows, err := evalRuleLocal(rule, nil, ctx, nil)
		if err != nil {
			return nil, err
		}
		baseRows = append(baseRows, rows...)
	}
	seed := make([][]types.Row, parts)
	for _, r := range baseRows {
		p := int(types.HashRowKey(r, plan.PartKey) % uint64(parts))
		seed[p] = append(seed[p], r)
	}

	if opt.Mode != ModeBSP {
		// Every plan shape shares the one relaxed delta-routing kernel; the
		// plan still decides partitioning and join strategy.
		return runRelaxed(plan, state, kernels, seed, c, opt)
	}
	if plan.Decomposed {
		return runDecomposed(plan, state, kernels, seed, c, opt)
	}
	if opt.StageCombination {
		return runCombined(plan, state, kernels, seed, c, opt)
	}
	return runTwoStage(plan, state, kernels, seed, ctx, c, opt)
}

// makeKernels builds the per-rule kernels: cached co-partitioned hash
// tables or sorted runs, and compressed/hashed broadcasts.
func makeKernels(plan *Plan, ctx *exec.Context, c *cluster.QueryContext, opt DistOptions) ([]*ruleKernel, error) {
	kernels := make([]*ruleKernel, len(plan.Rules))
	for i, rp := range plan.Rules {
		k := &ruleKernel{rp: rp, volcano: opt.Volcano, join: opt.Join}
		if rp.Strategy == StrategyCoPartition {
			rel, err := ctx.SourceRelation(rp.Rule.Sources[rp.CoPartSource])
			if err != nil {
				return nil, err
			}
			k.copart = buildCopart(c, rel.Rows, rp.CoPartBuildCols, opt.Join)
		}
		for _, st := range rp.Steps {
			rel, err := ctx.SourceRelation(rp.Rule.Sources[st.Source])
			if err != nil {
				return nil, err
			}
			k.bcasts = append(k.bcasts, c.Broadcast(rel.Rows, rel.Schema, st.BuildCols))
		}
		kernels[i] = k
	}
	return kernels, nil
}

// project evaluates rule heads over kernel emissions, bucketing output rows
// by the view partition key, with map-side partial aggregation (Algorithm
// 5 line 5). Head expressions are compiled to closures once per rule and
// output rows carve slices out of chunked arenas — the allocation-shape
// half of whole-stage code generation.
type projector struct {
	plan  *Plan
	parts int
	// heads[rule][col] is the compiled projection.
	heads [][]func(expr.Env) types.Value
}

func newProjector(plan *Plan, parts int) *projector {
	pr := &projector{plan: plan, parts: parts}
	pr.heads = make([][]func(expr.Env) types.Value, len(plan.Rules))
	for i, rp := range plan.Rules {
		fns := make([]func(expr.Env) types.Value, len(rp.Rule.Head))
		for j, h := range rp.Rule.Head {
			fns[j] = compileExpr(h)
		}
		pr.heads[i] = fns
	}
	return pr
}

// compileExpr flattens the common expression shapes into direct closures,
// removing the per-row interface dispatch of the generic evaluator.
func compileExpr(e expr.Expr) func(expr.Env) types.Value {
	switch x := e.(type) {
	case *expr.Col:
		in, idx := x.Input, x.Idx
		return func(env expr.Env) types.Value { return env[in][idx] }
	case *expr.Lit:
		v := x.V
		return func(expr.Env) types.Value { return v }
	case *expr.Bin:
		l, r := compileExpr(x.L), compileExpr(x.R)
		switch x.Op {
		case ast.OpAdd:
			return func(env expr.Env) types.Value { return l(env).Add(r(env)) }
		case ast.OpSub:
			return func(env expr.Env) types.Value { return l(env).Sub(r(env)) }
		case ast.OpMul:
			return func(env expr.Env) types.Value { return l(env).Mul(r(env)) }
		case ast.OpDiv:
			return func(env expr.Env) types.Value { return l(env).Div(r(env)) }
		}
	}
	return e.Eval
}

// rowArena allocates output rows in chunks to cut allocator and GC
// pressure in the emit hot path.
type rowArena struct {
	buf   []types.Value
	width int
}

func (a *rowArena) next() types.Row {
	if len(a.buf) < a.width {
		a.buf = make([]types.Value, 4096*a.width)
	}
	r := a.buf[:a.width:a.width]
	a.buf = a.buf[a.width:]
	return r
}

func (pr *projector) run(c *cluster.QueryContext, kernels []*ruleKernel, delta deltaBatch, part, worker int) [][]types.Row {
	v := pr.plan.View
	out := make([][]types.Row, pr.parts)
	arena := rowArena{width: v.Schema.Len()}
	for ki, k := range kernels {
		rp := pr.plan.Rules[ki]
		stream := delta.streamRows(rp, aggIdxOf(v))
		if len(stream) == 0 {
			continue
		}
		head := pr.heads[ki]
		k.run(c, stream, part, worker, func(env expr.Env) {
			row := arena.next()
			for i, h := range head {
				row[i] = h(env)
			}
			if v.Agg == types.AggCount {
				row[v.AggIdx] = types.CountContribution(row[v.AggIdx])
			}
			t := int(types.HashRowKey(row, pr.plan.PartKey) % uint64(pr.parts))
			out[t] = append(out[t], row)
		})
	}
	if v.IsAgg() {
		for t := range out {
			// Output rows are arena-owned and private to this call.
			out[t] = types.PartialAggregateOwned(out[t], v.GroupIdx, v.AggIdx, v.Agg)
		}
	}
	return out
}

func aggIdxOf(v *analyze.RecView) int {
	if v.AggIdx >= 0 {
		return v.AggIdx
	}
	return 0
}

// runTwoStage is Algorithm 4/5: a Map stage (join + partial aggregate +
// shuffle) and a Reduce stage (merge into the all relation, emit delta) per
// iteration.
func runTwoStage(plan *Plan, state *viewState, kernels []*ruleKernel, seed [][]types.Row, ctx *exec.Context, c *cluster.QueryContext, opt DistOptions) (*Result, error) {
	parts := state.partitions()
	pr := newProjector(plan, parts)
	deltas := make([]deltaBatch, parts)
	tr := opt.Tracer

	// Seed: merge the base case in one reduce-like stage.
	seedSpan := tr.BeginIteration(0)
	seedTasks := make([]cluster.Task, parts)
	for i := range seedTasks {
		p := i
		seedTasks[i] = recoverableTask(c, state, cluster.Task{Part: p, Preferred: state.owner(p), Run: func(w int) {
			rows := c.Fetch(seed[p], -1, w)
			deltas[p] = state.merge(p, rows)
			c.ChaosPostMerge(w)
		}})
	}
	c.RunStage("fixpoint.seed", seedTasks)
	if tr.Enabled() {
		ev := iterEvent("dsn-two-stage", state, nil, shuffleMark{})
		countDeltas(&ev, deltas)
		seedSpan.End(ev)
	}

	iter := 0
	for {
		if allEmpty(deltas) {
			break
		}
		iter++
		c.Metrics.Iterations.Add(1)
		if err := checkCancel(opt.Context, iter-1); err != nil {
			return nil, err
		}
		if iter > opt.maxIter() || (opt.MaxRows > 0 && state.len() > opt.MaxRows) {
			return nil, &ErrNonTermination{Iterations: iter, Rows: state.len()}
		}
		if opt.RebuildJoinState {
			var err error
			kernels, err = makeKernels(plan, ctx, c, opt)
			if err != nil {
				return nil, err
			}
		}
		var mark shuffleMark
		if tr.Enabled() {
			mark = markShuffle(c)
		}
		is := tr.BeginIteration(iter)
		sh := c.NewShuffle(parts)
		mapTasks := make([]cluster.Task, 0, parts)
		for p := 0; p < parts; p++ {
			if deltas[p].empty() {
				continue
			}
			p := p
			d := deltas[p]
			mapTasks = append(mapTasks, cluster.Task{Part: p, Preferred: state.owner(p), Run: func(w int) {
				// The delta RDD was produced by the previous Reduce stage
				// on the state owner; a Map task placed elsewhere (the
				// default scheduler's locality-oblivious pickup) fetches
				// it remotely — the inter-iteration locality loss the
				// paper's partition-aware scheduling removes.
				d.Rows = c.Fetch(d.Rows, state.owner(p), w)
				sh.Add(pr.run(c, kernels, d, p, w), w)
			}})
		}
		c.RunStage("fixpoint.map", mapTasks)

		next := make([]deltaBatch, parts)
		redTasks := make([]cluster.Task, parts)
		for i := range redTasks {
			p := i
			redTasks[i] = recoverableTask(c, state, cluster.Task{Part: p, Preferred: state.owner(p), Run: func(w int) {
				rows := sh.FetchTarget(p, w)
				// State lives on its owner; a task placed elsewhere must
				// move the data there (the hybrid scheduler pays this).
				if w != state.owner(p) {
					rows = c.Fetch(rows, w, state.owner(p))
				}
				next[p] = state.merge(p, rows)
				c.ChaosPostMerge(w)
			}})
		}
		c.RunStage("fixpoint.reduce", redTasks)
		deltas = next
		if tr.Enabled() {
			ev := iterEvent("dsn-two-stage", state, c, mark)
			countDeltas(&ev, deltas)
			is.End(ev)
		}
	}
	return collect(plan, state, c, iter)
}

// runCombined is Algorithm 6: one ShuffleMap stage per iteration that
// merges the incoming shuffle data, derives the new delta, joins and
// partially aggregates it, and emits the next shuffle — made possible by
// partition-aware scheduling keeping state, base partition and shuffle
// output on the same worker.
func runCombined(plan *Plan, state *viewState, kernels []*ruleKernel, seed [][]types.Row, c *cluster.QueryContext, opt DistOptions) (*Result, error) {
	parts := state.partitions()
	pr := newProjector(plan, parts)
	tr := opt.Tracer
	traceOn := tr.Enabled()

	sh := c.NewShuffle(parts)
	//rasql:allow workeraffinity -- driver-side seed write (producer -1) before any worker task starts; the driver shard has exactly one writer
	sh.Add(seed, -1)

	var pending atomic.Int64
	// Per-pass frontier counters, accumulated by the merge tasks (the
	// combined runner never materializes its deltas on the driver).
	var dRows, dNews, dImp atomic.Int64
	pending.Store(1) // seed data
	iter := 0
	for pending.Load() > 0 {
		iter++
		// The first pass merges the base case — the seed stage of the
		// two-stage runner — so iterations count from the second pass to
		// keep the metric comparable across execution modes.
		if iter > 1 {
			c.Metrics.Iterations.Add(1)
		}
		if err := checkCancel(opt.Context, iter-1); err != nil {
			return nil, err
		}
		if iter > opt.maxIter() || (opt.MaxRows > 0 && state.len() > opt.MaxRows) {
			return nil, &ErrNonTermination{Iterations: iter, Rows: state.len()}
		}
		var mark shuffleMark
		if traceOn {
			mark = markShuffle(c)
			dRows.Store(0)
			dNews.Store(0)
			dImp.Store(0)
		}
		// Pass 1 is the base-case merge, so its telemetry lands on
		// iteration 0 — aligned with the two-stage runner's seed stage.
		is := tr.BeginIteration(iter - 1)
		next := c.NewShuffle(parts)
		pending.Store(0)
		tasks := make([]cluster.Task, parts)
		for i := range tasks {
			p := i
			tasks[i] = recoverableTask(c, state, cluster.Task{Part: p, Preferred: state.owner(p), Run: func(w int) {
				rows := sh.FetchTarget(p, w)
				if w != state.owner(p) {
					rows = c.Fetch(rows, w, state.owner(p))
				}
				d := state.merge(p, rows)
				// The post-merge fault point models an executor dying after
				// mutating the cached state but before publishing output —
				// the case where recovery must restore the iteration
				// checkpoint before the replay (Section 6.1).
				c.ChaosPostMerge(w)
				if traceOn {
					rows, news, imp := countDelta(d)
					dRows.Add(int64(rows))
					dNews.Add(int64(news))
					dImp.Add(int64(imp))
				}
				if d.empty() {
					return
				}
				out := pr.run(c, kernels, d, p, w)
				for _, bucket := range out {
					if len(bucket) > 0 {
						pending.Add(1)
						break
					}
				}
				next.Add(out, w)
			}})
		}
		c.RunStage("fixpoint.shufflemap", tasks)
		if traceOn {
			ev := iterEvent("dsn-combined", state, c, mark)
			ev.DeltaRows = int(dRows.Load())
			ev.NewKeys = int(dNews.Load())
			ev.Improved = int(dImp.Load())
			is.End(ev)
		}
		sh = next
	}
	return collect(plan, state, c, iter-1)
}

// runDecomposed is the Section 7.2 execution: with the partition key
// carried by every rule head and all base relations broadcast, each
// partition iterates to its own fixpoint with no synchronization or
// shuffling at all — a single stage for the whole recursion.
func runDecomposed(plan *Plan, state *viewState, kernels []*ruleKernel, seed [][]types.Row, c *cluster.QueryContext, opt DistOptions) (*Result, error) {
	parts := state.partitions()
	pr := newProjector(plan, parts)
	tr := opt.Tracer
	traceOn := tr.Enabled()
	var maxIters atomic.Int64
	var dRows, dNews, dImp atomic.Int64
	var failed atomic.Bool
	var mu sync.Mutex
	var firstErr error

	// Decomposed execution has no global iteration barrier — each partition
	// races to its own fixpoint inside one stage — so the telemetry is a
	// single summary event spanning the stage, numbered with the deepest
	// partition's iteration count.
	is := tr.BeginIteration(0)
	tasks := make([]cluster.Task, parts)
	for i := range tasks {
		p := i
		tasks[i] = recoverableTask(c, state, cluster.Task{Part: p, Preferred: state.owner(p), Run: func(w int) {
			rows := c.Fetch(seed[p], -1, w)
			d := state.merge(p, rows)
			// A decomposed task runs its whole local fixpoint in one
			// attempt, so a fault anywhere rolls the partition back to its
			// (empty) stage checkpoint and replays the fixpoint from the
			// seed — the whole-task replay a lineage-free executor loss
			// forces.
			c.ChaosPostMerge(w)
			local := 0
			// Per-attempt telemetry, published only when the attempt
			// completes, so rounds rolled back by a fault are not counted
			// twice by the replay.
			var tRows, tNews, tImp int
			for !d.empty() {
				if traceOn {
					n, nw, im := countDelta(d)
					tRows += n
					tNews += nw
					tImp += im
				}
				local++
				// Decomposed partitions have no global barrier, so each local
				// round boundary is this partition's iteration boundary.
				if err := checkCancel(opt.Context, local-1); err != nil {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if local > opt.maxIter() || (opt.MaxRows > 0 && len(state.rows(p))*parts > opt.MaxRows) {
					failed.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = &ErrNonTermination{Iterations: local, Rows: state.len()}
					}
					mu.Unlock()
					return
				}
				out := pr.run(c, kernels, d, p, w)
				// All output stays in this partition by construction;
				// anything else is a planner bug.
				var mine []types.Row
				for t, bucket := range out {
					if len(bucket) > 0 && t != p {
						panic("fixpoint: decomposed plan leaked rows across partitions")
					}
					if t == p {
						mine = bucket
					}
				}
				d = state.merge(p, mine)
				c.ChaosPostMerge(w)
			}
			if traceOn {
				dRows.Add(int64(tRows))
				dNews.Add(int64(tNews))
				dImp.Add(int64(tImp))
			}
			for {
				cur := maxIters.Load()
				if int64(local) <= cur || maxIters.CompareAndSwap(cur, int64(local)) {
					break
				}
			}
		}})
	}
	c.RunStage("fixpoint.decomposed", tasks)
	if failed.Load() {
		return nil, firstErr
	}
	c.Metrics.Iterations.Add(maxIters.Load())
	if traceOn {
		ev := iterEvent("dsn-decomposed", state, nil, shuffleMark{})
		ev.DeltaRows = int(dRows.Load())
		ev.NewKeys = int(dNews.Load())
		ev.Improved = int(dImp.Load())
		is.EndAt(int(maxIters.Load()), ev)
	}
	return collect(plan, state, c, int(maxIters.Load()))
}

func allEmpty(ds []deltaBatch) bool {
	for _, d := range ds {
		if !d.empty() {
			return false
		}
	}
	return true
}

// collect gathers the final state onto the driver.
func collect(plan *Plan, state *viewState, c *cluster.QueryContext, iters int) (*Result, error) {
	out := relation.New(plan.View.Name, plan.View.Schema)
	for p := 0; p < state.partitions(); p++ {
		out.Rows = append(out.Rows, c.Fetch(state.rows(p), state.owner(p), -1)...)
	}
	return &Result{
		Relations:  map[string]*relation.Relation{strings.ToLower(plan.View.Name): out},
		Iterations: iters,
	}, nil
}
