package fixpoint

import (
	"sort"
	"strings"
	"sync"

	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/trace"
	"github.com/rasql/rasql-go/internal/types"
)

// This file implements the Section 8.2 iterative-SQL baselines: recursive
// queries simulated as a driver loop of ordinary (non-recursive) SQL
// statements over Spark, which is what users must write when the engine has
// no fixpoint operator.
//
//   - DistributedSQLSN simulates Semi-Naive evaluation in SQL: the delta
//     still drives each step, but every iteration is an independent job —
//     no cached build sides, no SetRDD, no stage combination — so the
//     scheduling/shuffling/caching optimizations the paper credits for
//     RaSQL's speedup are all missed.
//   - DistributedSQLNaive additionally loses delta evaluation: every
//     iteration re-joins the entire accumulated relation and re-aggregates
//     it from scratch (the paper's Spark-SQL-Naive).

// DistributedSQLSN runs the clique as a per-iteration SQL job loop with
// semi-naive deltas (the paper's Spark-SQL-SN baseline).
func DistributedSQLSN(clique *analyze.Clique, ctx *exec.Context, c *cluster.QueryContext, opt DistOptions) (*Result, error) {
	opt.StageCombination = false
	opt.RebuildJoinState = true
	opt.DisableDecomposition = true
	return Distributed(clique, ctx, c, opt)
}

// DistributedSQLNaive runs the clique as a per-iteration SQL job loop that
// recomputes the full relation every iteration (the paper's
// Spark-SQL-Naive baseline).
func DistributedSQLNaive(clique *analyze.Clique, ctx *exec.Context, c *cluster.QueryContext, opt DistOptions) (*Result, error) {
	plan, err := PlanDistributed(clique)
	if err != nil {
		return nil, err
	}
	if plan.Decomposed {
		plan = replanShuffled(clique)
	}
	v := plan.View
	parts := c.Partitions()
	pr := newProjector(plan, parts)

	// Base-case rows, recomputed conceptually every iteration; evaluated
	// once here and re-shuffled every round, as the SQL loop's
	// base-branch scan would be.
	var baseRows []types.Row
	for _, rule := range v.BaseRules {
		rows, err := evalRuleLocal(rule, nil, ctx, nil)
		if err != nil {
			return nil, err
		}
		baseRows = append(baseRows, rows...)
	}
	seed := make([][]types.Row, parts)
	for _, r := range baseRows {
		p := int(types.HashRowKey(r, plan.PartKey) % uint64(parts))
		seed[p] = append(seed[p], r)
	}

	// state[p] holds the current full relation partition; each iteration
	// builds a fresh copy (immutable SQL results).
	state := make([][]types.Row, parts)
	tr := opt.Tracer
	iter := 0
	for {
		iter++
		c.Metrics.Iterations.Add(1)
		if iter > opt.maxIter() {
			return nil, &ErrNonTermination{Iterations: iter, Rows: rowsTotal(state)}
		}
		// A fresh job: rebuild join state every iteration.
		kernels, err := makeKernels(plan, ctx, c, opt)
		if err != nil {
			return nil, err
		}

		var mark shuffleMark
		if tr.Enabled() {
			mark = markShuffle(c)
		}
		is := tr.BeginIteration(iter)
		sh := c.NewShuffle(parts)
		//rasql:allow workeraffinity -- driver-side seed write (producer -1) before any map task starts; the driver shard has exactly one writer
		sh.Add(seed, -1) // the base branch of the UNION, re-scanned

		mapTasks := make([]cluster.Task, parts)
		for i := range mapTasks {
			p := i
			mapTasks[i] = cluster.Task{Part: p, Preferred: c.DefaultOwner(p), Run: func(w int) {
				if len(state[p]) == 0 {
					return
				}
				// The whole accumulated relation feeds the join.
				sh.Add(pr.run(c, kernels, deltaBatch{Rows: state[p]}, p, w), w)
			}}
		}
		c.RunStage("sqlnaive.map", mapTasks)

		next := make([][]types.Row, parts)
		var mu sync.Mutex
		changedAny := false
		redTasks := make([]cluster.Task, parts)
		for i := range redTasks {
			p := i
			redTasks[i] = cluster.Task{Part: p, Preferred: c.DefaultOwner(p), Run: func(w int) {
				rows := sh.FetchTarget(p, w)
				// Shuffle bucket order varies with task placement across
				// iterations; floating-point sums must accumulate in a
				// deterministic order or the convergence test (exact
				// state equality, as a real SQL loop would use) never
				// fires. Sort before aggregating.
				sort.Slice(rows, func(i, j int) bool { return rows[i].Compare(rows[j]) < 0 })
				fresh := aggregateFull(v, rows)
				next[p] = fresh
				if !sameRows(v, state[p], fresh) {
					mu.Lock()
					changedAny = true
					mu.Unlock()
				}
			}}
		}
		c.RunStage("sqlnaive.reduce", redTasks)
		if tr.Enabled() {
			// Naive SQL has no delta; report relation growth against the
			// previous iteration so the curve compares with semi-naive runs.
			grown := rowsTotal(next) - rowsTotal(state)
			if grown < 0 {
				grown = 0
			}
			ev := trace.IterationEvent{
				Mode: "sql-naive", DeltaRows: grown, NewKeys: grown,
				AllRows:        rowsTotal(next),
				ShuffleBytes:   c.Metrics.ShuffleBytes.Load() - mark.bytes,
				ShuffleRecords: c.Metrics.ShuffleRecords.Load() - mark.recs,
				PartRows:       partLens(next),
			}
			is.End(ev)
		}
		state = next
		if !changedAny {
			break
		}
		if opt.MaxRows > 0 && rowsTotal(state) > opt.MaxRows {
			return nil, &ErrNonTermination{Iterations: iter, Rows: rowsTotal(state)}
		}
	}

	out := relation.New(v.Name, v.Schema)
	for p := 0; p < parts; p++ {
		out.Rows = append(out.Rows, c.Fetch(state[p], c.DefaultOwner(p), -1)...)
	}
	return &Result{
		Relations:  map[string]*relation.Relation{strings.ToLower(v.Name): out},
		Iterations: iter,
	}, nil
}

func rowsTotal(state [][]types.Row) int {
	n := 0
	for _, p := range state {
		n += len(p)
	}
	return n
}

func partLens(state [][]types.Row) []int {
	out := make([]int, len(state))
	for p, rows := range state {
		out[p] = len(rows)
	}
	return out
}

// aggregateFull applies the view's γ (group aggregate or set dedup) to a
// complete derivation multiset.
func aggregateFull(v *analyze.RecView, rows []types.Row) []types.Row {
	if !v.IsAgg() {
		seen := make(map[string]struct{}, len(rows))
		out := make([]types.Row, 0, len(rows))
		for _, r := range rows {
			k := types.RowKeyString(r)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, r)
		}
		return out
	}
	idx := make(map[string]int, len(rows))
	out := make([]types.Row, 0, len(rows))
	for _, r := range rows {
		k := types.KeyString(r, v.GroupIdx)
		if i, ok := idx[k]; ok {
			out[i][v.AggIdx] = v.Agg.Combine(out[i][v.AggIdx], r[v.AggIdx])
			continue
		}
		idx[k] = len(out)
		out = append(out, r.Clone())
	}
	return out
}

// sameRows compares two partition states as sets (groups compare with
// their aggregate values).
func sameRows(v *analyze.RecView, a, b []types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]struct{}, len(a))
	for _, r := range a {
		set[types.RowKeyString(r)] = struct{}{}
	}
	for _, r := range b {
		if _, ok := set[types.RowKeyString(r)]; !ok {
			return false
		}
	}
	return true
}
