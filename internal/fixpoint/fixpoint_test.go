package fixpoint

import (
	"testing"

	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/sql/analyze"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/internal/sql/parser"
	"github.com/rasql/rasql-go/internal/types"
	"github.com/rasql/rasql-go/queries"
)

func testCatalog(rels ...*relation.Relation) *catalog.Catalog {
	cat := catalog.New()
	for _, r := range rels {
		if err := cat.Register(r); err != nil {
			panic(err)
		}
	}
	return cat
}

func analyzeQ(t *testing.T, src string, cat *catalog.Catalog) *analyze.Program {
	t.Helper()
	stmts, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analyze.Statements(stmts, cat)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func testCluster() *cluster.QueryContext {
	return cluster.New(cluster.Config{Workers: 4, Partitions: 4, StageOverheadOps: -1, CompressBroadcast: true}).NewQuery(nil)
}

func TestPlanStrategiesMatchPaper(t *testing.T) {
	edges3 := relation.New("edge", gen.EdgeSchema())
	report := relation.New("report", types.NewSchema(
		types.Col("Emp", types.KindInt), types.Col("Mgr", types.KindInt)))
	rel := relation.New("rel", types.NewSchema(
		types.Col("Parent", types.KindInt), types.Col("Child", types.KindInt)))

	cases := []struct {
		name, src      string
		cat            *catalog.Catalog
		wantDecomposed bool
		wantStrategy   RuleStrategy
	}{
		// SSSP/CC/Management co-partition on the group key (Alg 4/5).
		{"SSSP", queries.SSSP, testCatalog(edges3), false, StrategyCoPartition},
		{"Management", queries.Management, testCatalog(report), false, StrategyCoPartition},
		// TC carries its Src column — decomposable (Section 7.2).
		{"TC", queries.TC, testCatalog(edges3), true, StrategyDecomposed},
		// APSP carries Src inside its group key — decomposable.
		{"APSP", queries.APSP, testCatalog(edges3), true, StrategyDecomposed},
		// SG joins the recursive view on two different columns — broadcast.
		{"SG", queries.SG, testCatalog(rel), false, StrategyBroadcast},
	}
	for _, c := range cases {
		prog := analyzeQ(t, c.src, c.cat)
		plan, err := PlanDistributed(prog.Clique)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if plan.Decomposed != c.wantDecomposed {
			t.Errorf("%s: decomposed = %v, want %v", c.name, plan.Decomposed, c.wantDecomposed)
		}
		for _, rp := range plan.Rules {
			if rp.Strategy != c.wantStrategy {
				t.Errorf("%s: strategy = %v, want %v", c.name, rp.Strategy, c.wantStrategy)
			}
		}
	}
}

func TestPlanRejectsMutualRecursion(t *testing.T) {
	shares := relation.New("shares", types.NewSchema(
		types.Col("By", types.KindString), types.Col("Of", types.KindString), types.Col("Percent", types.KindInt)))
	prog := analyzeQ(t, queries.CompanyControl, testCatalog(shares))
	if _, err := PlanDistributed(prog.Clique); err == nil {
		t.Error("mutual recursion must fall back to the local engine")
	}
}

func TestPlanDeltaModes(t *testing.T) {
	report := relation.New("report", types.NewSchema(
		types.Col("Emp", types.KindInt), types.Col("Mgr", types.KindInt)))
	prog := analyzeQ(t, queries.Management, testCatalog(report))
	plan, err := PlanDistributed(prog.Clique)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Rules[0].UseIncrements {
		t.Error("Management propagates running counts — delta must carry increments")
	}
	edges := relation.New("edge", gen.EdgeSchema())
	prog = analyzeQ(t, queries.SSSP, testCatalog(edges))
	plan, err = PlanDistributed(prog.Clique)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rules[0].UseIncrements || plan.Rules[0].NewGroupsOnly {
		t.Error("min views stream plain delta rows")
	}
}

// runWays runs a program's clique through every engine entry point and
// returns the view relations keyed by runner name.
func runWays(t *testing.T, src string, cat *catalog.Catalog, viewName string) map[string]*relation.Relation {
	t.Helper()
	out := map[string]*relation.Relation{}
	run := func(name string, f func(*analyze.Clique, *exec.Context) (*Result, error)) {
		prog := analyzeQ(t, src, cat)
		ctx := exec.NewContext()
		res, err := f(prog.Clique, ctx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = res.Relations[viewName]
	}
	run("local", func(cl *analyze.Clique, ctx *exec.Context) (*Result, error) {
		return Local(cl, ctx, Options{})
	})
	run("local-naive", func(cl *analyze.Clique, ctx *exec.Context) (*Result, error) {
		return Local(cl, ctx, Options{Naive: true})
	})
	run("dist-combined", func(cl *analyze.Clique, ctx *exec.Context) (*Result, error) {
		return Distributed(cl, ctx, testCluster(), DistOptions{StageCombination: true})
	})
	run("dist-twostage", func(cl *analyze.Clique, ctx *exec.Context) (*Result, error) {
		return Distributed(cl, ctx, testCluster(), DistOptions{})
	})
	run("sql-sn", func(cl *analyze.Clique, ctx *exec.Context) (*Result, error) {
		return DistributedSQLSN(cl, ctx, testCluster(), DistOptions{})
	})
	run("sql-naive", func(cl *analyze.Clique, ctx *exec.Context) (*Result, error) {
		return DistributedSQLNaive(cl, ctx, testCluster(), DistOptions{})
	})
	return out
}

func TestBaselinesAgreeOnAllWorkloads(t *testing.T) {
	tree := gen.NewTree(4, 2, 3, 0.3, 0, gen.Rng(17))
	assbl, basic := tree.AssblBasic(30, gen.Rng(3))
	sales, sponsor := tree.SalesSponsor(50, gen.Rng(4))
	report := tree.Report()
	edges := gen.RMATDefault(128, gen.Rng(21))
	sym := gen.Symmetrized(gen.Unweighted(edges))

	cases := []struct {
		name, src, view string
		cat             *catalog.Catalog
	}{
		{"SSSP", queries.SSSP, "path", testCatalog(edges)},
		{"CC", queries.CCLabels, "cc", testCatalog(sym)},
		{"REACH", queries.Reach, "reach", testCatalog(gen.Unweighted(edges))},
		{"Delivery", queries.Delivery, "waitfor", testCatalog(assbl, basic)},
		{"Management", queries.Management, "empcount", testCatalog(report)},
		{"MLM", queries.MLM, "bonus", testCatalog(sales, sponsor)},
	}
	for _, c := range cases {
		results := runWays(t, c.src, c.cat, c.view)
		ref := results["local"]
		if ref == nil || ref.Len() == 0 {
			t.Fatalf("%s: empty reference result", c.name)
		}
		for name, got := range results {
			if name == "local" {
				continue
			}
			if !sameValued(ref, got, c.name == "MLM") {
				t.Errorf("%s: %s disagrees with the local reference (%d vs %d rows)",
					c.name, name, got.Len(), ref.Len())
			}
		}
	}
}

// sameValued compares relations as sets; for float-valued views it allows
// tiny rounding drift from different accumulation orders.
func sameValued(a, b *relation.Relation, approx bool) bool {
	if !approx {
		return a.EqualAsSet(b)
	}
	if a.Len() != b.Len() {
		return false
	}
	am := map[int64]float64{}
	for _, r := range a.Rows {
		am[r[0].AsInt()] = r[1].AsFloat()
	}
	for _, r := range b.Rows {
		v, ok := am[r[0].AsInt()]
		if !ok {
			return false
		}
		d := v - r[1].AsFloat()
		if d < -1e-6 || d > 1e-6 {
			return false
		}
	}
	return true
}

func TestDecomposedMatchesShuffled(t *testing.T) {
	edges := gen.Unweighted(gen.RMATDefault(64, gen.Rng(5)))
	cat := testCatalog(edges)
	progA := analyzeQ(t, queries.TC, cat)
	ctxA := exec.NewContext()
	a, err := Distributed(progA.Clique, ctxA, testCluster(), DistOptions{StageCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	progB := analyzeQ(t, queries.TC, cat)
	ctxB := exec.NewContext()
	b, err := Distributed(progB.Clique, ctxB, testCluster(), DistOptions{DisableDecomposition: true, StageCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Relations["tc"].EqualAsSet(b.Relations["tc"]) {
		t.Error("decomposed and shuffled TC disagree")
	}
}

func TestStageCombinationReducesStages(t *testing.T) {
	edges := gen.Unweighted(gen.RMATDefault(256, gen.Rng(9)))
	cat := testCatalog(edges)

	run := func(combine bool) cluster.Snapshot {
		c := testCluster()
		prog := analyzeQ(t, queries.Reach, cat)
		if _, err := Distributed(prog.Clique, exec.NewContext(), c, DistOptions{StageCombination: combine}); err != nil {
			t.Fatal(err)
		}
		return c.Metrics.Snapshot()
	}
	with := run(true)
	without := run(false)
	if with.Iterations != without.Iterations {
		t.Errorf("iteration counts differ: %d vs %d", with.Iterations, without.Iterations)
	}
	if with.StagesRun >= without.StagesRun {
		t.Errorf("stage combination should cut stages: with=%d without=%d",
			with.StagesRun, without.StagesRun)
	}
}

func TestPartitionAwareSchedulingCutsRemoteBytes(t *testing.T) {
	edges := gen.RMATDefault(256, gen.Rng(13))
	run := func(policy cluster.Policy) int64 {
		c := cluster.New(cluster.Config{Workers: 4, Partitions: 4, StageOverheadOps: -1,
			CompressBroadcast: true, Policy: policy}).NewQuery(nil)
		prog := analyzeQ(t, queries.SSSP, testCatalog(edges))
		if _, err := Distributed(prog.Clique, exec.NewContext(), c, DistOptions{StageCombination: true}); err != nil {
			t.Fatal(err)
		}
		s := c.Metrics.Snapshot()
		return s.RemoteFetchBytes + s.ShuffleBytes
	}
	aware := run(cluster.PolicyPartitionAware)
	hybrid := run(cluster.PolicyHybrid)
	if aware >= hybrid {
		t.Errorf("partition-aware scheduling should move fewer bytes: aware=%d hybrid=%d", aware, hybrid)
	}
}

func TestNonTerminationGuardDistributed(t *testing.T) {
	// Stratified-style TC on a cycle terminates (set semantics); instead
	// test MaxRows with sum on a cyclic graph (divergent path counts).
	edges := relation.New("edge", gen.PlainEdgeSchema())
	for _, p := range [][2]int64{{1, 2}, {2, 1}} {
		edges.Append(types.Row{types.Int(p[0]), types.Int(p[1])})
	}
	prog := analyzeQ(t, queries.CountPaths, testCatalog(edges))
	_, err := Distributed(prog.Clique, exec.NewContext(), testCluster(),
		DistOptions{Options: Options{MaxIterations: 25}, StageCombination: true})
	if err == nil {
		t.Fatal("sum over a cycle must hit the iteration guard")
	}
}

func TestVolcanoMatchesFused(t *testing.T) {
	edges := gen.RMATDefault(128, gen.Rng(31))
	for _, combine := range []bool{true, false} {
		progA := analyzeQ(t, queries.SSSP, testCatalog(edges))
		a, err := Distributed(progA.Clique, exec.NewContext(), testCluster(),
			DistOptions{StageCombination: combine})
		if err != nil {
			t.Fatal(err)
		}
		progB := analyzeQ(t, queries.SSSP, testCatalog(edges))
		b, err := Distributed(progB.Clique, exec.NewContext(), testCluster(),
			DistOptions{StageCombination: combine, Volcano: true})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Relations["path"].EqualAsSet(b.Relations["path"]) {
			t.Errorf("volcano and fused disagree (combine=%v)", combine)
		}
	}
}

func TestSortMergeMatchesHash(t *testing.T) {
	edges := gen.RMATDefault(128, gen.Rng(37))
	progA := analyzeQ(t, queries.SSSP, testCatalog(edges))
	a, err := Distributed(progA.Clique, exec.NewContext(), testCluster(),
		DistOptions{StageCombination: true, Join: SortMerge})
	if err != nil {
		t.Fatal(err)
	}
	progB := analyzeQ(t, queries.SSSP, testCatalog(edges))
	b, err := Distributed(progB.Clique, exec.NewContext(), testCluster(),
		DistOptions{StageCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Relations["path"].EqualAsSet(b.Relations["path"]) {
		t.Error("sort-merge and shuffle-hash disagree")
	}
}

// Section 6.1: a task failure after mutating the cached state must be
// recoverable by restoring the iteration checkpoint and replaying — for
// set, extremum and (the hard case) additive views. The fault is scripted
// via the cluster's chaos schedule: a post-merge kill of a specific
// shuffle-map pass/partition, asserted to have actually fired via the
// recovery counters.
func TestFaultRecoveryReplayMatchesFaultFree(t *testing.T) {
	tree := gen.NewTree(5, 2, 4, 0.3, 0, gen.Rng(23))
	report := tree.Report()
	edges := gen.RMATDefault(256, gen.Rng(77))

	cases := []struct {
		name, src, view string
		cat             *catalog.Catalog
	}{
		{"SSSP(min)", queries.SSSP, "path", testCatalog(edges)},
		{"REACH(set)", queries.Reach, "reach", testCatalog(gen.Unweighted(edges))},
		{"Management(count)", queries.Management, "empcount", testCatalog(report)},
	}
	for _, c := range cases {
		clean := analyzeQ(t, c.src, c.cat)
		want, err := Distributed(clean.Clique, exec.NewContext(), testCluster(),
			DistOptions{StageCombination: true})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		// Pass 1 of fixpoint.shufflemap merges the base case; occurrence is
		// the 0-based pass index, so these mirror the old "iteration 1,
		// partition 0" and "iteration 2, partition 3" failure points.
		for _, ev := range []cluster.ChaosEvent{
			{Stage: "fixpoint.shufflemap", Occurrence: 0, Part: 0, Kind: cluster.FaultPostMerge},
			{Stage: "fixpoint.shufflemap", Occurrence: 1, Part: 3, Kind: cluster.FaultPostMerge},
		} {
			prog := analyzeQ(t, c.src, c.cat)
			cl := chaosCluster(cluster.ChaosConfig{Schedule: []cluster.ChaosEvent{ev}})
			got, err := Distributed(prog.Clique, exec.NewContext(), cl,
				DistOptions{StageCombination: true})
			if err != nil {
				t.Fatalf("%s %+v: %v", c.name, ev, err)
			}
			m := cl.Metrics.Snapshot()
			if m.TaskRetries < 1 || m.RecoveredIterations < 1 {
				t.Fatalf("%s %+v: fault never fired (retries=%d recovered=%d)",
					c.name, ev, m.TaskRetries, m.RecoveredIterations)
			}
			if !got.Relations[c.view].EqualAsSet(want.Relations[c.view]) {
				t.Errorf("%s: replay after failure at %+v diverged (%d vs %d rows)",
					c.name, ev, got.Relations[c.view].Len(), want.Relations[c.view].Len())
			}
		}
	}
}

// TestNarrowedPartitionKey: both recursive rules join the view on column B
// only, so the full group key (A, B) is never covered and the seed planner
// fell back to broadcast. vet's co-partition analysis narrows the
// partition key to [B] — a subset of the group key, so grouping stays
// partition-local — and both rules co-partition. The distributed result
// must still match the exact local engine.
func TestNarrowedPartitionKey(t *testing.T) {
	const src = `
WITH recursive p (A, B, min() AS C) AS
    (SELECT Src, Dst, Cost FROM edge) UNION
    (SELECT p.A, edge.Dst, p.C + edge.Cost
     FROM p, edge WHERE p.B = edge.Src) UNION
    (SELECT edge.Src, p.B, p.C + edge.Cost
     FROM p, edge WHERE p.B = edge.Dst)
SELECT A, B, C FROM p`
	edges := gen.RMATDefault(48, gen.Rng(11))
	cat := testCatalog(edges)

	prog := analyzeQ(t, src, cat)
	plan, err := PlanDistributed(prog.Clique)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PartKey) != 1 || plan.PartKey[0] != 1 {
		t.Fatalf("PartKey = %v, want [1]", plan.PartKey)
	}
	for i, rp := range plan.Rules {
		if rp.Strategy != StrategyCoPartition {
			t.Errorf("rule %d: strategy = %v, want co-partition", i, rp.Strategy)
		}
	}

	ctxD := exec.NewContext()
	dist, err := Distributed(analyzeQ(t, src, cat).Clique, ctxD, testCluster(),
		DistOptions{StageCombination: true})
	if err != nil {
		t.Fatal(err)
	}
	local, err := Local(analyzeQ(t, src, cat).Clique, exec.NewContext(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !local.Relations["p"].EqualAsSet(dist.Relations["p"]) {
		t.Errorf("narrowed-key distributed run disagrees with local (%d vs %d rows)",
			dist.Relations["p"].Len(), local.Relations["p"].Len())
	}
}
