package fixpoint

import (
	"sort"

	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/sql/expr"
	"github.com/rasql/rasql-go/internal/types"
)

// deltaBatch is the per-partition frontier in consumable form: rows, plus
// increments and first-derivation flags for aggregate views.
type deltaBatch struct {
	Rows []types.Row
	Incs []types.Value
	News []bool
}

func (d deltaBatch) empty() bool { return len(d.Rows) == 0 }

// streamRows adapts the batch to one rule's delta mode.
func (d deltaBatch) streamRows(rp *RulePlan, aggIdx int) []types.Row {
	switch {
	case rp.UseIncrements:
		if d.Incs == nil {
			// A naive frontier carries totals, not increments (the
			// Spark-SQL-Naive baseline re-aggregates from scratch).
			return d.Rows
		}
		out := make([]types.Row, len(d.Rows))
		for i, r := range d.Rows {
			nr := r.Clone()
			nr[aggIdx] = d.Incs[i]
			out[i] = nr
		}
		return out
	case rp.NewGroupsOnly:
		out := make([]types.Row, 0, len(d.Rows))
		for i, r := range d.Rows {
			if d.News == nil || d.News[i] {
				out = append(out, r)
			}
		}
		return out
	default:
		return d.Rows
	}
}

// copartBase is a co-partitioned base relation cached per partition: hash
// tables for shuffle-hash joins, or sorted runs for sort-merge.
type copartBase struct {
	buildCols []int
	// tables[p] is partition p's hash table (shuffle-hash mode).
	tables []*cluster.RowTable
	// sorted[p] holds partition p's rows ordered by join key, with keys
	// aligned (sort-merge mode).
	sorted [][]types.Row
	keys   [][]string
	owner  []int
}

// buildCopart partitions and caches a base relation on its join columns.
// The build happens once, in parallel, and is reused by every iteration —
// the paper's cached build side (Appendix D).
func buildCopart(c *cluster.QueryContext, rows []types.Row, buildCols []int, join JoinStrategy) *copartBase {
	parts := c.Partitions()
	cb := &copartBase{buildCols: buildCols, owner: make([]int, parts)}
	bucketed := make([][]types.Row, parts)
	for _, r := range rows {
		p := int(types.HashRowKey(r, buildCols) % uint64(parts))
		bucketed[p] = append(bucketed[p], r)
	}
	if join == SortMerge {
		cb.sorted = make([][]types.Row, parts)
		cb.keys = make([][]string, parts)
	} else {
		cb.tables = make([]*cluster.RowTable, parts)
	}
	tasks := make([]cluster.Task, parts)
	for i := range tasks {
		p := i
		tasks[i] = cluster.Task{Part: p, Preferred: c.DefaultOwner(p), Run: func(w int) {
			cb.owner[p] = w
			if join == SortMerge {
				rs := append([]types.Row(nil), bucketed[p]...)
				ks := make([]string, len(rs))
				for j, r := range rs {
					ks[j] = types.KeyString(r, buildCols)
				}
				sort.Sort(&keyedRows{rows: rs, keys: ks})
				cb.sorted[p] = rs
				cb.keys[p] = ks
				return
			}
			cb.tables[p] = cluster.BuildRowTable(bucketed[p], buildCols)
		}}
	}
	c.RunStage("copart.build", tasks)
	return cb
}

type keyedRows struct {
	rows []types.Row
	keys []string
}

func (k *keyedRows) Len() int           { return len(k.rows) }
func (k *keyedRows) Less(i, j int) bool { return k.keys[i] < k.keys[j] }
func (k *keyedRows) Swap(i, j int) {
	k.rows[i], k.rows[j] = k.rows[j], k.rows[i]
	k.keys[i], k.keys[j] = k.keys[j], k.keys[i]
}

// ruleKernel executes one rule's per-iteration pipeline on one partition.
type ruleKernel struct {
	rp     *RulePlan
	copart *copartBase
	// bcasts aligns with rp.Steps.
	bcasts  []*cluster.Broadcast
	volcano bool
	join    JoinStrategy
}

// run streams the delta through the rule's joins and filters, invoking emit
// with a complete environment for each result. part/worker locate cached
// state for the co-partitioned base.
func (k *ruleKernel) run(c *cluster.QueryContext, delta []types.Row, part, worker int, emit func(expr.Env)) {
	if k.volcano {
		k.runVolcano(c, delta, part, worker, emit)
		return
	}
	k.runFused(c, delta, part, worker, emit)
}

// copartTable returns the co-partitioned base's hash table for a partition
// as seen from the executing worker: free for the owner, a fetch-and-build
// for anyone else (hybrid scheduling pays here).
func (k *ruleKernel) copartTable(c *cluster.QueryContext, part, worker int) *cluster.RowTable {
	if k.copart.owner[part] == worker {
		return k.copart.tables[part]
	}
	rows := k.copart.tables[part].Rows()
	fetched := c.Fetch(rows, k.copart.owner[part], worker)
	return cluster.BuildRowTable(fetched, k.copart.buildCols)
}

// runFused is the "code generation" execution mode: the whole pipeline is
// collapsed into nested loops over closures, no per-row interface calls —
// the structural analog of Spark's whole-stage codegen (Section 7.3).
func (k *ruleKernel) runFused(c *cluster.QueryContext, delta []types.Row, part, worker int, emit func(expr.Env)) {
	rp := k.rp
	n := len(rp.Rule.Sources)
	env := make(expr.Env, n)

	var runSteps func(step int)
	runSteps = func(step int) {
		if step == len(rp.Steps) {
			emit(env)
			return
		}
		st := rp.Steps[step]
		key := make([]types.Value, len(st.BuildCols))
		for i, pf := range st.ProbeFrom {
			key[i] = env[pf[0]][pf[1]]
		}
		table := k.bcasts[step].Table(worker)
		for _, m := range table.ProbeValues(key) {
			env[st.Source] = m
			ok := true
			for _, f := range st.Filters {
				if !f.Eval(env).Truthy() {
					ok = false
					break
				}
			}
			if ok {
				runSteps(step + 1)
			}
		}
	}

	afterPrimary := func() {
		ok := true
		for _, f := range rp.InitialFilters {
			if !f.Eval(env).Truthy() {
				ok = false
				break
			}
		}
		if ok {
			runSteps(0)
		}
	}

	if rp.Strategy != StrategyCoPartition {
		for _, d := range delta {
			env[rp.RecIdx] = d
			afterPrimary()
		}
		return
	}

	if k.join == SortMerge {
		k.runSortMerge(delta, part, env, afterPrimary)
		return
	}
	table := k.copartTable(c, part, worker)
	for _, d := range delta {
		env[rp.RecIdx] = d
		for _, m := range table.ProbeRow(d, rp.CoPartProbeCols) {
			env[rp.CoPartSource] = m
			afterPrimary()
		}
	}
}

// runSortMerge performs the co-partitioned join by sorting the delta and
// merging against the pre-sorted base run.
func (k *ruleKernel) runSortMerge(delta []types.Row, part int, env expr.Env, sink func()) {
	rp := k.rp
	ds := append([]types.Row(nil), delta...)
	dk := make([]string, len(ds))
	for i, r := range ds {
		dk[i] = types.KeyString(r, rp.CoPartProbeCols)
	}
	sort.Sort(&keyedRows{rows: ds, keys: dk})
	bs, bk := k.copart.sorted[part], k.copart.keys[part]

	i, j := 0, 0
	for i < len(ds) && j < len(bs) {
		switch {
		case dk[i] < bk[j]:
			i++
		case dk[i] > bk[j]:
			j++
		default:
			j2 := j
			for i < len(ds) && dk[i] == bk[j] {
				env[rp.RecIdx] = ds[i]
				for j2 = j; j2 < len(bs) && bk[j2] == dk[i]; j2++ {
					env[rp.CoPartSource] = bs[j2]
					sink()
				}
				i++
			}
			j = j2
		}
	}
}

// Volcano execution: the classical iterator model the paper's Section 7.3
// contrasts with code generation — every row passes through Next() virtual
// calls on each operator.

type volcanoOp interface {
	next() (expr.Env, bool)
}

type deltaScanOp struct {
	rows []types.Row
	rec  int
	n    int
	i    int
}

func (o *deltaScanOp) next() (expr.Env, bool) {
	if o.i >= len(o.rows) {
		return nil, false
	}
	env := make(expr.Env, o.n)
	env[o.rec] = o.rows[o.i]
	o.i++
	return env, true
}

type hashJoinOp struct {
	child     volcanoOp
	table     *cluster.RowTable
	probeCols []int // columns of env[recProbe] when recProbe >= 0
	probeFrom [][2]int
	recProbe  int // when >= 0, probe key comes from env[recProbe] at probeCols
	source    int

	cur     expr.Env
	matches []types.Row
	mi      int
}

func (o *hashJoinOp) next() (expr.Env, bool) {
	for {
		for o.mi < len(o.matches) {
			env := make(expr.Env, len(o.cur))
			copy(env, o.cur)
			env[o.source] = o.matches[o.mi]
			o.mi++
			return env, true
		}
		env, ok := o.child.next()
		if !ok {
			return nil, false
		}
		if o.recProbe >= 0 {
			o.matches = o.table.ProbeRow(env[o.recProbe], o.probeCols)
		} else {
			k := make([]types.Value, len(o.probeFrom))
			for i, pf := range o.probeFrom {
				k[i] = env[pf[0]][pf[1]]
			}
			o.matches = o.table.ProbeValues(k)
		}
		o.cur = env
		o.mi = 0
	}
}

type filterOp struct {
	child   volcanoOp
	filters []expr.Expr
}

func (o *filterOp) next() (expr.Env, bool) {
	for {
		env, ok := o.child.next()
		if !ok {
			return nil, false
		}
		pass := true
		for _, f := range o.filters {
			if !f.Eval(env).Truthy() {
				pass = false
				break
			}
		}
		if pass {
			return env, true
		}
	}
}

func (k *ruleKernel) runVolcano(c *cluster.QueryContext, delta []types.Row, part, worker int, emit func(expr.Env)) {
	rp := k.rp
	var op volcanoOp = &deltaScanOp{rows: delta, rec: rp.RecIdx, n: len(rp.Rule.Sources)}
	if rp.Strategy == StrategyCoPartition {
		op = &hashJoinOp{
			child:     op,
			table:     k.copartTable(c, part, worker),
			probeCols: rp.CoPartProbeCols,
			recProbe:  rp.RecIdx,
			source:    rp.CoPartSource,
		}
	}
	if len(rp.InitialFilters) > 0 {
		op = &filterOp{child: op, filters: rp.InitialFilters}
	}
	for si, st := range rp.Steps {
		op = &hashJoinOp{
			child:     op,
			table:     k.bcasts[si].Table(worker),
			probeFrom: st.ProbeFrom,
			recProbe:  -1,
			source:    st.Source,
		}
		if len(st.Filters) > 0 {
			op = &filterOp{child: op, filters: st.Filters}
		}
	}
	for {
		env, ok := op.next()
		if !ok {
			return
		}
		emit(env)
	}
}
