package fixpoint

import (
	"testing"

	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/gen"
	"github.com/rasql/rasql-go/internal/sql/catalog"
	"github.com/rasql/rasql-go/internal/sql/exec"
	"github.com/rasql/rasql-go/queries"
)

func chaosCluster(chaos cluster.ChaosConfig) *cluster.QueryContext {
	return cluster.New(cluster.Config{
		Workers: 4, Partitions: 4, StageOverheadOps: -1,
		CompressBroadcast: true, Chaos: chaos,
	}).NewQuery(nil)
}

// chaosRunner names one distributed evaluation mode and how to invoke it.
type chaosRunner struct {
	name string
	// mergeStage is the stage whose tasks merge into cached state (where a
	// post-merge fault forces a checkpoint rollback); empty when the mode
	// has no mutable cached state to roll back.
	mergeStage string
	run        func(t *testing.T, src string, cat *catalog.Catalog, c *cluster.QueryContext) *Result
}

func chaosRunners() []chaosRunner {
	return []chaosRunner{
		{"dsn-two-stage", "fixpoint.reduce", func(t *testing.T, src string, cat *catalog.Catalog, c *cluster.QueryContext) *Result {
			t.Helper()
			r, err := Distributed(analyzeQ(t, src, cat).Clique, exec.NewContext(), c, DistOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}},
		{"dsn-combined", "fixpoint.shufflemap", func(t *testing.T, src string, cat *catalog.Catalog, c *cluster.QueryContext) *Result {
			t.Helper()
			r, err := Distributed(analyzeQ(t, src, cat).Clique, exec.NewContext(), c, DistOptions{StageCombination: true})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}},
		{"dsn-decomposed", "fixpoint.decomposed", func(t *testing.T, src string, cat *catalog.Catalog, c *cluster.QueryContext) *Result {
			t.Helper()
			r, err := Distributed(analyzeQ(t, src, cat).Clique, exec.NewContext(), c, DistOptions{StageCombination: true})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}},
		{"sql-sn", "fixpoint.reduce", func(t *testing.T, src string, cat *catalog.Catalog, c *cluster.QueryContext) *Result {
			t.Helper()
			r, err := DistributedSQLSN(analyzeQ(t, src, cat).Clique, exec.NewContext(), c, DistOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}},
		// sql-naive rebuilds its whole state from the shuffle every
		// iteration (immutable SQL results), so recovery is plain replay:
		// retries happen, but there is no cached partition to roll back.
		{"sql-naive", "", func(t *testing.T, src string, cat *catalog.Catalog, c *cluster.QueryContext) *Result {
			t.Helper()
			r, err := DistributedSQLNaive(analyzeQ(t, src, cat).Clique, exec.NewContext(), c, DistOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}},
	}
}

// workloadFor pairs each mode with a query that exercises it (decomposed
// needs a plan that carries its partition key).
func chaosWorkload(mode string) (src, view string, cat func() *catalog.Catalog) {
	if mode == "dsn-decomposed" {
		edges := gen.Unweighted(gen.RMATDefault(64, gen.Rng(5)))
		return queries.TC, "tc", func() *catalog.Catalog { return testCatalog(edges) }
	}
	edges := gen.RMATDefault(128, gen.Rng(77))
	return queries.SSSP, "path", func() *catalog.Catalog { return testCatalog(edges) }
}

// Acceptance: at least one schedule per evaluation mode demonstrably
// triggers a task retry AND an iteration rollback, proven by the counters,
// and the recovered result is identical to the fault-free run.
func TestChaosScheduleTriggersRetryAndRollbackPerMode(t *testing.T) {
	for _, m := range chaosRunners() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			src, view, cat := chaosWorkload(m.name)
			want := m.run(t, src, cat(), chaosCluster(cluster.ChaosConfig{}))

			stage := m.mergeStage
			kind := cluster.FaultPostMerge
			if stage == "" {
				// No cached state: script the fault at the shuffle-fetch
				// boundary of the rebuild stage instead.
				stage, kind = "sqlnaive.reduce", cluster.FaultFetch
			}
			// Occurrence -1: kill partition 1's first attempt every time the
			// stage runs, so the schedule fires regardless of how many
			// passes the mode needs.
			cl := chaosCluster(cluster.ChaosConfig{Schedule: []cluster.ChaosEvent{
				{Stage: stage, Occurrence: -1, Part: 1, Attempt: 0, Kind: kind},
			}})
			got := m.run(t, src, cat(), cl)

			s := cl.Metrics.Snapshot()
			if s.TaskRetries == 0 {
				t.Fatalf("scheduled fault on %s never caused a retry: %s", stage, s)
			}
			if m.mergeStage != "" && s.RecoveredIterations == 0 {
				t.Fatalf("post-merge fault on %s never rolled a partition back: %s", stage, s)
			}
			if s.RowsReplayed == 0 {
				t.Errorf("retries re-fetched no rows: %s", s)
			}
			if !got.Relations[view].EqualAsSet(want.Relations[view]) {
				t.Errorf("recovered result diverged from fault-free run (%d vs %d rows)",
					got.Relations[view].Len(), want.Relations[view].Len())
			}
		})
	}
}

// Every fault kind — including worker loss (broadcast cache invalidation)
// and stragglers — must leave results untouched.
func TestChaosEveryFaultKindIsInvariant(t *testing.T) {
	edges := gen.RMATDefault(128, gen.Rng(77))
	cat := func() *catalog.Catalog { return testCatalog(edges) }
	want := func() *Result {
		r, err := Distributed(analyzeQ(t, queries.SSSP, cat()).Clique, exec.NewContext(),
			chaosCluster(cluster.ChaosConfig{}), DistOptions{StageCombination: true})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()

	for _, kind := range []cluster.FaultKind{
		cluster.FaultTaskStart, cluster.FaultWorkerLoss, cluster.FaultFetch,
		cluster.FaultPostMerge, cluster.FaultStraggler,
	} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cl := chaosCluster(cluster.ChaosConfig{Schedule: []cluster.ChaosEvent{
				{Stage: "fixpoint.shufflemap", Occurrence: -1, Part: 0, Attempt: 0, Kind: kind},
			}})
			got, err := Distributed(analyzeQ(t, queries.SSSP, cat()).Clique, exec.NewContext(), cl,
				DistOptions{StageCombination: true})
			if err != nil {
				t.Fatal(err)
			}
			s := cl.Metrics.Snapshot()
			if kind == cluster.FaultStraggler {
				if s.TaskRetries != 0 {
					t.Errorf("stragglers must not kill attempts: %s", s)
				}
			} else if s.TaskRetries == 0 {
				t.Fatalf("fault %s never fired: %s", kind, s)
			}
			if !got.Relations["path"].EqualAsSet(want.Relations["path"]) {
				t.Errorf("fault %s diverged from fault-free run", kind)
			}
		})
	}
}

// Randomized-but-seeded chaos: same seed, same faults, same counters — and
// any seed converges to the fault-free result. RebuildJoinState exercises
// broadcast re-registration under chaos every iteration.
func TestChaosSeededRateIsDeterministicAndInvariant(t *testing.T) {
	edges := gen.RMATDefault(128, gen.Rng(77))
	cat := func() *catalog.Catalog { return testCatalog(edges) }
	want := func() *Result {
		r, err := Distributed(analyzeQ(t, queries.SSSP, cat()).Clique, exec.NewContext(),
			chaosCluster(cluster.ChaosConfig{}), DistOptions{StageCombination: true})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}()

	for _, seed := range []int64{1, 2, 3} {
		var prev cluster.Snapshot
		for rep := 0; rep < 2; rep++ {
			cl := chaosCluster(cluster.ChaosConfig{Seed: seed, Rate: 0.08})
			got, err := Distributed(analyzeQ(t, queries.SSSP, cat()).Clique, exec.NewContext(), cl,
				DistOptions{StageCombination: true})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Relations["path"].EqualAsSet(want.Relations["path"]) {
				t.Errorf("seed %d rep %d diverged from fault-free run", seed, rep)
			}
			s := cl.Metrics.Snapshot()
			if rep == 1 && s.TaskRetries != prev.TaskRetries {
				t.Errorf("seed %d: fault schedule not deterministic (%d vs %d retries)",
					seed, prev.TaskRetries, s.TaskRetries)
			}
			prev = s
		}
	}
}
