package fixpoint

import (
	"github.com/rasql/rasql-go/internal/cluster"
	"github.com/rasql/rasql-go/internal/trace"
)

// This file adapts the evaluators' internal state to trace.IterationEvent.
// Everything here is driver-side and runs only when a tracer is attached;
// the evaluators guard each call with Tracer.Enabled() so the disabled path
// never pays for the telemetry.

// shuffleMark snapshots the cluster shuffle counters so an iteration's
// shuffle volume can be reported as a delta rather than a running total.
type shuffleMark struct{ bytes, recs int64 }

func markShuffle(c *cluster.QueryContext) shuffleMark {
	return shuffleMark{
		bytes: c.Metrics.ShuffleBytes.Load(),
		recs:  c.Metrics.ShuffleRecords.Load(),
	}
}

// iterEvent builds the state- and cluster-derived half of an iteration
// event: all-relation size, per-partition skew profile, shuffle deltas.
// Delta counts are filled in by the caller (countDeltas or task-side
// accumulators, depending on where the evaluator sees its frontier).
func iterEvent(mode string, state *viewState, c *cluster.QueryContext, m shuffleMark) trace.IterationEvent {
	ev := trace.IterationEvent{Mode: mode}
	if state != nil {
		ev.AllRows = state.len()
		ev.PartRows = make([]int, state.partitions())
		for p := range ev.PartRows {
			ev.PartRows[p] = len(state.rows(p))
		}
	}
	if c != nil {
		ev.ShuffleBytes = c.Metrics.ShuffleBytes.Load() - m.bytes
		ev.ShuffleRecords = c.Metrics.ShuffleRecords.Load() - m.recs
	}
	return ev
}

// countDeltas folds per-partition frontier batches into the event's delta
// counts. A batch without News flags is a set frontier: every row is a
// first derivation.
func countDeltas(ev *trace.IterationEvent, deltas []deltaBatch) {
	for _, d := range deltas {
		rows, news, improved := countDelta(d)
		ev.DeltaRows += rows
		ev.NewKeys += news
		ev.Improved += improved
	}
}

// localIterEvent summarizes the single-threaded evaluator's frontier: the
// per-view deltas just produced and the accumulated state size.
func localIterEvent(mode string, views []*localView) trace.IterationEvent {
	ev := trace.IterationEvent{Mode: mode, AllRows: totalRows(views)}
	for _, lv := range views {
		for _, d := range lv.delta {
			ev.DeltaRows++
			if d.isNew {
				ev.NewKeys++
			} else {
				ev.Improved++
			}
		}
	}
	return ev
}

func countDelta(d deltaBatch) (rows, news, improved int) {
	rows = len(d.Rows)
	if d.News == nil {
		return rows, rows, 0
	}
	for _, n := range d.News {
		if n {
			news++
		} else {
			improved++
		}
	}
	return rows, news, improved
}
