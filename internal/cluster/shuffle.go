package cluster

import (
	"github.com/rasql/rasql-go/internal/types"
)

// Shuffle collects map-side output buckets and materializes them on the
// reduce side. Buckets produced on the same worker that consumes them are
// handed over for free; buckets crossing workers pay the wire round trip —
// the same cost model as Spark's shuffle fetch.
//
// The shuffle is sharded by producer: each map task appends only to its own
// worker's shard, so Add needs no lock — the cluster runs one goroutine per
// worker, and the stage barrier publishes all shards to the reduce side.
// Rows are serialized once, at Add time (Spark likewise writes shuffle files
// map-side), into pooled buffers that FetchTarget recycles after decoding.
// Consequently each target may be fetched at most once, which matches the
// one-reduce-task-per-partition execution model.
type Shuffle struct {
	c       *QueryContext
	targets int
	// shards[producer+1] holds the buckets written by that producer
	// (index 0 is the driver, producer == -1).
	shards []shuffleShard
}

type shuffleShard struct {
	// buckets[target] lists the encoded buckets destined for that target.
	buckets [][]encBucket
}

type encBucket struct {
	buf      *[]byte // pooled wire encoding of the bucket's rows
	n        int     // row count
	producer int
}

// NewShuffle creates a shuffle with the given number of target partitions.
func (c *QueryContext) NewShuffle(targets int) *Shuffle {
	s := &Shuffle{c: c, targets: targets, shards: make([]shuffleShard, c.cfg.Workers+1)}
	for i := range s.shards {
		s.shards[i].buckets = make([][]encBucket, targets)
	}
	return s
}

// Add registers one map task's output: out[t] holds the rows destined for
// target partition t, produced on the given worker (-1 for the driver).
// Rows are encoded into pooled buffers immediately — the map-side shuffle
// write — and the bytes are counted here, once per shuffled bucket. Safe for
// concurrent map tasks because each producer owns its shard exclusively —
// which is exactly why Add is worker-affine: it must run on the goroutine
// that owns the producer's shard (a Task.Run body), never a fresh one.
// Add is also the map-side hot loop: encoding reuses pooled buffers and
// bucket appends amortize, so per-bucket work touches no allocator.
//
//rasql:affinity=worker
//rasql:noalloc
func (s *Shuffle) Add(out [][]types.Row, producer int) {
	sh := &s.shards[producer+1]
	records, bytes := 0, 0
	for t, rows := range out {
		if len(rows) == 0 {
			continue
		}
		records += len(rows)
		//rasql:allow pooldiscipline -- ownership transfers to encBucket; FetchTarget recycles the buffer after decoding
		bp := getEncBuf()
		*bp = types.AppendRows((*bp)[:0], rows)
		bytes += len(*bp)
		sh.buckets[t] = append(sh.buckets[t], encBucket{buf: bp, n: len(rows), producer: producer})
	}
	s.c.Metrics.ShuffleRecords.Add(int64(records))
	s.c.Metrics.ShuffleBytes.Add(int64(bytes))
}

// FetchTarget materializes all rows destined for target partition t on the
// given reduce worker. Every bucket pays the deserialize half of the round
// trip (the serialize half was paid at Add), and cross-worker buckets
// additionally count as network traffic (and incur the configured
// communication penalty). The bucket buffers are recycled, so each target
// may be fetched at most once — except under chaos, where the encoded
// buckets are retained so a retrying task re-fetches pristine rows (the
// map-side shuffle files survive a reduce-task failure on a real cluster
// too); the re-decoded rows then count as replayed work, and the fetch
// itself is a fault point.
func (s *Shuffle) FetchTarget(t, onWorker int) []types.Row {
	chaos := s.c.chaos
	if chaos != nil {
		chaos.fetchPoint(onWorker)
	}
	total := 0
	for i := range s.shards {
		for _, b := range s.shards[i].buckets[t] {
			total += b.n
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]types.Row, 0, total)
	for i := range s.shards {
		for _, b := range s.shards[i].buckets[t] {
			buf := *b.buf
			if b.producer == onWorker {
				s.c.Metrics.LocalFetchRows.Add(int64(b.n))
			} else {
				s.c.Metrics.RemoteFetchBytes.Add(int64(len(buf)))
				if p := s.c.cfg.ShufflePenaltyOpsPerByte; p > 0 {
					burn(p * len(buf))
				}
			}
			var err error
			out, err = types.DecodeRowsAppend(out, buf)
			if err != nil {
				panic("cluster: shuffle wire corruption: " + err.Error())
			}
			if chaos == nil {
				putEncBuf(b.buf)
			}
		}
		if chaos == nil {
			s.shards[i].buckets[t] = nil
		}
	}
	if chaos != nil {
		chaos.replayRows(s.c.Metrics, onWorker, total)
	}
	return out
}

// TargetCount returns the number of target partitions.
func (s *Shuffle) TargetCount() int { return s.targets }

// Exchange repartitions input onto key columns: a map stage routes each row
// by hash of the key, and a reduce stage materializes the target partitions.
// The result's partition i is owned by the worker that ran reduce task i, so
// a following stage scheduled partition-aware reads it locally.
func (c *QueryContext) Exchange(name string, in *PartitionedRelation, key []int) *PartitionedRelation {
	targets := c.cfg.Partitions
	sh := c.NewShuffle(targets)

	mapTasks := make([]Task, in.NumPartitions())
	for i := range mapTasks {
		part := i
		mapTasks[i] = Task{
			Part:      part,
			Preferred: in.Owner[part],
			Run: func(w int) {
				rows := c.Fetch(in.Parts[part], in.Owner[part], w)
				out := make([][]types.Row, targets)
				for _, row := range rows {
					t := int(types.HashRowKey(row, key) % uint64(targets))
					out[t] = append(out[t], row)
				}
				sh.Add(out, w)
			},
		}
	}
	c.RunStage(name+".map", mapTasks)

	out := c.EmptyN(in.Schema, key, targets)
	redTasks := make([]Task, targets)
	for i := range redTasks {
		part := i
		redTasks[i] = Task{
			Part:      part,
			Preferred: -1,
			Run: func(w int) {
				out.Parts[part] = sh.FetchTarget(part, w)
				out.Owner[part] = w
			},
		}
	}
	c.RunStage(name+".reduce", redTasks)
	return out
}
