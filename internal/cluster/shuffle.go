package cluster

import (
	"sync"

	"github.com/rasql/rasql-go/internal/types"
)

// Shuffle collects map-side output buckets and materializes them on the
// reduce side. Buckets produced on the same worker that consumes them are
// handed over for free; buckets crossing workers pay the wire round trip —
// the same cost model as Spark's shuffle fetch.
type Shuffle struct {
	c  *Cluster
	mu sync.Mutex
	// buckets[target] lists the buckets destined for target partition.
	buckets [][]bucket
}

type bucket struct {
	rows     []types.Row
	producer int
}

// NewShuffle creates a shuffle with the given number of target partitions.
func (c *Cluster) NewShuffle(targets int) *Shuffle {
	return &Shuffle{c: c, buckets: make([][]bucket, targets)}
}

// Add registers one map task's output: out[t] holds the rows destined for
// target partition t, produced on the given worker. Safe for concurrent use
// by map tasks.
func (s *Shuffle) Add(out [][]types.Row, producer int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	records := 0
	for t, rows := range out {
		if len(rows) == 0 {
			continue
		}
		records += len(rows)
		s.buckets[t] = append(s.buckets[t], bucket{rows: rows, producer: producer})
	}
	s.c.Metrics.ShuffleRecords.Add(int64(records))
}

// FetchTarget materializes all rows destined for target partition t on the
// given reduce worker. Every bucket pays the serialize/deserialize round
// trip — Spark writes shuffle output to serialized shuffle files even for
// same-node readers — and cross-worker buckets additionally count as
// network traffic (and incur the configured communication penalty).
func (s *Shuffle) FetchTarget(t, onWorker int) []types.Row {
	s.mu.Lock()
	bs := s.buckets[t]
	s.mu.Unlock()
	var out []types.Row
	for _, b := range bs {
		buf := types.EncodeRows(b.rows)
		s.c.Metrics.ShuffleBytes.Add(int64(len(buf)))
		if b.producer == onWorker {
			s.c.Metrics.LocalFetchRows.Add(int64(len(b.rows)))
		} else {
			s.c.Metrics.RemoteFetchBytes.Add(int64(len(buf)))
			if p := s.c.cfg.ShufflePenaltyOpsPerByte; p > 0 {
				burn(p * len(buf))
			}
		}
		rows, err := types.DecodeRows(buf)
		if err != nil {
			panic("cluster: shuffle wire corruption: " + err.Error())
		}
		out = append(out, rows...)
	}
	return out
}

// TargetCount returns the number of target partitions.
func (s *Shuffle) TargetCount() int { return len(s.buckets) }

// Exchange repartitions input onto key columns: a map stage routes each row
// by hash of the key, and a reduce stage materializes the target partitions.
// The result's partition i is owned by the worker that ran reduce task i, so
// a following stage scheduled partition-aware reads it locally.
func (c *Cluster) Exchange(name string, in *PartitionedRelation, key []int) *PartitionedRelation {
	targets := c.cfg.Partitions
	sh := c.NewShuffle(targets)

	mapTasks := make([]Task, in.NumPartitions())
	for i := range mapTasks {
		part := i
		mapTasks[i] = Task{
			Part:      part,
			Preferred: in.Owner[part],
			Run: func(w int) {
				rows := c.Fetch(in.Parts[part], in.Owner[part], w)
				out := make([][]types.Row, targets)
				for _, row := range rows {
					t := int(types.HashRowKey(row, key) % uint64(targets))
					out[t] = append(out[t], row)
				}
				sh.Add(out, w)
			},
		}
	}
	c.RunStage(name+".map", mapTasks)

	out := c.EmptyN(in.Schema, key, targets)
	redTasks := make([]Task, targets)
	for i := range redTasks {
		part := i
		redTasks[i] = Task{
			Part:      part,
			Preferred: -1,
			Run: func(w int) {
				out.Parts[part] = sh.FetchTarget(part, w)
				out.Owner[part] = w
			},
		}
	}
	c.RunStage(name+".reduce", redTasks)
	return out
}
