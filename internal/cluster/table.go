package cluster

import "github.com/rasql/rasql-go/internal/types"

// RowTable is a hash table over rows keyed by a column subset. Keys of up
// to three numeric columns use exact packed 64-bit keys (no per-probe
// string allocation — the data-layout half of whole-stage code
// generation); anything else falls back to encoded string keys.
type RowTable struct {
	cols   []int
	packed map[types.PackedKey][]types.Row
	byStr  map[string][]types.Row
}

// BuildRowTable indexes rows on the given key columns.
func BuildRowTable(rows []types.Row, cols []int) *RowTable {
	t := &RowTable{cols: append([]int(nil), cols...)}
	if len(cols) <= 3 {
		t.packed = make(map[types.PackedKey][]types.Row, len(rows))
		ok := true
		for _, r := range rows {
			k, isNum := types.PackRow(r, cols)
			if !isNum {
				ok = false
				break
			}
			t.packed[k] = append(t.packed[k], r)
		}
		if ok {
			return t
		}
		t.packed = nil
	}
	t.byStr = make(map[string][]types.Row, len(rows))
	for _, r := range rows {
		k := types.KeyString(r, cols)
		t.byStr[k] = append(t.byStr[k], r)
	}
	return t
}

// ProbeRow returns the bucket matching the probe row's values at probeCols
// (aligned with the table's key columns).
func (t *RowTable) ProbeRow(r types.Row, probeCols []int) []types.Row {
	if t.packed != nil {
		k, ok := types.PackRow(r, probeCols)
		if !ok {
			return nil // numeric build keys cannot equal non-numeric probes
		}
		return t.packed[k]
	}
	return t.byStr[types.KeyString(r, probeCols)]
}

// ProbeValues returns the bucket matching the given key values.
func (t *RowTable) ProbeValues(vals []types.Value) []types.Row {
	if t.packed != nil {
		var k types.PackedKey
		for i, v := range vals {
			u, ok := types.NumKey(v)
			if !ok {
				return nil
			}
			k[i] = u
		}
		return t.packed[k]
	}
	cols := make([]int, len(vals))
	for i := range cols {
		cols[i] = i
	}
	return t.byStr[types.KeyString(types.Row(vals), cols)]
}

// Len returns the number of distinct keys.
func (t *RowTable) Len() int {
	if t.packed != nil {
		return len(t.packed)
	}
	return len(t.byStr)
}

// Rows iterates all bucketed rows (used when a table must be re-shipped).
func (t *RowTable) Rows() []types.Row {
	var out []types.Row
	if t.packed != nil {
		for _, b := range t.packed {
			out = append(out, b...)
		}
		return out
	}
	for _, b := range t.byStr {
		out = append(out, b...)
	}
	return out
}
