package cluster

import "github.com/rasql/rasql-go/internal/types"

// RowTable is the hash-join build side: rows indexed by a column subset,
// probed for the bucket of rows matching a key. Unlike the incremental
// keyIndex that backs SetRDD/AggRDD, a RowTable sees all of its rows up
// front (the hybrid scheduling policy rebuilds co-partitioned tables after
// every remote fetch, so builds are hot), which admits a leaner layout:
//
//   - the slot table is sized once from len(rows), so it never rehashes;
//   - keys are hashed straight from their Values (types.HashRowKey) and
//     compared against a representative row per bucket with Value.Equal —
//     no wire encoding, no key arena;
//   - each slot packs the bucket id with a 32-bit hash tag, so a probe
//     touches one cache line per step and only compares values on a tag
//     hit.
//
// Hash and equality both normalize numerics (Int(3) matches Float(3.0)).
// Probes are read-only and allocation-free, safe from any goroutine once
// the build returns.
type RowTable struct {
	cols []int
	// slots is open-addressed: (bucket+1)<<32 | uint32(hash), 0 = empty;
	// len is a power of two chosen at build so load stays under 1/2.
	slots   []uint64
	mask    uint64
	repr    []types.Row   // representative (first) row per bucket
	buckets [][]types.Row // all rows per distinct key
	rows    []types.Row   // the build input, for re-shipping
}

// BuildRowTable indexes rows on the given key columns.
func BuildRowTable(rows []types.Row, cols []int) *RowTable {
	t := &RowTable{cols: append([]int(nil), cols...), rows: rows}
	if len(rows) == 0 {
		return t
	}
	nslots := 8
	for nslots < 2*len(rows) {
		nslots <<= 1
	}
	t.slots = make([]uint64, nslots)
	t.mask = uint64(nslots - 1)
	t.repr = make([]types.Row, 0, len(rows))
	t.buckets = make([][]types.Row, 0, len(rows))
	for _, r := range rows {
		h := types.HashRowKey(r, cols)
		s := h & t.mask
		for {
			slot := t.slots[s]
			if slot == 0 {
				e := len(t.buckets)
				t.repr = append(t.repr, r)
				t.buckets = append(t.buckets, []types.Row{r})
				t.slots[s] = uint64(e+1)<<32 | uint64(uint32(h))
				break
			}
			if uint32(slot) == uint32(h) {
				e := int(slot>>32) - 1
				if keyEqual(t.repr[e], cols, r, cols) {
					t.buckets[e] = append(t.buckets[e], r)
					break
				}
			}
			s = (s + 1) & t.mask
		}
	}
	return t
}

// keyEqual reports whether a's values at acols equal b's at bcols.
func keyEqual(a types.Row, acols []int, b types.Row, bcols []int) bool {
	for i, c := range acols {
		if !a[c].Equal(b[bcols[i]]) {
			return false
		}
	}
	return true
}

// ProbeRow returns the bucket matching the probe row's values at probeCols
// (aligned with the table's key columns).
func (t *RowTable) ProbeRow(r types.Row, probeCols []int) []types.Row {
	if len(t.slots) == 0 {
		return nil
	}
	h := types.HashRowKey(r, probeCols)
	for s := h & t.mask; ; s = (s + 1) & t.mask {
		slot := t.slots[s]
		if slot == 0 {
			return nil
		}
		if uint32(slot) == uint32(h) {
			e := int(slot>>32) - 1
			if keyEqual(t.repr[e], t.cols, r, probeCols) {
				return t.buckets[e]
			}
		}
	}
}

// ProbeValues returns the bucket matching the given key values.
func (t *RowTable) ProbeValues(vals []types.Value) []types.Row {
	if len(t.slots) == 0 {
		return nil
	}
	h := types.HashRow(0, types.Row(vals))
	for s := h & t.mask; ; s = (s + 1) & t.mask {
		slot := t.slots[s]
		if slot == 0 {
			return nil
		}
		if uint32(slot) == uint32(h) {
			e := int(slot>>32) - 1
			ok := true
			for i, c := range t.cols {
				if !t.repr[e][c].Equal(vals[i]) {
					ok = false
					break
				}
			}
			if ok {
				return t.buckets[e]
			}
		}
	}
}

// Len returns the number of distinct keys.
func (t *RowTable) Len() int { return len(t.buckets) }

// Rows returns the build input (no copy; callers must not mutate) — used
// when a table must be re-shipped to another worker.
func (t *RowTable) Rows() []types.Row { return t.rows }
