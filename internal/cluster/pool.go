package cluster

import "sync"

// encBufPool recycles wire-encoding buffers across shuffle writes, remote
// fetches and broadcasts, so steady-state iterations serialize into warm
// buffers instead of allocating fresh ones. DecodeRowsAppend copies string
// payloads out of its input, which is what makes immediate recycling safe.
//
// As a package-level mutable it carries no //rasql:guardedby annotation:
// sync.Pool is its own synchronization, and the pooldiscipline analyzer
// enforces the Get/Put pairing instead. See the exemption rationale in
// internal/analysis/annotations.go.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getEncBuf hands out a pooled encoding buffer; every Get must reach a
// putEncBuf, which the pooldiscipline analyzer enforces at call sites.
//
//rasql:pool-get
func getEncBuf() *[]byte { return encBufPool.Get().(*[]byte) }

// putEncBuf returns a buffer to the pool, truncated so the next user
// cannot observe stale bytes.
//
//rasql:pool-put
func putEncBuf(b *[]byte) {
	*b = (*b)[:0]
	encBufPool.Put(b)
}
