package cluster

import "sync"

// encBufPool recycles wire-encoding buffers across shuffle writes, remote
// fetches and broadcasts, so steady-state iterations serialize into warm
// buffers instead of allocating fresh ones. DecodeRowsAppend copies string
// payloads out of its input, which is what makes immediate recycling safe.
//
// As a package-level mutable it carries no //rasql:guardedby annotation:
// sync.Pool is its own synchronization, and the pooldiscipline analyzer
// enforces the Get/Put pairing instead. See the exemption rationale in
// internal/analysis/annotations.go.
var encBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getEncBuf hands out a pooled encoding buffer; every Get must reach a
// putEncBuf, which the pooldiscipline analyzer enforces at call sites.
//
//rasql:pool-get
//rasql:noalloc
func getEncBuf() *[]byte {
	//rasql:allow noalloc -- steady state reuses a warm buffer; only a pool miss falls through to New
	return encBufPool.Get().(*[]byte)
}

// putEncBuf returns a buffer to the pool, truncated so the next user
// cannot observe stale bytes.
//
//rasql:pool-put
//rasql:noalloc
func putEncBuf(b *[]byte) {
	*b = (*b)[:0]
	//rasql:allow noalloc -- Pool.Put may grow a per-P shard once; amortized across recycles
	encBufPool.Put(b)
}
