package cluster

import (
	"bytes"

	"github.com/rasql/rasql-go/internal/types"
)

// keyIndex maps binary row keys (types.AppendKey encodings) to dense ids
// assigned in insertion order: the i-th distinct key inserted gets id i. It
// is the allocation-free replacement for the map[string]…/map[PackedKey]…
// pairs that SetRDD, AggRDD and RowTable used to keep per partition:
//
//   - key bytes live concatenated in one arena, so inserting copies into
//     the arena tail instead of allocating a string;
//   - the hash table is open-addressed, each slot packing the entry id
//     with a 32-bit hash tag so a probe touches one cache line per step
//     and only dereferences the arena on a tag hit;
//   - raw bytes are compared on hash hits (collision-safe);
//   - probes encode into a reused scratch buffer owned by the index.
//
// The scratch buffer makes a keyIndex single-goroutine: the cluster's
// one-goroutine-per-worker discipline (each partition's state is touched
// only by the task that owns it) guarantees this.
//
// Because ids are dense and insertion-ordered, an index whose entries
// parallel an append-only row slice can be checkpointed by remembering its
// length alone and restored with truncate — the Section 6.1 fault-recovery
// snapshot at O(1) cost.
type keyIndex struct {
	arena  []byte   // concatenated key bytes of all entries
	ends   []uint32 // ends[i] is the arena offset just past entry i's key
	hashes []uint64 // per-entry key hash (kept so grow/truncate never rehash bytes)
	// slots is the open-addressed table: (id+1)<<32 | uint32(hash), 0 =
	// empty; len is a power of two. The embedded tag rejects almost every
	// non-matching slot without loading the entry's hash or key bytes.
	slots   []uint64
	mask    uint64
	scratch []byte
}

const keyIndexMinSlots = 16

func newKeyIndex() *keyIndex { return &keyIndex{} }

// len returns the number of distinct keys.
func (x *keyIndex) len() int { return len(x.ends) }

// key returns entry i's bytes (a view into the arena).
func (x *keyIndex) key(i int) []byte {
	start := uint32(0)
	if i > 0 {
		start = x.ends[i-1]
	}
	return x.arena[start:x.ends[i]]
}

// encKey encodes r's values at the key columns into the scratch buffer and
// returns the bytes with their hash. Valid until the next enc* call.
//
//rasql:noalloc
func (x *keyIndex) encKey(r types.Row, cols []int) ([]byte, uint64) {
	b := types.AppendKey(x.scratch[:0], r, cols)
	x.scratch = b
	return b, types.HashBytes(b)
}

// encRowKey is encKey over every column (set semantics).
//
//rasql:noalloc
func (x *keyIndex) encRowKey(r types.Row) ([]byte, uint64) {
	b := types.AppendRowKey(x.scratch[:0], r)
	x.scratch = b
	return b, types.HashBytes(b)
}

// get returns the id of key, if present.
//
//rasql:noalloc
func (x *keyIndex) get(key []byte, h uint64) (int, bool) {
	if len(x.slots) == 0 {
		return 0, false
	}
	for s := h & x.mask; ; s = (s + 1) & x.mask {
		slot := x.slots[s]
		if slot == 0 {
			return 0, false
		}
		if uint32(slot) == uint32(h) {
			e := int(slot>>32) - 1
			if x.hashes[e] == h && bytes.Equal(x.key(e), key) {
				return e, true
			}
		}
	}
}

// getOrInsert returns the id of key, inserting it (copying the bytes into
// the arena) if absent. inserted reports whether the key was new; new keys
// get id == len()-1. Steady-state probes and inserts touch no allocator;
// arena/ends/hashes appends amortize into the capacity the caller's reuse
// already paid for, and table doubling is the one justified exception.
//
//rasql:noalloc
func (x *keyIndex) getOrInsert(key []byte, h uint64) (id int, inserted bool) {
	// Grow at 3/4 load so probe chains stay short.
	if 4*(len(x.ends)+1) > 3*len(x.slots) {
		//rasql:allow noalloc -- amortized: table doubling at 3/4 load, O(log n) times total
		x.grow()
	}
	for s := h & x.mask; ; s = (s + 1) & x.mask {
		slot := x.slots[s]
		if slot == 0 {
			e := len(x.ends)
			x.arena = append(x.arena, key...)
			x.ends = append(x.ends, uint32(len(x.arena)))
			x.hashes = append(x.hashes, h)
			x.slots[s] = uint64(e+1)<<32 | uint64(uint32(h))
			return e, true
		}
		if uint32(slot) == uint32(h) {
			e := int(slot>>32) - 1
			if x.hashes[e] == h && bytes.Equal(x.key(e), key) {
				return e, false
			}
		}
	}
}

func (x *keyIndex) grow() {
	n := 2 * len(x.slots)
	if n < keyIndexMinSlots {
		n = keyIndexMinSlots
	}
	x.rebuild(n)
}

// rebuild reslots every entry from its stored hash.
func (x *keyIndex) rebuild(nslots int) {
	x.slots = make([]uint64, nslots)
	x.mask = uint64(nslots - 1)
	for e, h := range x.hashes {
		s := h & x.mask
		for x.slots[s] != 0 {
			s = (s + 1) & x.mask
		}
		x.slots[s] = uint64(e+1)<<32 | uint64(uint32(h))
	}
}

// truncate drops every entry with id >= n — checkpoint restore for the
// append-only state the index shadows. The slot table is rebuilt from the
// surviving hashes (O(n), paid only on the failure-replay path).
func (x *keyIndex) truncate(n int) {
	if n >= len(x.ends) {
		return
	}
	end := uint32(0)
	if n > 0 {
		end = x.ends[n-1]
	}
	x.arena = x.arena[:end]
	x.ends = x.ends[:n]
	x.hashes = x.hashes[:n]
	x.rebuild(len(x.slots))
}

// clone deep-copies the index (the ImmutableState ablation's copy-on-union).
func (x *keyIndex) clone() *keyIndex {
	return &keyIndex{
		arena:  append([]byte(nil), x.arena...),
		ends:   append([]uint32(nil), x.ends...),
		hashes: append([]uint64(nil), x.hashes...),
		slots:  append([]uint64(nil), x.slots...),
		mask:   x.mask,
	}
}
