package cluster

import (
	"sync/atomic"
	"testing"

	"github.com/rasql/rasql-go/internal/types"
)

func chaosTestCluster(chaos ChaosConfig) *QueryContext {
	return New(Config{Workers: 4, Partitions: 4, StageOverheadOps: -1,
		SequentialStages: true, Chaos: chaos}).NewQuery(nil)
}

// A disabled injector must be free: the only cost is the nil check RunStage
// and FetchTarget already pay, and zero allocations on the stage path.
//
//rasql:allocpin cluster.QueryContext.ChaosEnabled cluster.QueryContext.ChaosPostMerge
func TestDisabledInjectorZeroAllocs(t *testing.T) {
	c := New(Config{Workers: 4, Partitions: 4, StageOverheadOps: -1, SequentialStages: true}).NewQuery(nil)
	tasks := make([]Task, 4)
	for i := range tasks {
		tasks[i] = Task{Part: i, Preferred: i, Run: func(int) {}}
	}
	if c.ChaosEnabled() {
		t.Fatal("zero ChaosConfig must not enable the injector")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.RunStage("noop", tasks)
		c.ChaosPostMerge(0)
	})
	if allocs != 0 {
		t.Errorf("disabled injector allocates %.1f per stage, want 0", allocs)
	}
}

// An enabled injector whose schedule never fires must also stay off the
// allocator on the per-task decision path: rolling the fault dice, looking
// up the worker's chaos context, and passing a fetch point are the costs
// every chaos-covered task pays per attempt, fault or no fault.
//
//rasql:allocpin cluster.stageChaos.roll cluster.injector.taskCtx cluster.injector.fetchPoint
func TestEnabledInjectorNoFaultZeroAllocs(t *testing.T) {
	c := chaosTestCluster(ChaosConfig{Schedule: []ChaosEvent{
		{Stage: "unreached", Occurrence: 0, Part: 0, Attempt: 0, Kind: FaultTaskStart},
	}})
	if !c.ChaosEnabled() {
		t.Fatal("scheduled config must enable the injector")
	}
	sc := c.chaos.beginStage("steady", 0)
	allocs := testing.AllocsPerRun(100, func() {
		if sc.roll(0, 0, FaultTaskStart) {
			t.Fatal("unscheduled fault fired")
		}
		if c.chaos.taskCtx(-1) != nil {
			t.Fatal("driver-side worker has a chaos task context")
		}
		c.chaos.fetchPoint(-1)
	})
	if allocs != 0 {
		t.Errorf("enabled-injector decision path allocates %.1f per run, want 0", allocs)
	}
}

// A scheduled fault kills exactly the pinned attempt: the task reruns, the
// rollback fires between attempts, and counters record one retry.
func TestChaosScheduledFaultRetriesAndRollsBack(t *testing.T) {
	c := chaosTestCluster(ChaosConfig{Schedule: []ChaosEvent{
		{Stage: "s", Occurrence: 0, Part: 2, Attempt: 0, Kind: FaultTaskStart},
	}})
	attempts := make([]int, 4)
	rollbacks := make([]int, 4)
	tasks := make([]Task, 4)
	for i := range tasks {
		p := i
		tasks[i] = Task{Part: p, Preferred: p,
			Run:      func(int) { attempts[p]++ },
			Rollback: func() { rollbacks[p]++ },
		}
	}
	c.RunStage("s", tasks)
	for p, n := range attempts {
		want := 1
		if p == 2 {
			want = 1 // attempt 0 died before Run; only the replay reaches the body
		}
		if n != want {
			t.Errorf("part %d ran %d times, want %d", p, n, want)
		}
	}
	if rollbacks[2] != 1 {
		t.Errorf("part 2 rolled back %d times, want 1", rollbacks[2])
	}
	for p, n := range rollbacks {
		if p != 2 && n != 0 {
			t.Errorf("part %d rolled back %d times, want 0", p, n)
		}
	}
	if s := c.Metrics.Snapshot(); s.TaskRetries != 1 {
		t.Errorf("TaskRetries = %d, want 1: %s", s.TaskRetries, s)
	}

	// A second run of the same stage name is occurrence 1 — no match.
	c.Metrics.Reset()
	c.RunStage("s", tasks)
	if s := c.Metrics.Snapshot(); s.TaskRetries != 0 {
		t.Errorf("occurrence-pinned event refired: %s", s)
	}
}

// Rate 1.0 makes every rollable point fire, so the retry loop must bottom
// out at the attempt bound: the injector never kills the final attempt.
func TestChaosFullRateIsBoundedByMaxAttempts(t *testing.T) {
	const maxAttempts = 3
	c := chaosTestCluster(ChaosConfig{Rate: 1.0, MaxAttempts: maxAttempts})
	var ran atomic.Int64
	tasks := []Task{{Part: 0, Preferred: 0, Run: func(int) { ran.Add(1) }}}
	c.RunStage("s", tasks)
	if ran.Load() != 1 {
		t.Errorf("task body ran %d times, want 1 (earlier attempts die pre-body)", ran.Load())
	}
	if s := c.Metrics.Snapshot(); s.TaskRetries != maxAttempts-1 {
		t.Errorf("TaskRetries = %d, want %d: %s", s.TaskRetries, maxAttempts-1, s)
	}
}

// Same seed, same stages → same fault decisions, run after run.
func TestChaosRateScheduleIsDeterministic(t *testing.T) {
	run := func() int64 {
		c := chaosTestCluster(ChaosConfig{Seed: 42, Rate: 0.3})
		tasks := make([]Task, 4)
		for i := range tasks {
			tasks[i] = Task{Part: i, Preferred: i, Run: func(int) {}}
		}
		for s := 0; s < 20; s++ {
			c.RunStage("s", tasks)
		}
		return c.Metrics.TaskRetries.Load()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced different schedules: %d vs %d retries", a, b)
	}
	if a == 0 {
		t.Error("rate 0.3 over 80 tasks never fired")
	}
	c := chaosTestCluster(ChaosConfig{Seed: 43, Rate: 0.3})
	tasks := make([]Task, 4)
	for i := range tasks {
		tasks[i] = Task{Part: i, Preferred: i, Run: func(int) {}}
	}
	for s := 0; s < 20; s++ {
		c.RunStage("s", tasks)
	}
	if c.Metrics.TaskRetries.Load() == a {
		t.Log("different seed produced the same retry count (possible, but suspicious)")
	}
}

// Worker loss invalidates the worker's broadcast cache blocks; the retried
// attempt rebuilds its table from the retained wire, paying the broadcast
// bytes again.
func TestChaosWorkerLossRebuildsBroadcast(t *testing.T) {
	c := chaosTestCluster(ChaosConfig{Schedule: []ChaosEvent{
		{Stage: "probe", Occurrence: 0, Part: 0, Attempt: 0, Kind: FaultWorkerLoss},
	}})
	rows := intRows([2]int64{1, 10}, [2]int64{2, 20}, [2]int64{3, 30})
	b := c.Broadcast(rows, pairSchema(), []int{0})
	baseline := c.Metrics.BroadcastBytes.Load()

	var probed atomic.Int64
	c.RunStage("probe", []Task{{Part: 0, Preferred: 0, Run: func(w int) {
		tbl := b.Table(w)
		if tbl == nil {
			t.Error("broadcast table not rebuilt after worker loss")
			return
		}
		probed.Add(int64(len(tbl.ProbeRow(types.Row{types.Int(2)}, []int{0}))))
	}}})
	if probed.Load() != 1 {
		t.Errorf("probe found %d rows, want 1", probed.Load())
	}
	s := c.Metrics.Snapshot()
	if s.TaskRetries != 1 {
		t.Errorf("worker loss did not kill the attempt: %s", s)
	}
	if s.BroadcastBytes <= baseline {
		t.Errorf("rebuild did not pay broadcast bytes (%d <= %d)", s.BroadcastBytes, baseline)
	}
}

// A fetch fault replays the whole shuffle read: the retained buckets decode
// to the same rows and the replay is counted.
func TestChaosShuffleFetchReplay(t *testing.T) {
	c := chaosTestCluster(ChaosConfig{Schedule: []ChaosEvent{
		{Stage: "reduce", Occurrence: 0, Part: 0, Attempt: 0, Kind: FaultFetch},
	}})
	sh := c.NewShuffle(1)
	in := intRows([2]int64{1, 2}, [2]int64{3, 4}, [2]int64{5, 6})
	c.RunStage("load", []Task{{Part: 0, Preferred: 0, Run: func(w int) {
		sh.Add([][]types.Row{in}, w)
	}}})

	var got atomic.Int64
	c.RunStage("reduce", []Task{{Part: 0, Preferred: 0, Run: func(w int) {
		got.Store(int64(len(sh.FetchTarget(0, w))))
	}}})
	if got.Load() != int64(len(in)) {
		t.Errorf("fetched %d rows after replay, want %d", got.Load(), len(in))
	}
	s := c.Metrics.Snapshot()
	if s.TaskRetries != 1 {
		t.Errorf("fetch fault did not kill the attempt: %s", s)
	}
	if s.RowsReplayed != int64(len(in)) {
		t.Errorf("RowsReplayed = %d, want %d", s.RowsReplayed, len(in))
	}
}

// Non-fault panics must pass straight through the retry loop.
func TestChaosRealPanicPropagates(t *testing.T) {
	c := chaosTestCluster(ChaosConfig{Rate: 0.5})
	defer func() {
		if recover() == nil {
			t.Error("real panic swallowed by the chaos retry loop")
		}
	}()
	c.RunStage("s", []Task{{Part: 0, Preferred: 0, Run: func(int) {
		panic("actual bug")
	}}})
}
