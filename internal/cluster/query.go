package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/rasql/rasql-go/internal/obs"
	"github.com/rasql/rasql-go/internal/relation"
	"github.com/rasql/rasql-go/internal/trace"
	"github.com/rasql/rasql-go/internal/types"
)

// QueryContext is the per-query execution state of a cluster: the tracer,
// the per-query counters, the stage sequencer, the task-queue scratch and
// the chaos injector. Each query obtains its own context from NewQuery, so
// any number of queries can share one Cluster concurrently — nothing on the
// context is visible to another query.
//
// A QueryContext is driven by one driver goroutine (the query's own); tasks
// inside a stage run concurrently on worker goroutines, and the stage
// barrier orders their effects. It must not be shared across queries.
type QueryContext struct {
	c   *Cluster
	cfg Config
	// ID is the engine-wide query sequence number (1-based). It stamps the
	// query's trace events (via the per-query tracer handle), its
	// QueryStats record and its query-log line.
	ID uint64
	// Tracer, when non-nil, records stage and task spans (one track per
	// worker). The nil default costs one pointer check per stage; the
	// per-task span is only built when span recording is on. NewQuery
	// derives a per-query handle stamping ID onto every event.
	Tracer *trace.Tracer
	// Metrics counts this query's work. Finish folds it into the cluster's
	// lifetime totals; read it directly for a per-query snapshot.
	Metrics *Metrics
	// stageSeq advances per stage; the hybrid policy uses it to rotate
	// task placement, modeling executors picking up whichever task is
	// next when they free up.
	stageSeq int
	// queues is per-worker task-queue scratch reused across stages (the
	// stage barrier guarantees no queue outlives its RunStage call).
	queues [][]Task
	// slowest is per-stage scratch for the critical-path sim-time of the
	// current stage; a field (not a RunStage local) so worker goroutines
	// don't force a heap allocation per stage capturing it.
	slowest atomic.Int64
	// busyTotal is per-stage scratch accumulating the sum of per-worker
	// busy times; with slowest it yields the stage's barrier wait
	// (Σ over active workers of slowest − busy).
	busyTotal atomic.Int64
	// chaos is the fault injector, nil unless Config.Chaos enables it. Each
	// query gets a fresh injector, so the fault schedule is a pure function
	// of the query's own stage sequence — independent of what other queries
	// run on the cluster.
	chaos *injector
	// started anchors the query's end-to-end latency (QueryStats.WallNanos)
	// on the sanctioned metrics stopwatch.
	started stopwatch
	// mode / fallback record the fixpoint evaluation mode that actually ran
	// and why a relaxed request was downgraded, for the QueryStats fold
	// (set by the fixpoint driver via SetMode).
	mode, fallback string
	// errText is the query's failure message ("" on success), set by the
	// engine via SetErr before Finish.
	errText string
	// finished guards against double-folding the per-query counters.
	finished bool
	// ctx carries the caller's cancellation/deadline signal down to the
	// fixpoint drivers, which poll CheckCancel at iteration boundaries —
	// mid-stage tasks always run to their barrier, so cancellation never
	// leaves partition state half-written. Nil means "never cancelled".
	ctx context.Context
}

// NewQuery opens a per-query execution context. The tracer may be nil
// (tracing off). Call Finish when the query completes to fold the per-query
// counters into the cluster's lifetime totals.
func (c *Cluster) NewQuery(tr *trace.Tracer) *QueryContext {
	id := c.queryID.Add(1)
	q := &QueryContext{
		c: c, cfg: c.cfg, ID: id,
		Tracer:  tr.ForQuery(int64(id)),
		Metrics: &Metrics{},
		started: startStopwatch(),
	}
	if c.cfg.Chaos.Enabled() {
		q.chaos = newInjector(c.cfg.Chaos, c.cfg.Workers)
	}
	if c.observer != nil {
		c.observer.QueryStarted()
	}
	return q
}

// SetContext attaches the caller's context to the query. The fixpoint
// drivers poll it (via CheckCancel) at iteration boundaries, so an HTTP
// deadline or client disconnect stops a running recursion between
// iterations. Call before evaluation starts; a nil context is ignored.
func (q *QueryContext) SetContext(ctx context.Context) {
	if ctx != nil {
		q.ctx = ctx
	}
}

// Context returns the caller's context, or context.Background() when none
// was attached.
func (q *QueryContext) Context() context.Context {
	if q.ctx == nil {
		return context.Background()
	}
	return q.ctx
}

// CheckCancel is the iteration-boundary cancellation hook: it reports the
// context's error once the attached context is done, and nil otherwise.
// Non-blocking and cheap enough to call once per fixpoint iteration.
func (q *QueryContext) CheckCancel() error {
	if q.ctx == nil {
		return nil
	}
	select {
	case <-q.ctx.Done():
		return q.ctx.Err()
	default:
		return nil
	}
}

// SetMode records the fixpoint evaluation mode that actually ran and, when a
// relaxed request was downgraded to BSP, the reason — surfaced on the
// query's QueryStats record.
func (q *QueryContext) SetMode(mode, fallback string) {
	q.mode, q.fallback = mode, fallback
}

// SetErr records the query's failure for the QueryStats fold; a nil err is
// a no-op. Call before Finish.
func (q *QueryContext) SetErr(err error) {
	if err != nil {
		q.errText = err.Error()
	}
}

// Finish folds this query's counters into the cluster's lifetime totals and
// hands the query's QueryStats record to the cluster observer (latency
// percentiles, QPS, per-query attribution). Idempotent: only the first call
// folds, so it is safe to defer and also call early.
func (q *QueryContext) Finish() {
	if q.finished {
		return
	}
	q.finished = true
	snap := q.Metrics.Snapshot()
	q.c.Metrics.AddSnapshot(snap)
	if q.c.observer != nil {
		q.c.observer.ObserveQuery(q.Stats(snap))
	}
}

// Stats assembles the query's QueryStats record from a counter snapshot.
// The latency reads the stopwatch at the call, so Finish-time stats cover
// the whole query.
func (q *QueryContext) Stats(snap Snapshot) obs.QueryStats {
	return obs.QueryStats{
		ID:                  q.ID,
		WallNanos:           q.started.elapsedNanos(),
		SimNanos:            snap.SimNanos,
		Iterations:          snap.Iterations,
		ShuffleBytes:        snap.ShuffleBytes,
		ShuffleRecords:      snap.ShuffleRecords,
		TaskRetries:         snap.TaskRetries,
		RowsReplayed:        snap.RowsReplayed,
		RecoveredIterations: snap.RecoveredIterations,
		StaleReads:          snap.StaleReads,
		SupersededRows:      snap.SupersededRows,
		BarrierWaitNanos:    snap.BarrierWaitNanos,
		Mode:                q.mode,
		FallbackReason:      q.fallback,
		Err:                 q.errText,
	}
}

// Cluster returns the cluster this query runs on.
func (q *QueryContext) Cluster() *Cluster { return q.c }

// Config returns the effective (defaulted) configuration.
func (q *QueryContext) Config() Config { return q.cfg }

// Workers returns the number of simulated workers.
func (q *QueryContext) Workers() int { return q.cfg.Workers }

// Partitions returns the default partition count.
func (q *QueryContext) Partitions() int { return q.cfg.Partitions }

// DefaultOwner returns the canonical owner worker for a partition.
func (q *QueryContext) DefaultOwner(part int) int { return part % q.cfg.Workers }

// Partition hash-partitions rel (see Cluster.Partition).
func (q *QueryContext) Partition(rel *relation.Relation, key []int) *PartitionedRelation {
	return q.c.Partition(rel, key)
}

// PartitionN is Partition with an explicit partition count.
func (q *QueryContext) PartitionN(rel *relation.Relation, key []int, parts int) *PartitionedRelation {
	return q.c.PartitionN(rel, key, parts)
}

// Empty creates an empty partitioned relation (see Cluster.Empty).
func (q *QueryContext) Empty(schema types.Schema, key []int) *PartitionedRelation {
	return q.c.Empty(schema, key)
}

// EmptyN is Empty with an explicit partition count.
func (q *QueryContext) EmptyN(schema types.Schema, key []int, parts int) *PartitionedRelation {
	return q.c.EmptyN(schema, key, parts)
}

// NewSetRDD creates a set-semantics cached state (see Cluster.NewSetRDD).
func (q *QueryContext) NewSetRDD(schema types.Schema) *SetRDD {
	return q.c.NewSetRDD(schema)
}

// NewSetRDDN is NewSetRDD with an explicit partition count.
func (q *QueryContext) NewSetRDDN(schema types.Schema, parts int) *SetRDD {
	return q.c.NewSetRDDN(schema, parts)
}

// NewAggRDD creates an aggregate cached state (see Cluster.NewAggRDD).
func (q *QueryContext) NewAggRDD(schema types.Schema, groupBy []int, aggCol int, kind types.AggKind) *AggRDD {
	return q.c.NewAggRDD(schema, groupBy, aggCol, kind)
}

// NewAggRDDN is NewAggRDD with an explicit partition count.
func (q *QueryContext) NewAggRDDN(schema types.Schema, groupBy []int, aggCol int, kind types.AggKind, parts int) *AggRDD {
	return q.c.NewAggRDDN(schema, groupBy, aggCol, kind, parts)
}

// RunStage places the tasks per the scheduling policy and executes them,
// each simulated worker draining its queue sequentially. By default the
// worker queues run on real goroutines; with SequentialStages they run one
// after another on the caller. Either way the stage contributes
// max(per-worker busy time) to the simulated clock (SimNanos) — what a real
// cluster's stage barrier would wait for — so the simulated clock is
// independent of how many queues actually overlap on the host. The name is
// for debugging/tracing only.
func (q *QueryContext) RunStage(name string, tasks []Task) {
	q.Metrics.StagesRun.Add(1)
	q.Metrics.TasksRun.Add(int64(len(tasks)))
	seq := q.stageSeq
	q.stageSeq++

	if len(q.queues) != q.cfg.Workers {
		q.queues = make([][]Task, q.cfg.Workers)
	}
	queues := q.queues
	for i := range queues {
		queues[i] = queues[i][:0]
	}
	for _, t := range tasks {
		w := q.place(t, seq)
		queues[w] = append(queues[w], t)
	}

	spans := q.Tracer.SpansEnabled()
	var stageSpan trace.Span
	if spans {
		stageSpan = q.Tracer.BeginArgs("stage "+name, trace.TidDriver,
			trace.Arg{Key: "tasks", Val: int64(len(tasks))})
	}
	var sc *stageChaos
	if q.chaos != nil {
		sc = q.chaos.beginStage(name, seq)
	}
	active := 0
	for _, queue := range queues {
		if len(queue) > 0 {
			active++
		}
	}
	start := startStopwatch()
	q.slowest.Store(0)
	q.busyTotal.Store(0)
	if q.cfg.SequentialStages {
		for w, queue := range queues {
			if len(queue) > 0 {
				q.runQueue(w, queue, name, spans, sc)
			}
		}
	} else {
		var wg sync.WaitGroup
		for w, queue := range queues {
			if len(queue) == 0 {
				continue
			}
			wg.Add(1)
			// All loop/stage state is passed as arguments: capturing sc (or
			// name/spans) by reference would heap-allocate them even on the
			// sequential path, which never builds this closure.
			go func(w int, queue []Task, name string, spans bool, sc *stageChaos) {
				defer wg.Done()
				q.runQueue(w, queue, name, spans, sc)
			}(w, queue, name, spans, sc)
		}
		wg.Wait()
	}
	q.Metrics.StageWallNanos.Add(start.elapsedNanos())
	slowest := q.slowest.Load()
	q.Metrics.SimNanos.Add(slowest)
	// Barrier wait: every active worker idles until the slowest finishes,
	// so the stage's synchronization cost is Σ(slowest − busy) — what
	// barrier relaxation removes.
	if active > 0 {
		q.Metrics.BarrierWaitNanos.Add(slowest*int64(active) - q.busyTotal.Load())
	}
	stageSpan.End()
}

// runQueue drains one worker's task queue for the current stage. A method
// rather than a RunStage closure so the sequential (and benchmark-pinned)
// path stays allocation-free; only the parallel branch pays for its
// per-worker goroutine closures. The noalloc contract covers the scheduler
// loop itself — chaos-off, spans-off — which is the benchmark-pinned
// configuration; task bodies own their allocations.
//
//rasql:noalloc
func (q *QueryContext) runQueue(w int, queue []Task, name string, spans bool, sc *stageChaos) {
	t0 := startStopwatch()
	for _, t := range queue {
		burn(q.cfg.StageOverheadOps)
		if sc != nil {
			//rasql:allow noalloc -- chaos path: attempt/replay bookkeeping allocates; the chaos-off loop never reaches it
			q.runTaskChaos(sc, t, w, spans, name)
		} else if spans {
			//rasql:allow noalloc -- span path: the args slice is built only when span recording is on
			s := q.Tracer.BeginArgs(name, trace.TidWorker(w),
				trace.Arg{Key: "part", Val: int64(t.Part)})
			//rasql:allow noalloc -- Task.Run is the task body; its allocations belong to the task, not the scheduler loop
			t.Run(w)
			s.End()
		} else {
			//rasql:allow noalloc -- Task.Run is the task body; its allocations belong to the task, not the scheduler loop
			t.Run(w)
		}
	}
	d := t0.elapsedNanos()
	q.busyTotal.Add(d)
	for {
		cur := q.slowest.Load()
		if d <= cur || q.slowest.CompareAndSwap(cur, d) {
			break
		}
	}
}

//rasql:noalloc
func (q *QueryContext) place(t Task, seq int) int {
	switch q.cfg.Policy {
	case PolicyPartitionAware:
		if t.Preferred >= 0 {
			return t.Preferred % q.cfg.Workers
		}
		return t.Part % q.cfg.Workers
	default: // PolicyHybrid: rotate placement each stage.
		return (t.Part + seq) % q.cfg.Workers
	}
}

// transfer moves rows across a worker boundary: it pays the full
// serialize + deserialize cost and records the bytes, exactly as a remote
// fetch over the network would.
func (q *QueryContext) transfer(rows []types.Row) []types.Row {
	if len(rows) == 0 {
		return nil
	}
	bp := getEncBuf()
	*bp = types.AppendRows((*bp)[:0], rows)
	q.Metrics.RemoteFetchBytes.Add(int64(len(*bp)))
	out, err := types.DecodeRowsAppend(make([]types.Row, 0, len(rows)), *bp)
	putEncBuf(bp)
	if err != nil {
		// The buffer was produced by AppendRows in the same process; a
		// decode failure is a programming error, not an I/O condition.
		panic(fmt.Sprintf("cluster: internal wire corruption: %v", err))
	}
	return out
}

// Fetch returns a partition's rows as seen from the given worker: free for
// the owner, serialized round trip for anyone else. Under chaos, rows a
// retrying task fetches again are counted as replayed (wasted) work.
func (q *QueryContext) Fetch(rows []types.Row, owner, onWorker int) []types.Row {
	if q.chaos != nil {
		q.chaos.replayRows(q.Metrics, onWorker, len(rows))
	}
	if owner == onWorker {
		q.Metrics.LocalFetchRows.Add(int64(len(rows)))
		return rows
	}
	return q.transfer(rows)
}

// Collect gathers all partitions into a single relation on the driver,
// paying the transfer cost for every partition (the driver is not a worker).
func (q *QueryContext) Collect(p *PartitionedRelation, name string) *relation.Relation {
	out := relation.New(name, p.Schema)
	for _, part := range p.Parts {
		out.Rows = append(out.Rows, q.transfer(part)...)
	}
	return out
}
